package timeprot

import (
	"fmt"
	"testing"

	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/nonintf"
)

// One benchmark per experiment of EXPERIMENTS.md. Each iteration
// regenerates the full table for that experiment; -v output is the
// table itself, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. Absolute numbers are simulator-relative; the
// shape (who leaks, who doesn't, by how much) is the reproduced result.

const benchSeed = 2026

func benchExperiment(b *testing.B, id string, rounds int) {
	b.Helper()
	var e Experiment
	for i := 0; i < b.N; i++ {
		var err error
		e, err = RunExperiment(id, rounds, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if testing.Verbose() {
		fmt.Println(e)
	}
	for _, r := range e.Rows {
		b.ReportMetric(r.Est.CapacityBits, "bits/"+sanitize(r.Label))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ',' || r == '(' || r == ')':
			// drop
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkT1Prover regenerates the T1 proof matrix: the full-protection
// proof and every ablation's refutation.
func BenchmarkT1Prover(b *testing.B) {
	var m []NamedProof
	for i := 0; i < b.N; i++ {
		m = ProofMatrix(2, 40, benchSeed)
	}
	b.StopTimer()
	proved := 0
	for _, row := range m {
		if row.Report.Proved() {
			proved++
		}
		if testing.Verbose() {
			fmt.Printf("%s:\n%s", row.Name, row.Report)
		}
	}
	b.ReportMetric(float64(proved), "configs-proved")
	b.ReportMetric(float64(len(m)-proved), "configs-refuted")
}

// BenchmarkT2L1PrimeProbe regenerates table T2 (§3.1).
func BenchmarkT2L1PrimeProbe(b *testing.B) { benchExperiment(b, "T2", 40) }

// BenchmarkT3LLCPrimeProbe regenerates table T3 (§4.1).
func BenchmarkT3LLCPrimeProbe(b *testing.B) { benchExperiment(b, "T3", 40) }

// BenchmarkT4FlushLatency regenerates table T4 (§4.2).
func BenchmarkT4FlushLatency(b *testing.B) { benchExperiment(b, "T4", 40) }

// BenchmarkT5KernelClone regenerates table T5 (§4.2).
func BenchmarkT5KernelClone(b *testing.B) { benchExperiment(b, "T5", 40) }

// BenchmarkT6IRQ regenerates table T6 (§4.2).
func BenchmarkT6IRQ(b *testing.B) { benchExperiment(b, "T6", 40) }

// BenchmarkT7SMT regenerates table T7 (§4.1).
func BenchmarkT7SMT(b *testing.B) { benchExperiment(b, "T7", 40) }

// BenchmarkT8Bus regenerates table T8 (§2).
func BenchmarkT8Bus(b *testing.B) { benchExperiment(b, "T8", 40) }

// BenchmarkT9Downgrader regenerates table T9 (Fig. 1, §3.2, §4.3).
func BenchmarkT9Downgrader(b *testing.B) { benchExperiment(b, "T9", 150) }

// BenchmarkT10TLB regenerates the §5.3 TLB theorem check.
func BenchmarkT10TLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := CheckInvariantsTLB()
		if !f {
			b.Fatal("TLB theorem violated")
		}
	}
}

// BenchmarkT11Padding regenerates table T11 (§5 padding sufficiency).
func BenchmarkT11Padding(b *testing.B) { benchExperiment(b, "T11", 20) }

// BenchmarkT12Overheads regenerates the protection-cost ablation.
func BenchmarkT12Overheads(b *testing.B) { benchExperiment(b, "T12", 48) }

// BenchmarkT13BranchPredictor regenerates table T13 (§3.1).
func BenchmarkT13BranchPredictor(b *testing.B) { benchExperiment(b, "T13", 40) }

// BenchmarkT14TLB regenerates table T14 (§3.1, §5.3).
func BenchmarkT14TLB(b *testing.B) { benchExperiment(b, "T14", 40) }

// --- Microbenchmarks of the substrates -------------------------------

// BenchmarkDomainSwitch measures the simulated kernel's full padded
// switch protocol (simulation cost, not simulated cycles).
func BenchmarkDomainSwitch(b *testing.B) {
	pcfg := DefaultPlatform()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: FullProtection(),
		Domains: []DomainSpec{
			{Name: "A", SliceCycles: 2_000, PadCycles: 3_000, Colors: ColorRange(1, 32), CodePages: 2, HeapPages: 4},
			{Name: "B", SliceCycles: 2_000, PadCycles: 3_000, Colors: ColorRange(32, 64), CodePages: 2, HeapPages: 4},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(b.N)*20_000 + 10_000_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	for d, name := range map[int]string{0: "a", 1: "b"} {
		if _, err := sys.Spawn(d, name, 0, func(c *UserCtx) {
			for i := 0; i < n; i++ {
				c.Compute(400)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	if _, err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBoundedNI measures one full bounded-noninterference proof of
// the default protected model.
func BenchmarkBoundedNI(b *testing.B) {
	cfg := absmodel.DefaultConfig()
	for i := 0; i < b.N; i++ {
		v := nonintf.CheckBounded(cfg, 1, 20, benchSeed)
		if !v.Proved {
			b.Fatalf("unexpected refutation: %s", v)
		}
	}
}

// BenchmarkUnwindingLemmas measures the exhaustive lemma enumeration.
func BenchmarkUnwindingLemmas(b *testing.B) {
	cfg := absmodel.DefaultConfig()
	m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(benchSeed, cfg.DigestMod))
	for i := 0; i < b.N; i++ {
		for _, c := range nonintf.CheckHiStepLemma(m) {
			if !c.Holds {
				b.Fatal(c.Witness)
			}
		}
		if c := nonintf.CheckSwitchLemma(m); !c.Holds {
			b.Fatal(c.Witness)
		}
	}
}
