package timeprot

import (
	"bytes"
	"strings"
	"testing"

	"timeprot/internal/attacks"
	"timeprot/internal/experiment"
)

// TestCommittedDiscoveriesRegistered: init must have registered every
// committed discovery as a dynamic scenario, resolvable by ID, with the
// leak/closed variant pair.
func TestCommittedDiscoveriesRegistered(t *testing.T) {
	ds, err := CommittedDiscoveries()
	if err != nil {
		t.Fatalf("CommittedDiscoveries: %v", err)
	}
	if len(ds) == 0 {
		t.Fatal("no committed discoveries; the embedded discoveries.json is empty")
	}
	for _, d := range ds {
		s, ok := attacks.ScenarioByID(d.ID)
		if !ok {
			t.Errorf("discovery %s not registered", d.ID)
			continue
		}
		if !s.Dynamic {
			t.Errorf("%s registered as a static scenario", d.ID)
		}
		if len(s.Variants) != 2 {
			t.Errorf("%s has %d variants, want leak/closed pair", d.ID, len(s.Variants))
		}
	}
}

// TestDiscoveriesExcludedFromAll: the "all" sweep selection must stay a
// pure function of the static registry — F-scenarios run only when
// selected explicitly.
func TestDiscoveriesExcludedFromAll(t *testing.T) {
	all, err := SweepSpec{Scenarios: []string{"all"}}.Cells()
	if err != nil {
		t.Fatalf("expanding all: %v", err)
	}
	for _, c := range all {
		if strings.HasPrefix(c.ScenarioID, "F") {
			t.Fatalf(`"all" selection includes dynamic scenario %s`, c.ScenarioID)
		}
	}
	one, err := SweepSpec{Scenarios: []string{"F1"}, Seeds: []uint64{7}}.Cells()
	if err != nil {
		t.Fatalf("expanding F1: %v", err)
	}
	if len(one) == 0 {
		t.Fatal("explicit F1 selection expanded to no cells")
	}
	for _, c := range one {
		if c.ScenarioID != "F1" {
			t.Errorf("explicit F1 selection produced cell for %s", c.ScenarioID)
		}
	}
}

// TestDiscoveryScenarioReplayColdWarm runs a registered F-scenario
// through the sweep engine against a store, then re-runs it warm: the
// warm report must be byte-identical with zero executions — a
// discovered channel replays exactly like a static scenario.
func TestDiscoveryScenarioReplayColdWarm(t *testing.T) {
	spec := SweepSpec{Scenarios: []string{"F1"}, Rounds: 12, Seeds: []uint64{7}}
	st, err := OpenSweepStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenSweepStore: %v", err)
	}
	defer st.Close()

	render := func(label string) ([]byte, experiment.CacheStats) {
		var stats experiment.CacheStats
		rep, err := RunSweep(spec, SweepOptions{Store: st, Stats: &stats})
		if err != nil {
			t.Fatalf("%s RunSweep: %v", label, err)
		}
		var buf bytes.Buffer
		if err := WriteSweepJSON(&buf, rep); err != nil {
			t.Fatalf("%s WriteSweepJSON: %v", label, err)
		}
		return buf.Bytes(), stats
	}

	cold, coldStats := render("cold")
	if coldStats.Executed == 0 {
		t.Fatal("cold run executed nothing")
	}
	warm, warmStats := render("warm")
	if warmStats.Executed != 0 {
		t.Errorf("warm run executed %d cells, want 0", warmStats.Executed)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm replay of F1 differs from cold run")
	}

	// The leak/closed contrast the discovery promises must be visible
	// in the replayed rows: the ablation variant leaks, full protection
	// does not.
	rep, err := RunSweep(spec, SweepOptions{Store: st})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	leakByLabel := map[string]float64{}
	for _, c := range rep.Cells {
		for _, kv := range c.Extra {
			if kv.K == "leak_certain" {
				leakByLabel[c.Variant] = kv.V
			}
		}
	}
	var leaked, closed bool
	for label, v := range leakByLabel {
		if strings.HasPrefix(label, "leak (") && v == 1 {
			leaked = true
		}
		if label == "closed (full protection)" && v == 0 {
			closed = true
		}
	}
	if !leaked || !closed {
		t.Errorf("replayed F1 rows do not show the leak/closed contrast: %v", leakByLabel)
	}
}
