package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T6, the interrupt channel of §4.2: "interrupts
// could also be used as a channel, if the Trojan triggers an I/O such
// that its completion interrupt fires during Lo's execution. We prevent
// this by partitioning interrupts (other than the preemption timer)
// between domains, and keep all interrupts masked that are not
// associated with the presently-executing domain."
//
// The Trojan either programs its device's completion interrupt to fire in
// the middle of the spy's next slice (sym=1) or stays quiet (sym=0). The
// spy watches for unexplained gaps in its own execution — the footprint
// of the kernel's interrupt handling. With partitioning, the interrupt
// stays masked until the Trojan's domain runs again, and the spy's
// execution is gap-free.

// runIRQChannel runs one T6 configuration.
func runIRQChannel(label string, prot core.Config, rounds int, seed uint64) Row {
	const (
		slice  = 60_000
		pad    = 20_000
		fireIn = 100_000 // from Trojan slice start: mid spy slice
		gapLo  = 350     // below: ordinary op jitter
		gapHi  = 9_000   // above: a domain switch, not an IRQ
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(rounds+16) * (slice + pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T6 %s: %v", label, err))
	}

	seq := SymbolSeq(rounds+8, 2, seed)
	var syms SymLog
	var obs ObsLog

	if _, err := sys.Spawn(0, "trojan", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < rounds+4; r++ {
			sym := seq[r]
			if sym == 1 {
				c.StartIO(0, fireIn)
			}
			syms.Commit(c.Now(), sym)
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	// Spy: continuously read the cycle counter; per slice, record the
	// largest mid-slice gap in the IRQ-footprint range.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		maxGap := 0.0
		prev := c.Now()
		for len(obs.obs) < rounds+6 {
			t := c.Now()
			if ne := c.Epoch(); ne != e {
				obs.Record(prev, maxGap)
				maxGap = 0
				e = ne
				prev = c.Now()
				continue
			}
			if g := float64(t - prev); g > gapLo && g < gapHi && g > maxGap {
				maxGap = g
			}
			prev = t
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 3)
	est, err := EstimateLabelled(labels, vals, 12, seed^0x6666)
	if err != nil {
		panic(err)
	}
	return Row{Label: label, Est: est, ErrRate: nan()}
}

// T6IRQ reproduces experiment T6: the Trojan-programmed completion
// interrupt channel, closed by per-domain interrupt partitioning.
func T6IRQ(rounds int, seed uint64) Experiment {
	return mustScenario("T6").Experiment(rounds, seed)
}
