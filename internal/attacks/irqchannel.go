package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T6, the interrupt channel of §4.2: "interrupts
// could also be used as a channel, if the Trojan triggers an I/O such
// that its completion interrupt fires during Lo's execution. We prevent
// this by partitioning interrupts (other than the preemption timer)
// between domains, and keep all interrupts masked that are not
// associated with the presently-executing domain."
//
// The Trojan either programs its device's completion interrupt to fire in
// the middle of the spy's next slice (sym=1) or stays quiet (sym=0). The
// spy watches for unexplained gaps in its own execution — the footprint
// of the kernel's interrupt handling. With partitioning, the interrupt
// stays masked until the Trojan's domain runs again, and the spy's
// execution is gap-free.

const (
	t6Slice  = 60_000
	t6Pad    = 20_000
	t6FireIn = 100_000 // from Trojan slice start: mid spy slice
	t6GapLo  = 350     // below: ordinary op jitter
	t6GapHi  = 9_000   // above: a domain switch, not an IRQ
)

// t6Trojan programs its completion interrupt when the symbol is 1.
type t6Trojan struct {
	rounds int
	seq    []int
	syms   *SymLog

	phase int
	r     int
	epoch uint64
	spin  epochSpin
}

func (t *t6Trojan) beginRound(m *kernel.Machine) kernel.Status {
	if t.seq[t.r] == 1 {
		t.phase = 2
		return m.StartIO(0, t6FireIn)
	}
	t.phase = 3
	return m.Now()
}

func (t *t6Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0:
		t.phase = 1
		return m.Epoch()
	case 1:
		t.epoch = m.Value()
		return t.beginRound(m)
	case 2: // the StartIO completed
		t.phase = 3
		return m.Now()
	case 3:
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning to the next slice
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.rounds+4 {
			return kernel.Done
		}
		return t.beginRound(m)
	}
}

// t6Spy continuously reads the cycle counter; per slice it records the
// largest mid-slice gap in the IRQ-footprint range.
type t6Spy struct {
	rounds int
	obs    *ObsLog

	phase  int
	epoch  uint64
	prev   uint64
	t      uint64
	maxGap float64
}

func (s *t6Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0:
		s.phase = 1
		return m.Epoch()
	case 1:
		s.epoch = m.Value()
		s.phase = 2
		return m.Now()
	case 2: // first timestamp; enter the sampling loop
		s.prev = m.Time()
		if s.obs.Len() >= s.rounds+6 {
			return kernel.Done
		}
		s.phase = 3
		return m.Now()
	case 3: // the sample's timestamp arrived; check the slice
		s.t = m.Time()
		s.phase = 4
		return m.Epoch()
	case 4:
		if ne := m.Value(); ne != s.epoch {
			s.obs.Record(s.prev, s.maxGap)
			s.maxGap = 0
			s.epoch = ne
			s.phase = 5
			return m.Now()
		}
		if g := float64(s.t - s.prev); g > t6GapLo && g < t6GapHi && g > s.maxGap {
			s.maxGap = g
		}
		s.prev = s.t
		if s.obs.Len() >= s.rounds+6 {
			return kernel.Done
		}
		s.phase = 3
		return m.Now()
	default: // 5: re-anchor after a slice boundary
		s.prev = m.Time()
		if s.obs.Len() >= s.rounds+6 {
			return kernel.Done
		}
		s.phase = 3
		return m.Now()
	}
}

// buildIRQChannel constructs one T6 configuration.
func buildIRQChannel(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t6Slice, PadCycles: t6Pad, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: t6Slice, PadCycles: t6Pad, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+16) * (t6Slice + t6Pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T6 %s: %v", label, err))
	}

	seq := o.symbolSeq(rounds+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()

	o.spawn(sys, 0, "trojan", 0, &t6Trojan{
		rounds: rounds, seq: seq, syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t6Spy{rounds: rounds, obs: obs})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 3)
		est, err := o.estimateLabelled(labels, vals, 12, seed^0x6666)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runIRQChannel runs one T6 configuration.
func runIRQChannel(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildIRQChannel(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T6IRQ reproduces experiment T6: the Trojan-programmed completion
// interrupt channel, closed by per-domain interrupt partitioning.
func T6IRQ(rounds int, seed uint64) Experiment {
	return mustScenario("T6").Experiment(rounds, seed)
}
