package attacks

import (
	"strings"
	"testing"

	"timeprot/internal/core"
)

// stubScenario builds a minimal well-formed dynamic scenario.
func stubScenario(id, name string) Scenario {
	return Scenario{
		ID: id, Name: name, Title: "stub discovery", Version: 1,
		Dynamic: true,
		Rounds:  minRounds(8),
		Variants: []Variant{{
			Label: "leak (stub)", Prot: core.NoProtection(),
			run: func(cc *CellContext, rounds int, seed uint64) Row {
				return Row{Label: "leak (stub)"}
			},
		}},
	}
}

func TestRegisterScenarioLifecycle(t *testing.T) {
	defer ResetDynamicScenarios()
	ResetDynamicScenarios()

	staticN := len(Scenarios())
	if err := RegisterScenario(stubScenario("F90", "fstub90")); err != nil {
		t.Fatal(err)
	}
	if got := len(Scenarios()); got != staticN+1 {
		t.Fatalf("Scenarios() length %d, want %d", got, staticN+1)
	}
	s, ok := ScenarioByID("F90")
	if !ok || !s.Dynamic || s.Name != "fstub90" {
		t.Fatalf("ScenarioByID(F90) = %+v, %v", s, ok)
	}
	if _, ok := ScenarioByID("FSTUB90"); !ok {
		t.Fatal("dynamic lookup must be case-insensitive by name")
	}
	ids := ScenarioIDs()
	if ids[len(ids)-1] != "F90" {
		t.Fatalf("dynamic scenario must append to ID order, got tail %q", ids[len(ids)-1])
	}

	// Duplicate ID and name rejections.
	if err := RegisterScenario(stubScenario("F90", "other")); err == nil {
		t.Fatal("duplicate dynamic ID must be rejected")
	}
	if err := RegisterScenario(stubScenario("F91", "fstub90")); err == nil {
		t.Fatal("duplicate dynamic name must be rejected")
	}
	if err := RegisterScenario(stubScenario("T2", "notl1pp")); err == nil {
		t.Fatal("collision with a static ID must be rejected")
	}
	if err := RegisterScenario(stubScenario("F92", "l1pp")); err == nil {
		t.Fatal("collision with a static name must be rejected")
	}

	ResetDynamicScenarios()
	if got := len(Scenarios()); got != staticN {
		t.Fatalf("after reset: %d scenarios, want %d", got, staticN)
	}
	if _, ok := ScenarioByID("F90"); ok {
		t.Fatal("reset must unregister dynamic scenarios")
	}
}

func TestRegisterScenarioValidation(t *testing.T) {
	defer ResetDynamicScenarios()
	cases := []struct {
		mutate func(*Scenario)
		want   string
	}{
		{func(s *Scenario) { s.Dynamic = false }, "Dynamic"},
		{func(s *Scenario) { s.ID = "" }, "ID and Name"},
		{func(s *Scenario) { s.Name = "" }, "ID and Name"},
		{func(s *Scenario) { s.Rounds = nil }, "rounds policy"},
		{func(s *Scenario) { s.Variants = nil }, "variants"},
	}
	for i, c := range cases {
		s := stubScenario("F95", "fstub95")
		c.mutate(&s)
		err := RegisterScenario(s)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("case %d: err = %v, want mention of %q", i, err, c.want)
		}
	}
}
