package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T5, the kernel-image channel of §4.2: "As even
// read-only sharing of code is sufficient for creating a channel, we
// also colour the kernel image. This is achieved by a policy-free kernel
// clone mechanism, which allows setting up a domain-private kernel image
// in coloured memory."
//
// With a shared kernel image, its text occupies LLC sets inside the user
// domains' colour partitions, so a Trojan can evict the very lines the
// spy's syscall path fetches — user-memory colouring notwithstanding.
// The spy observes its own null-syscall latency. Cloning gives each
// domain a private image inside its own partition and closes the channel.

// runKernelImage runs one T5 configuration.
func runKernelImage(label string, prot core.Config, rounds int, seed uint64) Row {
	const (
		slice = 200_000
		pad   = 30_000
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 512},
			{Name: "Lo", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(rounds+16) * (slice + pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T5 %s: %v", label, err))
	}

	// The Trojan targets the LLC sets of the spy's syscall path: the
	// entry/exit stubs and the TrapNull vector, all in image page 0.
	// With a shared image that page's colour lies inside the Trojan's
	// own partition; with clones it does not, and the Trojan can only
	// thrash its own partition.
	spyImage := sys.Domains()[1].Image
	target := sys.Machine().Mem.Color(spyImage.TextPFNs[0])
	trojPages := firstN(pagesByColor(sys, 0)[target], pcfg.LLCWays+2)
	if len(trojPages) == 0 {
		own := pagesByColor(sys, 0)
		trojPages = firstN(own[sortedKeys(own)[0]], pcfg.LLCWays+2)
	}
	pathLines := kernel.SyscallPathLines()

	seq := SymbolSeq(rounds+8, 2, seed)
	var syms SymLog
	var obs ObsLog

	// Trojan: sym=1 evicts the syscall-path sets of the target colour;
	// sym=0 computes quietly. Two passes with two extra ways of
	// overpressure: under LRU, a victim line that is fresher than the
	// eviction set's stale lines survives a single in-capacity pass
	// (misses evict the stale lines first), so the set must be
	// overfilled and swept again. The thrash touches only the twelve
	// syscall-path line offsets so a full round fits comfortably
	// within one time slice — stretching a round across slices would
	// let the spy re-warm its lines mid-thrash.
	if _, err := sys.Spawn(0, "trojan", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < rounds+4; r++ {
			sym := seq[r]
			if sym == 1 {
				for pass := 0; pass < 2; pass++ {
					for _, pg := range trojPages {
						for _, l := range pathLines {
							c.ReadHeap(uint64(pg)*hw.PageSize + uint64(l)*hw.LineSize)
						}
					}
				}
			}
			syms.Commit(c.Now(), sym)
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	// Spy: at the top of each slice, time the first null syscall — its
	// latency reflects whether the kernel text survived in the LLC.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		e = spinEpoch(c, e)
		for r := 0; r < rounds+4; r++ {
			lat := c.NullSyscall()
			obs.Record(c.Now(), float64(lat))
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 4)
	est, err := EstimateLabelled(labels, vals, 16, seed^0x55AA)
	if err != nil {
		panic(err)
	}
	return Row{Label: label, Est: est, ErrRate: nan()}
}

// T5KernelImage reproduces experiment T5: the kernel-text channel that
// survives user-memory colouring and is closed only by kernel cloning.
func T5KernelImage(rounds int, seed uint64) Experiment {
	return mustScenario("T5").Experiment(rounds, seed)
}
