package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T5, the kernel-image channel of §4.2: "As even
// read-only sharing of code is sufficient for creating a channel, we
// also colour the kernel image. This is achieved by a policy-free kernel
// clone mechanism, which allows setting up a domain-private kernel image
// in coloured memory."
//
// With a shared kernel image, its text occupies LLC sets inside the user
// domains' colour partitions, so a Trojan can evict the very lines the
// spy's syscall path fetches — user-memory colouring notwithstanding.
// The spy observes its own null-syscall latency. Cloning gives each
// domain a private image inside its own partition and closes the channel.

const (
	t5Slice  = 200_000
	t5Pad    = 30_000
	t5Passes = 2
)

// t5Trojan evicts the syscall-path sets of the target colour when the
// symbol is 1, and computes quietly otherwise. Two passes with two
// extra ways of overpressure: under LRU, a victim line that is fresher
// than the eviction set's stale lines survives a single in-capacity
// pass (misses evict the stale lines first), so the set must be
// overfilled and swept again. The thrash touches only the twelve
// syscall-path line offsets so a full round fits comfortably within one
// time slice — stretching a round across slices would let the spy
// re-warm its lines mid-thrash.
type t5Trojan struct {
	rounds    int
	seq       []int
	trojPages []int
	pathLines []int
	syms      *SymLog

	phase        int
	r            int
	pass, pi, li int
	epoch        uint64
	spin         epochSpin
}

func (t *t5Trojan) read(m *kernel.Machine) kernel.Status {
	pg := t.trojPages[t.pi]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(t.pathLines[t.li])*hw.LineSize)
}

// beginRound starts round r: an eviction thrash for symbol 1, straight
// to the commit timestamp for symbol 0.
func (t *t5Trojan) beginRound(m *kernel.Machine) kernel.Status {
	if t.seq[t.r] == 1 {
		t.pass, t.pi, t.li = 0, 0, 0
		t.phase = 2
		return t.read(m)
	}
	t.phase = 3
	return m.Now()
}

func (t *t5Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0:
		t.phase = 1
		return m.Epoch()
	case 1:
		t.epoch = m.Value()
		return t.beginRound(m)
	case 2: // advance the thrash sweep
		t.li++
		if t.li == len(t.pathLines) {
			t.li = 0
			t.pi++
			if t.pi == len(t.trojPages) {
				t.pi = 0
				t.pass++
			}
		}
		if t.pass < t5Passes {
			return t.read(m)
		}
		t.phase = 3
		return m.Now()
	case 3:
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning to the next slice
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.rounds+4 {
			return kernel.Done
		}
		return t.beginRound(m)
	}
}

// t5Spy times the first null syscall at the top of each slice — its
// latency reflects whether the kernel text survived in the LLC.
type t5Spy struct {
	rounds int
	obs    *ObsLog

	phase int
	r     int
	lat   uint64
	epoch uint64
	spin  epochSpin
}

func (s *t5Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0:
		s.phase = 1
		return m.Epoch()
	case 1:
		s.epoch = m.Value()
		s.phase = 2
		return s.spin.start(s.epoch, m)
	case 2: // aligning spin before the first round
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.phase = 3
		return m.NullSyscall()
	case 3:
		s.lat = m.Latency()
		s.phase = 4
		return m.Now()
	case 4:
		s.obs.Record(m.Time(), float64(s.lat))
		s.phase = 5
		return s.spin.start(s.epoch, m)
	default: // 5: spinning between rounds
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.r++
		if s.r == s.rounds+4 {
			return kernel.Done
		}
		s.phase = 3
		return m.NullSyscall()
	}
}

// buildKernelImage constructs one T5 configuration.
func buildKernelImage(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t5Slice, PadCycles: t5Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 512},
			{Name: "Lo", SliceCycles: t5Slice, PadCycles: t5Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+16) * (t5Slice + t5Pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T5 %s: %v", label, err))
	}

	// The Trojan targets the LLC sets of the spy's syscall path: the
	// entry/exit stubs and the TrapNull vector, all in image page 0.
	// With a shared image that page's colour lies inside the Trojan's
	// own partition; with clones it does not, and the Trojan can only
	// thrash its own partition.
	spyImage := sys.Domains()[1].Image
	target := sys.Machine().Mem.Color(spyImage.TextPFNs[0])
	trojPages := firstN(pagesByColor(sys, 0)[target], pcfg.LLCWays+2)
	if len(trojPages) == 0 {
		own := pagesByColor(sys, 0)
		trojPages = firstN(own[sortedKeys(own)[0]], pcfg.LLCWays+2)
	}
	pathLines := kernel.SyscallPathLines()

	seq := o.symbolSeq(rounds+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()

	o.spawn(sys, 0, "trojan", 0, &t5Trojan{
		rounds: rounds, seq: seq, trojPages: trojPages, pathLines: pathLines,
		syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t5Spy{
		rounds: rounds, obs: obs, spin: epochSpin{burn: 180},
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 4)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x55AA)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runKernelImage runs one T5 configuration.
func runKernelImage(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildKernelImage(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T5KernelImage reproduces experiment T5: the kernel-text channel that
// survives user-memory colouring and is closed only by kernel cloning.
func T5KernelImage(rounds int, seed uint64) Experiment {
	return mustScenario("T5").Experiment(rounds, seed)
}
