package attacks

import "testing"

// BenchmarkWarmCell drives the warm pooled cell path for profiling and
// for tpbench's allocs/cell figures.
func BenchmarkWarmCell(b *testing.B) {
	s := mustScenario("T2")
	v, _ := s.VariantByLabel("unprotected")
	cc := NewCellContext()
	v.RunIn(cc, 30, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.RunIn(cc, 30, 42)
	}
}
