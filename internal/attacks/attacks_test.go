package attacks

import (
	"math"
	"strings"
	"testing"
)

// The attack-suite tests assert the *shape* of each experiment: which
// configurations demonstrate a channel and which close it. Absolute
// capacities vary with parameters; the leak verdicts must not.

const testSeed = 42

// wantLeaks asserts each row's leak verdict in order.
func wantLeaks(t *testing.T, e Experiment, want []bool) {
	t.Helper()
	if len(e.Rows) != len(want) {
		t.Fatalf("%s: %d rows, want %d\n%s", e.ID, len(e.Rows), len(want), e)
	}
	for i, w := range want {
		if got := e.Rows[i].Leaks(); got != w {
			t.Errorf("%s row %q: leaks=%v, want %v\n%s", e.ID, e.Rows[i].Label, got, w, e)
		}
	}
	t.Logf("\n%s", e)
}

func TestT2L1PrimeProbe(t *testing.T) {
	e := T2L1PrimeProbe(40, testSeed)
	wantLeaks(t, e, []bool{true, false, false})
	// The unprotected channel must be high-capacity: the paper calls
	// set-index channels "potentially high bandwidth". 4 symbols = up
	// to 2 bits.
	if e.Rows[0].Est.CapacityBits < 1.0 {
		t.Errorf("unprotected L1 channel too weak: %v", e.Rows[0].Est)
	}
	if e.Rows[0].ErrRate > 0.2 {
		t.Errorf("unprotected decode error rate too high: %f", e.Rows[0].ErrRate)
	}
}

func TestT3LLCPrimeProbe(t *testing.T) {
	e := T3LLCPrimeProbe(40, testSeed)
	wantLeaks(t, e, []bool{true, true, false})
	// Flushing must NOT help against the concurrent channel: its
	// capacity stays within 25% of the unprotected one.
	un, fl := e.Rows[0].Est.CapacityBits, e.Rows[1].Est.CapacityBits
	if fl < un*0.75 {
		t.Errorf("flush+pad should not reduce the concurrent LLC channel: %f vs %f", fl, un)
	}
}

func TestT4FlushLatency(t *testing.T) {
	e := T4FlushLatency(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
	// Dirty-count modulation over 4 symbols should approach 2 bits
	// without padding.
	if e.Rows[0].Est.CapacityBits < 1.5 {
		t.Errorf("unpadded flush-latency channel too weak: %v", e.Rows[0].Est)
	}
}

func TestT5KernelImage(t *testing.T) {
	e := T5KernelImage(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
}

func TestT6IRQ(t *testing.T) {
	e := T6IRQ(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
}

func TestT7SMT(t *testing.T) {
	e := T7SMT(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
	// Note the first row runs flush+colour and still leaks ~1 bit:
	// the paper's "hyperthreading is fundamentally insecure".
	if e.Rows[0].Est.CapacityBits < 0.5 {
		t.Errorf("SMT channel too weak: %v", e.Rows[0].Est)
	}
}

func TestT8Bus(t *testing.T) {
	e := T8Bus(40, testSeed)
	wantLeaks(t, e, []bool{true, true, false, false})
	// MBA attenuates: both capacity and raw amplitude must drop.
	if e.Rows[1].Est.CapacityBits >= e.Rows[0].Est.CapacityBits {
		t.Errorf("MBA did not attenuate capacity: %f -> %f",
			e.Rows[0].Est.CapacityBits, e.Rows[1].Est.CapacityBits)
	}
	amp := func(r Row) float64 {
		for _, kv := range r.Extra {
			if kv.K == "amplitude_cyc" {
				return kv.V
			}
		}
		return math.NaN()
	}
	if amp(e.Rows[1]) >= amp(e.Rows[0]) {
		t.Errorf("MBA did not attenuate amplitude: %f -> %f", amp(e.Rows[0]), amp(e.Rows[1]))
	}
}

func TestT9Downgrader(t *testing.T) {
	e := T9Downgrader(150, testSeed)
	wantLeaks(t, e, []bool{true, true, false, false})
	util := func(r Row) float64 {
		for _, kv := range r.Extra {
			if kv.K == "hi_utilisation" {
				return kv.V
			}
		}
		return math.NaN()
	}
	// §4.3: busy-loop padding is "very wastive"; the interim process
	// recovers the utilisation.
	if util(e.Rows[3]) < util(e.Rows[2])+0.3 {
		t.Errorf("interim process should recover utilisation: busy=%f interim=%f",
			util(e.Rows[2]), util(e.Rows[3]))
	}
}

func TestT11PaddingSufficiency(t *testing.T) {
	e := T11PaddingSufficiency(20, testSeed)
	get := func(r Row, k string) float64 {
		for _, kv := range r.Extra {
			if kv.K == k {
				return kv.V
			}
		}
		return math.NaN()
	}
	good, bad := e.Rows[0], e.Rows[1]
	if get(good, "overruns") != 0 {
		t.Errorf("sufficient pad must not overrun: %v", good.Extra)
	}
	if get(bad, "overruns") == 0 {
		t.Errorf("insufficient pad must be detected as overruns: %v", bad.Extra)
	}
	if get(good, "max_switch_work") > get(good, "pad") {
		t.Errorf("measured switch work exceeds the 'sufficient' pad: %v", good.Extra)
	}
	if get(good, "distinct_deltas") > get(bad, "distinct_deltas") {
		t.Errorf("sufficient pad should give fewer dispatch deltas: %v vs %v", good.Extra, bad.Extra)
	}
	t.Logf("\n%s", e)
}

func TestLabelAlignment(t *testing.T) {
	var syms SymLog
	var obs ObsLog
	syms.Commit(100, 1)
	syms.Commit(200, 2)
	syms.Commit(300, 3)
	obs.Record(50, 0.5)  // before first commit: dropped
	obs.Record(150, 1.5) // labelled 1
	obs.Record(200, 2.0) // labelled 2 (at-or-before)
	obs.Record(999, 9.9) // labelled 3
	labels, vals := Label(&syms, &obs, 0)
	if len(labels) != 3 || labels[0] != 1 || labels[1] != 2 || labels[2] != 3 {
		t.Fatalf("labels = %v", labels)
	}
	if vals[0] != 1.5 || vals[1] != 2.0 || vals[2] != 9.9 {
		t.Fatalf("vals = %v", vals)
	}
	// Warmup trimming.
	labels, vals = Label(&syms, &obs, 2)
	if len(labels) != 1 || labels[0] != 3 || vals[0] != 9.9 {
		t.Fatalf("warmup trim: labels=%v vals=%v", labels, vals)
	}
	// No commits: nothing labelled.
	var empty SymLog
	if l, _ := Label(&empty, &obs, 0); l != nil {
		t.Fatal("no commits must label nothing")
	}
}

func TestSymbolSeqDeterministicAndInRange(t *testing.T) {
	a := SymbolSeq(100, 4, 7)
	b := SymbolSeq(100, 4, 7)
	diff := SymbolSeq(100, 4, 8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same sequence")
		}
		if a[i] < 0 || a[i] >= 4 {
			t.Fatalf("symbol %d out of range", a[i])
		}
		if a[i] != diff[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestShuffledOffsetsCoverAllSteps(t *testing.T) {
	offs := shuffledOffsets(64, 2, 9)
	if len(offs) != 32 {
		t.Fatalf("len = %d, want 32", len(offs))
	}
	seen := make(map[int]bool)
	sequential := true
	for i, o := range offs {
		if o%2 != 0 || o < 0 || o >= 64 {
			t.Fatalf("bad offset %d", o)
		}
		if seen[o] {
			t.Fatalf("duplicate offset %d", o)
		}
		seen[o] = true
		if i > 0 && o != offs[i-1]+2 {
			sequential = false
		}
	}
	if sequential {
		t.Fatal("offsets must be shuffled, not sequential")
	}
}

func TestExperimentString(t *testing.T) {
	e := Experiment{ID: "TX", Title: "test", Rows: []Row{
		{Label: "a", ErrRate: 0.5},
		{Label: "b", ErrRate: math.NaN(), Extra: []KV{{K: "k", V: 1}}},
	}}
	s := e.String()
	for _, want := range []string{"TX", "test", "a", "b", "k=1.000", "0.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestT13BranchPredictor(t *testing.T) {
	e := T13BranchPredictor(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
	// A binary aliased-counter channel should run near 1 bit.
	if e.Rows[0].Est.CapacityBits < 0.7 {
		t.Errorf("BP channel too weak: %v", e.Rows[0].Est)
	}
}

func TestT14TLB(t *testing.T) {
	e := T14TLB(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
}
