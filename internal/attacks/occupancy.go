package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T16, the whole-LLC occupancy channel: a
// concurrent cross-core channel carried not by WHICH sets the Trojan
// touches (T3's address channel) but by HOW MUCH of the shared LLC it
// occupies. The Trojan modulates its total footprint per window; the
// inclusive LLC back-invalidates the spy's private copies as occupancy
// pressure evicts the spy's lines, so the spy's re-touch latency over a
// resident set spanning its whole partition integrates the Trojan's
// volume.
//
// The canonical sweep walks the COLOUR-PARTITION WIDTH of the platform:
// the number of page colours the LLC geometry induces (LLC sets × line
// / page), which is the granularity at which the OS can partition it at
// all. The designer arms colouring whenever a disjoint user split
// exists. At 8 colours a 3+4 split closes the channel; at 4 colours a
// minimal 1+2 split still closes it; at 2 colours the kernel-reserved
// colour (core.KernelReservedColor) leaves a single user colour, no
// disjoint split exists, colouring is structurally unarmable, and the
// occupancy channel stays open — colouring alone cannot close the
// channel once the platform's colour granularity is this coarse, the
// residual-channel observation of Buckley et al. [2023]. Flushing and
// padding are structurally irrelevant throughout: no domain switch ever
// happens on either core.

const (
	t16WindowLen = 150_000
	t16SpyPages  = 2  // resident pages per spy colour
	t16LowPages  = 2  // Trojan footprint, symbol 0
	t16HighPages = 56 // Trojan footprint, symbol 1
)

// T16's Trojan is the shared windowedThrasher with two volume groups:
// the symbol is the occupancy volume, not an address.

// t16Spy re-touches a resident set spanning every colour it owns and
// records the total latency per sweep — an occupancy integral, not a
// per-set probe.
type t16Spy struct {
	windows   int
	windowLen uint64
	pages     []int
	lineOrder []int
	obs       *ObsLog

	phase    int
	pi, li   int
	lat      uint64
	ts       uint64
	deadline uint64
}

func (s *t16Spy) read(m *kernel.Machine) kernel.Status {
	pg := s.pages[s.pi]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(s.lineOrder[s.li])*hw.LineSize)
}

// advance moves to the next (page, line); done when the sweep is over.
func (s *t16Spy) advance() (done bool) {
	s.li++
	if s.li == len(s.lineOrder) {
		s.li = 0
		s.pi++
	}
	return s.pi == len(s.pages)
}

func (s *t16Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial prime, latencies discarded
		s.deadline = uint64(s.windows+4) * s.windowLen
		s.pi, s.li = 0, 0
		s.phase = 1
		return s.read(m)
	case 1:
		if !s.advance() {
			return s.read(m)
		}
		s.phase = 2
		return m.Now() // loop deadline check
	case 2:
		if m.Time() >= s.deadline {
			return kernel.Done
		}
		s.phase = 3
		return m.Now() // observation timestamp
	case 3:
		s.ts = m.Time()
		s.pi, s.li, s.lat = 0, 0, 0
		s.phase = 4
		return s.read(m)
	default: // 4: timed re-touch of the whole resident set
		s.lat += m.Latency()
		if !s.advance() {
			return s.read(m)
		}
		s.obs.Record(s.ts, float64(s.lat))
		s.phase = 2
		return m.Now()
	}
}

// t16Layout is one variant's platform-and-partition layout: the LLC
// geometry (which fixes the colour count at llcSets/64) and the domain
// colour sets. Nil colour sets mean no disjoint user split exists at
// this width and colouring stays off.
type t16Layout struct {
	prot    core.Config
	llcSets int
	hi, lo  mem.ColorSet
}

// t16Spec returns the canonical colour-partition-width sweep. Colour 0
// stays reserved for the kernel throughout, which is exactly what makes
// the 2-colour platform unsplittable.
func t16Spec(label string) t16Layout {
	switch label {
	case "no colouring (8 colours)":
		// The baseline ablation: the platform could be split 3+4 but
		// the designer left colouring off.
		return t16Layout{prot: flushPadConfig(), llcSets: 512}
	case "coarse: 2 colours, no split":
		// 128-set LLC -> colours {0,1}; 0 is the kernel's, so no
		// disjoint user split exists and colouring cannot be armed.
		return t16Layout{prot: flushPadConfig(), llcSets: 128}
	case "split: 4 colours (1+2)":
		return t16Layout{
			prot: core.FullProtection(), llcSets: 256,
			hi: mem.ColorRange(1, 2), // {1}
			lo: mem.ColorRange(2, 4), // {2,3}
		}
	case "split: 8 colours (full)":
		return t16Layout{
			prot: core.FullProtection(), llcSets: 512,
			hi: mem.ColorRange(1, 4), // {1,2,3}
			lo: mem.ColorRange(4, 8), // {4..7}
		}
	}
	panic("attacks: T16: unknown variant " + label)
}

// t16ResidentPages picks up to per pages of each colour the domain
// owns, in colour order — a resident set spanning the whole partition.
func t16ResidentPages(byColor map[int][]int, per int) []int {
	var out []int
	for _, c := range sortedKeys(byColor) {
		out = append(out, firstN(byColor[c], per)...)
	}
	return out
}

// t16VolumePages returns n pages spread round-robin across the domain's
// colours, so occupancy grows evenly over the whole footprint.
func t16VolumePages(byColor map[int][]int, n int) []int {
	colors := sortedKeys(byColor)
	var out []int
	for i := 0; len(out) < n; i++ {
		any := false
		for _, c := range colors {
			if i < len(byColor[c]) {
				out = append(out, byColor[c][i])
				any = true
				if len(out) == n {
					break
				}
			}
		}
		if !any {
			break
		}
	}
	return out
}

// buildOccupancy constructs one T16 configuration: Trojan and spy on
// separate cores, concurrent forever, with the variant's colour layout.
func buildOccupancy(label string, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	layout := t16Spec(label)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	pcfg.LLCSets = layout.llcSets // the swept knob: colours = sets/64
	pcfg.LLCWays = 8
	pcfg.Frames = 4096

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: layout.prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 400_000, PadCycles: 20_000, Colors: layout.hi, CodePages: 4, HeapPages: 64},
			{Name: "Lo", SliceCycles: 400_000, PadCycles: 20_000, Colors: layout.lo, CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{1}, {0}}, // Lo on core 0, Hi on core 1
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+8)*t16WindowLen + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T16 %s: %v", label, err))
	}

	trojPages := pagesByColor(sys, 0)
	spyPages := pagesByColor(sys, 1)

	seq := o.symbolSeq(rounds+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()
	lineOrder := o.shuffledOffsets(hw.LinesPerPage, 2, seed^0x16C)

	o.spawn(sys, 0, "trojan", 1, &windowedThrasher{
		windows: rounds, windowLen: t16WindowLen,
		seq: seq,
		groups: [][]int{
			t16VolumePages(trojPages, t16LowPages),
			t16VolumePages(trojPages, t16HighPages),
		},
		lineOrder: lineOrder, syms: syms,
	})
	o.spawn(sys, 1, "spy", 0, &t16Spy{
		windows: rounds, windowLen: t16WindowLen,
		pages:     t16ResidentPages(spyPages, t16SpyPages),
		lineOrder: lineOrder, obs: obs,
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 6)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x16F)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runOccupancy runs one T16 configuration.
func runOccupancy(cc *CellContext, label string, rounds int, seed uint64) Row {
	sys, finish := buildOccupancy(label, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T16Occupancy reproduces experiment T16: the whole-LLC occupancy
// channel across the colour-partition-width sweep — open with colouring
// off and on the unsplittable 2-colour platform, closed by a disjoint
// split at 4 or 8 colours.
func T16Occupancy(rounds int, seed uint64) Experiment {
	return mustScenario("T16").Experiment(rounds, seed)
}
