package attacks

import (
	"fmt"
	"math"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T12, the cost side of time protection: the same
// mixed workload (memory sweeps, compute, syscalls) run to completion
// under progressively stronger protection. Time protection is not free —
// flushing destroys cache state each switch, padding burns the gap
// between actual and worst-case switch work, and colouring shrinks each
// domain's effective LLC. The experiment quantifies each step so the
// security/performance trade-off the paper implies is visible.

// runOverhead measures one configuration: total cycles for both domains
// to finish a fixed workload.
func runOverhead(label string, prot core.Config, workRounds int) (Row, float64) {
	const (
		slice = 60_000
		pad   = 20_000
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pcfg.LLCSets = 1024 // 512 KiB, 16 colours: small enough that
	pcfg.LLCWays = 8    // colouring visibly shrinks the working space
	pcfg.Frames = 8192

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 8), CodePages: 4, HeapPages: 60},
			{Name: "B", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(8, 16), CodePages: 4, HeapPages: 60},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(workRounds)*3_000_000 + 100_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T12 %s: %v", label, err))
	}

	// The workload: per round, a sweep over the 240 KiB working set,
	// a burst of compute, and a few syscalls — a stand-in for a
	// cache-sensitive service.
	ops := 0
	work := func(c *kernel.UserCtx) {
		lines := c.HeapBytes() / 64
		for r := 0; r < workRounds; r++ {
			for i := uint64(0); i < lines; i += 2 {
				c.ReadHeap(i * 64)
				ops++
			}
			for i := 0; i < 50; i++ {
				c.Compute(100)
				ops++
			}
			c.NullSyscall()
			ops++
		}
	}
	for d, name := range map[int]string{0: "a", 1: "b"} {
		if _, err := sys.Spawn(d, name, 0, work); err != nil {
			panic(err)
		}
	}
	rep := mustRun(sys)
	total := float64(rep.CPUCycles[0])
	cpo := total / float64(ops)
	return Row{
		Label:   label,
		Est:     channel.Estimate{},
		ErrRate: nan(),
		SimOps:  rep.Ops,
		Extra: []KV{
			{K: "cycles_per_op", V: cpo},
			{K: "total_Mcycles", V: total / 1e6},
		},
	}, cpo
}

// T12Overheads reproduces the overhead ablation: what each mechanism
// costs on a cache-sensitive workload.
func T12Overheads(workRounds int, seed uint64) Experiment {
	_ = seed // the workload is deterministic; kept for signature symmetry
	return mustScenario("T12").Experiment(workRounds, seed)
}

// overheadSlowdown extracts a row's slowdown metric (for tests).
func overheadSlowdown(r Row) float64 {
	for _, kv := range r.Extra {
		if kv.K == "slowdown" {
			return kv.V
		}
	}
	return math.NaN()
}
