package attacks

import (
	"fmt"
	"math"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T12, the cost side of time protection: the same
// mixed workload (memory sweeps, compute, syscalls) run to completion
// under progressively stronger protection. Time protection is not free —
// flushing destroys cache state each switch, padding burns the gap
// between actual and worst-case switch work, and colouring shrinks each
// domain's effective LLC. The experiment quantifies each step so the
// security/performance trade-off the paper implies is visible.

// t12Worker is the per-domain workload as a direct-execution Program:
// per round, a sweep over the domain's working set (every other line),
// a burst of compute, and a syscall — a stand-in for a cache-sensitive
// service. Both domains run their own instance but share the ops
// counter, the denominator of the cycles-per-op metric.
type t12Worker struct {
	rounds int
	ops    *int

	lines uint64
	r     int
	i     uint64
	j     int
	phase int
}

// startRound begins one workload round with its first operation.
func (w *t12Worker) startRound(m *kernel.Machine) kernel.Status {
	w.i = 0
	if w.i < w.lines {
		w.phase = 1
		*w.ops++
		return m.ReadHeap(0)
	}
	w.j = 0
	w.phase = 2
	*w.ops++
	return m.Compute(100)
}

func (w *t12Worker) Step(m *kernel.Machine) kernel.Status {
	switch w.phase {
	case 0: // first dispatch
		w.lines = m.HeapBytes() / 64
		if w.rounds == 0 {
			return kernel.Done
		}
		return w.startRound(m)
	case 1: // a sweep read completed
		w.i += 2
		if w.i < w.lines {
			*w.ops++
			return m.ReadHeap(w.i * 64)
		}
		w.j = 0
		w.phase = 2
		*w.ops++
		return m.Compute(100)
	case 2: // the compute burst
		w.j++
		if w.j < 50 {
			*w.ops++
			return m.Compute(100)
		}
		w.phase = 3
		*w.ops++
		return m.NullSyscall()
	default: // 3: syscall done; next round
		w.r++
		if w.r == w.rounds {
			return kernel.Done
		}
		return w.startRound(m)
	}
}

// buildOverhead constructs one T12 configuration: both domains running
// the fixed workload to completion on one core.
func buildOverhead(label string, prot core.Config, workRounds int, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	const (
		slice = 60_000
		pad   = 20_000
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pcfg.LLCSets = 1024 // 512 KiB, 16 colours: small enough that
	pcfg.LLCWays = 8    // colouring visibly shrinks the working space
	pcfg.Frames = 8192

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 8), CodePages: 4, HeapPages: 60},
			{Name: "B", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(8, 16), CodePages: 4, HeapPages: 60},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(workRounds)*3_000_000 + 100_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T12 %s: %v", label, err))
	}

	ops := new(int)
	o.spawn(sys, 0, "a", 0, &t12Worker{rounds: workRounds, ops: ops})
	o.spawn(sys, 1, "b", 0, &t12Worker{rounds: workRounds, ops: ops})

	return sys, func(rep kernel.Report) Row {
		total := float64(rep.CPUCycles[0])
		cpo := total / float64(*ops)
		return Row{
			Label:   label,
			Est:     channel.Estimate{},
			ErrRate: nan(),
			SimOps:  rep.Ops,
			Extra: []KV{
				{K: "cycles_per_op", V: cpo},
				{K: "total_Mcycles", V: total / 1e6},
			},
		}
	}
}

// runOverhead measures one configuration: total cycles for both domains
// to finish a fixed workload.
func runOverhead(cc *CellContext, label string, prot core.Config, workRounds int) (Row, float64) {
	sys, finish := buildOverhead(label, prot, workRounds, execOpt{cc: cc})
	row := finish(mustRun(sys))
	return row, extraValue(row, "cycles_per_op")
}

// T12Overheads reproduces the overhead ablation: what each mechanism
// costs on a cache-sensitive workload.
func T12Overheads(workRounds int, seed uint64) Experiment {
	_ = seed // the workload is deterministic; kept for signature symmetry
	return mustScenario("T12").Experiment(workRounds, seed)
}

// overheadSlowdown extracts a row's slowdown metric (for tests).
func overheadSlowdown(r Row) float64 {
	for _, kv := range r.Extra {
		if kv.K == "slowdown" {
			return kv.V
		}
	}
	return math.NaN()
}
