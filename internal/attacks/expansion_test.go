package attacks

import "testing"

// Tests for the scenario expansion pack (T15-T17): leak-verdict shapes,
// the scenarios' defining structural properties, and their stamped
// rounds metadata.

func TestT15Prefetch(t *testing.T) {
	e := T15Prefetch(40, testSeed)
	wantLeaks(t, e, []bool{true, false})
	// The speculative-fill channel is binary and, with a deterministic
	// per-round eviction signature, should run near a full bit.
	if e.Rows[0].Est.CapacityBits < 0.8 {
		t.Errorf("prefetcher channel too weak: %v", e.Rows[0].Est)
	}
}

func TestT16Occupancy(t *testing.T) {
	e := T16Occupancy(40, testSeed)
	// Open with colouring off and on the unsplittable 2-colour
	// platform; closed by a disjoint split at 4 and at 8 colours.
	wantLeaks(t, e, []bool{true, true, false, false})
	// The coarse platform's channel must be at least as strong as the
	// fine-grained baseline: less LLC for the same occupancy delta.
	if e.Rows[1].Est.CapacityBits < e.Rows[0].Est.CapacityBits {
		t.Errorf("coarse platform weaker than baseline: %v vs %v",
			e.Rows[1].Est.CapacityBits, e.Rows[0].Est.CapacityBits)
	}
}

func TestT17XCore(t *testing.T) {
	e := T17XCore(40, testSeed)
	wantLeaks(t, e, []bool{true, true, false})
	// Flushing must not help against the concurrent multi-bit channel.
	un, fl := e.Rows[0].Est.CapacityBits, e.Rows[1].Est.CapacityBits
	if fl < un*0.75 {
		t.Errorf("flush+pad should not reduce the concurrent channel: %f vs %f", fl, un)
	}
	// The 4-ary alphabet must carry measurably more than T3's binary
	// channel at the same windows and seed.
	t3 := T3LLCPrimeProbe(40, testSeed)
	if un <= t3.Rows[0].Est.CapacityBits {
		t.Errorf("multi-bit channel (%f b/use) not above the binary one (%f b/use)",
			un, t3.Rows[0].Est.CapacityBits)
	}
}

// TestRowsCarryRounds: every row produced through Variant.Run is
// stamped with its effective rounds, which the sweep reporters and the
// adaptive sampler both rely on.
func TestRowsCarryRounds(t *testing.T) {
	s := mustScenario("T15")
	rounds := s.Rounds(40)
	row := s.Variants[0].Run(rounds, testSeed)
	if row.Rounds != rounds || row.RoundsRun != rounds {
		t.Errorf("Run stamped rounds=%d run=%d, want both %d", row.Rounds, row.RoundsRun, rounds)
	}
	e := s.Experiment(rounds, testSeed)
	for _, r := range e.Rows {
		if r.Rounds != rounds {
			t.Errorf("table row %q rounds=%d, want %d", r.Label, r.Rounds, rounds)
		}
	}
}
