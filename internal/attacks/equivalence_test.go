package attacks

import (
	"math"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/kernel"
)

// These tests pin down the execution-model refactor's central contract:
// the direct Program path and the legacy goroutine+UserCtx adapter are
// bit-identical. Each representative registry scenario is built twice
// with the same seed — once spawning its programs directly, once
// replaying them through the adapter — and the complete kernel event
// logs, run reports, and channel-capacity estimates must match exactly.

// eqBuild builds one scenario configuration under the given execution
// options.
type eqBuild func(o execOpt) (*kernel.System, func(kernel.Report) Row)

func equivalenceCases() map[string]eqBuild {
	flushNoPad := core.FullProtection()
	flushNoPad.PadSwitch = false
	noFlush := core.FullProtection()
	noFlush.FlushOnSwitch = false
	return map[string]eqBuild{
		"T2/unprotected": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildL1PrimeProbe("unprotected", core.NoProtection(), defaultL1Params(8), 42, o)
		},
		"T2/full": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildL1PrimeProbe("flush+pad (full)", core.FullProtection(), defaultL1Params(8), 42, o)
		},
		"T4/flush-no-pad": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildFlushLatency("flush, no pad", flushNoPad, 8, 42, o)
		},
		"T9/interim": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildDowngrader("full, interim process", core.FullProtection(), padInterim, 12, 42, o)
		},
		"T14/no-flush": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildTLBChannel("no flush (pad+colour only)", noFlush, 8, 42, o)
		},
		"T11/insufficient-pad": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildPaddingSufficiency("pad=600 (insufficient)", 600, 6, o)
		},
		"T12/flush": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			flushOnly := core.NoProtection()
			flushOnly.FlushOnSwitch = true
			return buildOverhead("flush", flushOnly, 4, o)
		},
		"T15/no-flush": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildPrefetchChannel("no flush (pad+colour only)", noFlush, 8, 42, o)
		},
		"T16/coarse": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildOccupancy("coarse: 2 colours, no split", 6, 42, o)
		},
		"T17/unprotected": func(o execOpt) (*kernel.System, func(kernel.Report) Row) {
			return buildXCore("unprotected", core.NoProtection(), 6, 42, o)
		},
	}
}

// runEq runs one build and returns the system (for its trace), the run
// report, and the measured row.
func runEq(t *testing.T, build eqBuild, o execOpt) (*kernel.System, kernel.Report, Row) {
	t.Helper()
	sys, finish := build(o)
	rep, err := sys.Run()
	if err != nil {
		t.Fatalf("run (legacy=%v): %v", o.legacy, err)
	}
	if len(rep.Errors) > 0 {
		t.Fatalf("thread errors (legacy=%v): %v", o.legacy, rep.Errors)
	}
	return sys, rep, finish(rep)
}

func floatEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// TestExecutionModelEquivalence runs representative registry scenarios
// under both execution paths with the same seed and asserts identical
// trace event logs and identical channel-capacity estimates.
func TestExecutionModelEquivalence(t *testing.T) {
	for name, build := range equivalenceCases() {
		build := build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dsys, drep, drow := runEq(t, build, execOpt{trace: true})
			lsys, lrep, lrow := runEq(t, build, execOpt{trace: true, legacy: true})

			// Trace event logs must be bit-identical.
			dev, lev := dsys.Trace().Events(), lsys.Trace().Events()
			if len(dev) != len(lev) {
				t.Fatalf("trace length differs: direct %d vs legacy %d", len(dev), len(lev))
			}
			for i := range dev {
				if dev[i] != lev[i] {
					t.Fatalf("trace diverges at event %d:\n direct: %+v\n legacy: %+v", i, dev[i], lev[i])
				}
			}

			// Run reports must agree.
			if drep.Ops != lrep.Ops || drep.Switches != lrep.Switches {
				t.Errorf("report differs: ops %d vs %d, switches %d vs %d",
					drep.Ops, lrep.Ops, drep.Switches, lrep.Switches)
			}
			for i := range drep.CPUCycles {
				if drep.CPUCycles[i] != lrep.CPUCycles[i] {
					t.Errorf("CPU %d cycles differ: %d vs %d", i, drep.CPUCycles[i], lrep.CPUCycles[i])
				}
			}
			for name, c := range drep.ThreadCycles {
				if lc := lrep.ThreadCycles[name]; lc != c {
					t.Errorf("thread %s cycles differ: %d vs %d", name, c, lc)
				}
			}

			// Capacity estimates must be bit-identical.
			if drow.Est != lrow.Est {
				t.Errorf("estimates differ:\n direct: %+v\n legacy: %+v", drow.Est, lrow.Est)
			}
			if !floatEq(drow.ErrRate, lrow.ErrRate) {
				t.Errorf("error rates differ: %f vs %f", drow.ErrRate, lrow.ErrRate)
			}
			if drow.SimOps != lrow.SimOps {
				t.Errorf("sim ops differ: %d vs %d", drow.SimOps, lrow.SimOps)
			}
			if len(drow.Extra) != len(lrow.Extra) {
				t.Fatalf("extra metrics differ: %v vs %v", drow.Extra, lrow.Extra)
			}
			for i := range drow.Extra {
				if drow.Extra[i].K != lrow.Extra[i].K || !floatEq(drow.Extra[i].V, lrow.Extra[i].V) {
					t.Errorf("extra %q differs: %v vs %v", drow.Extra[i].K, drow.Extra[i].V, lrow.Extra[i].V)
				}
			}
		})
	}
}

// TestReplayProgramFaults checks that a program panic surfaces as the
// same thread fault on both paths.
func TestReplayProgramFaults(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		sys, _ := buildL1PrimeProbe("unprotected", core.NoProtection(), defaultL1Params(4), 7, execOpt{})
		o := execOpt{legacy: legacy}
		o.spawn(sys, 0, "bomb", 0, &bombProgram{})
		rep, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range rep.Errors {
			if e != nil && e.Error() == "kernel: thread bomb panicked: boom" {
				found = true
			}
		}
		if !found {
			t.Errorf("legacy=%v: missing bomb fault, errors: %v", legacy, rep.Errors)
		}
	}
}

// bombProgram computes once, then panics.
type bombProgram struct{ stepped bool }

func (b *bombProgram) Step(m *kernel.Machine) kernel.Status {
	if b.stepped {
		panic("boom")
	}
	b.stepped = true
	return m.Compute(10)
}
