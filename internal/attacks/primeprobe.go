package attacks

import (
	"fmt"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/rng"
)

// This file implements the cache prime-and-probe attacks (Osvik et al.
// 2006; Percival 2005), the paper's canonical example of exploiting
// competition for stateful shared hardware (§3.1):
//
//   - T2: the time-shared core-private L1-D cache. The spy primes the
//     cache during its slice; the Trojan encodes a symbol in WHICH cache
//     sets it touches; the spy's probe latencies reveal the set group —
//     address information, the basis of high-bandwidth channels. Flushing
//     on domain switch resets the L1 to a defined state and closes it.
//   - T3: the concurrently shared LLC across cores, where flushing
//     cannot help and partitioning by page colouring is the only defence
//     (§4.1).
//
// Probe loops visit lines in a shuffled order: a sequential sweep would
// train the stride prefetcher, which then hides the very misses the probe
// measures. Real attacks do the same.

// l1Params sizes the T2 scenario.
type l1Params struct {
	groups       int
	setsPerGroup int
	primeWays    int
	trojanWays   int
	rounds       int
	slice, pad   uint64
}

func defaultL1Params(rounds int) l1Params {
	return l1Params{
		groups:       4,
		setsPerGroup: 16, // 64 L1 sets / 4 groups
		primeWays:    2,
		trojanWays:   8,
		rounds:       rounds,
		slice:        100_000,
		pad:          25_000,
	}
}

// spinEpoch burns cycles in compute-only operations until the next slice
// of the calling thread's domain, leaving the data cache untouched.
func spinEpoch(c *kernel.UserCtx, cur uint64) uint64 {
	for {
		if e := c.Epoch(); e != cur {
			return e
		}
		c.Compute(180)
	}
}

// shuffledOffsets returns the line offsets {0, step, 2*step, ...} < lines
// in a deterministic shuffled order, so that probing them defeats the
// stride prefetcher.
func shuffledOffsets(lines, step int, seed uint64) []int {
	r := rng.New(seed)
	n := (lines + step - 1) / step
	perm := r.Perm(n)
	out := make([]int, n)
	for i, p := range perm {
		out[i] = p * step
	}
	return out
}

// decodePairs converts labelled decoded-symbol observations into a row.
func decodePairs(label string, labels []int, vals []float64, seed uint64) Row {
	decoded := make([]int, len(vals))
	for i, v := range vals {
		decoded[i] = int(v)
	}
	est, err := channel.EstimatePairs(labels, decoded, seed)
	if err != nil {
		panic(fmt.Sprintf("attacks: %s: %v", label, err))
	}
	return Row{Label: label, Est: est, ErrRate: channel.ErrorRate(labels, decoded)}
}

// runL1PrimeProbe runs one T2 configuration and returns its row.
func runL1PrimeProbe(label string, prot core.Config, p l1Params, seed uint64) Row {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	seq := SymbolSeq(p.rounds+8, p.groups, seed)

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: p.slice, PadCycles: p.pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: p.slice, PadCycles: p.pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(p.rounds+16) * (p.slice + p.pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T2 %s: %v", label, err))
	}

	var syms SymLog
	var obs ObsLog
	setOrder := shuffledOffsets(p.setsPerGroup, 1, seed^0xA0)

	// Trojan: in its k-th slice, touch every way of every set in group
	// seq[k]. The line offset within a page equals the L1 set index
	// (64-set VIPT L1, 64 lines per page), so page pg at offset set*64
	// fills way pg of set `set`.
	if _, err := sys.Spawn(0, "trojan", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < p.rounds+4; r++ {
			sym := seq[r]
			for pg := 0; pg < p.trojanWays; pg++ {
				for _, s := range setOrder {
					set := sym*p.setsPerGroup + s
					c.ReadHeap(uint64(pg)*hw.PageSize + uint64(set)*hw.LineSize)
				}
			}
			syms.Commit(c.Now(), sym)
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	// Spy: probe (and thereby re-prime) its resident lines at the top
	// of each slice; the group with the highest total latency is the
	// decoded symbol.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		probe := func() int {
			best, bestLat := 0, uint64(0)
			for g := 0; g < p.groups; g++ {
				var lat uint64
				for pg := 0; pg < p.primeWays; pg++ {
					for _, s := range setOrder {
						set := g*p.setsPerGroup + s
						lat += c.ReadHeap(uint64(pg)*hw.PageSize + uint64(set)*hw.LineSize)
					}
				}
				if lat > bestLat {
					bestLat = lat
					best = g
				}
			}
			return best
		}
		probe() // initial prime
		e := c.Epoch()
		e = spinEpoch(c, e)
		for r := 0; r < p.rounds+4; r++ {
			dec := probe()
			obs.Record(c.Now(), float64(dec))
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 4)
	return decodePairs(label, labels, vals, seed^0x5151)
}

// T2L1PrimeProbe reproduces experiment T2: the L1-D prime-and-probe
// covert channel on a time-shared core, under no protection, flush-only,
// and flush+pad.
func T2L1PrimeProbe(rounds int, seed uint64) Experiment {
	return mustScenario("T2").Experiment(rounds, seed)
}

// llcParams sizes the T3 scenario.
type llcParams struct {
	windows   int
	windowLen uint64
	primeWays int
}

func defaultLLCParams(windows int) llcParams {
	return llcParams{windows: windows, windowLen: 150_000, primeWays: 2}
}

// pagesByColor maps LLC page colour to the domain's heap page indices of
// that colour. This introspection stands in for eviction-set construction
// by timing, a well-established attacker capability (Osvik et al. 2006).
func pagesByColor(sys *kernel.System, domainIdx int) map[int][]int {
	d := sys.Domains()[domainIdx]
	m := sys.Machine()
	out := make(map[int][]int)
	for p := 0; ; p++ {
		pte, ok := d.PT.Lookup(kernel.UserHeapVPN + uint64(p))
		if !ok {
			break
		}
		c := m.Mem.Color(pte.PFN)
		out[c] = append(out[c], p)
	}
	return out
}

func firstN(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}

// runLLCPrimeProbe runs one T3 configuration: Trojan and spy on separate
// cores, running concurrently; no domain switch ever happens, so flushing
// and padding are structurally irrelevant and only colouring can help.
func runLLCPrimeProbe(label string, prot core.Config, p llcParams, seed uint64) Row {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	pcfg.LLCSets = 512 // 256 KiB, 8 colours: small enough to thrash
	pcfg.LLCWays = 8
	pcfg.Frames = 4096

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(1, 2, 3), CodePages: 4, HeapPages: 128},
			{Name: "Lo", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(4, 5, 6, 7), CodePages: 4, HeapPages: 64},
		},
		Schedule:  [][]int{{1}, {0}}, // Lo on core 0, Hi on core 1: co-resident forever
		MaxCycles: uint64(p.windows+8)*p.windowLen + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T3 %s: %v", label, err))
	}

	// The spy builds two single-colour eviction groups from its own
	// pages; the Trojan transmits by thrashing pages of the matching
	// colours. Under colouring the partitions are disjoint, so the
	// Trojan owns no matching pages and falls back to thrashing its
	// own partition — same memory volume, no set conflicts.
	spyPages := pagesByColor(sys, 1)
	trojPages := pagesByColor(sys, 0)
	spyColors := sortedKeys(spyPages)
	if len(spyColors) < 2 {
		panic("attacks: T3: spy needs two colours")
	}
	c0, c1 := spyColors[0], spyColors[1]
	spyG := [2][]int{firstN(spyPages[c0], p.primeWays), firstN(spyPages[c1], p.primeWays)}
	trojG := [2][]int{firstN(trojPages[c0], 10), firstN(trojPages[c1], 10)}
	trojOwn := sortedKeys(trojPages)
	if len(trojG[0]) == 0 {
		trojG[0] = firstN(trojPages[trojOwn[0]], 10)
	}
	if len(trojG[1]) == 0 {
		trojG[1] = firstN(trojPages[trojOwn[len(trojOwn)-1]], 10)
	}

	seq := SymbolSeq(p.windows+8, 2, seed)
	var syms SymLog
	var obs ObsLog
	lineOrder := shuffledOffsets(hw.LinesPerPage, 2, seed^0xB7)

	if _, err := sys.Spawn(0, "trojan", 1, func(c *kernel.UserCtx) {
		start := c.Now()
		for w := 0; w < p.windows+4; w++ {
			sym := seq[w]
			syms.Commit(c.Now(), sym)
			end := start + uint64(w+1)*p.windowLen
			for c.Now() < end {
				for _, pg := range trojG[sym] {
					for _, l := range lineOrder {
						c.ReadHeap(uint64(pg)*hw.PageSize + uint64(l)*hw.LineSize)
					}
				}
			}
		}
	}); err != nil {
		panic(err)
	}

	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		probeGroup := func(pages []int) uint64 {
			var lat uint64
			for _, pg := range pages {
				for _, l := range lineOrder {
					lat += c.ReadHeap(uint64(pg)*hw.PageSize + uint64(l)*hw.LineSize)
				}
			}
			return lat
		}
		probeGroup(spyG[0]) // initial prime
		probeGroup(spyG[1])
		deadline := uint64(p.windows+4) * p.windowLen
		for c.Now() < deadline {
			l0 := probeGroup(spyG[0])
			l1 := probeGroup(spyG[1])
			dec := 0
			if l1 > l0 {
				dec = 1
			}
			obs.Record(c.Now(), float64(dec))
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 6)
	return decodePairs(label, labels, vals, seed^0x1313)
}

func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// T3LLCPrimeProbe reproduces experiment T3: the cross-core LLC
// prime-and-probe channel, closed by cache colouring and by nothing else.
func T3LLCPrimeProbe(windows int, seed uint64) Experiment {
	return mustScenario("T3").Experiment(windows, seed)
}
