package attacks

import (
	"fmt"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/rng"
)

// This file implements the cache prime-and-probe attacks (Osvik et al.
// 2006; Percival 2005), the paper's canonical example of exploiting
// competition for stateful shared hardware (§3.1):
//
//   - T2: the time-shared core-private L1-D cache. The spy primes the
//     cache during its slice; the Trojan encodes a symbol in WHICH cache
//     sets it touches; the spy's probe latencies reveal the set group —
//     address information, the basis of high-bandwidth channels. Flushing
//     on domain switch resets the L1 to a defined state and closes it.
//   - T3: the concurrently shared LLC across cores, where flushing
//     cannot help and partitioning by page colouring is the only defence
//     (§4.1).
//
// Probe loops visit lines in a shuffled order: a sequential sweep would
// train the stride prefetcher, which then hides the very misses the probe
// measures. Real attacks do the same.
//
// Both scenarios run as direct kernel.Program state machines — the
// simulator's hot path — with each closure-era loop nest flattened into
// explicit per-thread state.

// l1Params sizes the T2 scenario.
type l1Params struct {
	groups       int
	setsPerGroup int
	primeWays    int
	trojanWays   int
	rounds       int
	slice, pad   uint64
}

func defaultL1Params(rounds int) l1Params {
	return l1Params{
		groups:       4,
		setsPerGroup: 16, // 64 L1 sets / 4 groups
		primeWays:    2,
		trojanWays:   8,
		rounds:       rounds,
		slice:        100_000,
		pad:          25_000,
	}
}

// shuffledOffsets returns the line offsets {0, step, 2*step, ...} < lines
// in a deterministic shuffled order, so that probing them defeats the
// stride prefetcher.
func shuffledOffsets(lines, step int, seed uint64) []int {
	r := rng.New(seed)
	n := (lines + step - 1) / step
	perm := r.Perm(n)
	out := make([]int, n)
	for i, p := range perm {
		out[i] = p * step
	}
	return out
}

// decodePairs converts labelled decoded-symbol observations into a row.
func decodePairs(label string, labels []int, vals []float64, seed uint64) Row {
	decoded := make([]int, len(vals))
	for i, v := range vals {
		decoded[i] = int(v)
	}
	est, err := channel.EstimatePairs(labels, decoded, seed)
	if err != nil {
		panic(fmt.Sprintf("attacks: %s: %v", label, err))
	}
	return Row{Label: label, Est: est, ErrRate: channel.ErrorRate(labels, decoded)}
}

// t2Trojan transmits the symbol sequence through the L1: in its k-th
// slice it touches every way of every set in group seq[k], commits the
// symbol, then spins to its next slice. The line offset within a page
// equals the L1 set index (64-set VIPT L1, 64 lines per page), so page
// pg at offset set*64 fills way pg of set `set`.
type t2Trojan struct {
	p        l1Params
	seq      []int
	setOrder []int
	syms     *SymLog

	phase  int
	r      int
	pg, si int
	epoch  uint64
	spin   epochSpin
}

func (t *t2Trojan) read(m *kernel.Machine) kernel.Status {
	set := t.seq[t.r]*t.p.setsPerGroup + t.setOrder[t.si]
	return m.ReadHeap(uint64(t.pg)*hw.PageSize + uint64(set)*hw.LineSize)
}

func (t *t2Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // read the starting epoch
		t.phase = 1
		return m.Epoch()
	case 1: // starting epoch arrived; begin round 0's sweep
		t.epoch = m.Value()
		t.pg, t.si = 0, 0
		t.phase = 2
		return t.read(m)
	case 2: // one touch returned; advance the sweep
		t.si++
		if t.si == len(t.setOrder) {
			t.si = 0
			t.pg++
		}
		if t.pg < t.p.trojanWays {
			return t.read(m)
		}
		t.phase = 3
		return m.Now() // commit timestamp
	case 3: // commit the symbol, then spin to the next slice
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning between rounds
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.p.rounds+4 {
			return kernel.Done
		}
		t.pg, t.si = 0, 0
		t.phase = 2
		return t.read(m)
	}
}

// l1Probe is the spy's probe sweep as a program fragment: visit every
// prime way of every set group in shuffled order, accumulating latency
// per group; the slowest group is the decoded symbol.
type l1Probe struct {
	p        l1Params
	setOrder []int

	g, pg, si    int
	lat, bestLat uint64
	best         int
}

// start resets the sweep and issues its first read.
func (pr *l1Probe) start(m *kernel.Machine) kernel.Status {
	pr.g, pr.pg, pr.si = 0, 0, 0
	pr.lat, pr.bestLat, pr.best = 0, 0, 0
	return pr.read(m)
}

func (pr *l1Probe) read(m *kernel.Machine) kernel.Status {
	set := pr.g*pr.p.setsPerGroup + pr.setOrder[pr.si]
	return m.ReadHeap(uint64(pr.pg)*hw.PageSize + uint64(set)*hw.LineSize)
}

// step consumes the previous read's latency and issues the next one;
// done with the decoded group when the sweep completes.
func (pr *l1Probe) step(m *kernel.Machine) (dec int, done bool, st kernel.Status) {
	pr.lat += m.Latency()
	pr.si++
	if pr.si == len(pr.setOrder) {
		pr.si = 0
		pr.pg++
		if pr.pg == pr.p.primeWays {
			pr.pg = 0
			if pr.lat > pr.bestLat {
				pr.bestLat, pr.best = pr.lat, pr.g
			}
			pr.lat = 0
			pr.g++
			if pr.g == pr.p.groups {
				return pr.best, true, 0
			}
		}
	}
	return 0, false, pr.read(m)
}

// t2Spy probes (and thereby re-primes) its resident lines at the top of
// each slice; the group with the highest total latency is the decoded
// symbol.
type t2Spy struct {
	p    l1Params
	obs  *ObsLog
	prb  l1Probe
	spin epochSpin

	phase int
	r     int
	epoch uint64
	dec   int
}

func (s *t2Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial prime
		s.phase = 1
		return s.prb.start(m)
	case 1:
		if _, done, st := s.prb.step(m); !done {
			return st
		}
		s.phase = 2
		return m.Epoch()
	case 2:
		s.epoch = m.Value()
		s.phase = 3
		return s.spin.start(s.epoch, m)
	case 3: // aligning spin before the first round
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.phase = 4
		return s.prb.start(m)
	case 4: // per-round probe
		dec, done, st := s.prb.step(m)
		if !done {
			return st
		}
		s.dec = dec
		s.phase = 5
		return m.Now()
	case 5: // record the decode, then spin to the next slice
		s.obs.Record(m.Time(), float64(s.dec))
		s.phase = 6
		return s.spin.start(s.epoch, m)
	default: // 6: spinning between rounds
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.r++
		if s.r == s.p.rounds+4 {
			return kernel.Done
		}
		s.phase = 4
		return s.prb.start(m)
	}
}

// buildL1PrimeProbe constructs one T2 configuration; finish turns the
// harness logs into the measured row once the system has run.
func buildL1PrimeProbe(label string, prot core.Config, p l1Params, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	seq := o.symbolSeq(p.rounds+8, p.groups, seed)

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: p.slice, PadCycles: p.pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: p.slice, PadCycles: p.pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(p.rounds+16) * (p.slice + p.pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T2 %s: %v", label, err))
	}

	syms := o.symLog()
	obs := o.obsLog()
	setOrder := o.shuffledOffsets(p.setsPerGroup, 1, seed^0xA0)

	o.spawn(sys, 0, "trojan", 0, &t2Trojan{
		p: p, seq: seq, setOrder: setOrder, syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t2Spy{
		p: p, obs: obs,
		prb:  l1Probe{p: p, setOrder: setOrder},
		spin: epochSpin{burn: 180},
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 4)
		row := o.decodePairs(label, labels, vals, seed^0x5151)
		row.SimOps = rep.Ops
		return row
	}
}

// runL1PrimeProbe runs one T2 configuration and returns its row.
func runL1PrimeProbe(cc *CellContext, label string, prot core.Config, p l1Params, seed uint64) Row {
	sys, finish := buildL1PrimeProbe(label, prot, p, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T2L1PrimeProbe reproduces experiment T2: the L1-D prime-and-probe
// covert channel on a time-shared core, under no protection, flush-only,
// and flush+pad.
func T2L1PrimeProbe(rounds int, seed uint64) Experiment {
	return mustScenario("T2").Experiment(rounds, seed)
}

// llcParams sizes the T3 scenario.
type llcParams struct {
	windows   int
	windowLen uint64
	primeWays int
}

func defaultLLCParams(windows int) llcParams {
	return llcParams{windows: windows, windowLen: 150_000, primeWays: 2}
}

// pagesByColor maps LLC page colour to the domain's heap page indices of
// that colour. This introspection stands in for eviction-set construction
// by timing, a well-established attacker capability (Osvik et al. 2006).
func pagesByColor(sys *kernel.System, domainIdx int) map[int][]int {
	d := sys.Domains()[domainIdx]
	m := sys.Machine()
	out := make(map[int][]int)
	for p := 0; ; p++ {
		pte, ok := d.PT.Lookup(kernel.UserHeapVPN + uint64(p))
		if !ok {
			break
		}
		c := m.Mem.Color(pte.PFN)
		out[c] = append(out[c], p)
	}
	return out
}

func firstN(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}

// t3Trojan thrashes the pages matching the window's symbol for the
// window's whole duration, checking the clock between sweeps.
type t3Trojan struct {
	windows   int
	windowLen uint64
	seq       []int
	trojG     [2][]int
	lineOrder []int
	syms      *SymLog

	phase      int
	w          int
	start, end uint64
	gi, li     int
}

func (t *t3Trojan) read(m *kernel.Machine) kernel.Status {
	pg := t.trojG[t.seq[t.w]][t.gi]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(t.lineOrder[t.li])*hw.LineSize)
}

func (t *t3Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // sample the stream's start time
		t.phase = 1
		return m.Now()
	case 1:
		t.start = m.Time()
		t.phase = 2
		return m.Now() // commit timestamp for window 0
	case 2: // commit the window's symbol
		t.syms.Commit(m.Time(), t.seq[t.w])
		t.end = t.start + uint64(t.w+1)*t.windowLen
		t.phase = 3
		return m.Now() // window deadline check
	case 3:
		if m.Time() < t.end {
			t.gi, t.li = 0, 0
			t.phase = 4
			return t.read(m)
		}
		t.w++
		if t.w == t.windows+4 {
			return kernel.Done
		}
		t.phase = 2
		return m.Now()
	default: // 4: sweeping the symbol's page group
		t.li++
		if t.li == len(t.lineOrder) {
			t.li = 0
			t.gi++
		}
		if t.gi < len(t.trojG[t.seq[t.w]]) {
			return t.read(m)
		}
		t.phase = 3
		return m.Now()
	}
}

// t3Spy alternately probes its two single-colour eviction groups until
// the deadline; whichever group probed slower is the decoded symbol.
type t3Spy struct {
	windowLen uint64
	windows   int
	spyG      [2][]int
	lineOrder []int
	obs       *ObsLog

	phase    int
	grp      int
	pi, li   int
	lat, l0  uint64
	dec      int
	deadline uint64
}

func (s *t3Spy) read(m *kernel.Machine) kernel.Status {
	pg := s.spyG[s.grp][s.pi]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(s.lineOrder[s.li])*hw.LineSize)
}

// advance moves to the next (page, line) of the current group; done
// when the group's sweep is complete.
func (s *t3Spy) advance() (groupDone bool) {
	s.li++
	if s.li == len(s.lineOrder) {
		s.li = 0
		s.pi++
	}
	return s.pi == len(s.spyG[s.grp])
}

func (s *t3Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial prime of both groups, latencies discarded
		s.deadline = uint64(s.windows+4) * s.windowLen
		s.grp, s.pi, s.li = 0, 0, 0
		s.phase = 1
		return s.read(m)
	case 1:
		if !s.advance() {
			return s.read(m)
		}
		if s.grp == 0 {
			s.grp, s.pi, s.li = 1, 0, 0
			return s.read(m)
		}
		s.phase = 2
		return m.Now() // loop deadline check
	case 2:
		if m.Time() >= s.deadline {
			return kernel.Done
		}
		s.grp, s.pi, s.li, s.lat = 0, 0, 0, 0
		s.phase = 3
		return s.read(m)
	default: // 3: timed probe of group 0 then group 1
		s.lat += m.Latency()
		if !s.advance() {
			return s.read(m)
		}
		if s.grp == 0 {
			s.l0 = s.lat
			s.grp, s.pi, s.li, s.lat = 1, 0, 0, 0
			return s.read(m)
		}
		s.dec = 0
		if s.lat > s.l0 {
			s.dec = 1
		}
		s.phase = 4
		return m.Now() // observation timestamp
	case 4:
		s.obs.Record(m.Time(), float64(s.dec))
		s.phase = 2
		return m.Now()
	}
}

// buildLLCPrimeProbe constructs one T3 configuration: Trojan and spy on
// separate cores, running concurrently; no domain switch ever happens,
// so flushing and padding are structurally irrelevant and only colouring
// can help.
func buildLLCPrimeProbe(label string, prot core.Config, p llcParams, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	pcfg.LLCSets = 512 // 256 KiB, 8 colours: small enough to thrash
	pcfg.LLCWays = 8
	pcfg.Frames = 4096

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(1, 2, 3), CodePages: 4, HeapPages: 128},
			{Name: "Lo", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(4, 5, 6, 7), CodePages: 4, HeapPages: 64},
		},
		Schedule:    [][]int{{1}, {0}}, // Lo on core 0, Hi on core 1: co-resident forever
		EnableTrace: o.trace,
		MaxCycles:   uint64(p.windows+8)*p.windowLen + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T3 %s: %v", label, err))
	}

	// The spy builds two single-colour eviction groups from its own
	// pages; the Trojan transmits by thrashing pages of the matching
	// colours. Under colouring the partitions are disjoint, so the
	// Trojan owns no matching pages and falls back to thrashing its
	// own partition — same memory volume, no set conflicts.
	spyPages := pagesByColor(sys, 1)
	trojPages := pagesByColor(sys, 0)
	spyColors := sortedKeys(spyPages)
	if len(spyColors) < 2 {
		panic("attacks: T3: spy needs two colours")
	}
	c0, c1 := spyColors[0], spyColors[1]
	spyG := [2][]int{firstN(spyPages[c0], p.primeWays), firstN(spyPages[c1], p.primeWays)}
	trojG := [2][]int{firstN(trojPages[c0], 10), firstN(trojPages[c1], 10)}
	trojOwn := sortedKeys(trojPages)
	if len(trojG[0]) == 0 {
		trojG[0] = firstN(trojPages[trojOwn[0]], 10)
	}
	if len(trojG[1]) == 0 {
		trojG[1] = firstN(trojPages[trojOwn[len(trojOwn)-1]], 10)
	}

	seq := o.symbolSeq(p.windows+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()
	lineOrder := o.shuffledOffsets(hw.LinesPerPage, 2, seed^0xB7)

	o.spawn(sys, 0, "trojan", 1, &t3Trojan{
		windows: p.windows, windowLen: p.windowLen,
		seq: seq, trojG: trojG, lineOrder: lineOrder, syms: syms,
	})
	o.spawn(sys, 1, "spy", 0, &t3Spy{
		windowLen: p.windowLen, windows: p.windows,
		spyG: spyG, lineOrder: lineOrder, obs: obs,
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 6)
		row := o.decodePairs(label, labels, vals, seed^0x1313)
		row.SimOps = rep.Ops
		return row
	}
}

// runLLCPrimeProbe runs one T3 configuration.
func runLLCPrimeProbe(cc *CellContext, label string, prot core.Config, p llcParams, seed uint64) Row {
	sys, finish := buildLLCPrimeProbe(label, prot, p, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// T3LLCPrimeProbe reproduces experiment T3: the cross-core LLC
// prime-and-probe channel, closed by cache colouring and by nothing else.
func T3LLCPrimeProbe(windows int, seed uint64) Experiment {
	return mustScenario("T3").Experiment(windows, seed)
}
