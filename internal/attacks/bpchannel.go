package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T13, the branch-predictor channel — one of the
// stateful resources §3.1 lists explicitly ("caches, TLBs, branch
// predictors and pre-fetcher state machines"). The predictor's pattern
// history table is indexed by virtual program-counter bits, and both
// domains' code segments share the same virtual base, so a Trojan's
// training of a branch aliases exactly onto the spy's branch at the same
// code offset. The spy reads the secret out of its own misprediction
// latency. Like all core-local time-shared state, the predictor is
// closed by resetting it to a defined state on domain switches (§4.1).

// runBPChannel runs one T13 configuration.
func runBPChannel(label string, prot core.Config, rounds int, seed uint64) Row {
	const (
		slice     = 60_000
		pad       = 20_000
		trainPC   = 2048 // code offset of the aliased branch
		trainings = 40
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 8},
			{Name: "Lo", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 8},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(rounds+16) * (slice + pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T13 %s: %v", label, err))
	}

	seq := SymbolSeq(rounds+8, 2, seed)
	var syms SymLog
	var obs ObsLog

	// Trojan: per slice, train the branch at trainPC towards the
	// symbol's direction, hard (the 2-bit counters saturate).
	if _, err := sys.Spawn(0, "trojan", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < rounds+4; r++ {
			taken := seq[r] == 1
			for i := 0; i < trainings; i++ {
				c.Branch(trainPC, taken)
			}
			syms.Commit(c.Now(), seq[r])
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	// Spy: at its slice start, execute the aliased branch not-taken
	// once and observe the latency: a misprediction means the Trojan
	// trained it taken. The probe itself re-biases the counter, so the
	// spy reads before any retraining.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		e = spinEpoch(c, e)
		for r := 0; r < rounds+4; r++ {
			lat := c.Branch(trainPC, false)
			dec := 0
			if lat > 1 { // misprediction penalty
				dec = 1
			}
			obs.Record(c.Now(), float64(dec))
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 3)
	return decodePairs(label, labels, vals, seed^0xBB13)
}

// T13BranchPredictor reproduces experiment T13: the PC-aliased branch
// predictor channel, closed by the switch-time reset.
func T13BranchPredictor(rounds int, seed uint64) Experiment {
	return mustScenario("T13").Experiment(rounds, seed)
}
