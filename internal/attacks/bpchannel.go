package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T13, the branch-predictor channel — one of the
// stateful resources §3.1 lists explicitly ("caches, TLBs, branch
// predictors and pre-fetcher state machines"). The predictor's pattern
// history table is indexed by virtual program-counter bits, and both
// domains' code segments share the same virtual base, so a Trojan's
// training of a branch aliases exactly onto the spy's branch at the same
// code offset. The spy reads the secret out of its own misprediction
// latency. Like all core-local time-shared state, the predictor is
// closed by resetting it to a defined state on domain switches (§4.1).

const (
	t13Slice     = 60_000
	t13Pad       = 20_000
	t13TrainPC   = 2048 // code offset of the aliased branch
	t13Trainings = 40
)

// t13Trojan trains the branch at trainPC towards the symbol's
// direction, hard (the 2-bit counters saturate), once per slice.
type t13Trojan struct {
	rounds int
	seq    []int
	syms   *SymLog

	phase int
	r, i  int
	epoch uint64
	spin  epochSpin
}

func (t *t13Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0:
		t.phase = 1
		return m.Epoch()
	case 1: // begin round 0's training burst
		t.epoch = m.Value()
		t.i = 0
		t.phase = 2
		return m.Branch(t13TrainPC, t.seq[t.r] == 1)
	case 2: // advance the burst
		t.i++
		if t.i < t13Trainings {
			return m.Branch(t13TrainPC, t.seq[t.r] == 1)
		}
		t.phase = 3
		return m.Now()
	case 3:
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning to the next slice
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.rounds+4 {
			return kernel.Done
		}
		t.i = 0
		t.phase = 2
		return m.Branch(t13TrainPC, t.seq[t.r] == 1)
	}
}

// t13Spy executes the aliased branch not-taken once at its slice start
// and observes the latency: a misprediction means the Trojan trained it
// taken. The probe itself re-biases the counter, so the spy reads
// before any retraining.
type t13Spy struct {
	rounds int
	obs    *ObsLog

	phase int
	r     int
	dec   int
	epoch uint64
	spin  epochSpin
}

func (s *t13Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0:
		s.phase = 1
		return m.Epoch()
	case 1:
		s.epoch = m.Value()
		s.phase = 2
		return s.spin.start(s.epoch, m)
	case 2: // aligning spin before the first round
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.phase = 3
		return m.Branch(t13TrainPC, false)
	case 3: // probe latency arrived
		s.dec = 0
		if m.Latency() > 1 { // misprediction penalty
			s.dec = 1
		}
		s.phase = 4
		return m.Now()
	case 4:
		s.obs.Record(m.Time(), float64(s.dec))
		s.phase = 5
		return s.spin.start(s.epoch, m)
	default: // 5: spinning between rounds
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.r++
		if s.r == s.rounds+4 {
			return kernel.Done
		}
		s.phase = 3
		return m.Branch(t13TrainPC, false)
	}
}

// buildBPChannel constructs one T13 configuration.
func buildBPChannel(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t13Slice, PadCycles: t13Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 8},
			{Name: "Lo", SliceCycles: t13Slice, PadCycles: t13Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 8},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+16) * (t13Slice + t13Pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T13 %s: %v", label, err))
	}

	seq := o.symbolSeq(rounds+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()

	o.spawn(sys, 0, "trojan", 0, &t13Trojan{
		rounds: rounds, seq: seq, syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t13Spy{
		rounds: rounds, obs: obs, spin: epochSpin{burn: 180},
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 3)
		row := o.decodePairs(label, labels, vals, seed^0xBB13)
		row.SimOps = rep.Ops
		return row
	}
}

// runBPChannel runs one T13 configuration.
func runBPChannel(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildBPChannel(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T13BranchPredictor reproduces experiment T13: the PC-aliased branch
// predictor channel, closed by the switch-time reset.
func T13BranchPredictor(rounds int, seed uint64) Experiment {
	return mustScenario("T13").Experiment(rounds, seed)
}
