package attacks

import (
	"fmt"
	"testing"
)

// These tests pin the allocation-discipline contract of the pooled cell
// path: running a variant inside a reused CellContext must be
// bit-identical to context-free execution (CellContext is an execution
// vehicle, never a model input), and the warm per-cell allocation count
// must stay far below the fresh path's, so the hot loop of a sweep
// cannot silently regress back to allocate-per-cell.

// pooledRows compares a pooled row against the fresh row for one
// variant. Rows can carry NaN (ErrRate for decoder-less scenarios), so
// the comparison goes through %#v, under which NaN == NaN.
func rowRepr(r Row) string { return fmt.Sprintf("%#v", r) }

// TestPooledMatchesFresh runs every registry variant twice — once fresh
// (nil context) and once inside a single CellContext shared across the
// whole matrix — and asserts bit-identical rows. Sharing one context
// across all scenarios is the point: every variant after the first runs
// on a dirty, previously-used context, so any scratch buffer that leaks
// state between cells shows up as a row diff.
func TestPooledMatchesFresh(t *testing.T) {
	cc := NewCellContext()
	const seed = 42
	for _, s := range Scenarios() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			rounds := s.Rounds(6)
			for _, v := range s.Variants {
				fresh := v.Run(rounds, seed)
				pooled := v.RunIn(cc, rounds, seed)
				if rowRepr(fresh) != rowRepr(pooled) {
					t.Errorf("%s/%s: pooled row differs from fresh\nfresh:  %s\npooled: %s",
						s.ID, v.Label, rowRepr(fresh), rowRepr(pooled))
				}
			}
		})
	}
}

// allocGateCases are the whole-cell allocation gates: one
// time-multiplexed prime-probe cell (T2), one concurrent occupancy cell
// (T16), and one multi-bit cross-core cell (T17) — the three hot-path
// shapes of the sweep matrix.
var allocGateCases = []struct {
	scenario string
	label    string
	rounds   int
	// maxWarm bounds allocations per cell on a warmed context. Before
	// the channel.Estimator and CellContext existed this path measured
	// ~1371 (T2), ~1223 (T16), ~1511 (T17) allocs per cell at these
	// rounds; warm contexts measure ~70/~146/~164. The bounds leave
	// headroom for Go-version noise while still failing any return to
	// allocate-per-estimate behaviour.
	maxWarm float64
}{
	{"T2", "unprotected", 30, 400},
	{"T16", "no colouring (8 colours)", 30, 400},
	{"T17", "unprotected", 30, 400},
}

// TestCellPathAllocBounded gates end-to-end cell execution: after
// warming a CellContext, a whole RunIn — system construction through
// capacity estimate — must stay under the per-cell allocation budget.
func TestCellPathAllocBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs unshared CPU time")
	}
	for _, tc := range allocGateCases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			s := mustScenario(tc.scenario)
			v, ok := s.VariantByLabel(tc.label)
			if !ok {
				t.Fatalf("variant %q not in %s", tc.label, tc.scenario)
			}
			cc := NewCellContext()
			const seed = 42
			// Two warmup runs grow every pooled buffer to steady state.
			want := rowRepr(v.Run(tc.rounds, seed))
			v.RunIn(cc, tc.rounds, seed)
			v.RunIn(cc, tc.rounds, seed)
			var got string
			allocs := testing.AllocsPerRun(3, func() {
				got = rowRepr(v.RunIn(cc, tc.rounds, seed))
			})
			if got != want {
				t.Fatalf("warm pooled row differs from fresh\nfresh: %s\nwarm:  %s", want, got)
			}
			t.Logf("%s/%s: %.0f allocs/cell warm (bound %.0f)", tc.scenario, tc.label, allocs, tc.maxWarm)
			if allocs > tc.maxWarm {
				t.Errorf("%s/%s: %.0f allocs/cell warm, want <= %.0f",
					tc.scenario, tc.label, allocs, tc.maxWarm)
			}
		})
	}
}

// TestCellContextRepeatStable reruns the same variant on the same
// context and asserts the second, fully-warm run still matches fresh —
// buffer growth from the first pooled run must not bleed into the next.
func TestCellContextRepeatStable(t *testing.T) {
	cc := NewCellContext()
	for _, tc := range allocGateCases {
		s := mustScenario(tc.scenario)
		v, _ := s.VariantByLabel(tc.label)
		want := rowRepr(v.Run(12, 7))
		for i := 0; i < 3; i++ {
			if got := rowRepr(v.RunIn(cc, 12, 7)); got != want {
				t.Fatalf("%s/%s run %d: %s, want %s", tc.scenario, tc.label, i, got, want)
			}
		}
	}
}
