package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T7, the hyperthreading channel of §4.1: SMT
// siblings share all core-local state (L1 caches, TLB, branch predictor,
// prefetcher) *concurrently*, so neither flushing (there is no switch)
// nor colouring (the L1 is virtually indexed) can separate them. The
// paper's conclusion: "hyperthreading is fundamentally insecure, and
// multiple hardware threads must never be allocated to different
// security domains" — a scheduler policy, not a hardware mechanism.
//
// The Trojan on one hardware thread modulates its L1-D footprint; the spy
// on the sibling measures the latency of re-reading its own small
// resident buffer. The defence row co-schedules both domains (identical
// sibling schedules under DisallowSMTSharing), so no cross-domain
// co-residency ever occurs.

const (
	t7WindowLen = 60_000
	t7Slice     = 60_000
	t7Pad       = 20_000
	t7SpyLines  = 48 // spy's resident buffer: 48 lines in distinct sets
	t7TrojWays  = 8  // trojan fills all 8 ways of the shared L1 sets
)

// t7Trojan hammers every way of the L1 sets the spy lives in while the
// window's symbol is 1, and computes otherwise. On SMT siblings this
// evicts the spy's lines *while the spy runs*.
type t7Trojan struct {
	windows  int
	seq      []int
	setOrder []int
	syms     *SymLog

	phase      int
	w          int
	start, end uint64
	pg, si     int
}

func (t *t7Trojan) read(m *kernel.Machine) kernel.Status {
	return m.ReadHeap(uint64(t.pg)*hw.PageSize + uint64(t.setOrder[t.si])*hw.LineSize)
}

func (t *t7Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // sample the stream's start time
		t.phase = 1
		return m.Now()
	case 1:
		t.start = m.Time()
		t.phase = 2
		return m.Now() // commit timestamp for window 0
	case 2:
		t.syms.Commit(m.Time(), t.seq[t.w])
		t.end = t.start + uint64(t.w+1)*t7WindowLen
		t.phase = 3
		return m.Now() // window deadline check
	case 3:
		if m.Time() < t.end {
			if t.seq[t.w] == 1 {
				t.pg, t.si = 0, 0
				t.phase = 4
				return t.read(m)
			}
			t.phase = 5
			return m.Compute(500)
		}
		t.w++
		if t.w == t.windows+4 {
			return kernel.Done
		}
		t.phase = 2
		return m.Now()
	case 4: // hammering sweep
		t.si++
		if t.si == len(t.setOrder) {
			t.si = 0
			t.pg++
		}
		if t.pg < t7TrojWays {
			return t.read(m)
		}
		t.phase = 3
		return m.Now()
	default: // 5: quiet burn finished
		t.phase = 3
		return m.Now()
	}
}

// t7Spy probes once per window, late in the window, then stays off the
// data cache until the next one. Probing continuously would keep the
// spy's own lines most-recently-used, and LRU would then deflect every
// trojan fill onto the trojan's own stale lines — the probe cadence
// must give the eviction set time to win.
type t7Spy struct {
	windows  int
	setOrder []int
	obs      *ObsLog

	phase  int
	w      int
	start  uint64
	target uint64
	si     int
	lat    uint64
}

func (s *t7Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0:
		s.phase = 1
		return m.Now()
	case 1:
		s.start = m.Time()
		s.target = s.start + t7WindowLen*3/4
		s.phase = 2
		return m.Now() // wait-loop check
	case 2:
		if m.Time() < s.target {
			s.phase = 3
			return m.Compute(150)
		}
		s.si, s.lat = 0, 0
		s.phase = 4
		return m.ReadHeap(uint64(s.setOrder[s.si]) * hw.LineSize)
	case 3:
		s.phase = 2
		return m.Now()
	case 4: // timed probe of the resident buffer
		s.lat += m.Latency()
		s.si++
		if s.si < len(s.setOrder) {
			return m.ReadHeap(uint64(s.setOrder[s.si]) * hw.LineSize)
		}
		s.phase = 5
		return m.Now()
	default: // 5: observation timestamp
		s.obs.Record(m.Time(), float64(s.lat))
		s.w++
		if s.w == s.windows+4 {
			return kernel.Done
		}
		s.target = s.start + uint64(s.w)*t7WindowLen + t7WindowLen*3/4
		s.phase = 2
		return m.Now()
	}
}

// buildSMT constructs one T7 configuration. coResident selects the
// insecure placement (Hi and Lo pinned to sibling hardware threads)
// versus the policy-compliant time-shared placement.
func buildSMT(label string, prot core.Config, coResident bool, windows int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pcfg.SMTWays = 2

	schedule := [][]int{{0, 1}, {0, 1}} // co-scheduled time sharing
	spyCPU, trojCPU := 0, 1
	if coResident {
		schedule = [][]int{{1}, {0}} // Lo on thread 0, Hi on thread 1
	}

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t7Slice, PadCycles: t7Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: t7Slice, PadCycles: t7Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    schedule,
		EnableTrace: o.trace,
		MaxCycles:   uint64(windows+16)*t7WindowLen*4 + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T7 %s: %v", label, err))
	}

	seq := o.symbolSeq(windows+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()
	setOrder := o.shuffledOffsets(t7SpyLines, 1, seed^0xE1)

	o.spawn(sys, 0, "trojan", trojCPU, &t7Trojan{
		windows: windows, seq: seq, setOrder: setOrder, syms: syms,
	})
	o.spawn(sys, 1, "spy", spyCPU, &t7Spy{
		windows: windows, setOrder: setOrder, obs: obs,
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 6)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x7777)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runSMT runs one T7 configuration.
func runSMT(cc *CellContext, label string, prot core.Config, coResident bool, windows int, seed uint64) Row {
	sys, finish := buildSMT(label, prot, coResident, windows, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T7SMT reproduces experiment T7: cross-domain SMT co-residency leaks
// through the live-shared L1 despite flushing and colouring; the only
// remedy is the scheduler policy banning such placements.
func T7SMT(windows int, seed uint64) Experiment {
	return mustScenario("T7").Experiment(windows, seed)
}
