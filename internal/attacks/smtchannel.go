package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T7, the hyperthreading channel of §4.1: SMT
// siblings share all core-local state (L1 caches, TLB, branch predictor,
// prefetcher) *concurrently*, so neither flushing (there is no switch)
// nor colouring (the L1 is virtually indexed) can separate them. The
// paper's conclusion: "hyperthreading is fundamentally insecure, and
// multiple hardware threads must never be allocated to different
// security domains" — a scheduler policy, not a hardware mechanism.
//
// The Trojan on one hardware thread modulates its L1-D footprint; the spy
// on the sibling measures the latency of re-reading its own small
// resident buffer. The defence row co-schedules both domains (identical
// sibling schedules under DisallowSMTSharing), so no cross-domain
// co-residency ever occurs.

// runSMT runs one T7 configuration. coResident selects the insecure
// placement (Hi and Lo pinned to sibling hardware threads) versus the
// policy-compliant time-shared placement.
func runSMT(label string, prot core.Config, coResident bool, windows int, seed uint64) Row {
	const (
		windowLen = 60_000
		slice     = 60_000
		pad       = 20_000
		spyLines  = 48 // spy's resident buffer: 48 lines in distinct sets
		trojWays  = 8  // trojan fills all 8 ways of the shared L1 sets
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pcfg.SMTWays = 2

	schedule := [][]int{{0, 1}, {0, 1}} // co-scheduled time sharing
	spyCPU, trojCPU := 0, 1
	if coResident {
		schedule = [][]int{{1}, {0}} // Lo on thread 0, Hi on thread 1
	}

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:  schedule,
		MaxCycles: uint64(windows+16)*windowLen*4 + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T7 %s: %v", label, err))
	}

	seq := SymbolSeq(windows+8, 2, seed)
	var syms SymLog
	var obs ObsLog
	setOrder := shuffledOffsets(spyLines, 1, seed^0xE1)

	// Trojan: sym=1 hammers every way of the L1 sets the spy lives in;
	// sym=0 computes. On SMT siblings this evicts the spy's lines
	// *while the spy runs*.
	if _, err := sys.Spawn(0, "trojan", trojCPU, func(c *kernel.UserCtx) {
		start := c.Now()
		for w := 0; w < windows+4; w++ {
			sym := seq[w]
			syms.Commit(c.Now(), sym)
			end := start + uint64(w+1)*windowLen
			for c.Now() < end {
				if sym == 1 {
					for pg := 0; pg < trojWays; pg++ {
						for _, s := range setOrder {
							c.ReadHeap(uint64(pg)*hw.PageSize + uint64(s)*hw.LineSize)
						}
					}
				} else {
					c.Compute(500)
				}
			}
		}
	}); err != nil {
		panic(err)
	}

	// Spy: probe once per window, late in the window, then stay off
	// the data cache until the next one. Probing continuously would
	// keep the spy's own lines most-recently-used, and LRU would then
	// deflect every trojan fill onto the trojan's own stale lines —
	// the probe cadence must give the eviction set time to win.
	if _, err := sys.Spawn(1, "spy", spyCPU, func(c *kernel.UserCtx) {
		start := c.Now()
		for w := 0; w < windows+4; w++ {
			target := start + uint64(w)*windowLen + windowLen*3/4
			for c.Now() < target {
				c.Compute(150)
			}
			var lat uint64
			for _, s := range setOrder {
				lat += c.ReadHeap(uint64(s) * hw.LineSize)
			}
			obs.Record(c.Now(), float64(lat))
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 6)
	est, err := EstimateLabelled(labels, vals, 16, seed^0x7777)
	if err != nil {
		panic(err)
	}
	return Row{Label: label, Est: est, ErrRate: nan()}
}

// T7SMT reproduces experiment T7: cross-domain SMT co-residency leaks
// through the live-shared L1 despite flushing and colouring; the only
// remedy is the scheduler policy banning such placements.
func T7SMT(windows int, seed uint64) Experiment {
	return mustScenario("T7").Experiment(windows, seed)
}
