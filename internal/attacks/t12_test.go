package attacks

import "testing"

func TestT12Overheads(t *testing.T) {
	e := T12Overheads(6, 42)
	t.Logf("\n%s", e)
	if len(e.Rows) != 4 {
		t.Fatalf("rows = %d", len(e.Rows))
	}
	if s := overheadSlowdown(e.Rows[0]); s != 1.0 {
		t.Fatalf("baseline slowdown = %f", s)
	}
	// Protection must cost something, and each stronger configuration
	// at least as much as the weaker one before it (allowing small
	// cache-alignment noise).
	prev := 1.0
	for _, r := range e.Rows[1:] {
		s := overheadSlowdown(r)
		if s < 1.0 {
			t.Errorf("%s: slowdown %f < 1", r.Label, s)
		}
		if s < prev*0.98 {
			t.Errorf("%s: slowdown %f regressed below %f", r.Label, s, prev)
		}
		prev = s
	}
	if prev < 1.02 {
		t.Errorf("full protection should cost at least a few percent, got %f", prev)
	}
}
