package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/interconn"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T8, the stateless-interconnect channel that the
// paper explicitly EXCLUDES from time protection's scope (§2): a Trojan
// modulates its memory-bus usage; a spy on another core measures its own
// achieved bandwidth. Three claims are checked empirically:
//
//  1. Full time protection (flush+pad+colour+clone+IRQ partitioning)
//     does not close the channel — it is a bandwidth channel, not a
//     state channel.
//  2. An Intel-MBA-style approximate bandwidth limiter reduces but does
//     not eliminate it (footnote 1: "the approximate enforcement is not
//     sufficient for preventing covert channels").
//  3. Stateless interconnects reveal no ADDRESS information: a Trojan
//     modulating only WHICH addresses it streams (same volume) is
//     invisible, supporting the paper's "no such side channels have been
//     demonstrated ... and they are likely impossible".

type busMode int

const (
	busVolume  busMode = iota // Trojan modulates traffic volume
	busAddress                // Trojan modulates addresses at constant volume
)

const (
	t8WindowLen = 80_000
	t8SpyReads  = 48
)

// t8Trojan streams (or idles) against the bus according to the window's
// symbol.
type t8Trojan struct {
	windows   int
	mode      busMode
	seq       []int
	trojOrder []int
	syms      *SymLog

	phase      int
	w          int
	start, end uint64
	pos        int
}

// payload issues the window's next unit of traffic: a streaming miss, a
// quiet burn, or (address mode) a constant-volume read whose buffer
// half is the symbol.
func (t *t8Trojan) payload(m *kernel.Machine) kernel.Status {
	heap := m.HeapBytes()
	sym := t.seq[t.w]
	switch {
	case t.mode == busVolume && sym == 1:
		off := uint64(t.trojOrder[t.pos%len(t.trojOrder)]*hw.LineSize) % heap
		t.pos++
		return m.ReadHeap(off)
	case t.mode == busVolume:
		return m.Compute(300)
	default:
		off := uint64(t.trojOrder[t.pos%len(t.trojOrder)]*hw.LineSize) % (heap / 2)
		if sym == 1 {
			off += heap / 2
		}
		t.pos++
		return m.ReadHeap(off)
	}
}

func (t *t8Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // sample the stream's start time
		t.phase = 1
		return m.Now()
	case 1:
		t.start = m.Time()
		t.phase = 2
		return m.Now() // commit timestamp for window 0
	case 2:
		t.syms.Commit(m.Time(), t.seq[t.w])
		t.end = t.start + uint64(t.w+1)*t8WindowLen
		t.phase = 3
		return m.Now() // window deadline check
	case 3:
		if m.Time() < t.end {
			t.phase = 4
			return t.payload(m)
		}
		t.w++
		if t.w == t.windows+4 {
			return kernel.Done
		}
		t.phase = 2
		return m.Now()
	default: // 4: the payload op completed; re-check the window
		t.phase = 3
		return m.Now()
	}
}

// t8Spy streams its own buffer and times a fixed number of misses — a
// bandwidth probe.
type t8Spy struct {
	windows  int
	spyOrder []int
	obs      *ObsLog

	phase    int
	deadline uint64
	pos, i   int
	lat      uint64
}

func (s *t8Spy) read(m *kernel.Machine) kernel.Status {
	off := uint64(s.spyOrder[s.pos%len(s.spyOrder)]*hw.LineSize) % m.HeapBytes()
	s.pos++
	return m.ReadHeap(off)
}

func (s *t8Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // loop deadline check
		s.deadline = uint64(s.windows+4) * t8WindowLen
		s.phase = 1
		return m.Now()
	case 1:
		if m.Time() >= s.deadline {
			return kernel.Done
		}
		s.i, s.lat = 0, 0
		s.phase = 2
		return s.read(m)
	case 2: // timed probe burst
		s.lat += m.Latency()
		s.i++
		if s.i < t8SpyReads {
			return s.read(m)
		}
		s.phase = 3
		return m.Now() // observation timestamp
	default: // 3
		s.obs.Record(m.Time(), float64(s.lat))
		s.phase = 1
		return m.Now()
	}
}

// buildBus constructs one T8 configuration.
func buildBus(label string, prot core.Config, limiter *interconn.MBALimiter, tdm bool, mode busMode, windows int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	pcfg.LLCSets = 512 // small LLC so streams miss continuously
	pcfg.LLCWays = 8
	pcfg.Frames = 4096
	// Bandwidth-bound regime: most of the miss latency is bus
	// occupancy, as on a saturated memory system. A single in-order
	// core can then load the bus to ~60% duty and contention becomes
	// the dominant latency term — the premise of the §2 channel.
	pcfg.Lat.BusBeat = 150
	pcfg.Lat.Mem = 60

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			// 126 heap pages = 42 full colour-rotation cycles, so the
			// two buffer halves used by the address-encoding mode have
			// exactly equal colour composition (21 pages per colour each).
			{Name: "Hi", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(1, 2, 3), CodePages: 4, HeapPages: 126},
			{Name: "Lo", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(4, 5, 6, 7), CodePages: 4, HeapPages: 128},
		},
		Schedule:    [][]int{{1}, {0}}, // Lo on core 0, Hi on core 1
		EnableTrace: o.trace,
		MaxCycles:   uint64(windows+8)*t8WindowLen + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T8 %s: %v", label, err))
	}
	if limiter != nil {
		sys.Machine().Bus.SetLimiter(limiter)
	}
	if tdm {
		// The hypothetical hardware support of §2: strict
		// time-division arbitration. Each core waits for its own
		// fixed slot — a pure function of its own clock, so other
		// cores' traffic is invisible by construction.
		sys.Machine().Bus.SetTDM(interconn.NewTDMSchedule(pcfg.Cores, pcfg.Lat.BusBeat*2, pcfg.Lat.BusBeat))
	}

	seq := o.symbolSeq(windows+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()
	// Shuffled full-buffer orders: each stream is several times larger
	// than its LLC partition, so misses are sustained, and the
	// shuffling defeats the prefetcher.
	trojOrder := o.shuffledOffsets(126*hw.LinesPerPage, 1, seed^0xF1)
	spyOrder := o.shuffledOffsets(128*hw.LinesPerPage, 1, seed^0xF2)

	o.spawn(sys, 0, "trojan", 1, &t8Trojan{
		windows: windows, mode: mode, seq: seq, trojOrder: trojOrder, syms: syms,
	})
	o.spawn(sys, 1, "spy", 0, &t8Spy{
		windows: windows, spyOrder: spyOrder, obs: obs,
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 15)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x8888)
		if err != nil {
			panic(err)
		}
		// Amplitude: how much the Trojan slows the spy's probe — the
		// raw signal the MBA limiter attenuates even where capacity
		// survives.
		var sum [2]float64
		var n [2]int
		for i, l := range labels {
			if l == 0 || l == 1 {
				sum[l] += vals[i]
				n[l]++
			}
		}
		amp := 0.0
		if n[0] > 0 && n[1] > 0 {
			amp = sum[1]/float64(n[1]) - sum[0]/float64(n[0])
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops,
			Extra: []KV{{K: "amplitude_cyc", V: amp}}}
	}
}

// runBus runs one T8 configuration.
func runBus(cc *CellContext, label string, prot core.Config, limiter *interconn.MBALimiter, tdm bool, mode busMode, windows int, seed uint64) Row {
	sys, finish := buildBus(label, prot, limiter, tdm, mode, windows, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T8Bus reproduces experiment T8: the interconnect bandwidth channel is
// out of time protection's reach; MBA-style limiting only attenuates it;
// and no address information crosses the bus.
func T8Bus(windows int, seed uint64) Experiment {
	return mustScenario("T8").Experiment(windows, seed)
}
