package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/interconn"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T8, the stateless-interconnect channel that the
// paper explicitly EXCLUDES from time protection's scope (§2): a Trojan
// modulates its memory-bus usage; a spy on another core measures its own
// achieved bandwidth. Three claims are checked empirically:
//
//  1. Full time protection (flush+pad+colour+clone+IRQ partitioning)
//     does not close the channel — it is a bandwidth channel, not a
//     state channel.
//  2. An Intel-MBA-style approximate bandwidth limiter reduces but does
//     not eliminate it (footnote 1: "the approximate enforcement is not
//     sufficient for preventing covert channels").
//  3. Stateless interconnects reveal no ADDRESS information: a Trojan
//     modulating only WHICH addresses it streams (same volume) is
//     invisible, supporting the paper's "no such side channels have been
//     demonstrated ... and they are likely impossible".

type busMode int

const (
	busVolume  busMode = iota // Trojan modulates traffic volume
	busAddress                // Trojan modulates addresses at constant volume
)

// runBus runs one T8 configuration.
func runBus(label string, prot core.Config, limiter *interconn.MBALimiter, tdm bool, mode busMode, windows int, seed uint64) Row {
	const (
		windowLen = 80_000
		spyReads  = 48
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	pcfg.LLCSets = 512 // small LLC so streams miss continuously
	pcfg.LLCWays = 8
	pcfg.Frames = 4096
	// Bandwidth-bound regime: most of the miss latency is bus
	// occupancy, as on a saturated memory system. A single in-order
	// core can then load the bus to ~60% duty and contention becomes
	// the dominant latency term — the premise of the §2 channel.
	pcfg.Lat.BusBeat = 150
	pcfg.Lat.Mem = 60

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			// 126 heap pages = 42 full colour-rotation cycles, so the
			// two buffer halves used by the address-encoding mode have
			// exactly equal colour composition (21 pages per colour each).
			{Name: "Hi", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(1, 2, 3), CodePages: 4, HeapPages: 126},
			{Name: "Lo", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.NewColorSet(4, 5, 6, 7), CodePages: 4, HeapPages: 128},
		},
		Schedule:  [][]int{{1}, {0}}, // Lo on core 0, Hi on core 1
		MaxCycles: uint64(windows+8)*windowLen + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T8 %s: %v", label, err))
	}
	if limiter != nil {
		sys.Machine().Bus.SetLimiter(limiter)
	}
	if tdm {
		// The hypothetical hardware support of §2: strict
		// time-division arbitration. Each core waits for its own
		// fixed slot — a pure function of its own clock, so other
		// cores' traffic is invisible by construction.
		sys.Machine().Bus.SetTDM(interconn.NewTDMSchedule(pcfg.Cores, pcfg.Lat.BusBeat*2, pcfg.Lat.BusBeat))
	}

	seq := SymbolSeq(windows+8, 2, seed)
	var syms SymLog
	var obs ObsLog
	// Shuffled full-buffer orders: each stream is several times larger
	// than its LLC partition, so misses are sustained, and the
	// shuffling defeats the prefetcher.
	trojOrder := shuffledOffsets(126*hw.LinesPerPage, 1, seed^0xF1)
	spyOrder := shuffledOffsets(128*hw.LinesPerPage, 1, seed^0xF2)

	if _, err := sys.Spawn(0, "trojan", 1, func(c *kernel.UserCtx) {
		heap := c.HeapBytes()
		start := c.Now()
		pos := 0
		for w := 0; w < windows+4; w++ {
			sym := seq[w]
			syms.Commit(c.Now(), sym)
			end := start + uint64(w+1)*windowLen
			for c.Now() < end {
				switch {
				case mode == busVolume && sym == 1:
					// Saturate the bus with streaming misses.
					c.ReadHeap(uint64(trojOrder[pos%len(trojOrder)]*hw.LineSize) % heap)
					pos++
				case mode == busVolume:
					c.Compute(300)
				default:
					// Address mode: constant volume, the symbol
					// only picks which half of the buffer.
					off := uint64(trojOrder[pos%len(trojOrder)]*hw.LineSize) % (heap / 2)
					if sym == 1 {
						off += heap / 2
					}
					c.ReadHeap(off)
					pos++
				}
			}
		}
	}); err != nil {
		panic(err)
	}

	// Spy: stream its own buffer and time a fixed number of misses —
	// a bandwidth probe.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		heap := c.HeapBytes()
		deadline := uint64(windows+4) * windowLen
		pos := 0
		for c.Now() < deadline {
			var lat uint64
			for i := 0; i < spyReads; i++ {
				lat += c.ReadHeap(uint64(spyOrder[pos%len(spyOrder)]*hw.LineSize) % heap)
				pos++
			}
			obs.Record(c.Now(), float64(lat))
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 15)
	est, err := EstimateLabelled(labels, vals, 16, seed^0x8888)
	if err != nil {
		panic(err)
	}
	// Amplitude: how much the Trojan slows the spy's probe — the raw
	// signal the MBA limiter attenuates even where capacity survives.
	var sum [2]float64
	var n [2]int
	for i, l := range labels {
		if l == 0 || l == 1 {
			sum[l] += vals[i]
			n[l]++
		}
	}
	amp := 0.0
	if n[0] > 0 && n[1] > 0 {
		amp = sum[1]/float64(n[1]) - sum[0]/float64(n[0])
	}
	return Row{Label: label, Est: est, ErrRate: nan(), Extra: []KV{{K: "amplitude_cyc", V: amp}}}
}

// T8Bus reproduces experiment T8: the interconnect bandwidth channel is
// out of time protection's reach; MBA-style limiting only attenuates it;
// and no address information crosses the bus.
func T8Bus(windows int, seed uint64) Experiment {
	return mustScenario("T8").Experiment(windows, seed)
}
