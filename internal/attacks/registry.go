package attacks

import (
	"fmt"
	"strings"
	"sync"

	"timeprot/internal/core"
	"timeprot/internal/hw/interconn"
)

// This file is the scenario registry: the single declarative table of
// every attack scenario, its canonical mitigation variants, and its
// rounds policy. The T2..T14 experiment constructors are thin views over
// it, and internal/experiment's sweep engine addresses individual
// (scenario, variant, seed) cells through it. Every variant runner
// builds a private kernel.System, so distinct cells may execute
// concurrently with bit-identical results.

// Variant is one named protection configuration within a scenario's
// canonical sweep — one row of the experiment's table.
type Variant struct {
	// Label names the configuration exactly as it appears in the
	// experiment row (e.g. "flush+pad (full)").
	Label string
	// Prot is the protection configuration the variant arms. For
	// variants whose distinguishing knob is not a core.Config field
	// (e.g. T11's pad budget) it records the base configuration.
	Prot core.Config
	// run executes the variant at the given rounds and seed, routing
	// allocations through cc when non-nil.
	run func(cc *CellContext, rounds int, seed uint64) Row
}

// NewVariant builds a variant from its runner, for dynamically
// registered scenarios assembled outside this package (the discovery
// fuzzer's witness replays). Static-table variants use the package's
// internal constructors.
func NewVariant(label string, prot core.Config, run func(cc *CellContext, rounds int, seed uint64) Row) Variant {
	return Variant{Label: label, Prot: prot, run: run}
}

// Run executes the variant and returns its measured row. Each call
// constructs a fresh simulated system, so concurrent calls are safe and
// results depend only on (rounds, seed). Run stamps the row with the
// rounds it measured; adaptive callers that re-run a variant across a
// rounds ladder overwrite RoundsRun with the ladder's total.
func (v Variant) Run(rounds int, seed uint64) Row {
	return v.RunIn(nil, rounds, seed)
}

// RunIn is Run on a reusable cell context: the variant's machine comes
// from the context's pool and its harness scratch from the context's
// buffers, with bit-identical results. A nil context is exactly Run.
// The context's machines are released (and its buffers rewound on the
// next run) even if the scenario panics.
func (v Variant) RunIn(cc *CellContext, rounds int, seed uint64) Row {
	cc.beginRun()
	defer cc.endRun()
	row := v.run(cc, rounds, seed)
	row.Rounds = rounds
	row.RoundsRun = rounds
	return row
}

// Scenario is one attack scenario: identity, canonical variants, rounds
// policy, and (when the underlying runner is configuration-shaped) a
// custom-configuration entry point.
type Scenario struct {
	// ID is the experiment identifier ("T2".."T14").
	ID string
	// Name is the short CLI name ("l1pp", "bus", ...).
	Name string
	// Title describes the scenario.
	Title string
	// Version is the scenario's model-version tag, part of the sweep
	// store's cache key. Bump it whenever the scenario's construction
	// or measurement changes in a way that can alter its rows (program
	// logic, platform sizing, estimator inputs); stale cached cells
	// then automatically read as misses. Execution-path refactors that
	// the equivalence tests prove row-identical do not bump it.
	Version int
	// Rounds maps requested rounds to the effective per-variant rounds
	// (raising to the scenario's statistical minimum, or rescaling for
	// scenarios whose unit of work differs).
	Rounds func(requested int) int
	// Variants are the canonical configuration rows, in table order.
	Variants []Variant
	// Custom runs the scenario under an arbitrary protection
	// configuration; nil when the scenario needs bespoke per-variant
	// setup that a bare core.Config cannot express. The cell context is
	// nil for one-off callers (RunCustom).
	Custom func(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row
	// finalize post-processes a complete ordered row set (e.g. T12's
	// slowdown-vs-baseline column); nil when rows are independent.
	finalize func(rows []Row) []Row
	// Dynamic marks a scenario registered at runtime (the discovery
	// fuzzer's F1, F2, … witness replays) rather than declared in the
	// static table. Dynamic scenarios resolve by explicit ID/name but
	// are excluded from the "all" sweep selection, so EXPERIMENTS.md and
	// the committed docs store stay a pure function of the static
	// registry; their documentation lives in generated DISCOVERIES.md.
	Dynamic bool
}

// RunCustom runs the scenario under an arbitrary protection
// configuration via its Custom entry point, stamping the row's rounds
// metadata exactly as Variant.Run does. It panics if the scenario has
// no Custom runner; callers gate on s.Custom != nil.
func (s Scenario) RunCustom(label string, prot core.Config, rounds int, seed uint64) Row {
	row := s.Custom(nil, label, prot, rounds, seed)
	row.Rounds = rounds
	row.RoundsRun = rounds
	return row
}

// VariantByLabel returns the variant with the exact label.
func (s Scenario) VariantByLabel(label string) (Variant, bool) {
	for _, v := range s.Variants {
		if v.Label == label {
			return v, true
		}
	}
	return Variant{}, false
}

// Finalize applies the scenario's cross-row post-processing to rows in
// canonical variant order. Scenarios without relative metrics return the
// rows unchanged. Callers running a subset of variants should note that
// relative metrics are computed against the first row present.
func (s Scenario) Finalize(rows []Row) []Row {
	if s.finalize == nil {
		return rows
	}
	return s.finalize(rows)
}

// Experiment runs every canonical variant at the given rounds and seed
// and assembles the experiment table.
func (s Scenario) Experiment(rounds int, seed uint64) Experiment {
	rows := make([]Row, 0, len(s.Variants))
	for _, v := range s.Variants {
		rows = append(rows, v.Run(rounds, seed))
	}
	return Experiment{ID: s.ID, Title: s.Title, Rows: s.Finalize(rows)}
}

// minRounds returns the standard rounds policy: raise to min.
func minRounds(min int) func(int) int {
	return func(r int) int {
		if r < min {
			return min
		}
		return r
	}
}

// The dynamic registry holds runtime-registered scenarios (discovery
// witnesses). Registration happens once at process start — from the
// root package's committed-discovery loader — but the guard makes
// concurrent registration and lookup safe anyway.
var (
	dynMu        sync.RWMutex
	dynScenarios []Scenario
)

// RegisterScenario adds a dynamically discovered scenario to the
// registry. The scenario must be marked Dynamic, carry an ID, name,
// rounds policy and at least one variant, and must not collide with any
// static or already-registered ID or name (case-insensitively).
func RegisterScenario(s Scenario) error {
	if !s.Dynamic {
		return fmt.Errorf("attacks: RegisterScenario requires Dynamic=true (static scenarios live in the table)")
	}
	if s.ID == "" || s.Name == "" {
		return fmt.Errorf("attacks: dynamic scenario needs both ID and Name")
	}
	if s.Rounds == nil {
		return fmt.Errorf("attacks: dynamic scenario %s has no rounds policy", s.ID)
	}
	if len(s.Variants) == 0 {
		return fmt.Errorf("attacks: dynamic scenario %s has no variants", s.ID)
	}
	dynMu.Lock()
	defer dynMu.Unlock()
	for _, have := range scenarios {
		if strings.EqualFold(have.ID, s.ID) || strings.EqualFold(have.Name, s.Name) {
			return fmt.Errorf("attacks: dynamic scenario %s/%s collides with static %s/%s", s.ID, s.Name, have.ID, have.Name)
		}
	}
	for _, have := range dynScenarios {
		if strings.EqualFold(have.ID, s.ID) || strings.EqualFold(have.Name, s.Name) {
			return fmt.Errorf("attacks: dynamic scenario %s/%s already registered", s.ID, s.Name)
		}
	}
	dynScenarios = append(dynScenarios, s)
	return nil
}

// ResetDynamicScenarios removes every dynamically registered scenario.
// It exists for tests that exercise registration; production code
// registers once at process start and never unregisters.
func ResetDynamicScenarios() {
	dynMu.Lock()
	defer dynMu.Unlock()
	dynScenarios = nil
}

// Scenarios returns the registry in presentation order: the static
// table followed by dynamically registered scenarios in registration
// order. The returned scenarios share their variant tables; treat them
// as read-only.
func Scenarios() []Scenario {
	dynMu.RLock()
	defer dynMu.RUnlock()
	if len(dynScenarios) == 0 {
		return scenarios
	}
	out := make([]Scenario, 0, len(scenarios)+len(dynScenarios))
	out = append(out, scenarios...)
	return append(out, dynScenarios...)
}

// ScenarioByID finds a scenario by experiment ID or short name,
// case-insensitively, searching the static table then the dynamic
// registry.
func ScenarioByID(key string) (Scenario, bool) {
	for _, s := range scenarios {
		if strings.EqualFold(s.ID, key) || strings.EqualFold(s.Name, key) {
			return s, true
		}
	}
	dynMu.RLock()
	defer dynMu.RUnlock()
	for _, s := range dynScenarios {
		if strings.EqualFold(s.ID, key) || strings.EqualFold(s.Name, key) {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScenarioIDs returns the experiment IDs in presentation order,
// including dynamically registered scenarios.
func ScenarioIDs() []string {
	all := Scenarios()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.ID
	}
	return out
}

// mustScenario is the registry lookup for the T2..T14 constructors.
func mustScenario(id string) Scenario {
	s, ok := ScenarioByID(id)
	if !ok {
		panic("attacks: scenario " + id + " missing from registry")
	}
	return s
}

// variant builds a Variant for a runner with the standard
// (cc, label, prot, rounds, seed) shape.
func variant(label string, prot core.Config, run func(*CellContext, string, core.Config, int, uint64) Row) Variant {
	return Variant{Label: label, Prot: prot, run: func(cc *CellContext, rounds int, seed uint64) Row {
		return run(cc, label, prot, rounds, seed)
	}}
}

// Derived configurations used by the canonical sweeps.
func flushOnlyConfig() core.Config {
	c := core.NoProtection()
	c.FlushOnSwitch = true
	return c
}

func flushPadConfig() core.Config {
	c := flushOnlyConfig()
	c.PadSwitch = true
	return c
}

func fullWithout(mut func(*core.Config)) core.Config {
	c := core.FullProtection()
	mut(&c)
	return c
}

// Custom-configuration adapters for runners whose parameters derive from
// rounds.
func customL1(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	return runL1PrimeProbe(cc, label, prot, defaultL1Params(rounds), seed)
}

func customLLC(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	return runLLCPrimeProbe(cc, label, prot, defaultLLCParams(rounds), seed)
}

func customOverhead(cc *CellContext, label string, prot core.Config, rounds int, _ uint64) Row {
	if rounds < 4 {
		rounds = 4
	}
	row, _ := runOverhead(cc, label, prot, rounds)
	return row
}

// finalizeOverheads appends the slowdown-vs-first-row column T12
// reports: each row's cycles_per_op relative to the first row's.
func finalizeOverheads(rows []Row) []Row {
	base := 0.0
	for i := range rows {
		cpo := extraValue(rows[i], "cycles_per_op")
		if i == 0 {
			base = cpo
		}
		slow := 0.0
		if base > 0 {
			slow = cpo / base
		}
		rows[i].Extra = append(rows[i].Extra, KV{K: "slowdown", V: slow})
	}
	return rows
}

// extraValue returns the named Extra metric, or 0 when absent.
func extraValue(r Row, key string) float64 {
	for _, kv := range r.Extra {
		if kv.K == key {
			return kv.V
		}
	}
	return 0
}

// scenarios is the registry table. Variant labels, orders, and seed
// derivations reproduce the historical T2..T14 tables exactly.
var scenarios = []Scenario{
	{
		ID: "T2", Name: "l1pp", Version: 1,
		Title:  "L1-D prime-and-probe, time-shared core (§3.1)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("unprotected", core.NoProtection(), customL1),
			variant("flush-only", flushOnlyConfig(), customL1),
			variant("flush+pad (full)", core.FullProtection(), customL1),
		},
		Custom: customL1,
	},
	{
		ID: "T3", Name: "llcpp", Version: 1,
		Title:  "LLC prime-and-probe, concurrent cross-core (§4.1)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("unprotected", core.NoProtection(), customLLC),
			variant("flush+pad (no colour)", flushPadConfig(), customLLC),
			variant("coloured (full)", core.FullProtection(), customLLC),
		},
		Custom: customLLC,
	},
	{
		ID: "T4", Name: "flush", Version: 1,
		Title:  "flush-latency channel: switch gap vs dirty lines (§4.2)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("flush, no pad", fullWithout(func(c *core.Config) { c.PadSwitch = false }), runFlushLatency),
			variant("flush+pad (full)", core.FullProtection(), runFlushLatency),
		},
		Custom: runFlushLatency,
	},
	{
		ID: "T5", Name: "kimage", Version: 1,
		Title:  "kernel-image channel via shared kernel text (§4.2)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("shared kernel (no clone)", fullWithout(func(c *core.Config) { c.CloneKernel = false }), runKernelImage),
			variant("cloned kernel (full)", core.FullProtection(), runKernelImage),
		},
		Custom: runKernelImage,
	},
	{
		ID: "T6", Name: "irq", Version: 1,
		Title:  "interrupt channel: Trojan-timed completion IRQ (§4.2)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("unpartitioned IRQs", fullWithout(func(c *core.Config) { c.PartitionIRQs = false }), runIRQChannel),
			variant("partitioned (full)", core.FullProtection(), runIRQChannel),
		},
		Custom: runIRQChannel,
	},
	{
		ID: "T7", Name: "smt", Version: 1,
		Title:  "SMT sibling channel through the live-shared L1 (§4.1)",
		Rounds: minRounds(30),
		Variants: []Variant{
			{
				Label: "SMT co-resident (flush+colour)",
				Prot:  fullWithout(func(c *core.Config) { c.DisallowSMTSharing = false }),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runSMT(cc, "SMT co-resident (flush+colour)",
						fullWithout(func(c *core.Config) { c.DisallowSMTSharing = false }), true, rounds, seed)
				},
			},
			{
				Label: "policy: co-scheduled domains",
				Prot:  core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runSMT(cc, "policy: co-scheduled domains", core.FullProtection(), false, rounds, seed)
				},
			},
		},
	},
	{
		ID: "T8", Name: "bus", Version: 1,
		Title:  "stateless interconnect: bandwidth covert channel (§2)",
		Rounds: minRounds(30),
		Variants: []Variant{
			{
				Label: "full protection, volume", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runBus(cc, "full protection, volume", core.FullProtection(), nil, false, busVolume, rounds, seed)
				},
			},
			{
				// An unthrottled streaming core issues roughly one
				// transfer per ~300 cycles (~40 per 12k-cycle window);
				// a quota of 15 cuts the sustained rate to ~37% while
				// still letting window-start bursts through — the
				// approximate enforcement of footnote 1, which
				// attenuates the channel without closing it.
				Label: "with MBA limiter, volume", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					mba := interconn.NewMBALimiter(12_000)
					mba.SetQuota(1, 15) // throttle the Trojan's core
					return runBus(cc, "with MBA limiter, volume", core.FullProtection(), mba, false, busVolume, rounds, seed)
				},
			},
			{
				Label: "TDM bus (hypothetical hw)", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runBus(cc, "TDM bus (hypothetical hw)", core.FullProtection(), nil, true, busVolume, rounds, seed)
				},
			},
			{
				Label: "address encoding (side ch.)", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runBus(cc, "address encoding (side ch.)", core.FullProtection(), nil, false, busAddress, rounds, seed)
				},
			},
		},
	},
	{
		ID: "T9", Name: "downgrader", Version: 1,
		Title:  "Fig. 1 downgrader: secret-dependent message timing (§3.2, §4.3)",
		Rounds: minRounds(120),
		Variants: []Variant{
			{
				Label: "unprotected", Prot: core.NoProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runDowngrader(cc, "unprotected", core.NoProtection(), padNone, rounds, seed)
				},
			},
			{
				Label: "pad-only (no min-delivery)",
				Prot:  fullWithout(func(c *core.Config) { c.MinDeliveryIPC = false }),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runDowngrader(cc, "pad-only (no min-delivery)",
						fullWithout(func(c *core.Config) { c.MinDeliveryIPC = false }), padNone, rounds, seed)
				},
			},
			{
				Label: "full, busy-loop pad", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runDowngrader(cc, "full, busy-loop pad", core.FullProtection(), padBusyLoop, rounds, seed)
				},
			},
			{
				Label: "full, interim process", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, seed uint64) Row {
					return runDowngrader(cc, "full, interim process", core.FullProtection(), padInterim, rounds, seed)
				},
			},
		},
	},
	{
		ID: "T11", Name: "padding", Version: 1,
		Title:  "padding sufficiency by timestamp comparison (§5)",
		Rounds: minRounds(20),
		Variants: []Variant{
			{
				Label: "pad=25k (sufficient)", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, _ uint64) Row {
					return runPaddingSufficiency(cc, "pad=25k (sufficient)", 25_000, rounds)
				},
			},
			{
				Label: "pad=600 (insufficient)", Prot: core.FullProtection(),
				run: func(cc *CellContext, rounds int, _ uint64) Row {
					return runPaddingSufficiency(cc, "pad=600 (insufficient)", 600, rounds)
				},
			},
		},
	},
	{
		ID: "T12", Name: "overheads", Version: 1,
		Title: "protection overheads on a cache-sensitive workload",
		// T12's unit of work is heavier than a transmission round;
		// requested rounds rescale so the default sweep stays fast.
		Rounds: func(r int) int { return r/8 + 4 },
		Variants: []Variant{
			variant("unprotected", core.NoProtection(), customOverhead),
			variant("flush", flushOnlyConfig(), customOverhead),
			variant("flush+pad", flushPadConfig(), customOverhead),
			variant("full (colour+clone+irq)", core.FullProtection(), customOverhead),
		},
		Custom:   customOverhead,
		finalize: finalizeOverheads,
	},
	{
		ID: "T13", Name: "branch", Version: 1,
		Title:  "branch-predictor channel via PC aliasing (§3.1)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("no flush (pad+colour only)", fullWithout(func(c *core.Config) { c.FlushOnSwitch = false }), runBPChannel),
			variant("flush (full)", core.FullProtection(), runBPChannel),
		},
		Custom: runBPChannel,
	},
	{
		ID: "T14", Name: "tlb", Version: 1,
		Title:  "TLB capacity channel: footprint vs page walks (§3.1, §5.3)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("no flush (pad+colour only)", fullWithout(func(c *core.Config) { c.FlushOnSwitch = false }), runTLBChannel),
			variant("flush (full)", core.FullProtection(), runTLBChannel),
		},
		Custom: runTLBChannel,
	},
	{
		ID: "T15", Name: "prefetch", Version: 1,
		Title:  "stride-prefetcher channel: speculative fills on a fixed footprint (§4.1)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("no flush (pad+colour only)", fullWithout(func(c *core.Config) { c.FlushOnSwitch = false }), runPrefetchChannel),
			variant("flush (full)", core.FullProtection(), runPrefetchChannel),
		},
		Custom: runPrefetchChannel,
	},
	{
		ID: "T16", Name: "occupancy", Version: 1,
		Title:    "whole-LLC occupancy channel across colour-partition widths (§4.1)",
		Rounds:   minRounds(30),
		Variants: t16Variants(),
	},
	{
		ID: "T17", Name: "xcore", Version: 1,
		Title:  "multi-bit concurrent cross-core LLC channel (§4.1)",
		Rounds: minRounds(30),
		Variants: []Variant{
			variant("unprotected", core.NoProtection(), runXCore),
			variant("flush+pad (no colour)", flushPadConfig(), runXCore),
			variant("coloured (full)", core.FullProtection(), runXCore),
		},
		Custom: runXCore,
	},
}

// t16Variants builds T16's colour-partition-width sweep: each variant
// carries its own domain colour layout, so the distinguishing knob is
// the t16Spec table rather than a core.Config field.
func t16Variants() []Variant {
	labels := []string{
		"no colouring (8 colours)",
		"coarse: 2 colours, no split",
		"split: 4 colours (1+2)",
		"split: 8 colours (full)",
	}
	out := make([]Variant, 0, len(labels))
	for _, label := range labels {
		label := label
		out = append(out, Variant{
			Label: label,
			Prot:  t16Spec(label).prot,
			run: func(cc *CellContext, rounds int, seed uint64) Row {
				return runOccupancy(cc, label, rounds, seed)
			},
		})
	}
	return out
}
