package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T17, the concurrent cross-core LLC covert
// channel with a multi-bit symbol alphabet. T3 demonstrates the
// cross-core channel at one bit per window; T17 transmits over a
// 4-symbol alphabet — the Trojan picks WHICH of four single-colour
// eviction groups to thrash, the spy probes all four and decodes the
// slowest — so a single window carries up to two bits and the capacity
// estimator is exercised well beyond binary channel matrices (4x4
// confusion matrices with asymmetric error structure). The defence
// story is T3's: flushing and padding are structurally irrelevant to a
// concurrent observer, and only a disjoint colour partition (under
// which the Trojan owns no pages of the spy's probe colours and falls
// back to thrashing its own partition) closes the channel.

const (
	t17Arity     = 4
	t17WindowLen = 150_000
	t17PrimeWays = 2  // spy pages per probe group
	t17ThrashPgs = 10 // Trojan pages per symbol group
)

// T17's Trojan is the shared windowedThrasher with one page group per
// symbol: the symbol selects WHICH single-colour group to thrash.

// t17Spy probes its four single-colour eviction groups in turn; after a
// full cycle the group with the highest total latency is the decoded
// symbol.
type t17Spy struct {
	windows   int
	windowLen uint64
	groups    [t17Arity][]int
	lineOrder []int
	obs       *ObsLog

	phase        int
	grp, pi, li  int
	lat, bestLat uint64
	best         int
	dec          int
	deadline     uint64
}

func (s *t17Spy) read(m *kernel.Machine) kernel.Status {
	pg := s.groups[s.grp][s.pi]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(s.lineOrder[s.li])*hw.LineSize)
}

// advance moves to the next (page, line) of the current group; done
// when the group's sweep is complete.
func (s *t17Spy) advance() (groupDone bool) {
	s.li++
	if s.li == len(s.lineOrder) {
		s.li = 0
		s.pi++
	}
	return s.pi == len(s.groups[s.grp])
}

func (s *t17Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial prime of every group, latencies discarded
		s.deadline = uint64(s.windows+4) * s.windowLen
		s.grp, s.pi, s.li = 0, 0, 0
		s.phase = 1
		return s.read(m)
	case 1:
		if !s.advance() {
			return s.read(m)
		}
		if s.grp+1 < t17Arity {
			s.grp, s.pi, s.li = s.grp+1, 0, 0
			return s.read(m)
		}
		s.phase = 2
		return m.Now() // loop deadline check
	case 2:
		if m.Time() >= s.deadline {
			return kernel.Done
		}
		s.grp, s.pi, s.li = 0, 0, 0
		s.lat, s.bestLat, s.best = 0, 0, 0
		s.phase = 3
		return s.read(m)
	default: // 3: timed probe cycle over the four groups
		s.lat += m.Latency()
		if !s.advance() {
			return s.read(m)
		}
		if s.lat > s.bestLat {
			s.bestLat, s.best = s.lat, s.grp
		}
		if s.grp+1 < t17Arity {
			s.grp, s.pi, s.li = s.grp+1, 0, 0
			s.lat = 0
			return s.read(m)
		}
		s.dec = s.best
		s.phase = 4
		return m.Now() // observation timestamp
	case 4:
		s.obs.Record(m.Time(), float64(s.dec))
		s.phase = 2
		return m.Now()
	}
}

// t17Groups builds the per-colour page groups: the spy's four probe
// groups from its own pages, and the Trojan's four thrash groups from
// whatever pages it owns of the SAME colours — falling back, colour by
// colour, to its own partition when colouring denies it matching pages
// (same memory volume, no set conflicts).
func t17Groups(sys *kernel.System) (spyG, trojG [t17Arity][]int) {
	spyPages := pagesByColor(sys, 1)
	trojPages := pagesByColor(sys, 0)
	spyColors := sortedKeys(spyPages)
	if len(spyColors) < t17Arity {
		panic("attacks: T17: spy needs four colours")
	}
	trojOwn := sortedKeys(trojPages)
	for g := 0; g < t17Arity; g++ {
		c := spyColors[g]
		spyG[g] = firstN(spyPages[c], t17PrimeWays)
		trojG[g] = firstN(trojPages[c], t17ThrashPgs)
		if len(trojG[g]) == 0 {
			own := trojOwn[g%len(trojOwn)]
			trojG[g] = firstN(trojPages[own], t17ThrashPgs)
		}
	}
	return spyG, trojG
}

// buildXCore constructs one T17 configuration: Trojan and spy
// co-resident forever on separate cores.
func buildXCore(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	pcfg.LLCSets = 512 // 256 KiB, 8 colours
	pcfg.LLCWays = 8
	pcfg.Frames = 4096

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.ColorRange(1, 4), CodePages: 4, HeapPages: 128},
			{Name: "Lo", SliceCycles: 400_000, PadCycles: 20_000, Colors: mem.ColorRange(4, 8), CodePages: 4, HeapPages: 64},
		},
		Schedule:    [][]int{{1}, {0}}, // Lo on core 0, Hi on core 1
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+8)*t17WindowLen + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T17 %s: %v", label, err))
	}

	spyG, trojG := t17Groups(sys)
	seq := o.symbolSeq(rounds+8, t17Arity, seed)
	syms := o.symLog()
	obs := o.obsLog()
	lineOrder := o.shuffledOffsets(hw.LinesPerPage, 2, seed^0x17B)

	o.spawn(sys, 0, "trojan", 1, &windowedThrasher{
		windows: rounds, windowLen: t17WindowLen,
		seq: seq, groups: trojG[:], lineOrder: lineOrder, syms: syms,
	})
	o.spawn(sys, 1, "spy", 0, &t17Spy{
		windows: rounds, windowLen: t17WindowLen,
		groups: spyG, lineOrder: lineOrder, obs: obs,
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 6)
		row := o.decodePairs(label, labels, vals, seed^0x1717)
		row.SimOps = rep.Ops
		return row
	}
}

// runXCore runs one T17 configuration.
func runXCore(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildXCore(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T17XCore reproduces experiment T17: the multi-bit concurrent
// cross-core LLC channel, closed by a disjoint colour partition and by
// nothing else.
func T17XCore(rounds int, seed uint64) Experiment {
	return mustScenario("T17").Experiment(rounds, seed)
}
