package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T15, the stride-prefetcher channel — the
// residual core-local channel of the §4.1 taxonomy that neither
// colouring nor padding touches. The prefetcher watches DEMAND access
// strides and issues speculative fills the demand stream never asked
// for; those fills are ordinary cache insertions, so they evict. The
// Trojan touches the SAME five heap lines every round but orders them
// by its secret: one order ends on a confirmed stride whose next
// speculative fill lands in a cache set the Trojan never demand-touches
// (the probe set), the other order's final confirmations stay inside
// the demand footprint. The spy keeps the probe set fully primed and
// times its re-touch: a speculative fill evicted one spy way exactly
// when the Trojan's secret said so. Only the switch-time flush of the
// prefetcher AND the caches (§4.1) closes this; the demand footprint is
// identical across symbols, so footprint-based defences see nothing.

const (
	t15Slice = 100_000
	t15Pad   = 25_000
	// t15Base is the first demand line (L1 set) of the Trojan's fixed
	// five-line footprint. Sets 0..7 are avoided: the kernel's own
	// entry/exit text and data lines live there, and keeping the
	// protocol clear of them keeps the probe set kernel-quiet.
	t15Base = 8
	// t15Lines is the demand footprint size: lines t15Base..t15Base+4,
	// identical for both symbols.
	t15Lines = 5
	// t15Probe is the probe line (= L1 set): the speculative fill
	// target base+5 that only the symbol-1 access order produces.
	t15Probe = t15Base + t15Lines
	// t15Ways primes every way of the probe set (L1 associativity).
	t15Ways = 8
)

// t15Order returns the Trojan's access order over its fixed footprint
// for one symbol. Both orders touch exactly lines base..base+4; they
// differ only in which line is LAST and therefore in where the final
// confirmed stride points the prefetcher:
//
//	sym 0: 12, 8, 9, 10, 11 — the stride-1 run ends at 11; the last
//	       speculative fill is line 12, already inside the footprint.
//	sym 1:  8, 9, 10, 11, 12 — the run ends at 12; the last speculative
//	       fill is line 13 (t15Probe), OUTSIDE the demand footprint.
func t15Order(sym int) []int {
	if sym == 0 {
		return []int{t15Base + 4, t15Base, t15Base + 1, t15Base + 2, t15Base + 3}
	}
	return []int{t15Base, t15Base + 1, t15Base + 2, t15Base + 3, t15Base + 4}
}

// t15Trojan walks its fixed five-line footprint in the symbol's order
// each slice, training the prefetcher without varying the demand set.
type t15Trojan struct {
	rounds int
	seq    []int
	syms   *SymLog

	phase int
	r, i  int
	order []int
	epoch uint64
	spin  epochSpin
}

func (t *t15Trojan) read(m *kernel.Machine) kernel.Status {
	return m.ReadHeap(uint64(t.order[t.i]) * hw.LineSize)
}

func (t *t15Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0:
		t.phase = 1
		return m.Epoch()
	case 1: // starting epoch arrived; begin round 0's walk
		t.epoch = m.Value()
		t.order = t15Order(t.seq[t.r])
		t.i = 0
		t.phase = 2
		return t.read(m)
	case 2: // advance the ordered walk
		t.i++
		if t.i < len(t.order) {
			return t.read(m)
		}
		t.phase = 3
		return m.Now()
	case 3: // commit, then spin to the next slice
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning between rounds
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.rounds+4 {
			return kernel.Done
		}
		t.order = t15Order(t.seq[t.r])
		t.i = 0
		t.phase = 2
		return t.read(m)
	}
}

// t15Spy keeps all eight ways of the probe set primed (one line per
// heap page, all at page offset t15Probe, so every one of them maps to
// L1 set t15Probe) and times the re-touch each slice. Pages are visited
// in a shuffled order so the spy's own sweep never confirms a stride.
type t15Spy struct {
	rounds    int
	pageOrder []int
	obs       *ObsLog

	phase int
	r, p  int
	lat   uint64
	ts    uint64
	epoch uint64
	spin  epochSpin
}

func (s *t15Spy) read(m *kernel.Machine) kernel.Status {
	pg := s.pageOrder[s.p]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(t15Probe)*hw.LineSize)
}

func (s *t15Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial prime, latencies discarded
		s.p = 0
		s.phase = 1
		return s.read(m)
	case 1:
		s.p++
		if s.p < t15Ways {
			return s.read(m)
		}
		s.phase = 2
		return m.Epoch()
	case 2:
		s.epoch = m.Value()
		s.phase = 3
		return s.spin.start(s.epoch, m)
	case 3: // aligning spin before the first round
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.phase = 4
		return m.Now() // observation timestamp, taken before the touch
	case 4:
		s.ts = m.Time()
		s.p, s.lat = 0, 0
		s.phase = 5
		return s.read(m)
	case 5: // timed re-touch of the probe set (which also re-primes it)
		s.lat += m.Latency()
		s.p++
		if s.p < t15Ways {
			return s.read(m)
		}
		s.obs.Record(s.ts, float64(s.lat))
		s.phase = 6
		return s.spin.start(s.epoch, m)
	default: // 6: spinning between rounds
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.r++
		if s.r == s.rounds+4 {
			return kernel.Done
		}
		s.phase = 4
		return m.Now()
	}
}

// buildPrefetchChannel constructs one T15 configuration.
func buildPrefetchChannel(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t15Slice, PadCycles: t15Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 4},
			{Name: "Lo", SliceCycles: t15Slice, PadCycles: t15Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: t15Ways},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+16) * (t15Slice + t15Pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T15 %s: %v", label, err))
	}

	seq := o.symbolSeq(rounds+8, 2, seed)
	syms := o.symLog()
	obs := o.obsLog()

	o.spawn(sys, 0, "trojan", 0, &t15Trojan{
		rounds: rounds, seq: seq, syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t15Spy{
		rounds: rounds, pageOrder: o.shuffledOffsets(t15Ways, 1, seed^0xF3), obs: obs,
		spin: epochSpin{burn: 180},
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 3)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x15F)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runPrefetchChannel runs one T15 configuration.
func runPrefetchChannel(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildPrefetchChannel(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T15Prefetch reproduces experiment T15: the stride-prefetcher channel,
// closed by the switch-time flush and by nothing else — the demand
// footprint is symbol-independent by construction.
func T15Prefetch(rounds int, seed uint64) Experiment {
	return mustScenario("T15").Experiment(rounds, seed)
}
