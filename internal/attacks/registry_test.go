package attacks

import "testing"

func TestScenarioLookup(t *testing.T) {
	for _, key := range []string{"T2", "t2", "l1pp", "L1PP"} {
		s, ok := ScenarioByID(key)
		if !ok || s.ID != "T2" {
			t.Fatalf("lookup %q: ok=%v id=%q", key, ok, s.ID)
		}
	}
	if _, ok := ScenarioByID("T99"); ok {
		t.Fatal("unknown scenario resolved")
	}
}

func TestRegistryShape(t *testing.T) {
	wantIDs := []string{"T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T11", "T12", "T13", "T14", "T15", "T16", "T17"}
	ids := ScenarioIDs()
	if len(ids) != len(wantIDs) {
		t.Fatalf("registry has %d scenarios, want %d", len(ids), len(wantIDs))
	}
	for i, id := range wantIDs {
		if ids[i] != id {
			t.Fatalf("registry order: ids[%d]=%q, want %q", i, ids[i], id)
		}
	}
	for _, s := range Scenarios() {
		if s.Name == "" || s.Title == "" || s.Rounds == nil || len(s.Variants) == 0 {
			t.Fatalf("scenario %s incomplete: %+v", s.ID, s)
		}
		if s.Version < 1 {
			t.Fatalf("scenario %s has no model-version tag (Version=%d); the sweep store cannot key its cells", s.ID, s.Version)
		}
		seen := make(map[string]bool)
		for _, v := range s.Variants {
			if v.Label == "" || v.run == nil {
				t.Fatalf("scenario %s has an incomplete variant", s.ID)
			}
			if seen[v.Label] {
				t.Fatalf("scenario %s has duplicate variant %q", s.ID, v.Label)
			}
			seen[v.Label] = true
			if _, ok := s.VariantByLabel(v.Label); !ok {
				t.Fatalf("scenario %s: VariantByLabel(%q) missed", s.ID, v.Label)
			}
		}
	}
}

func TestRoundsPolicy(t *testing.T) {
	cases := []struct {
		id        string
		requested int
		want      int
	}{
		{"T2", 5, 30},
		{"T2", 80, 80},
		{"T9", 60, 120},
		{"T11", 5, 20},
		{"T12", 60, 60/8 + 4},
	}
	for _, c := range cases {
		s, _ := ScenarioByID(c.id)
		if got := s.Rounds(c.requested); got != c.want {
			t.Errorf("%s.Rounds(%d) = %d, want %d", c.id, c.requested, got, c.want)
		}
	}
}

// TestExperimentMatchesVariantCells verifies the registry's core
// contract: a Tn table is exactly its variants' cells run in order (so
// the sweep engine's per-cell results compose into the same tables).
func TestExperimentMatchesVariantCells(t *testing.T) {
	const rounds, seed = 30, 9
	s, _ := ScenarioByID("T4")
	e := s.Experiment(rounds, seed)
	if len(e.Rows) != len(s.Variants) {
		t.Fatalf("rows %d != variants %d", len(e.Rows), len(s.Variants))
	}
	for i, v := range s.Variants {
		row := v.Run(rounds, seed)
		if row.Label != e.Rows[i].Label || row.Est != e.Rows[i].Est {
			t.Fatalf("variant %q cell diverges from table row:\ncell: %+v\nrow:  %+v", v.Label, row, e.Rows[i])
		}
	}
}
