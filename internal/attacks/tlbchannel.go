package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T14, the TLB capacity channel — the timing side
// of the §5.3 story. The functional theorem says one ASID's operations
// never corrupt another's translations; but the TLB is still a FINITE
// shared structure, so the NUMBER of entries a Trojan touches evicts a
// measurable number of the spy's translations — page-walk latencies
// reveal the Trojan's working-set size. Exactly why the TLB appears in
// the paper's flushable-state list (§4.1): consistency partitioning by
// ASID is not timing partitioning.

const (
	t14Slice  = 100_000
	t14Pad    = 25_000
	t14Arity  = 4
	t14PerSym = 16 // pages touched per symbol step (TLB has 64 entries)
	t14SpySet = 12 // spy's resident translations
)

// t14Trojan touches (sym+1)*perSym distinct pages per slice — its TLB
// footprint is the symbol.
type t14Trojan struct {
	rounds int
	seq    []int
	syms   *SymLog

	phase int
	r     int
	p, n  int
	epoch uint64
	spin  epochSpin
}

func (t *t14Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0:
		t.phase = 1
		return m.Epoch()
	case 1: // begin round 0's page walk
		t.epoch = m.Value()
		t.n = (t.seq[t.r] + 1) * t14PerSym
		t.p = 0
		t.phase = 2
		return m.ReadHeap(uint64(t.p) * hw.PageSize)
	case 2: // advance the footprint sweep
		t.p++
		if t.p < t.n {
			return m.ReadHeap(uint64(t.p) * hw.PageSize)
		}
		t.phase = 3
		return m.Now()
	case 3:
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning to the next slice
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.rounds+4 {
			return kernel.Done
		}
		t.n = (t.seq[t.r] + 1) * t14PerSym
		t.p = 0
		t.phase = 2
		return m.ReadHeap(uint64(t.p) * hw.PageSize)
	}
}

// t14Spy keeps a fixed set of translations resident; at slice start it
// re-touches them and totals the latency — every evicted entry costs a
// page walk.
type t14Spy struct {
	rounds int
	obs    *ObsLog

	phase int
	r, p  int
	lat   uint64
	ts    uint64
	epoch uint64
	spin  epochSpin
}

func (s *t14Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial warming touch, latencies discarded
		s.p = 0
		s.phase = 1
		return m.ReadHeap(uint64(s.p) * hw.PageSize)
	case 1:
		s.p++
		if s.p < t14SpySet {
			return m.ReadHeap(uint64(s.p) * hw.PageSize)
		}
		s.phase = 2
		return m.Epoch()
	case 2:
		s.epoch = m.Value()
		s.phase = 3
		return s.spin.start(s.epoch, m)
	case 3: // aligning spin before the first round
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.phase = 4
		return m.Now() // observation timestamp, taken before the touch
	case 4:
		s.ts = m.Time()
		s.p, s.lat = 0, 0
		s.phase = 5
		return m.ReadHeap(uint64(s.p) * hw.PageSize)
	case 5: // timed re-touch of the resident set
		s.lat += m.Latency()
		s.p++
		if s.p < t14SpySet {
			return m.ReadHeap(uint64(s.p) * hw.PageSize)
		}
		s.obs.Record(s.ts, float64(s.lat))
		s.phase = 6
		return s.spin.start(s.epoch, m)
	default: // 6: spinning between rounds
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.r++
		if s.r == s.rounds+4 {
			return kernel.Done
		}
		s.phase = 4
		return m.Now()
	}
}

// buildTLBChannel constructs one T14 configuration.
func buildTLBChannel(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t14Slice, PadCycles: t14Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 80},
			{Name: "Lo", SliceCycles: t14Slice, PadCycles: t14Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+16) * (t14Slice + t14Pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T14 %s: %v", label, err))
	}

	seq := o.symbolSeq(rounds+8, t14Arity, seed)
	syms := o.symLog()
	obs := o.obsLog()

	o.spawn(sys, 0, "trojan", 0, &t14Trojan{
		rounds: rounds, seq: seq, syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t14Spy{
		rounds: rounds, obs: obs, spin: epochSpin{burn: 180},
	})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 3)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x71B)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runTLBChannel runs one T14 configuration.
func runTLBChannel(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildTLBChannel(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T14TLB reproduces experiment T14: the TLB working-set-size channel,
// closed by the switch-time flush. Note the contrast with T10: ASID
// tagging already guarantees functional isolation; only flushing
// guarantees temporal isolation.
func T14TLB(rounds int, seed uint64) Experiment {
	return mustScenario("T14").Experiment(rounds, seed)
}
