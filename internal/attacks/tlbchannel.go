package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T14, the TLB capacity channel — the timing side
// of the §5.3 story. The functional theorem says one ASID's operations
// never corrupt another's translations; but the TLB is still a FINITE
// shared structure, so the NUMBER of entries a Trojan touches evicts a
// measurable number of the spy's translations — page-walk latencies
// reveal the Trojan's working-set size. Exactly why the TLB appears in
// the paper's flushable-state list (§4.1): consistency partitioning by
// ASID is not timing partitioning.

// runTLBChannel runs one T14 configuration.
func runTLBChannel(label string, prot core.Config, rounds int, seed uint64) Row {
	const (
		slice  = 100_000
		pad    = 25_000
		arity  = 4
		perSym = 16 // pages touched per symbol step (TLB has 64 entries)
		spySet = 12 // spy's resident translations
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 80},
			{Name: "Lo", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(rounds+16) * (slice + pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T14 %s: %v", label, err))
	}

	seq := SymbolSeq(rounds+8, arity, seed)
	var syms SymLog
	var obs ObsLog

	// Trojan: touch (sym+1)*perSym distinct pages per slice — its TLB
	// footprint is the symbol.
	if _, err := sys.Spawn(0, "trojan", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < rounds+4; r++ {
			n := (seq[r] + 1) * perSym
			for p := 0; p < n; p++ {
				c.ReadHeap(uint64(p) * hw.PageSize)
			}
			syms.Commit(c.Now(), seq[r])
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	// Spy: keep a fixed set of translations resident; at slice start,
	// re-touch them and total the latency — every evicted entry costs
	// a page walk.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		touch := func() uint64 {
			var lat uint64
			for p := 0; p < spySet; p++ {
				lat += c.ReadHeap(uint64(p) * hw.PageSize)
			}
			return lat
		}
		touch()
		e := c.Epoch()
		e = spinEpoch(c, e)
		for r := 0; r < rounds+4; r++ {
			obs.Record(c.Now(), float64(touch()))
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 3)
	est, err := EstimateLabelled(labels, vals, 16, seed^0x71B)
	if err != nil {
		panic(err)
	}
	return Row{Label: label, Est: est, ErrRate: nan()}
}

// T14TLB reproduces experiment T14: the TLB working-set-size channel,
// closed by the switch-time flush. Note the contrast with T10: ASID
// tagging already guarantees functional isolation; only flushing
// guarantees temporal isolation.
func T14TLB(rounds int, seed uint64) Experiment {
	return mustScenario("T14").Experiment(rounds, seed)
}
