package attacks

import (
	"fmt"

	"timeprot/internal/channel"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/rng"
	"timeprot/internal/trace"
)

// CellContext is a per-worker arena for the attack-cell hot path: one
// experiment worker runs thousands of (scenario, variant, seed) cells,
// and without reuse every cell rebuilds its hardware machine, symbol and
// observation logs, probe-order permutations, labelling buffers, and
// sample sets from scratch. A CellContext pools the machine construction
// (platform.Pool) and recycles all the harness scratch, so a warm
// worker's marginal allocations per cell collapse to the bounded
// per-cell kernel state (domains, page tables, threads).
//
// Correctness contract: running a variant with a CellContext must be
// bit-identical to running it without one. Every reusable buffer is
// rewound at the start of a run (beginRun) and fully overwritten before
// use, pooled machines are healed to the freshly constructed state by
// Machine.Reset on acquisition, and PermInto consumes exactly Perm's
// random stream — so pooling never appears in any fingerprint, and the
// golden sweep/proof/conformance stores gate the equivalence.
//
// A CellContext is NOT safe for concurrent use; the experiment engine
// creates one per worker goroutine. The zero-value absence of a context
// (a nil *CellContext, the execOpt zero value) degrades every helper to
// the historical fresh-allocation path, which keeps the legacy and
// equivalence test harnesses untouched.
type CellContext struct {
	pool *platform.Pool

	syms SymLog
	obs  ObsLog

	labels []int
	vals   []float64

	ints intArena

	colors  map[int]bool
	samples *channel.Samples
	est     channel.Estimator
	tlog    *trace.Log
}

// NewCellContext returns an empty context ready for reuse across cells.
func NewCellContext() *CellContext {
	return &CellContext{
		pool:    platform.NewPool(),
		colors:  make(map[int]bool),
		samples: channel.NewSamples(),
		tlog:    trace.NewLog(),
	}
}

// beginRun rewinds every reusable buffer for the next variant run.
// Calling it on a nil context is a no-op.
func (cc *CellContext) beginRun() {
	if cc == nil {
		return
	}
	cc.ints.reset()
	cc.syms.commits = cc.syms.commits[:0]
	cc.obs.obs = cc.obs.obs[:0]
	cc.labels = cc.labels[:0]
	cc.vals = cc.vals[:0]
}

// endRun returns pooled machines for reuse. It runs deferred from
// Variant.RunIn, so a panicking scenario still releases its machine
// (which Machine.Reset heals on the next acquisition). Calling it on a
// nil context is a no-op.
func (cc *CellContext) endRun() {
	if cc == nil {
		return
	}
	cc.pool.ReleaseAll()
}

// The exported wrappers below let external harnesses (the conformance
// driver's pooled path, the discovery fuzzer) ride the same arena with
// the same contract: BeginRun, execute, EndRun — results bit-identical
// to the fresh path. All are nil-receiver safe.

// Pool returns the context's machine pool for kernel.SystemConfig.Pool
// (nil without a context — the fresh-construction path).
func (cc *CellContext) Pool() *platform.Pool {
	if cc == nil {
		return nil
	}
	return cc.pool
}

// BeginRun rewinds every reusable buffer for the next run.
func (cc *CellContext) BeginRun() { cc.beginRun() }

// EndRun returns pooled machines for reuse; defer it from the same
// function that called BeginRun so a panicking run still releases its
// machine.
func (cc *CellContext) EndRun() { cc.endRun() }

// EstimateLabelled is the package-level EstimateLabelled on the
// context's reusable sample set and estimator scratch; results are
// bit-identical to the free function (which IS a fresh estimator).
func (cc *CellContext) EstimateLabelled(labels []int, vals []float64, bins int, seed uint64) (channel.Estimate, error) {
	return execOpt{cc: cc}.estimateLabelled(labels, vals, bins, seed)
}

// intArena is a bump allocator for []int scratch on the cell path
// (symbol sequences, shuffled probe orders, decode buffers). take carves
// capacity-capped slices out of one slab; reset rewinds the slab for the
// next run. When a run outgrows the slab a bigger one replaces it — the
// old slab stays valid for the slices already handed out — so the
// steady state allocates nothing.
type intArena struct {
	slab []int
	off  int
}

func (a *intArena) reset() { a.off = 0 }

// take returns a length-n slice of UNSPECIFIED contents; callers must
// fully overwrite it. The capacity is capped at n so an append can never
// silently alias a neighbouring allocation.
func (a *intArena) take(n int) []int {
	if a.off+n > len(a.slab) {
		size := 2 * (a.off + n)
		if size < 1024 {
			size = 1024
		}
		a.slab = make([]int, size)
		a.off = 0
	}
	s := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// The execOpt helpers below are the allocation sites of the shared
// harness, routed through the context when one is present and falling
// back to the historical fresh allocations when not (legacy adapter,
// equivalence tests, direct Variant.Run callers).

// sysPool returns the machine pool for kernel.SystemConfig.Pool.
func (o execOpt) sysPool() *platform.Pool {
	if o.cc == nil {
		return nil
	}
	return o.cc.pool
}

// symLog returns an empty symbol log, reused when a context is present.
func (o execOpt) symLog() *SymLog {
	if o.cc == nil {
		return &SymLog{}
	}
	return &o.cc.syms
}

// obsLog returns an empty observation log, reused when a context is
// present.
func (o execOpt) obsLog() *ObsLog {
	if o.cc == nil {
		return &ObsLog{}
	}
	return &o.cc.obs
}

// traceLog returns the reusable event log for trace-enabled scenario
// builds (kernel.SystemConfig.TraceLog), or nil for a fresh one.
func (o execOpt) traceLog() *trace.Log {
	if o.cc == nil {
		return nil
	}
	return o.cc.tlog
}

// ints returns a length-n []int scratch slice of unspecified contents.
func (o execOpt) ints(n int) []int {
	if o.cc == nil {
		return make([]int, n)
	}
	return o.cc.ints.take(n)
}

// symbolSeq is SymbolSeq on context scratch: a deterministic
// pseudo-random symbol sequence over an alphabet of size arity.
func (o execOpt) symbolSeq(n, arity int, seed uint64) []int {
	r := rng.New(seed)
	out := o.ints(n)
	for i := range out {
		out[i] = r.Intn(arity)
	}
	return out
}

// perm returns a pseudo-random permutation of [0, n) on context scratch,
// consuming exactly the stream rng.Perm consumes.
func (o execOpt) perm(r *rng.RNG, n int) []int {
	return r.PermInto(o.ints(n))
}

// shuffledOffsets is the harness shuffledOffsets on context scratch:
// the line offsets {0, step, 2*step, ...} < lines in a deterministic
// shuffled order (defeating the stride prefetcher), consuming exactly
// the random stream the free function consumes.
func (o execOpt) shuffledOffsets(lines, step int, seed uint64) []int {
	r := rng.New(seed)
	n := (lines + step - 1) / step
	perm := r.PermInto(o.ints(n))
	out := o.ints(n)
	for i, p := range perm {
		out[i] = p * step
	}
	return out
}

// decodePairs is the harness decodePairs on context scratch for the
// decoded-symbol buffer.
func (o execOpt) decodePairs(label string, labels []int, vals []float64, seed uint64) Row {
	decoded := o.ints(len(vals))
	for i, v := range vals {
		decoded[i] = int(v)
	}
	est, err := o.estimatePairs(labels, decoded, seed)
	if err != nil {
		panic(fmt.Sprintf("attacks: %s: %v", label, err))
	}
	return Row{Label: label, Est: est, ErrRate: channel.ErrorRate(labels, decoded)}
}

// estimatePairs routes a pairs estimate through the context's reusable
// estimator scratch; results are bit-identical either way (the free
// function IS a fresh estimator).
func (o execOpt) estimatePairs(syms, outs []int, seed uint64) (channel.Estimate, error) {
	if o.cc == nil {
		return channel.EstimatePairs(syms, outs, seed)
	}
	return o.cc.est.EstimatePairs(syms, outs, seed)
}

// estimateScalar routes a scalar estimate through the context's
// reusable estimator scratch.
func (o execOpt) estimateScalar(s *channel.Samples, bins int, seed uint64) (channel.Estimate, error) {
	if o.cc == nil {
		return channel.EstimateScalar(s, bins, seed)
	}
	return o.cc.est.EstimateScalar(s, bins, seed)
}

// label is Label on context scratch: the returned slices are views into
// the context's buffers, valid until the next run begins.
func (o execOpt) label(syms *SymLog, obs *ObsLog, warmup int) ([]int, []float64) {
	if o.cc == nil {
		return Label(syms, obs, warmup)
	}
	cc := o.cc
	cc.labels, cc.vals = labelInto(cc.labels[:0], cc.vals[:0], syms, obs)
	return trimWarmup(cc.labels, cc.vals, warmup)
}

// estimateLabelled is EstimateLabelled on the context's reusable sample
// set.
func (o execOpt) estimateLabelled(labels []int, vals []float64, bins int, seed uint64) (channel.Estimate, error) {
	if o.cc == nil {
		return EstimateLabelled(labels, vals, bins, seed)
	}
	if len(labels) == 0 {
		return channel.Estimate{}, fmt.Errorf("attacks: no labelled observations")
	}
	s := o.cc.samples
	s.Reset()
	for i := range labels {
		s.Add(labels[i], vals[i])
	}
	return o.cc.est.EstimateScalar(s, bins, seed)
}

// samples returns an empty sample set, reused when a context is present
// — for finish functions that accumulate unlabelled scalars directly
// (T9's inter-arrival gaps).
func (o execOpt) samples() *channel.Samples {
	if o.cc == nil {
		return channel.NewSamples()
	}
	s := o.cc.samples
	s.Reset()
	return s
}

// imageColors is the harness imageColors on the context's reusable
// colour-set map.
func (o execOpt) imageColors(sys *kernel.System, domainIdx int) map[int]bool {
	if o.cc == nil {
		return imageColors(sys, domainIdx)
	}
	clear(o.cc.colors)
	return imageColorsInto(o.cc.colors, sys, domainIdx)
}
