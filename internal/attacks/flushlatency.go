package attacks

import (
	"fmt"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/trace"
)

// This file implements T4, the flush-latency channel of §4.2: "For
// writable micro-architectural state (e.g. the L1 data cache), the
// latency of the flush is itself dependent on execution history (number
// of dirty lines), which would create a channel. We avoid this channel by
// padding the domain-switch latency to a fixed value."
//
// The Trojan modulates how many lines it dirties per slice; the spy
// measures the scheduling gap between its own slices (the time it was
// off-CPU), which includes the flush of the Trojan's dirty lines. Without
// padding the gap tracks the dirty count; with padding it is constant.

// runFlushLatency runs one T4 configuration.
func runFlushLatency(label string, prot core.Config, rounds int, seed uint64) Row {
	const (
		slice  = 60_000
		pad    = 20_000
		arity  = 4
		perSym = 150 // dirty lines per symbol step
		bigGap = 10_000
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(rounds+16) * (slice + pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T4 %s: %v", label, err))
	}

	seq := SymbolSeq(rounds+8, arity, seed)
	var syms SymLog
	var obs ObsLog

	// Trojan: dirty (sym+1)*perSym lines, then wait for the next
	// slice. The dirty lines lengthen the flush on the switch away
	// from Hi.
	if _, err := sys.Spawn(0, "trojan", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < rounds+4; r++ {
			sym := seq[r]
			n := (sym + 1) * perSym
			for i := 0; i < n; i++ {
				c.WriteHeap(uint64(i*64) % c.HeapBytes())
			}
			syms.Commit(c.Now(), sym)
			e = spinEpoch(c, e)
		}
	}); err != nil {
		panic(err)
	}

	// Spy: sample the cycle counter continuously; a large jump means
	// it was preempted for the Trojan's slice plus both switches. The
	// jump length is the observation.
	if _, err := sys.Spawn(1, "spy", 0, func(c *kernel.UserCtx) {
		prev := c.Now()
		for len(obs.obs) < rounds+6 {
			t := c.Now()
			if t-prev > bigGap {
				obs.Record(t, float64(t-prev))
			}
			prev = t
			c.Compute(40)
		}
	}); err != nil {
		panic(err)
	}

	mustRun(sys)
	labels, vals := Label(&syms, &obs, 3)
	est, err := EstimateLabelled(labels, vals, 16, seed^0x4444)
	if err != nil {
		panic(err)
	}
	return Row{Label: label, Est: est, ErrRate: nan()}
}

// T4FlushLatency reproduces experiment T4: the switch-latency channel
// created by the history-dependent flush, closed by padding.
func T4FlushLatency(rounds int, seed uint64) Experiment {
	return mustScenario("T4").Experiment(rounds, seed)
}

// T11PaddingSufficiency reproduces experiment T11: padding verified by
// timestamp comparison (§5). It measures the worst-case switch work
// (entry + flush + exit) under an adversarial dirtying workload and
// compares it to the configured pad; it also demonstrates that an
// insufficient pad is detected as an overrun rather than silently
// accepted.
func T11PaddingSufficiency(rounds int, seed uint64) Experiment {
	return mustScenario("T11").Experiment(rounds, seed)
}

// runPaddingSufficiency runs one T11 configuration: full protection with
// the given pad budget, measured against an adversarial dirtying
// workload for `rounds` slices.
func runPaddingSufficiency(label string, pad uint64, rounds int) Row {
	prot := core.FullProtection()
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: true,
		MaxCycles:   uint64(rounds+16) * 400_000,
	})
	if err != nil {
		panic(err)
	}
	// Adversarial workload: dirty as many lines as the slice
	// allows.
	if _, err := sys.Spawn(0, "dirtier", 0, func(c *kernel.UserCtx) {
		e := c.Epoch()
		for r := 0; r < rounds; r++ {
			for i := uint64(0); ; i++ {
				if c.Epoch() != e {
					e = c.Epoch()
					break
				}
				c.WriteHeap((i * 64) % c.HeapBytes())
			}
		}
	}); err != nil {
		panic(err)
	}
	if _, err := sys.Spawn(1, "other", 0, func(c *kernel.UserCtx) {
		for i := 0; i < rounds*400; i++ {
			c.Compute(150)
		}
	}); err != nil {
		panic(err)
	}
	mustRun(sys)

	// Worst-case switch work observed: SwitchStart -> pre-pad
	// time is entry+flush; compare against the pad budget.
	var maxWork uint64
	starts := sys.Trace().Filter(trace.SwitchStart)
	ends := sys.Trace().Filter(trace.SwitchEnd)
	flushes := sys.Trace().Filter(trace.Flush)
	for i := 0; i < len(flushes) && i < len(starts); i++ {
		work := flushes[i].Cycle - starts[i].Cycle
		if work > maxWork {
			maxWork = work
		}
	}
	overruns := len(sys.Trace().Filter(trace.PadOverrun))
	// Dispatch delta variability: a sufficient pad gives a
	// single steady-state value.
	deltas := make(map[uint64]int)
	for i, e := range ends {
		if i == 0 {
			continue // cold start
		}
		deltas[e.Cycle-e.AuxCycle]++
	}
	return Row{
		Label:   label,
		Est:     channel.Estimate{}, // no capacity measured here
		ErrRate: nan(),
		Extra: []KV{
			{K: "max_switch_work", V: float64(maxWork)},
			{K: "pad", V: float64(pad)},
			{K: "overruns", V: float64(overruns)},
			{K: "distinct_deltas", V: float64(len(deltas))},
		},
	}
}
