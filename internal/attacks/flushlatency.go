package attacks

import (
	"fmt"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/trace"
)

// This file implements T4, the flush-latency channel of §4.2: "For
// writable micro-architectural state (e.g. the L1 data cache), the
// latency of the flush is itself dependent on execution history (number
// of dirty lines), which would create a channel. We avoid this channel by
// padding the domain-switch latency to a fixed value."
//
// The Trojan modulates how many lines it dirties per slice; the spy
// measures the scheduling gap between its own slices (the time it was
// off-CPU), which includes the flush of the Trojan's dirty lines. Without
// padding the gap tracks the dirty count; with padding it is constant.
//
// T11 (padding sufficiency) shares this file. Like every scenario it
// runs as a direct Program state machine, so the sweep store's engine
// fingerprint covers a single execution path; the legacy goroutine
// adapter is exercised by the execution-model equivalence tests, which
// replay these same programs through it.

// t4Params sizes the T4 scenario.
const (
	t4Slice  = 60_000
	t4Pad    = 20_000
	t4Arity  = 4
	t4PerSym = 150 // dirty lines per symbol step
	t4BigGap = 10_000
)

// t4Trojan dirties (sym+1)*perSym lines, then waits for its next
// slice. The dirty lines lengthen the flush on the switch away from Hi.
type t4Trojan struct {
	rounds int
	seq    []int
	syms   *SymLog

	phase int
	r     int
	i, n  int
	epoch uint64
	spin  epochSpin
}

func (t *t4Trojan) write(m *kernel.Machine) kernel.Status {
	return m.WriteHeap(uint64(t.i*64) % m.HeapBytes())
}

func (t *t4Trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // read the starting epoch
		t.phase = 1
		return m.Epoch()
	case 1: // begin round 0's dirtying sweep
		t.epoch = m.Value()
		t.n = (t.seq[t.r] + 1) * t4PerSym
		t.i = 0
		t.phase = 2
		return t.write(m)
	case 2: // advance the sweep
		t.i++
		if t.i < t.n {
			return t.write(m)
		}
		t.phase = 3
		return m.Now() // commit timestamp
	case 3:
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning to the next slice
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.rounds+4 {
			return kernel.Done
		}
		t.n = (t.seq[t.r] + 1) * t4PerSym
		t.i = 0
		t.phase = 2
		return t.write(m)
	}
}

// t4Spy samples the cycle counter continuously; a large jump means it
// was preempted for the Trojan's slice plus both switches. The jump
// length is the observation.
type t4Spy struct {
	rounds int
	obs    *ObsLog

	phase int
	prev  uint64
}

func (s *t4Spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // first timestamp
		s.phase = 1
		return m.Now()
	case 1:
		s.prev = m.Time()
		if s.obs.Len() >= s.rounds+6 {
			return kernel.Done
		}
		s.phase = 2
		return m.Now()
	case 2: // gap check
		t := m.Time()
		if t-s.prev > t4BigGap {
			s.obs.Record(t, float64(t-s.prev))
		}
		s.prev = t
		s.phase = 3
		return m.Compute(40)
	default: // 3: burn finished; loop condition
		if s.obs.Len() >= s.rounds+6 {
			return kernel.Done
		}
		s.phase = 2
		return m.Now()
	}
}

// buildFlushLatency constructs one T4 configuration.
func buildFlushLatency(label string, prot core.Config, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: t4Slice, PadCycles: t4Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: t4Slice, PadCycles: t4Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: o.trace,
		MaxCycles:   uint64(rounds+16) * (t4Slice + t4Pad + 60_000) * 2,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T4 %s: %v", label, err))
	}

	seq := o.symbolSeq(rounds+8, t4Arity, seed)
	syms := o.symLog()
	obs := o.obsLog()

	o.spawn(sys, 0, "trojan", 0, &t4Trojan{
		rounds: rounds, seq: seq, syms: syms, spin: epochSpin{burn: 180},
	})
	o.spawn(sys, 1, "spy", 0, &t4Spy{rounds: rounds, obs: obs})

	return sys, func(rep kernel.Report) Row {
		labels, vals := o.label(syms, obs, 3)
		est, err := o.estimateLabelled(labels, vals, 16, seed^0x4444)
		if err != nil {
			panic(err)
		}
		return Row{Label: label, Est: est, ErrRate: nan(), SimOps: rep.Ops}
	}
}

// runFlushLatency runs one T4 configuration.
func runFlushLatency(cc *CellContext, label string, prot core.Config, rounds int, seed uint64) Row {
	sys, finish := buildFlushLatency(label, prot, rounds, seed, execOpt{cc: cc})
	return finish(mustRun(sys))
}

// T4FlushLatency reproduces experiment T4: the switch-latency channel
// created by the history-dependent flush, closed by padding.
func T4FlushLatency(rounds int, seed uint64) Experiment {
	return mustScenario("T4").Experiment(rounds, seed)
}

// T11PaddingSufficiency reproduces experiment T11: padding verified by
// timestamp comparison (§5). It measures the worst-case switch work
// (entry + flush + exit) under an adversarial dirtying workload and
// compares it to the configured pad; it also demonstrates that an
// insufficient pad is detected as an overrun rather than silently
// accepted.
func T11PaddingSufficiency(rounds int, seed uint64) Experiment {
	return mustScenario("T11").Experiment(rounds, seed)
}

// t11Dirtier is the adversarial T11 workload as a direct-execution
// Program: dirty as many lines as each slice allows, for `rounds`
// slices. Its operation stream reproduces the original UserCtx loop
// exactly (including the epoch re-read on each slice boundary), so the
// measured tables are unchanged by the port.
type t11Dirtier struct {
	rounds int

	e     uint64
	r     int
	i     uint64
	phase int
}

func (d *t11Dirtier) Step(m *kernel.Machine) kernel.Status {
	switch d.phase {
	case 0: // read the starting epoch
		d.phase = 1
		return m.Epoch()
	case 1: // starting epoch arrived; begin round 0
		d.e = m.Value()
		if d.r == d.rounds {
			return kernel.Done
		}
		d.i = 0
		d.phase = 2
		return m.Epoch()
	case 2: // boundary poll arrived
		if m.Value() != d.e {
			d.phase = 3
			return m.Epoch() // the original loop re-reads on break
		}
		d.phase = 4
		return m.WriteHeap((d.i * 64) % m.HeapBytes())
	case 3: // re-read arrived; the slice rolled over
		d.e = m.Value()
		d.r++
		if d.r == d.rounds {
			return kernel.Done
		}
		d.i = 0
		d.phase = 2
		return m.Epoch()
	default: // 4: a dirtying write completed
		d.i++
		d.phase = 2
		return m.Epoch()
	}
}

// computeLoop is a Program that issues n Compute(burn) operations.
type computeLoop struct {
	n    int
	burn uint64
	i    int
}

func (p *computeLoop) Step(m *kernel.Machine) kernel.Status {
	if p.i == p.n {
		return kernel.Done
	}
	p.i++
	return m.Compute(p.burn)
}

// buildPaddingSufficiency constructs one T11 configuration: full
// protection with the given pad budget under an adversarial dirtying
// workload. Tracing is always enabled — the measurement itself reads
// the switch trace.
func buildPaddingSufficiency(label string, pad uint64, rounds int, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	prot := core.FullProtection()
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: true,
		TraceLog:    o.traceLog(),
		MaxCycles:   uint64(rounds+16) * 400_000,
	})
	if err != nil {
		panic(err)
	}
	o.spawn(sys, 0, "dirtier", 0, &t11Dirtier{rounds: rounds})
	o.spawn(sys, 1, "other", 0, &computeLoop{n: rounds * 400, burn: 150})

	return sys, func(rep kernel.Report) Row {
		// Worst-case switch work observed: SwitchStart -> pre-pad
		// time is entry+flush; compare against the pad budget.
		var maxWork uint64
		starts := sys.Trace().Filter(trace.SwitchStart)
		ends := sys.Trace().Filter(trace.SwitchEnd)
		flushes := sys.Trace().Filter(trace.Flush)
		for i := 0; i < len(flushes) && i < len(starts); i++ {
			work := flushes[i].Cycle - starts[i].Cycle
			if work > maxWork {
				maxWork = work
			}
		}
		overruns := len(sys.Trace().Filter(trace.PadOverrun))
		// Dispatch delta variability: a sufficient pad gives a
		// single steady-state value.
		deltas := make(map[uint64]int)
		for i, e := range ends {
			if i == 0 {
				continue // cold start
			}
			deltas[e.Cycle-e.AuxCycle]++
		}
		return Row{
			Label:   label,
			Est:     channel.Estimate{}, // no capacity measured here
			ErrRate: nan(),
			SimOps:  rep.Ops,
			Extra: []KV{
				{K: "max_switch_work", V: float64(maxWork)},
				{K: "pad", V: float64(pad)},
				{K: "overruns", V: float64(overruns)},
				{K: "distinct_deltas", V: float64(len(deltas))},
			},
		}
	}
}

// runPaddingSufficiency runs one T11 configuration.
func runPaddingSufficiency(cc *CellContext, label string, pad uint64, rounds int) Row {
	sys, finish := buildPaddingSufficiency(label, pad, rounds, execOpt{cc: cc})
	return finish(mustRun(sys))
}
