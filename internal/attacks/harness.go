// Package attacks implements the covert- and side-channel attack
// scenarios that evaluate time protection, one per experiment of
// DESIGN.md §4: prime-and-probe on the L1 and the LLC (T2, T3), the
// flush-latency channel (T4), the kernel-image channel (T5), the
// interrupt channel (T6), the SMT channel (T7), the interconnect
// bandwidth channel (T8), the Fig.-1 downgrader (T9), padding
// sufficiency (T11), protection overheads (T12), the branch-predictor
// and TLB channels (T13, T14), the stride-prefetcher channel (T15), the
// whole-LLC occupancy channel across colour-partition widths (T16), and
// the multi-bit concurrent cross-core LLC channel (T17).
//
// Every scenario follows the same shape: a Trojan program in the Hi
// domain transmits a deterministic pseudo-random symbol sequence through
// some shared hardware resource; a spy program in the Lo domain measures
// its own timing; the harness labels the spy's timestamped observations
// with the symbol the Trojan had committed most recently, and
// internal/channel turns the labelled samples into a capacity estimate —
// with a shuffled-label noise floor and a bootstrap confidence interval
// on the capacity. A defence works when the measured capacity drops to
// the floor; the experiment engine's adaptive sampler keeps adding
// rounds until the interval is tight enough to trust the verdict.
//
// Every scenario runs as a direct kernel.Program state machine — the
// simulator's hot path, free of per-instruction goroutine handoffs —
// so the sweep store's engine fingerprint covers exactly one execution
// path. The legacy goroutine adapter stays exercised by the
// execution-model equivalence tests, which replay representative
// scenarios (including T11 and T12) through it and require bit-identical
// traces. The lockstep execution of internal/kernel makes it safe for
// the Trojan and the harness to share plain Go state for symbol commits
// and observations: all user code is serialised by the simulator's
// event loop regardless of execution path.
package attacks

import (
	"fmt"
	"math"
	"sort"

	"timeprot/internal/channel"
	"timeprot/internal/hw"
	"timeprot/internal/kernel"
	"timeprot/internal/rng"
)

// HarnessVersion is the attack layer's registered model-version string,
// part of the experiment engine's fingerprint. Bump it when the shared
// harness machinery changes what any scenario measures (labelling,
// warmup policy, leak margin); per-scenario construction changes bump
// the scenario's own Version tag in the registry instead.
const HarnessVersion = "attacks/1"

// SymCommit records that the Trojan finished transmitting sym at cycle T.
type SymCommit struct {
	T   uint64
	Sym int
}

// Obs is one timestamped spy observation.
type Obs struct {
	T uint64
	V float64
}

// SymLog accumulates Trojan commits.
type SymLog struct{ commits []SymCommit }

// Commit records a symbol transmission completed at time t.
func (l *SymLog) Commit(t uint64, sym int) {
	l.commits = append(l.commits, SymCommit{T: t, Sym: sym})
}

// Len returns the number of commits.
func (l *SymLog) Len() int { return len(l.commits) }

// ObsLog accumulates spy observations.
type ObsLog struct{ obs []Obs }

// Record stores one observation.
func (l *ObsLog) Record(t uint64, v float64) {
	l.obs = append(l.obs, Obs{T: t, V: v})
}

// Len returns the number of observations.
func (l *ObsLog) Len() int { return len(l.obs) }

// Label attributes each observation to the most recent commit at or
// before its timestamp, returning parallel symbol/value slices.
// Observations before the first commit are dropped, as are the first
// warmup labelled observations (cold-start transients).
func Label(syms *SymLog, obs *ObsLog, warmup int) (labels []int, vals []float64) {
	labels, vals = labelInto(nil, nil, syms, obs)
	return trimWarmup(labels, vals, warmup)
}

// labelInto appends the labelled observations to the given slices (which
// may be emptied scratch) — the allocation-disciplined core of Label,
// before warmup trimming.
func labelInto(labels []int, vals []float64, syms *SymLog, obs *ObsLog) ([]int, []float64) {
	if len(syms.commits) == 0 {
		return nil, nil
	}
	for _, o := range obs.obs {
		// Find the last commit with T <= o.T.
		i := sort.Search(len(syms.commits), func(k int) bool {
			return syms.commits[k].T > o.T
		})
		if i == 0 {
			continue
		}
		labels = append(labels, syms.commits[i-1].Sym)
		vals = append(vals, o.V)
	}
	return labels, vals
}

// trimWarmup drops the first warmup labelled observations.
func trimWarmup(labels []int, vals []float64, warmup int) ([]int, []float64) {
	if warmup > 0 && len(labels) > warmup {
		labels = labels[warmup:]
		vals = vals[warmup:]
	}
	return labels, vals
}

// EstimateLabelled converts labelled scalar observations into a capacity
// estimate.
func EstimateLabelled(labels []int, vals []float64, bins int, seed uint64) (channel.Estimate, error) {
	if len(labels) == 0 {
		return channel.Estimate{}, fmt.Errorf("attacks: no labelled observations")
	}
	s := channel.NewSamples()
	for i := range labels {
		s.Add(labels[i], vals[i])
	}
	return channel.EstimateScalar(s, bins, seed)
}

// Row is one configuration's measured outcome within an experiment.
type Row struct {
	// Label names the configuration (e.g. "flush+pad").
	Label string
	// Est is the channel capacity estimate, including its bootstrap
	// confidence interval.
	Est channel.Estimate
	// ErrRate is the spy's symbol decode error rate; NaN when the
	// scenario has no decoder.
	ErrRate float64
	// Rounds is the effective transmission rounds behind Est — for a
	// fixed sweep the requested rounds after the scenario's policy, for
	// an adaptive sweep the rounds of the ladder rung that converged.
	Rounds int
	// RoundsRun is the total rounds simulated to produce this row:
	// equal to Rounds for a fixed run, the sum over all executed ladder
	// rungs for an adaptive run. Variant.Run fills both fields.
	RoundsRun int
	// SimOps is the number of simulated thread operations the
	// scenario executed (summed over adaptive ladder rungs) — the sweep
	// engine's per-cell throughput denominator.
	SimOps uint64
	// Extra carries scenario-specific values (e.g. utilisation), in
	// insertion order.
	Extra []KV
}

// KV is an ordered key/value pair for Row.Extra.
type KV struct {
	K string
	V float64
}

// Leaks reports whether this row demonstrates a channel (capacity above
// floor by the standard margin).
func (r Row) Leaks() bool { return r.Est.Leaks(LeakMargin) }

// LeakMargin is the capacity-above-floor margin (bits) that counts as a
// demonstrated channel.
const LeakMargin = 0.05

// Experiment is a completed experiment: an ordered set of configuration
// rows reproducing one table of EXPERIMENTS.md.
type Experiment struct {
	// ID is the experiment identifier (T2..T9).
	ID string
	// Title describes the scenario.
	Title string
	// Rows are the per-configuration results.
	Rows []Row
}

// String renders the experiment as an aligned text table.
func (e Experiment) String() string {
	out := fmt.Sprintf("%s — %s\n", e.ID, e.Title)
	out += fmt.Sprintf("  %-28s %12s %18s %12s %10s %7s %8s  %s\n",
		"config", "capacity b/u", "95% CI", "floor b/u", "err-rate", "rounds", "leaks", "extra")
	for _, r := range e.Rows {
		errs := "-"
		if !math.IsNaN(r.ErrRate) {
			errs = fmt.Sprintf("%.3f", r.ErrRate)
		}
		rounds := "-"
		if r.Rounds > 0 {
			rounds = fmt.Sprintf("%d", r.Rounds)
		}
		leak := "no"
		if r.Leaks() {
			leak = "YES"
		}
		extra := ""
		for _, kv := range r.Extra {
			extra += fmt.Sprintf("%s=%.3f ", kv.K, kv.V)
		}
		ci := fmt.Sprintf("[%.4f, %.4f]", r.Est.CILow, r.Est.CIHigh)
		out += fmt.Sprintf("  %-28s %12.4f %18s %12.4f %10s %7s %8s  %s\n",
			r.Label, r.Est.CapacityBits, ci, r.Est.FloorBits, errs, rounds, leak, extra)
	}
	return out
}

// SymbolSeq generates a deterministic pseudo-random symbol sequence over
// an alphabet of size arity.
func SymbolSeq(n, arity int, seed uint64) []int {
	r := rng.New(seed)
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(arity)
	}
	return out
}

// execOpt selects a scenario build's execution path and tracing. The
// zero value is the production setting: direct Program execution, no
// event log. The equivalence tests flip legacy to drive the identical
// programs through the goroutine+UserCtx adapter and trace to compare
// the two paths' event logs bit for bit.
type execOpt struct {
	legacy bool
	trace  bool
	// cc, when set, routes the build's allocation sites (machine
	// construction, logs, scratch slices) through the per-worker cell
	// context; nil keeps the historical fresh-allocation path.
	cc *CellContext
}

// spawn adds a scenario program to sys on the selected execution path.
func (o execOpt) spawn(sys *kernel.System, domain int, name string, cpu int, p kernel.Program) {
	var err error
	if o.legacy {
		_, err = sys.Spawn(domain, name, cpu, kernel.ReplayProgram(p))
	} else {
		_, err = sys.SpawnProgram(domain, name, cpu, p)
	}
	if err != nil {
		panic(err)
	}
}

// epochSpin is a reusable Program fragment implementing the
// waitEpoch/spinEpoch idiom as a step function: poll Epoch until it
// leaves the armed value, optionally burning compute cycles between
// polls (so the spin leaves the data cache untouched either way).
type epochSpin struct {
	// burn is the Compute length between polls; 0 polls continuously.
	burn uint64

	cur uint64
	st  int // 0 idle, 1 awaiting an Epoch result, 2 awaiting a Compute
}

// start arms the fragment to spin away from epoch cur and issues the
// first poll.
func (sp *epochSpin) start(cur uint64, m *kernel.Machine) kernel.Status {
	sp.cur = cur
	sp.st = 1
	return m.Epoch()
}

// step consumes the previous operation's result and continues the
// spin; done reports completion, with the new epoch in next.
func (sp *epochSpin) step(m *kernel.Machine) (next uint64, done bool, st kernel.Status) {
	switch sp.st {
	case 1: // an Epoch poll arrived
		if e := m.Value(); e != sp.cur {
			sp.st = 0
			return e, true, 0
		}
		if sp.burn > 0 {
			sp.st = 2
			return 0, false, m.Compute(sp.burn)
		}
		return 0, false, m.Epoch()
	case 2: // the burn finished; poll again
		sp.st = 1
		return 0, false, m.Epoch()
	default:
		panic("attacks: epochSpin.step while idle")
	}
}

// windowedThrasher is the shared Trojan state machine of the concurrent
// window-based channels (T16, T17): at each window start it commits the
// window's symbol, then thrashes the symbol's page group until the
// window deadline, checking the deadline once per page. Window
// deadlines are absolute (start + (w+1)*windowLen), so an overrunning
// sweep self-corrects instead of shifting later windows.
type windowedThrasher struct {
	windows   int
	windowLen uint64
	seq       []int
	groups    [][]int // page groups by symbol
	lineOrder []int
	syms      *SymLog

	phase      int
	w          int
	start, end uint64
	gi, li     int
}

func (t *windowedThrasher) read(m *kernel.Machine) kernel.Status {
	pg := t.groups[t.seq[t.w]][t.gi]
	return m.ReadHeap(uint64(pg)*hw.PageSize + uint64(t.lineOrder[t.li])*hw.LineSize)
}

// nextWindow advances past an expired window; done when the stream
// (plus its trailing slack windows) is complete.
func (t *windowedThrasher) nextWindow(m *kernel.Machine) kernel.Status {
	t.w++
	if t.w == t.windows+4 {
		return kernel.Done
	}
	t.phase = 2
	return m.Now()
}

func (t *windowedThrasher) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // sample the stream's start time
		t.phase = 1
		return m.Now()
	case 1:
		t.start = m.Time()
		t.phase = 2
		return m.Now() // commit timestamp for window 0
	case 2: // commit the window's symbol
		t.syms.Commit(m.Time(), t.seq[t.w])
		t.end = t.start + uint64(t.w+1)*t.windowLen
		t.phase = 3
		return m.Now() // window deadline check
	case 3: // between sweeps: start another, or advance the window
		if m.Time() < t.end {
			t.gi, t.li = 0, 0
			t.phase = 4
			return t.read(m)
		}
		return t.nextWindow(m)
	case 4: // sweeping the symbol's page group
		t.li++
		if t.li < len(t.lineOrder) {
			return t.read(m)
		}
		t.li = 0
		t.gi++
		if t.gi == len(t.groups[t.seq[t.w]]) {
			t.phase = 3
			return m.Now()
		}
		t.phase = 5
		return m.Now() // mid-sweep deadline check, once per page
	default: // 5: mid-sweep deadline arrived?
		if m.Time() < t.end {
			t.phase = 4
			return t.read(m)
		}
		return t.nextWindow(m)
	}
}

// mustRun runs the system and panics on harness-level errors: attack
// scenarios are deterministic constructions, so a thread fault is a bug
// in the scenario, not a measurable outcome.
func mustRun(sys *kernel.System) kernel.Report {
	rep, err := sys.Run()
	if err != nil {
		panic(err)
	}
	if len(rep.Errors) > 0 {
		panic(fmt.Sprintf("attacks: thread errors: %v", rep.Errors))
	}
	return rep
}

// imageColors returns the set of LLC colours occupied by domain
// domainIdx's kernel image.
func imageColors(sys *kernel.System, domainIdx int) map[int]bool {
	return imageColorsInto(make(map[int]bool), sys, domainIdx)
}

// imageColorsInto fills a caller-provided (emptied) set — the
// allocation-disciplined core of imageColors.
func imageColorsInto(colors map[int]bool, sys *kernel.System, domainIdx int) map[int]bool {
	d := sys.Domains()[domainIdx]
	m := sys.Machine()
	for _, pfn := range d.Image.TextPFNs {
		colors[m.Mem.Color(pfn)] = true
	}
	return colors
}

// nan is the missing-value marker for Row.ErrRate.
func nan() float64 { return math.NaN() }
