package attacks

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T9, the Figure-1 downgrader scenario: an
// encryption component (Hi) receives secrets and publishes ciphertext to
// a network stack (Lo). Even though the message flow is sanctioned, the
// TIMING of the messages leaks the secret when the crypto computation is
// secret-dependent (§3.2, an algorithmic channel).
//
// Defences evaluated:
//   - deterministic minimum-time delivery (the Cock et al. model): the
//     kernel delivers on a fixed cadence regardless of when the sender
//     finished;
//   - padding of the downgrader's execution (§4.3), in both variants the
//     paper discusses: wasteful busy-loop padding inside the component,
//     and scheduling another Hi process ("interim process") to soak up
//     the pad time productively. The utilisation numbers quantify the
//     paper's "in practice, this is very wastive" remark.

// padMode selects how the downgrader pads its early completion.
type padMode int

const (
	padNone padMode = iota
	padBusyLoop
	padInterim
)

const (
	t9Slice   = 30_000
	t9Pad     = 10_000
	t9Arity   = 4
	t9Base    = 8_000   // cycles of crypto work for symbol 0
	t9Step    = 12_000  // extra cycles per symbol value
	t9WCET    = 120_000 // wall-clock bound for one round, busy-loop target
	t9Cadence = 200_000 // MinDelivery cadence
)

// t9Arrival is one ciphertext delivery as the network stack saw it.
type t9Arrival struct {
	sym int
	at  uint64
}

// t9Crypto is the downgrader: per round, secret-dependent "encryption"
// time, then publish the ciphertext. The secret rides along as payload
// purely as ground truth for the capacity estimate.
type t9Crypto struct {
	rounds  int
	mode    padMode
	secrets []int
	useful  *uint64

	phase      int
	r          int
	roundStart uint64
	work, done uint64
	lastChunk  uint64
}

// chunk issues the next slab of crypto work, at most 500 cycles so the
// kernel can always preempt in time.
func (t *t9Crypto) chunk(m *kernel.Machine) kernel.Status {
	c := t.work - t.done
	if c > 500 {
		c = 500
	}
	t.lastChunk = c
	return m.Compute(c)
}

// send publishes the round's ciphertext.
func (t *t9Crypto) send(m *kernel.Machine) kernel.Status {
	t.phase = 5
	return m.Send(0, uint64(t.secrets[t.r]))
}

func (t *t9Crypto) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // round timestamp
		t.phase = 1
		return m.Now()
	case 1:
		t.roundStart = m.Time()
		t.work = uint64(t9Base + t.secrets[t.r]*t9Step)
		t.done = 0
		t.phase = 2
		return t.chunk(m)
	case 2: // a work chunk finished
		t.done += t.lastChunk
		*t.useful += t.lastChunk
		if t.done < t.work {
			return t.chunk(m)
		}
		if t.mode == padBusyLoop {
			// §4.3: pad execution to an upper bound by busy
			// looping — wasteful but safe.
			t.phase = 3
			return m.Now()
		}
		return t.send(m)
	case 3: // busy-loop deadline check
		if m.Time() < t.roundStart+t9WCET {
			t.phase = 4
			return m.Compute(200)
		}
		return t.send(m)
	case 4:
		t.phase = 3
		return m.Now()
	default: // 5: the send completed
		t.r++
		if t.r == t.rounds+2 {
			return kernel.Done
		}
		t.phase = 1
		return m.Now()
	}
}

// t9Interim is the §4.3 "another Hi process should be scheduled for
// padding": it soaks up the slice time the downgrader leaves while
// blocked, doing useful work in small chunks so the kernel can always
// preempt in time.
type t9Interim struct {
	done *bool
}

func (t *t9Interim) Step(m *kernel.Machine) kernel.Status {
	if *t.done {
		return kernel.Done
	}
	return m.Compute(200)
}

// t9Net is the network stack: it receives each ciphertext; the
// observation is the inter-arrival time.
type t9Net struct {
	rounds   int
	arrivals *[]t9Arrival
	done     *bool

	phase int
	r     int
}

func (t *t9Net) Step(m *kernel.Machine) kernel.Status {
	if t.phase == 1 {
		*t.arrivals = append(*t.arrivals, t9Arrival{sym: int(m.Value()), at: m.Time()})
		t.r++
		if t.r == t.rounds+2 {
			*t.done = true
			return kernel.Done
		}
		return m.Recv(0)
	}
	t.phase = 1
	return m.Recv(0)
}

// buildDowngrader constructs one T9 configuration.
func buildDowngrader(label string, prot core.Config, mode padMode, rounds int, seed uint64, o execOpt) (*kernel.System, func(kernel.Report) Row) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Pool:       o.sysPool(),
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Crypto", SliceCycles: t9Slice, PadCycles: t9Pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 8},
			{Name: "Net", SliceCycles: t9Slice, PadCycles: t9Pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 8},
		},
		Schedule:    [][]int{{0, 1}},
		Endpoints:   []kernel.EndpointSpec{{ID: 0, MinDelivery: t9Cadence}},
		EnableTrace: true,
		TraceLog:    o.traceLog(),
		MaxCycles:   uint64(rounds+8)*400_000 + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T9 %s: %v", label, err))
	}

	secrets := o.symbolSeq(rounds+2, t9Arity, seed)
	cryptoUseful := new(uint64)
	// done stops the interim thread once the workload completes; the
	// lockstep execution of the kernel makes the shared flag safe.
	done := new(bool)
	arrivals := &[]t9Arrival{}

	o.spawn(sys, 0, "crypto", 0, &t9Crypto{
		rounds: rounds, mode: mode, secrets: secrets, useful: cryptoUseful,
	})
	if mode == padInterim {
		o.spawn(sys, 0, "interim", 0, &t9Interim{done: done})
	}
	o.spawn(sys, 1, "net", 0, &t9Net{rounds: rounds, arrivals: arrivals, done: done})

	return sys, func(rep kernel.Report) Row {
		s := o.samples()
		arr := *arrivals
		for i := 1; i < len(arr); i++ {
			s.Add(arr[i].sym, float64(arr[i].at-arr[i-1].at))
		}
		est, err := o.estimateScalar(s, 16, seed^0x9999)
		if err != nil {
			panic(err)
		}

		// Utilisation: the fraction of the Hi domain's consumed CPU
		// time spent on useful work (real crypto cycles plus interim
		// progress).
		hiTotal := rep.ThreadCycles["crypto"] + rep.ThreadCycles["interim"]
		useful := *cryptoUseful + rep.ThreadCycles["interim"]
		util := 0.0
		if hiTotal > 0 {
			util = float64(useful) / float64(hiTotal)
		}
		return Row{
			Label:   label,
			Est:     est,
			ErrRate: nan(),
			SimOps:  rep.Ops,
			Extra: []KV{
				{K: "hi_utilisation", V: util},
				{K: "deliveries", V: float64(len(arr))},
			},
		}
	}
}

// runDowngrader runs one T9 configuration.
func runDowngrader(cc *CellContext, label string, prot core.Config, mode padMode, rounds int, seed uint64) Row {
	sys, finish := buildDowngrader(label, prot, mode, rounds, seed, execOpt{cc: cc})
	rep, err := sys.Run()
	if err != nil {
		panic(err)
	}
	for _, e := range rep.Errors {
		panic(e)
	}
	return finish(rep)
}

// T9Downgrader reproduces experiment T9 (Figure 1): the downgrader's
// response-time channel, closed by deterministic delivery plus padding,
// with the busy-loop versus interim-process utilisation comparison.
func T9Downgrader(rounds int, seed uint64) Experiment {
	return mustScenario("T9").Experiment(rounds, seed)
}
