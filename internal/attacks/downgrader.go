package attacks

import (
	"fmt"

	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file implements T9, the Figure-1 downgrader scenario: an
// encryption component (Hi) receives secrets and publishes ciphertext to
// a network stack (Lo). Even though the message flow is sanctioned, the
// TIMING of the messages leaks the secret when the crypto computation is
// secret-dependent (§3.2, an algorithmic channel).
//
// Defences evaluated:
//   - deterministic minimum-time delivery (the Cock et al. model): the
//     kernel delivers on a fixed cadence regardless of when the sender
//     finished;
//   - padding of the downgrader's execution (§4.3), in both variants the
//     paper discusses: wasteful busy-loop padding inside the component,
//     and scheduling another Hi process ("interim process") to soak up
//     the pad time productively. The utilisation numbers quantify the
//     paper's "in practice, this is very wastive" remark.

// padMode selects how the downgrader pads its early completion.
type padMode int

const (
	padNone padMode = iota
	padBusyLoop
	padInterim
)

// runDowngrader runs one T9 configuration.
func runDowngrader(label string, prot core.Config, mode padMode, rounds int, seed uint64) Row {
	const (
		slice   = 30_000
		pad     = 10_000
		arity   = 4
		base    = 8_000   // cycles of crypto work for symbol 0
		step    = 12_000  // extra cycles per symbol value
		wcet    = 120_000 // wall-clock bound for one round, busy-loop target
		cadence = 200_000 // MinDelivery cadence
	)
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Crypto", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 8},
			{Name: "Net", SliceCycles: slice, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 8},
		},
		Schedule:    [][]int{{0, 1}},
		Endpoints:   []kernel.EndpointSpec{{ID: 0, MinDelivery: cadence}},
		EnableTrace: true,
		MaxCycles:   uint64(rounds+8)*400_000 + 8_000_000,
	})
	if err != nil {
		panic(fmt.Sprintf("attacks: T9 %s: %v", label, err))
	}

	secrets := SymbolSeq(rounds+2, arity, seed)
	var cryptoUseful uint64
	// done stops the interim thread once the workload completes; the
	// lockstep execution of the kernel makes the shared flag safe.
	var done bool

	// The downgrader: per round, secret-dependent "encryption" time,
	// then publish the ciphertext. The secret rides along as payload
	// purely as ground truth for the capacity estimate.
	if _, err := sys.Spawn(0, "crypto", 0, func(c *kernel.UserCtx) {
		for r := 0; r < rounds+2; r++ {
			roundStart := c.Now()
			sym := secrets[r]
			work := uint64(base + sym*step)
			var done uint64
			for done < work {
				chunk := work - done
				if chunk > 500 {
					chunk = 500
				}
				c.Compute(chunk)
				done += chunk
				cryptoUseful += chunk
			}
			if mode == padBusyLoop {
				// §4.3: pad execution to an upper bound by
				// busy looping — wasteful but safe.
				for c.Now() < roundStart+wcet {
					c.Compute(200)
				}
			}
			c.Send(0, uint64(sym))
		}
	}); err != nil {
		panic(err)
	}

	if mode == padInterim {
		// §4.3: "another Hi process should be scheduled for
		// padding": it soaks up the slice time the downgrader
		// leaves while blocked, doing useful work in small chunks
		// so the kernel can always preempt in time.
		if _, err := sys.Spawn(0, "interim", 0, func(c *kernel.UserCtx) {
			for !done {
				c.Compute(200)
			}
		}); err != nil {
			panic(err)
		}
	}

	// The network stack: receive each ciphertext; the observation is
	// the inter-arrival time.
	type arrival struct {
		sym int
		at  uint64
	}
	var arrivals []arrival
	if _, err := sys.Spawn(1, "net", 0, func(c *kernel.UserCtx) {
		for r := 0; r < rounds+2; r++ {
			v, at := c.Recv(0)
			arrivals = append(arrivals, arrival{sym: int(v), at: at})
		}
		done = true
	}); err != nil {
		panic(err)
	}

	rep, err := sys.Run()
	if err != nil {
		panic(err)
	}
	for _, e := range rep.Errors {
		panic(e)
	}
	s := channel.NewSamples()
	for i := 1; i < len(arrivals); i++ {
		s.Add(arrivals[i].sym, float64(arrivals[i].at-arrivals[i-1].at))
	}
	est, err := channel.EstimateScalar(s, 16, seed^0x9999)
	if err != nil {
		panic(err)
	}

	// Utilisation: the fraction of the Hi domain's consumed CPU time
	// spent on useful work (real crypto cycles plus interim progress).
	hiTotal := rep.ThreadCycles["crypto"] + rep.ThreadCycles["interim"]
	useful := cryptoUseful + rep.ThreadCycles["interim"]
	util := 0.0
	if hiTotal > 0 {
		util = float64(useful) / float64(hiTotal)
	}
	return Row{
		Label:   label,
		Est:     est,
		ErrRate: nan(),
		Extra: []KV{
			{K: "hi_utilisation", V: util},
			{K: "deliveries", V: float64(len(arrivals))},
		},
	}
}

// T9Downgrader reproduces experiment T9 (Figure 1): the downgrader's
// response-time channel, closed by deterministic delivery plus padding,
// with the busy-loop versus interim-process utilisation comparison.
func T9Downgrader(rounds int, seed uint64) Experiment {
	return mustScenario("T9").Experiment(rounds, seed)
}
