package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"timeprot/internal/cliutil"
	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// Config tunes a Server. The zero value is usable: GOMAXPROCS workers
// and the wall clock.
type Config struct {
	// Workers is the bounded cell worker pool size (<=0 = GOMAXPROCS).
	// Like engine parallelism, it never affects served bytes.
	Workers int
	// Now is the server's clock, for the status timestamps; nil = wall
	// clock. The contract tests pin it so responses are byte-stable.
	Now func() time.Time
}

// Server is the sweep service: a job registry, a shared scheduler, and
// a shared synchronized store behind an http.Handler. Construct with
// New, wire Handler into a listener, and Close to shut down (cancels
// every job, drains the workers, closes the store).
type Server struct {
	store   *syncStore
	reg     *registry
	sched   *scheduler
	stats   *serverStats
	workers int
	now     func() time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mux *http.ServeMux

	closeMu  sync.Mutex
	closed   bool
	jobs     sync.WaitGroup
	closeErr error
}

// New builds a Server over the shared result store. The server owns st
// from here on: Close closes it.
func New(st store.CellStore, cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:   newSyncStore(st),
		reg:     newRegistry(),
		stats:   newServerStats(),
		workers: workers,
		now:     now,
		ctx:     ctx,
		cancel:  cancel,
	}
	s.sched = newScheduler(workers, s.store, s.stats)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the server down: no new submissions, every job cancelled,
// in-flight cells finished and written back (completed work is never
// lost — the crash/restart tests replay against exactly this store),
// workers drained, store closed. Idempotent.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return s.closeErr
	}
	s.closed = true
	s.closeMu.Unlock()

	s.reg.cancelAll()
	s.cancel()
	s.jobs.Wait()
	s.sched.close()
	s.closeErr = s.store.Close()
	return s.closeErr
}

// expanded is a submit request resolved into its cell matrices and
// their store keys.
type expanded struct {
	shard   experiment.ShardSel
	cells   []experiment.Cell
	proofs  []experiment.ProofCell
	conform []experiment.ConformanceCell
	keys    []store.Key
}

// expand validates a submit request and expands it into its (sharded)
// matrix. Every failure here is the client's: a 400, never a job.
func expand(req SubmitRequest) (expanded, error) {
	var ex expanded
	specs := 0
	for _, set := range []bool{req.Sweep != nil, req.Proof != nil, req.Conform != nil} {
		if set {
			specs++
		}
	}
	if specs != 1 {
		return ex, fmt.Errorf("want exactly one spec (sweep, proof, or conform), got %d", specs)
	}
	sel, err := cliutil.ParseShard(req.Shard)
	if err != nil {
		return ex, err
	}
	ex.shard = sel
	switch req.Kind {
	case KindSweep:
		if req.Sweep == nil {
			return ex, fmt.Errorf("kind %q needs the sweep spec", req.Kind)
		}
		cells, err := req.Sweep.Cells()
		if err != nil {
			return ex, err
		}
		if ex.cells, err = experiment.ShardCells(cells, sel); err != nil {
			return ex, err
		}
		for _, c := range ex.cells {
			k, ok := experiment.CellKey(c)
			if !ok {
				return ex, fmt.Errorf("cell %s/%s does not resolve against the registry", c.ScenarioID, c.Variant)
			}
			ex.keys = append(ex.keys, k)
		}
		// Mirror the engine: only shard 0 of a sharded sweep carries the
		// proof matrix, and it is never sub-sharded.
		if req.Sweep.Proofs && (sel.Count <= 1 || sel.Index == 0) {
			pcells, err := experiment.SweepProofSpec(*req.Sweep).Cells()
			if err != nil {
				return ex, err
			}
			ex.proofs = pcells
			for _, c := range pcells {
				ex.keys = append(ex.keys, experiment.ProofKey(c))
			}
		}
	case KindProof:
		if req.Proof == nil {
			return ex, fmt.Errorf("kind %q needs the proof spec", req.Kind)
		}
		cells, err := req.Proof.Cells()
		if err != nil {
			return ex, err
		}
		if ex.proofs, err = experiment.ShardProofCells(cells, sel); err != nil {
			return ex, err
		}
		for _, c := range ex.proofs {
			ex.keys = append(ex.keys, experiment.ProofKey(c))
		}
	case KindConform:
		if req.Conform == nil {
			return ex, fmt.Errorf("kind %q needs the conform spec", req.Kind)
		}
		cells, err := req.Conform.Cells()
		if err != nil {
			return ex, err
		}
		if ex.conform, err = experiment.ShardConformCells(cells, sel); err != nil {
			return ex, err
		}
		for _, c := range ex.conform {
			ex.keys = append(ex.keys, experiment.ConformKey(c))
		}
	default:
		return ex, fmt.Errorf("unknown kind %q (want %s, %s, or %s)", req.Kind, KindSweep, KindProof, KindConform)
	}
	return ex, nil
}

// Submit accepts a request programmatically — the HTTP submit handler
// over a direct call. The returned job is already scheduled.
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	ex, err := expand(req)
	if err != nil {
		return nil, err
	}
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil, fmt.Errorf("server is shutting down")
	}
	j := s.reg.add(s.ctx, req, s.now())
	j.shard = ex.shard
	j.cells = ex.cells
	j.proofCells = ex.proofs
	j.conformCells = ex.conform
	s.stats.addJob(ex.keys)
	s.jobs.Add(1)
	s.closeMu.Unlock()
	go s.runJob(j)
	return j, nil
}

// runJob is one job's runner: feed the job's tasks to the shared
// scheduler, wait for them, then assemble the report warm from the
// store and finish.
func (s *Server) runJob(j *Job) {
	defer s.jobs.Done()
	j.setState(StateRunning, s.now(), "")

	var wg sync.WaitGroup
	tasks := make([]task, 0, len(j.proofCells)+len(j.conformCells)+1)
	for _, g := range experiment.FinalizationGroups(j.cells) {
		tasks = append(tasks, task{job: j, cells: g})
	}
	for i := range j.proofCells {
		tasks = append(tasks, task{job: j, proof: &j.proofCells[i]})
	}
	for i := range j.conformCells {
		tasks = append(tasks, task{job: j, conform: &j.conformCells[i]})
	}
feed:
	for i := range tasks {
		tasks[i].wg = &wg
		wg.Add(1)
		select {
		case s.sched.tasks <- tasks[i]:
		case <-j.ctx.Done():
			wg.Done()
			break feed
		}
	}
	wg.Wait()

	if j.ctx.Err() != nil {
		j.setState(StateCanceled, s.now(), "")
		return
	}
	body, err := s.assemble(j)
	if err != nil {
		if j.ctx.Err() != nil {
			j.setState(StateCanceled, s.now(), "")
		} else {
			j.setState(StateFailed, s.now(), err.Error())
		}
		return
	}
	j.setResult(body)
	j.setState(StateDone, s.now(), "")
}

// assemble produces the job's report by running the ordinary engine
// runner against the now-warm shared store — the exact bytes the
// matching CLI would emit for the same spec, which is what makes served
// results comparable (and committed-golden-testable) against cold
// single-process runs. The store serves every cell the scheduler filled
// in; anything missing (a failed write-back) re-executes here, so the
// report is always complete.
func (s *Server) assemble(j *Job) ([]byte, error) {
	var buf bytes.Buffer
	switch j.kind {
	case KindSweep:
		rep, err := experiment.Run(*j.req.Sweep, experiment.Options{
			Parallelism: s.workers, Store: s.store, Shard: j.shard, Context: j.ctx})
		if err != nil {
			return nil, err
		}
		if err := experiment.WriteJSON(&buf, rep); err != nil {
			return nil, err
		}
	case KindProof:
		m, err := experiment.RunProofMatrix(*j.req.Proof, experiment.ProofOptions{
			Parallelism: s.workers, Store: s.store, Shard: j.shard, Context: j.ctx})
		if err != nil {
			return nil, err
		}
		if err := experiment.WriteProofsJSON(&buf, m); err != nil {
			return nil, err
		}
	case KindConform:
		m, err := experiment.RunConformance(*j.req.Conform, experiment.ConformanceOptions{
			Parallelism: s.workers, Store: s.store, Shard: j.shard, Context: j.ctx})
		if err != nil {
			return nil, err
		}
		if err := experiment.WriteConformanceJSON(&buf, m); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown kind %q", j.kind)
	}
	return buf.Bytes(), nil
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorReply{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		code := http.StatusBadRequest
		if err.Error() == "server is shutting down" {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: j.id, Kind: j.kind, State: StateQueued, Cells: j.total(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.reg.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.status()
	if st.State != StateDone {
		writeErr(w, http.StatusConflict, "job %s is %s, not done", j.id, st.State)
		return
	}
	j.mu.Lock()
	body := j.result
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleStream follows the job as NDJSON: the full event history
// replays first, then live events until the job is terminal (or the
// client goes away).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	idx := 0
	for {
		evs, isTerminal, changed := j.follow(idx)
		for _, e := range evs {
			enc.Encode(e)
		}
		idx += len(evs)
		if fl != nil {
			fl.Flush()
		}
		if isTerminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
