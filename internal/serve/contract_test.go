package serve

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"timeprot/internal/experiment/store"
)

var update = flag.Bool("update", false, "rewrite the committed HTTP contract goldens")

// contractServer boots a byte-deterministic server: one worker (so the
// event stream's cell order is the feed order), a pinned clock (so
// every timestamp is the same stamp), a fresh store (so every cell is
// "executed"), and a fresh registry (so the first job is j1).
func contractServer(t *testing.T) string {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	srv := New(st, Config{Workers: 1, Now: func() time.Time { return t0 }})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

// checkGolden compares a response body against its committed fixture.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/serve -run TestHTTPContract -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverges from the committed golden — if the API or engine change is intentional, regenerate with -update\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// do performs one request and asserts its status code.
func do(t *testing.T, method, url, body string, wantCode int) []byte {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: got %d, want %d\n%s", method, url, resp.StatusCode, wantCode, b)
	}
	return b
}

// TestHTTPContract pins the v1 wire format with golden fixtures: the
// happy path (submit → stream → status → result → list → stats) and
// every rejection class. The stream golden doubles as the progress
// contract: with one worker the cell order is exactly the feed order.
func TestHTTPContract(t *testing.T) {
	base := contractServer(t)
	spec := `{"Scenarios":["T4"],"Rounds":20,"Seeds":[11]}`

	b := do(t, "POST", base+"/v1/jobs", `{"kind":"sweep","sweep":`+spec+`}`, http.StatusAccepted)
	checkGolden(t, "submit_sweep.json", b)

	// The stream blocks until the job is terminal, so reading it to EOF
	// is also the test's completion barrier.
	b = do(t, "GET", base+"/v1/jobs/j1/stream", "", http.StatusOK)
	checkGolden(t, "stream.ndjson", b)

	b = do(t, "GET", base+"/v1/jobs/j1", "", http.StatusOK)
	checkGolden(t, "status.json", b)

	b = do(t, "GET", base+"/v1/jobs/j1/result", "", http.StatusOK)
	checkGolden(t, "result.json", b)

	b = do(t, "GET", base+"/v1/jobs", "", http.StatusOK)
	checkGolden(t, "list.json", b)

	b = do(t, "GET", base+"/v1/stats", "", http.StatusOK)
	checkGolden(t, "stats.json", b)

	for _, tc := range []struct {
		name, body string
		code       int
	}{
		{"err_malformed.json", `{"kind":`, http.StatusBadRequest},
		{"err_unknown_kind.json", `{"kind":"sudoku","sweep":` + spec + `}`, http.StatusBadRequest},
		{"err_bad_spec.json", `{"kind":"sweep","sweep":{"Scenarios":["T99"]}}`, http.StatusBadRequest},
		{"err_bad_shard.json", `{"kind":"sweep","shard":"5/2","sweep":` + spec + `}`, http.StatusBadRequest},
		{"err_two_specs.json", `{"kind":"sweep","sweep":` + spec + `,"proof":{}}`, http.StatusBadRequest},
	} {
		b = do(t, "POST", base+"/v1/jobs", tc.body, tc.code)
		checkGolden(t, tc.name, b)
	}
	b = do(t, "GET", base+"/v1/jobs/j999", "", http.StatusNotFound)
	checkGolden(t, "err_unknown_job.json", b)

	// Error submissions must not have minted jobs: the next accepted
	// submission is j2, pinning the ID sequence.
	b = do(t, "POST", base+"/v1/jobs", `{"kind":"sweep","sweep":`+spec+`}`, http.StatusAccepted)
	if !bytes.Contains(b, []byte(`"id": "j2"`)) {
		t.Fatalf("rejected submissions consumed job IDs:\n%s", b)
	}
}

// TestContractStreamReplay: a stream opened after the job finished
// replays the identical full history — byte-equal to the live stream.
func TestContractStreamReplay(t *testing.T) {
	base := contractServer(t)
	spec := `{"Scenarios":["T4"],"Rounds":20,"Seeds":[11]}`
	do(t, "POST", base+"/v1/jobs", `{"kind":"sweep","sweep":`+spec+`}`, http.StatusAccepted)
	live := do(t, "GET", base+"/v1/jobs/j1/stream", "", http.StatusOK)
	replay := do(t, "GET", base+"/v1/jobs/j1/stream", "", http.StatusOK)
	if !bytes.Equal(live, replay) {
		t.Fatalf("replayed stream differs from live stream:\n--- live ---\n%s\n--- replay ---\n%s", live, replay)
	}
}
