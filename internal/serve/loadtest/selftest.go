package loadtest

import (
	"fmt"
	"net"
	"net/http"

	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
	"timeprot/internal/serve"
)

// SelfTest boots a real server over a fresh file-backend store in dir,
// listens on a loopback port, and drives two load rounds over the
// wire:
//
//  1. a cold round — clients concurrent submissions of overlapping
//     matrices must execute exactly one cell per distinct key, and the
//     served union report must equal a cold single-process run;
//  2. a warm replay round — the same schedule again must execute zero
//     cells and serve the identical bytes.
//
// logf receives one progress line per round; any invariant violation
// is the returned error.
func SelfTest(dir string, clients, shards int, spec experiment.Spec, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	st, err := store.Open(dir)
	if err != nil {
		return fmt.Errorf("selftest: opening store: %v", err)
	}
	srv := serve.New(st, serve.Config{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("selftest: listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	cold, err := ColdReport(spec)
	if err != nil {
		return fmt.Errorf("selftest: cold baseline: %v", err)
	}
	opt := Options{BaseURL: base, Clients: clients, Shards: shards, Spec: spec}

	res, err := Run(opt)
	if err != nil {
		return fmt.Errorf("selftest: cold round: %v", err)
	}
	if err := Check(res, serve.Stats{}, cold); err != nil {
		return fmt.Errorf("selftest: cold round: %v", err)
	}
	logf("cold round: %d clients, %d submissions of %d cells, %d distinct keys, %d executed, %d store hits, %d joined in flight",
		clients, res.Stats.Jobs, res.Stats.CellsSubmitted, res.Stats.DistinctKeys,
		res.Stats.Executed, res.Stats.StoreHits, res.Stats.Joined)

	before := res.Stats
	warm, err := Run(opt)
	if err != nil {
		return fmt.Errorf("selftest: warm round: %v", err)
	}
	if err := Check(warm, before, cold); err != nil {
		return fmt.Errorf("selftest: warm round: %v", err)
	}
	if warm.Stats.Executed != before.Executed {
		return fmt.Errorf("selftest: warm round executed %d cells; want 0", warm.Stats.Executed-before.Executed)
	}
	logf("warm round: same schedule served entirely from the store (%d hits, 0 executions), report byte-identical",
		warm.Stats.StoreHits-before.StoreHits)
	return nil
}
