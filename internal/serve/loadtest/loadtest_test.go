package loadtest

import (
	"testing"

	"timeprot/internal/experiment"
	"timeprot/internal/serve"
)

// TestSelfTest runs the full harness — real listener, concurrent HTTP
// clients, cold round plus warm replay — exactly as `tpserved
// -selftest` and the CI serve job do, on a small matrix.
func TestSelfTest(t *testing.T) {
	spec := experiment.Spec{Scenarios: []string{"T2"}, Rounds: 6, Seeds: []uint64{42}}
	if err := SelfTest(t.TempDir(), 3, 2, spec, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// TestSchedule pins the submission mix: client 0 always carries the
// full union matrix, later clients rotate shards with a full duplicate
// every Shards+1 slots, and disabling sharding degrades every client
// to the full matrix.
func TestSchedule(t *testing.T) {
	opt := Options{Shards: 2}
	shards := make([]string, 6)
	for i := range shards {
		shards[i] = schedule(i, opt).Shard
	}
	want := []string{"", "0/2", "1/2", "", "0/2", "1/2"}
	for i, w := range want {
		if shards[i] != w {
			t.Fatalf("schedule with 2 shards = %q, want %q", shards, want)
		}
	}
	for i := 0; i < 4; i++ {
		req := schedule(i, Options{Shards: 1})
		if req.Shard != "" || req.Kind != serve.KindSweep {
			t.Fatalf("unsharded schedule emitted %+v", req)
		}
	}
}
