// Package loadtest is the harness that proves the sweep service's
// concurrency math instead of trusting it. It drives N concurrent
// clients submitting overlapping matrices — full-matrix submissions,
// n-way-sharded submissions, and pure duplicates — against one server,
// then checks the two service invariants over the server's own
// accounting:
//
//   - dedup math: executed cells == distinct store keys submitted
//     (on a cold store; a warm replay pass must execute zero), and
//   - byte identity: the served union report is byte-for-byte the
//     report a cold single-process engine run of the same spec emits.
//
// It runs in-process (tpserved -selftest, the CI serve job) and over
// the wire against any live server (BaseURL).
package loadtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"timeprot/internal/experiment"
	"timeprot/internal/serve"
)

// Client is a thin HTTP client for the service's v1 API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient points a client at a server's base URL (no trailing slash).
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// apiErr decodes a non-2xx body into an error.
func apiErr(resp *http.Response) error {
	defer resp.Body.Close()
	var e serve.ErrorReply
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

// Submit posts one job.
func (c *Client) Submit(req serve.SubmitRequest) (serve.SubmitResponse, error) {
	var out serve.SubmitResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return out, apiErr(resp)
	}
	defer resp.Body.Close()
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Wait follows the job's event stream until it is terminal and returns
// the final status.
func (c *Client) Wait(id string) (serve.JobStatus, error) {
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		return serve.JobStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.JobStatus{}, apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		// The stream ends when the server publishes a terminal state;
		// the final status snapshot is one GET away.
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return serve.JobStatus{}, err
	}
	return c.Status(id)
}

// Status fetches the job's status snapshot.
func (c *Client) Status(id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, apiErr(resp)
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Result fetches a done job's report bytes.
func (c *Client) Result(id string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErr(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Cancel cancels a job.
func (c *Client) Cancel(id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := c.hc.Post(c.base+"/v1/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, apiErr(resp)
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Stats fetches the server-wide dedup accounting.
func (c *Client) Stats() (serve.Stats, error) {
	var st serve.Stats
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, apiErr(resp)
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Options configures one load-test round.
type Options struct {
	// BaseURL is the server under test.
	BaseURL string
	// Clients is the number of concurrent clients (>= 2; one always
	// submits the full union matrix).
	Clients int
	// Shards is the n of the "i/n"-sharded submissions mixed into the
	// schedule (<= 1 disables sharded submissions).
	Shards int
	// Spec is the union sweep matrix every submission overlaps with.
	Spec experiment.Spec
}

// Result is one round's outcome.
type Result struct {
	// Jobs are the final statuses, one per client.
	Jobs []serve.JobStatus
	// UnionReport is the served report of the first full-matrix job.
	UnionReport []byte
	// Stats is the server accounting after the round.
	Stats serve.Stats
}

// schedule builds client i's submission. Client 0 submits the full
// union matrix; later clients rotate through the matrix's shards, and
// every (Shards+1)-th slot submits the full matrix again as a pure
// duplicate — so every submission overlaps every other, and the union
// of all submissions is exactly the union matrix.
func schedule(i int, opt Options) serve.SubmitRequest {
	req := serve.SubmitRequest{Kind: serve.KindSweep, Sweep: &opt.Spec}
	if opt.Shards > 1 && i > 0 {
		if slot := (i - 1) % (opt.Shards + 1); slot < opt.Shards {
			req.Shard = fmt.Sprintf("%d/%d", slot, opt.Shards)
		}
	}
	return req
}

// Run drives one round: all clients submit concurrently, wait for
// their jobs, and the first full-matrix job's report is kept as the
// served union report.
func Run(opt Options) (*Result, error) {
	if opt.Clients < 2 {
		return nil, fmt.Errorf("loadtest: want >= 2 clients, got %d", opt.Clients)
	}
	c := NewClient(opt.BaseURL)
	ids := make([]string, opt.Clients)
	errs := make([]error, opt.Clients)
	var wg sync.WaitGroup
	for i := 0; i < opt.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := c.Submit(schedule(i, opt))
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = sub.ID
			_, errs[i] = c.Wait(sub.ID)
		}(i)
	}
	wg.Wait()
	res := &Result{}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("loadtest: client %d: %v", i, err)
		}
		st, err := c.Status(ids[i])
		if err != nil {
			return nil, fmt.Errorf("loadtest: client %d status: %v", i, err)
		}
		if st.State != serve.StateDone {
			return nil, fmt.Errorf("loadtest: client %d job %s finished %s (%s)", i, st.ID, st.State, st.Error)
		}
		res.Jobs = append(res.Jobs, st)
	}
	var err error
	if res.UnionReport, err = c.Result(ids[0]); err != nil {
		return nil, fmt.Errorf("loadtest: union report: %v", err)
	}
	if res.Stats, err = c.Stats(); err != nil {
		return nil, fmt.Errorf("loadtest: stats: %v", err)
	}
	return res, nil
}

// ColdReport runs the union spec cold in-process — no store, no
// service — and returns the exact bytes a single-process engine run
// emits, the byte-identity baseline.
func ColdReport(spec experiment.Spec) ([]byte, error) {
	rep, err := experiment.Run(spec, experiment.Options{})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := experiment.WriteJSON(&buf, rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Check asserts the round's invariants against a cold baseline and the
// stats delta attributable to the round (pass the pre-round stats as
// before — zero-valued for a fresh server).
//
//   - dedup math: the round's executions == the round's new distinct
//     keys (every distinct key cold-missed exactly once, nothing ran
//     twice);
//   - completeness: every job finished done, and the per-job
//     accounting adds up (done == executed + storeHits + joined ==
//     total);
//   - byte identity: the served union report equals the cold run's.
func Check(res *Result, before serve.Stats, cold []byte) error {
	executed := res.Stats.Executed - before.Executed
	distinct := res.Stats.DistinctKeys - before.DistinctKeys
	if executed != distinct {
		return fmt.Errorf("dedup invariant violated: %d cells executed for %d distinct keys", executed, distinct)
	}
	for _, j := range res.Jobs {
		if j.Done != j.Total || j.Executed+j.StoreHits+j.Joined != j.Done {
			return fmt.Errorf("job %s accounting broken: total=%d done=%d executed=%d hits=%d joined=%d",
				j.ID, j.Total, j.Done, j.Executed, j.StoreHits, j.Joined)
		}
		if j.CellErrors > 0 {
			return fmt.Errorf("job %s had %d cell errors", j.ID, j.CellErrors)
		}
	}
	if res.Stats.FailedPuts != before.FailedPuts {
		return fmt.Errorf("%d store write-backs failed during the round", res.Stats.FailedPuts-before.FailedPuts)
	}
	if !bytes.Equal(res.UnionReport, cold) {
		return fmt.Errorf("served union report diverges from the cold single-process run (%d vs %d bytes)",
			len(res.UnionReport), len(cold))
	}
	return nil
}
