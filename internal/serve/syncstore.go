package serve

import (
	"fmt"
	"sync"

	"timeprot/internal/attacks"
	"timeprot/internal/experiment/store"
)

// syncStore wraps the server's shared CellStore in the
// concurrent-reader / single-writer discipline the service needs: any
// number of jobs may probe concurrently (warm serving and assembly are
// read-bound), writers are serialised against each other and against
// readers, and Close is serialised against everything — after Close,
// reads are misses and writes fail instead of racing a closed backend.
//
// Both store backends are individually goroutine-safe; the wrapper adds
// what they do not promise: a close barrier shared by many jobs, and a
// single writer at a time so the packed backend's append path is never
// interleaved by tenant load. It implements store.CellStore, so the
// engine's runners use the wrapped store directly at assembly time.
type syncStore struct {
	mu     sync.RWMutex
	closed bool
	st     store.CellStore
}

func newSyncStore(st store.CellStore) *syncStore { return &syncStore{st: st} }

func (s *syncStore) Dir() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.st.Dir()
}

func (s *syncStore) Get(k store.Key) (attacks.Row, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return attacks.Row{}, false
	}
	return s.st.Get(k)
}

func (s *syncStore) Put(k store.Key, row attacks.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: store is closed")
	}
	return s.st.Put(k, row)
}

func (s *syncStore) GetProof(k store.Key) (store.ProofV1, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.ProofV1{}, false
	}
	return s.st.GetProof(k)
}

func (s *syncStore) PutProof(k store.Key, p store.ProofV1) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: store is closed")
	}
	return s.st.PutProof(k, p)
}

func (s *syncStore) GetConform(k store.Key) (store.ConformV1, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.ConformV1{}, false
	}
	return s.st.GetConform(k)
}

func (s *syncStore) PutConform(k store.Key, c store.ConformV1) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: store is closed")
	}
	return s.st.PutConform(k, c)
}

func (s *syncStore) GetDiscover(k store.Key) (store.DiscoverV1, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return store.DiscoverV1{}, false
	}
	return s.st.GetDiscover(k)
}

func (s *syncStore) PutDiscover(k store.Key, d store.DiscoverV1) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: store is closed")
	}
	return s.st.PutDiscover(k, d)
}

func (s *syncStore) Keys() ([]store.Key, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, fmt.Errorf("serve: store is closed")
	}
	return s.st.Keys()
}

func (s *syncStore) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, fmt.Errorf("serve: store is closed")
	}
	return s.st.Len()
}

// MergeFrom folds a source store in under the writer lock —
// merge-on-complete: a finished shard store (or another server's store)
// merges atomically with respect to every concurrent reader.
func (s *syncStore) MergeFrom(src string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("serve: store is closed")
	}
	return s.st.MergeFrom(src)
}

func (s *syncStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.st.Close()
}
