package serve

import (
	"fmt"
	"sync"

	"timeprot/internal/attacks"
	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// task is the scheduler's work unit: one finalisation group of attack
// cells, or one proof/conformance cell, belonging to one job. Every
// job's runner feeds its tasks into the one shared queue, so an idle
// worker steals the next group regardless of which tenant submitted it
// — cross-job work-stealing over the same partition unit the shard
// machinery uses.
type task struct {
	job *Job
	wg  *sync.WaitGroup

	cells   []experiment.Cell
	proof   *experiment.ProofCell
	conform *experiment.ConformanceCell
}

// scheduler is the bounded worker pool shared by every job. Each
// worker owns one reusable attacks.CellContext — the allocation-free
// hot path — recycled across cells of every tenant.
type scheduler struct {
	tasks  chan task
	flight *flightGroup
	store  *syncStore
	stats  *serverStats
	wg     sync.WaitGroup
}

func newScheduler(workers int, st *syncStore, stats *serverStats) *scheduler {
	s := &scheduler{
		tasks:  make(chan task),
		flight: newFlightGroup(),
		store:  st,
		stats:  stats,
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// close drains the pool: the queue must no longer be fed (all job
// runners have exited) when this is called.
func (s *scheduler) close() {
	close(s.tasks)
	s.wg.Wait()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	cc := attacks.NewCellContext()
	for t := range s.tasks {
		for _, c := range t.cells {
			s.runAttack(t.job, cc, c)
		}
		if t.proof != nil {
			s.runProof(t.job, *t.proof)
		}
		if t.conform != nil {
			s.runConform(t.job, *t.conform)
		}
		t.wg.Done()
	}
}

// runAttack resolves one attack cell under the dedup discipline. A
// cancelled job's remaining cells are skipped silently — they are not
// failures, and another job that also wants them will flight them
// itself.
func (s *scheduler) runAttack(j *Job, cc *attacks.CellContext, c experiment.Cell) {
	if j.ctx.Err() != nil {
		return
	}
	label := fmt.Sprintf("%s/%s seed=%d", c.ScenarioID, c.Variant, c.Seed)
	key, ok := experiment.CellKey(c)
	if !ok {
		// Unreachable after submit-time validation; degrade to a cell error.
		j.cellDone(label, SourceExecuted, fmt.Errorf("cell does not resolve against the registry"))
		return
	}
	src, err := s.flight.Do(key,
		func() bool { _, hit := s.store.Get(key); return hit },
		func() error {
			row, rerr := experiment.ExecuteCell(cc, c)
			if rerr != nil {
				return rerr
			}
			if perr := s.store.Put(key, row); perr != nil {
				s.stats.failedPut()
			}
			return nil
		})
	j.cellDone(label, src, err)
	s.stats.cellDone(src)
}

func (s *scheduler) runProof(j *Job, c experiment.ProofCell) {
	if j.ctx.Err() != nil {
		return
	}
	label := fmt.Sprintf("proof %s/%s fam=%d seed=%d", c.Model, c.Ablation, c.Families, c.Seed)
	key := experiment.ProofKey(c)
	src, err := s.flight.Do(key,
		func() bool { _, hit := s.store.GetProof(key); return hit },
		func() error {
			p, rerr := experiment.ExecuteProofCell(c)
			if rerr != nil {
				return rerr
			}
			if perr := s.store.PutProof(key, p); perr != nil {
				s.stats.failedPut()
			}
			return nil
		})
	j.cellDone(label, src, err)
	s.stats.cellDone(src)
}

func (s *scheduler) runConform(j *Job, c experiment.ConformanceCell) {
	if j.ctx.Err() != nil {
		return
	}
	label := fmt.Sprintf("conform %s/%s pair=%d seed=%d", c.Model, c.Ablation, c.Pair, c.Seed)
	key := experiment.ConformKey(c)
	src, err := s.flight.Do(key,
		func() bool { _, hit := s.store.GetConform(key); return hit },
		func() error {
			cv, rerr := experiment.ExecuteConformCell(c)
			if rerr != nil {
				return rerr
			}
			if perr := s.store.PutConform(key, cv); perr != nil {
				s.stats.failedPut()
			}
			return nil
		})
	j.cellDone(label, src, err)
	s.stats.cellDone(src)
}

// serverStats is the server-wide dedup ledger: distinct submitted keys
// on one side, executions on the other. The load-test harness asserts
// Executed <= DistinctKeys (== on a cold store) over this exact
// accounting.
type serverStats struct {
	mu             sync.Mutex
	jobs           int
	cellsSubmitted int
	executed       int
	hits           int
	joined         int
	failedPuts     int
	keys           map[store.Key]struct{}
}

func newServerStats() *serverStats {
	return &serverStats{keys: make(map[store.Key]struct{})}
}

// addJob records one accepted submission and folds its key set into
// the distinct-key union.
func (s *serverStats) addJob(keys []store.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs++
	s.cellsSubmitted += len(keys)
	for _, k := range keys {
		s.keys[k] = struct{}{}
	}
}

func (s *serverStats) cellDone(source string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch source {
	case SourceExecuted:
		s.executed++
	case SourceStore:
		s.hits++
	case SourceJoined:
		s.joined++
	}
}

func (s *serverStats) failedPut() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failedPuts++
}

func (s *serverStats) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Jobs:               s.jobs,
		CellsSubmitted:     s.cellsSubmitted,
		DistinctKeys:       len(s.keys),
		Executed:           s.executed,
		StoreHits:          s.hits,
		Joined:             s.joined,
		FailedPuts:         s.failedPuts,
		CellFingerprint:    experiment.Fingerprint(),
		ProofFingerprint:   experiment.ProverFingerprint(),
		ConformFingerprint: experiment.ConformFingerprint(),
	}
}
