package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"timeprot/internal/experiment"
)

// Job is one accepted submission: its normalised request, its cell
// matrix (expanded and sharded at submit time, so a bad spec is a 400,
// never a failed job), its progress accounting, and its event history.
// The history is append-only and every append wakes the stream
// followers, so a stream started at any point replays the full history
// and then follows live.
type Job struct {
	id    string
	kind  string
	shard experiment.ShardSel
	req   SubmitRequest

	// ctx scopes every piece of the job's work; cancel is the job's
	// kill switch (the cancel endpoint and server shutdown).
	ctx    context.Context
	cancel context.CancelFunc

	// cells / proofCells / conformCells is the job's matrix, exactly
	// one of them non-empty per kind — except a sweep with Proofs set,
	// which carries proofCells too.
	cells        []experiment.Cell
	proofCells   []experiment.ProofCell
	conformCells []experiment.ConformanceCell

	mu       sync.Mutex
	changed  chan struct{} // closed and replaced on every mutation
	state    string
	done     int
	executed int
	hits     int
	joined   int
	cellErrs int
	errMsg   string
	result   []byte
	events   []Event
	created  time.Time
	started  time.Time
	finished time.Time
}

// total is the job's matrix size.
func (j *Job) total() int {
	return len(j.cells) + len(j.proofCells) + len(j.conformCells)
}

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// bump wakes every follower. Callers hold j.mu.
func (j *Job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// setState moves the job through its lifecycle, stamping the
// transition and publishing a "state" event.
func (j *Job) setState(state string, now time.Time, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.state) {
		return // a canceled job stays canceled even if the runner finishes
	}
	j.state = state
	switch state {
	case StateRunning:
		j.started = now
	case StateDone, StateFailed, StateCanceled:
		j.finished = now
	}
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.events = append(j.events, Event{Type: "state", State: state, Error: errMsg})
	j.bump()
}

// setResult records the assembled report bytes.
func (j *Job) setResult(b []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = b
}

// cellDone records one scheduled cell's outcome and publishes its
// "cell" (or "error") event.
func (j *Job) cellDone(label, source string, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	switch source {
	case SourceExecuted:
		j.executed++
	case SourceStore:
		j.hits++
	case SourceJoined:
		j.joined++
	}
	ev := Event{Type: "cell", Done: j.done, Total: j.total(), Cell: label, Source: source}
	if err != nil {
		j.cellErrs++
		ev.Type = "error"
		ev.Error = err.Error()
	}
	j.events = append(j.events, ev)
	j.bump()
}

// status snapshots the job for the status endpoints.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		Shard:      j.req.Shard,
		Total:      j.total(),
		Done:       j.done,
		Executed:   j.executed,
		StoreHits:  j.hits,
		Joined:     j.joined,
		CellErrors: j.cellErrs,
		Error:      j.errMsg,
		Created:    stamp(j.created),
	}
	if !j.started.IsZero() {
		st.Started = stamp(j.started)
	}
	if !j.finished.IsZero() {
		st.Finished = stamp(j.finished)
	}
	return st
}

// stamp renders a timestamp in the status wire format.
func stamp(t time.Time) string { return t.UTC().Format(time.RFC3339) }

// follow returns the events at and after index from, the job's current
// terminal-ness, and a channel that closes on the next mutation — the
// stream handler's read primitive.
func (j *Job) follow(from int) (evs []Event, isTerminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events[from:], terminal(j.state), j.changed
}

// registry is the server's job table: deterministic sequential IDs
// (j1, j2, …) and snapshot listing in submission order.
type registry struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	ids  []string
}

func newRegistry() *registry { return &registry{jobs: make(map[string]*Job)} }

// add registers a new job and assigns its ID.
func (r *registry) add(ctx context.Context, req SubmitRequest, now time.Time) *Job {
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		kind:    req.Kind,
		req:     req,
		ctx:     jctx,
		cancel:  cancel,
		changed: make(chan struct{}),
		state:   StateQueued,
		created: now,
	}
	j.events = append(j.events, Event{Type: "state", State: StateQueued})
	r.mu.Lock()
	r.seq++
	j.id = fmt.Sprintf("j%d", r.seq)
	r.jobs[j.id] = j
	r.ids = append(r.ids, j.id)
	r.mu.Unlock()
	return j
}

// get looks a job up by ID.
func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list snapshots every job's status in submission order.
func (r *registry) list() []JobStatus {
	r.mu.Lock()
	ids := append([]string(nil), r.ids...)
	r.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := r.get(id); ok {
			out = append(out, j.status())
		}
	}
	return out
}

// cancelAll fires every job's kill switch (server shutdown).
func (r *registry) cancelAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		j.cancel()
	}
}
