package serve_test

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
	"timeprot/internal/serve"
	"timeprot/internal/serve/loadtest"
)

// smallSweep is the union matrix the end-to-end tests share: T2 at low
// rounds over two seeds — six cells, three finalisation groups per
// seed, enough to shard and overlap.
func smallSweep() experiment.Spec {
	return experiment.Spec{Scenarios: []string{"T2"}, Rounds: 8, Seeds: []uint64{42, 43}}
}

// newTestServer boots a server over a fresh file store behind a real
// HTTP listener and returns its base URL and a client.
func newTestServer(t *testing.T, cfg serve.Config) (string, *loadtest.Client) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(st, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL, loadtest.NewClient(hs.URL)
}

// TestLoadDedupAndByteIdentity is the tentpole invariant end to end:
// four concurrent clients submit overlapping sweeps (full, 0/2, 1/2,
// full duplicate) and the server must execute each distinct cell key
// exactly once, serve a union report byte-identical to a cold
// single-process run, and serve a warm replay round with zero further
// executions.
func TestLoadDedupAndByteIdentity(t *testing.T) {
	base, _ := newTestServer(t, serve.Config{})
	spec := smallSweep()
	cold, err := loadtest.ColdReport(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := loadtest.Options{BaseURL: base, Clients: 4, Shards: 2, Spec: spec}

	res, err := loadtest.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadtest.Check(res, serve.Stats{}, cold); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Executed == 0 {
		t.Fatal("cold round executed nothing")
	}

	warm, err := loadtest.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadtest.Check(warm, res.Stats, cold); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Executed != res.Stats.Executed {
		t.Fatalf("warm round executed %d cells; want 0", warm.Stats.Executed-res.Stats.Executed)
	}
}

// TestSweepWithProofsByteIdentity drives the sweep+proofs composite
// through the service: the scheduler must fill both the cell and proof
// stores and the assembled report must match the cold engine run.
func TestSweepWithProofsByteIdentity(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	spec := experiment.Spec{
		Scenarios: []string{"T4"}, Rounds: 20, Seeds: []uint64{11},
		Proofs: true, ProofFamilies: 1, ProofRandom: 5,
	}
	cold, err := loadtest.ColdReport(spec)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(serve.SubmitRequest{Kind: serve.KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Executed != st.Total || st.CellErrors != 0 {
		t.Fatalf("job finished %+v", st)
	}
	body, err := c.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, cold) {
		t.Fatalf("served sweep+proofs report diverges from the cold run (%d vs %d bytes)", len(body), len(cold))
	}
}

// TestProofJobByteIdentity: a proof-matrix job's served report must be
// the exact bytes RunProofMatrix + WriteProofsJSON emit cold.
func TestProofJobByteIdentity(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	spec := experiment.ProofSpec{
		Models: []string{"base"}, Ablations: []string{"full protection", "no flush"},
		Families: []int{2}, Random: 5, Seeds: []uint64{7},
	}
	m, err := experiment.RunProofMatrix(spec, experiment.ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var cold bytes.Buffer
	if err := experiment.WriteProofsJSON(&cold, m); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(serve.SubmitRequest{Kind: serve.KindProof, Proof: &spec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Executed != st.Total {
		t.Fatalf("job finished %+v", st)
	}
	body, err := c.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, cold.Bytes()) {
		t.Fatal("served proof report diverges from the cold run")
	}
}

// TestConformJobByteIdentity: same contract for the conformance matrix.
func TestConformJobByteIdentity(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	spec := experiment.ConformanceSpec{
		Models: []string{"base"}, Ablations: []string{"full protection", "no pad"},
		Pairs: 2, Rounds: 10, Families: 2, Seeds: []uint64{7},
	}
	m, err := experiment.RunConformance(spec, experiment.ConformanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var cold bytes.Buffer
	if err := experiment.WriteConformanceJSON(&cold, m); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(serve.SubmitRequest{Kind: serve.KindConform, Conform: &spec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Executed != st.Total {
		t.Fatalf("job finished %+v", st)
	}
	body, err := c.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, cold.Bytes()) {
		t.Fatal("served conformance report diverges from the cold run")
	}
}

// TestWarmSecondSubmission: a repeat submission of an already-served
// spec must come entirely from the store — zero executions — and serve
// identical bytes.
func TestWarmSecondSubmission(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	spec := smallSweep()
	req := serve.SubmitRequest{Kind: serve.KindSweep, Sweep: &spec}

	sub1, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(sub1.ID); err != nil {
		t.Fatal(err)
	}
	first, err := c.Result(sub1.ID)
	if err != nil {
		t.Fatal(err)
	}

	sub2, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Wait(sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != serve.StateDone {
		t.Fatalf("second job finished %s (%s)", st2.State, st2.Error)
	}
	if st2.Executed != 0 || st2.StoreHits != st2.Total {
		t.Fatalf("second submission not fully warm: %+v", st2)
	}
	second, err := c.Result(sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("warm submission served different bytes")
	}
}

// TestCancel: cancelling a running job ends it canceled, its result
// endpoint conflicts, and completed cells stay behind in the store for
// the next tenant.
func TestCancel(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Workers: 1})
	seeds := make([]uint64, 30)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	spec := experiment.Spec{Scenarios: []string{"T2"}, Rounds: 60, Seeds: seeds}
	sub, err := c.Submit(serve.SubmitRequest{Kind: serve.KindSweep, Sweep: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateCanceled {
		t.Fatalf("job finished %s, want %s", st.State, serve.StateCanceled)
	}
	if _, err := c.Result(sub.ID); err == nil {
		t.Fatal("result of a canceled job did not error")
	}
}
