// Package serve is the multi-tenant sweep service behind cmd/tpserved:
// a long-running HTTP/JSON front-end over the experiment engine and the
// content-addressed result store. Clients submit the same declarative
// specs the CLIs use (sweep, proof, conformance matrices, optionally
// sharded), the service expands them into cells, schedules the cells
// across one bounded worker pool shared by every job (the work-stealing
// granule is the engine's finalisation group), and serves each job's
// report from the shared store once its cells are in.
//
// The service's concurrency contract is the dedup invariant: identical
// cells — same content-addressed store key — never execute twice, no
// matter how many concurrent clients submit overlapping matrices.
// Cells already in the store are hits; cells another job is executing
// right now are joined through an in-flight singleflight keyed on the
// store key; only the first submitter of a missing key executes it.
// Globally, cell executions never exceed the number of distinct keys
// submitted (internal/serve/loadtest proves the math under load).
//
// The report contract is byte-identity: a served report is assembled by
// the ordinary engine runners against the now-warm shared store, so it
// is byte-for-byte the report a cold single-process CLI run of the same
// spec would emit — the engine's warm==cold invariant, lifted to a
// multi-tenant service.
package serve

import (
	"timeprot/internal/experiment"
)

// Job kinds: which matrix a SubmitRequest expands.
const (
	KindSweep   = "sweep"
	KindProof   = "proof"
	KindConform = "conform"
)

// Job states, in lifecycle order. A job is terminal in StateDone,
// StateFailed, or StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// SubmitRequest is the body of POST /v1/jobs: one spec of the kind's
// shape — exactly the struct the matching CLI builds from its flags —
// plus an optional shard selector.
type SubmitRequest struct {
	// Kind selects the matrix: "sweep", "proof", or "conform".
	Kind string `json:"kind"`
	// Shard optionally restricts the job to one deterministic shard of
	// its matrix, in the CLIs' "i/n" syntax; the report is then partial
	// (with full-matrix cell indices, so shard reports merge).
	Shard string `json:"shard,omitempty"`
	// Sweep is the sweep spec when Kind is "sweep".
	Sweep *experiment.Spec `json:"sweep,omitempty"`
	// Proof is the proof-matrix spec when Kind is "proof".
	Proof *experiment.ProofSpec `json:"proof,omitempty"`
	// Conform is the conformance spec when Kind is "conform".
	Conform *experiment.ConformanceSpec `json:"conform,omitempty"`
}

// SubmitResponse is the body answering POST /v1/jobs.
type SubmitResponse struct {
	// ID names the job in every other endpoint.
	ID string `json:"id"`
	// Kind echoes the submitted kind.
	Kind string `json:"kind"`
	// State is the job's state at submission (always "queued").
	State string `json:"state"`
	// Cells is the job's matrix size (after sharding), including the
	// proof cells of a sweep spec with Proofs set.
	Cells int `json:"cells"`
}

// JobStatus is the body of GET /v1/jobs/{id} (and the elements of
// GET /v1/jobs): the job's state and its dedup accounting.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Shard echoes the submitted shard selector, when any.
	Shard string `json:"shard,omitempty"`
	// Total is the job's matrix size; Done counts scheduled cells that
	// reached a result (executed, served, or joined).
	Total int `json:"total"`
	Done  int `json:"done"`
	// Executed, StoreHits, and Joined break Done down: cells this job
	// executed itself, cells served straight from the shared store, and
	// cells joined in flight with another job (the singleflight dedup).
	Executed  int `json:"executed"`
	StoreHits int `json:"storeHits"`
	Joined    int `json:"joined"`
	// CellErrors counts cells whose execution failed; the assembled
	// report carries the per-cell errors.
	CellErrors int `json:"cellErrors,omitempty"`
	// Error is the job-level failure when State is "failed".
	Error string `json:"error,omitempty"`
	// Created, Started, and Finished are RFC 3339 UTC timestamps;
	// Started/Finished are empty until the job reaches that state.
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// Event is one line of the GET /v1/jobs/{id}/stream NDJSON stream.
type Event struct {
	// Type is "state" (job state change), "cell" (one cell reached a
	// result), or "error" (a cell failed).
	Type string `json:"type"`
	// State carries the new state of a "state" event.
	State string `json:"state,omitempty"`
	// Done and Total carry the job's progress on "cell" events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Cell labels the finished cell of a "cell" event.
	Cell string `json:"cell,omitempty"`
	// Source says how the cell's result materialised: "executed",
	// "store", or "joined".
	Source string `json:"source,omitempty"`
	// Error carries the message of an "error" event (or a failed
	// "state" event).
	Error string `json:"error,omitempty"`
}

// Cell-result sources for Event.Source.
const (
	SourceExecuted = "executed"
	SourceStore    = "store"
	SourceJoined   = "joined"
)

// Stats is the body of GET /v1/stats: the server-wide dedup accounting
// the load-test harness asserts its invariant over.
type Stats struct {
	// Jobs counts accepted submissions.
	Jobs int `json:"jobs"`
	// CellsSubmitted counts scheduled cells over all jobs, duplicates
	// included; DistinctKeys is the size of the union of their store
	// key sets. The dedup invariant: Executed <= DistinctKeys, always.
	CellsSubmitted int `json:"cellsSubmitted"`
	DistinctKeys   int `json:"distinctKeys"`
	// Executed, StoreHits, and Joined are the server-wide counterparts
	// of the per-job JobStatus fields.
	Executed  int `json:"executed"`
	StoreHits int `json:"storeHits"`
	Joined    int `json:"joined"`
	// FailedPuts counts store write-backs that failed (the affected
	// cells may re-execute at assembly time; the invariant then holds
	// per surviving write, not per submission).
	FailedPuts int `json:"failedPuts,omitempty"`
	// Fingerprints are the engine fingerprints the server keys cells
	// under — a client talking to a server with a different fingerprint
	// set is measuring a different model.
	CellFingerprint    string `json:"cellFingerprint"`
	ProofFingerprint   string `json:"proofFingerprint"`
	ConformFingerprint string `json:"conformFingerprint"`
}

// ErrorReply is the body of every non-2xx response.
type ErrorReply struct {
	Error string `json:"error"`
}
