package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// TestFlightGroupDedup hammers the singleflight with many goroutines
// contending on few keys over an emulated store, and asserts the exact
// dedup arithmetic the server advertises: executions == distinct keys,
// no matter the interleaving. Run under -race this is also the
// flightGroup's memory-model test.
func TestFlightGroupDedup(t *testing.T) {
	const (
		goroutines = 32
		keys       = 8
		rounds     = 50
	)
	g := newFlightGroup()
	var mu sync.Mutex
	filled := make(map[store.Key]bool)
	var executions int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := store.Key{byte((w + r) % keys)}
				_, err := g.Do(k,
					func() bool {
						mu.Lock()
						defer mu.Unlock()
						return filled[k]
					},
					func() error {
						atomic.AddInt64(&executions, 1)
						// The write-back happens inside the flight, before
						// the flight leaves the in-flight map — the ordering
						// the dedup proof rests on.
						mu.Lock()
						filled[k] = true
						mu.Unlock()
						return nil
					})
				if err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	if executions != keys {
		t.Fatalf("%d executions for %d distinct keys", executions, keys)
	}
}

// TestFlightGroupErrorPropagation: a failing execution reaches the
// executor and every joined waiter, and does not poison later flights
// of the same key.
func TestFlightGroupErrorPropagation(t *testing.T) {
	g := newFlightGroup()
	k := store.Key{1}
	boom := func() error { return errFailed }
	if src, err := g.Do(k, func() bool { return false }, boom); err == nil || src != SourceExecuted {
		t.Fatalf("got (%s, %v), want an executed failure", src, err)
	}
	// The key is flightable again: the next Do executes afresh.
	if src, err := g.Do(k, func() bool { return false }, func() error { return nil }); err != nil || src != SourceExecuted {
		t.Fatalf("retry after failure: got (%s, %v)", src, err)
	}
}

var errFailed = &flightErr{}

type flightErr struct{}

func (*flightErr) Error() string { return "cell failed" }

// TestServerConcurrentSubmitPollCancelStream drives the job registry
// from many goroutines at once — overlapping submissions, immediate
// cancels, status polling, and event following — and then checks the
// global ledger still satisfies executions <= distinct keys. This is
// the registry's -race test.
func TestServerConcurrentSubmitPollCancelStream(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{Workers: 4})
	defer srv.Close()

	const clients = 12
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Three distinct seeds across twelve clients: heavy key overlap.
			sp := experiment.Spec{Scenarios: []string{"T2"}, Rounds: 6, Seeds: []uint64{uint64(i%3 + 1)}}
			j, err := srv.Submit(SubmitRequest{Kind: KindSweep, Sweep: &sp})
			if err != nil {
				t.Error(err)
				return
			}
			if i%4 == 0 {
				j.cancel()
			}
			for {
				_, isTerminal, changed := j.follow(0)
				_ = j.status()
				if isTerminal {
					break
				}
				<-changed
			}
			final := j.status()
			if final.State == StateDone && (final.Done != final.Total || final.Executed+final.StoreHits+final.Joined != final.Done) {
				t.Errorf("job %s accounting broken: %+v", final.ID, final)
			}
		}(i)
	}
	wg.Wait()

	snap := srv.stats.snapshot()
	if snap.Executed > snap.DistinctKeys {
		t.Fatalf("dedup invariant violated under contention: %d executed > %d distinct keys", snap.Executed, snap.DistinctKeys)
	}
	if snap.Executed == 0 {
		t.Fatal("nothing executed")
	}
}
