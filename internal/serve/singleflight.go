package serve

import (
	"sync"

	"timeprot/internal/experiment/store"
)

// flightGroup is the in-flight cell dedup: at most one execution per
// store key is ever in flight, and every concurrent requester of that
// key waits for it instead of executing its own copy. Combined with the
// store check running *inside* the flight (so it is serialised against
// the previous flight's write-back), this is what bounds global
// executions by the number of distinct keys submitted.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[store.Key]*flightCall
}

// flightCall is one in-flight key: waiters block on done; err is the
// owner's execution error, readable after done closes.
type flightCall struct {
	done chan struct{}
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[store.Key]*flightCall)}
}

// Do resolves one cell under the dedup discipline. cached reports
// whether the store already holds the key; exec executes the cell and
// writes it back. Exactly one of three things happens, reported by the
// returned source: the caller joined another job's in-flight execution
// (SourceJoined), the store served it (SourceStore), or this caller
// executed it (SourceExecuted).
//
// Ordering is the invariant's proof obligation: a key's flight is
// removed from the in-flight map only after exec's write-back returned,
// so any later Do either joins the live flight or sees the store hit —
// a second execution of the same key requires a failed write-back.
func (g *flightGroup) Do(k store.Key, cached func() bool, exec func() error) (source string, err error) {
	g.mu.Lock()
	if c, ok := g.inflight[k]; ok {
		g.mu.Unlock()
		<-c.done
		return SourceJoined, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.inflight[k] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.inflight, k)
		g.mu.Unlock()
		close(c.done)
	}()

	if cached() {
		return SourceStore, nil
	}
	c.err = exec()
	return SourceExecuted, c.err
}
