package serve

import (
	"bytes"
	"testing"
	"time"

	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// waitTerminal blocks until the job reaches a terminal state.
func waitTerminal(j *Job) JobStatus {
	for {
		_, isTerminal, changed := j.follow(0)
		if isTerminal {
			return j.status()
		}
		<-changed
	}
}

// TestServerRestartReusesStore is the crash/restart contract: a server
// killed mid-sweep loses no completed work. Close cancels the job but
// in-flight cells finish and write back, so a new server over the same
// store directory serves every completed cell as a hit, executes
// exactly the remainder, and emits a report byte-identical to a cold
// single-process run.
func TestServerRestartReusesStore(t *testing.T) {
	dir := t.TempDir()
	spec := experiment.Spec{Scenarios: []string{"T2"}, Rounds: 40, Seeds: []uint64{1, 2, 3, 4}}
	req := SubmitRequest{Kind: KindSweep, Sweep: &spec}

	cold, err := experiment.Run(spec, experiment.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var coldJSON bytes.Buffer
	if err := experiment.WriteJSON(&coldJSON, cold); err != nil {
		t.Fatal(err)
	}

	// Run 1: single worker, killed once the first cell has landed.
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(st1, Config{Workers: 1})
	j1, err := srv1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for j1.status().Done == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	first := j1.status()
	executed1 := first.Executed
	if executed1 == 0 {
		t.Fatalf("run 1 executed nothing before the kill: %+v", first)
	}

	// Run 2: fresh server, same store directory, same spec.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(st2, Config{Workers: 1})
	defer srv2.Close()
	j2, err := srv2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	second := waitTerminal(j2)
	if second.State != StateDone {
		t.Fatalf("run 2 finished %s (%s)", second.State, second.Error)
	}
	if second.StoreHits != executed1 {
		t.Fatalf("run 2 reused %d cells; run 1 completed %d", second.StoreHits, executed1)
	}
	if second.Executed+second.StoreHits != second.Total {
		t.Fatalf("run 2 accounting broken: %+v", second)
	}

	j2.mu.Lock()
	body := append([]byte(nil), j2.result...)
	j2.mu.Unlock()
	if !bytes.Equal(body, coldJSON.Bytes()) {
		t.Fatalf("post-restart report diverges from the cold run (%d vs %d bytes)", len(body), coldJSON.Len())
	}
}
