package discover

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
	"timeprot/internal/conform"
	"timeprot/internal/core"
	"timeprot/internal/experiment/store"
	"timeprot/internal/hw/cover"
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/nonintf"
	"timeprot/internal/rng"
)

// batchSize is the fixed candidate count per generation. It is a
// constant — NOT derived from the worker count — because the candidate
// stream and the sequential fold over results must be identical no
// matter how many workers evaluate the batch.
const batchSize = 12

// maxCorpus bounds the mutation corpus; past it, the lowest-energy
// entry (first on ties) is evicted.
const maxCorpus = 256

// confirmSeeds are the independent measurement reseeds a screening leak
// must survive, mirroring the conformance harness's replication guard:
// a real channel is systematic and survives reseeding, estimator noise
// does not.
var confirmSeeds = [...]uint64{0xC0417172, 0x1D05E5E1}

// Options parameterises one fuzzing campaign. The discovery set is a
// pure function of Options (Workers and Store excepted — they never
// affect a bit of the result).
type Options struct {
	// Seed drives every random choice: candidate mutation, ablation
	// selection, measurement seeds, parent selection.
	Seed uint64
	// Budget is the number of candidate screening evaluations to spend.
	Budget int
	// Rounds sizes each concrete measurement (floored at 8 by the
	// conformance driver).
	Rounds int
	// Workers is the evaluation parallelism (0 = 1). Results are
	// bit-identical for every value.
	Workers int
	// Families is the sampled time-function family count for the
	// abstract soundness cross-check (0 = 3).
	Families int
	// Cfg is the abstract-model sizing configuration candidates are
	// generated against (zero value = absmodel.DefaultConfig()).
	Cfg absmodel.Config
	// Corpus is the seed corpus; Fuzz fails without at least one pair.
	Corpus []conform.Pair
	// Store, when non-nil, caches candidate evaluations under the
	// discovery fingerprint: warm runs replay measurements and coverage
	// bit-identically without simulating.
	Store store.CellStore
}

// Discovery is one confirmed, shrunk, deduplicated channel discovery —
// the serialisable witness form that discoveries.json commits and the
// registry replays. Programs use the integer action encoding.
type Discovery struct {
	// ID and Name are the registry identity (F1/fuzz1, F2/fuzz2, …),
	// assigned in discovery order at the end of the campaign.
	ID   string `json:"id"`
	Name string `json:"name"`
	// Ablation names the search-surface row the channel leaks under;
	// full protection closes it.
	Ablation string `json:"ablation"`
	// HiA, HiB and Noise are the minimal witness programs.
	HiA   []int `json:"hi_a"`
	HiB   []int `json:"hi_b"`
	Noise []int `json:"noise,omitempty"`
	// Rounds and Seed reproduce the discovery measurement.
	Rounds int    `json:"rounds"`
	Seed   uint64 `json:"seed"`
	// Channel names the leaking observation stream; the float fields
	// are the minimal witness's re-measured leaking estimate.
	Channel      string  `json:"channel"`
	CapacityBits float64 `json:"capacity_bits"`
	FloorBits    float64 `json:"floor_bits"`
	CILow        float64 `json:"ci_low"`
	CIHigh       float64 `json:"ci_high"`
	// ShrinkEvals counts the predicate evaluations minimisation spent.
	ShrinkEvals int `json:"shrink_evals"`
	// Digest is the witness content digest (WitnessDigest).
	Digest string `json:"digest"`
}

// Violation is a candidate that leaks under FULL protection while the
// abstract model accepts it — a conformance soundness violation
// surfaced by the fuzzer rather than a discovery. Any violation means
// the abstract model fails to over-approximate a concrete channel.
type Violation struct {
	HiA     []int  `json:"hi_a"`
	HiB     []int  `json:"hi_b"`
	Noise   []int  `json:"noise,omitempty"`
	Seed    uint64 `json:"seed"`
	Channel string `json:"channel"`
}

// Result is a completed fuzzing campaign.
type Result struct {
	// Discoveries in discovery order (deterministic).
	Discoveries []Discovery
	// Violations are soundness violations the search surfaced.
	Violations []Violation
	// Evals counts screening evaluations (the budget denominator);
	// Failed how many candidate runs panicked (overran the simulator's
	// cycle bound). CacheHits counts measurements served from the
	// store and ColdMisses distinct measurements actually simulated —
	// the only two fields that depend on store temperature (a fully
	// warm campaign has ColdMisses == 0).
	Evals, CacheHits, ColdMisses, Failed int
	// Generations is the number of evaluation batches run.
	Generations int
	// CorpusSize is the final mutation-corpus size.
	CorpusSize int
	// CovBits is the global coverage bitmap's final popcount.
	CovBits int
	// SimOps sums simulated thread operations over every measurement.
	SimOps uint64
}

// candidate is one scheduled evaluation: a pair under an ablation row
// with a measurement seed.
type candidate struct {
	pair  conform.Pair
	abl   Ablation
	mseed uint64
}

// evalResult is one candidate's screening outcome.
type evalResult struct {
	res  conform.ConcreteResult
	cov  *cover.Map
	warm bool
	ok   bool
}

// fuzzer is the campaign state. All mutation of it happens on the
// driving goroutine; workers only compute pure evaluations.
type fuzzer struct {
	opt        Options
	cfg        absmodel.Config
	params     conform.Params
	familySeed uint64
	ablations  []Ablation
	fullProt   core.Config

	ctxs   []*attacks.CellContext
	global *cover.Map
	corpus []corpusEntry
	seen   map[string]bool

	// memo caches every evaluation for the life of the campaign, so the
	// shrink fixpoint's repeated predicate checks cost one measurement
	// each. Memoisation is semantics-free: it returns exactly what
	// recomputation would.
	memoMu sync.Mutex
	memo   map[string]evalResult

	res Result
	// simOps, cacheHits and coldMisses are touched from workers; folded
	// under atomics so -race stays clean (their totals are
	// order-independent).
	simOps     atomic.Uint64
	cacheHits  atomic.Int64
	coldMisses atomic.Int64
}

// corpusEntry is one mutation parent with its selection energy.
type corpusEntry struct {
	pair   conform.Pair
	energy uint64
}

// newFuzzer validates options and builds the campaign state.
func newFuzzer(opt Options) (*fuzzer, error) {
	if len(opt.Corpus) == 0 {
		return nil, fmt.Errorf("discover: empty seed corpus")
	}
	if opt.Budget <= 0 {
		return nil, fmt.Errorf("discover: budget must be positive")
	}
	f := &fuzzer{
		opt:        opt,
		cfg:        opt.Cfg,
		familySeed: rng.HashCombine(opt.Seed, 0xFA111E5),
		ablations:  Ablations(),
		fullProt:   core.FullProtection(),
		global:     &cover.Map{},
		seen:       make(map[string]bool),
		memo:       make(map[string]evalResult),
	}
	if f.cfg.Domains == 0 {
		f.cfg = absmodel.DefaultConfig()
	}
	if f.opt.Families <= 0 {
		f.opt.Families = 3
	}
	if f.opt.Workers <= 0 {
		f.opt.Workers = 1
	}
	f.params = conform.DefaultParams(opt.Rounds)
	f.ctxs = make([]*attacks.CellContext, f.opt.Workers)
	for i := range f.ctxs {
		f.ctxs[i] = attacks.NewCellContext()
	}
	for _, p := range opt.Corpus {
		f.corpus = append(f.corpus, corpusEntry{pair: p.Clone(), energy: 1})
	}
	return f, nil
}

// Fuzz runs one campaign. The returned result is a pure function of
// opt's semantic fields: worker count, store presence, and store
// temperature cannot change a bit of it — except the CacheHits and
// ColdMisses diagnostics, which count store traffic.
func Fuzz(opt Options) (*Result, error) {
	f, err := newFuzzer(opt)
	if err != nil {
		return nil, err
	}

	f.run()

	f.res.CacheHits = int(f.cacheHits.Load())
	f.res.ColdMisses = int(f.coldMisses.Load())
	f.res.SimOps = f.simOps.Load()
	f.res.CovBits = f.global.Count()
	f.res.CorpusSize = len(f.corpus)
	for i := range f.res.Discoveries {
		f.res.Discoveries[i].ID = fmt.Sprintf("F%d", i+1)
		f.res.Discoveries[i].Name = fmt.Sprintf("fuzz%d", i+1)
	}
	return &f.res, nil
}

// run drives the generation loop: generation 0 screens every corpus
// seed across the whole ablation surface (so planted seeds are found
// within one bounded pass), later generations mutate energy-selected
// parents. Batches evaluate in parallel; everything that feeds back
// into search state folds sequentially in batch index order.
func (f *fuzzer) run() {
	for f.res.Evals < f.opt.Budget {
		gen := f.res.Generations
		var cands []candidate
		if gen == 0 {
			cands = f.bootstrapBatch()
		} else {
			cands = f.mutationBatch(gen)
		}
		if len(cands) > f.opt.Budget-f.res.Evals {
			cands = cands[:f.opt.Budget-f.res.Evals]
		}
		results := f.evalBatch(cands)
		for i, r := range results {
			f.res.Evals++
			if !r.ok {
				f.res.Failed++
				continue
			}
			fresh := r.cov.MergeNew(f.global)
			if fresh > 0 {
				f.addToCorpus(cands[i].pair, 1+uint64(fresh))
			}
			if r.res.Leak {
				f.promote(cands[i])
			}
		}
		f.res.Generations++
	}
}

// bootstrapBatch schedules every seed-corpus pair under every ablation
// row, with measurement seeds derived from the campaign seed.
func (f *fuzzer) bootstrapBatch() []candidate {
	var out []candidate
	for j, e := range f.corpus {
		for k, abl := range f.ablations {
			mseed := rng.HashCombine(f.opt.Seed, uint64(j)<<8|uint64(k))
			out = append(out, candidate{pair: e.pair.Clone(), abl: abl, mseed: mseed})
		}
	}
	return out
}

// mutationBatch derives one generation's candidates: each slot selects
// an energy-weighted parent and mutates it, all choices driven by a
// per-slot seed so the batch is a pure function of (campaign seed,
// generation, corpus state).
func (f *fuzzer) mutationBatch(gen int) []candidate {
	gseed := rng.HashCombine(f.opt.Seed, uint64(gen))
	out := make([]candidate, batchSize)
	for i := range out {
		r := rng.New(rng.HashCombine(gseed, uint64(i)+1))
		parent := f.pickParent(r)
		out[i] = candidate{
			pair:  conform.Mutate(f.cfg, parent, r.Uint64()),
			abl:   f.ablations[r.Intn(len(f.ablations))],
			mseed: r.Uint64(),
		}
	}
	return out
}

// pickParent selects a corpus entry with probability proportional to
// its energy.
func (f *fuzzer) pickParent(r *rng.RNG) conform.Pair {
	var total uint64
	for _, e := range f.corpus {
		total += e.energy
	}
	x := r.Uint64n(total)
	for _, e := range f.corpus {
		if x < e.energy {
			return e.pair
		}
		x -= e.energy
	}
	return f.corpus[len(f.corpus)-1].pair
}

// addToCorpus appends a coverage-novel pair, evicting the lowest-energy
// entry once the corpus is full.
func (f *fuzzer) addToCorpus(p conform.Pair, energy uint64) {
	f.corpus = append(f.corpus, corpusEntry{pair: p.Clone(), energy: energy})
	if len(f.corpus) <= maxCorpus {
		return
	}
	evict := 0
	for i, e := range f.corpus {
		if e.energy < f.corpus[evict].energy {
			evict = i
		}
	}
	f.corpus = append(f.corpus[:evict], f.corpus[evict+1:]...)
}

// evalBatch evaluates candidates in parallel. Each evaluation is a pure
// function of its candidate, so scheduling order cannot influence the
// result slice.
func (f *fuzzer) evalBatch(cands []candidate) []evalResult {
	results := make([]evalResult, len(cands))
	workers := f.opt.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, c := range cands {
			results[i] = f.eval(f.ctxs[0], c.abl.ProtConfig(), c.abl.Name, c.pair, c.mseed)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(cc *attacks.CellContext) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				c := cands[i]
				results[i] = f.eval(cc, c.abl.ProtConfig(), c.abl.Name, c.pair, c.mseed)
			}
		}(f.ctxs[w])
	}
	wg.Wait()
	return results
}

// eval measures one pair under one protection row, serving cached
// evaluations from the store when present. The store entry carries the
// coverage bitmap, so warm replays feed the fuzzer's energy accounting
// the exact bits the cold run would.
func (f *fuzzer) eval(cc *attacks.CellContext, prot core.Config, ablName string, pair conform.Pair, mseed uint64) evalResult {
	mk := fmt.Sprintf("%s|%d|%v|%v|%v", ablName, mseed,
		EncodeProgram(pair.HiA), EncodeProgram(pair.HiB), EncodeProgram(pair.Noise))
	f.memoMu.Lock()
	if r, ok := f.memo[mk]; ok {
		f.memoMu.Unlock()
		f.simOps.Add(r.res.SimOps)
		return r
	}
	f.memoMu.Unlock()

	var key store.Key
	if f.opt.Store != nil {
		key = store.DiscoverSpec{
			Fingerprint: Fingerprint(),
			Ablation:    ablName,
			Prot:        prot,
			Cfg:         f.cfg,
			HiA:         EncodeProgram(pair.HiA),
			HiB:         EncodeProgram(pair.HiB),
			Noise:       EncodeProgram(pair.Noise),
			Rounds:      f.params.Rounds,
			Seed:        mseed,
		}.Key()
		if d, ok := f.opt.Store.GetDiscover(key); ok {
			if r, ok := decodeEval(d); ok {
				f.cacheHits.Add(1)
				f.simOps.Add(r.res.SimOps)
				f.memoize(mk, r)
				return r
			}
		}
	}
	r := f.evalCold(cc, prot, pair, mseed)
	f.coldMisses.Add(1)
	if r.ok {
		f.simOps.Add(r.res.SimOps)
		if f.opt.Store != nil {
			// A failed write-back only costs a future re-run.
			_ = f.opt.Store.PutDiscover(key, encodeEval(r))
		}
	}
	f.memoize(mk, r)
	return r
}

// memoize records one evaluation in the campaign memo.
func (f *fuzzer) memoize(mk string, r evalResult) {
	f.memoMu.Lock()
	f.memo[mk] = r
	f.memoMu.Unlock()
}

// evalCold runs the measurement, converting a simulator panic (a mutant
// overrunning the run's cycle bound) into a failed evaluation instead
// of aborting the campaign. The panic is deterministic, so so is the
// failure.
func (f *fuzzer) evalCold(cc *attacks.CellContext, prot core.Config, pair conform.Pair, mseed uint64) (r evalResult) {
	defer func() {
		if recover() != nil {
			r = evalResult{}
		}
	}()
	cov := &cover.Map{}
	res := conform.MeasureConcreteIn(cc, prot, pair, f.params, mseed, cov)
	return evalResult{res: res, cov: cov, ok: true}
}

// promote runs the discovery pipeline on a screening leak: replicate
// under independent reseeds, check full protection closes it (a leak
// that survives full protection is a soundness-violation candidate,
// not a discovery), shrink to a minimal witness, deduplicate by digest.
// It runs sequentially on the driving goroutine in batch index order.
func (f *fuzzer) promote(c candidate) {
	cc := f.ctxs[0]
	prot := c.abl.ProtConfig()
	for _, d := range confirmSeeds {
		r := f.eval(cc, prot, c.abl.Name, c.pair, c.mseed^d)
		if !r.ok || !r.res.Leak {
			return
		}
	}
	full := f.eval(cc, f.fullProt, "full protection", c.pair, c.mseed)
	if !full.ok {
		return
	}
	if full.res.Leak {
		// Full protection does not close it. If the abstract model
		// accepts the pair, the fuzzer has surfaced a soundness
		// violation — count it; the conformance harness owns witness
		// minimisation for violations.
		if conform.CheckAbstract(f.cfg, c.pair, f.opt.Families, f.familySeed).Accepts {
			f.res.Violations = append(f.res.Violations, Violation{
				HiA:     EncodeProgram(c.pair.HiA),
				HiB:     EncodeProgram(c.pair.HiB),
				Noise:   EncodeProgram(c.pair.Noise),
				Seed:    c.mseed,
				Channel: bestChannel(full.res),
			})
		}
		return
	}

	pair, evals := f.shrink(c)
	dig := WitnessDigest(c.abl.Name, pair)
	if f.seen[dig] {
		return
	}
	f.seen[dig] = true
	final := f.eval(cc, prot, c.abl.Name, pair, c.mseed)
	if !final.ok || !final.res.Leak {
		return // unreachable for a qualifying witness; belt and braces
	}
	d := Discovery{
		Ablation:    c.abl.Name,
		HiA:         EncodeProgram(pair.HiA),
		HiB:         EncodeProgram(pair.HiB),
		Noise:       EncodeProgram(pair.Noise),
		Rounds:      f.params.Rounds,
		Seed:        c.mseed,
		ShrinkEvals: evals,
		Digest:      dig,
	}
	for _, ch := range final.res.Channels {
		if conform.LeakCertain(ch.Est) {
			d.Channel = ch.Name
			d.CapacityBits = ch.Est.CapacityBits
			d.FloorBits = ch.Est.FloorBits
			d.CILow = ch.Est.CILow
			d.CIHigh = ch.Est.CIHigh
			break
		}
	}
	f.res.Discoveries = append(f.res.Discoveries, d)
}

// qualifies is the witness predicate minimisation preserves: the pair
// leaks under the ablation with replication, and full protection closes
// it. Every measurement routes through the store cache.
func (f *fuzzer) qualifies(c candidate, pair conform.Pair) bool {
	cc := f.ctxs[0]
	prot := c.abl.ProtConfig()
	r := f.eval(cc, prot, c.abl.Name, pair, c.mseed)
	if !r.ok || !r.res.Leak {
		return false
	}
	for _, d := range confirmSeeds {
		rr := f.eval(cc, prot, c.abl.Name, pair, c.mseed^d)
		if !rr.ok || !rr.res.Leak {
			return false
		}
	}
	full := f.eval(cc, f.fullProt, "full protection", pair, c.mseed)
	return full.ok && !full.res.Leak
}

// shrink minimises a confirmed discovery: the prover's greedy shrink
// over HiA/HiB against the qualifying predicate, then greedy per-index
// deletion passes over all three programs, iterated to a fixpoint.
// MinimizeWith's step set only drops trailing actions and unifies
// differing positions, so interior deletions can survive it; the
// deletion passes close that gap. At the fixpoint every remaining
// action is load-bearing: no single-action deletion (down to the
// witness well-formedness floor of one action per Hi program) keeps the
// pair qualifying.
func (f *fuzzer) shrink(c candidate) (conform.Pair, int) {
	noise := append([]absmodel.Action(nil), c.pair.Noise...)
	still := func(a, b []absmodel.Action) bool {
		p := conform.Pair{HiA: a, HiB: b}
		if len(noise) > 0 {
			p.Noise = noise
		}
		return f.qualifies(c, p)
	}
	hiA, hiB, evals := nonintf.MinimizeWith(c.pair.HiA, c.pair.HiB, still)

	qual := func(a, b, n []absmodel.Action) bool {
		evals++
		p := conform.Pair{HiA: a, HiB: b}
		if len(n) > 0 {
			p.Noise = n
		}
		return f.qualifies(c, p)
	}
	drop := func(xs []absmodel.Action, i int) []absmodel.Action {
		out := append([]absmodel.Action(nil), xs[:i]...)
		return append(out, xs[i+1:]...)
	}
	for changed := true; changed; {
		changed = false
		for i := 0; len(hiA) > 1 && i < len(hiA); {
			if t := drop(hiA, i); qual(t, hiB, noise) {
				hiA, changed = t, true
			} else {
				i++
			}
		}
		for i := 0; len(hiB) > 1 && i < len(hiB); {
			if t := drop(hiB, i); qual(hiA, t, noise) {
				hiB, changed = t, true
			} else {
				i++
			}
		}
		if len(noise) > 0 && qual(hiA, hiB, nil) {
			noise, changed = nil, true
		}
		for i := 0; i < len(noise); {
			if t := drop(noise, i); qual(hiA, hiB, t) {
				noise, changed = t, true
			} else {
				i++
			}
		}
	}
	p := conform.Pair{HiA: hiA, HiB: hiB}
	if len(noise) > 0 {
		p.Noise = noise
	}
	return p, evals
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// bestChannel names the highest-capacity observation stream.
func bestChannel(res conform.ConcreteResult) string {
	if len(res.Channels) == 0 {
		return ""
	}
	return res.Channels[res.Best].Name
}

// encodeEval converts a successful evaluation to its stored form, with
// floats as IEEE-754 bit patterns so the round trip is exact.
func encodeEval(r evalResult) store.DiscoverV1 {
	d := store.DiscoverV1{
		Best:    r.res.Best,
		Leak:    r.res.Leak,
		SimOps:  r.res.SimOps,
		CovBits: r.cov.Count(),
	}
	text, _ := r.cov.MarshalText()
	d.Coverage = string(text)
	for _, ch := range r.res.Channels {
		d.Channels = append(d.Channels, store.ConformChannelV1{
			Name:         ch.Name,
			CapacityBits: floatBits(ch.Est.CapacityBits),
			MIUniform:    floatBits(ch.Est.MIUniform),
			FloorBits:    floatBits(ch.Est.FloorBits),
			CILow:        floatBits(ch.Est.CILow),
			CIHigh:       floatBits(ch.Est.CIHigh),
			N:            ch.Est.N,
			Bins:         ch.Est.Bins,
		})
	}
	return d
}

// decodeEval reconstructs an evaluation from its stored form; a
// malformed entry (impossible from this code, possible from a corrupted
// or foreign store) reports failure and falls back to cold execution.
func decodeEval(d store.DiscoverV1) (evalResult, bool) {
	cov := &cover.Map{}
	if err := cov.UnmarshalText([]byte(d.Coverage)); err != nil {
		return evalResult{}, false
	}
	if d.Best < 0 || d.Best >= len(d.Channels) {
		return evalResult{}, false
	}
	res := conform.ConcreteResult{Best: d.Best, Leak: d.Leak, SimOps: d.SimOps}
	for _, ch := range d.Channels {
		res.Channels = append(res.Channels, conform.NamedEstimate{
			Name: ch.Name,
			Est: channel.Estimate{
				CapacityBits: bitsFloat(ch.CapacityBits),
				MIUniform:    bitsFloat(ch.MIUniform),
				FloorBits:    bitsFloat(ch.FloorBits),
				CILow:        bitsFloat(ch.CILow),
				CIHigh:       bitsFloat(ch.CIHigh),
				N:            ch.N,
				Bins:         ch.Bins,
			},
		})
	}
	return evalResult{res: res, cov: cov, warm: true, ok: true}, true
}
