package discover

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync"

	"timeprot/internal/attacks"
	"timeprot/internal/conform"
	"timeprot/internal/core"
)

// Committed discoveries: the fuzzer's pinned output, embedded at build
// time and auto-registered into the attack-scenario registry as dynamic
// scenarios (F1, F2, …). Each registered scenario replays its minimal
// witness through the conformance driver under two variants — the
// discovering ablation (the leak) and full protection (the closure) —
// so discovered channels run under the exact same engine, store, and
// CLI pipeline as the static T2–T17 table. Regenerate discoveries.json
// with:
//
//	go run ./cmd/tpfuzz -budget 24 -rounds 24 -seed 42 -out internal/discover/discoveries.json
//
// The regression tests replay the same campaign and require
// byte-identical output, so the committed file doubles as the fuzzer's
// determinism golden.

//go:embed discoveries.json
var committedJSON []byte

// CommittedDiscoveries parses the embedded discoveries.json.
func CommittedDiscoveries() ([]Discovery, error) {
	var out []Discovery
	if err := json.Unmarshal(committedJSON, &out); err != nil {
		return nil, fmt.Errorf("discover: parsing committed discoveries: %v", err)
	}
	return out, nil
}

var (
	regOnce sync.Once
	regErr  error
)

// RegisterCommitted registers every committed discovery as a dynamic
// attack scenario, once per process. The root timeprot package calls it
// from init, so every embedder — CLIs, tests, library users — sees the
// discovered scenarios in the registry without any wiring.
func RegisterCommitted() error {
	regOnce.Do(func() {
		ds, err := CommittedDiscoveries()
		if err != nil {
			regErr = err
			return
		}
		for _, d := range ds {
			s, err := ScenarioFor(d)
			if err == nil {
				err = attacks.RegisterScenario(s)
			}
			if err != nil {
				regErr = fmt.Errorf("discover: registering %s: %v", d.ID, err)
				return
			}
		}
	})
	return regErr
}

// ScenarioFor builds the replayable dynamic scenario of one discovery:
// two variants measuring the witness pair through the conformance
// driver, under the discovering ablation and under full protection.
// Rows are pure functions of (rounds, seed), so engine runs replay
// byte-identically cold and warm from the store.
func ScenarioFor(d Discovery) (attacks.Scenario, error) {
	abl, ok := AblationByName(d.Ablation)
	if !ok {
		return attacks.Scenario{}, fmt.Errorf("discover: unknown ablation %q", d.Ablation)
	}
	if len(d.HiA) == 0 || len(d.HiB) == 0 {
		return attacks.Scenario{}, fmt.Errorf("discover: empty witness program")
	}
	pair := PairFromInts(d.HiA, d.HiB, d.Noise)
	short := d.Digest
	if len(short) > 12 {
		short = short[:12]
	}
	return attacks.Scenario{
		ID:      d.ID,
		Name:    d.Name,
		Title:   fmt.Sprintf("discovered channel via %s (fuzzer witness %s)", d.Channel, short),
		Version: versionFromDigest(d.Digest),
		Rounds:  func(r int) int { return r }, // the driver floors at 8
		Dynamic: true,
		Variants: []attacks.Variant{
			witnessVariant("leak ("+d.Ablation+")", abl.ProtConfig(), pair),
			witnessVariant("closed (full protection)", core.FullProtection(), pair),
		},
	}, nil
}

// witnessVariant builds one replay variant: the witness pair measured
// under prot, the best observation stream's estimate as the row.
func witnessVariant(label string, prot core.Config, pair conform.Pair) attacks.Variant {
	return attacks.NewVariant(label, prot,
		func(cc *attacks.CellContext, rounds int, seed uint64) attacks.Row {
			res := conform.MeasureConcreteIn(cc, prot, pair, conform.DefaultParams(rounds), seed, nil)
			return rowFromResult(label, res)
		})
}

// rowFromResult flattens a conformance measurement into a registry row:
// the best stream's estimate, plus the leak verdict and stream count as
// extra columns.
func rowFromResult(label string, res conform.ConcreteResult) attacks.Row {
	row := attacks.Row{Label: label, ErrRate: math.NaN(), SimOps: res.SimOps}
	if len(res.Channels) > 0 {
		row.Est = res.Channels[res.Best].Est
	}
	leak := 0.0
	if res.Leak {
		leak = 1
	}
	row.Extra = append(row.Extra,
		attacks.KV{K: "leak_certain", V: leak},
		attacks.KV{K: "streams", V: float64(len(res.Channels))})
	return row
}

// versionFromDigest derives the scenario's model-version tag from the
// witness digest: the first eight hex digits as a positive int. Any
// change to the witness changes the version, so stale cached cells of a
// re-fuzzed discovery read as misses.
func versionFromDigest(digest string) int {
	if len(digest) < 8 {
		return 1
	}
	v, err := strconv.ParseUint(digest[:8], 16, 32)
	if err != nil {
		return 1
	}
	return int(v&0x7fffffff) | 1
}
