package discover

import (
	"fmt"
	"io"
	"strconv"
)

// Report rendering. Both writers are pure functions of their inputs —
// no timestamps, no environment — so outputs regenerate byte-stably
// and CI can diff two runs of the same campaign for determinism.

// fmtBits renders a capacity figure with the shortest exact decimal
// representation, the same stability contract the sweep reports use.
func fmtBits(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WriteReport renders a campaign result as aligned text: the campaign
// accounting header, one row per discovery, and one row per soundness
// violation.
func WriteReport(w io.Writer, r *Result) error {
	if _, err := fmt.Fprintf(w, "discovery fuzzer (%s)\n", Fingerprint()); err != nil {
		return err
	}
	// CacheHits/ColdMisses are store-temperature diagnostics and stay
	// out of this stream: the report is byte-stable across cold, warm,
	// and storeless runs of the same campaign.
	if _, err := fmt.Fprintf(w,
		"evals=%d failed=%d generations=%d corpus=%d coverage_bits=%d\n",
		r.Evals, r.Failed, r.Generations, r.CorpusSize, r.CovBits); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "discoveries=%d violations=%d\n\n",
		len(r.Discoveries), len(r.Violations)); err != nil {
		return err
	}
	if len(r.Discoveries) == 0 {
		if _, err := fmt.Fprintln(w, "no discoveries"); err != nil {
			return err
		}
	}
	for _, d := range r.Discoveries {
		if _, err := fmt.Fprintf(w, "%-4s %-18s witness %d+%d+%d  %-11s capacity=%s floor=%s ci=[%s,%s] shrink_evals=%d digest=%s\n",
			d.ID, d.Ablation, len(d.HiA), len(d.HiB), len(d.Noise),
			d.Channel, fmtBits(d.CapacityBits), fmtBits(d.FloorBits),
			fmtBits(d.CILow), fmtBits(d.CIHigh), d.ShrinkEvals, d.Digest[:12]); err != nil {
			return err
		}
	}
	for _, v := range r.Violations {
		if _, err := fmt.Fprintf(w, "SOUNDNESS VIOLATION: pair %v / %v noise %v via %s (seed %d)\n",
			v.HiA, v.HiB, v.Noise, v.Channel, v.Seed); err != nil {
			return err
		}
	}
	return nil
}

// WriteDiscoveriesMD renders the committed discoveries as the
// DISCOVERIES.md document: the dynamic-registry documentation the
// registry-completeness test checks F-scenarios against (the static
// table's scenarios are documented in EXPERIMENTS.md and DESIGN.md).
func WriteDiscoveriesMD(w io.Writer, ds []Discovery) error {
	if _, err := fmt.Fprintf(w, `# Discovered channels

Auto-registered attack scenarios found by the coverage-guided discovery
fuzzer (`+"`cmd/tpfuzz`"+`, see DESIGN.md layer 6). Each row is a minimal
witness: a Hi program pair (plus an optional symbol-independent noise
program) that leaks with CI-backed certainty under the named ablation
and is closed by full protection. Witness programs use the integer
action encoding (user inputs >= 0, syscall -1, start-IO -2). Every
retained action is load-bearing: no single shrink step preserves the
leak.

Discoveries register as dynamic scenarios (replayed through the
conformance driver) and run under the same engine, store, and CLI
pipeline as T2-T17; they are excluded from the "all" sweep selection so
EXPERIMENTS.md stays a pure function of the static registry.

Regenerate with:

	go run ./cmd/tpfuzz -md DISCOVERIES.md

Fingerprint: %s

| ID | name | ablation | channel | capacity (bits) | CI low | CI high | witness |
|---|---|---|---|---|---|---|---|
`, Fingerprint()); err != nil {
		return err
	}
	for _, d := range ds {
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s | `%v` vs `%v` noise `%v` |\n",
			d.ID, d.Name, d.Ablation, d.Channel,
			fmtBits(d.CapacityBits), fmtBits(d.CILow), fmtBits(d.CIHigh),
			d.HiA, d.HiB, d.Noise); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "\n## Witness detail"); err != nil {
		return err
	}
	for _, d := range ds {
		if _, err := fmt.Fprintf(w, `
### %s — leak under %q, closed by full protection

- variants: %s
- measurement: %d rounds, seed %d
- capacity %s bits over floor %s (CI [%s, %s]) on stream %q
- shrink evaluations: %d
- digest: %s
`,
			d.ID, d.Ablation,
			"`leak ("+d.Ablation+")` / `closed (full protection)`",
			d.Rounds, d.Seed,
			fmtBits(d.CapacityBits), fmtBits(d.FloorBits), fmtBits(d.CILow), fmtBits(d.CIHigh), d.Channel,
			d.ShrinkEvals, d.Digest); err != nil {
			return err
		}
	}
	return nil
}
