package discover

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"timeprot/internal/conform"
	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// campaignOpts are the pinned regression-campaign options, identical to
// the committed discoveries.json campaign.
func campaignOpts() Options {
	return Options{Seed: 42, Budget: 24, Rounds: 24, Corpus: DefaultCorpus()}
}

func mustFuzz(t *testing.T, opt Options) *Result {
	t.Helper()
	res, err := Fuzz(opt)
	if err != nil {
		t.Fatalf("Fuzz: %v", err)
	}
	return res
}

// baselineResult runs the pinned campaign once per test binary; every
// determinism test compares against the same baseline.
var (
	baseOnce sync.Once
	baseRes  *Result
	baseErr  error
)

func baselineResult(t *testing.T) *Result {
	t.Helper()
	if testing.Short() {
		t.Skip("pinned campaign is expensive; skipped in -short (the race CI job) — TestShortCampaignWorkerStable covers the concurrent paths")
	}
	baseOnce.Do(func() { baseRes, baseErr = Fuzz(campaignOpts()) })
	if baseErr != nil {
		t.Fatalf("baseline Fuzz: %v", baseErr)
	}
	return baseRes
}

// TestShortCampaignWorkerStable is the -short (and race-detector) slice
// of the determinism contract: a quarter-size campaign still exercises
// the parallel batch evaluation, the memo, the corpus fold, and the
// promotion pipeline, and must be bit-identical across worker counts.
func TestShortCampaignWorkerStable(t *testing.T) {
	opt := Options{Seed: 42, Budget: 6, Rounds: 12, Corpus: DefaultCorpus()}
	opt.Workers = 1
	want := resultJSON(t, mustFuzz(t, opt))
	opt.Workers = 4
	if got := resultJSON(t, mustFuzz(t, opt)); !bytes.Equal(want, got) {
		t.Errorf("workers=4: result differs from workers=1\nw1: %s\nw4: %s", want, got)
	}
}

// resultJSON serialises a result for bit-identity comparison, zeroing
// the two fields documented to depend on store temperature.
func resultJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	norm := *r
	norm.CacheHits = 0
	norm.ColdMisses = 0
	data, err := json.Marshal(&norm)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return data
}

// TestRediscoversPlantedPair pins the end-to-end regression: the pinned
// campaign deterministically rediscovers the planted known-leaky pair
// from the seed corpus, with zero soundness violations, and the result
// is bit-identical across repeated runs and worker counts.
func TestRediscoversPlantedPair(t *testing.T) {
	res := baselineResult(t)
	if len(res.Discoveries) == 0 {
		t.Fatalf("pinned campaign found no discoveries (evals=%d failed=%d)", res.Evals, res.Failed)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("pinned campaign surfaced soundness violations: %+v", res.Violations)
	}
	found := false
	for _, d := range res.Discoveries {
		if d.Ablation == "no flush" {
			found = true
			if d.Channel == "" {
				t.Errorf("%s: empty channel name", d.ID)
			}
			if !(d.CILow > d.FloorBits) {
				t.Errorf("%s: CI lower bound %v does not clear floor %v", d.ID, d.CILow, d.FloorBits)
			}
		}
	}
	if !found {
		t.Fatalf("planted no-flush channel not rediscovered; discoveries: %+v", res.Discoveries)
	}
	if res.CovBits == 0 {
		t.Error("campaign recorded no coverage")
	}

	want := resultJSON(t, res)
	for _, workers := range []int{1, 4} {
		opt := campaignOpts()
		opt.Workers = workers
		got := resultJSON(t, mustFuzz(t, opt))
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: result differs from baseline\nbase: %s\ngot:  %s", workers, want, got)
		}
	}
}

// TestFuzzColdWarmIdentical pins the store-cache contract: a warm rerun
// of the same campaign serves evaluations from the store and still
// produces a bit-identical result, on both store backends.
func TestFuzzColdWarmIdentical(t *testing.T) {
	baseline := resultJSON(t, baselineResult(t))
	for _, backend := range []string{"file", "packed"} {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			cs, err := store.OpenBackend(backend, dir, store.PackedOptions{})
			if err != nil {
				t.Fatalf("OpenBackend(%s): %v", backend, err)
			}
			if c, ok := cs.(interface{ Close() error }); ok {
				defer c.Close()
			}
			opt := campaignOpts()
			opt.Store = cs
			cold := mustFuzz(t, opt)
			if got := resultJSON(t, cold); !bytes.Equal(baseline, got) {
				t.Fatalf("cold store run differs from storeless baseline\nbase: %s\ngot:  %s", baseline, got)
			}
			warm := mustFuzz(t, opt)
			if warm.CacheHits == 0 {
				t.Error("warm run served no evaluations from the store")
			}
			if got := resultJSON(t, warm); !bytes.Equal(baseline, got) {
				t.Fatalf("warm store run differs from storeless baseline\nbase: %s\ngot:  %s", baseline, got)
			}
		})
	}
}

// TestWitnessMinimality is the minimality property: for every campaign
// discovery, every single-action deletion from the witness breaks the
// qualifying predicate — each retained action is load-bearing.
func TestWitnessMinimality(t *testing.T) {
	res := baselineResult(t)
	if len(res.Discoveries) == 0 {
		t.Fatal("no discoveries to check")
	}
	f, err := newFuzzer(campaignOpts())
	if err != nil {
		t.Fatalf("newFuzzer: %v", err)
	}
	for _, d := range res.Discoveries {
		abl, ok := AblationByName(d.Ablation)
		if !ok {
			t.Fatalf("%s: unknown ablation %q", d.ID, d.Ablation)
		}
		pair := PairFromInts(d.HiA, d.HiB, d.Noise)
		c := candidate{pair: pair, abl: abl, mseed: d.Seed}
		if !f.qualifies(c, pair) {
			t.Errorf("%s: committed witness does not qualify", d.ID)
			continue
		}
		drop := func(xs []int, i int) []int {
			out := append([]int(nil), xs[:i]...)
			return append(out, xs[i+1:]...)
		}
		// Hi programs shrink down to the well-formedness floor of one
		// action; only deletions above it must break the predicate.
		if len(d.HiA) > 1 {
			for i := range d.HiA {
				if f.qualifies(c, PairFromInts(drop(d.HiA, i), d.HiB, d.Noise)) {
					t.Errorf("%s: hiA[%d] is not load-bearing", d.ID, i)
				}
			}
		}
		if len(d.HiB) > 1 {
			for i := range d.HiB {
				if f.qualifies(c, PairFromInts(d.HiA, drop(d.HiB, i), d.Noise)) {
					t.Errorf("%s: hiB[%d] is not load-bearing", d.ID, i)
				}
			}
		}
		for i := range d.Noise {
			if f.qualifies(c, PairFromInts(d.HiA, d.HiB, drop(d.Noise, i))) {
				t.Errorf("%s: noise[%d] is not load-bearing", d.ID, i)
			}
		}
	}
}

// TestCommittedDiscoveriesMatchCampaign pins discoveries.json as the
// determinism golden: re-running the pinned campaign reproduces the
// committed file exactly.
func TestCommittedDiscoveriesMatchCampaign(t *testing.T) {
	committed, err := CommittedDiscoveries()
	if err != nil {
		t.Fatalf("CommittedDiscoveries: %v", err)
	}
	res := baselineResult(t)
	got, err := json.Marshal(res.Discoveries)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want, err := json.Marshal(committed)
	if err != nil {
		t.Fatalf("marshal committed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("committed discoveries.json is stale; regenerate with tpfuzz\nwant: %s\ngot:  %s", want, got)
	}
}

// TestAblationsSubsetOfConform cross-checks the fuzzer's search surface
// against the conformance ablation table: every fuzzer ablation must be
// a conformance ablation (same names, so reports line up), and the
// exclusions must stay excluded for the documented closure reason.
func TestAblationsSubsetOfConform(t *testing.T) {
	known := make(map[string]bool)
	for _, a := range experiment.ConformAblations() {
		known[a.Name] = true
	}
	for _, a := range Ablations() {
		if a.Name == "full protection" {
			t.Errorf("fuzzer surface must not include %q (nothing to discover)", a.Name)
		}
		if !known[a.Name] {
			t.Errorf("fuzzer ablation %q is not a conformance ablation", a.Name)
		}
	}
	if _, ok := AblationByName("no flush"); !ok {
		t.Error("AblationByName failed on a known row")
	}
	if _, ok := AblationByName("nonexistent"); ok {
		t.Error("AblationByName accepted an unknown row")
	}
}

// TestFuzzOptionValidation pins the error paths.
func TestFuzzOptionValidation(t *testing.T) {
	if _, err := Fuzz(Options{Budget: 4}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Fuzz(Options{Corpus: []conform.Pair{PlantedLeakyPair()}}); err == nil {
		t.Error("zero budget accepted")
	}
}

// TestProgramCodec round-trips the integer action encoding.
func TestProgramCodec(t *testing.T) {
	ints := []int{0, 3, -1, 1, -2, 0}
	if got := EncodeProgram(DecodeProgram(ints)); !intsEqual(got, ints) {
		t.Errorf("round trip: got %v want %v", got, ints)
	}
	if DecodeProgram(nil) != nil {
		t.Error("DecodeProgram(nil) != nil")
	}
	if EncodeProgram(nil) != nil {
		t.Error("EncodeProgram(nil) != nil")
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
