package discover

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestCommittedCorpusMatchesDefault pins the committed corpus files to
// the built-in corpus: tpfuzz -corpus testdata/corpus and the flagless
// default must seed the identical campaign, so both the file loader and
// the committed pair set are regression-locked at once.
func TestCommittedCorpusMatchesDefault(t *testing.T) {
	loaded, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	want := DefaultCorpus()
	if len(loaded) != len(want) {
		t.Fatalf("committed corpus has %d pairs, built-in has %d", len(loaded), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(loaded[i], want[i]) {
			t.Errorf("corpus pair %d differs: file %+v built-in %+v", i, loaded[i], want[i])
		}
	}
}

// TestCorpusRoundTrip: SaveCorpusPair output loads back equal.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pair := PairFromInts([]int{2, -1, 0}, []int{1, -2}, []int{0, 1})
	if err := SaveCorpusPair(filepath.Join(dir, "p.json"), pair); err != nil {
		t.Fatalf("SaveCorpusPair: %v", err)
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], pair) {
		t.Errorf("round trip: got %+v want %+v", got, pair)
	}
}

// TestLoadCorpusErrors pins the loader's failure modes.
func TestLoadCorpusErrors(t *testing.T) {
	if _, err := LoadCorpus(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
}
