package discover

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"timeprot/internal/conform"
)

// The seed corpus is a directory of JSON pair files (integer action
// encoding), one pair per file, loaded in filename order so the corpus
// — and with it the whole campaign — is deterministic. The committed
// corpus under internal/discover/testdata/corpus seeds the regression
// tests and the tpfuzz default campaign; it includes a planted
// known-leaky pair the fuzzer must deterministically rediscover.

// corpusPair is the on-disk form of one seed pair.
type corpusPair struct {
	HiA   []int `json:"hi_a"`
	HiB   []int `json:"hi_b"`
	Noise []int `json:"noise,omitempty"`
}

// LoadCorpus reads every *.json pair file under dir, in lexical
// filename order.
func LoadCorpus(dir string) ([]conform.Pair, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("discover: scanning corpus %s: %v", dir, err)
	}
	sort.Strings(paths)
	var out []conform.Pair
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("discover: reading corpus pair: %v", err)
		}
		var cp corpusPair
		if err := json.Unmarshal(data, &cp); err != nil {
			return nil, fmt.Errorf("discover: corpus pair %s: %v", path, err)
		}
		if len(cp.HiA) == 0 || len(cp.HiB) == 0 {
			return nil, fmt.Errorf("discover: corpus pair %s: empty program", path)
		}
		out = append(out, PairFromInts(cp.HiA, cp.HiB, cp.Noise))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("discover: no corpus pairs under %s", dir)
	}
	return out, nil
}

// SaveCorpusPair writes one pair as a corpus file.
func SaveCorpusPair(path string, p conform.Pair) error {
	data, err := json.MarshalIndent(corpusPair{
		HiA:   EncodeProgram(p.HiA),
		HiB:   EncodeProgram(p.HiB),
		Noise: EncodeProgram(p.Noise),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("discover: encoding corpus pair: %v", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DefaultCorpus returns the built-in seed corpus used when no corpus
// directory is given: the planted known-leaky pair (two maximally
// distant constant programs — the unflushed prime-and-probe channel in
// its purest form), an identical pair (the fuzzer must never "discover"
// it), and a generated pair for mutation diversity.
func DefaultCorpus() []conform.Pair {
	return []conform.Pair{
		PlantedLeakyPair(),
		{HiA: DecodeProgram([]int{0, 0, 0}), HiB: DecodeProgram([]int{0, 0, 0})},
		PairFromInts([]int{1, -1, 0, 1}, []int{0, -2, 1, 1}, nil),
	}
}

// PlantedLeakyPair is the known-leaky regression seed: HiA touches only
// cache-set group 0, HiB only group 1, every slice. Without flushing,
// the spy's prime-and-probe sweep decodes the group directly; full
// protection closes the channel. The deterministic rediscovery test
// pins that the whole pipeline (screen, confirm, closure check, shrink,
// dedupe) finds and minimises it from the seed corpus within one
// bootstrap generation.
func PlantedLeakyPair() conform.Pair {
	return PairFromInts(
		[]int{0, 0, 0, 0, 0, 0, 0, 0, 0},
		[]int{1, 1, 1, 1, 1, 1, 1, 1, 1},
		nil,
	)
}
