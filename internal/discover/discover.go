// Package discover is the coverage-guided channel-discovery fuzzer:
// generative growth of the attack-scenario registry by searching the
// trojan/spy program space for timing channels the hand-written
// scenarios (T2–T17) do not cover.
//
// The fuzzer mutates seeded Hi program pairs (reusing the conformance
// harness's generator, mutation operators, and concrete trojan/spy
// driver), executes each candidate on pooled simulator machines across
// an ablation surface (protection configurations with exactly one
// mechanism disabled), and scores two signals:
//
//   - fitness: the channel estimator's bootstrap-CI capacity floor — a
//     candidate is a potential discovery when some observation stream's
//     CI lower bound clears the leak floor (the same CI-backed predicate
//     a conformance soundness violation requires), under an ablation
//     whose disabled mechanism should be what closes the channel;
//   - coverage: a lightweight bitmap over hardware state transitions
//     (cache-set touches per level, TLB fills, branch-predictor updates,
//     bus contention slots, flush footprints). Candidates that light up
//     new bits join the mutation corpus with energy proportional to
//     their novelty, steering the search toward unexplored
//     microarchitectural behaviour.
//
// A screening leak must replicate under independent measurement seeds,
// and must be CLOSED by full protection — a pair that still leaks with
// every mechanism armed is not a discovery but (when the abstract model
// accepts the pair) a soundness violation, counted and reported
// separately. Confirmed discoveries are shrunk to minimal witnesses
// (every remaining action load-bearing, via the prover's shrink
// machinery), deduplicated by content digest, and emitted as replayable
// scenario definitions that register into the attack registry as
// dynamic scenarios (F1, F2, …) running under the same engine, store,
// and docs pipeline as the static table.
//
// Everything is deterministic: the discovery set is a pure function of
// (seed corpus, options), bit-identical across worker counts and across
// cold/warm store runs.
package discover

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
	"timeprot/internal/conform"
	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/kernel"
	"timeprot/internal/prove/absmodel"
)

// HarnessVersion is the discovery harness's registered model-version
// string, part of the discovery fingerprint under which candidate
// evaluations cache in the store. Bump it whenever an evaluation could
// change for the same inputs — the candidate pipeline, the fitness
// predicate, the coverage classes, or the concrete driver's use. Pure
// refactors do not bump it.
const HarnessVersion = "discover/1"

// Fingerprint returns the discovery fingerprint: the registered
// model-version string of every layer a candidate evaluation passes
// through — the concrete simulator stack, the conformance driver that
// compiles and measures pairs, and the discovery harness itself. Any
// layer bump turns every cached evaluation into a structural miss.
func Fingerprint() string {
	return strings.Join([]string{
		hw.ModelVersion,
		kernel.ModelVersion,
		channel.EstimatorVersion,
		attacks.HarnessVersion,
		conform.HarnessVersion,
		HarnessVersion,
	}, "|")
}

// Ablation is one row of the fuzzer's search surface: a protection
// configuration with a single mechanism disabled, paired with the
// matching abstract-model mutation so the soundness cross-check always
// judges the same machine. The rows mirror the conformance ablation
// rows the time-multiplexed concrete driver can express and a single
// mechanism plausibly closes.
type Ablation struct {
	// Name labels the row, matching the conformance matrix's names.
	Name string
	// Abs mutates the abstract model configuration; Prot the concrete
	// protection configuration.
	Abs  func(*absmodel.Config)
	Prot func(*core.Config)
}

// ProtConfig returns the row's concrete protection configuration:
// full protection with the row's mechanism disabled.
func (a Ablation) ProtConfig() core.Config {
	c := core.FullProtection()
	a.Prot(&c)
	return c
}

// Ablations returns the discovery search surface in canonical order.
// "no colour" and "shared kernel" are excluded: on the single-core
// conformance driver their channels ride through the flush mechanism,
// so their leaks are not closed by re-enabling only the ablated
// mechanism and every candidate fails the closure check.
func Ablations() []Ablation {
	return []Ablation{
		{"no flush",
			func(c *absmodel.Config) { c.Flush = false },
			func(c *core.Config) { c.FlushOnSwitch = false }},
		{"no pad",
			func(c *absmodel.Config) { c.Pad = false },
			func(c *core.Config) { c.PadSwitch = false }},
		{"no IRQ partition",
			func(c *absmodel.Config) { c.PartitionIRQ = false },
			func(c *core.Config) { c.PartitionIRQs = false }},
	}
}

// AblationByName resolves a search-surface row by exact name.
func AblationByName(name string) (Ablation, bool) {
	for _, a := range Ablations() {
		if a.Name == name {
			return a, true
		}
	}
	return Ablation{}, false
}

// EncodeProgram lowers an abstract program to the store's integer
// action encoding (user inputs ≥ 0, ActSyscall = -1, ActStartIO = -2).
func EncodeProgram(prog []absmodel.Action) []int {
	if len(prog) == 0 {
		return nil
	}
	out := make([]int, len(prog))
	for i, a := range prog {
		out[i] = int(a)
	}
	return out
}

// DecodeProgram lifts the integer encoding back to abstract actions.
func DecodeProgram(ints []int) []absmodel.Action {
	if len(ints) == 0 {
		return nil
	}
	out := make([]absmodel.Action, len(ints))
	for i, v := range ints {
		out[i] = absmodel.Action(v)
	}
	return out
}

// PairFromInts assembles a conformance pair from integer-encoded
// programs; an empty noise program yields a two-domain pair.
func PairFromInts(hiA, hiB, noise []int) conform.Pair {
	p := conform.Pair{HiA: DecodeProgram(hiA), HiB: DecodeProgram(hiB)}
	if len(noise) > 0 {
		p.Noise = DecodeProgram(noise)
	}
	return p
}

// WitnessDigest content-addresses a witness: the ablation row plus the
// three integer-encoded programs, canonically rendered and hashed. Two
// discoveries with the same digest are the same channel and deduplicate.
func WitnessDigest(ablation string, pair conform.Pair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation=%q\n", ablation)
	fmt.Fprintf(&b, "hiA=%v\n", EncodeProgram(pair.HiA))
	fmt.Fprintf(&b, "hiB=%v\n", EncodeProgram(pair.HiB))
	fmt.Fprintf(&b, "noise=%v\n", EncodeProgram(pair.Noise))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
