// Package experiment is the parallel experiment-sweep engine: it
// expands a declarative sweep specification into the attack × mitigation
// × seed matrix of the paper's evaluation, executes the cells on a
// deterministic worker pool, and renders the results as JSON, Markdown
// (the tables of EXPERIMENTS.md), or aligned text.
//
// Determinism is the engine's contract: every cell constructs its own
// simulated kernel.System and depends only on its (rounds, seed)
// arguments, results are stored by cell index rather than completion
// order, and cross-row post-processing runs in canonical variant order —
// so a sweep's output is bit-identical whether it runs on one worker or
// sixteen.
//
// That contract is also what makes sweeps incremental: cells are pure
// functions of their inputs, so Options.Store can memoise them in a
// content-addressed store (internal/experiment/store) keyed under the
// engine fingerprint (Fingerprint), Options.Shard can split the matrix
// across independent processes, and a warm run reproduces a cold run's
// reports byte for byte without executing anything.
package experiment

import (
	"fmt"
	"strings"

	"timeprot/internal/attacks"
)

// Spec declares a sweep: which scenarios and mitigation variants to
// run, at what statistical weight, and over which seeds.
type Spec struct {
	// Scenarios selects attack scenarios by experiment ID ("T2") or
	// short name ("l1pp"). Empty, or the single entry "all", selects
	// every registered scenario.
	Scenarios []string
	// Variants filters mitigation variants by exact label; empty runs
	// every canonical variant of each selected scenario.
	Variants []string
	// Rounds is the requested transmission rounds per cell; each
	// scenario's own policy raises or rescales it (0 = default 60).
	Rounds int
	// Seeds are the base seeds of the sweep (empty = {42}).
	Seeds []uint64
	// Trials repeats each base seed with derived seeds (<=1 = one
	// trial). Trial 0 uses the base seed itself, so a single-trial
	// sweep reproduces the canonical tables.
	Trials int
	// CIHalfWidth, when positive, arms adaptive sampling: each cell
	// climbs a deterministic rounds ladder (half the requested rounds,
	// then doubling) and stops as soon as the 95% bootstrap confidence
	// interval on its capacity has half-width at or below this target
	// (in bits), or the ladder reaches MaxRounds. Zero runs the classic
	// fixed-rounds sweep. DefaultCIHalfWidth is the recommended target.
	CIHalfWidth float64
	// MaxRounds caps the adaptive ladder, in requested-rounds space
	// (each rung still passes through the scenario's rounds policy).
	// 0 = DefaultMaxRoundsFactor x Rounds. Ignored for fixed sweeps.
	MaxRounds int
	// Proofs includes the T1 proof-ablation matrix in the run.
	Proofs bool
	// ProofFamilies and ProofRandom size the prover's sampling (0 =
	// defaults 5 and 200).
	ProofFamilies, ProofRandom int
}

// DefaultRounds is the rounds used when Spec.Rounds is unset.
const DefaultRounds = 60

// DefaultCIHalfWidth is the recommended adaptive tolerance: the same
// 0.05 bits as the leak-verdict margin (attacks.LeakMargin), so a cell
// stops sampling once its capacity is pinned down to the resolution the
// verdict actually uses.
const DefaultCIHalfWidth = 0.05

// DefaultMaxRoundsFactor scales Spec.Rounds into the default adaptive
// rounds cap.
const DefaultMaxRoundsFactor = 4

// normalized returns the spec with defaults applied.
func (s Spec) normalized() Spec {
	if s.Rounds <= 0 {
		s.Rounds = DefaultRounds
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{42}
	}
	if s.Trials <= 1 {
		s.Trials = 1
	}
	if s.CIHalfWidth > 0 {
		if s.MaxRounds <= 0 {
			s.MaxRounds = DefaultMaxRoundsFactor * s.Rounds
		}
	} else {
		// Canonical zeros: a fixed sweep's cells (and store keys) are
		// independent of any adaptive knob left set by the caller.
		s.CIHalfWidth = 0
		s.MaxRounds = 0
	}
	if s.ProofFamilies <= 0 {
		s.ProofFamilies = 5
	}
	if s.ProofRandom <= 0 {
		s.ProofRandom = 200
	}
	return s
}

// Cell is one point of the sweep matrix: a (scenario, variant, seed)
// triple with its effective rounds.
type Cell struct {
	// Index is the cell's position in the expanded matrix.
	Index int
	// ScenarioID and ScenarioName identify the attack scenario.
	ScenarioID, ScenarioName string
	// Title is the scenario's description.
	Title string
	// Variant is the mitigation variant's label.
	Variant string
	// Config renders the variant's protection configuration.
	Config string
	// BaseSeed and Trial identify the seed point; Seed is the derived
	// seed actually passed to the runner.
	BaseSeed uint64
	Trial    int
	Seed     uint64
	// Rounds is the effective rounds after the scenario's policy — the
	// fixed-sweep rounds, and the adaptive ladder's reference point.
	Rounds int
	// ReqRounds, CIHalfWidth, and MaxRounds carry the sweep's adaptive
	// policy into the cell (and its store key): the requested rounds
	// the ladder derives from, the CI half-width target, and the ladder
	// cap. All three are zero in a fixed sweep.
	ReqRounds   int     `json:",omitempty"`
	CIHalfWidth float64 `json:",omitempty"`
	MaxRounds   int     `json:",omitempty"`
}

// Adaptive reports whether the cell runs under the adaptive policy.
func (c Cell) Adaptive() bool { return c.CIHalfWidth > 0 }

// trialSeed derives the seed for one trial of a base seed. Trial 0 is
// the base seed itself; later trials decorrelate through a splitmix64
// step so arithmetically related bases stay independent.
func trialSeed(base uint64, trial int) uint64 {
	if trial == 0 {
		return base
	}
	z := base + uint64(trial)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// selectScenarios resolves the spec's scenario keys against the
// registry, preserving registry order and rejecting unknown keys.
func selectScenarios(keys []string) ([]attacks.Scenario, error) {
	all := attacks.Scenarios()
	if len(keys) == 0 || (len(keys) == 1 && strings.EqualFold(strings.TrimSpace(keys[0]), "all")) {
		// "all" means the static table only: dynamically registered
		// discovery scenarios (F1, F2, …) must be selected explicitly,
		// so EXPERIMENTS.md and the committed docs store remain a pure
		// function of the static registry regardless of which
		// discoveries a build has loaded.
		static := make([]attacks.Scenario, 0, len(all))
		for _, s := range all {
			if !s.Dynamic {
				static = append(static, s)
			}
		}
		return static, nil
	}
	wanted := make(map[string]bool)
	for _, k := range keys {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		s, ok := attacks.ScenarioByID(k)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown scenario %q (have %s)",
				k, strings.Join(attacks.ScenarioIDs(), ", "))
		}
		wanted[s.ID] = true
	}
	out := make([]attacks.Scenario, 0, len(wanted))
	for _, s := range all {
		if wanted[s.ID] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Cells expands the spec into its ordered cell matrix: scenario-major,
// then base seed, then trial, then variant — so every (scenario, seed)
// group of variant rows is contiguous for cross-row post-processing.
func (s Spec) Cells() ([]Cell, error) {
	spec := s.normalized()
	scens, err := selectScenarios(spec.Scenarios)
	if err != nil {
		return nil, err
	}
	varFilter := make(map[string]bool)
	for _, v := range spec.Variants {
		varFilter[v] = true
	}
	matched := make(map[string]bool)
	var cells []Cell
	for _, sc := range scens {
		rounds := sc.Rounds(spec.Rounds)
		for _, base := range spec.Seeds {
			for trial := 0; trial < spec.Trials; trial++ {
				for _, v := range sc.Variants {
					if len(varFilter) > 0 && !varFilter[v.Label] {
						continue
					}
					matched[v.Label] = true
					c := Cell{
						Index:        len(cells),
						ScenarioID:   sc.ID,
						ScenarioName: sc.Name,
						Title:        sc.Title,
						Variant:      v.Label,
						Config:       v.Prot.String(),
						BaseSeed:     base,
						Trial:        trial,
						Seed:         trialSeed(base, trial),
						Rounds:       rounds,
					}
					if spec.CIHalfWidth > 0 {
						c.ReqRounds = spec.Rounds
						c.CIHalfWidth = spec.CIHalfWidth
						c.MaxRounds = spec.MaxRounds
					}
					cells = append(cells, c)
				}
			}
		}
	}
	for v := range varFilter {
		if !matched[v] {
			return nil, fmt.Errorf("experiment: variant filter %q matches no variant of the selected scenarios", v)
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiment: empty sweep matrix")
	}
	return cells, nil
}
