package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"timeprot/internal/conform"
)

// goldenConformSpec is the canonical small conformance matrix committed
// as a regression anchor: two generated pairs over every ablation row
// of the base model — every verdict shape and both drivers' outputs a
// store must round-trip exactly.
func goldenConformSpec() ConformanceSpec {
	return ConformanceSpec{
		Models:   []string{"base"},
		Pairs:    2,
		Rounds:   16,
		Families: 2,
		Seeds:    []uint64{7},
	}
}

const goldenConformPath = "testdata/golden_conform.json"

func renderConformJSON(t *testing.T, m *ConformanceMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteConformanceJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runGoldenConform(t *testing.T, opt ConformanceOptions) (*ConformanceMatrix, CacheStats) {
	t.Helper()
	var stats CacheStats
	opt.Stats = &stats
	m, err := RunConformance(goldenConformSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

// TestGoldenConformance is the golden-trace regression test of the
// conformance engine, run on BOTH store backends: a cold run, a warm
// run (100% cache hits), and a 4-way sharded-then-merged run must all
// reproduce the committed JSON output byte for byte — the conformance
// mirror of TestGoldenSweep and TestGoldenProofMatrix.
func TestGoldenConformance(t *testing.T) {
	for _, backend := range goldenBackends {
		t.Run(backend, func(t *testing.T) {
			st := openBackendStore(t, backend)

			cold, stats := runGoldenConform(t, ConformanceOptions{Store: st})
			coldJSON := renderConformJSON(t, cold)
			if stats.Hits != 0 || stats.Executed != stats.Total || stats.Stored != stats.Total {
				t.Fatalf("cold run stats: %+v", stats)
			}
			if v := cold.Violations(); len(v) != 0 {
				t.Fatalf("golden conformance matrix carries %d soundness violations: %+v", len(v), v)
			}

			if *update && backend == "file" {
				if err := os.MkdirAll(filepath.Dir(goldenConformPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenConformPath, coldJSON, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(goldenConformPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/experiment -run TestGoldenConformance -update` after an intentional model or harness change)", err)
			}
			if !bytes.Equal(coldJSON, golden) {
				t.Fatalf("cold run diverges from the committed golden output — a model or harness change altered conformance verdicts; if intentional, bump the responsible model version and regenerate with -update")
			}

			// Warm run: zero executions, identical bytes — including
			// the text rendering, which exercises the reconstructed
			// estimates.
			warm, wstats := runGoldenConform(t, ConformanceOptions{Store: st})
			if wstats.Hits != wstats.Total || wstats.Executed != 0 || wstats.Stored != 0 {
				t.Fatalf("warm run not fully cached: %+v", wstats)
			}
			if !bytes.Equal(renderConformJSON(t, warm), golden) {
				t.Fatal("warm run JSON differs from cold run")
			}
			var wtxt, ctxt bytes.Buffer
			if err := WriteConformanceText(&wtxt, warm); err != nil {
				t.Fatal(err)
			}
			if err := WriteConformanceText(&ctxt, cold); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wtxt.Bytes(), ctxt.Bytes()) {
				t.Fatal("warm run text differs from cold run")
			}

			// 4-way sharded cold runs into independent stores, merged
			// across a Close, then a warm full run over the merged
			// store: same bytes again.
			shardStores := make([]string, 4)
			for i := 0; i < 4; i++ {
				s := openBackendStore(t, backend)
				shardStores[i] = s.Dir()
				_, st := runGoldenConform(t, ConformanceOptions{Store: s, Shard: ShardSel{Index: i, Count: 4}})
				if st.Executed == 0 {
					t.Fatalf("shard %d executed nothing", i)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
			merged := openBackendStore(t, backend)
			for _, dir := range shardStores {
				if _, err := merged.MergeFrom(dir); err != nil {
					t.Fatal(err)
				}
			}
			full, mstats := runGoldenConform(t, ConformanceOptions{Store: merged})
			if mstats.Hits != mstats.Total || mstats.Executed != 0 {
				t.Fatalf("merged warm run not fully cached: %+v", mstats)
			}
			if !bytes.Equal(renderConformJSON(t, full), golden) {
				t.Fatal("sharded-then-merged run differs from cold run")
			}
		})
	}
}

// TestConformanceParallelismInvariance: the matrix's bytes are a pure
// function of its spec — worker count cannot change a bit of it. This
// is the matrix-level half of the generated-program equivalence
// contract (the kernel-level half lives in internal/conform).
func TestConformanceParallelismInvariance(t *testing.T) {
	spec := ConformanceSpec{
		Models:    []string{"base"},
		Ablations: []string{"full protection", "no flush"},
		Pairs:     2,
		Rounds:    12,
		Families:  1,
		Seeds:     []uint64{3},
	}
	var outs [][]byte
	for _, par := range []int{1, 4} {
		m, err := RunConformance(spec, ConformanceOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, renderConformJSON(t, m))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("conformance matrix depends on worker count")
	}
}

// TestConformShardPartition checks the conformance-cell partition:
// disjoint, complete, index-preserving.
func TestConformShardPartition(t *testing.T) {
	cells, err := ConformanceSpec{Pairs: 3, Seeds: []uint64{1, 2}}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			part, err := shardConformCells(cells, ShardSel{Index: i, Count: n})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range part {
				if seen[c.Index] {
					t.Fatalf("%d shards: cell %d duplicated", n, c.Index)
				}
				seen[c.Index] = true
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("%d shards cover %d cells, want %d", n, len(seen), len(cells))
		}
	}
	if _, err := shardConformCells(cells, ShardSel{Index: 2, Count: 2}); err == nil {
		t.Fatal("out-of-range conformance shard index accepted")
	}
}

// TestConformanceSpecErrors: unknown selectors are rejected with the
// available names listed.
func TestConformanceSpecErrors(t *testing.T) {
	if _, err := (ConformanceSpec{Models: []string{"nope"}}).Cells(); err == nil ||
		!strings.Contains(err.Error(), "base") {
		t.Fatalf("unknown model not rejected usefully: %v", err)
	}
	if _, err := (ConformanceSpec{Ablations: []string{"nope"}}).Cells(); err == nil ||
		!strings.Contains(err.Error(), "no flush") {
		t.Fatalf("unknown ablation not rejected usefully: %v", err)
	}
}

// TestConformAblationsSubsetOfProofAblations pins the registry
// relationship: every conformance ablation row is a proof ablation row
// (the SMT row is the single intended exclusion), so the two matrices
// stay name-compatible.
func TestConformAblationsSubsetOfProofAblations(t *testing.T) {
	proof := make(map[string]bool)
	for _, a := range ProofAblations() {
		proof[a.Name] = true
	}
	for _, a := range ConformAblations() {
		if !proof[a.Name] {
			t.Errorf("conformance ablation %q is not a proof ablation", a.Name)
		}
	}
	if got, want := len(ConformAblations()), len(ProofAblations())-1; got != want {
		t.Errorf("conformance rows = %d, want %d (proof rows minus SMT)", got, want)
	}
}

// TestConformanceSoundness is the acceptance-criteria matrix: every
// model variant, every ablation row, and enough generated pairs that
// the matrix crosses 200 generated program pairs — with zero soundness
// violations. A violation here means the abstract model fails to
// over-approximate a concrete channel and must be fixed, not skipped.
func TestConformanceSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("full conformance matrix is not a -short test")
	}
	spec := ConformanceSpec{
		Pairs:    12, // 3 models × 1 seed × 12 pairs × 6 ablations = 216 cells ≥ 200 pairs
		Rounds:   24,
		Families: 2,
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 200 {
		t.Fatalf("matrix has %d cells, want >= 200", len(cells))
	}
	m, err := RunConformance(spec, ConformanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Cells {
		if c.Err != "" {
			t.Fatalf("cell %d (%s/%s pair %d) failed: %s", c.Index, c.Model, c.Ablation, c.Pair, c.Err)
		}
	}
	if v := m.Violations(); len(v) != 0 {
		for _, c := range v {
			t.Errorf("SOUNDNESS VIOLATION: cell %d (%s/%s pair %d): prover accepts %v vs %v, simulator leaks via %s",
				c.Index, c.Model, c.Ablation, c.Pair, c.ProgramPair.HiA, c.ProgramPair.HiB, c.Channels[c.Best].Name)
		}
		t.FailNow()
	}
	// The matrix must not be vacuous: full-protection rows all accept
	// abstractly, and at least one ablated row demonstrates a concrete
	// leak (sound refutations with evidence).
	leaks := 0
	for _, c := range m.Cells {
		if c.Ablation == "full protection" && !c.Abstract.Accepts {
			t.Errorf("cell %d: full protection refuted on %s", c.Index, c.Model)
		}
		if c.Verdict == conform.VerdictSound && c.Leak {
			leaks++
		}
	}
	if leaks == 0 {
		t.Error("no ablated cell demonstrated a concrete leak; the concrete driver has no detection power")
	}
}
