package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"timeprot/internal/attacks"
	"timeprot/internal/experiment/store"
)

// These tests gate the pooled execution path at the engine level: a
// worker's reused CellContext must be invisible in every output — cell
// results, report bytes, and the content-addressed store's file set —
// for any worker count.

// cellRepr renders a cell result for comparison: the raw row via %#v
// (NaN-safe, unlike reflect.DeepEqual) plus the flattened JSON fields
// (which dereference the ErrRate pointer — %#v would print its
// address).
func cellRepr(t *testing.T, res CellResult) string {
	t.Helper()
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%#v | %s", res.Row(), js)
}

// TestPooledCellMatchesFresh runs representative cells through runCell
// twice — once context-free, once on a context already dirtied by every
// previous cell — and asserts identical results.
func TestPooledCellMatchesFresh(t *testing.T) {
	cells, err := (Spec{
		Scenarios: []string{"T2", "T9", "T11", "T16", "T17"},
		Rounds:    8,
		Seeds:     []uint64{42},
	}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	cc := attacks.NewCellContext()
	for _, c := range cells {
		fresh := cellRepr(t, runCell(nil, c))
		pooled := cellRepr(t, runCell(cc, c))
		if fresh != pooled {
			t.Errorf("%s/%s: pooled cell differs from fresh\nfresh:  %s\npooled: %s",
				c.ScenarioID, c.Variant, fresh, pooled)
		}
	}
}

// storeFiles maps a store directory's entries to their contents.
func storeFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestPooledStoreIdenticalAcrossParallelism runs the same sweep into
// two stores at different worker counts (different context reuse
// interleavings) and asserts the stores hold byte-identical file sets:
// pooling and scheduling can never change a stored cell.
func TestPooledStoreIdenticalAcrossParallelism(t *testing.T) {
	spec := Spec{
		Scenarios: []string{"T4", "T16"},
		Rounds:    8,
		Seeds:     []uint64{42},
	}
	dirs := [2]string{t.TempDir(), t.TempDir()}
	reports := [2]*bytes.Buffer{{}, {}}
	for i, par := range []int{1, 4} {
		st, err := store.Open(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(spec, Options{Parallelism: par, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(reports[i], rep); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Error("report bytes differ between parallelism 1 and 4")
	}
	a, b := storeFiles(t, dirs[0]), storeFiles(t, dirs[1])
	if len(a) == 0 {
		t.Fatal("sweep stored no cells")
	}
	var names []string
	for k := range a {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(a) != len(b) {
		t.Fatalf("store file counts differ: %d vs %d", len(a), len(b))
	}
	for _, name := range names {
		bb, ok := b[name]
		if !ok {
			t.Errorf("store key %s missing from parallel run", name)
			continue
		}
		if !bytes.Equal(a[name], bb) {
			t.Errorf("store entry %s differs between worker counts", name)
		}
	}
}
