package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"

	"timeprot/internal/channel"
	"timeprot/internal/conform"
	"timeprot/internal/core"
	"timeprot/internal/experiment/store"
	"timeprot/internal/prove/absmodel"
)

// This file is the conformance-matrix engine: the cross-checking
// analogue of the proof matrix in proofs.go. A declarative
// ConformanceSpec expands into a model-variant × seed × pair × ablation
// grid; each cell generates a deterministic program pair, drives it
// through BOTH the abstract prover model and the concrete simulator via
// internal/conform, and classifies the outcome. Cells cache in the
// content-addressed store under the conformance fingerprint, so CI
// re-certifies abstraction soundness warm on every model-version bump.

// ConformAblation is one configuration row of the conformance matrix: a
// mechanism ablated on BOTH sides — the abstract model bit and the
// matching concrete protection bit — so the two drivers always judge
// the same machine.
type ConformAblation struct {
	// Name labels the row, matching the proof matrix's ablation names.
	Name string
	// Abs mutates the abstract model configuration; Prot the concrete
	// protection configuration.
	Abs  func(*absmodel.Config)
	Prot func(*core.Config)
}

// ConformAblations returns the canonical conformance ablation rows: the
// proof matrix's single-mechanism rows that the time-multiplexed
// concrete driver can express. The SMT row is excluded — the concrete
// conformance run time-shares one core, so SMT co-residency has no
// concrete counterpart to cross-check against.
func ConformAblations() []ConformAblation {
	return []ConformAblation{
		{"full protection", func(*absmodel.Config) {}, func(*core.Config) {}},
		{"no flush",
			func(c *absmodel.Config) { c.Flush = false },
			func(c *core.Config) { c.FlushOnSwitch = false }},
		{"no pad",
			func(c *absmodel.Config) { c.Pad = false },
			func(c *core.Config) { c.PadSwitch = false }},
		{"no colour",
			func(c *absmodel.Config) { c.Color = false },
			func(c *core.Config) { c.ColorUserMemory = false }},
		{"shared kernel",
			func(c *absmodel.Config) { c.Clone = false },
			func(c *core.Config) { c.CloneKernel = false }},
		{"no IRQ partition",
			func(c *absmodel.Config) { c.PartitionIRQ = false },
			func(c *core.Config) { c.PartitionIRQs = false }},
	}
}

// conformAblationByName resolves a conformance ablation name.
func conformAblationByName(name string) (ConformAblation, bool) {
	for _, a := range ConformAblations() {
		if a.Name == name {
			return a, true
		}
	}
	return ConformAblation{}, false
}

func conformAblationNames() []string {
	var out []string
	for _, a := range ConformAblations() {
		out = append(out, a.Name)
	}
	return out
}

// Conformance-matrix defaults.
const (
	// DefaultConformPairs is the generated program pairs per (model,
	// seed, ablation) point when unset.
	DefaultConformPairs = 8
	// DefaultConformRounds is the concrete transmission rounds per cell
	// when unset.
	DefaultConformRounds = 40
	// DefaultConformFamilies is the sampled time-function families on
	// the abstract side when unset.
	DefaultConformFamilies = 3
)

// ConformanceSpec declares a conformance matrix: which model variants
// and ablation rows to cross-check, over how many generated pairs, at
// which concrete rounds and abstract family counts, under which seeds.
type ConformanceSpec struct {
	// Models selects prover model variants by exact name (the PR 5
	// registry); empty, or the single entry "all", selects every
	// registered variant.
	Models []string
	// Ablations selects conformance ablation rows by exact name;
	// empty, or the single entry "all", selects every canonical row.
	Ablations []string
	// Pairs is the generated program pairs per (model, seed) block
	// (<=0 = DefaultConformPairs).
	Pairs int
	// Rounds is the concrete run's transmission rounds per cell
	// (<=0 = DefaultConformRounds).
	Rounds int
	// Families is the abstract side's sampled function families
	// (<=0 = DefaultConformFamilies).
	Families int
	// Seeds are the base seeds (empty = {DefaultProofSeed}); each seed
	// derives its own independent pair block.
	Seeds []uint64
}

// normalized returns the spec with defaults applied.
func (s ConformanceSpec) normalized() ConformanceSpec {
	if isAll(s.Models) {
		s.Models = nil
		for _, m := range ProofModels() {
			s.Models = append(s.Models, m.Name)
		}
	}
	if isAll(s.Ablations) {
		s.Ablations = conformAblationNames()
	}
	if s.Pairs <= 0 {
		s.Pairs = DefaultConformPairs
	}
	if s.Rounds <= 0 {
		s.Rounds = DefaultConformRounds
	}
	if s.Families <= 0 {
		s.Families = DefaultConformFamilies
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{DefaultProofSeed}
	}
	return s
}

// ConformanceCell is one point of the conformance matrix: a generated
// pair cross-checked under one (model, ablation, seed) configuration.
type ConformanceCell struct {
	// Index is the cell's position in the expanded matrix.
	Index int
	// Model and Ablation name the grid point.
	Model, Ablation string
	// Cfg is the resolved (ablated) abstract-model configuration; Prot
	// the matching concrete protection configuration.
	Cfg  absmodel.Config
	Prot core.Config
	// Pair is the pair index within the seed block; PairSeed its
	// derived generation seed. The same (seed, pair) yields the same
	// program pair in every ablation row, so rows are comparable.
	Pair     int
	PairSeed uint64
	// Rounds, Families, and Seed are the cell's sampling point.
	Rounds   int
	Families int
	Seed     uint64
}

// Cells expands the spec into its ordered cell matrix: model-major,
// then seed, then pair, then ablation — every pair's ablation rows are
// contiguous, so reports group naturally.
func (s ConformanceSpec) Cells() ([]ConformanceCell, error) {
	spec := s.normalized()
	var cells []ConformanceCell
	for _, mname := range spec.Models {
		model, ok := proofModelByName(strings.TrimSpace(mname))
		if !ok {
			return nil, fmt.Errorf("experiment: unknown conformance model %q (have %s)",
				mname, strings.Join(proofModelNames(), ", "))
		}
		for _, seed := range spec.Seeds {
			for pair := 0; pair < spec.Pairs; pair++ {
				for _, aname := range spec.Ablations {
					abl, ok := conformAblationByName(strings.TrimSpace(aname))
					if !ok {
						return nil, fmt.Errorf("experiment: unknown conformance ablation %q (have %s)",
							aname, strings.Join(conformAblationNames(), ", "))
					}
					cfg := model.Cfg
					abl.Abs(&cfg)
					prot := core.FullProtection()
					abl.Prot(&prot)
					cells = append(cells, ConformanceCell{
						Index:    len(cells),
						Model:    model.Name,
						Ablation: abl.Name,
						Cfg:      cfg,
						Prot:     prot,
						Pair:     pair,
						PairSeed: conform.PairSeed(seed, pair),
						Rounds:   spec.Rounds,
						Families: spec.Families,
						Seed:     seed,
					})
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiment: empty conformance matrix")
	}
	return cells, nil
}

// ConformanceCellResult is one completed conformance cell: its
// coordinates plus the generated pair, both sides' results, and the
// cross-check verdict.
type ConformanceCellResult struct {
	ConformanceCell
	// Pair is the generated program pair (shadows the embedded pair
	// index under a distinct JSON name).
	ProgramPair conform.Pair
	// Verdict is the cross-check classification.
	Verdict conform.Verdict
	// Abstract is the prover side's result.
	Abstract conform.AbstractVerdict
	// Channels, Best, Leak, and SimOps are the simulator side's result.
	Channels []conform.NamedEstimate
	Best     int
	Leak     bool
	SimOps   uint64
	// Witness is the minimized evidence when Verdict is violation.
	Witness *conform.ViolationWitness `json:",omitempty"`
	// Err records a harness failure (the cell's result is then zero).
	Err string `json:",omitempty"`
}

// ConformanceMatrix is a completed conformance matrix: the spec and
// every cell in matrix order. Like the proof matrix, it is a pure
// function of its spec — worker count and cache state cannot change a
// bit of it.
type ConformanceMatrix struct {
	// Spec is the normalised specification that produced the matrix.
	Spec ConformanceSpec
	// Cells are the results in matrix order. In a sharded run this is
	// the shard's subset, with full-matrix indices.
	Cells []ConformanceCellResult
}

// Violations returns the soundness violations of the matrix — the cells
// a sound abstract model must never produce.
func (m *ConformanceMatrix) Violations() []ConformanceCellResult {
	var out []ConformanceCellResult
	for _, c := range m.Cells {
		if c.Verdict == conform.VerdictViolation {
			out = append(out, c)
		}
	}
	return out
}

// Counts returns the verdict tally (sound, conservative, violation,
// failed).
func (m *ConformanceMatrix) Counts() (sound, conservative, violation, failed int) {
	for _, c := range m.Cells {
		switch {
		case c.Err != "":
			failed++
		case c.Verdict == conform.VerdictSound:
			sound++
		case c.Verdict == conform.VerdictConservative:
			conservative++
		case c.Verdict == conform.VerdictViolation:
			violation++
		}
	}
	return
}

// ConformanceOptions tunes a conformance run. Parallelism, Store,
// Progress, and Stats never affect the matrix's bytes; Shard restricts
// the run to a subset and therefore produces a partial matrix.
type ConformanceOptions struct {
	// Parallelism is the worker count (<=0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after each completed cell.
	Progress func(done, total int, c ConformanceCell)
	// Store, when non-nil, serves cached conformance cells and receives
	// fresh non-failed outcomes.
	Store store.CellStore
	// Shard restricts the run to one shard of the matrix's
	// deterministic partition (unit: single cell). The zero value runs
	// everything.
	Shard ShardSel
	// Stats, when non-nil, receives the run's cache statistics.
	Stats *CacheStats
	// Context, when non-nil, scopes the run to a job: see
	// Options.Context — cancellation stops dispatch, finishes in-flight
	// cells, and returns the context's error.
	Context context.Context
}

// shardConformCells returns the cells of one shard, preserving
// full-matrix indices.
func shardConformCells(cells []ConformanceCell, sh ShardSel) ([]ConformanceCell, error) {
	if sh.Count <= 0 {
		return cells, nil
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return nil, fmt.Errorf("experiment: conformance shard index %d out of range [0,%d)", sh.Index, sh.Count)
	}
	var out []ConformanceCell
	for _, c := range cells {
		if c.Index%sh.Count == sh.Index {
			out = append(out, c)
		}
	}
	return out, nil
}

// RunConformance executes a conformance matrix. The result depends only
// on the spec (and, for sharded runs, the shard selection); the store
// only decides which cells re-execute.
func RunConformance(spec ConformanceSpec, opt ConformanceOptions) (*ConformanceMatrix, error) {
	spec = spec.normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	cells, err = shardConformCells(cells, opt.Shard)
	if err != nil {
		return nil, err
	}

	stats := CacheStats{Total: len(cells)}
	results := make([]ConformanceCellResult, len(cells))
	keys := make([]store.Key, len(cells))

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	// Probe the store concurrently, then fill hits in matrix order so
	// Progress and pending stay deterministic (same structure as the
	// attack-cell and proof-cell runners).
	hits := make([]*store.ConformV1, len(cells))
	if opt.Store != nil {
		probe := make(chan int)
		var pwg sync.WaitGroup
		for w := 0; w < par; w++ {
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				for i := range probe {
					keys[i] = conformCellKey(cells[i])
					if c, ok := opt.Store.GetConform(keys[i]); ok {
						cc := c
						hits[i] = &cc
					}
				}
			}()
		}
		for i := range cells {
			probe <- i
		}
		close(probe)
		pwg.Wait()
	}

	done := 0
	var pending []int
	for i, c := range cells {
		if hits[i] != nil {
			results[i] = decodeConformCell(c, *hits[i])
			stats.Hits++
			done++
			if opt.Progress != nil {
				opt.Progress(done, len(cells), c)
			}
			continue
		}
		pending = append(pending, i)
	}
	stats.Executed = len(pending)

	if par > len(pending) {
		par = len(pending)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runConformCell(cells[i])
				var stored bool
				var err error
				if opt.Store != nil && results[i].Err == "" {
					err = opt.Store.PutConform(keys[i], encodeConformCell(results[i]))
					stored = err == nil
				}
				mu.Lock()
				if err != nil {
					stats.FailedPuts++
					if stats.FailedPut == "" {
						stats.FailedPut = err.Error()
					}
				}
				if stored {
					stats.Stored++
				}
				done++
				if opt.Progress != nil {
					opt.Progress(done, len(cells), cells[i])
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case jobs <- i:
		case <-ctxDone(opt.Context):
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled(opt.Context) {
		return nil, opt.Context.Err()
	}

	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return &ConformanceMatrix{Spec: spec, Cells: results}, nil
}

// runConformCell executes one conformance cell, converting harness
// panics into per-cell errors.
func runConformCell(c ConformanceCell) (res ConformanceCellResult) {
	res.ConformanceCell = c
	defer func() {
		if p := recover(); p != nil {
			res = ConformanceCellResult{ConformanceCell: c, Err: fmt.Sprint(p)}
		}
	}()
	pair := conform.Generate(c.Cfg, c.PairSeed)
	out := conform.Check(c.Cfg, c.Prot, pair, conform.Opts{
		Families:    c.Families,
		FamilySeed:  c.Seed,
		MeasureSeed: c.PairSeed,
		Params:      conform.DefaultParams(c.Rounds),
	})
	res.ProgramPair = out.Pair
	res.Verdict = out.Verdict
	res.Abstract = out.Abstract
	res.Channels = out.Concrete.Channels
	res.Best = out.Concrete.Best
	res.Leak = out.Concrete.Leak
	res.SimOps = out.Concrete.SimOps
	res.Witness = out.Witness
	return res
}

// floatBits and bitsFloat are the store's exact float round-trip.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// channelEstimate reconstructs a stored stream estimate.
func channelEstimate(ch store.ConformChannelV1) channel.Estimate {
	return channel.Estimate{
		CapacityBits: bitsFloat(ch.CapacityBits),
		MIUniform:    bitsFloat(ch.MIUniform),
		FloorBits:    bitsFloat(ch.FloorBits),
		CILow:        bitsFloat(ch.CILow),
		CIHigh:       bitsFloat(ch.CIHigh),
		N:            ch.N,
		Bins:         ch.Bins,
	}
}

// actionInts converts actions to their stored integer encoding.
func actionInts(prog []absmodel.Action) []int {
	var out []int
	for _, a := range prog {
		out = append(out, int(a))
	}
	return out
}

func intActions(xs []int) []absmodel.Action {
	var out []absmodel.Action
	for _, x := range xs {
		out = append(out, absmodel.Action(x))
	}
	return out
}

// encodeConformCell converts a completed cell to its stored form.
func encodeConformCell(r ConformanceCellResult) store.ConformV1 {
	c := store.ConformV1{
		Verdict:         string(r.Verdict),
		HiA:             actionInts(r.ProgramPair.HiA),
		HiB:             actionInts(r.ProgramPair.HiB),
		AbsAccepts:      r.Abstract.Accepts,
		AbsRuns:         r.Abstract.Runs,
		AbsOverruns:     r.Abstract.Overruns,
		AbsDivergeFam:   r.Abstract.DivergeFamily,
		AbsDivergeIndex: r.Abstract.DivergeIndex,
		Best:            r.Best,
		Leak:            r.Leak,
		SimOps:          r.SimOps,
	}
	for _, ch := range r.Channels {
		c.Channels = append(c.Channels, store.ConformChannelV1{
			Name:         ch.Name,
			CapacityBits: floatBits(ch.Est.CapacityBits),
			MIUniform:    floatBits(ch.Est.MIUniform),
			FloorBits:    floatBits(ch.Est.FloorBits),
			CILow:        floatBits(ch.Est.CILow),
			CIHigh:       floatBits(ch.Est.CIHigh),
			N:            ch.Est.N,
			Bins:         ch.Est.Bins,
		})
	}
	if w := r.Witness; w != nil {
		c.Witness = &store.ConformWitnessV1{
			HiA:          actionInts(w.HiA),
			HiB:          actionInts(w.HiB),
			ShrinkEvals:  w.ShrinkEvals,
			Channel:      w.Channel,
			CapacityBits: floatBits(w.CapacityBits),
			FloorBits:    floatBits(w.FloorBits),
			CILow:        floatBits(w.CILow),
			CIHigh:       floatBits(w.CIHigh),
		}
	}
	return c
}

// decodeConformCell reconstructs a cell result from its stored form.
func decodeConformCell(cell ConformanceCell, c store.ConformV1) ConformanceCellResult {
	res := ConformanceCellResult{
		ConformanceCell: cell,
		ProgramPair:     conform.Pair{HiA: intActions(c.HiA), HiB: intActions(c.HiB)},
		Verdict:         conform.Verdict(c.Verdict),
		Abstract: conform.AbstractVerdict{
			Accepts:       c.AbsAccepts,
			Families:      cell.Families,
			Runs:          c.AbsRuns,
			Overruns:      c.AbsOverruns,
			DivergeFamily: c.AbsDivergeFam,
			DivergeIndex:  c.AbsDivergeIndex,
		},
		Best:   c.Best,
		Leak:   c.Leak,
		SimOps: c.SimOps,
	}
	for _, ch := range c.Channels {
		res.Channels = append(res.Channels, conform.NamedEstimate{
			Name: ch.Name,
			Est:  channelEstimate(ch),
		})
	}
	if sw := c.Witness; sw != nil {
		res.Witness = &conform.ViolationWitness{
			HiA:          intActions(sw.HiA),
			HiB:          intActions(sw.HiB),
			ShrinkEvals:  sw.ShrinkEvals,
			Channel:      sw.Channel,
			CapacityBits: bitsFloat(sw.CapacityBits),
			FloorBits:    bitsFloat(sw.FloorBits),
			CILow:        bitsFloat(sw.CILow),
			CIHigh:       bitsFloat(sw.CIHigh),
		}
	}
	return res
}

// WriteConformanceJSON serialises the conformance matrix as indented
// JSON.
func WriteConformanceJSON(w io.Writer, m *ConformanceMatrix) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteConformanceText renders the matrix as an aligned text report for
// the tpconform CLI.
func WriteConformanceText(w io.Writer, m *ConformanceMatrix) error {
	sound, conservative, violation, failed := m.Counts()
	if _, err := fmt.Fprintf(w, "conformance matrix: %d cells — %d sound, %d conservative, %d VIOLATIONS, %d failed\nfingerprint: %s\n\n",
		len(m.Cells), sound, conservative, violation, failed, ConformFingerprint()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-5s %-14s %-18s %-5s %-8s %-6s %-12s %s\n",
		"idx", "model", "ablation", "pair", "accepts", "leak", "verdict", "best channel"); err != nil {
		return err
	}
	for _, c := range m.Cells {
		if c.Err != "" {
			if _, err := fmt.Fprintf(w, "%-5d %-14s %-18s %-5d FAILED: %s\n",
				c.Index, c.Model, c.Ablation, c.Pair, c.Err); err != nil {
				return err
			}
			continue
		}
		best := ""
		if c.Best >= 0 && c.Best < len(c.Channels) {
			ch := c.Channels[c.Best]
			best = fmt.Sprintf("%s %.4f b/u (floor %.4f)", ch.Name, ch.Est.CapacityBits, ch.Est.FloorBits)
		}
		verdict := string(c.Verdict)
		if c.Verdict == conform.VerdictViolation {
			verdict = "VIOLATION"
		}
		if _, err := fmt.Fprintf(w, "%-5d %-14s %-18s %-5d %-8v %-6v %-12s %s\n",
			c.Index, c.Model, c.Ablation, c.Pair, c.Abstract.Accepts, c.Leak, verdict, best); err != nil {
			return err
		}
	}
	for _, v := range m.Violations() {
		if _, err := fmt.Fprintf(w, "\nVIOLATION cell %d (%s, %s, pair %d): minimal pair %v vs %v leaks via %s (%.4f b/u over floor %.4f)\n",
			v.Index, v.Model, v.Ablation, v.Pair,
			v.Witness.HiA, v.Witness.HiB, v.Witness.Channel, v.Witness.CapacityBits, v.Witness.FloorBits); err != nil {
			return err
		}
	}
	return nil
}
