package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"timeprot/internal/attacks"
)

func TestCellsExpansion(t *testing.T) {
	spec := Spec{
		Scenarios: []string{"T2", "tlb"}, // ID and short name both resolve
		Rounds:    5,                     // below both minimums
		Seeds:     []uint64{1, 2},
		Trials:    2,
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// T2 has 3 variants, T14 (tlb) has 2; × 2 seeds × 2 trials.
	if want := (3 + 2) * 2 * 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.Rounds != 30 {
			t.Fatalf("cell %d: rounds %d not raised to the scenario minimum", i, c.Rounds)
		}
		if c.Trial == 0 && c.Seed != c.BaseSeed {
			t.Fatalf("trial 0 must use the base seed, got %d from %d", c.Seed, c.BaseSeed)
		}
		if c.Trial != 0 && c.Seed == c.BaseSeed {
			t.Fatalf("derived trial seed not decorrelated: %+v", c)
		}
	}
	if trialSeed(1, 1) == trialSeed(2, 1) || trialSeed(1, 1) == trialSeed(1, 2) {
		t.Fatal("trial seeds collide across bases or trials")
	}
	// Scenario-major, seed-major, variant-minor ordering.
	if cells[0].ScenarioID != "T2" || cells[len(cells)-1].ScenarioID != "T14" {
		t.Fatalf("unexpected scenario order: %s .. %s", cells[0].ScenarioID, cells[len(cells)-1].ScenarioID)
	}

	if _, err := (Spec{Scenarios: []string{"T99"}}).Cells(); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := (Spec{Variants: []string{"no such variant"}}).Cells(); err == nil {
		t.Fatal("unmatched variant filter accepted")
	}

	// A variant filter narrows the matrix.
	narrow, err := (Spec{Scenarios: []string{"T2"}, Variants: []string{"unprotected"}}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) != 1 || narrow[0].Variant != "unprotected" {
		t.Fatalf("variant filter: %+v", narrow)
	}
}

func TestCellsAllMatchesRegistry(t *testing.T) {
	cells, err := (Spec{Scenarios: []string{"all"}}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range attacks.Scenarios() {
		want += len(s.Variants)
	}
	if len(cells) != want {
		t.Fatalf("full matrix has %d cells, registry has %d variants", len(cells), want)
	}
}

// runSmallSweep runs a cheap two-scenario sweep used by the determinism
// and reporter tests. T4 exercises the capacity estimator path and T12
// exercises cross-row finalisation (the slowdown column).
func runSmallSweep(t *testing.T, parallelism int) *Report {
	t.Helper()
	rep, err := Run(Spec{
		Scenarios: []string{"T4", "T12"},
		Rounds:    30,
		Seeds:     []uint64{7},
	}, Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	seq := runSmallSweep(t, 1)
	par := runSmallSweep(t, 8)

	var bufSeq, bufPar bytes.Buffer
	if err := WriteJSON(&bufSeq, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bufPar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatalf("results differ between -parallel 1 and -parallel 8:\n--- seq ---\n%s\n--- par ---\n%s",
			bufSeq.String(), bufPar.String())
	}

	for _, c := range seq.Cells {
		if c.Err != "" {
			t.Fatalf("cell %d (%s/%s) failed: %s", c.Index, c.ScenarioID, c.Variant, c.Err)
		}
	}
	// T12's finalisation must have produced the relative column for
	// every overheads cell, with the baseline pinned at 1.0.
	sawBaseline := false
	for _, c := range seq.Cells {
		if c.ScenarioID != "T12" {
			continue
		}
		slow := extraOf(c, "slowdown")
		if slow == 0 {
			t.Fatalf("T12 cell %q missing slowdown: %+v", c.Variant, c.Extra)
		}
		if c.Variant == "unprotected" {
			sawBaseline = true
			if slow != 1.0 {
				t.Fatalf("baseline slowdown = %v, want 1.0", slow)
			}
		}
	}
	if !sawBaseline {
		t.Fatal("no T12 baseline cell in sweep")
	}
}

func extraOf(c CellResult, key string) float64 {
	for _, kv := range c.Extra {
		if kv.K == key {
			return kv.V
		}
	}
	return 0
}

func TestReporters(t *testing.T) {
	rep := runSmallSweep(t, 0)

	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, rep); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(decoded.Cells) != len(rep.Cells) {
		t.Fatalf("JSON round-trip lost cells: %d != %d", len(decoded.Cells), len(rep.Cells))
	}
	if decoded.Cells[0].Variant != rep.Cells[0].Variant {
		t.Fatalf("JSON round-trip mangled cell: %+v", decoded.Cells[0])
	}

	var md bytes.Buffer
	if err := WriteMarkdown(&md, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# EXPERIMENTS — reproduced results",
		"## aISA hardware–software contract",
		"## T4 —",
		"## T12 —",
		"| flush+pad (full) |",
		rep.RegenCommand(),
	} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if strings.Contains(md.String(), "## T1 —") {
		t.Error("markdown contains proof table although proofs were not run")
	}

	var txt bytes.Buffer
	if err := WriteText(&txt, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aISA contract", "T4 —", "flush, no pad"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

func TestRunProofs(t *testing.T) {
	res := RunProofs(1, 10, 7, 4)
	if len(res) != 7 {
		t.Fatalf("proof matrix rows = %d, want 7", len(res))
	}
	if !res[0].Proved || res[0].Name != "full protection" {
		t.Fatalf("full protection row wrong: %+v", res[0])
	}
	for _, r := range res[1:] {
		if r.Proved {
			t.Errorf("ablation %q must not prove", r.Name)
		}
	}
	if len(res[0].Cases) == 0 || res[0].BoundedRuns == 0 {
		t.Fatalf("flattened proof fields not populated: %+v", res[0])
	}
}

func TestRunRecoversPanics(t *testing.T) {
	// An impossible variant reaches the runner only through a
	// hand-built cell; simulate by running a scenario whose rounds are
	// forced negative — the registry clamps, so instead exercise the
	// unknown-variant path directly.
	res := runCell(nil, Cell{ScenarioID: "T2", Variant: "definitely not real"})
	if res.Err == "" {
		t.Fatal("unknown variant did not error")
	}
	res = runCell(nil, Cell{ScenarioID: "T99", Variant: "x"})
	if res.Err == "" {
		t.Fatal("unknown scenario did not error")
	}
}
