package experiment

import (
	"strings"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
	"timeprot/internal/experiment/store"
	"timeprot/internal/hw"
	"timeprot/internal/kernel"
)

// Fingerprint returns the engine fingerprint: the registered
// model-version string of every simulator layer a cell's measurement
// passes through — hardware time model, kernel model, capacity
// estimator, and attack harness. It is part of every cell's store key,
// so bumping any layer's version (the declared discipline for semantic
// changes) invalidates the entire store instead of silently serving
// results computed by a different model — the cheap re-verification
// loop the paper's proof-maintenance argument needs.
func Fingerprint() string {
	return strings.Join([]string{
		hw.ModelVersion,
		kernel.ModelVersion,
		channel.EstimatorVersion,
		attacks.HarnessVersion,
	}, "|")
}

// cellKey derives the store key for one cell of the matrix. It reports
// false when the cell does not resolve against the registry (such cells
// fail in the runner and are never cached).
func cellKey(c Cell) (store.Key, bool) {
	s, ok := attacks.ScenarioByID(c.ScenarioID)
	if !ok {
		return store.Key{}, false
	}
	v, ok := s.VariantByLabel(c.Variant)
	if !ok {
		return store.Key{}, false
	}
	return store.Spec{
		Fingerprint:     Fingerprint(),
		ScenarioID:      s.ID,
		ScenarioVersion: s.Version,
		Variant:         v.Label,
		Config:          v.Prot,
		Rounds:          c.Rounds,
		ReqRounds:       c.ReqRounds,
		CIHalfWidth:     c.CIHalfWidth,
		MaxRounds:       c.MaxRounds,
		BaseSeed:        c.BaseSeed,
		Trial:           c.Trial,
		Seed:            c.Seed,
	}.Key(), true
}
