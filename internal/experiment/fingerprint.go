package experiment

import (
	"strings"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
	"timeprot/internal/conform"
	"timeprot/internal/experiment/store"
	"timeprot/internal/hw"
	"timeprot/internal/kernel"
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/invariant"
	"timeprot/internal/prove/nonintf"
)

// Fingerprint returns the engine fingerprint: the registered
// model-version string of every simulator layer a cell's measurement
// passes through — hardware time model, kernel model, capacity
// estimator, and attack harness. It is part of every cell's store key,
// so bumping any layer's version (the declared discipline for semantic
// changes) invalidates the entire store instead of silently serving
// results computed by a different model — the cheap re-verification
// loop the paper's proof-maintenance argument needs.
func Fingerprint() string {
	return strings.Join([]string{
		hw.ModelVersion,
		kernel.ModelVersion,
		channel.EstimatorVersion,
		attacks.HarnessVersion,
	}, "|")
}

// ProverFingerprint returns the prover fingerprint: the registered
// model-version string of every layer a proof cell's verdict passes
// through — the abstract model, the noninterference checker, and the
// concrete invariant checkers. It is part of every proof cell's store
// key, the same re-verification discipline Fingerprint applies to
// measured cells: bump any prover layer's version and every cached
// proof becomes a structural miss.
func ProverFingerprint() string {
	return strings.Join([]string{
		absmodel.ModelVersion,
		nonintf.ModelVersion,
		invariant.ModelVersion,
	}, "|")
}

// ConformFingerprint returns the conformance fingerprint: the
// registered model-version strings of BOTH sides a conformance verdict
// passes through — the abstract prover layers, the concrete simulator
// layers, and the conformance harness itself. Bumping any of them turns
// every cached conformance cell into a structural miss, so CI
// re-certifies abstraction soundness cold exactly when a model changed.
func ConformFingerprint() string {
	return strings.Join([]string{
		absmodel.ModelVersion,
		nonintf.ModelVersion,
		hw.ModelVersion,
		kernel.ModelVersion,
		channel.EstimatorVersion,
		attacks.HarnessVersion,
		conform.HarnessVersion,
	}, "|")
}

// conformCellKey derives the store key for one conformance cell.
func conformCellKey(c ConformanceCell) store.Key {
	return store.ConformSpec{
		Fingerprint: ConformFingerprint(),
		Model:       c.Model,
		Ablation:    c.Ablation,
		Cfg:         c.Cfg,
		Prot:        c.Prot,
		Pair:        c.Pair,
		PairSeed:    c.PairSeed,
		Rounds:      c.Rounds,
		Families:    c.Families,
		Seed:        c.Seed,
	}.Key()
}

// proofCellKey derives the store key for one proof cell.
func proofCellKey(c ProofCell) store.Key {
	return store.ProofSpec{
		Fingerprint: ProverFingerprint(),
		Ablation:    c.Ablation,
		Model:       c.Model,
		Cfg:         c.Cfg,
		Families:    c.Families,
		Random:      c.Random,
		Seed:        c.Seed,
	}.Key()
}

// cellKey derives the store key for one cell of the matrix. It reports
// false when the cell does not resolve against the registry (such cells
// fail in the runner and are never cached).
func cellKey(c Cell) (store.Key, bool) {
	s, ok := attacks.ScenarioByID(c.ScenarioID)
	if !ok {
		return store.Key{}, false
	}
	v, ok := s.VariantByLabel(c.Variant)
	if !ok {
		return store.Key{}, false
	}
	return store.Spec{
		Fingerprint:     Fingerprint(),
		ScenarioID:      s.ID,
		ScenarioVersion: s.Version,
		Variant:         v.Label,
		Config:          v.Prot,
		Rounds:          c.Rounds,
		ReqRounds:       c.ReqRounds,
		CIHalfWidth:     c.CIHalfWidth,
		MaxRounds:       c.MaxRounds,
		BaseSeed:        c.BaseSeed,
		Trial:           c.Trial,
		Seed:            c.Seed,
	}.Key(), true
}
