package experiment

import (
	"fmt"

	"timeprot/internal/attacks"
	"timeprot/internal/experiment/store"
)

// This file is the engine surface an external scheduler needs — the
// sweep service (internal/serve) schedules cells itself, across jobs,
// so it must be able to key, partition, and execute single cells with
// exactly the semantics Run/RunProofMatrix/RunConformance use
// internally. Everything here is a thin export of the runners' own
// helpers: there is one keying function, one executor, and one group
// partition per cell kind, shared by the in-process runners and the
// service, so the two can never drift.

// CellKey derives the store key for one attack cell. It reports false
// when the cell does not resolve against the scenario registry (such
// cells fail in the runner and are never cached).
func CellKey(c Cell) (store.Key, bool) { return cellKey(c) }

// ProofKey derives the store key for one proof cell.
func ProofKey(c ProofCell) store.Key { return proofCellKey(c) }

// ConformKey derives the store key for one conformance cell.
func ConformKey(c ConformanceCell) store.Key { return conformCellKey(c) }

// ExecuteCell executes one attack cell on the given reusable context
// (nil cc runs the fresh, context-free path) and returns the measured
// row — the exact value Run writes to the store. Runner panics surface
// as errors; a failed cell has no row and must not be cached.
func ExecuteCell(cc *attacks.CellContext, c Cell) (attacks.Row, error) {
	res := runCell(cc, c)
	if res.Err != "" {
		return attacks.Row{}, fmt.Errorf("experiment: cell %s/%s (seed %d): %s", c.ScenarioID, c.Variant, c.Seed, res.Err)
	}
	return res.Row(), nil
}

// ExecuteProofCell executes one proof cell and returns its stored form
// — the exact envelope RunProofMatrix writes to the store.
func ExecuteProofCell(c ProofCell) (store.ProofV1, error) {
	res := runProofCell(c)
	if res.Err != "" {
		return store.ProofV1{}, fmt.Errorf("experiment: proof cell %s/%s (seed %d): %s", c.Model, c.Ablation, c.Seed, res.Err)
	}
	return encodeProofCell(res), nil
}

// ExecuteConformCell executes one conformance cell and returns its
// stored form — the exact envelope RunConformance writes to the store.
func ExecuteConformCell(c ConformanceCell) (store.ConformV1, error) {
	res := runConformCell(c)
	if res.Err != "" {
		return store.ConformV1{}, fmt.Errorf("experiment: conformance cell %s/%s pair %d (seed %d): %s", c.Model, c.Ablation, c.Pair, c.Seed, res.Err)
	}
	return encodeConformCell(res), nil
}

// FinalizationGroups partitions an attack-cell matrix into its
// contiguous finalisation groups — the unit the shard partition uses
// and the only safe work-stealing granule: cross-row post-processing
// needs every variant row of a (scenario, seed, trial) group, so a
// scheduler that splits a group could starve a cell it later needs.
func FinalizationGroups(cells []Cell) [][]Cell {
	var out [][]Cell
	for start := 0; start < len(cells); {
		end := start + 1
		for end < len(cells) && sameGroup(cells[end], cells[start]) {
			end++
		}
		out = append(out, cells[start:end:end])
		start = end
	}
	return out
}

// ShardCells returns one shard of the matrix's deterministic
// finalisation-group partition, preserving full-matrix indices — the
// exact subset Run executes under Options.Shard.
func ShardCells(cells []Cell, sh ShardSel) ([]Cell, error) { return shardCells(cells, sh) }

// ShardProofCells returns one shard of the proof matrix's deterministic
// per-cell partition — the exact subset RunProofMatrix executes under
// ProofOptions.Shard.
func ShardProofCells(cells []ProofCell, sh ShardSel) ([]ProofCell, error) {
	return shardProofCells(cells, sh)
}

// ShardConformCells returns one shard of the conformance matrix's
// deterministic per-cell partition — the exact subset RunConformance
// executes under ConformanceOptions.Shard.
func ShardConformCells(cells []ConformanceCell, sh ShardSel) ([]ConformanceCell, error) {
	return shardConformCells(cells, sh)
}

// SweepProofSpec returns the proof matrix a sweep with Spec.Proofs runs
// for its T1 section, so an external scheduler can pre-execute (and
// dedup) the proof cells a sweep job will consume at assembly time.
func SweepProofSpec(s Spec) ProofSpec {
	s = s.normalized()
	return sweepProofSpec(s.ProofFamilies, s.ProofRandom, firstSeed(s))
}
