package experiment

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"timeprot/internal/experiment/store"
)

var update = flag.Bool("update", false, "rewrite the committed golden sweep output")

// goldenSpec is the canonical small sweep committed as a regression
// anchor: T4 exercises the capacity-estimator path, T11 the
// trace-analysis path, and T12 cross-row finalisation — together the
// three shapes of cell a store must round-trip exactly.
func goldenSpec() Spec {
	return Spec{
		Scenarios: []string{"T4", "T11", "T12"},
		Rounds:    20,
		Seeds:     []uint64{11},
	}
}

const goldenPath = "testdata/golden_sweep.json"

// renderJSON serialises a report exactly as tpbench -out does.
func renderJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderMarkdown(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// goldenBackends are the store backends every golden invariant must
// hold on: the reports' bytes may not depend on the store layout.
var goldenBackends = []string{store.BackendFile, store.BackendPacked}

// openBackendStore opens a fresh store of the named backend, tagged
// with the real engine fingerprints exactly as the CLIs tag it.
func openBackendStore(t *testing.T, backend string) store.CellStore {
	t.Helper()
	st, err := store.OpenBackend(backend, t.TempDir(), store.PackedOptions{
		CellTag:    Fingerprint(),
		ProofTag:   ProverFingerprint(),
		ConformTag: ConformFingerprint(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func runGolden(t *testing.T, opt Options) (*Report, CacheStats) {
	t.Helper()
	var stats CacheStats
	opt.Stats = &stats
	rep, err := Run(goldenSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep, stats
}

// TestGoldenSweep is the golden-trace regression test of the store
// subsystem, run on BOTH backends: a cold run, a warm run (100% cache
// hits), and a 2-way sharded-then-merged run must all reproduce the
// committed JSON output byte for byte.
func TestGoldenSweep(t *testing.T) {
	for _, backend := range goldenBackends {
		t.Run(backend, func(t *testing.T) {
			st := openBackendStore(t, backend)

			// Cold run: everything executes, everything is stored.
			cold, stats := runGolden(t, Options{Store: st})
			coldJSON := renderJSON(t, cold)
			if stats.Hits != 0 || stats.Executed != stats.Total || stats.Stored != stats.Total {
				t.Fatalf("cold run stats: %+v", stats)
			}

			if *update && backend == store.BackendFile {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, coldJSON, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/experiment -run TestGoldenSweep -update` after an intentional engine change)", err)
			}
			if !bytes.Equal(coldJSON, golden) {
				t.Fatalf("cold run diverges from the committed golden output — an engine change altered results; if intentional, bump the responsible model version and regenerate with -update")
			}

			// Warm run: zero executions, identical bytes — including
			// the Markdown rendering, which exercises the raw rows
			// behind the JSON.
			warm, wstats := runGolden(t, Options{Store: st})
			if wstats.Hits != wstats.Total || wstats.Executed != 0 || wstats.Stored != 0 {
				t.Fatalf("warm run not fully cached: %+v", wstats)
			}
			if !bytes.Equal(renderJSON(t, warm), golden) {
				t.Fatal("warm run JSON differs from cold run")
			}
			if !bytes.Equal(renderMarkdown(t, warm), renderMarkdown(t, cold)) {
				t.Fatal("warm run Markdown differs from cold run")
			}

			// Sharded cold runs into independent stores, merged, then
			// a warm full run over the merged store: same bytes again.
			s0, s1 := openBackendStore(t, backend), openBackendStore(t, backend)
			rep0, st0 := runGolden(t, Options{Store: s0, Shard: ShardSel{Index: 0, Count: 2}})
			rep1, st1 := runGolden(t, Options{Store: s1, Shard: ShardSel{Index: 1, Count: 2}})
			if st0.Executed == 0 || st1.Executed == 0 {
				t.Fatalf("both shards must execute something: %+v %+v", st0, st1)
			}
			assertShardPartition(t, cold, rep0, rep1)

			// The shard stores are merged across a Close (the packed
			// backend reads its own layout back from disk, not from
			// live state).
			if err := s0.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s1.Close(); err != nil {
				t.Fatal(err)
			}
			merged := openBackendStore(t, backend)
			if _, err := merged.MergeFrom(s0.Dir()); err != nil {
				t.Fatal(err)
			}
			if _, err := merged.MergeFrom(s1.Dir()); err != nil {
				t.Fatal(err)
			}
			full, mstats := runGolden(t, Options{Store: merged})
			if mstats.Hits != mstats.Total || mstats.Executed != 0 {
				t.Fatalf("merged warm run not fully cached: %+v", mstats)
			}
			if !bytes.Equal(renderJSON(t, full), golden) {
				t.Fatal("sharded-then-merged run differs from cold run")
			}
		})
	}
}

// TestGoldenSweepCrossBackendMerge is the migration gate: a store
// filled on one backend, merged into the other, must serve a fully
// warm run with byte-identical output — in both directions, through
// tpstore-style migration (MergeFrom across layouts).
func TestGoldenSweepCrossBackendMerge(t *testing.T) {
	// Cold-fill a file store.
	fileSt := openBackendStore(t, store.BackendFile)
	cold, _ := runGolden(t, Options{Store: fileSt})
	coldJSON := renderJSON(t, cold)

	// file → packed: pack the file store, run warm.
	packedSt := openBackendStore(t, store.BackendPacked)
	if _, err := packedSt.MergeFrom(fileSt.Dir()); err != nil {
		t.Fatal(err)
	}
	warmP, pstats := runGolden(t, Options{Store: packedSt})
	if pstats.Hits != pstats.Total || pstats.Executed != 0 {
		t.Fatalf("packed store not fully warm after file→packed merge: %+v", pstats)
	}
	if !bytes.Equal(renderJSON(t, warmP), coldJSON) {
		t.Fatal("file→packed migration changed report bytes")
	}

	// packed → file: unpack into a fresh file store (across a Close so
	// the merge reads the on-disk segments), run warm.
	if err := packedSt.Close(); err != nil {
		t.Fatal(err)
	}
	fileSt2 := openBackendStore(t, store.BackendFile)
	if _, err := fileSt2.MergeFrom(packedSt.Dir()); err != nil {
		t.Fatal(err)
	}
	warmF, fstats := runGolden(t, Options{Store: fileSt2})
	if fstats.Hits != fstats.Total || fstats.Executed != 0 {
		t.Fatalf("file store not fully warm after packed→file merge: %+v", fstats)
	}
	if !bytes.Equal(renderJSON(t, warmF), coldJSON) {
		t.Fatal("packed→file migration changed report bytes")
	}
}

// assertShardPartition checks the shard contract on actual reports:
// disjoint cells, union equal to the full matrix, full-matrix indices
// preserved, and per-cell results identical to the unsharded run.
func assertShardPartition(t *testing.T, full *Report, shards ...*Report) {
	t.Helper()
	byIndex := make(map[int]CellResult)
	for _, sh := range shards {
		for _, c := range sh.Cells {
			if _, dup := byIndex[c.Index]; dup {
				t.Fatalf("cell %d appears in two shards", c.Index)
			}
			byIndex[c.Index] = c
		}
	}
	if len(byIndex) != len(full.Cells) {
		t.Fatalf("shards cover %d cells, full matrix has %d", len(byIndex), len(full.Cells))
	}
	for _, want := range full.Cells {
		got, ok := byIndex[want.Index]
		if !ok {
			t.Fatalf("cell %d missing from all shards", want.Index)
		}
		if got.Cell != want.Cell || got.CapacityBits != want.CapacityBits || got.SimOps != want.SimOps {
			t.Fatalf("sharded cell %d diverges:\nshard: %+v\nfull:  %+v", want.Index, got, want)
		}
	}
}

// TestShardCellsPartition checks the pure partition function across
// shard counts: disjoint, complete, group-respecting, deterministic.
func TestShardCellsPartition(t *testing.T) {
	spec := Spec{Scenarios: []string{"T2", "T4", "T12"}, Seeds: []uint64{1, 2}, Trials: 2}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	groupOf := func(c Cell) string {
		return fmt.Sprintf("%s/%d/%d", c.ScenarioID, c.BaseSeed, c.Trial)
	}
	for n := 1; n <= 5; n++ {
		var indices []int
		groupShard := make(map[string]int)
		for i := 0; i < n; i++ {
			part, err := shardCells(cells, ShardSel{Index: i, Count: n})
			if err != nil {
				t.Fatal(err)
			}
			again, _ := shardCells(cells, ShardSel{Index: i, Count: n})
			if len(again) != len(part) {
				t.Fatalf("shard %d/%d not deterministic", i, n)
			}
			for _, c := range part {
				indices = append(indices, c.Index)
				g := groupOf(c)
				if prev, ok := groupShard[g]; ok && prev != i {
					t.Fatalf("group %s split across shards %d and %d", g, prev, i)
				}
				groupShard[g] = i
			}
		}
		sort.Ints(indices)
		if len(indices) != len(cells) {
			t.Fatalf("%d shards cover %d cells, want %d", n, len(indices), len(cells))
		}
		for i, idx := range indices {
			if idx != i {
				t.Fatalf("%d shards: cell index %d duplicated or missing", n, idx)
			}
		}
	}
	if _, err := shardCells(cells, ShardSel{Index: 2, Count: 2}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := shardCells(cells, ShardSel{Index: -1, Count: 2}); err == nil {
		t.Fatal("negative shard index accepted")
	}
}

// TestShardZeroCarriesProofs: in a sharded run only shard 0 computes
// the T1 proof matrix — it is not cell-keyed, so per-shard recompute
// would duplicate identical work.
func TestShardZeroCarriesProofs(t *testing.T) {
	spec := Spec{Scenarios: []string{"T4"}, Rounds: 20, Proofs: true, ProofFamilies: 1, ProofRandom: 5}
	run := func(sh ShardSel) *Report {
		rep, err := Run(spec, Options{Shard: sh})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := run(ShardSel{Index: 0, Count: 2}); len(rep.Proofs) == 0 {
		t.Fatal("shard 0 must carry the proof matrix")
	}
	if rep := run(ShardSel{Index: 1, Count: 2}); len(rep.Proofs) != 0 {
		t.Fatal("shard 1 must not recompute the proof matrix")
	}
	if rep := run(ShardSel{}); len(rep.Proofs) == 0 {
		t.Fatal("unsharded run must carry the proof matrix")
	}
}

// TestStoreNeverCachesFailures: a failing cell is reported in the run
// but must not be written to the store.
func TestStoreNeverCachesFailures(t *testing.T) {
	st := openStore(t)
	// Drive runCell's failure path through the store-aware runner by
	// using a spec whose scenario resolves but whose execution panics:
	// there is no such registry scenario, so instead verify at the unit
	// level plus the store contents after a healthy run.
	var stats CacheStats
	rep, err := Run(Spec{Scenarios: []string{"T4"}, Rounds: 20, Seeds: []uint64{3}},
		Options{Store: st, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("unexpected cell failure: %+v", c)
		}
	}
	n, err := st.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != stats.Stored || n != len(rep.Cells) {
		t.Fatalf("store holds %d cells, stored=%d cells=%d", n, stats.Stored, len(rep.Cells))
	}
	// A cell that cannot execute produces no store entry: corrupt the
	// store dir path for one key and re-run — still no spurious writes
	// beyond the healthy cells.
	res := runCell(nil, Cell{ScenarioID: "T4", Variant: "not a variant"})
	if res.Err == "" {
		t.Fatal("bogus cell did not fail")
	}
	if _, ok := cellKey(Cell{ScenarioID: "T4", Variant: "not a variant"}); ok {
		t.Fatal("unresolvable cell produced a store key")
	}
}
