package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"timeprot/internal/attacks"
	"timeprot/internal/core"
	"timeprot/internal/hw/platform"
)

// Options tunes a sweep run without affecting its results.
type Options struct {
	// Parallelism is the worker count (<=0 = GOMAXPROCS). Results are
	// identical for any value; only wall-clock time changes.
	Parallelism int
	// Progress, when non-nil, is called after each completed cell with
	// the done count, the matrix size, and the finished cell. Calls
	// are serialised but arrive in completion order.
	Progress func(done, total int, c Cell)
}

// CellResult is one completed cell: its coordinates plus the flattened
// measurement. Float fields that can be NaN (a scenario without a
// decoder has no error rate) are pointers so the struct serialises to
// valid JSON.
type CellResult struct {
	Cell
	// CapacityBits, FloorBits, and MIUniform summarise the channel
	// estimate; Leaks is the capacity-above-floor verdict.
	CapacityBits float64
	FloorBits    float64
	MIUniform    float64
	// N and Bins describe the estimate's sample set.
	N, Bins int
	// SimOps is the number of simulated thread operations the cell
	// executed — with wall-clock time (which the report deliberately
	// omits, to stay a pure function of the spec) it gives the sweep's
	// throughput. tpbench prints the aggregate ops/sec.
	SimOps uint64
	// ErrRate is the spy's decode error rate; nil when the scenario
	// has no decoder.
	ErrRate *float64 `json:",omitempty"`
	// Leaks reports whether the cell demonstrates a channel.
	Leaks bool
	// Extra carries scenario-specific metrics in insertion order.
	Extra []attacks.KV `json:",omitempty"`
	// Err records a runner failure (the cell's row is then zero).
	Err string `json:",omitempty"`

	// row is the raw measurement, kept for text rendering and
	// cross-row post-processing.
	row attacks.Row
}

// Row returns the raw measured row.
func (c CellResult) Row() attacks.Row { return c.row }

// fillFromRow flattens a measured row into the result's JSON fields.
func (c *CellResult) fillFromRow(row attacks.Row) {
	c.row = row
	c.CapacityBits = row.Est.CapacityBits
	c.FloorBits = row.Est.FloorBits
	c.MIUniform = row.Est.MIUniform
	c.N = row.Est.N
	c.Bins = row.Est.Bins
	c.SimOps = row.SimOps
	c.Leaks = row.Leaks()
	c.ErrRate = nil
	if !math.IsNaN(row.ErrRate) {
		v := row.ErrRate
		c.ErrRate = &v
	}
	c.Extra = nil
	for _, kv := range row.Extra {
		if math.IsNaN(kv.V) || math.IsInf(kv.V, 0) {
			continue // keep the JSON encodable
		}
		c.Extra = append(c.Extra, kv)
	}
}

// Report is a completed sweep: the spec, every cell in matrix order,
// and optionally the proof matrix and the aISA contract.
type Report struct {
	// Spec is the normalised specification that produced the report.
	Spec Spec
	// Cells are the results in matrix order (independent of worker
	// scheduling).
	Cells []CellResult
	// Proofs is the T1 proof-ablation matrix when Spec.Proofs is set.
	Proofs []ProofResult `json:",omitempty"`
	// Contract is the aISA contract check for full protection on the
	// default platform.
	Contract core.ContractReport
}

// TotalSimOps sums the simulated thread operations over every cell —
// the numerator of the sweep's throughput.
func (r *Report) TotalSimOps() uint64 {
	var total uint64
	for _, c := range r.Cells {
		total += c.SimOps
	}
	return total
}

// Run executes the sweep. The report depends only on the spec: worker
// count and scheduling cannot change a single bit of it.
func Run(spec Spec, opt Options) (*Report, error) {
	spec = spec.normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cells) {
		par = len(cells)
	}

	results := make([]CellResult, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runCell(cells[i])
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, len(cells), cells[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	finalizeGroups(results)

	rep := &Report{
		Spec:     spec,
		Cells:    results,
		Contract: defaultContract(),
	}
	if spec.Proofs {
		rep.Proofs = RunProofs(spec.ProofFamilies, spec.ProofRandom, firstSeed(spec), par)
	}
	return rep, nil
}

// runCell executes one cell, converting runner panics into per-cell
// errors so a bad scenario cannot take down the sweep.
func runCell(c Cell) (res CellResult) {
	res.Cell = c
	defer func() {
		if p := recover(); p != nil {
			res = CellResult{Cell: c, Err: fmt.Sprint(p)}
		}
	}()
	s, ok := attacks.ScenarioByID(c.ScenarioID)
	if !ok {
		res.Err = fmt.Sprintf("scenario %q not registered", c.ScenarioID)
		return res
	}
	v, ok := s.VariantByLabel(c.Variant)
	if !ok {
		res.Err = fmt.Sprintf("variant %q not in scenario %s", c.Variant, s.ID)
		return res
	}
	res.fillFromRow(v.Run(c.Rounds, c.Seed))
	return res
}

// finalizeGroups applies each scenario's cross-row post-processing
// (e.g. T12's slowdown-vs-baseline column) to every contiguous
// (scenario, seed) group of rows, in canonical variant order. Groups
// containing a failed cell are left untouched.
func finalizeGroups(results []CellResult) {
	for _, g := range cellGroups(results) {
		group := results[g.start:g.end]
		s, ok := attacks.ScenarioByID(group[0].ScenarioID)
		if ok {
			failed := false
			rows := make([]attacks.Row, len(group))
			for i, r := range group {
				if r.Err != "" {
					failed = true
					break
				}
				rows[i] = r.row
			}
			if !failed {
				rows = s.Finalize(rows)
				for i := range group {
					group[i].fillFromRow(rows[i])
				}
			}
		}
	}
}

// defaultContract checks the aISA for full protection on the default
// platform, mirroring the top-level CheckContract helper.
func defaultContract() core.ContractReport {
	p := platform.DefaultConfig()
	colors := p.LLCSets * 64 / 4096 // sets * line / page
	if colors < 1 {
		colors = 1
	}
	return core.CheckContract(core.FullProtection(), colors, p.SMTWays)
}

// firstSeed returns the sweep's first base seed, which also seeds the
// prover so one -seed flag controls the whole run.
func firstSeed(spec Spec) uint64 {
	if len(spec.Seeds) > 0 {
		return spec.Seeds[0]
	}
	return 42
}
