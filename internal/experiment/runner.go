package experiment

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"timeprot/internal/attacks"
	"timeprot/internal/core"
	"timeprot/internal/experiment/store"
	"timeprot/internal/hw/platform"
)

// Options tunes a sweep run. Parallelism, Store, Progress, and Stats
// never affect the report's bytes — a warm, fully cached run emits
// output identical to a cold run. Shard restricts the run to a subset
// of the matrix and therefore produces a partial report.
type Options struct {
	// Parallelism is the worker count (<=0 = GOMAXPROCS). Results are
	// identical for any value; only wall-clock time changes.
	Parallelism int
	// Progress, when non-nil, is called after each completed cell with
	// the done count, the matrix size, and the finished cell. Calls
	// are serialised but arrive in completion order (cache hits
	// complete first, in matrix order).
	Progress func(done, total int, c Cell)
	// Store, when non-nil, is the content-addressed result store the
	// run consults before executing anything: cells whose key is
	// present are served from it, only the missing cells execute, and
	// fresh non-failed results are written back. Failed cells (Err set)
	// are never cached.
	Store store.CellStore
	// Shard restricts the run to one shard of the matrix's
	// deterministic partition; the zero value runs the whole matrix.
	// See ShardSel.
	Shard ShardSel
	// Stats, when non-nil, receives the run's cache statistics. The
	// stats are an out-of-band channel precisely so that they never
	// appear in the report (whose bytes must not depend on cache
	// state).
	Stats *CacheStats
	// Context, when non-nil, scopes the run to a job: once it is
	// cancelled no further cells are dispatched, in-flight cells finish
	// (and their results are written back, so no completed work is
	// lost), and Run returns the context's error instead of a report.
	Context context.Context
}

// cancelled reports whether an optional job context has been cancelled.
func cancelled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// ctxDone returns the context's done channel, or nil (blocks forever in
// a select) when no context was given.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// CacheStats summarises how a run interacted with its store.
type CacheStats struct {
	// Total is the number of cells in this run's (possibly sharded)
	// matrix.
	Total int
	// Hits is how many cells were served from the store.
	Hits int
	// Executed is how many cells actually ran.
	Executed int
	// Stored is how many fresh results were written back to the store.
	Stored int
	// ProofTotal, ProofHits, ProofExecuted, and ProofStored are the
	// same counters for the run's proof cells (a sweep with
	// Spec.Proofs, or a RunProofMatrix call). Proof cells are counted
	// separately so -warm-only can assert both matrices independently.
	ProofTotal    int
	ProofHits     int
	ProofExecuted int
	ProofStored   int
	// FailedPuts counts write-backs that failed (e.g. a full disk).
	// A store write failure never fails the run — the report does not
	// need the store — but the affected cells will re-execute next
	// time; FailedPut holds the first error for diagnostics.
	FailedPuts int
	FailedPut  string
}

// ShardSel selects one shard of the deterministic partition of a sweep
// matrix, for spreading a large matrix across independent processes or
// machines whose stores are then merged. The zero value disables
// sharding. The partition unit is the finalisation group — a contiguous
// (scenario, base seed, trial) run of variant cells — never a bare
// cell, so cross-row post-processing (e.g. T12's slowdown column)
// always sees its complete group inside one shard. Shards are
// deterministic functions of the spec: the same (Index, Count) always
// selects the same cells, shards are disjoint, and their union over
// Index 0..Count-1 is the full matrix. When the spec requests the T1
// proof matrix, only shard 0 computes it.
type ShardSel struct {
	// Index is the shard to run, in [0, Count).
	Index int
	// Count is the total number of shards; <= 0 disables sharding.
	Count int
}

// shardCells returns the cells of one shard, preserving full-matrix
// cell indices (a sharded report's cells keep their canonical
// coordinates, which is what lets shard outputs merge).
func shardCells(cells []Cell, sh ShardSel) ([]Cell, error) {
	if sh.Count <= 0 {
		return cells, nil
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return nil, fmt.Errorf("experiment: shard index %d out of range [0,%d)", sh.Index, sh.Count)
	}
	var out []Cell
	group := -1
	for i, c := range cells {
		if i == 0 || !sameGroup(c, cells[i-1]) {
			group++
		}
		if group%sh.Count == sh.Index {
			out = append(out, c)
		}
	}
	return out, nil
}

// CellResult is one completed cell: its coordinates plus the flattened
// measurement. Float fields that can be NaN (a scenario without a
// decoder has no error rate) are pointers so the struct serialises to
// valid JSON.
type CellResult struct {
	Cell
	// CapacityBits, FloorBits, and MIUniform summarise the channel
	// estimate; Leaks is the capacity-above-floor verdict.
	CapacityBits float64
	FloorBits    float64
	MIUniform    float64
	// CILow and CIHigh bound the 95% bootstrap confidence interval on
	// CapacityBits — the adaptive sampler's convergence measure.
	CILow, CIHigh float64
	// EffRounds is the effective rounds behind the estimate (the
	// converged adaptive rung, or the fixed rounds). RoundsRun is the
	// total rounds simulated to get there, summed over adaptive rungs.
	EffRounds, RoundsRun int
	// N and Bins describe the estimate's sample set.
	N, Bins int
	// SimOps is the number of simulated thread operations the cell
	// executed — with wall-clock time (which the report deliberately
	// omits, to stay a pure function of the spec) it gives the sweep's
	// throughput. tpbench prints the aggregate ops/sec.
	SimOps uint64
	// ErrRate is the spy's decode error rate; nil when the scenario
	// has no decoder.
	ErrRate *float64 `json:",omitempty"`
	// Leaks reports whether the cell demonstrates a channel.
	Leaks bool
	// Extra carries scenario-specific metrics in insertion order.
	Extra []attacks.KV `json:",omitempty"`
	// Err records a runner failure (the cell's row is then zero).
	Err string `json:",omitempty"`

	// row is the raw measurement, kept for text rendering and
	// cross-row post-processing.
	row attacks.Row
}

// Row returns the raw measured row.
func (c CellResult) Row() attacks.Row { return c.row }

// fillFromRow flattens a measured row into the result's JSON fields.
func (c *CellResult) fillFromRow(row attacks.Row) {
	c.row = row
	c.CapacityBits = row.Est.CapacityBits
	c.FloorBits = row.Est.FloorBits
	c.MIUniform = row.Est.MIUniform
	c.CILow = row.Est.CILow
	c.CIHigh = row.Est.CIHigh
	c.EffRounds = row.Rounds
	c.RoundsRun = row.RoundsRun
	c.N = row.Est.N
	c.Bins = row.Est.Bins
	c.SimOps = row.SimOps
	c.Leaks = row.Leaks()
	c.ErrRate = nil
	if !math.IsNaN(row.ErrRate) {
		v := row.ErrRate
		c.ErrRate = &v
	}
	c.Extra = nil
	for _, kv := range row.Extra {
		if math.IsNaN(kv.V) || math.IsInf(kv.V, 0) {
			continue // keep the JSON encodable
		}
		c.Extra = append(c.Extra, kv)
	}
}

// Report is a completed sweep: the spec, every cell in matrix order,
// and optionally the proof matrix and the aISA contract.
type Report struct {
	// Spec is the normalised specification that produced the report.
	Spec Spec
	// Cells are the results in matrix order (independent of worker
	// scheduling). In a sharded run this is the shard's subset, with
	// full-matrix indices.
	Cells []CellResult
	// Proofs is the T1 proof-ablation matrix when Spec.Proofs is set.
	Proofs []ProofResult `json:",omitempty"`
	// Contract is the aISA contract check for full protection on the
	// default platform.
	Contract core.ContractReport
}

// TotalSimOps sums the simulated thread operations over every cell —
// the numerator of the sweep's throughput. Cache-served cells report
// the ops of the run that originally produced them.
func (r *Report) TotalSimOps() uint64 {
	var total uint64
	for _, c := range r.Cells {
		total += c.SimOps
	}
	return total
}

// TotalRounds sums the rounds the sweep actually simulated (RoundsRun,
// including discarded adaptive rungs) and the rounds the same matrix
// would simulate under the fixed policy — the adaptive sampler's
// savings. Failed cells count as their fixed rounds on both sides.
func (r *Report) TotalRounds() (run, fixed int) {
	for _, c := range r.Cells {
		fixed += c.Cell.Rounds
		if c.Err != "" || c.RoundsRun == 0 {
			run += c.Cell.Rounds
			continue
		}
		run += c.RoundsRun
	}
	return run, fixed
}

// Run executes the sweep. The report depends only on the spec (and, for
// sharded runs, the shard selection): worker count, cache state, and
// scheduling cannot change a single bit of it.
func Run(spec Spec, opt Options) (*Report, error) {
	spec = spec.normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	cells, err = shardCells(cells, opt.Shard)
	if err != nil {
		return nil, err
	}

	stats := CacheStats{Total: len(cells)}
	results := make([]CellResult, len(cells))
	keys := make([]store.Key, len(cells))
	keyOK := make([]bool, len(cells))

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// The proof matrix keeps the full parallelism even when the cell
	// pool has little or nothing to execute (a warm run).
	proofPar := par

	// Probe the store concurrently — a warm run over a huge matrix is
	// bounded by these reads, not by execution — then fill the hits in
	// matrix order so Progress and pending stay deterministic.
	hitRows := make([]*attacks.Row, len(cells))
	if opt.Store != nil {
		probe := make(chan int)
		var pwg sync.WaitGroup
		for w := 0; w < par; w++ {
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				for i := range probe {
					keys[i], keyOK[i] = cellKey(cells[i])
					if keyOK[i] {
						if row, ok := opt.Store.Get(keys[i]); ok {
							r := row
							hitRows[i] = &r
						}
					}
				}
			}()
		}
		for i := range cells {
			probe <- i
		}
		close(probe)
		pwg.Wait()
	}

	done := 0
	var pending []int
	for i, c := range cells {
		if hitRows[i] != nil {
			results[i].Cell = c
			results[i].fillFromRow(*hitRows[i])
			stats.Hits++
			done++
			if opt.Progress != nil {
				opt.Progress(done, len(cells), c)
			}
			continue
		}
		pending = append(pending, i)
	}
	stats.Executed = len(pending)

	if par > len(pending) {
		par = len(pending)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one reusable cell context: machines,
			// logs, and scratch are recycled across its cells. Contexts
			// are never shared, so results stay deterministic and
			// bit-identical to context-free execution.
			cc := attacks.NewCellContext()
			for i := range jobs {
				results[i] = runCell(cc, cells[i])
				// Write back before finalisation: the store holds the
				// pure per-cell measurement; cross-row metrics are
				// recomputed (deterministically) at report time. A
				// failed write degrades to a re-executable miss — it
				// never fails the run, which has the result in hand.
				var stored bool
				var err error
				if opt.Store != nil && keyOK[i] && results[i].Err == "" {
					err = opt.Store.Put(keys[i], results[i].row)
					stored = err == nil
				}
				mu.Lock()
				if err != nil {
					stats.FailedPuts++
					if stats.FailedPut == "" {
						stats.FailedPut = err.Error()
					}
				}
				if stored {
					stats.Stored++
				}
				done++
				if opt.Progress != nil {
					opt.Progress(done, len(cells), cells[i])
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case jobs <- i:
		case <-ctxDone(opt.Context):
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled(opt.Context) {
		return nil, opt.Context.Err()
	}

	finalizeGroups(results)

	rep := &Report{
		Spec:     spec,
		Cells:    results,
		Contract: defaultContract(),
	}
	// In a sharded run only shard 0 carries the proof matrix (shards
	// partition the attack matrix; recomputing proofs per shard would
	// duplicate identical work Count times). Proof cells ARE
	// content-keyed, so the run's store serves and receives them like
	// attack cells — a warm sweep executes zero proofs too.
	if spec.Proofs && (opt.Shard.Count <= 1 || opt.Shard.Index == 0) {
		var pstats CacheStats
		pm, err := RunProofMatrix(
			sweepProofSpec(spec.ProofFamilies, spec.ProofRandom, firstSeed(spec)),
			ProofOptions{Parallelism: proofPar, Store: opt.Store, Stats: &pstats, Context: opt.Context})
		if err != nil {
			return nil, err
		}
		rep.Proofs = legacyProofResults(pm)
		stats.ProofTotal = pstats.Total
		stats.ProofHits = pstats.Hits
		stats.ProofExecuted = pstats.Executed
		stats.ProofStored = pstats.Stored
		stats.FailedPuts += pstats.FailedPuts
		if stats.FailedPut == "" {
			stats.FailedPut = pstats.FailedPut
		}
	}
	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return rep, nil
}

// runCell executes one cell on the worker's reusable context,
// converting runner panics into per-cell errors so a bad scenario
// cannot take down the sweep. A panicked cell leaves cc safe to reuse:
// RunIn releases its machines on the way out, and the next run rewinds
// every scratch buffer before touching it.
func runCell(cc *attacks.CellContext, c Cell) (res CellResult) {
	res.Cell = c
	defer func() {
		if p := recover(); p != nil {
			res = CellResult{Cell: c, Err: fmt.Sprint(p)}
		}
	}()
	s, ok := attacks.ScenarioByID(c.ScenarioID)
	if !ok {
		res.Err = fmt.Sprintf("scenario %q not registered", c.ScenarioID)
		return res
	}
	v, ok := s.VariantByLabel(c.Variant)
	if !ok {
		res.Err = fmt.Sprintf("variant %q not in scenario %s", c.Variant, s.ID)
		return res
	}
	res.fillFromRow(runVariant(s, v, c, cc))
	return res
}

// finalizeGroups applies each scenario's cross-row post-processing
// (e.g. T12's slowdown-vs-baseline column) to every contiguous
// (scenario, seed) group of rows, in canonical variant order. Groups
// containing a failed cell are left untouched.
func finalizeGroups(results []CellResult) {
	for _, g := range cellGroups(results) {
		group := results[g.start:g.end]
		s, ok := attacks.ScenarioByID(group[0].ScenarioID)
		if ok {
			failed := false
			rows := make([]attacks.Row, len(group))
			for i, r := range group {
				if r.Err != "" {
					failed = true
					break
				}
				rows[i] = r.row
			}
			if !failed {
				rows = s.Finalize(rows)
				for i := range group {
					group[i].fillFromRow(rows[i])
				}
			}
		}
	}
}

// defaultContract checks the aISA for full protection on the default
// platform, mirroring the top-level CheckContract helper.
func defaultContract() core.ContractReport {
	p := platform.DefaultConfig()
	colors := p.LLCSets * 64 / 4096 // sets * line / page
	if colors < 1 {
		colors = 1
	}
	return core.CheckContract(core.FullProtection(), colors, p.SMTWays)
}

// firstSeed returns the sweep's first base seed, which also seeds the
// prover so one -seed flag controls the whole run.
func firstSeed(spec Spec) uint64 {
	if len(spec.Seeds) > 0 {
		return spec.Seeds[0]
	}
	return 42
}
