package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenProofSpec is the canonical small proof matrix committed as a
// regression anchor: one proved cell and six refuted cells (with
// witnesses) over the base model — every verdict and witness shape a
// store must round-trip exactly.
func goldenProofSpec() ProofSpec {
	return ProofSpec{
		Models:   []string{"base"},
		Families: []int{1},
		Random:   10,
		Seeds:    []uint64{11},
	}
}

const goldenProofsPath = "testdata/golden_proofs.json"

func renderProofsJSON(t *testing.T, m *ProofMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProofsJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderProofsMarkdown(t *testing.T, m *ProofMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProofsMarkdown(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func runGoldenProofs(t *testing.T, opt ProofOptions) (*ProofMatrix, CacheStats) {
	t.Helper()
	var stats CacheStats
	opt.Stats = &stats
	m, err := RunProofMatrix(goldenProofSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

// TestGoldenProofMatrix is the golden-trace regression test of the
// proof-matrix engine, run on BOTH store backends: a cold run, a warm
// run (100% cache hits), and a 4-way sharded-then-merged run must all
// reproduce the committed JSON output byte for byte — the proof-side
// mirror of TestGoldenSweep.
func TestGoldenProofMatrix(t *testing.T) {
	for _, backend := range goldenBackends {
		t.Run(backend, func(t *testing.T) {
			st := openBackendStore(t, backend)

			cold, stats := runGoldenProofs(t, ProofOptions{Store: st})
			coldJSON := renderProofsJSON(t, cold)
			if stats.Hits != 0 || stats.Executed != stats.Total || stats.Stored != stats.Total {
				t.Fatalf("cold run stats: %+v", stats)
			}

			if *update && backend == "file" {
				if err := os.MkdirAll(filepath.Dir(goldenProofsPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenProofsPath, coldJSON, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(goldenProofsPath)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/experiment -run TestGoldenProofMatrix -update` after an intentional prover change)", err)
			}
			if !bytes.Equal(coldJSON, golden) {
				t.Fatalf("cold run diverges from the committed golden output — a prover change altered verdicts or witnesses; if intentional, bump the responsible prove/* model version and regenerate with -update")
			}

			// Warm run: zero executions, identical bytes — including
			// the Markdown rendering, which exercises the
			// reconstructed reports.
			warm, wstats := runGoldenProofs(t, ProofOptions{Store: st})
			if wstats.Hits != wstats.Total || wstats.Executed != 0 || wstats.Stored != 0 {
				t.Fatalf("warm run not fully cached: %+v", wstats)
			}
			if !bytes.Equal(renderProofsJSON(t, warm), golden) {
				t.Fatal("warm run JSON differs from cold run")
			}
			if !bytes.Equal(renderProofsMarkdown(t, warm), renderProofsMarkdown(t, cold)) {
				t.Fatal("warm run Markdown differs from cold run")
			}

			// 4-way sharded cold runs into independent stores, merged
			// across a Close, then a warm full run over the merged
			// store: same bytes again.
			shardStores := make([]string, 4)
			for i := 0; i < 4; i++ {
				s := openBackendStore(t, backend)
				shardStores[i] = s.Dir()
				_, st := runGoldenProofs(t, ProofOptions{Store: s, Shard: ShardSel{Index: i, Count: 4}})
				if st.Executed == 0 {
					t.Fatalf("shard %d executed nothing", i)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
			merged := openBackendStore(t, backend)
			for _, dir := range shardStores {
				if _, err := merged.MergeFrom(dir); err != nil {
					t.Fatal(err)
				}
			}
			full, mstats := runGoldenProofs(t, ProofOptions{Store: merged})
			if mstats.Hits != mstats.Total || mstats.Executed != 0 {
				t.Fatalf("merged warm run not fully cached: %+v", mstats)
			}
			if !bytes.Equal(renderProofsJSON(t, full), golden) {
				t.Fatal("sharded-then-merged run differs from cold run")
			}
		})
	}
}

// TestProofShardPartition checks the proof-cell partition: disjoint,
// complete, index-preserving, deterministic.
func TestProofShardPartition(t *testing.T) {
	cells, err := ProofSpec{Families: []int{1, 2}, Seeds: []uint64{1, 2}}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			part, err := shardProofCells(cells, ShardSel{Index: i, Count: n})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range part {
				if seen[c.Index] {
					t.Fatalf("%d shards: cell %d duplicated", n, c.Index)
				}
				seen[c.Index] = true
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("%d shards cover %d cells, want %d", n, len(seen), len(cells))
		}
	}
	if _, err := shardProofCells(cells, ShardSel{Index: 2, Count: 2}); err == nil {
		t.Fatal("out-of-range proof shard index accepted")
	}
}

// TestProofMatrixModelVariants: the paper's verdict structure holds on
// every registered model variant — full protection proves, every
// ablation refutes with a witness.
func TestProofMatrixModelVariants(t *testing.T) {
	m, err := RunProofMatrix(ProofSpec{Families: []int{1}, Random: 10}, ProofOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := len(ProofAblations()) * len(ProofModels())
	if len(m.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(m.Cells), want)
	}
	for _, c := range m.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s/%s failed: %s", c.Model, c.Ablation, c.Err)
		}
		if c.Ablation == "full protection" {
			if !c.Proved {
				t.Errorf("%s/full protection must prove", c.Model)
			}
			if c.Witness != nil {
				t.Errorf("%s/full protection carries a witness", c.Model)
			}
			continue
		}
		if c.Proved {
			t.Errorf("%s/%s must refute", c.Model, c.Ablation)
		}
		if !c.BoundedProved && c.Witness == nil {
			t.Errorf("%s/%s refuted by bounded-NI without a witness", c.Model, c.Ablation)
		}
	}
}

// TestProofSpecErrors: unknown selectors are rejected with the
// available names listed.
func TestProofSpecErrors(t *testing.T) {
	if _, err := (ProofSpec{Models: []string{"nope"}}).Cells(); err == nil ||
		!strings.Contains(err.Error(), "base") {
		t.Fatalf("unknown model not rejected usefully: %v", err)
	}
	if _, err := (ProofSpec{Ablations: []string{"nope"}}).Cells(); err == nil ||
		!strings.Contains(err.Error(), "no flush") {
		t.Fatalf("unknown ablation not rejected usefully: %v", err)
	}
}

// TestSweepWarmProofs: a sweep with proofs over a store serves its
// proof cells warm on the second run, and both runs render identical
// reports.
func TestSweepWarmProofs(t *testing.T) {
	st := openStore(t)
	spec := Spec{Scenarios: []string{"T4"}, Rounds: 20, Proofs: true, ProofFamilies: 1, ProofRandom: 5}
	var cold CacheStats
	crep, err := Run(spec, Options{Store: st, Stats: &cold})
	if err != nil {
		t.Fatal(err)
	}
	if cold.ProofTotal == 0 || cold.ProofExecuted != cold.ProofTotal || cold.ProofStored != cold.ProofTotal {
		t.Fatalf("cold proof stats: %+v", cold)
	}
	var warm CacheStats
	wrep, err := Run(spec, Options{Store: st, Stats: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ProofExecuted != 0 || warm.ProofHits != warm.ProofTotal {
		t.Fatalf("warm proof stats: %+v", warm)
	}
	if !bytes.Equal(renderJSON(t, crep), renderJSON(t, wrep)) {
		t.Fatal("warm sweep JSON differs from cold")
	}
	if !bytes.Equal(renderMarkdown(t, crep), renderMarkdown(t, wrep)) {
		t.Fatal("warm sweep Markdown differs from cold")
	}
}
