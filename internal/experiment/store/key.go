// Package store is the sweep engine's content-addressed result store:
// a directory of cell results keyed by a stable hash of everything a
// cell's measurement depends on — the engine fingerprint (the
// registered model version of each simulator layer), the scenario's
// identity and version tag, the mitigation variant and its protection
// configuration, and the cell's (rounds, seed) point.
//
// The store is what makes huge experiment matrices incremental and
// embarrassingly parallel. Because every cell is a pure function of its
// key inputs (the engine's determinism contract), a stored result can
// be served instead of recomputed, shards of a matrix can execute on
// independent machines and their stores merge associatively (same key
// ⇒ same bytes), and any semantic change to a simulator layer changes
// the fingerprint, which changes every key, which turns the whole store
// into misses — the automated proof-maintenance discipline of §5,
// applied to the empirical side of the programme.
//
// Robustness contract: a corrupt, truncated, or foreign store file is
// a miss, never a served result. Writes are atomic (temp file + rename
// within the shard directory), so concurrent writers — including
// sharded sweeps pointed at one directory — cannot tear each other's
// cells.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"strings"

	"timeprot/internal/core"
	"timeprot/internal/prove/absmodel"
)

// Spec identifies one cell execution for keying: every input that can
// influence the cell's measured row. Two Specs that differ in any field
// produce different keys; identical Specs produce byte-identical keys
// in any process.
type Spec struct {
	// Fingerprint is the engine fingerprint: the joined model-version
	// strings of the simulator layers (hw, kernel, channel estimator,
	// attack harness). Any layer bump invalidates every cached cell.
	Fingerprint string
	// ScenarioID and ScenarioVersion identify the attack scenario and
	// its registered model-version tag.
	ScenarioID      string
	ScenarioVersion int
	// Variant is the mitigation variant's exact label — the
	// distinguishing knob for variants whose difference is not a
	// core.Config field (e.g. T11's pad budget).
	Variant string
	// Config is the variant's protection configuration. It is encoded
	// field by field, so flipping any single mechanism changes the key.
	Config core.Config
	// Rounds is the cell's effective rounds (after the scenario's
	// rounds policy).
	Rounds int
	// ReqRounds, CIHalfWidth, and MaxRounds key the adaptive sampling
	// policy: an adaptive cell's row is a function of its whole rounds
	// ladder, so cells measured under different policies — or under the
	// fixed policy, where all three are zero — must never alias.
	ReqRounds   int
	CIHalfWidth float64
	MaxRounds   int
	// BaseSeed, Trial, and Seed locate the cell's seed point. Seed is
	// derived from (BaseSeed, Trial); all three are keyed so the stored
	// cell round-trips into identical report coordinates.
	BaseSeed uint64
	Trial    int
	Seed     uint64
}

// ProofSpec identifies one proof-matrix cell for keying: every input
// that can influence the prover's verdict and witness. It plays the
// role Spec plays for attack cells; the two key spaces cannot collide
// because each canonical encoding is prefixed with its kind.
type ProofSpec struct {
	// Fingerprint is the prover fingerprint: the joined model-version
	// strings of the proving layers (absmodel, nonintf, invariant).
	// Any layer bump invalidates every cached proof cell.
	Fingerprint string
	// Ablation is the ablation row's registered name (e.g. "full
	// protection", "no flush").
	Ablation string
	// Model is the abstract-model platform variant's registered name
	// (e.g. "base", "wide-alphabet").
	Model string
	// Cfg is the resolved abstract-model configuration the cell proves.
	// It is encoded field by field, so flipping any mechanism or sizing
	// parameter changes the key.
	Cfg absmodel.Config
	// Families is the number of sampled time-function families.
	Families int
	// Random is the number of extra random Hi programs beyond the
	// exhaustive slice set.
	Random int
	// Seed is the base seed of the family sampling.
	Seed uint64
}

// Key derives the ProofSpec's content address, using the same canonical
// field-by-field encoding as Spec.Key under a distinguishing kind
// prefix.
func (s ProofSpec) Key() Key {
	var b strings.Builder
	b.WriteString("kind=\"proof\"\n")
	writeCanonical(&b, reflect.ValueOf(s), "")
	return sha256.Sum256([]byte(b.String()))
}

// Key is a cell's content address: SHA-256 over the Spec's canonical
// encoding.
type Key [sha256.Size]byte

// String renders the key as lowercase hex — also the store filename.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("store: bad key %q: %v", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q: %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// Key derives the Spec's content address. The canonical encoding walks
// the Spec — and the embedded core.Config — field by field in declared
// order via reflection: no Go map is ever ranged, so the encoding is
// byte-identical across processes, and adding a field to either struct
// automatically changes every encoding (a schema change invalidates the
// store rather than aliasing old entries).
func (s Spec) Key() Key {
	var b strings.Builder
	writeCanonical(&b, reflect.ValueOf(s), "")
	return sha256.Sum256([]byte(b.String()))
}

// writeCanonical appends one name=value line per scalar field, quoting
// values so no field content can forge another field's line.
func writeCanonical(b *strings.Builder, v reflect.Value, prefix string) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f, fv := t.Field(i), v.Field(i)
		name := prefix + f.Name
		if fv.Kind() == reflect.Struct {
			writeCanonical(b, fv, name+".")
			continue
		}
		fmt.Fprintf(b, "%s=%q\n", name, fmt.Sprint(fv.Interface()))
	}
}
