package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Packed segment format. A segment is an append-only log file:
//
//	header:  8 bytes, the literal "tpsegv1\n"
//	records: back to back until end of file
//
// One record:
//
//	[0:32]   key           (the entry's content address)
//	[32]     kind          (0 = cell, 1 = proof, 2 = conform, 3 = discover)
//	[33]     tag length    (fingerprint tag, 0..255 bytes)
//	[34:38]  payload length, uint32 little-endian
//	[38:42]  CRC-32C over header[0:38] + tag + payload
//	[42:...] tag bytes, then payload bytes
//
// The payload is the exact checksummed JSON envelope the file backend
// would store one file per entry — byte-identical across backends,
// which is what makes cross-backend merge and migration exact. The CRC
// makes a sequential scan self-validating without parsing any JSON: a
// record that fails its CRC (or runs past end of file) is a torn tail,
// and the scan stops there. The tag records the engine fingerprint the
// entry was written under, so compaction can drop entries under stale
// fingerprints without decoding payloads.

const (
	segMagic      = "tpsegv1\n"
	segHeaderSize = len(segMagic)
	segSuffix     = ".seg"

	recKindCell     = 0
	recKindProof    = 1
	recKindConform  = 2
	recKindDiscover = 3

	recHeaderSize = 32 + 1 + 1 + 4 + 4
	// maxRecPayload bounds a record's payload during scans: a length
	// field beyond it means a torn or corrupt header, not a real entry.
	maxRecPayload = 1 << 30
)

// castagnoli is the CRC-32C table (the polynomial with hardware
// support on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName renders the canonical segment filename for an id. Ids grow
// monotonically across rotations and compactions, so lexical order is
// creation order — the recovery scan's newest-record-wins rule depends
// on it.
func segName(id uint64) string { return fmt.Sprintf("seg-%08d%s", id, segSuffix) }

// appendRecord encodes one record onto buf and returns the extended
// slice.
func appendRecord(buf []byte, k Key, kind byte, tag string, payload []byte) []byte {
	if len(tag) > 255 {
		tag = tag[:255] // tags are fingerprints, far below this in practice
	}
	start := len(buf)
	buf = append(buf, k[:]...)
	buf = append(buf, kind, byte(len(tag)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	buf = append(buf, tag...)
	buf = append(buf, payload...)
	crc := crc32.Update(0, castagnoli, buf[start:start+38])
	crc = crc32.Update(crc, castagnoli, buf[start+recHeaderSize:])
	binary.LittleEndian.PutUint32(buf[start+38:start+42], crc)
	return buf
}

// recordSize is the on-disk footprint of a record with the given tag
// and payload lengths.
func recordSize(tagLen, payloadLen int) int64 {
	return int64(recHeaderSize + tagLen + payloadLen)
}

// scannedRecord is one valid record found by scanSegment.
type scannedRecord struct {
	key        Key
	kind       byte
	tag        string
	payloadOff int64 // offset of the payload within the segment file
	payloadLen uint32
	recOff     int64 // offset of the record header
}

// scanSegment sequentially validates a segment from offset start
// (which must sit on a record boundary; pass 0 for a full scan) and
// calls fn for each valid record. Two distinct failure shapes exist:
//
//   - a record whose frame still fits in the file but whose CRC fails
//     is bit rot; it is skipped (counted in the returned skipped) and
//     the scan resyncs at the next frame, so one rotten record costs
//     one miss, not the rest of the segment;
//   - a record whose frame runs past end of file (or whose length
//     field is implausible) is a torn tail from a crash mid-append;
//     the scan stops there and returns that offset as validEnd —
//     everything beyond it must be ignored or truncated by the caller.
//
// A missing or wrong file header reports 0 valid bytes.
func scanSegment(f *os.File, size int64, start int64, fn func(scannedRecord)) (validEnd int64, skipped int, err error) {
	if start < int64(segHeaderSize) {
		var magic [8]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != segMagic {
			return 0, 0, nil
		}
		start = int64(segHeaderSize)
	}
	r := io.NewSectionReader(f, 0, size)
	off := start
	var hdr [recHeaderSize]byte
	// Payloads are re-read per record; a bufio reader would be faster
	// but the scan is already sequential and runs only on open or
	// compaction. Keep one growing scratch buffer across records.
	var scratch []byte
	for {
		if size-off < int64(recHeaderSize) {
			return off, skipped, nil
		}
		if _, err := r.ReadAt(hdr[:], off); err != nil {
			return off, skipped, nil
		}
		tagLen := int(hdr[33])
		payloadLen := binary.LittleEndian.Uint32(hdr[34:38])
		if payloadLen > maxRecPayload {
			return off, skipped, nil
		}
		total := recordSize(tagLen, int(payloadLen))
		if size-off < total {
			return off, skipped, nil
		}
		body := int(total) - recHeaderSize
		if cap(scratch) < body {
			scratch = make([]byte, body)
		}
		scratch = scratch[:body]
		if _, err := r.ReadAt(scratch, off+int64(recHeaderSize)); err != nil {
			return off, skipped, nil
		}
		crc := crc32.Update(0, castagnoli, hdr[:38])
		crc = crc32.Update(crc, castagnoli, scratch)
		if crc != binary.LittleEndian.Uint32(hdr[38:42]) {
			// Bit rot within a structurally intact frame: skip this
			// record, resync at the next. (If the length field itself
			// rotted, resync lands on garbage — which keeps failing
			// CRCs and skipping until a frame no longer fits; still
			// never a wrong row.)
			skipped++
			off += total
			continue
		}
		var rec scannedRecord
		copy(rec.key[:], hdr[:32])
		rec.kind = hdr[32]
		rec.tag = string(scratch[:tagLen])
		rec.recOff = off
		rec.payloadOff = off + int64(recHeaderSize) + int64(tagLen)
		rec.payloadLen = payloadLen
		fn(rec)
		off += total
	}
}

// newSegmentFile creates and syncs a fresh segment file (header only)
// and syncs the directory so the file survives a crash. The returned
// handle is open read-write, positioned for appends at segHeaderSize.
func newSegmentFile(dir, name string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment: %v", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: writing segment header: %v", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: syncing segment: %v", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: syncing store dir: %v", err)
	}
	return f, nil
}
