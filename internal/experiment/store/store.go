package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
)

// Store is a content-addressed cell store rooted at a directory. Cells
// live one per file under two-hex-digit shard subdirectories
// (dir/ab/abcdef….json), named by their key. Store values are safe for
// concurrent use by multiple goroutines and multiple processes.
type Store struct {
	dir string
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its file: two-hex-digit fan-out keeps directories
// small even for million-cell matrices.
func (s *Store) path(k Key) string {
	h := k.String()
	return filepath.Join(s.dir, h[:2], h+".json")
}

// fileV1 is the on-disk envelope. Cell stays raw so Sum is computed
// over the exact stored bytes: any truncation or bit-flip of the
// payload fails the checksum and the entry reads as a miss.
type fileV1 struct {
	V    int             `json:"v"`
	Key  string          `json:"key"`
	Sum  string          `json:"sum"`
	Cell json.RawMessage `json:"cell"`
}

// fileVersion is the store format version; unrecognised versions are
// misses, so a future format change cannot be mis-served. Version 2
// added the capacity confidence interval and the effective/total rounds
// of the adaptive sampler to the stored cell.
const fileVersion = 2

// cellV1 is the stored measurement: a pre-finalisation attacks.Row with
// every float carried as its IEEE-754 bit pattern, so NaN and ±Inf
// values (legal in raw rows) round-trip bit-exactly through JSON.
type cellV1 struct {
	Label        string `json:"label"`
	CapacityBits uint64 `json:"capacity_bits"`
	MIUniform    uint64 `json:"mi_uniform"`
	FloorBits    uint64 `json:"floor_bits"`
	CILow        uint64 `json:"ci_lo"`
	CIHigh       uint64 `json:"ci_hi"`
	N            int    `json:"n"`
	Bins         int    `json:"bins"`
	ErrRate      uint64 `json:"err_rate"`
	Rounds       int    `json:"rounds"`
	RoundsRun    int    `json:"rounds_run"`
	SimOps       uint64 `json:"sim_ops"`
	Extra        []kvV1 `json:"extra,omitempty"`
}

type kvV1 struct {
	K string `json:"k"`
	V uint64 `json:"v"`
}

// encodeRow converts a measured row to its stored form.
func encodeRow(row attacks.Row) cellV1 {
	c := cellV1{
		Label:        row.Label,
		CapacityBits: math.Float64bits(row.Est.CapacityBits),
		MIUniform:    math.Float64bits(row.Est.MIUniform),
		FloorBits:    math.Float64bits(row.Est.FloorBits),
		CILow:        math.Float64bits(row.Est.CILow),
		CIHigh:       math.Float64bits(row.Est.CIHigh),
		N:            row.Est.N,
		Bins:         row.Est.Bins,
		ErrRate:      math.Float64bits(row.ErrRate),
		Rounds:       row.Rounds,
		RoundsRun:    row.RoundsRun,
		SimOps:       row.SimOps,
	}
	for _, kv := range row.Extra {
		c.Extra = append(c.Extra, kvV1{K: kv.K, V: math.Float64bits(kv.V)})
	}
	return c
}

// decodeRow reconstructs the measured row.
func decodeRow(c cellV1) attacks.Row {
	row := attacks.Row{
		Label: c.Label,
		Est: channel.Estimate{
			CapacityBits: math.Float64frombits(c.CapacityBits),
			MIUniform:    math.Float64frombits(c.MIUniform),
			FloorBits:    math.Float64frombits(c.FloorBits),
			CILow:        math.Float64frombits(c.CILow),
			CIHigh:       math.Float64frombits(c.CIHigh),
			N:            c.N,
			Bins:         c.Bins,
		},
		ErrRate:   math.Float64frombits(c.ErrRate),
		Rounds:    c.Rounds,
		RoundsRun: c.RoundsRun,
		SimOps:    c.SimOps,
	}
	for _, kv := range c.Extra {
		row.Extra = append(row.Extra, attacks.KV{K: kv.K, V: math.Float64frombits(kv.V)})
	}
	return row
}

// Put stores a measured row under key k. The write is atomic: a temp
// file in the destination shard directory is renamed into place, so a
// concurrent reader sees either nothing or a complete entry, and
// concurrent writers of the same key (which, by content addressing,
// write identical payloads) cannot corrupt each other.
func (s *Store) Put(k Key, row attacks.Row) error {
	cell, err := json.Marshal(encodeRow(row))
	if err != nil {
		return fmt.Errorf("store: encoding cell %s: %v", k, err)
	}
	sum := sha256.Sum256(cell)
	data, err := json.Marshal(fileV1{
		V:    fileVersion,
		Key:  k.String(),
		Sum:  hex.EncodeToString(sum[:]),
		Cell: cell,
	})
	if err != nil {
		return fmt.Errorf("store: encoding entry %s: %v", k, err)
	}
	return s.writeAtomic(k, data)
}

// writeAtomic writes a complete entry file for k.
func (s *Store) writeAtomic(k Key, data []byte) error {
	path := s.path(k)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %v", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing %s: %v", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: committing %s: %v", path, err)
	}
	return nil
}

// Get returns the row stored under k. Every failure mode — missing
// file, truncation, bit rot, key mismatch, unknown format version —
// reports a miss; a corrupt entry is never served as a result.
func (s *Store) Get(k Key) (attacks.Row, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return attacks.Row{}, false
	}
	row, err := decodeEntry(k, data)
	if err != nil {
		return attacks.Row{}, false
	}
	return row, true
}

// decodeEntry validates and decodes one entry file's bytes against the
// key it is supposed to hold.
func decodeEntry(k Key, data []byte) (attacks.Row, error) {
	var f fileV1
	if err := json.Unmarshal(data, &f); err != nil {
		return attacks.Row{}, fmt.Errorf("store: entry %s: %v", k, err)
	}
	if f.V != fileVersion {
		return attacks.Row{}, fmt.Errorf("store: entry %s: format version %d, want %d", k, f.V, fileVersion)
	}
	if f.Key != k.String() {
		return attacks.Row{}, fmt.Errorf("store: entry %s claims key %s", k, f.Key)
	}
	sum := sha256.Sum256(f.Cell)
	if hex.EncodeToString(sum[:]) != f.Sum {
		return attacks.Row{}, fmt.Errorf("store: entry %s: checksum mismatch", k)
	}
	var c cellV1
	if err := json.Unmarshal(f.Cell, &c); err != nil {
		return attacks.Row{}, fmt.Errorf("store: entry %s cell: %v", k, err)
	}
	return decodeRow(c), nil
}

// Keys lists the keys of every entry file present, in sorted order.
// Presence is by well-formed filename only; Get still validates
// content.
func (s *Store) Keys() ([]Key, error) {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	var keys []Key
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
		for _, f := range files {
			name := f.Name()
			if filepath.Ext(name) != ".json" {
				continue
			}
			k, err := ParseKey(name[:len(name)-len(".json")])
			if err != nil || k.String()[:2] != sh.Name() {
				continue
			}
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys, nil
}

// Len counts the entries present (by filename).
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// MergeFrom copies into s every valid entry of the store rooted at src
// that s does not already hold, returning the number added. Both entry
// kinds — measured cells and proof verdicts — merge. Content
// addressing makes merging associative and commutative — equal keys
// hold equal payloads — so shard stores produced by independent
// processes (or machines) combine in any order into the same store.
// Corrupt or truncated source entries are skipped, and entries already
// present in s are kept, never overwritten.
func (s *Store) MergeFrom(src string) (added int, err error) {
	srcStore := &Store{dir: src}
	keys, err := srcStore.Keys()
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		// "Already present" means present AND valid: a corrupt
		// destination entry is a miss by contract, so a valid source
		// entry must replace it rather than be skipped.
		if existing, readErr := os.ReadFile(s.path(k)); readErr == nil {
			if validateEntry(k, existing) == nil {
				continue
			}
		}
		data, readErr := os.ReadFile(srcStore.path(k))
		if readErr != nil {
			continue
		}
		if validateEntry(k, data) != nil {
			continue // never propagate a corrupt entry
		}
		if err := s.writeAtomic(k, data); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}
