package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
)

// Store is the file-per-cell CellStore backend, rooted at a directory.
// Cells live one per file under two-hex-digit shard subdirectories
// (dir/ab/abcdef….json), named by their key. Store values are safe for
// concurrent use by multiple goroutines and multiple processes.
type Store struct {
	dir string
}

// tempMaxAge is how old a .put-* temp file must be before Open sweeps
// it as a crashed writer's orphan. The age guard keeps Open from
// deleting the temp file of a concurrent live writer mid-Put; a healthy
// Put holds its temp file for milliseconds, never minutes.
const tempMaxAge = 10 * time.Minute

// Open opens (creating if needed) the file-per-cell store rooted at
// dir, sweeping any temp files orphaned by crashed writers.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	s := &Store{dir: dir}
	s.sweepTemps()
	return s, nil
}

// sweepTemps removes .put-* temp files orphaned by writers that crashed
// between CreateTemp and the commit rename. Without the sweep they
// accumulate in shard directories forever (nothing else ever unlinks
// them). Only temps older than tempMaxAge go; a younger one may belong
// to a live concurrent writer. Best-effort: a failed removal is not an
// open error.
func (s *Store) sweepTemps() {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tempMaxAge)
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || !strings.HasPrefix(f.Name(), ".put-") {
				continue
			}
			info, err := f.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
			os.Remove(filepath.Join(s.dir, sh.Name(), f.Name()))
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close is a no-op: the file backend holds no open handles and every
// Put is individually durable. It exists to satisfy CellStore.
func (s *Store) Close() error { return nil }

// path maps a key to its file: two-hex-digit fan-out keeps directories
// small even for million-cell matrices.
func (s *Store) path(k Key) string {
	h := k.String()
	return filepath.Join(s.dir, h[:2], h+".json")
}

// fileV1 is the on-disk envelope. Cell stays raw so Sum is computed
// over the exact stored bytes: any truncation or bit-flip of the
// payload fails the checksum and the entry reads as a miss.
type fileV1 struct {
	V    int             `json:"v"`
	Key  string          `json:"key"`
	Sum  string          `json:"sum"`
	Cell json.RawMessage `json:"cell"`
}

// fileVersion is the store format version; unrecognised versions are
// misses, so a future format change cannot be mis-served. Version 2
// added the capacity confidence interval and the effective/total rounds
// of the adaptive sampler to the stored cell.
const fileVersion = 2

// cellV1 is the stored measurement: a pre-finalisation attacks.Row with
// every float carried as its IEEE-754 bit pattern, so NaN and ±Inf
// values (legal in raw rows) round-trip bit-exactly through JSON.
type cellV1 struct {
	Label        string `json:"label"`
	CapacityBits uint64 `json:"capacity_bits"`
	MIUniform    uint64 `json:"mi_uniform"`
	FloorBits    uint64 `json:"floor_bits"`
	CILow        uint64 `json:"ci_lo"`
	CIHigh       uint64 `json:"ci_hi"`
	N            int    `json:"n"`
	Bins         int    `json:"bins"`
	ErrRate      uint64 `json:"err_rate"`
	Rounds       int    `json:"rounds"`
	RoundsRun    int    `json:"rounds_run"`
	SimOps       uint64 `json:"sim_ops"`
	Extra        []kvV1 `json:"extra,omitempty"`
}

type kvV1 struct {
	K string `json:"k"`
	V uint64 `json:"v"`
}

// encodeRow converts a measured row to its stored form.
func encodeRow(row attacks.Row) cellV1 {
	c := cellV1{
		Label:        row.Label,
		CapacityBits: math.Float64bits(row.Est.CapacityBits),
		MIUniform:    math.Float64bits(row.Est.MIUniform),
		FloorBits:    math.Float64bits(row.Est.FloorBits),
		CILow:        math.Float64bits(row.Est.CILow),
		CIHigh:       math.Float64bits(row.Est.CIHigh),
		N:            row.Est.N,
		Bins:         row.Est.Bins,
		ErrRate:      math.Float64bits(row.ErrRate),
		Rounds:       row.Rounds,
		RoundsRun:    row.RoundsRun,
		SimOps:       row.SimOps,
	}
	for _, kv := range row.Extra {
		c.Extra = append(c.Extra, kvV1{K: kv.K, V: math.Float64bits(kv.V)})
	}
	return c
}

// decodeRow reconstructs the measured row.
func decodeRow(c cellV1) attacks.Row {
	row := attacks.Row{
		Label: c.Label,
		Est: channel.Estimate{
			CapacityBits: math.Float64frombits(c.CapacityBits),
			MIUniform:    math.Float64frombits(c.MIUniform),
			FloorBits:    math.Float64frombits(c.FloorBits),
			CILow:        math.Float64frombits(c.CILow),
			CIHigh:       math.Float64frombits(c.CIHigh),
			N:            c.N,
			Bins:         c.Bins,
		},
		ErrRate:   math.Float64frombits(c.ErrRate),
		Rounds:    c.Rounds,
		RoundsRun: c.RoundsRun,
		SimOps:    c.SimOps,
	}
	for _, kv := range c.Extra {
		row.Extra = append(row.Extra, attacks.KV{K: kv.K, V: math.Float64frombits(kv.V)})
	}
	return row
}

// encodeCellEntry builds the checksummed on-disk envelope for a
// measured row — the byte representation shared by every backend (the
// file backend stores it one file per entry, the packed backend as a
// length-prefixed segment record).
func encodeCellEntry(k Key, row attacks.Row) ([]byte, error) {
	cell, err := json.Marshal(encodeRow(row))
	if err != nil {
		return nil, fmt.Errorf("store: encoding cell %s: %v", k, err)
	}
	sum := sha256.Sum256(cell)
	data, err := json.Marshal(fileV1{
		V:    fileVersion,
		Key:  k.String(),
		Sum:  hex.EncodeToString(sum[:]),
		Cell: cell,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding entry %s: %v", k, err)
	}
	return data, nil
}

// Put stores a measured row under key k. The write is atomic: a temp
// file in the destination shard directory is renamed into place, so a
// concurrent reader sees either nothing or a complete entry, and
// concurrent writers of the same key (which, by content addressing,
// write identical payloads) cannot corrupt each other.
func (s *Store) Put(k Key, row attacks.Row) error {
	data, err := encodeCellEntry(k, row)
	if err != nil {
		return err
	}
	return s.writeAtomic(k, data)
}

// writeAtomic writes a complete entry file for k with the store's
// crash-consistency contract: the entry bytes are fsynced before the
// commit rename, and the shard directory is fsynced after it. Without
// the file sync a crash shortly after Put could leave an empty or torn
// file committed under the final name (a permanent miss at best);
// without the directory sync the rename itself could vanish, leaving a
// stale dirent pointing at recycled blocks.
func (s *Store) writeAtomic(k Key, data []byte) error {
	path := s.path(k)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %v", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: syncing %s: %v", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing %s: %v", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: committing %s: %v", path, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("store: syncing dir of %s: %v", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives a
// crash. Filesystems that cannot sync directories report an error on
// Sync, which is surfaced; all mainstream Linux filesystems support it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get returns the row stored under k. Every failure mode — missing
// file, truncation, bit rot, key mismatch, unknown format version —
// reports a miss; a corrupt entry is never served as a result.
func (s *Store) Get(k Key) (attacks.Row, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return attacks.Row{}, false
	}
	row, err := decodeEntry(k, data)
	if err != nil {
		return attacks.Row{}, false
	}
	return row, true
}

// decodeEntry validates and decodes one entry file's bytes against the
// key it is supposed to hold.
func decodeEntry(k Key, data []byte) (attacks.Row, error) {
	var f fileV1
	if err := json.Unmarshal(data, &f); err != nil {
		return attacks.Row{}, fmt.Errorf("store: entry %s: %v", k, err)
	}
	if f.V != fileVersion {
		return attacks.Row{}, fmt.Errorf("store: entry %s: format version %d, want %d", k, f.V, fileVersion)
	}
	if f.Key != k.String() {
		return attacks.Row{}, fmt.Errorf("store: entry %s claims key %s", k, f.Key)
	}
	sum := sha256.Sum256(f.Cell)
	if hex.EncodeToString(sum[:]) != f.Sum {
		return attacks.Row{}, fmt.Errorf("store: entry %s: checksum mismatch", k)
	}
	var c cellV1
	if err := json.Unmarshal(f.Cell, &c); err != nil {
		return attacks.Row{}, fmt.Errorf("store: entry %s cell: %v", k, err)
	}
	return decodeRow(c), nil
}

// walkEntries calls fn for every well-formed entry filename present.
// Temp files (.put-*), misnamed files, and stray directories are
// invisible: presence is by well-formed filename only, and Get still
// validates content.
func (s *Store) walkEntries(fn func(k Key)) error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			return fmt.Errorf("store: %v", err)
		}
		for _, f := range files {
			name := f.Name()
			if filepath.Ext(name) != ".json" {
				continue
			}
			k, err := ParseKey(name[:len(name)-len(".json")])
			if err != nil || k.String()[:2] != sh.Name() {
				continue
			}
			fn(k)
		}
	}
	return nil
}

// Keys lists the keys of every entry file present, in sorted order.
func (s *Store) Keys() ([]Key, error) {
	var keys []Key
	if err := s.walkEntries(func(k Key) { keys = append(keys, k) }); err != nil {
		return nil, err
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys, nil
}

// Len counts the entries present (by filename). It walks the shard
// directories once and counts — no key slice is built or sorted, so
// counting a huge store costs directory reads only.
func (s *Store) Len() (int, error) {
	n := 0
	if err := s.walkEntries(func(Key) { n++ }); err != nil {
		return 0, err
	}
	return n, nil
}

// MergeFrom copies into s every valid entry of the store rooted at src
// that s does not already hold, returning the number added. All three
// entry kinds — measured cells, proof verdicts, and conformance
// outcomes — merge, and the source may use either backend (file or
// packed; the layout is detected). Content addressing makes merging
// associative and commutative — equal keys hold equal payloads — so
// shard stores produced by independent processes (or machines) combine
// in any order into the same store. Corrupt or truncated source entries
// are skipped, and entries already present in s are kept, never
// overwritten.
func (s *Store) MergeFrom(src string) (added int, err error) {
	return mergeInto(s, src)
}

// getRaw returns the validated envelope bytes stored under k, for the
// cross-backend merge path.
func (s *Store) getRaw(k Key) ([]byte, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil || validateEntry(k, data) != nil {
		return nil, false
	}
	return data, true
}

// hasValid reports whether s holds a valid entry under k. "Present but
// corrupt" is false: a corrupt destination entry is a miss by contract,
// so a valid source entry must replace it during a merge rather than be
// skipped.
func (s *Store) hasValid(k Key) bool {
	_, ok := s.getRaw(k)
	return ok
}

// putRaw commits pre-validated envelope bytes under k.
func (s *Store) putRaw(k Key, data []byte) error {
	return s.writeAtomic(k, data)
}
