package store

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"timeprot/internal/prove/absmodel"
)

// baseProofSpec is the reference proof-cell spec for the key tests.
func baseProofSpec() ProofSpec {
	return ProofSpec{
		Fingerprint: "prove/absmodel/1|prove/nonintf/1|prove/invariant/1",
		Ablation:    "no flush",
		Model:       "base",
		Cfg:         absmodel.DefaultConfig(),
		Families:    5,
		Random:      200,
		Seed:        42,
	}
}

// sampleProof is a representative stored verdict with a witness.
func sampleProof() ProofV1 {
	return ProofV1{
		Cases: []ProofCaseV1{
			{Name: "Case1-user", Holds: true, Checked: 354294},
			{Name: "Case2b-switch", Holds: false, Checked: 17, Witness: "pad overrun: ..."},
		},
		BoundedProved:   false,
		BoundedRuns:     2,
		BoundedFamilies: 5,
		PadOverruns:     0,
		Witness: &ProofWitnessV1{
			FamilySeed: 42,
			HiA:        []int{1, -1, 0},
			HiB:        []int{1, -2, 0},
			Index:      4,
			ObsA:       []ProofObsV1{{Clock: 10}, {Clock: 20}, {Clock: 31}, {Clock: 44}, {Clock: 60}},
			ObsB:       []ProofObsV1{{Clock: 10}, {Clock: 20}, {Clock: 31}, {Clock: 44}, {Clock: 61, IRQ: true}},
			ShrinkRuns: 38,
		},
	}
}

func TestProofKeySensitivity(t *testing.T) {
	base := baseProofSpec().Key()
	muts := []func(*ProofSpec){
		func(s *ProofSpec) { s.Fingerprint = "prove/absmodel/2|prove/nonintf/1|prove/invariant/1" },
		func(s *ProofSpec) { s.Ablation = "no pad" },
		func(s *ProofSpec) { s.Model = "wide-alphabet" },
		func(s *ProofSpec) { s.Cfg.Flush = false },
		func(s *ProofSpec) { s.Cfg.StepsPerSlice++ },
		func(s *ProofSpec) { s.Cfg.PadBudget++ },
		func(s *ProofSpec) { s.Families++ },
		func(s *ProofSpec) { s.Random++ },
		func(s *ProofSpec) { s.Seed++ },
	}
	for i, mut := range muts {
		s := baseProofSpec()
		mut(&s)
		if s.Key() == base {
			t.Errorf("mutation %d does not change the proof key", i)
		}
	}
	if baseProofSpec().Key() != base {
		t.Error("proof key not stable")
	}
}

// TestProofKeySpaceDisjoint: a ProofSpec can never alias a cell Spec —
// the proof encoding is kind-prefixed.
func TestProofKeySpaceDisjoint(t *testing.T) {
	// Same nominal field content in both shapes must still give
	// different keys.
	if baseProofSpec().Key() == baseSpec().Key() {
		t.Fatal("proof and cell key spaces collide")
	}
}

func TestProofPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := baseProofSpec().Key()
	if _, ok := s.GetProof(k); ok {
		t.Fatal("hit on empty store")
	}
	want := sampleProof()
	if err := s.PutProof(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetProof(k)
	if !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the proof:\ngot  %+v\nwant %+v", got, want)
	}
	// A proof entry must never be served as a cell.
	if _, ok := s.Get(k); ok {
		t.Fatal("proof entry served as a cell")
	}
	// And a cell entry must never be served as a proof.
	ck := baseSpec().Key()
	if err := s.Put(ck, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetProof(ck); ok {
		t.Fatal("cell entry served as a proof")
	}
}

func TestCorruptProofEntriesAreMisses(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := baseProofSpec().Key()
	if err := s.PutProof(k, sampleProof()); err != nil {
		t.Fatal(err)
	}
	path := s.path(k)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	corruptions := map[string]func() []byte{
		"truncated": func() []byte { return pristine[:len(pristine)/2] },
		"bit-flip": func() []byte {
			b := append([]byte(nil), pristine...)
			b[len(b)/2] ^= 0x40
			return b
		},
		"not-json": func() []byte { return []byte("junk") },
		"bad-version": func() []byte {
			var f proofFileV1
			if err := json.Unmarshal(pristine, &f); err != nil {
				t.Fatal(err)
			}
			f.V = 99
			b, _ := json.Marshal(f)
			return b
		},
		"wrong-key": func() []byte {
			var f proofFileV1
			if err := json.Unmarshal(pristine, &f); err != nil {
				t.Fatal(err)
			}
			other := baseProofSpec()
			other.Seed++
			f.Key = other.Key().String()
			b, _ := json.Marshal(f)
			return b
		},
	}
	for name, corrupt := range corruptions {
		if err := os.WriteFile(path, corrupt(), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.GetProof(k); ok {
			t.Errorf("%s: corrupt proof entry served", name)
		}
		restore()
	}
	if _, ok := s.GetProof(k); !ok {
		t.Fatal("pristine entry no longer served after restore")
	}
}

// TestMergeFromCarriesProofs: merging moves both entry kinds, skips
// corrupt proof entries, and is idempotent.
func TestMergeFromCarriesProofs(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pk := baseProofSpec().Key()
	if err := src.PutProof(pk, sampleProof()); err != nil {
		t.Fatal(err)
	}
	ck := baseSpec().Key()
	if err := src.Put(ck, sampleRow()); err != nil {
		t.Fatal(err)
	}
	// A corrupt proof entry in the source must be skipped.
	bad := baseProofSpec()
	bad.Ablation = "no pad"
	bk := bad.Key()
	if err := src.PutProof(bk, sampleProof()); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(src.path(bk), 10); err != nil {
		t.Fatal(err)
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	added, err := dst.MergeFrom(src.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("merged %d entries, want 2 (corrupt one skipped)", added)
	}
	if got, ok := dst.GetProof(pk); !ok || !reflect.DeepEqual(got, sampleProof()) {
		t.Fatal("proof entry did not survive the merge")
	}
	if _, ok := dst.Get(ck); !ok {
		t.Fatal("cell entry did not survive the merge")
	}
	if _, ok := dst.GetProof(bk); ok {
		t.Fatal("corrupt proof entry propagated")
	}
	// Idempotent: a second merge adds nothing.
	added, err = dst.MergeFrom(src.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("re-merge added %d entries, want 0", added)
	}
}
