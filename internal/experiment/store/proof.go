package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Proof entries share the store's directory layout, atomicity, and
// corrupt-entry-as-miss contract with cell entries, but carry a proof
// verdict instead of a measured row. The two entry kinds are
// distinguished on disk by an explicit kind tag (cell entries predate
// the tag and have none), and their key spaces are disjoint by
// construction (ProofSpec's canonical encoding is kind-prefixed), so a
// proof entry can never be served as a cell or vice versa.

// proofKind tags proof entry files.
const proofKind = "proof"

// proofFileVersion is the proof entry format version; unrecognised
// versions are misses.
const proofFileVersion = 1

// proofFileV1 is the on-disk envelope of a proof entry. Proof stays raw
// so Sum is computed over the exact stored bytes.
type proofFileV1 struct {
	V     int             `json:"v"`
	Kind  string          `json:"kind"`
	Key   string          `json:"key"`
	Sum   string          `json:"sum"`
	Proof json.RawMessage `json:"proof"`
}

// ProofCaseV1 is one stored unwinding-lemma verdict.
type ProofCaseV1 struct {
	Name    string `json:"name"`
	Holds   bool   `json:"holds"`
	Checked int    `json:"checked"`
	Witness string `json:"witness,omitempty"`
}

// ProofObsV1 is one stored Lo observation of a witness trace.
type ProofObsV1 struct {
	Clock uint64 `json:"clock"`
	IRQ   bool   `json:"irq,omitempty"`
}

// ProofWitnessV1 is a stored minimal counterexample witness. Actions
// are stored as their integer encoding (user inputs >= 0, syscall -1,
// start-IO -2).
type ProofWitnessV1 struct {
	FamilySeed uint64       `json:"family_seed"`
	HiA        []int        `json:"hi_a"`
	HiB        []int        `json:"hi_b"`
	Index      int          `json:"index"`
	ObsA       []ProofObsV1 `json:"obs_a"`
	ObsB       []ProofObsV1 `json:"obs_b"`
	ShrinkRuns int          `json:"shrink_runs"`
}

// ProofV1 is the stored proof-cell verdict: the complete prover output
// for one (ablation, model, families, seed) point — lemma cases, the
// bounded-NI verdict, and the minimal witness when refuted. All fields
// are integers, booleans, and strings, so the round trip is exact.
type ProofV1 struct {
	Cases           []ProofCaseV1   `json:"cases"`
	BoundedProved   bool            `json:"bounded_proved"`
	BoundedRuns     int             `json:"bounded_runs"`
	BoundedFamilies int             `json:"bounded_families"`
	PadOverruns     int             `json:"pad_overruns"`
	Witness         *ProofWitnessV1 `json:"witness,omitempty"`
}

// encodeProofEntry builds the checksummed on-disk envelope for a proof
// verdict — the byte representation shared by every backend.
func encodeProofEntry(k Key, p ProofV1) ([]byte, error) {
	payload, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("store: encoding proof %s: %v", k, err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(proofFileV1{
		V:     proofFileVersion,
		Kind:  proofKind,
		Key:   k.String(),
		Sum:   hex.EncodeToString(sum[:]),
		Proof: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding proof entry %s: %v", k, err)
	}
	return data, nil
}

// PutProof stores a proof verdict under key k, with the same atomic
// write discipline as Put.
func (s *Store) PutProof(k Key, p ProofV1) error {
	data, err := encodeProofEntry(k, p)
	if err != nil {
		return err
	}
	return s.writeAtomic(k, data)
}

// GetProof returns the proof verdict stored under k. Every failure
// mode — missing file, truncation, bit rot, key or kind mismatch,
// unknown format version — reports a miss.
func (s *Store) GetProof(k Key) (ProofV1, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return ProofV1{}, false
	}
	p, err := decodeProofEntry(k, data)
	if err != nil {
		return ProofV1{}, false
	}
	return p, true
}

// decodeProofEntry validates and decodes one proof entry file's bytes.
func decodeProofEntry(k Key, data []byte) (ProofV1, error) {
	var f proofFileV1
	if err := json.Unmarshal(data, &f); err != nil {
		return ProofV1{}, fmt.Errorf("store: proof entry %s: %v", k, err)
	}
	if f.Kind != proofKind {
		return ProofV1{}, fmt.Errorf("store: entry %s is not a proof entry", k)
	}
	if f.V != proofFileVersion {
		return ProofV1{}, fmt.Errorf("store: proof entry %s: format version %d, want %d", k, f.V, proofFileVersion)
	}
	if f.Key != k.String() {
		return ProofV1{}, fmt.Errorf("store: proof entry %s claims key %s", k, f.Key)
	}
	sum := sha256.Sum256(f.Proof)
	if hex.EncodeToString(sum[:]) != f.Sum {
		return ProofV1{}, fmt.Errorf("store: proof entry %s: checksum mismatch", k)
	}
	var p ProofV1
	if err := json.Unmarshal(f.Proof, &p); err != nil {
		return ProofV1{}, fmt.Errorf("store: proof entry %s payload: %v", k, err)
	}
	return p, nil
}

// entryKind sniffs an envelope's kind tag. Cell entries predate the
// tag and have none, so they report the empty kind; undecodable bytes
// report an error.
func entryKind(data []byte) (string, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", err
	}
	return probe.Kind, nil
}

// validateEntry decodes an entry file of any kind, for the merge path:
// cell entries (no kind tag), proof, conformance, and discovery entries
// are all valid merge sources; anything else is corrupt.
func validateEntry(k Key, data []byte) error {
	kind, err := entryKind(data)
	if err != nil {
		return fmt.Errorf("store: entry %s: %v", k, err)
	}
	switch kind {
	case proofKind:
		_, err := decodeProofEntry(k, data)
		return err
	case conformKind:
		_, err := decodeConformEntry(k, data)
		return err
	case discoverKind:
		_, err := decodeDiscoverEntry(k, data)
		return err
	}
	_, err = decodeEntry(k, data)
	return err
}
