package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"timeprot/internal/attacks"
)

// CellStore is the backend-agnostic contract of the content-addressed
// result store: everything the experiment engine and the CLIs need
// from a store, over all four entry kinds (attack cells, proof
// verdicts, conformance outcomes, discovery evaluations).
//
// Two backends implement it:
//
//   - *Store — one checksummed JSON file per cell under two-hex-digit
//     shard directories. Every Put is individually durable (fsync +
//     directory sync) and safe across processes. Right for small
//     matrices, concurrent multi-process shard runs into one
//     directory, and stores that are committed to git.
//
//   - *Packed — an append-only log of checksummed, length-prefixed
//     records in segment files with an in-memory key index. One or a
//     handful of inodes for millions of cells, no open/read/close per
//     warm hit, sequential scans. Right for huge matrices; single
//     process at a time.
//
// Both backends store byte-identical entry envelopes, so MergeFrom
// works across backend boundaries in either direction and a store can
// be migrated back and forth without changing a single served byte.
// Both share one crash-consistency contract: a torn, truncated, or
// bit-flipped entry reads as a miss, never as a wrong row.
type CellStore interface {
	// Dir returns the store's root directory.
	Dir() string
	// Get returns the row stored under k; every failure mode is a miss.
	Get(k Key) (attacks.Row, bool)
	// Put stores a measured row under k.
	Put(k Key, row attacks.Row) error
	// GetProof returns the proof verdict stored under k.
	GetProof(k Key) (ProofV1, bool)
	// PutProof stores a proof verdict under k.
	PutProof(k Key, p ProofV1) error
	// GetConform returns the conformance outcome stored under k.
	GetConform(k Key) (ConformV1, bool)
	// PutConform stores a conformance outcome under k.
	PutConform(k Key, c ConformV1) error
	// GetDiscover returns the discovery evaluation stored under k.
	GetDiscover(k Key) (DiscoverV1, bool)
	// PutDiscover stores a discovery evaluation under k.
	PutDiscover(k Key, d DiscoverV1) error
	// Keys lists every entry's key in sorted order.
	Keys() ([]Key, error)
	// Len counts the entries without building or sorting a key list.
	Len() (int, error)
	// MergeFrom folds every valid entry of the store rooted at src —
	// either backend, detected from the layout — into this store.
	MergeFrom(src string) (added int, err error)
	// Close releases the store. For the packed backend it syncs the
	// active segment and persists the index sidecar for a fast reopen;
	// for the file backend it is a no-op.
	Close() error
}

// Backend names for OpenBackend and DetectBackend.
const (
	BackendFile   = "file"
	BackendPacked = "packed"
	BackendAuto   = "auto"
)

// DetectBackend reports which backend owns the store directory at dir:
// a packed layout (a MANIFEST or seg-*.log segment files) is packed,
// anything else — including a directory that does not exist yet — is
// the file backend, preserving the historical default for new stores.
func DetectBackend(dir string) string {
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return BackendPacked
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix)); len(segs) > 0 {
		return BackendPacked
	}
	return BackendFile
}

// OpenBackend opens the store at dir with the named backend ("file",
// "packed", or "auto" to detect from the on-disk layout). popt applies
// only when the packed backend is selected.
func OpenBackend(backend, dir string, popt PackedOptions) (CellStore, error) {
	if backend == "" || backend == BackendAuto {
		backend = DetectBackend(dir)
	}
	switch backend {
	case BackendFile:
		return Open(dir)
	case BackendPacked:
		return OpenPacked(dir, popt)
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want %s, %s, or %s)", backend, BackendFile, BackendPacked, BackendAuto)
	}
}

// rawStore is the merge-level view of a backend: validated envelope
// bytes by key. Both backends implement it, which is what makes
// MergeFrom work across backend boundaries — the envelope bytes are
// the unit of exchange, identical in both layouts.
type rawStore interface {
	Keys() ([]Key, error)
	getRaw(k Key) ([]byte, bool)
	hasValid(k Key) bool
	putRaw(k Key, data []byte) error
}

// mergeInto folds the store rooted at srcDir (either backend) into
// dst: for every key the source holds a valid entry for and dst does
// not, the envelope bytes are copied verbatim. Corrupt source entries
// are skipped; corrupt destination entries are repaired (a corrupt
// entry is a miss by contract, so a valid source entry replaces it).
func mergeInto(dst rawStore, srcDir string) (added int, err error) {
	src, closeSrc, err := openMergeSource(srcDir)
	if err != nil {
		return 0, err
	}
	defer closeSrc()
	keys, err := src.Keys()
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if dst.hasValid(k) {
			continue
		}
		data, ok := src.getRaw(k)
		if !ok {
			continue // never propagate a corrupt entry
		}
		if err := dst.putRaw(k, data); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// openMergeSource opens srcDir read-only under whichever backend owns
// it. The file backend needs no handles (and must not sweep temp files
// of a store it does not own), so it is constructed directly.
func openMergeSource(srcDir string) (rawStore, func(), error) {
	if _, err := os.Stat(srcDir); err != nil {
		return nil, nil, fmt.Errorf("store: merge source: %v", err)
	}
	if DetectBackend(srcDir) == BackendPacked {
		p, err := openPacked(srcDir, PackedOptions{}, true)
		if err != nil {
			return nil, nil, err
		}
		return p, func() { p.Close() }, nil
	}
	return &Store{dir: srcDir}, func() {}, nil
}

// sortKeys sorts a key slice in the canonical (hex-string) order every
// backend's Keys() promises.
func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
}
