package store

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
	"timeprot/internal/core"
)

// baseSpec is the reference cell spec for the key tests.
func baseSpec() Spec {
	return Spec{
		Fingerprint:     "hw/1|kernel/2|channel/2|attacks/1",
		ScenarioID:      "T2",
		ScenarioVersion: 1,
		Variant:         "flush+pad (full)",
		Config:          core.FullProtection(),
		Rounds:          30,
		ReqRounds:       0,
		CIHalfWidth:     0,
		MaxRounds:       0,
		BaseSeed:        42,
		Trial:           0,
		Seed:            42,
	}
}

// goldenKey pins the key of baseSpec across processes and Go versions:
// any map-iteration-order (or other nondeterminism) leaking into the
// canonical encoding, and any accidental encoding change, fails this
// test. An intentional encoding change must update the constant — which
// is correct, because it also invalidates every existing store.
const goldenKey = "2cff56c0558a1cd9da5369bc194230346848b1dd323a3cefe4f80e4f047eb3a2"

func TestKeyGolden(t *testing.T) {
	if got := baseSpec().Key().String(); got != goldenKey {
		t.Fatalf("baseSpec key = %s, want %s (an intentional encoding change must update goldenKey)", got, goldenKey)
	}
}

// TestKeyStability: identical specs produce byte-identical keys, every
// time, including when computed concurrently.
func TestKeyStability(t *testing.T) {
	want := baseSpec().Key()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if k := baseSpec().Key(); k != want {
					t.Errorf("key not stable: %s != %s", k, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// scalarFieldPaths enumerates every scalar field of Spec (descending
// into embedded structs such as core.Config) by field-index path.
func scalarFieldPaths(t reflect.Type, idx []int) [][]int {
	var out [][]int
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		ni := append(append([]int{}, idx...), i)
		if f.Type.Kind() == reflect.Struct {
			out = append(out, scalarFieldPaths(f.Type, ni)...)
			continue
		}
		out = append(out, ni)
	}
	return out
}

// TestKeySensitivity: mutating any single field of the spec — any
// protection-configuration flag, the seed point, rounds, the scenario
// version, the fingerprint — must change the key.
func TestKeySensitivity(t *testing.T) {
	base := baseSpec()
	k0 := base.Key()
	paths := scalarFieldPaths(reflect.TypeOf(base), nil)
	// Spec has 11 scalar fields of its own plus one per core.Config
	// mechanism; a shrinking count means a field stopped being keyed.
	if want := 11 + reflect.TypeOf(core.Config{}).NumField(); len(paths) != want {
		t.Fatalf("spec has %d scalar fields, want %d — update the key tests with the schema", len(paths), want)
	}
	seen := map[Key]string{k0: "base"}
	for _, p := range paths {
		m := base
		fv := reflect.ValueOf(&m).Elem().FieldByIndex(p)
		name := fieldName(reflect.TypeOf(base), p)
		switch fv.Kind() {
		case reflect.String:
			fv.SetString(fv.String() + "x")
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.Int:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.25)
		default:
			t.Fatalf("field %s: unhandled kind %s — extend the key tests", name, fv.Kind())
		}
		k := m.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

func fieldName(t reflect.Type, path []int) string {
	name := ""
	for _, i := range path {
		f := t.Field(i)
		if name != "" {
			name += "."
		}
		name += f.Name
		t = f.Type
	}
	return name
}

// sampleRow exercises every representable awkwardness: NaN error rate,
// NaN/±Inf extras, and full-precision floats.
func sampleRow() attacks.Row {
	return attacks.Row{
		Label: "flush+pad (full)",
		Est: channel.Estimate{
			CapacityBits: 1.2345678901234567,
			MIUniform:    0.9876543210987654,
			FloorBits:    0.0123456789,
			CILow:        1.1111111111111112,
			CIHigh:       1.3333333333333333,
			N:            144,
			Bins:         16,
		},
		ErrRate:   math.NaN(),
		Rounds:    240,
		RoundsRun: 450,
		SimOps:    987654321,
		Extra: []attacks.KV{
			{K: "util", V: 0.25},
			{K: "nan", V: math.NaN()},
			{K: "inf", V: math.Inf(1)},
			{K: "ninf", V: math.Inf(-1)},
		},
	}
}

func rowsBitIdentical(a, b attacks.Row) bool {
	if a.Label != b.Label || a.SimOps != b.SimOps ||
		a.Rounds != b.Rounds || a.RoundsRun != b.RoundsRun ||
		a.Est.N != b.Est.N || a.Est.Bins != b.Est.Bins ||
		len(a.Extra) != len(b.Extra) {
		return false
	}
	f := math.Float64bits
	if f(a.Est.CapacityBits) != f(b.Est.CapacityBits) ||
		f(a.Est.MIUniform) != f(b.Est.MIUniform) ||
		f(a.Est.FloorBits) != f(b.Est.FloorBits) ||
		f(a.Est.CILow) != f(b.Est.CILow) ||
		f(a.Est.CIHigh) != f(b.Est.CIHigh) ||
		f(a.ErrRate) != f(b.ErrRate) {
		return false
	}
	for i := range a.Extra {
		if a.Extra[i].K != b.Extra[i].K || f(a.Extra[i].V) != f(b.Extra[i].V) {
			return false
		}
	}
	return true
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := baseSpec().Key()
	if _, ok := s.Get(k); ok {
		t.Fatal("empty store served a cell")
	}
	row := sampleRow()
	if err := s.Put(k, row); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("stored cell not served")
	}
	if !rowsBitIdentical(row, got) {
		t.Fatalf("round-trip not bit-identical:\nput: %+v\ngot: %+v", row, got)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

// TestCorruptEntriesAreMisses: every way a store file can be damaged —
// truncation, bit rot, wrong key, unknown version, plain garbage — must
// read as a miss, never as a served result.
func TestCorruptEntriesAreMisses(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := baseSpec().Key()
	if err := s.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(s.path(k))
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(s.path(k), pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := map[string][]byte{
		"empty":        {},
		"garbage":      []byte("not json at all"),
		"truncated":    pristine[:len(pristine)/2],
		"almost-whole": pristine[:len(pristine)-2],
	}
	// Flip one digit inside the payload (after the "cell": marker, so
	// the envelope still parses and the version check passes): the
	// checksum must catch it even though the JSON stays valid.
	flipped := append([]byte(nil), pristine...)
	payload := bytes.Index(flipped, []byte(`"cell":`))
	if payload < 0 {
		t.Fatal("entry layout changed: no cell payload marker")
	}
	rotted := false
	for i := payload; i < len(flipped); i++ {
		if flipped[i] >= '1' && flipped[i] <= '8' {
			flipped[i]++
			rotted = true
			break
		}
	}
	if !rotted {
		t.Fatal("found no payload digit to rot")
	}
	cases["bit-rot"] = flipped
	// An entry claiming a different key (e.g. a file renamed by hand).
	other := baseSpec()
	other.Seed++
	otherKey := other.Key()
	if err := s.Put(otherKey, sampleRow()); err != nil {
		t.Fatal(err)
	}
	wrongKey, err := os.ReadFile(s.path(otherKey))
	if err != nil {
		t.Fatal(err)
	}
	cases["wrong-key"] = wrongKey

	for name, data := range cases {
		restore()
		if err := os.WriteFile(s.path(k), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("%s: corrupt entry was served", name)
		}
	}

	// A corrupt entry behaves as a miss end to end: re-Put repairs it.
	restore()
	if err := os.WriteFile(s.path(k), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || !rowsBitIdentical(got, sampleRow()) {
		t.Fatal("re-Put did not repair a corrupt entry")
	}
}

// TestConcurrentWriters: many goroutines hammering the same directory —
// including the same keys, as same-store shard runs do — must lose
// nothing and corrupt nothing.
func TestConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers, cells = 8, 24
	specs := make([]Spec, cells)
	rows := make([]attacks.Row, cells)
	for i := range specs {
		specs[i] = baseSpec()
		specs[i].Seed = uint64(i)
		rows[i] = sampleRow()
		rows[i].SimOps = uint64(i * 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cells; i++ {
				// Every writer writes every cell: maximal same-key
				// contention with identical content, as content
				// addressing guarantees.
				c := (i + w) % cells
				if err := s.Put(specs[c].Key(), rows[c]); err != nil {
					t.Errorf("writer %d cell %d: %v", w, c, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range specs {
		got, ok := s.Get(specs[i].Key())
		if !ok {
			t.Fatalf("cell %d lost", i)
		}
		if !rowsBitIdentical(got, rows[i]) {
			t.Fatalf("cell %d corrupted: %+v", i, got)
		}
	}
	if n, err := s.Len(); err != nil || n != cells {
		t.Fatalf("Len = %d, %v; want %d", n, err, cells)
	}
	// No temp droppings left behind.
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) != ".json" {
			t.Errorf("stray file %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMergeFrom: merging shard stores is associative, skips corrupt
// source entries, and never overwrites existing cells.
func TestMergeFrom(t *testing.T) {
	mkStore := func(seeds ...uint64) *Store {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			sp := baseSpec()
			sp.Seed = seed
			row := sampleRow()
			row.SimOps = seed
			if err := s.Put(sp.Key(), row); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	keyOf := func(seed uint64) Key {
		sp := baseSpec()
		sp.Seed = seed
		return sp.Key()
	}

	a := mkStore(1, 2)
	b := mkStore(2, 3) // overlaps a on seed 2
	// Corrupt one of b's entries: it must be skipped, not propagated.
	if err := os.WriteFile(b.path(keyOf(3)), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}

	dst := mkStore()
	if added, err := dst.MergeFrom(a.Dir()); err != nil || added != 2 {
		t.Fatalf("merge a: added=%d err=%v", added, err)
	}
	if added, err := dst.MergeFrom(b.Dir()); err != nil || added != 0 {
		t.Fatalf("merge b: added=%d err=%v (seed 2 exists, seed 3 corrupt)", added, err)
	}
	for _, seed := range []uint64{1, 2} {
		row, ok := dst.Get(keyOf(seed))
		if !ok || row.SimOps != seed {
			t.Fatalf("seed %d after merge: ok=%v row=%+v", seed, ok, row)
		}
	}
	if _, ok := dst.Get(keyOf(3)); ok {
		t.Fatal("corrupt source entry propagated")
	}

	// A corrupt destination entry is a miss by contract, so merging
	// repairs it from a valid source instead of skipping it.
	if err := os.WriteFile(dst.path(keyOf(1)), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	if added, err := dst.MergeFrom(a.Dir()); err != nil || added != 1 {
		t.Fatalf("repair merge: added=%d err=%v", added, err)
	}
	if row, ok := dst.Get(keyOf(1)); !ok || row.SimOps != 1 {
		t.Fatalf("corrupt dest entry not repaired: ok=%v row=%+v", ok, row)
	}

	// Opposite merge order reaches the same store contents.
	dst2 := mkStore()
	if _, err := dst2.MergeFrom(b.Dir()); err != nil {
		t.Fatal(err)
	}
	if _, err := dst2.MergeFrom(a.Dir()); err != nil {
		t.Fatal(err)
	}
	k1, err := dst.Keys()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := dst2.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(k1) != fmt.Sprint(k2) {
		t.Fatalf("merge order changed contents:\n%v\n%v", k1, k2)
	}
}

// TestKeysIgnoresJunk: stray files and misnamed entries are invisible.
func TestKeysIgnoresJunk(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := baseSpec().Key()
	if err := s.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(s.Dir(), "zz"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{
		filepath.Join(s.Dir(), "README"),
		filepath.Join(s.Dir(), "zz", "nothex.json"),
		filepath.Join(s.Dir(), k.String()[:2], "misplaced.txt"),
	} {
		if err := os.WriteFile(junk, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != k {
		t.Fatalf("Keys = %v, want just %s", keys, k)
	}
}

func TestOpenEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
