package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedMixedStore fills st with cells, proofs, and conformance entries
// and returns all keys by kind.
func seedMixedStore(t *testing.T, st CellStore, nCells int) (cells, proofs, conforms []Key) {
	t.Helper()
	for i := 0; i < nCells; i++ {
		k := specAt(i).Key()
		if err := st.Put(k, sampleRow()); err != nil {
			t.Fatal(err)
		}
		cells = append(cells, k)
	}
	for i := 0; i < 3; i++ {
		k := proofSpecAt(i).Key()
		if err := st.PutProof(k, sampleProof()); err != nil {
			t.Fatal(err)
		}
		proofs = append(proofs, k)
	}
	for i := 0; i < 3; i++ {
		k := conformKeyAt(i)
		if err := st.PutConform(k, sampleConform()); err != nil {
			t.Fatal(err)
		}
		conforms = append(conforms, k)
	}
	return cells, proofs, conforms
}

// assertMixedStore checks every seeded entry reads back from st.
func assertMixedStore(t *testing.T, st CellStore, cells, proofs, conforms []Key, phase string) {
	t.Helper()
	for i, k := range cells {
		row, ok := st.Get(k)
		if !ok || !rowsBitIdentical(row, sampleRow()) {
			t.Fatalf("%s: cell %d failed round trip (ok=%v)", phase, i, ok)
		}
	}
	for i, k := range proofs {
		if pr, ok := st.GetProof(k); !ok || pr.BoundedRuns != 2 {
			t.Fatalf("%s: proof %d failed round trip (ok=%v)", phase, i, ok)
		}
	}
	for i, k := range conforms {
		if c, ok := st.GetConform(k); !ok || c.Verdict != "conforms" {
			t.Fatalf("%s: conform %d failed round trip (ok=%v)", phase, i, ok)
		}
	}
}

// TestMergeFileIntoPacked migrates a file store into a packed one and
// checks every entry kind arrives, warm and byte-identical.
func TestMergeFileIntoPacked(t *testing.T) {
	fileDir := t.TempDir()
	fs, err := Open(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	cells, proofs, conforms := seedMixedStore(t, fs, 5)

	p, err := OpenPacked(t.TempDir(), PackedOptions{CellTag: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	added, err := p.MergeFrom(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cells) + len(proofs) + len(conforms); added != want {
		t.Fatalf("merged %d entries, want %d", added, want)
	}
	assertMixedStore(t, p, cells, proofs, conforms, "file→packed")

	// Envelope bytes must be verbatim: the exchange-unit invariant
	// that makes migration exact.
	for _, k := range cells {
		fb, ok1 := fs.getRaw(k)
		pb, ok2 := p.getRaw(k)
		if !ok1 || !ok2 || !bytes.Equal(fb, pb) {
			t.Fatalf("cell %s bytes differ across backends (ok %v %v)", k, ok1, ok2)
		}
	}

	// Idempotence: a second merge adds nothing.
	added, err = p.MergeFrom(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("re-merge added %d entries, want 0", added)
	}
}

// TestMergePackedIntoFile is the reverse migration.
func TestMergePackedIntoFile(t *testing.T) {
	packedDir := t.TempDir()
	p, err := OpenPacked(packedDir, PackedOptions{CellTag: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	cells, proofs, conforms := seedMixedStore(t, p, 5)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	fileDir := t.TempDir()
	fs, err := Open(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	added, err := fs.MergeFrom(packedDir)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cells) + len(proofs) + len(conforms); added != want {
		t.Fatalf("merged %d entries, want %d", added, want)
	}
	assertMixedStore(t, fs, cells, proofs, conforms, "packed→file")

	// Round trip back: pack the file store into a fresh packed store
	// and compare raw bytes — the full migration cycle is lossless.
	p2, err := OpenPacked(t.TempDir(), PackedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.MergeFrom(fileDir); err != nil {
		t.Fatal(err)
	}
	ro, err := openPacked(packedDir, PackedOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	for _, k := range append(append(cells, proofs...), conforms...) {
		a, ok1 := ro.getRaw(k)
		b, ok2 := p2.getRaw(k)
		if !ok1 || !ok2 || !bytes.Equal(a, b) {
			t.Fatalf("entry %s not byte-identical after pack→unpack→pack (ok %v %v)", k, ok1, ok2)
		}
	}
}

// TestMergeSkipsCorruptPackedSource bit-flips one packed record and
// checks merging skips it (misses never propagate) while carrying the
// rest.
func TestMergeSkipsCorruptPackedSource(t *testing.T) {
	packedDir := t.TempDir()
	p, err := OpenPacked(packedDir, PackedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cells, _, _ := seedMixedStore(t, p, 3)
	victim := cells[1]
	loc := p.index[victim]
	segPath := filepath.Join(packedDir, p.segs[loc.seg].name)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], loc.payloadOff+int64(loc.payloadLen)/2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x20
	if _, err := f.WriteAt(b[:], loc.payloadOff+int64(loc.payloadLen)/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	added, err := fs.MergeFrom(packedDir)
	if err != nil {
		t.Fatal(err)
	}
	// The flipped payload fails the record's CRC, so the source scan
	// skips exactly that record and resyncs: the victim must not
	// arrive, everything else must.
	if _, ok := fs.Get(victim); ok {
		t.Fatal("corrupt source entry propagated through merge")
	}
	if added != 8 {
		t.Fatalf("merge added %d entries, want 8 (2 intact cells + 3 proofs + 3 conforms)", added)
	}
	for _, k := range []Key{cells[0], cells[2]} {
		if _, ok := fs.Get(k); !ok {
			t.Fatalf("intact entry %s lost in merge", k)
		}
	}
}

// TestMergeFromMissingSource pins the error path both backends share.
func TestMergeFromMissingSource(t *testing.T) {
	p, err := OpenPacked(t.TempDir(), PackedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.MergeFrom(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("merge from a missing directory succeeded")
	}
}
