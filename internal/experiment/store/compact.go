package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// Compaction rewrites the store's live records into a fresh generation
// of segments, dropping two kinds of garbage:
//
//   - dead records: superseded duplicates of a key (the recovery
//     scan's newest-record-wins already hides them, compaction
//     reclaims their bytes);
//   - stale records: live records whose fingerprint tag provably
//     predates the current engine fingerprint for their kind — cells
//     the engine would never serve again because the fingerprint is
//     hashed into every key it looks up. Records with an empty tag
//     (merged from another store) are conservatively kept.
//
// The pass is crash-atomic without any write-ahead machinery: new
// segments are written and fsynced under fresh ids, then one atomic
// manifest rename flips the store from the old generation to the new,
// then the old files are unlinked. A crash before the rename leaves
// the old generation intact (the new files are unlisted garbage,
// removed on next open); a crash after it leaves the new generation
// with some already-deleted stragglers that the next open's
// removeUnlisted sweep finishes off.

// Compact rewrites live, non-stale records into a new segment
// generation and reclaims the rest. It reports how many records were
// dropped. The store remains open and usable after it returns.
func (p *Packed) Compact() (dropped int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return 0, fmt.Errorf("store: %s opened read-only", p.dir)
	}
	before := len(p.index) + p.dead
	if err := p.compactLocked(); err != nil {
		return 0, err
	}
	return before - len(p.index), nil
}

// compactLocked does the rewrite. Caller holds p.mu (or is Open, which
// has exclusive access).
func (p *Packed) compactLocked() error {
	// Collect the surviving records in key order for a deterministic
	// output layout: same live set, same bytes, regardless of the
	// arrival order that produced the input generation.
	keys := make([]Key, 0, len(p.index))
	for k := range p.index {
		if p.opt.staleTag(p.index[k].kind, p.index[k].tag) {
			continue
		}
		keys = append(keys, k)
	}
	sortKeys(keys)

	segBytes := p.opt.segmentBytes()
	var (
		newSegs  []*packedSeg
		newIndex = make(map[Key]packedLoc, len(keys))
		buf      []byte
	)
	fail := func(err error) error {
		for _, sg := range newSegs {
			sg.f.Close()
			os.Remove(filepath.Join(p.dir, sg.name))
		}
		return err
	}
	openNext := func() error {
		name := segName(p.nextID)
		f, err := newSegmentFile(p.dir, name)
		if err != nil {
			return err
		}
		p.nextID++
		newSegs = append(newSegs, &packedSeg{name: name, f: f, size: int64(segHeaderSize)})
		return nil
	}
	if err := openNext(); err != nil {
		return fail(err)
	}
	for _, k := range keys {
		loc := p.index[k]
		payload, err := p.readPayload(loc)
		if err != nil {
			// Unreadable bytes behind a live index entry: the entry is
			// a miss by contract, so dropping it is the repair.
			continue
		}
		buf = appendRecord(buf[:0], k, loc.kind, loc.tag, payload)
		cur := newSegs[len(newSegs)-1]
		if cur.size+int64(len(buf)) > segBytes && cur.size > int64(segHeaderSize) {
			if err := cur.f.Sync(); err != nil {
				return fail(fmt.Errorf("store: syncing %s: %v", cur.name, err))
			}
			if err := openNext(); err != nil {
				return fail(err)
			}
			cur = newSegs[len(newSegs)-1]
		}
		if _, err := cur.f.WriteAt(buf, cur.size); err != nil {
			return fail(fmt.Errorf("store: appending to %s: %v", cur.name, err))
		}
		newIndex[k] = packedLoc{
			seg:        len(newSegs) - 1,
			kind:       loc.kind,
			tag:        loc.tag,
			payloadOff: cur.size + int64(recHeaderSize) + int64(len(loc.tag)),
			payloadLen: loc.payloadLen,
		}
		cur.size += int64(len(buf))
	}
	for _, sg := range newSegs {
		if err := sg.f.Sync(); err != nil {
			return fail(fmt.Errorf("store: syncing %s: %v", sg.name, err))
		}
	}

	// The flip: publish the new generation's manifest atomically, then
	// reclaim the old files.
	oldSegs := p.segs
	p.segs = newSegs
	if err := p.writeManifest(); err != nil {
		p.segs = oldSegs
		return fail(err)
	}
	p.index = newIndex
	p.dead = 0
	p.unsynced = 0
	for _, sg := range oldSegs {
		sg.f.Close()
		os.Remove(filepath.Join(p.dir, sg.name))
	}
	// The old sidecar describes deleted segments; it would fail its
	// layout check anyway, but removing it avoids a pointless load.
	os.Remove(filepath.Join(p.dir, indexName))
	return nil
}
