package store

import (
	"os"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/prove/absmodel"
)

// baseDiscoverSpec is a representative fuzzer evaluation point.
func baseDiscoverSpec() DiscoverSpec {
	return DiscoverSpec{
		Fingerprint: "hw/1|kernel/2|channel/2|attacks/1|conform/1|discover/1",
		Ablation:    "no flush",
		Prot:        core.NoProtection(),
		Cfg:         absmodel.DefaultConfig(),
		HiA:         []int{0, 1, -1, 2},
		HiB:         []int{2, -2, 1, 0},
		Noise:       nil,
		Rounds:      96,
		Seed:        42,
	}
}

// discoverKeyAt derives a distinct discovery key per index.
func discoverKeyAt(i int) Key {
	s := baseDiscoverSpec()
	s.Seed = uint64(i)
	return s.Key()
}

// sampleDiscover is a representative stored evaluation.
func sampleDiscover() DiscoverV1 {
	return DiscoverV1{
		Channels: []ConformChannelV1{
			{Name: "cache", CapacityBits: 0x3ff0000000000000, N: 96, Bins: 16},
			{Name: "tlb", CapacityBits: 0x3fe0000000000000, N: 96, Bins: 16},
		},
		Best:     0,
		Leak:     true,
		SimOps:   55443322,
		Coverage: "00ff",
		CovBits:  8,
	}
}

// TestDiscoverRoundTripBothBackends stores an evaluation in each backend
// and reads it back bit-identically; a cell key must never serve it.
func TestDiscoverRoundTripBothBackends(t *testing.T) {
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := openPackedT(t, t.TempDir(), PackedOptions{DiscoverTag: "fp"})
	defer p.Close()

	k := baseDiscoverSpec().Key()
	want := sampleDiscover()
	for name, st := range map[string]CellStore{"file": fs, "packed": p} {
		if _, ok := st.GetDiscover(k); ok {
			t.Fatalf("%s: cold GetDiscover hit", name)
		}
		if err := st.PutDiscover(k, want); err != nil {
			t.Fatalf("%s: PutDiscover: %v", name, err)
		}
		got, ok := st.GetDiscover(k)
		if !ok {
			t.Fatalf("%s: warm GetDiscover missed", name)
		}
		if len(got.Channels) != 2 || got.Channels[0] != want.Channels[0] ||
			got.Channels[1] != want.Channels[1] || got.Best != want.Best ||
			got.Leak != want.Leak || got.SimOps != want.SimOps ||
			got.Coverage != want.Coverage || got.CovBits != want.CovBits {
			t.Fatalf("%s: round trip mutated the evaluation: %+v", name, got)
		}
		// Kind confusion: the discovery key must not serve as any other
		// kind, and a cell key must not serve as a discovery.
		if _, ok := st.Get(k); ok {
			t.Fatalf("%s: discovery key served as cell", name)
		}
		if _, ok := st.GetProof(k); ok {
			t.Fatalf("%s: discovery key served as proof", name)
		}
		if _, ok := st.GetConform(k); ok {
			t.Fatalf("%s: discovery key served as conform", name)
		}
	}
}

// TestDiscoverCorruptIsMiss bit-flips a stored discovery entry in the
// file backend and checks every read reports a miss, never a wrong row.
func TestDiscoverCorruptIsMiss(t *testing.T) {
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := baseDiscoverSpec().Key()
	if err := fs.PutDiscover(k, sampleDiscover()); err != nil {
		t.Fatal(err)
	}
	path := fs.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.GetDiscover(k); ok {
		t.Fatal("corrupt discovery entry served as a hit")
	}
}

// TestDiscoverPackedSurvivesReopen checks discovery records land in
// segments, reopen from the sidecar, and reopen from a raw scan.
func TestDiscoverPackedSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{DiscoverTag: "fp"})
	for i := 0; i < 5; i++ {
		if err := p.PutDiscover(discoverKeyAt(i), sampleDiscover()); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	check := func(phase string) {
		t.Helper()
		p = openPackedT(t, dir, PackedOptions{DiscoverTag: "fp"})
		defer p.Close()
		for i := 0; i < 5; i++ {
			if d, ok := p.GetDiscover(discoverKeyAt(i)); !ok || !d.Leak {
				t.Fatalf("%s: discovery %d lost (ok=%v)", phase, i, ok)
			}
		}
	}
	check("sidecar reopen")
	os.Remove(dir + "/" + indexName)
	check("scan reopen")
}

// TestMergeCarriesDiscover merges a file store holding all four entry
// kinds into a packed store and checks the discovery entries arrive.
func TestMergeCarriesDiscover(t *testing.T) {
	fileDir := t.TempDir()
	fs, err := Open(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	cells, proofs, conforms := seedMixedStore(t, fs, 2)
	var discovers []Key
	for i := 0; i < 3; i++ {
		k := discoverKeyAt(i)
		if err := fs.PutDiscover(k, sampleDiscover()); err != nil {
			t.Fatal(err)
		}
		discovers = append(discovers, k)
	}

	p := openPackedT(t, t.TempDir(), PackedOptions{})
	defer p.Close()
	added, err := p.MergeFrom(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cells) + len(proofs) + len(conforms) + len(discovers); added != want {
		t.Fatalf("merged %d entries, want %d", added, want)
	}
	for i, k := range discovers {
		if d, ok := p.GetDiscover(k); !ok || d.CovBits != 8 {
			t.Fatalf("discovery %d failed cross-backend merge (ok=%v)", i, ok)
		}
	}
	assertMixedStore(t, p, cells, proofs, conforms, "merge with discover")
}

// TestDiscoverKeyNeverAliasesOtherKinds is the keyspace-disjointness
// property test: a DiscoverSpec key can never collide with a cell,
// proof, or conformance key, because its canonical encoding is prefixed
// with a kind tag no other spec's encoding starts with. Checked over a
// spread of specs per kind.
func TestDiscoverKeyNeverAliasesOtherKinds(t *testing.T) {
	const n = 64
	other := make(map[Key]string, 3*n)
	for i := 0; i < n; i++ {
		other[specAt(i).Key()] = "cell"
		other[proofSpecAt(i).Key()] = "proof"
		other[conformKeyAt(i)] = "conform"
	}
	seen := make(map[Key]bool, 2*n)
	for i := 0; i < n; i++ {
		for v, s := range map[string]DiscoverSpec{
			"seed": func() DiscoverSpec { s := baseDiscoverSpec(); s.Seed = uint64(i); return s }(),
			"prog": func() DiscoverSpec {
				s := baseDiscoverSpec()
				s.HiA = append(s.HiA, i)
				return s
			}(),
		} {
			k := s.Key()
			if kind, clash := other[k]; clash {
				t.Fatalf("discover key (%s variant %d) aliases a %s key", v, i, kind)
			}
			seen[k] = true
		}
	}
	if len(seen) != 2*n {
		t.Fatalf("distinct DiscoverSpecs collided among themselves: %d keys for %d specs", len(seen), 2*n)
	}

	// Program bytes vs noise split must be keyed apart: moving an action
	// from HiA to Noise is a different evaluation.
	a := baseDiscoverSpec()
	b := baseDiscoverSpec()
	b.Noise = []int{b.HiA[len(b.HiA)-1]}
	b.HiA = b.HiA[:len(b.HiA)-1]
	if a.Key() == b.Key() {
		t.Fatal("HiA/Noise split does not affect the key")
	}
}
