package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"timeprot/internal/core"
	"timeprot/internal/prove/absmodel"
)

// Discover entries cache the discovery fuzzer's candidate evaluations:
// one concrete measurement of a program pair under one ablation row,
// plus the coverage bitmap the run lit up. Caching them makes fuzzing
// incremental (a re-run with the same seed replays evaluations from the
// store bit-identically, coverage feedback included) and lets sharded
// fuzz campaigns merge their evaluation sets. The keyspace is disjoint
// from cells, proofs, and conformance outcomes by the kind-prefixed
// canonical encoding of DiscoverSpec.

// discoverKind tags discovery entry files.
const discoverKind = "discover"

// discoverFileVersion is the discovery entry format version;
// unrecognised versions are misses.
const discoverFileVersion = 1

// discoverFileV1 is the on-disk envelope of a discovery entry.
type discoverFileV1 struct {
	V        int             `json:"v"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	Sum      string          `json:"sum"`
	Discover json.RawMessage `json:"discover"`
}

// DiscoverSpec identifies one fuzzer candidate evaluation for keying:
// every input that can influence the measurement or the coverage bits.
type DiscoverSpec struct {
	// Fingerprint is the discovery fingerprint: the joined
	// model-version strings of every concrete simulator layer plus the
	// conformance driver and the discovery harness itself. Any layer
	// bump invalidates every cached evaluation.
	Fingerprint string
	// Ablation is the ablation row's registered name ("no flush", …);
	// Prot the resolved concrete protection configuration it denotes.
	Ablation string
	Prot     core.Config
	// Cfg is the abstract-model sizing configuration the pair was
	// generated against (it bounds the action alphabet and lengths).
	Cfg absmodel.Config
	// HiA, HiB and Noise are the pair's programs in the integer action
	// encoding (user inputs ≥ 0, ActSyscall = -1, ActStartIO = -2).
	HiA, HiB, Noise []int
	// Rounds is the concrete run's transmission rounds; Seed the
	// measurement seed.
	Rounds int
	Seed   uint64
}

// Key derives the DiscoverSpec's content address, using the same
// canonical field-by-field encoding as Spec.Key under a distinguishing
// kind prefix.
func (s DiscoverSpec) Key() Key {
	var b strings.Builder
	b.WriteString("kind=\"discover\"\n")
	writeCanonical(&b, reflect.ValueOf(s), "")
	return sha256.Sum256([]byte(b.String()))
}

// DiscoverV1 is the stored outcome of one candidate evaluation: the
// per-stream capacity estimates (floats as IEEE-754 bit patterns, like
// ConformChannelV1), the leak verdict, and the run's coverage bitmap so
// warm replays feed the fuzzer's energy accounting identically.
type DiscoverV1 struct {
	Channels []ConformChannelV1 `json:"channels"`
	Best     int                `json:"best"`
	Leak     bool               `json:"leak"`
	SimOps   uint64             `json:"sim_ops"`
	// Coverage is the run's coverage bitmap in cover.Map text encoding
	// (hex); CovBits its popcount, stored for cheap reporting.
	Coverage string `json:"coverage"`
	CovBits  int    `json:"cov_bits"`
}

// encodeDiscoverEntry builds the checksummed on-disk envelope for a
// discovery outcome — the byte representation shared by every backend.
func encodeDiscoverEntry(k Key, d DiscoverV1) ([]byte, error) {
	payload, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("store: encoding discovery %s: %v", k, err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(discoverFileV1{
		V:        discoverFileVersion,
		Kind:     discoverKind,
		Key:      k.String(),
		Sum:      hex.EncodeToString(sum[:]),
		Discover: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding discovery entry %s: %v", k, err)
	}
	return data, nil
}

// PutDiscover stores a discovery outcome under key k, with the same
// atomic write discipline as Put.
func (s *Store) PutDiscover(k Key, d DiscoverV1) error {
	data, err := encodeDiscoverEntry(k, d)
	if err != nil {
		return err
	}
	return s.writeAtomic(k, data)
}

// GetDiscover returns the discovery outcome stored under k. Every
// failure mode — missing file, truncation, bit rot, key or kind
// mismatch, unknown format version — reports a miss.
func (s *Store) GetDiscover(k Key) (DiscoverV1, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return DiscoverV1{}, false
	}
	d, err := decodeDiscoverEntry(k, data)
	if err != nil {
		return DiscoverV1{}, false
	}
	return d, true
}

// decodeDiscoverEntry validates and decodes one discovery entry file.
func decodeDiscoverEntry(k Key, data []byte) (DiscoverV1, error) {
	var f discoverFileV1
	if err := json.Unmarshal(data, &f); err != nil {
		return DiscoverV1{}, fmt.Errorf("store: discovery entry %s: %v", k, err)
	}
	if f.Kind != discoverKind {
		return DiscoverV1{}, fmt.Errorf("store: entry %s is not a discovery entry", k)
	}
	if f.V != discoverFileVersion {
		return DiscoverV1{}, fmt.Errorf("store: discovery entry %s: format version %d, want %d", k, f.V, discoverFileVersion)
	}
	if f.Key != k.String() {
		return DiscoverV1{}, fmt.Errorf("store: discovery entry %s claims key %s", k, f.Key)
	}
	sum := sha256.Sum256(f.Discover)
	if hex.EncodeToString(sum[:]) != f.Sum {
		return DiscoverV1{}, fmt.Errorf("store: discovery entry %s: checksum mismatch", k)
	}
	var d DiscoverV1
	if err := json.Unmarshal(f.Discover, &d); err != nil {
		return DiscoverV1{}, fmt.Errorf("store: discovery entry %s payload: %v", k, err)
	}
	return d, nil
}
