package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// plantOrphanTemp drops a .put-* temp file (as a crashed writer would
// leave it) in the shard directory for k, back-dated past tempMaxAge.
func plantOrphanTemp(t *testing.T, dir string, k Key, name string, stale bool) string {
	t.Helper()
	shard := filepath.Join(dir, k.String()[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(shard, name)
	// Half an entry, as a crash mid-write leaves it.
	if err := os.WriteFile(path, []byte(`{"v":2,"key":"`+k.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if stale {
		old := time.Now().Add(-2 * tempMaxAge)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestOpenSweepsOrphanedTemps is the regression test for the temp-file
// leak: crashed writers left .put-* files forever because nothing ever
// unlinked them. Open must remove stale ones, keep fresh ones (a live
// concurrent writer may own them), and never count either as entries.
func TestOpenSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := baseSpec().Key()
	if err := s.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}

	stale := plantOrphanTemp(t, dir, k, ".put-1111", true)
	fresh := plantOrphanTemp(t, dir, k, ".put-2222", false)

	// Keys and Len must ignore temps regardless of the sweep.
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 (temps are not entries)", n, err)
	}
	keys, err := s.Keys()
	if err != nil || len(keys) != 1 || keys[0] != k {
		t.Fatalf("Keys = %v, %v; want just the real entry", keys, err)
	}

	// Reopen: the sweep runs.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale orphan temp survived Open: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp was swept (may belong to a live writer): %v", err)
	}
	// The real entry is untouched.
	row, ok := s.Get(k)
	if !ok || !rowsBitIdentical(row, sampleRow()) {
		t.Fatalf("entry damaged by sweep (ok=%v)", ok)
	}
}

// TestSweepIgnoresCorruptHalfWrittenEntries plants a half-written
// entry published under its final name (a pre-fsync-fix crash shape):
// it must read as a miss, be ignored by nothing (it IS a .json file,
// so Keys/Len count the name — the corrupt-as-miss contract is at
// Get), and be repairable by a fresh Put.
func TestSweepIgnoresCorruptHalfWrittenEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := baseSpec().Key()
	shard := filepath.Join(dir, k.String()[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	half := filepath.Join(shard, k.String()+".json")
	if err := os.WriteFile(half, []byte(`{"v":2,"key":"`+k.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(k); ok {
		t.Fatal("half-written entry served")
	}
	if err := s.Put(k, sampleRow()); err != nil {
		t.Fatalf("re-put over half-written entry: %v", err)
	}
	row, ok := s.Get(k)
	if !ok || !rowsBitIdentical(row, sampleRow()) {
		t.Fatalf("repaired entry unreadable (ok=%v)", ok)
	}
}

// TestLenMatchesKeysWithoutSorting pins the Len fast path against the
// Keys walk on a store with entries across many shards plus junk.
func TestLenMatchesKeysWithoutSorting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	// Junk that must count in neither: a temp, a foreign file, a
	// misplaced entry name in the wrong shard.
	plantOrphanTemp(t, dir, specAt(0).Key(), ".put-9999", false)
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n || cnt != n {
		t.Fatalf("Keys=%d Len=%d, want both %d", len(keys), cnt, n)
	}
}

// TestWriteAtomicLeavesNoTempOnSuccess checks the commit path cleans
// up after itself: after a Put, the shard holds exactly the entry.
func TestWriteAtomicLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := baseSpec().Key()
	if err := s.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(filepath.Join(dir, k.String()[:2]))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() != k.String()+".json" {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = f.Name()
		}
		t.Fatalf("shard holds %v, want exactly the entry", names)
	}
}
