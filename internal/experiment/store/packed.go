package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"timeprot/internal/attacks"
)

// Packed is the segment-backed CellStore: entries live as checksummed,
// length-prefixed records in a handful of append-only segment files,
// located through an in-memory key index that Open rebuilds by
// sequential scan (or loads from the index sidecar when it still
// matches the directory). Compared to the file backend it trades
// multi-process write sharing for O(1) inodes and no per-hit
// open/read/close syscall triple, which is what a matrix of millions
// of cells needs.
//
// Durability: appends are single write syscalls onto the active
// segment with fsyncs on a byte cadence (syncEvery), at rotation, and
// on Close. A crash can therefore lose the tail written since the last
// sync, but never corrupt what came before it: the recovery scan stops
// at the first record whose CRC fails, so a torn tail reads as misses
// — the same corrupt-entry-as-miss contract the file backend keeps,
// with a bounded (re-computable) miss window instead of a per-Put
// fsync.
type Packed struct {
	dir      string
	opt      PackedOptions
	readOnly bool

	mu       sync.Mutex
	closed   bool
	segs     []*packedSeg
	index    map[Key]packedLoc
	active   *os.File // last segment, open for appends (nil when readOnly)
	activeAt int64    // append offset in the active segment
	nextID   uint64   // id for the next rotated or compacted segment
	unsynced int64    // bytes appended since the last fsync
	dead     int      // superseded records discovered by the open scan
	appendBf []byte   // record-encoding scratch, reused across Puts
	readBf   []byte   // payload-read scratch, reused across Gets
}

// packedSeg is one on-disk segment.
type packedSeg struct {
	name string
	f    *os.File
	size int64 // valid bytes (scan-verified); the file may be longer
}

// packedLoc locates one live record.
type packedLoc struct {
	seg        int
	kind       byte
	tag        string
	payloadOff int64
	payloadLen uint32
}

// PackedOptions tunes a packed store. The zero value is valid.
type PackedOptions struct {
	// CellTag, ProofTag, ConformTag and DiscoverTag are the current
	// engine fingerprints for each entry kind. New records are tagged
	// with them, and Compact drops records whose non-empty tag no
	// longer matches — fingerprint garbage collection without decoding
	// a payload. An empty tag means "unknown fingerprint": such records
	// are written for merged entries and are never collected.
	CellTag     string
	ProofTag    string
	ConformTag  string
	DiscoverTag string
	// SegmentBytes rotates the active segment once it exceeds this
	// size. 0 means the default (256 MiB).
	SegmentBytes int64
	// SyncBytes fsyncs the active segment every time this many bytes
	// accumulate unsynced. 0 means the default (8 MiB); negative syncs
	// every Put.
	SyncBytes int64
	// NoAutoCompact disables the compaction pass Open runs when more
	// than a quarter of the scanned records are dead or stale.
	NoAutoCompact bool
}

const (
	manifestName     = "MANIFEST"
	manifestMagic    = "tpmanv1\n"
	defaultSegBytes  = 256 << 20
	defaultSyncBytes = 8 << 20
	// autoCompactRatio is the dead+stale record fraction above which
	// Open compacts before returning.
	autoCompactRatio = 0.25
)

func (o PackedOptions) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return defaultSegBytes
}

func (o PackedOptions) syncBytes() int64 {
	if o.SyncBytes != 0 {
		return o.SyncBytes
	}
	return defaultSyncBytes
}

// tagFor is the current fingerprint tag for a record kind.
func (o PackedOptions) tagFor(kind byte) string {
	switch kind {
	case recKindCell:
		return o.CellTag
	case recKindProof:
		return o.ProofTag
	case recKindConform:
		return o.ConformTag
	case recKindDiscover:
		return o.DiscoverTag
	}
	return ""
}

// staleTag reports whether a record tag is provably from an old
// fingerprint: both the record's tag and the current tag for its kind
// must be known, and differ. Unknown on either side keeps the record.
func (o PackedOptions) staleTag(kind byte, tag string) bool {
	cur := o.tagFor(kind)
	return tag != "" && cur != "" && tag != cur
}

// OpenPacked opens (creating if necessary) the packed store rooted at
// dir for reading and writing.
func OpenPacked(dir string, opt PackedOptions) (*Packed, error) {
	return openPacked(dir, opt, false)
}

func openPacked(dir string, opt PackedOptions, readOnly bool) (*Packed, error) {
	if !readOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %v", dir, err)
		}
	}
	p := &Packed{dir: dir, opt: opt, readOnly: readOnly, index: make(map[Key]packedLoc)}
	names, haveManifest, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !haveManifest {
		// No manifest (fresh store, or one lost to crash-before-sync):
		// adopt every segment file in name order. Name order is
		// creation order, which newest-record-wins needs.
		globbed, _ := filepath.Glob(filepath.Join(dir, "seg-*"+segSuffix))
		for _, g := range globbed {
			names = append(names, filepath.Base(g))
		}
		sort.Strings(names)
	} else if !readOnly {
		// Segment files the manifest does not list are crash garbage
		// from an interrupted rotation or compaction; drop them so
		// their ids can be reused safely.
		p.removeUnlisted(names)
	}
	if err := p.load(names); err != nil {
		p.closeFiles()
		return nil, err
	}
	if p.readOnly {
		return p, nil
	}
	if err := p.openActive(haveManifest, names); err != nil {
		p.closeFiles()
		return nil, err
	}
	if !opt.NoAutoCompact && p.shouldAutoCompact() {
		if err := p.compactLocked(); err != nil {
			p.closeFiles()
			return nil, err
		}
	}
	return p, nil
}

// load opens the named segments and builds the key index, preferring
// the sidecar when it still describes this exact segment layout and
// falling back to a full sequential scan.
func (p *Packed) load(names []string) error {
	if p.loadFromSidecar(names) {
		return nil
	}
	for _, name := range names {
		f, err := os.Open(filepath.Join(p.dir, name))
		if err != nil {
			return fmt.Errorf("store: opening segment %s: %v", name, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: segment %s: %v", name, err)
		}
		segIdx := len(p.segs)
		validEnd, skipped, err := scanSegment(f, st.Size(), 0, func(r scannedRecord) {
			if _, ok := p.index[r.key]; ok {
				p.dead++
			}
			p.index[r.key] = packedLoc{seg: segIdx, kind: r.kind, tag: r.tag, payloadOff: r.payloadOff, payloadLen: r.payloadLen}
		})
		if err != nil {
			f.Close()
			return err
		}
		p.dead += skipped
		p.segs = append(p.segs, &packedSeg{name: name, f: f, size: validEnd})
	}
	return nil
}

// loadFromSidecar tries the persisted index. It is trusted only when
// it names exactly the live segments and every sealed segment still
// has its recorded size; the last segment may have grown (appends
// after the sidecar was written) and its tail is re-scanned.
func (p *Packed) loadFromSidecar(names []string) bool {
	idxSegs, tags, entries, ok := readIndexFile(p.dir)
	if !ok || len(idxSegs) != len(names) {
		return false
	}
	files := make([]*os.File, 0, len(idxSegs))
	bail := func() bool {
		for _, f := range files {
			f.Close()
		}
		return false
	}
	sizes := make([]int64, len(idxSegs))
	for i, sg := range idxSegs {
		if sg.name != names[i] {
			return bail()
		}
		f, err := os.Open(filepath.Join(p.dir, sg.name))
		if err != nil {
			return bail()
		}
		files = append(files, f)
		st, err := f.Stat()
		if err != nil {
			return bail()
		}
		sizes[i] = st.Size()
		grownOK := i == len(idxSegs)-1 && st.Size() >= sg.size
		if st.Size() != sg.size && !grownOK {
			return bail()
		}
	}
	for i, sg := range idxSegs {
		p.segs = append(p.segs, &packedSeg{name: sg.name, f: files[i], size: sg.size})
	}
	for _, e := range entries {
		p.index[e.key] = packedLoc{seg: int(e.seg), kind: e.kind, tag: tags[e.tag], payloadOff: int64(e.payloadOff), payloadLen: e.payloadLen}
	}
	if n := len(p.segs); n > 0 && sizes[n-1] > p.segs[n-1].size {
		// Appends landed after the sidecar was persisted: scan just
		// the tail, resuming at the sidecar's record boundary.
		last := p.segs[n-1]
		validEnd, skipped, err := scanSegment(last.f, sizes[n-1], last.size, func(r scannedRecord) {
			if _, ok := p.index[r.key]; ok {
				p.dead++
			}
			p.index[r.key] = packedLoc{seg: n - 1, kind: r.kind, tag: r.tag, payloadOff: r.payloadOff, payloadLen: r.payloadLen}
		})
		if err != nil {
			p.segs = nil
			return bail()
		}
		p.dead += skipped
		last.size = validEnd
	}
	return true
}

// openActive prepares the last segment for appends, creating the first
// segment (and the manifest) for a fresh store. Any torn tail past the
// last valid record is truncated away so new appends extend a clean
// prefix.
func (p *Packed) openActive(haveManifest bool, names []string) error {
	if len(p.segs) == 0 {
		name := segName(1)
		f, err := newSegmentFile(p.dir, name)
		if err != nil {
			return err
		}
		p.segs = append(p.segs, &packedSeg{name: name, f: f, size: int64(segHeaderSize)})
		p.nextID = 2
		return p.writeManifest()
	}
	last := p.segs[len(p.segs)-1]
	f, err := os.OpenFile(filepath.Join(p.dir, last.name), os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: reopening segment %s: %v", last.name, err)
	}
	if err := f.Truncate(last.size); err != nil {
		f.Close()
		return fmt.Errorf("store: truncating torn tail of %s: %v", last.name, err)
	}
	last.f.Close()
	last.f = f
	p.nextID = nextSegID(p.segs)
	if !haveManifest {
		// Adopted segments without a manifest: persist one now so the
		// layout is explicit from here on.
		return p.writeManifest()
	}
	return nil
}

// nextSegID is one past the highest id among the live segments.
func nextSegID(segs []*packedSeg) uint64 {
	var max uint64
	for _, sg := range segs {
		var id uint64
		if _, err := fmt.Sscanf(sg.name, "seg-%d"+segSuffix, &id); err == nil && id > max {
			max = id
		}
	}
	return max + 1
}

// shouldAutoCompact reports whether the open scan found enough dead or
// stale records to justify a compaction pass.
func (p *Packed) shouldAutoCompact() bool {
	stale := 0
	for _, loc := range p.index {
		if p.opt.staleTag(loc.kind, loc.tag) {
			stale++
		}
	}
	total := len(p.index) + p.dead
	if total == 0 {
		return false
	}
	return float64(p.dead+stale)/float64(total) > autoCompactRatio
}

// removeUnlisted deletes segment files the manifest does not name.
func (p *Packed) removeUnlisted(names []string) {
	listed := make(map[string]bool, len(names))
	for _, n := range names {
		listed[n] = true
	}
	globbed, _ := filepath.Glob(filepath.Join(p.dir, "seg-*"+segSuffix))
	for _, g := range globbed {
		if !listed[filepath.Base(g)] {
			os.Remove(g)
		}
	}
}

// readManifest loads the segment list. A missing manifest is not an
// error (ok=false lets the caller adopt loose segments); a present but
// malformed one is, because silently ignoring it could resurrect
// compacted-away garbage.
func readManifest(dir string) (names []string, ok bool, err error) {
	data, rerr := os.ReadFile(filepath.Join(dir, manifestName))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: reading manifest: %v", rerr)
	}
	s := string(data)
	if !strings.HasPrefix(s, manifestMagic) {
		return nil, false, fmt.Errorf("store: manifest: bad magic")
	}
	for _, line := range strings.Split(s[len(manifestMagic):], "\n") {
		if line == "" {
			continue
		}
		if filepath.Base(line) != line || !strings.HasSuffix(line, segSuffix) {
			return nil, false, fmt.Errorf("store: manifest: bad segment name %q", line)
		}
		names = append(names, line)
	}
	return names, true, nil
}

// writeManifest atomically publishes the current segment list: temp
// file, fsync, rename, directory sync. Readers see the old complete
// list or the new complete list, never a partial one.
func (p *Packed) writeManifest() error {
	var b strings.Builder
	b.WriteString(manifestMagic)
	for _, sg := range p.segs {
		b.WriteString(sg.name)
		b.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(p.dir, ".man-*")
	if err != nil {
		return fmt.Errorf("store: manifest temp: %v", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.WriteString(b.String()); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing manifest: %v", err)
	}
	if err := os.Rename(tmpName, filepath.Join(p.dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing manifest: %v", err)
	}
	return syncDir(p.dir)
}

// Dir returns the store's root directory.
func (p *Packed) Dir() string { return p.dir }

// append writes one record for k with the current fingerprint tag for
// its kind.
func (p *Packed) append(k Key, kind byte, payload []byte) error {
	return p.appendTagged(k, kind, p.opt.tagFor(kind), payload)
}

// appendTagged writes one record and maintains the index, rotating and
// syncing per policy. Existing keys are content-addressed duplicates
// and skipped, matching the file backend's effective behaviour.
func (p *Packed) appendTagged(k Key, kind byte, tag string, payload []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return fmt.Errorf("store: %s opened read-only", p.dir)
	}
	if _, ok := p.index[k]; ok {
		return nil
	}
	if len(tag) > 255 {
		tag = tag[:255] // must mirror appendRecord's clamp for payloadOff
	}
	p.appendBf = appendRecord(p.appendBf[:0], k, kind, tag, payload)
	rec := p.appendBf
	segIdx := len(p.segs) - 1
	active := p.segs[segIdx]
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		return fmt.Errorf("store: appending to %s: %v", active.name, err)
	}
	loc := packedLoc{
		seg:        segIdx,
		kind:       kind,
		tag:        tag,
		payloadOff: active.size + int64(recHeaderSize) + int64(len(tag)),
		payloadLen: uint32(len(payload)),
	}
	active.size += int64(len(rec))
	p.unsynced += int64(len(rec))
	p.index[k] = loc
	if p.unsynced >= p.opt.syncBytes() || p.opt.SyncBytes < 0 {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing %s: %v", active.name, err)
		}
		p.unsynced = 0
	}
	if active.size >= p.opt.segmentBytes() {
		return p.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment (final fsync) and starts a new
// one: create + sync the file, sync the directory, then publish the
// new manifest atomically. A crash between those steps leaves either
// the old manifest (the header-only new segment is unlisted garbage,
// removed on next open) or the new one — never a lost record.
func (p *Packed) rotateLocked() error {
	active := p.segs[len(p.segs)-1]
	if err := active.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %v", active.name, err)
	}
	p.unsynced = 0
	name := segName(p.nextID)
	f, err := newSegmentFile(p.dir, name)
	if err != nil {
		return err
	}
	p.nextID++
	p.segs = append(p.segs, &packedSeg{name: name, f: f, size: int64(segHeaderSize)})
	return p.writeManifest()
}

// readPayload fetches a located record's payload into the shared
// scratch buffer (callers must copy before releasing the lock if the
// bytes escape).
func (p *Packed) readPayload(loc packedLoc) ([]byte, error) {
	if cap(p.readBf) < int(loc.payloadLen) {
		p.readBf = make([]byte, loc.payloadLen)
	}
	buf := p.readBf[:loc.payloadLen]
	if _, err := p.segs[loc.seg].f.ReadAt(buf, loc.payloadOff); err != nil {
		return nil, err
	}
	return buf, nil
}

// Get returns the row stored under k; every failure mode is a miss.
func (p *Packed) Get(k Key) (attacks.Row, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.index[k]
	if !ok || loc.kind != recKindCell {
		return attacks.Row{}, false
	}
	data, err := p.readPayload(loc)
	if err != nil {
		return attacks.Row{}, false
	}
	row, err := decodeEntry(k, data)
	if err != nil {
		return attacks.Row{}, false
	}
	return row, true
}

// Put stores a measured row under k.
func (p *Packed) Put(k Key, row attacks.Row) error {
	data, err := encodeCellEntry(k, row)
	if err != nil {
		return err
	}
	return p.append(k, recKindCell, data)
}

// GetProof returns the proof verdict stored under k.
func (p *Packed) GetProof(k Key) (ProofV1, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.index[k]
	if !ok || loc.kind != recKindProof {
		return ProofV1{}, false
	}
	data, err := p.readPayload(loc)
	if err != nil {
		return ProofV1{}, false
	}
	pr, err := decodeProofEntry(k, data)
	if err != nil {
		return ProofV1{}, false
	}
	return pr, true
}

// PutProof stores a proof verdict under k.
func (p *Packed) PutProof(k Key, pr ProofV1) error {
	data, err := encodeProofEntry(k, pr)
	if err != nil {
		return err
	}
	return p.append(k, recKindProof, data)
}

// GetConform returns the conformance outcome stored under k.
func (p *Packed) GetConform(k Key) (ConformV1, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.index[k]
	if !ok || loc.kind != recKindConform {
		return ConformV1{}, false
	}
	data, err := p.readPayload(loc)
	if err != nil {
		return ConformV1{}, false
	}
	c, err := decodeConformEntry(k, data)
	if err != nil {
		return ConformV1{}, false
	}
	return c, true
}

// PutConform stores a conformance outcome under k.
func (p *Packed) PutConform(k Key, c ConformV1) error {
	data, err := encodeConformEntry(k, c)
	if err != nil {
		return err
	}
	return p.append(k, recKindConform, data)
}

// GetDiscover returns the discovery evaluation stored under k.
func (p *Packed) GetDiscover(k Key) (DiscoverV1, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.index[k]
	if !ok || loc.kind != recKindDiscover {
		return DiscoverV1{}, false
	}
	data, err := p.readPayload(loc)
	if err != nil {
		return DiscoverV1{}, false
	}
	d, err := decodeDiscoverEntry(k, data)
	if err != nil {
		return DiscoverV1{}, false
	}
	return d, true
}

// PutDiscover stores a discovery evaluation under k.
func (p *Packed) PutDiscover(k Key, d DiscoverV1) error {
	data, err := encodeDiscoverEntry(k, d)
	if err != nil {
		return err
	}
	return p.append(k, recKindDiscover, data)
}

// Keys lists every live entry's key in sorted order.
func (p *Packed) Keys() ([]Key, error) {
	p.mu.Lock()
	keys := make([]Key, 0, len(p.index))
	for k := range p.index {
		keys = append(keys, k)
	}
	p.mu.Unlock()
	sortKeys(keys)
	return keys, nil
}

// Len counts the live entries; the index makes it O(1).
func (p *Packed) Len() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.index), nil
}

// MergeFrom folds every valid entry of the store rooted at src (either
// backend) into this one.
func (p *Packed) MergeFrom(src string) (added int, err error) {
	return mergeInto(p, src)
}

// getRaw returns the validated envelope bytes stored under k (a fresh
// copy, safe to retain).
func (p *Packed) getRaw(k Key) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	loc, ok := p.index[k]
	if !ok {
		return nil, false
	}
	data, err := p.readPayload(loc)
	if err != nil {
		return nil, false
	}
	if validateEntry(k, data) != nil {
		return nil, false
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, true
}

// hasValid reports whether k resolves to a valid entry.
func (p *Packed) hasValid(k Key) bool {
	_, ok := p.getRaw(k)
	return ok
}

// putRaw stores pre-encoded envelope bytes under k. The record's kind
// comes from the envelope's kind tag; its fingerprint tag is left
// empty — the original fingerprint is unknowable here, and an empty
// tag is never garbage-collected.
func (p *Packed) putRaw(k Key, data []byte) error {
	kind, err := entryKind(data)
	if err != nil {
		return fmt.Errorf("store: entry %s: %v", k, err)
	}
	var rk byte
	switch kind {
	case proofKind:
		rk = recKindProof
	case conformKind:
		rk = recKindConform
	case discoverKind:
		rk = recKindDiscover
	default:
		rk = recKindCell
	}
	return p.appendTagged(k, rk, "", data)
}

// Close syncs the active segment, persists the index sidecar for a
// fast reopen, and releases every file handle. Data written before
// Close survives a process crash even without it; only the sidecar
// acceleration and the final unsynced tail need Close to run.
func (p *Packed) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var firstErr error
	if !p.readOnly && len(p.segs) > 0 {
		active := p.segs[len(p.segs)-1]
		if err := active.f.Sync(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: syncing %s: %v", active.name, err)
		}
		p.unsynced = 0
		if err := p.writeSidecarLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	p.closeFiles()
	return firstErr
}

// writeSidecarLocked persists the in-memory index as the sidecar file.
func (p *Packed) writeSidecarLocked() error {
	segs := make([]idxSegment, len(p.segs))
	for i, sg := range p.segs {
		segs[i] = idxSegment{name: sg.name, size: sg.size}
	}
	keys := make([]Key, 0, len(p.index))
	for k := range p.index {
		keys = append(keys, k)
	}
	sortKeys(keys)
	tags, tagIdx := buildTagTable(func(i int) string { return p.index[keys[i]].tag }, len(keys))
	entries := make([]idxEntry, len(keys))
	for i, k := range keys {
		loc := p.index[k]
		entries[i] = idxEntry{
			key:        k,
			kind:       loc.kind,
			seg:        uint32(loc.seg),
			tag:        tagIdx[i],
			payloadOff: uint64(loc.payloadOff),
			payloadLen: loc.payloadLen,
		}
	}
	return writeIndexFile(p.dir, segs, tags, entries)
}

// closeFiles releases every segment handle (safe on partial opens).
func (p *Packed) closeFiles() {
	for _, sg := range p.segs {
		if sg.f != nil {
			sg.f.Close()
			sg.f = nil
		}
	}
}

// PackedStats summarizes a packed store's physical state.
type PackedStats struct {
	Segments int // live segment files
	Live     int // live (indexed) records
	Dead     int // superseded or duplicate records found by the open scan
	Stale    int // live records under a provably old fingerprint
	Bytes    int64
}

// Stats reports the store's physical state (for tpstore stat and the
// auto-compaction heuristic's visibility).
func (p *Packed) Stats() PackedStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PackedStats{Segments: len(p.segs), Live: len(p.index), Dead: p.dead}
	for _, loc := range p.index {
		if p.opt.staleTag(loc.kind, loc.tag) {
			st.Stale++
		}
	}
	for _, sg := range p.segs {
		st.Bytes += sg.size
	}
	return st
}
