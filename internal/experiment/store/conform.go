package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"

	"timeprot/internal/core"
	"timeprot/internal/prove/absmodel"
)

// Conformance entries share the store's directory layout, atomicity,
// and corrupt-entry-as-miss contract with cell and proof entries, but
// carry a cross-check verdict: the abstract prover's acceptance, the
// concrete simulator's per-stream capacity estimates, and the
// classification. Their key space is disjoint from both by the
// kind-prefixed canonical encoding of ConformSpec.

// conformKind tags conformance entry files.
const conformKind = "conform"

// conformFileVersion is the conformance entry format version;
// unrecognised versions are misses.
const conformFileVersion = 1

// conformFileV1 is the on-disk envelope of a conformance entry.
type conformFileV1 struct {
	V       int             `json:"v"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Conform json.RawMessage `json:"conform"`
}

// ConformSpec identifies one conformance cell for keying: every input
// that can influence the dual-driver's verdict. It plays the role Spec
// plays for attack cells and ProofSpec for proof cells.
type ConformSpec struct {
	// Fingerprint is the conformance fingerprint: the joined
	// model-version strings of BOTH sides (abstract prover layers and
	// concrete simulator layers) plus the harness's own version. Any
	// layer bump invalidates every cached conformance cell.
	Fingerprint string
	// Model is the abstract-model platform variant's registered name;
	// Ablation the ablation row's registered name.
	Model    string
	Ablation string
	// Cfg is the resolved (ablated) abstract-model configuration; Prot
	// the matching concrete protection configuration. Both are encoded
	// field by field.
	Cfg  absmodel.Config
	Prot core.Config
	// Pair is the pair's index within its seed block; PairSeed the
	// derived generation seed actually used.
	Pair     int
	PairSeed uint64
	// Rounds is the concrete run's transmission rounds; Families the
	// abstract side's sampled function families; Seed the cell's base
	// seed (family sampling and concrete measurement derivation).
	Rounds   int
	Families int
	Seed     uint64
}

// Key derives the ConformSpec's content address, using the same
// canonical field-by-field encoding as Spec.Key under a distinguishing
// kind prefix.
func (s ConformSpec) Key() Key {
	var b strings.Builder
	b.WriteString("kind=\"conform\"\n")
	writeCanonical(&b, reflect.ValueOf(s), "")
	return sha256.Sum256([]byte(b.String()))
}

// ConformChannelV1 is one stored spy observation stream estimate, with
// every float carried as its IEEE-754 bit pattern for an exact round
// trip.
type ConformChannelV1 struct {
	Name         string `json:"name"`
	CapacityBits uint64 `json:"capacity_bits"`
	MIUniform    uint64 `json:"mi_uniform"`
	FloorBits    uint64 `json:"floor_bits"`
	CILow        uint64 `json:"ci_lo"`
	CIHigh       uint64 `json:"ci_hi"`
	N            int    `json:"n"`
	Bins         int    `json:"bins"`
}

// ConformWitnessV1 is a stored minimized soundness-violation witness.
// Actions use the integer encoding of ProofWitnessV1.
type ConformWitnessV1 struct {
	HiA          []int  `json:"hi_a"`
	HiB          []int  `json:"hi_b"`
	ShrinkEvals  int    `json:"shrink_evals"`
	Channel      string `json:"channel"`
	CapacityBits uint64 `json:"capacity_bits"`
	FloorBits    uint64 `json:"floor_bits"`
	CILow        uint64 `json:"ci_lo"`
	CIHigh       uint64 `json:"ci_hi"`
}

// ConformV1 is the stored conformance-cell outcome: both sides'
// results and the cross-check classification for one generated pair
// under one (model, ablation, seed) point.
type ConformV1 struct {
	Verdict         string             `json:"verdict"`
	HiA             []int              `json:"hi_a"`
	HiB             []int              `json:"hi_b"`
	AbsAccepts      bool               `json:"abs_accepts"`
	AbsRuns         int                `json:"abs_runs"`
	AbsOverruns     int                `json:"abs_overruns"`
	AbsDivergeFam   uint64             `json:"abs_diverge_fam"`
	AbsDivergeIndex int                `json:"abs_diverge_index"`
	Channels        []ConformChannelV1 `json:"channels"`
	Best            int                `json:"best"`
	Leak            bool               `json:"leak"`
	SimOps          uint64             `json:"sim_ops"`
	Witness         *ConformWitnessV1  `json:"witness,omitempty"`
}

// encodeConformEntry builds the checksummed on-disk envelope for a
// conformance outcome — the byte representation shared by every
// backend.
func encodeConformEntry(k Key, c ConformV1) ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("store: encoding conformance %s: %v", k, err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(conformFileV1{
		V:       conformFileVersion,
		Kind:    conformKind,
		Key:     k.String(),
		Sum:     hex.EncodeToString(sum[:]),
		Conform: payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding conformance entry %s: %v", k, err)
	}
	return data, nil
}

// PutConform stores a conformance outcome under key k, with the same
// atomic write discipline as Put.
func (s *Store) PutConform(k Key, c ConformV1) error {
	data, err := encodeConformEntry(k, c)
	if err != nil {
		return err
	}
	return s.writeAtomic(k, data)
}

// GetConform returns the conformance outcome stored under k. Every
// failure mode — missing file, truncation, bit rot, key or kind
// mismatch, unknown format version — reports a miss.
func (s *Store) GetConform(k Key) (ConformV1, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		return ConformV1{}, false
	}
	c, err := decodeConformEntry(k, data)
	if err != nil {
		return ConformV1{}, false
	}
	return c, true
}

// decodeConformEntry validates and decodes one conformance entry file.
func decodeConformEntry(k Key, data []byte) (ConformV1, error) {
	var f conformFileV1
	if err := json.Unmarshal(data, &f); err != nil {
		return ConformV1{}, fmt.Errorf("store: conformance entry %s: %v", k, err)
	}
	if f.Kind != conformKind {
		return ConformV1{}, fmt.Errorf("store: entry %s is not a conformance entry", k)
	}
	if f.V != conformFileVersion {
		return ConformV1{}, fmt.Errorf("store: conformance entry %s: format version %d, want %d", k, f.V, conformFileVersion)
	}
	if f.Key != k.String() {
		return ConformV1{}, fmt.Errorf("store: conformance entry %s claims key %s", k, f.Key)
	}
	sum := sha256.Sum256(f.Conform)
	if hex.EncodeToString(sum[:]) != f.Sum {
		return ConformV1{}, fmt.Errorf("store: conformance entry %s: checksum mismatch", k)
	}
	var c ConformV1
	if err := json.Unmarshal(f.Conform, &c); err != nil {
		return ConformV1{}, fmt.Errorf("store: conformance entry %s payload: %v", k, err)
	}
	return c, nil
}
