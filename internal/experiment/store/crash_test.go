package store

import (
	"os"
	"path/filepath"
	"testing"
)

// The crash-consistency contract, shared by both backends: any torn,
// truncated, bit-flipped, or half-written entry reads as a MISS —
// never as a wrong row, and never as an error that poisons the rest of
// the store. This suite drives both backends through the same
// corruptions; each case asserts the damaged key misses while an
// undamaged key still hits bit-identically.

// crashBackend abstracts the two backends for the shared suite.
type crashBackend struct {
	name string
	// open opens (creating) a store in dir.
	open func(t *testing.T, dir string) CellStore
	// reopen closes st and reopens the same dir, simulating a process
	// restart after the corruption landed.
	reopen func(t *testing.T, dir string, st CellStore) CellStore
	// corruptPayload flips a byte inside the stored entry for k.
	corruptPayload func(t *testing.T, dir string, k Key)
	// truncateTail chops bytes off the physical end of k's entry.
	truncateTail func(t *testing.T, dir string, k Key)
}

func crashBackends() []crashBackend {
	fileOpen := func(t *testing.T, dir string) CellStore {
		t.Helper()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	packedOpen := func(t *testing.T, dir string) CellStore {
		t.Helper()
		p, err := OpenPacked(dir, PackedOptions{NoAutoCompact: true})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// flipByteIn flips one byte at fraction frac of the file holding
	// k's bytes. For the file backend that is the entry file itself;
	// for packed, the damage must land inside k's record, so the
	// offset comes from the live index.
	fileEntryPath := func(t *testing.T, dir string, k Key) string {
		t.Helper()
		return filepath.Join(dir, k.String()[:2], k.String()+".json")
	}
	packedRecordRange := func(t *testing.T, dir string, k Key) (path string, off, n int64) {
		t.Helper()
		p, err := openPacked(dir, PackedOptions{}, true)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		loc, ok := p.index[k]
		if !ok {
			t.Fatalf("key %s not in packed index", k)
		}
		return filepath.Join(dir, p.segs[loc.seg].name), loc.payloadOff, int64(loc.payloadLen)
	}
	flipAt := func(t *testing.T, path string, off int64) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x40
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
	}
	return []crashBackend{
		{
			name: "file",
			open: fileOpen,
			reopen: func(t *testing.T, dir string, st CellStore) CellStore {
				st.Close()
				return fileOpen(t, dir)
			},
			corruptPayload: func(t *testing.T, dir string, k Key) {
				path := fileEntryPath(t, dir, k)
				st, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				flipAt(t, path, st.Size()/2)
			},
			truncateTail: func(t *testing.T, dir string, k Key) {
				path := fileEntryPath(t, dir, k)
				st, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(path, st.Size()/2); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "packed",
			open: packedOpen,
			reopen: func(t *testing.T, dir string, st CellStore) CellStore {
				st.Close()
				os.Remove(filepath.Join(dir, indexName)) // the damage must survive the scan, not hide behind the sidecar
				return packedOpen(t, dir)
			},
			corruptPayload: func(t *testing.T, dir string, k Key) {
				path, off, n := packedRecordRange(t, dir, k)
				flipAt(t, path, off+n/2)
			},
			truncateTail: func(t *testing.T, dir string, k Key) {
				// Chop the segment mid-record: everything from k's
				// payload midpoint on is gone, as a crash mid-append
				// would leave it.
				path, off, n := packedRecordRange(t, dir, k)
				if err := os.Truncate(path, off+n/2); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
}

// seedCrashStore writes two cells and a proof, closes, and returns the
// victim key (last written — for packed it is the record a tail
// truncation can destroy without touching the others) and a survivor.
func seedCrashStore(t *testing.T, b crashBackend, dir string) (st CellStore, victim, survivor Key) {
	t.Helper()
	st = b.open(t, dir)
	survivor = specAt(1).Key()
	if err := st.Put(survivor, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := st.PutProof(baseProofSpec().Key(), sampleProof()); err != nil {
		t.Fatal(err)
	}
	victim = specAt(2).Key()
	if err := st.Put(victim, sampleRow()); err != nil {
		t.Fatal(err)
	}
	return st, victim, survivor
}

// assertMissNotWrong is the contract's core assertion.
func assertMissNotWrong(t *testing.T, st CellStore, victim, survivor Key, phase string) {
	t.Helper()
	if row, ok := st.Get(victim); ok {
		if !rowsBitIdentical(row, sampleRow()) {
			t.Fatalf("%s: corrupt entry served a WRONG row", phase)
		}
		t.Fatalf("%s: corrupt entry served at all (want miss)", phase)
	}
	row, ok := st.Get(survivor)
	if !ok || !rowsBitIdentical(row, sampleRow()) {
		t.Fatalf("%s: undamaged entry lost (ok=%v)", phase, ok)
	}
	if pr, ok := st.GetProof(baseProofSpec().Key()); !ok || pr.BoundedRuns != 2 {
		t.Fatalf("%s: undamaged proof entry lost (ok=%v)", phase, ok)
	}
}

func TestCrashConsistencyBitFlip(t *testing.T) {
	for _, b := range crashBackends() {
		t.Run(b.name, func(t *testing.T) {
			dir := t.TempDir()
			st, victim, survivor := seedCrashStore(t, b, dir)
			st.Close()
			b.corruptPayload(t, dir, victim)
			st = b.open(t, dir)
			defer st.Close()
			assertMissNotWrong(t, st, victim, survivor, "bit flip")
		})
	}
}

func TestCrashConsistencyTruncateMidRecord(t *testing.T) {
	for _, b := range crashBackends() {
		t.Run(b.name, func(t *testing.T) {
			dir := t.TempDir()
			st, victim, survivor := seedCrashStore(t, b, dir)
			st.Close()
			b.truncateTail(t, dir, victim)
			st = b.open(t, dir)
			defer st.Close()
			assertMissNotWrong(t, st, victim, survivor, "truncate")
		})
	}
}

// TestCrashConsistencyKillAndReopen corrupts while a handle is still
// conceptually live, then reopens through the backend's restart path
// (which for packed forces the recovery scan, not the sidecar).
func TestCrashConsistencyKillAndReopen(t *testing.T) {
	for _, b := range crashBackends() {
		t.Run(b.name, func(t *testing.T) {
			dir := t.TempDir()
			st, victim, survivor := seedCrashStore(t, b, dir)
			b.truncateTail(t, dir, victim)
			st = b.reopen(t, dir, st)
			defer st.Close()
			assertMissNotWrong(t, st, victim, survivor, "kill+reopen")

			// The store must accept fresh writes after recovery —
			// including re-measuring the destroyed cell.
			if err := st.Put(victim, sampleRow()); err != nil {
				t.Fatalf("re-put after recovery: %v", err)
			}
			row, ok := st.Get(victim)
			if !ok || !rowsBitIdentical(row, sampleRow()) {
				t.Fatalf("re-put cell unreadable (ok=%v)", ok)
			}
		})
	}
}

// TestCrashConsistencyDuplicateKeyAcrossSegments forges the layout a
// crash replay can produce — the same key recorded twice, in two
// different segments — and checks exactly one live entry results, with
// the newest record winning.
func TestCrashConsistencyDuplicateKeyAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir, PackedOptions{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	k := specAt(7).Key()
	if err := p.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Second segment holding the same key (same bytes — the store is
	// content-addressed, so duplicates are always byte-identical).
	data, err := encodeCellEntry(k, sampleRow())
	if err != nil {
		t.Fatal(err)
	}
	f, err := newSegmentFile(dir, segName(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(appendRecord(nil, k, recKindCell, "", data)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	manifest := manifestMagic + segName(1) + "\n" + segName(2) + "\n"
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, indexName))

	p, err = OpenPacked(dir, PackedOptions{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if n, _ := p.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 for a twice-recorded key", n)
	}
	row, ok := p.Get(k)
	if !ok || !rowsBitIdentical(row, sampleRow()) {
		t.Fatalf("duplicated key misread (ok=%v)", ok)
	}
	if loc := p.index[k]; loc.seg != 1 {
		t.Fatalf("newest record must win: index points at segment %d, want 1 (the later segment)", loc.seg)
	}
}

// TestCrashConsistencyPartialAppendThenWrites truncates the packed
// active segment mid-record and checks subsequent writes land cleanly
// after recovery (the torn tail is cut, not appended past).
func TestCrashConsistencyPartialAppendThenWrites(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir, PackedOptions{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	p.closeFiles() // crash, no Close

	// Tear the last record in half.
	seg := filepath.Join(dir, segName(1))
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-20); err != nil {
		t.Fatal(err)
	}

	p, err = OpenPacked(dir, PackedOptions{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if n, _ := p.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2 after torn tail", n)
	}
	// New writes must be readable after yet another scan-reopen:
	// proves the append offset was reset to the cut, not the old EOF.
	if err := p.Put(specAt(9).Key(), sampleRow()); err != nil {
		t.Fatal(err)
	}
	p.closeFiles()
	os.Remove(filepath.Join(dir, indexName))
	p2, err := OpenPacked(dir, PackedOptions{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if n, _ := p2.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3 after post-recovery append", n)
	}
	if _, ok := p2.Get(specAt(9).Key()); !ok {
		t.Fatal("post-recovery append lost")
	}
}
