package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Index sidecar. The packed backend's key index lives in memory and is
// rebuilt by a sequential scan of every segment on open. For large
// stores that scan is the whole cost of Open, so Close persists the
// index to a checksummed sidecar file that a reopen can load instead —
// strictly an accelerator: deleting it is always safe, and it is
// trusted only when the segment layout it describes still matches the
// directory exactly (same sealed segments at the same sizes). The
// active segment's tail past the recorded size is re-scanned, so an
// index written before a crash still yields a correct reopen.
//
// Layout (all integers little-endian):
//
//	[0:8]    magic "tpidxv1\n"
//	[8:12]   segment count  n
//	n ×      name length u16 | name bytes | valid size u64
//	[..]     tag table count u32, then per tag: length u16 | bytes
//	[..]     entry count u32
//	count ×  key[32] | kind u8 | seg index u32 | tag index u32 |
//	         payload offset u64 | payload length u32
//	[-4:]    CRC-32C of everything before it
const indexName = "index.v1"

const idxMagic = "tpidxv1\n"

// idxSegment names one segment and how many bytes of it the index
// covers. For sealed segments this is the full size; for the active
// segment, the synced size at persist time.
type idxSegment struct {
	name string
	size int64
}

// idxEntry is one indexed record location.
type idxEntry struct {
	key        Key
	kind       byte
	seg        uint32 // index into the segment table
	tag        uint32 // index into the tag table
	payloadOff uint64
	payloadLen uint32
}

// writeIndexFile persists the sidecar atomically (temp + fsync + rename
// + dir sync, same discipline as every other store write).
func writeIndexFile(dir string, segs []idxSegment, tags []string, entries []idxEntry) error {
	buf := make([]byte, 0, 64+len(entries)*56)
	buf = append(buf, idxMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(segs)))
	for _, sg := range segs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sg.name)))
		buf = append(buf, sg.name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sg.size))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tags)))
	for _, t := range tags {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t)))
		buf = append(buf, t...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = append(buf, e.key[:]...)
		buf = append(buf, e.kind)
		buf = binary.LittleEndian.AppendUint32(buf, e.seg)
		buf = binary.LittleEndian.AppendUint32(buf, e.tag)
		buf = binary.LittleEndian.AppendUint64(buf, e.payloadOff)
		buf = binary.LittleEndian.AppendUint32(buf, e.payloadLen)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp, err := os.CreateTemp(dir, ".idx-*")
	if err != nil {
		return fmt.Errorf("store: index temp: %v", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: writing index: %v", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, indexName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: publishing index: %v", err)
	}
	return syncDir(dir)
}

// readIndexFile loads and validates the sidecar. Any defect — missing
// file, bad magic, truncation, CRC mismatch, malformed structure —
// returns ok=false, and the caller falls back to a full scan.
func readIndexFile(dir string) (segs []idxSegment, tags []string, entries []idxEntry, ok bool) {
	buf, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil || len(buf) < len(idxMagic)+4 || string(buf[:len(idxMagic)]) != idxMagic {
		return nil, nil, nil, false
	}
	body, trailer := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != trailer {
		return nil, nil, nil, false
	}
	p := body[len(idxMagic):]
	u16 := func() (uint16, bool) {
		if len(p) < 2 {
			return 0, false
		}
		v := binary.LittleEndian.Uint16(p)
		p = p[2:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(p) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, true
	}
	str := func(n int) (string, bool) {
		if len(p) < n {
			return "", false
		}
		s := string(p[:n])
		p = p[n:]
		return s, true
	}

	nSegs, k := u32()
	if !k || nSegs > 1<<20 {
		return nil, nil, nil, false
	}
	segs = make([]idxSegment, 0, nSegs)
	for i := uint32(0); i < nSegs; i++ {
		nl, k1 := u16()
		name, k2 := str(int(nl))
		size, k3 := u64()
		if !k1 || !k2 || !k3 {
			return nil, nil, nil, false
		}
		segs = append(segs, idxSegment{name: name, size: int64(size)})
	}
	nTags, k := u32()
	if !k || nTags > 1<<20 {
		return nil, nil, nil, false
	}
	tags = make([]string, 0, nTags)
	for i := uint32(0); i < nTags; i++ {
		tl, k1 := u16()
		t, k2 := str(int(tl))
		if !k1 || !k2 {
			return nil, nil, nil, false
		}
		tags = append(tags, t)
	}
	nEnt, k := u32()
	if !k {
		return nil, nil, nil, false
	}
	entries = make([]idxEntry, 0, nEnt)
	for i := uint32(0); i < nEnt; i++ {
		var e idxEntry
		kb, k1 := str(32)
		if !k1 || len(p) < 1 {
			return nil, nil, nil, false
		}
		copy(e.key[:], kb)
		e.kind = p[0]
		p = p[1:]
		var k2, k3, k4, k5 bool
		e.seg, k2 = u32()
		e.tag, k3 = u32()
		e.payloadOff, k4 = u64()
		e.payloadLen, k5 = u32()
		if !k2 || !k3 || !k4 || !k5 || int(e.seg) >= len(segs) || int(e.tag) >= len(tags) {
			return nil, nil, nil, false
		}
		entries = append(entries, e)
	}
	if len(p) != 0 {
		return nil, nil, nil, false
	}
	return segs, tags, entries, true
}

// buildTagTable dedupes a tag-per-entry assignment into a table plus
// indices, with the table sorted for a deterministic sidecar.
func buildTagTable(tagOf func(i int) string, n int) (tags []string, indices []uint32) {
	seen := map[string]uint32{}
	for i := 0; i < n; i++ {
		if _, ok := seen[tagOf(i)]; !ok {
			seen[tagOf(i)] = 0
			tags = append(tags, tagOf(i))
		}
	}
	sort.Strings(tags)
	for i, t := range tags {
		seen[t] = uint32(i)
	}
	indices = make([]uint32, n)
	for i := 0; i < n; i++ {
		indices[i] = seen[tagOf(i)]
	}
	return tags, indices
}
