package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// sampleConform is a representative stored conformance outcome.
func sampleConform() ConformV1 {
	return ConformV1{
		Verdict:    "conforms",
		HiA:        []int{1, 0, 2},
		HiB:        []int{2, 0, 1},
		AbsAccepts: true,
		AbsRuns:    200,
		Channels: []ConformChannelV1{
			{Name: "cache", CapacityBits: 0x3ff0000000000000, N: 144, Bins: 16},
		},
		Best:   0,
		SimOps: 123456,
	}
}

// conformKeyAt derives a distinct conformance key per index.
func conformKeyAt(i int) Key {
	s := ConformSpec{Fingerprint: "conform/test/1", Model: "base", Ablation: "none", Pair: i, Seed: 42}
	return s.Key()
}

// specAt derives a distinct cell spec per index.
func specAt(i int) Spec {
	s := baseSpec()
	s.Seed = uint64(i)
	s.Trial = i
	return s
}

// proofSpecAt derives a distinct proof spec per index.
func proofSpecAt(i int) ProofSpec {
	s := baseProofSpec()
	s.Seed = uint64(i)
	return s
}

func openPackedT(t *testing.T, dir string, opt PackedOptions) *Packed {
	t.Helper()
	p, err := OpenPacked(dir, opt)
	if err != nil {
		t.Fatalf("OpenPacked(%s): %v", dir, err)
	}
	return p
}

// TestPackedRoundTripAllKinds stores one entry of each kind and reads
// them back bit-identically, both from the live store and across a
// Close/reopen (sidecar path) and a sidecar-less reopen (scan path).
func TestPackedRoundTripAllKinds(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})

	ck := baseSpec().Key()
	pk := baseProofSpec().Key()
	fk := conformKeyAt(0)
	if err := p.Put(ck, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := p.PutProof(pk, sampleProof()); err != nil {
		t.Fatal(err)
	}
	if err := p.PutConform(fk, sampleConform()); err != nil {
		t.Fatal(err)
	}

	check := func(p *Packed, phase string) {
		t.Helper()
		row, ok := p.Get(ck)
		if !ok || !rowsBitIdentical(row, sampleRow()) {
			t.Fatalf("%s: cell round trip failed (ok=%v)", phase, ok)
		}
		if _, ok := p.GetProof(ck); ok {
			t.Fatalf("%s: cell key served as proof", phase)
		}
		pr, ok := p.GetProof(pk)
		if !ok || pr.Witness == nil || pr.Witness.ShrinkRuns != 38 {
			t.Fatalf("%s: proof round trip failed (ok=%v)", phase, ok)
		}
		c, ok := p.GetConform(fk)
		if !ok || c.Verdict != "conforms" || len(c.Channels) != 1 {
			t.Fatalf("%s: conform round trip failed (ok=%v)", phase, ok)
		}
		if n, _ := p.Len(); n != 3 {
			t.Fatalf("%s: Len = %d, want 3", phase, n)
		}
		keys, _ := p.Keys()
		if len(keys) != 3 {
			t.Fatalf("%s: Keys = %d, want 3", phase, len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1].String() >= keys[i].String() {
				t.Fatalf("%s: Keys not sorted", phase)
			}
		}
	}
	check(p, "live")

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, indexName)); err != nil {
		t.Fatalf("Close did not persist the index sidecar: %v", err)
	}
	p = openPackedT(t, dir, PackedOptions{})
	check(p, "sidecar reopen")
	p.Close()

	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	p = openPackedT(t, dir, PackedOptions{})
	check(p, "scan reopen")
	p.Close()
}

// TestPackedReopenAfterNoClose simulates a process that exits without
// Close (sidecar stale or absent): every record already written must
// be found by the recovery scan.
func TestPackedReopenAfterNoClose(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	for i := 0; i < 20; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: drop the handles as a crash would.
	p.closeFiles()

	p = openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	if n, _ := p.Len(); n != 20 {
		t.Fatalf("after reopen without Close: Len = %d, want 20", n)
	}
	for i := 0; i < 20; i++ {
		if _, ok := p.Get(specAt(i).Key()); !ok {
			t.Fatalf("cell %d lost after reopen without Close", i)
		}
	}
}

// TestPackedSidecarStaleAfterAppends closes (persisting the sidecar),
// reopens, appends more, and crashes: the next open must trust the
// sidecar for the old prefix and scan the grown tail.
func TestPackedSidecarStaleAfterAppends(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	for i := 0; i < 10; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p = openPackedT(t, dir, PackedOptions{})
	for i := 10; i < 15; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	p.closeFiles() // crash: sidecar still describes the 10-entry prefix

	p = openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	if n, _ := p.Len(); n != 15 {
		t.Fatalf("Len = %d, want 15 (tail scan after stale sidecar)", n)
	}
}

// TestPackedRotation drives the store across segment boundaries and
// checks every record stays reachable, live and across reopen.
func TestPackedRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every few records.
	p := openPackedT(t, dir, PackedOptions{SegmentBytes: 4096})
	const n = 50
	for i := 0; i < n; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	for i := 0; i < n; i++ {
		if _, ok := p.Get(specAt(i).Key()); !ok {
			t.Fatalf("cell %d unreachable after rotation", i)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p = openPackedT(t, dir, PackedOptions{SegmentBytes: 4096})
	defer p.Close()
	if got, _ := p.Len(); got != n {
		t.Fatalf("Len = %d, want %d after reopen", got, n)
	}
}

// TestPackedPutDedupes re-puts an existing key and checks no second
// record lands on disk (content addressing: same key, same bytes).
func TestPackedPutDedupes(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	k := baseSpec().Key()
	if err := p.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	size1 := p.Stats().Bytes
	if err := p.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if size2 := p.Stats().Bytes; size2 != size1 {
		t.Fatalf("duplicate Put grew the store: %d -> %d bytes", size1, size2)
	}
}

// TestPackedCompactDropsStale writes cells under an old fingerprint
// tag, reopens with a new one, and compacts: stale records vanish,
// fresh and untagged (merged) records survive.
func TestPackedCompactDropsStale(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{CellTag: "fp-old", NoAutoCompact: true})
	for i := 0; i < 5; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	// One untagged record, as a cross-backend merge would write it.
	data, err := encodeCellEntry(specAt(100).Key(), sampleRow())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.putRaw(specAt(100).Key(), data); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p = openPackedT(t, dir, PackedOptions{CellTag: "fp-new", NoAutoCompact: true})
	defer p.Close()
	for i := 5; i < 8; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := p.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("Compact dropped %d records, want the 5 stale ones", dropped)
	}
	if n, _ := p.Len(); n != 4 {
		t.Fatalf("after compaction Len = %d, want 4 (3 fresh + 1 untagged)", n)
	}
	if _, ok := p.Get(specAt(100).Key()); !ok {
		t.Fatal("untagged (merged) record was collected; empty tags must be kept")
	}
	if _, ok := p.Get(specAt(0).Key()); ok {
		t.Fatal("stale record survived compaction")
	}
	if _, ok := p.Get(specAt(6).Key()); !ok {
		t.Fatal("fresh record lost by compaction")
	}
}

// TestPackedAutoCompact checks Open itself compacts when the stale
// ratio crosses the threshold, and leaves the store intact below it.
func TestPackedAutoCompact(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{CellTag: "fp-old"})
	for i := 0; i < 10; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p = openPackedT(t, dir, PackedOptions{CellTag: "fp-new"})
	defer p.Close()
	if n, _ := p.Len(); n != 0 {
		t.Fatalf("open under a new fingerprint kept %d all-stale records; auto-compaction should have dropped them", n)
	}
	if st := p.Stats(); st.Segments != 1 {
		t.Fatalf("auto-compaction left %d segments, want 1", st.Segments)
	}
}

// TestPackedManifestGarbageCollected plants a segment file the
// manifest does not list (crash mid-rotation or mid-compaction): open
// must delete it and not index its records.
func TestPackedManifestGarbageCollected(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	if err := p.Put(specAt(0).Key(), sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// A fully valid orphan segment holding a different cell.
	orphan := filepath.Join(dir, segName(99))
	f, err := newSegmentFile(dir, segName(99))
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeCellEntry(specAt(1).Key(), sampleRow())
	if err != nil {
		t.Fatal(err)
	}
	rec := appendRecord(nil, specAt(1).Key(), recKindCell, "", data)
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p = openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	if _, ok := p.Get(specAt(1).Key()); ok {
		t.Fatal("record from an unlisted segment was served")
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("unlisted segment not cleaned up: %v", err)
	}
	if _, ok := p.Get(specAt(0).Key()); !ok {
		t.Fatal("listed segment's record lost during garbage sweep")
	}
}

// TestPackedMissingManifestAdoptsSegments deletes the manifest and
// checks open adopts the loose segments instead of losing them.
func TestPackedMissingManifestAdoptsSegments(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	for i := 0; i < 5; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, manifestName))
	os.Remove(filepath.Join(dir, indexName)) // sidecar also names segments

	p = openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	if n, _ := p.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5 after manifest loss", n)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("open did not re-persist the manifest: %v", err)
	}
}

// TestPackedCorruptSidecarFallsBack corrupts the sidecar and checks
// open falls back to the scan without losing entries.
func TestPackedCorruptSidecarFallsBack(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	for i := 0; i < 5; i++ {
		if err := p.Put(specAt(i).Key(), sampleRow()); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	side := filepath.Join(dir, indexName)
	data, err := os.ReadFile(side)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(side, data, 0o644); err != nil {
		t.Fatal(err)
	}

	p = openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	if n, _ := p.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5 after sidecar corruption", n)
	}
}

// TestPackedLargeFillScan is the 100k-cell synthetic soak: fill,
// reopen by scan, verify counts and spot-check round trips, and bound
// the warm Get allocation count.
func TestPackedLargeFillScan(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-cell fill in -short mode")
	}
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{CellTag: "fp-soak"})
	const n = 100_000
	row := sampleRow()
	for i := 0; i < n; i++ {
		if err := p.Put(specAt(i).Key(), row); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got, _ := p.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen twice: once off the sidecar, once by full scan.
	p = openPackedT(t, dir, PackedOptions{CellTag: "fp-soak"})
	if got, _ := p.Len(); got != n {
		t.Fatalf("sidecar reopen: Len = %d, want %d", got, n)
	}
	p.Close()
	os.Remove(filepath.Join(dir, indexName))
	p = openPackedT(t, dir, PackedOptions{CellTag: "fp-soak"})
	defer p.Close()
	if got, _ := p.Len(); got != n {
		t.Fatalf("scan reopen: Len = %d, want %d", got, n)
	}
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		got, ok := p.Get(specAt(i).Key())
		if !ok || !rowsBitIdentical(got, row) {
			t.Fatalf("cell %d failed round trip at scale (ok=%v)", i, ok)
		}
	}

	// The warm hot path must not allocate per-hit beyond the JSON
	// decode of the envelope itself: no per-hit buffers, no key lists.
	k := specAt(n / 2).Key()
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := p.Get(k); !ok {
			t.Fatal("warm Get missed")
		}
	})
	if allocs > 120 {
		t.Fatalf("warm Get allocates %.0f objects/hit; the budget is 120 (envelope JSON decode only)", allocs)
	}
}

// BenchmarkPackedWarmGet measures the packed warm hit path.
func BenchmarkPackedWarmGet(b *testing.B) {
	dir := b.TempDir()
	p, err := OpenPacked(dir, PackedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const n = 1000
	keys := make([]Key, n)
	row := sampleRow()
	for i := 0; i < n; i++ {
		keys[i] = specAt(i).Key()
		if err := p.Put(keys[i], row); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Get(keys[i%n]); !ok {
			b.Fatal("warm miss")
		}
	}
}

// BenchmarkFileWarmGet is the file-backend baseline for the same hit.
func BenchmarkFileWarmGet(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1000
	keys := make([]Key, n)
	row := sampleRow()
	for i := 0; i < n; i++ {
		keys[i] = specAt(i).Key()
		if err := s.Put(keys[i], row); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(keys[i%n]); !ok {
			b.Fatal("warm miss")
		}
	}
}

// TestPackedReadOnlyRejectsWrites covers the merge-source mode.
func TestPackedReadOnlyRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	if err := p.Put(baseSpec().Key(), sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := openPacked(dir, PackedOptions{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, ok := ro.Get(baseSpec().Key()); !ok {
		t.Fatal("read-only open cannot read")
	}
	if err := ro.Put(specAt(1).Key(), sampleRow()); err == nil {
		t.Fatal("read-only store accepted a Put")
	}
	if _, err := ro.Compact(); err == nil {
		t.Fatal("read-only store accepted a Compact")
	}
}

// TestDetectBackend pins the layout sniffing both OpenBackend("auto")
// and merge-source resolution rely on.
func TestDetectBackend(t *testing.T) {
	fileDir := t.TempDir()
	s, err := Open(fileDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(baseSpec().Key(), sampleRow()); err != nil {
		t.Fatal(err)
	}
	packedDir := t.TempDir()
	p := openPackedT(t, packedDir, PackedOptions{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if got := DetectBackend(fileDir); got != BackendFile {
		t.Fatalf("file store detected as %q", got)
	}
	if got := DetectBackend(packedDir); got != BackendPacked {
		t.Fatalf("packed store detected as %q", got)
	}
	if got := DetectBackend(t.TempDir()); got != BackendFile {
		t.Fatalf("empty dir detected as %q, want the file default", got)
	}
	// Manifest lost: loose segments must still be recognised as packed.
	os.Remove(filepath.Join(packedDir, manifestName))
	if got := DetectBackend(packedDir); got != BackendPacked {
		t.Fatalf("manifest-less packed store detected as %q", got)
	}
}

// TestOpenBackendRejectsUnknown pins the error path.
func TestOpenBackendRejectsUnknown(t *testing.T) {
	if _, err := OpenBackend("sqlite", t.TempDir(), PackedOptions{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestPackedStatsCountsDead checks the dead-record accounting that
// feeds the auto-compaction heuristic. Duplicate keys across segments
// can only enter via crash replays, so one is forged directly.
func TestPackedStatsCountsDead(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	k := baseSpec().Key()
	if err := p.Put(k, sampleRow()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a second record for the same key straight to the segment.
	seg := filepath.Join(dir, segName(1))
	data, err := encodeCellEntry(k, sampleRow())
	if err != nil {
		t.Fatal(err)
	}
	rec := appendRecord(nil, k, recKindCell, "", data)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()
	os.Remove(filepath.Join(dir, indexName)) // force the scan path

	p = openPackedT(t, dir, PackedOptions{NoAutoCompact: true})
	defer p.Close()
	if n, _ := p.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (duplicate key is one live entry)", n)
	}
	if st := p.Stats(); st.Dead != 1 {
		t.Fatalf("Stats.Dead = %d, want 1", st.Dead)
	}
	if _, ok := p.Get(k); !ok {
		t.Fatal("duplicated key must still resolve")
	}
}

// TestPackedKeysDoNotRaceAppends is a smoke test that the store is
// usable under its own mutex from concurrent goroutines.
func TestPackedConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	p := openPackedT(t, dir, PackedOptions{})
	defer p.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				k := specAt(g*1000 + i).Key()
				if err := p.Put(k, sampleRow()); err != nil {
					done <- fmt.Errorf("put: %v", err)
					return
				}
				if _, ok := p.Get(k); !ok {
					done <- fmt.Errorf("goroutine %d: lost own write %d", g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := p.Len(); n != 200 {
		t.Fatalf("Len = %d, want 200", n)
	}
}
