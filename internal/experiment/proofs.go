package experiment

import (
	"sync"

	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/nonintf"
)

// ProofVariant is one configuration of the T1 proof-ablation matrix:
// the full-protection proof plus one ablation per mechanism, each
// expected to fail in exactly its case.
type ProofVariant struct {
	// Name labels the configuration (e.g. "full", "no flush").
	Name string
	// Cfg is the abstract-model instance to prove.
	Cfg absmodel.Config
}

// ProofVariants returns the canonical T1 matrix in presentation order.
func ProofVariants() []ProofVariant {
	rows := []struct {
		name string
		mut  func(*absmodel.Config)
	}{
		{"full protection", func(*absmodel.Config) {}},
		{"no flush", func(c *absmodel.Config) { c.Flush = false }},
		{"no pad", func(c *absmodel.Config) { c.Pad = false }},
		{"no colour", func(c *absmodel.Config) { c.Color = false }},
		{"shared kernel", func(c *absmodel.Config) { c.Clone = false }},
		{"no IRQ partition", func(c *absmodel.Config) { c.PartitionIRQ = false }},
		{"SMT co-residency", func(c *absmodel.Config) { c.SMT = true }},
	}
	out := make([]ProofVariant, 0, len(rows))
	for _, r := range rows {
		cfg := absmodel.DefaultConfig()
		r.mut(&cfg)
		out = append(out, ProofVariant{Name: r.name, Cfg: cfg})
	}
	return out
}

// ProofCase is one unwinding-lemma verdict, flattened for reporting.
type ProofCase struct {
	// Name identifies the lemma.
	Name string
	// Holds is the verdict.
	Holds bool
	// Checked counts the assignments examined.
	Checked int
}

// ProofResult is one row of the T1 matrix.
type ProofResult struct {
	// Name labels the configuration.
	Name string
	// Proved is the overall verdict: all lemmas hold and the bounded
	// check passed without padding overruns.
	Proved bool
	// Cases are the unwinding-lemma verdicts.
	Cases []ProofCase
	// BoundedProved is the end-to-end enumeration verdict.
	BoundedProved bool
	// BoundedRuns counts the complete machine executions compared.
	BoundedRuns int
	// PadOverruns counts runs whose switch work exceeded the pad.
	PadOverruns int
	// Report is the full prover output (not serialised to JSON).
	Report nonintf.ProofReport `json:"-"`
}

// RunProofs runs the T1 proof-ablation matrix, at most parallelism
// configurations concurrently (<=0 runs them sequentially). Results are
// in canonical order regardless of scheduling.
func RunProofs(families, extraRandom int, seed uint64, parallelism int) []ProofResult {
	variants := ProofVariants()
	out := make([]ProofResult, len(variants))
	if parallelism <= 0 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v ProofVariant) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rep := nonintf.Prove(v.Cfg, families, extraRandom, seed)
			res := ProofResult{
				Name:          v.Name,
				Proved:        rep.Proved(),
				BoundedProved: rep.Bounded.Proved,
				BoundedRuns:   rep.Bounded.Runs,
				PadOverruns:   rep.Bounded.PadOverruns,
				Report:        rep,
			}
			for _, c := range rep.Cases {
				res.Cases = append(res.Cases, ProofCase{Name: c.Name, Holds: c.Holds, Checked: c.Checked})
			}
			out[i] = res
		}(i, v)
	}
	wg.Wait()
	return out
}
