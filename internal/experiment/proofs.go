package experiment

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"timeprot/internal/experiment/store"
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/nonintf"
)

// This file is the proof-matrix engine: the prover-side analogue of the
// attack sweep in runner.go. A declarative ProofSpec expands into an
// ablation × model-variant × family-count × seed grid of proof cells,
// each cell invokes nonintf.Prove, cells execute on the same
// deterministic worker-pool pattern as attack cells, and results are
// cached in the content-addressed store under the prover fingerprint —
// so the T1 matrix becomes incremental, sharded, and warm-reproducible
// exactly like the measurement matrix.

// ProofAblation is one configuration row of the proof matrix: the
// full-protection proof or one named single-mechanism ablation, each
// expected to fail in exactly its case.
type ProofAblation struct {
	// Name labels the row (e.g. "full protection", "no flush").
	Name string
	// Apply mutates a model configuration into the ablated one; the
	// full-protection row applies the identity.
	Apply func(*absmodel.Config)
}

// ProofAblations returns the canonical T1 ablation rows in presentation
// order.
func ProofAblations() []ProofAblation {
	return []ProofAblation{
		{"full protection", func(*absmodel.Config) {}},
		{"no flush", func(c *absmodel.Config) { c.Flush = false }},
		{"no pad", func(c *absmodel.Config) { c.Pad = false }},
		{"no colour", func(c *absmodel.Config) { c.Color = false }},
		{"shared kernel", func(c *absmodel.Config) { c.Clone = false }},
		{"no IRQ partition", func(c *absmodel.Config) { c.PartitionIRQ = false }},
		{"SMT co-residency", func(c *absmodel.Config) { c.SMT = true }},
	}
}

// ProofModel is one abstract-model platform variant the matrix proves
// over: the §5.1 model at a different instantiation point, so each
// verdict is checked beyond the single default geometry.
type ProofModel struct {
	// Name labels the variant (e.g. "base").
	Name string
	// Title is a one-line description for the reports.
	Title string
	// Cfg is the fully protected configuration of the variant;
	// ablations mutate copies of it.
	Cfg absmodel.Config
}

// ProofModels returns the registered model variants in presentation
// order. Every variant must prove under full protection and refute
// under every ablation; the proof-matrix tests pin this.
func ProofModels() []ProofModel {
	base := absmodel.DefaultConfig()

	wide := absmodel.DefaultConfig()
	wide.Alphabet = 3 // richer Hi action space: 125 exhaustive slice programs

	deep := absmodel.DefaultConfig()
	deep.StepsPerSlice = 4 // longer slices and schedule: 256 slice programs,
	deep.Slices = 8        // eight switches per run

	return []ProofModel{
		{Name: "base", Title: "the default §5.1 instantiation", Cfg: base},
		{Name: "wide-alphabet", Title: "a wider Hi input alphabet (3 symbols)", Cfg: wide},
		{Name: "deep-schedule", Title: "longer slices and more switches (4×8)", Cfg: deep},
	}
}

// proofModelByName resolves a model variant name.
func proofModelByName(name string) (ProofModel, bool) {
	for _, m := range ProofModels() {
		if m.Name == name {
			return m, true
		}
	}
	return ProofModel{}, false
}

// proofAblationByName resolves an ablation name.
func proofAblationByName(name string) (ProofAblation, bool) {
	for _, a := range ProofAblations() {
		if a.Name == name {
			return a, true
		}
	}
	return ProofAblation{}, false
}

// Proof-matrix defaults: the canonical PROOFS.md matrix runs every
// ablation over every model variant at these sampling parameters.
const (
	// DefaultProofFamilies is the sampled time-function families per
	// proof cell when unset.
	DefaultProofFamilies = 5
	// DefaultProofRandom is the extra random Hi programs per proof cell
	// when the spec leaves Random negative (0 is meaningful: exhaustive
	// slice programs only).
	DefaultProofRandom = 200
	// DefaultProofSeed seeds family sampling when no seed is given,
	// matching the sweep engine's default base seed.
	DefaultProofSeed = 42
)

// ProofSpec declares a proof matrix: which ablation rows and model
// variants to prove, at which family counts, over which seeds.
type ProofSpec struct {
	// Ablations selects ablation rows by exact name; empty, or the
	// single entry "all", selects every canonical row.
	Ablations []string
	// Models selects model variants by exact name; empty, or the
	// single entry "all", selects every registered variant.
	Models []string
	// Families are the family-count grid points (<=0 entries are
	// dropped); empty = {DefaultProofFamilies}.
	Families []int
	// Random is the extra random Hi programs per cell: 0 runs the
	// exhaustive slice set only, negative selects DefaultProofRandom.
	Random int
	// Seeds are the base seeds of the family sampling (empty =
	// {DefaultProofSeed}).
	Seeds []uint64
}

// normalized returns the spec with defaults applied.
func (s ProofSpec) normalized() ProofSpec {
	if isAll(s.Ablations) {
		s.Ablations = nil
		for _, a := range ProofAblations() {
			s.Ablations = append(s.Ablations, a.Name)
		}
	}
	if isAll(s.Models) {
		s.Models = nil
		for _, m := range ProofModels() {
			s.Models = append(s.Models, m.Name)
		}
	}
	var fams []int
	for _, f := range s.Families {
		if f > 0 {
			fams = append(fams, f)
		}
	}
	if len(fams) == 0 {
		fams = []int{DefaultProofFamilies}
	}
	s.Families = fams
	if s.Random < 0 {
		s.Random = DefaultProofRandom
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{DefaultProofSeed}
	}
	return s
}

// isAll reports whether a selector list means "everything".
func isAll(keys []string) bool {
	return len(keys) == 0 || (len(keys) == 1 && strings.EqualFold(strings.TrimSpace(keys[0]), "all"))
}

// ProofCell is one point of the proof matrix: an (ablation, model,
// families, seed) tuple with its resolved configuration.
type ProofCell struct {
	// Index is the cell's position in the expanded matrix.
	Index int
	// Ablation and Model name the grid point.
	Ablation, Model string
	// Cfg is the resolved abstract-model configuration (the model
	// variant with the ablation applied).
	Cfg absmodel.Config
	// Families is the number of sampled time-function families.
	Families int
	// Random is the number of extra random Hi programs.
	Random int
	// Seed is the base seed of the family sampling.
	Seed uint64
}

// Cells expands the spec into its ordered cell matrix: model-major,
// then family count, then seed, then ablation — so every (model,
// families, seed) group of ablation rows is contiguous for the
// reporters' per-table grouping.
func (s ProofSpec) Cells() ([]ProofCell, error) {
	spec := s.normalized()
	var cells []ProofCell
	for _, mname := range spec.Models {
		model, ok := proofModelByName(strings.TrimSpace(mname))
		if !ok {
			return nil, fmt.Errorf("experiment: unknown proof model %q (have %s)",
				mname, strings.Join(proofModelNames(), ", "))
		}
		for _, fam := range spec.Families {
			for _, seed := range spec.Seeds {
				for _, aname := range spec.Ablations {
					abl, ok := proofAblationByName(strings.TrimSpace(aname))
					if !ok {
						return nil, fmt.Errorf("experiment: unknown proof ablation %q (have %s)",
							aname, strings.Join(proofAblationNames(), ", "))
					}
					cfg := model.Cfg
					abl.Apply(&cfg)
					cells = append(cells, ProofCell{
						Index:    len(cells),
						Ablation: abl.Name,
						Model:    model.Name,
						Cfg:      cfg,
						Families: fam,
						Random:   spec.Random,
						Seed:     seed,
					})
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("experiment: empty proof matrix")
	}
	return cells, nil
}

func proofModelNames() []string {
	var out []string
	for _, m := range ProofModels() {
		out = append(out, m.Name)
	}
	return out
}

func proofAblationNames() []string {
	var out []string
	for _, a := range ProofAblations() {
		out = append(out, a.Name)
	}
	return out
}

// ProofCase is one unwinding-lemma verdict, flattened for reporting.
type ProofCase struct {
	// Name identifies the lemma.
	Name string
	// Holds is the verdict.
	Holds bool
	// Checked counts the assignments examined.
	Checked int
	// Witness describes the first violating assignment when the lemma
	// fails.
	Witness string `json:",omitempty"`
}

// ProofCellResult is one completed proof cell: its coordinates plus the
// flattened verdict and, when refuted, the minimal counterexample
// witness.
type ProofCellResult struct {
	ProofCell
	// Proved is the overall verdict: all lemmas hold and the bounded
	// check passed without padding overruns.
	Proved bool
	// Cases are the unwinding-lemma verdicts.
	Cases []ProofCase
	// BoundedProved is the end-to-end enumeration verdict.
	BoundedProved bool
	// BoundedRuns counts the complete machine executions compared.
	BoundedRuns int
	// PadOverruns counts runs whose switch work exceeded the pad.
	PadOverruns int
	// Witness is the minimal counterexample with its Lo observation
	// traces; nil when the bounded check proved.
	Witness *nonintf.Witness `json:",omitempty"`
	// Err records a prover failure (the cell's row is then zero).
	Err string `json:",omitempty"`
}

// Report reconstructs the full prover report from the flattened cell —
// identical whether the cell executed or was served from the store.
func (c ProofCellResult) Report() nonintf.ProofReport {
	rep := nonintf.ProofReport{Cfg: c.Cfg, Witness: c.Witness}
	for _, cs := range c.Cases {
		rep.Cases = append(rep.Cases, nonintf.CaseReport{
			Name: cs.Name, Holds: cs.Holds, Checked: cs.Checked, Witness: cs.Witness,
		})
	}
	rep.Bounded = nonintf.Verdict{
		Proved:      c.BoundedProved,
		Runs:        c.BoundedRuns,
		Families:    c.Families,
		PadOverruns: c.PadOverruns,
	}
	if c.Witness != nil {
		rep.Bounded.Counterexample = c.Witness.Counterexample()
	}
	return rep
}

// fillFromReport flattens a prover report into the result.
func (c *ProofCellResult) fillFromReport(rep nonintf.ProofReport) {
	c.Proved = rep.Proved()
	c.Cases = nil
	for _, cs := range rep.Cases {
		c.Cases = append(c.Cases, ProofCase{
			Name: cs.Name, Holds: cs.Holds, Checked: cs.Checked, Witness: cs.Witness,
		})
	}
	c.BoundedProved = rep.Bounded.Proved
	c.BoundedRuns = rep.Bounded.Runs
	c.PadOverruns = rep.Bounded.PadOverruns
	c.Witness = rep.Witness
}

// ProofMatrix is a completed proof matrix: the spec and every cell in
// matrix order. Like the sweep Report, it is a pure function of its
// spec — worker count and cache state cannot change a bit of it.
type ProofMatrix struct {
	// Spec is the normalised specification that produced the matrix.
	Spec ProofSpec
	// Cells are the results in matrix order. In a sharded run this is
	// the shard's subset, with full-matrix indices.
	Cells []ProofCellResult
}

// ProofOptions tunes a proof-matrix run. As with sweep Options,
// Parallelism, Store, Progress, and Stats never affect the matrix's
// bytes; Shard restricts the run to a subset and therefore produces a
// partial matrix.
type ProofOptions struct {
	// Parallelism is the worker count (<=0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after each completed cell.
	Progress func(done, total int, c ProofCell)
	// Store, when non-nil, serves cached proof cells and receives
	// fresh non-failed verdicts.
	Store store.CellStore
	// Shard restricts the run to one shard of the matrix's
	// deterministic partition (unit: single cell — proof cells have no
	// cross-row post-processing). The zero value runs everything.
	Shard ShardSel
	// Stats, when non-nil, receives the run's cache statistics.
	Stats *CacheStats
	// Context, when non-nil, scopes the run to a job: see
	// Options.Context — cancellation stops dispatch, finishes in-flight
	// cells, and returns the context's error.
	Context context.Context
}

// shardProofCells returns the cells of one shard, preserving
// full-matrix indices.
func shardProofCells(cells []ProofCell, sh ShardSel) ([]ProofCell, error) {
	if sh.Count <= 0 {
		return cells, nil
	}
	if sh.Index < 0 || sh.Index >= sh.Count {
		return nil, fmt.Errorf("experiment: proof shard index %d out of range [0,%d)", sh.Index, sh.Count)
	}
	var out []ProofCell
	for _, c := range cells {
		if c.Index%sh.Count == sh.Index {
			out = append(out, c)
		}
	}
	return out, nil
}

// RunProofMatrix executes a proof matrix. The result depends only on
// the spec (and, for sharded runs, the shard selection); the store only
// decides which cells re-execute.
func RunProofMatrix(spec ProofSpec, opt ProofOptions) (*ProofMatrix, error) {
	spec = spec.normalized()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	cells, err = shardProofCells(cells, opt.Shard)
	if err != nil {
		return nil, err
	}

	stats := CacheStats{Total: len(cells)}
	results := make([]ProofCellResult, len(cells))
	keys := make([]store.Key, len(cells))

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	// Probe the store concurrently, then fill hits in matrix order so
	// Progress and pending stay deterministic (same structure as the
	// attack-cell runner).
	hits := make([]*store.ProofV1, len(cells))
	if opt.Store != nil {
		probe := make(chan int)
		var pwg sync.WaitGroup
		for w := 0; w < par; w++ {
			pwg.Add(1)
			go func() {
				defer pwg.Done()
				for i := range probe {
					keys[i] = proofCellKey(cells[i])
					if p, ok := opt.Store.GetProof(keys[i]); ok {
						pc := p
						hits[i] = &pc
					}
				}
			}()
		}
		for i := range cells {
			probe <- i
		}
		close(probe)
		pwg.Wait()
	}

	done := 0
	var pending []int
	for i, c := range cells {
		if hits[i] != nil {
			results[i] = decodeProofCell(c, *hits[i])
			stats.Hits++
			done++
			if opt.Progress != nil {
				opt.Progress(done, len(cells), c)
			}
			continue
		}
		pending = append(pending, i)
	}
	stats.Executed = len(pending)

	if par > len(pending) {
		par = len(pending)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runProofCell(cells[i])
				var stored bool
				var err error
				if opt.Store != nil && results[i].Err == "" {
					err = opt.Store.PutProof(keys[i], encodeProofCell(results[i]))
					stored = err == nil
				}
				mu.Lock()
				if err != nil {
					stats.FailedPuts++
					if stats.FailedPut == "" {
						stats.FailedPut = err.Error()
					}
				}
				if stored {
					stats.Stored++
				}
				done++
				if opt.Progress != nil {
					opt.Progress(done, len(cells), cells[i])
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case jobs <- i:
		case <-ctxDone(opt.Context):
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled(opt.Context) {
		return nil, opt.Context.Err()
	}

	if opt.Stats != nil {
		*opt.Stats = stats
	}
	return &ProofMatrix{Spec: spec, Cells: results}, nil
}

// runProofCell executes one proof cell, converting prover panics (e.g.
// an invalid resolved configuration) into per-cell errors.
func runProofCell(c ProofCell) (res ProofCellResult) {
	res.ProofCell = c
	defer func() {
		if p := recover(); p != nil {
			res = ProofCellResult{ProofCell: c, Err: fmt.Sprint(p)}
		}
	}()
	rep := nonintf.Prove(c.Cfg, c.Families, c.Random, c.Seed)
	res.fillFromReport(rep)
	return res
}

// encodeProofCell converts a completed cell to its stored form.
func encodeProofCell(r ProofCellResult) store.ProofV1 {
	p := store.ProofV1{
		BoundedProved:   r.BoundedProved,
		BoundedRuns:     r.BoundedRuns,
		BoundedFamilies: r.Families,
		PadOverruns:     r.PadOverruns,
	}
	for _, c := range r.Cases {
		p.Cases = append(p.Cases, store.ProofCaseV1{
			Name: c.Name, Holds: c.Holds, Checked: c.Checked, Witness: c.Witness,
		})
	}
	if w := r.Witness; w != nil {
		sw := &store.ProofWitnessV1{
			FamilySeed: w.FamilySeed,
			Index:      w.Index,
			ShrinkRuns: w.ShrinkRuns,
		}
		for _, a := range w.HiA {
			sw.HiA = append(sw.HiA, int(a))
		}
		for _, a := range w.HiB {
			sw.HiB = append(sw.HiB, int(a))
		}
		for _, o := range w.ObsA {
			sw.ObsA = append(sw.ObsA, store.ProofObsV1{Clock: o.Clock, IRQ: o.IRQ})
		}
		for _, o := range w.ObsB {
			sw.ObsB = append(sw.ObsB, store.ProofObsV1{Clock: o.Clock, IRQ: o.IRQ})
		}
		p.Witness = sw
	}
	return p
}

// decodeProofCell reconstructs a cell result from its stored form.
func decodeProofCell(c ProofCell, p store.ProofV1) ProofCellResult {
	res := ProofCellResult{ProofCell: c}
	for _, cs := range p.Cases {
		res.Cases = append(res.Cases, ProofCase{
			Name: cs.Name, Holds: cs.Holds, Checked: cs.Checked, Witness: cs.Witness,
		})
	}
	res.BoundedProved = p.BoundedProved
	res.BoundedRuns = p.BoundedRuns
	res.PadOverruns = p.PadOverruns
	if sw := p.Witness; sw != nil {
		w := &nonintf.Witness{
			FamilySeed: sw.FamilySeed,
			Index:      sw.Index,
			ShrinkRuns: sw.ShrinkRuns,
		}
		for _, a := range sw.HiA {
			w.HiA = append(w.HiA, absmodel.Action(a))
		}
		for _, a := range sw.HiB {
			w.HiB = append(w.HiB, absmodel.Action(a))
		}
		for _, o := range sw.ObsA {
			w.ObsA = append(w.ObsA, nonintf.Observation{Clock: o.Clock, IRQ: o.IRQ})
		}
		for _, o := range sw.ObsB {
			w.ObsB = append(w.ObsB, nonintf.Observation{Clock: o.Clock, IRQ: o.IRQ})
		}
		res.Witness = w
	}
	res.Proved = res.Report().Proved()
	return res
}

// ProofResult is one row of the sweep's T1 matrix — the legacy flat
// shape the sweep Report embeds and EXPERIMENTS.md renders.
type ProofResult struct {
	// Name labels the configuration (the ablation name).
	Name string
	// Proved is the overall verdict: all lemmas hold and the bounded
	// check passed without padding overruns.
	Proved bool
	// Cases are the unwinding-lemma verdicts.
	Cases []ProofCase
	// BoundedProved is the end-to-end enumeration verdict.
	BoundedProved bool
	// BoundedRuns counts the complete machine executions compared.
	BoundedRuns int
	// PadOverruns counts runs whose switch work exceeded the pad.
	PadOverruns int
	// Witness is the minimal counterexample witness when refuted.
	Witness *nonintf.Witness `json:",omitempty"`
	// Report is the full prover output (not serialised to JSON).
	Report nonintf.ProofReport `json:"-"`
}

// sweepProofSpec is the proof matrix a sweep runs for its T1 section:
// every ablation over the base model at the sweep's sampling point.
func sweepProofSpec(families, extraRandom int, seed uint64) ProofSpec {
	return ProofSpec{
		Models:   []string{ProofModels()[0].Name},
		Families: []int{families},
		Random:   extraRandom,
		Seeds:    []uint64{seed},
	}
}

// legacyProofResults flattens proof cells into the sweep Report's T1
// rows.
func legacyProofResults(m *ProofMatrix) []ProofResult {
	out := make([]ProofResult, 0, len(m.Cells))
	for _, c := range m.Cells {
		out = append(out, ProofResult{
			Name:          c.Ablation,
			Proved:        c.Proved,
			Cases:         c.Cases,
			BoundedProved: c.BoundedProved,
			BoundedRuns:   c.BoundedRuns,
			PadOverruns:   c.PadOverruns,
			Witness:       c.Witness,
			Report:        c.Report(),
		})
	}
	return out
}

// RunProofs runs the T1 proof-ablation matrix over the base model, at
// most parallelism configurations concurrently (<=0 runs sequentially).
// Results are in canonical order regardless of scheduling. It is the
// uncached entry point behind timeprot.ProofMatrix; store-backed runs
// go through RunProofMatrix.
func RunProofs(families, extraRandom int, seed uint64, parallelism int) []ProofResult {
	if parallelism <= 0 {
		parallelism = 1
	}
	m, err := RunProofMatrix(sweepProofSpec(families, extraRandom, seed),
		ProofOptions{Parallelism: parallelism})
	if err != nil {
		panic(err) // unreachable: the canonical spec always expands
	}
	return legacyProofResults(m)
}
