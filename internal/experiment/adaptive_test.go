package experiment

import (
	"bytes"
	"testing"

	"timeprot/internal/experiment/store"
)

// adaptiveSpec is the adaptive-sampling regression sweep: a mix of
// instantly-converging cells (T4, T15: clean channels) and the
// fixed-rounds baseline they are compared against.
func adaptiveSpec() Spec {
	return Spec{
		Scenarios:   []string{"T4", "T5", "T15"},
		Rounds:      60,
		CIHalfWidth: DefaultCIHalfWidth,
		Seeds:       []uint64{42},
	}
}

// TestAdaptiveLadder pins the ladder construction: half the requested
// rounds, doubling, cap as the final rung.
func TestAdaptiveLadder(t *testing.T) {
	cases := []struct {
		req, max int
		want     []int
	}{
		{60, 240, []int{30, 60, 120, 240}},
		{60, 150, []int{30, 60, 120, 150}},
		{60, 20, []int{20}},
		{1, 4, []int{1, 2, 4}},
	}
	for _, c := range cases {
		got := adaptiveLadder(Cell{ReqRounds: c.req, CIHalfWidth: 0.05, MaxRounds: c.max})
		if len(got) != len(c.want) {
			t.Errorf("ladder(%d,%d) = %v, want %v", c.req, c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ladder(%d,%d) = %v, want %v", c.req, c.max, got, c.want)
				break
			}
		}
	}
}

// TestAdaptiveFewerRoundsSameVerdicts is the acceptance property: at
// the default tolerance the adaptive sweep simulates fewer total rounds
// than the fixed-rounds sweep of the same matrix, and every leak
// verdict matches.
func TestAdaptiveFewerRoundsSameVerdicts(t *testing.T) {
	spec := adaptiveSpec()
	fixedSpec := spec
	fixedSpec.CIHalfWidth = 0
	adaptive, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(fixedSpec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, fixedTotal := adaptive.TotalRounds()
	if run >= fixedTotal {
		t.Errorf("adaptive simulated %d rounds, fixed policy %d — no savings", run, fixedTotal)
	}
	if len(adaptive.Cells) != len(fixed.Cells) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(adaptive.Cells), len(fixed.Cells))
	}
	for i := range adaptive.Cells {
		a, f := adaptive.Cells[i], fixed.Cells[i]
		if a.ScenarioID != f.ScenarioID || a.Variant != f.Variant {
			t.Fatalf("cell %d coordinates diverge: %s/%s vs %s/%s", i, a.ScenarioID, a.Variant, f.ScenarioID, f.Variant)
		}
		if a.Leaks != f.Leaks {
			t.Errorf("cell %s/%s: adaptive verdict %v, fixed %v", a.ScenarioID, a.Variant, a.Leaks, f.Leaks)
		}
		if a.EffRounds <= 0 || a.RoundsRun < a.EffRounds {
			t.Errorf("cell %s/%s: bad rounds metadata eff=%d run=%d", a.ScenarioID, a.Variant, a.EffRounds, a.RoundsRun)
		}
	}
}

// TestAdaptiveWarmStoreByteIdentical: an adaptive sweep is cacheable
// like any other — the warm rerun executes nothing and reproduces the
// cold reports byte for byte, because the adaptive policy is part of
// every cell's key and the stored row carries the ladder's outcome.
func TestAdaptiveWarmStoreByteIdentical(t *testing.T) {
	st := openStore(t)
	var cold CacheStats
	crep, err := Run(adaptiveSpec(), Options{Store: st, Stats: &cold})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hits != 0 || cold.Executed != cold.Total {
		t.Fatalf("cold adaptive run stats: %+v", cold)
	}
	var warm CacheStats
	wrep, err := Run(adaptiveSpec(), Options{Store: st, Stats: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Executed != 0 || warm.Hits != warm.Total {
		t.Fatalf("warm adaptive run not fully cached: %+v", warm)
	}
	if !bytes.Equal(renderJSON(t, crep), renderJSON(t, wrep)) {
		t.Fatal("warm adaptive JSON differs from cold")
	}
	if !bytes.Equal(renderMarkdown(t, crep), renderMarkdown(t, wrep)) {
		t.Fatal("warm adaptive Markdown differs from cold")
	}
	crun, _ := crep.TotalRounds()
	wrun, _ := wrep.TotalRounds()
	if crun != wrun {
		t.Errorf("warm run lost the rounds accounting: %d vs %d", wrun, crun)
	}
}

// TestAdaptivePolicyKeysDistinct: fixed and adaptive runs of the same
// cell must never serve each other's store entries, and different
// tolerances must not alias.
func TestAdaptivePolicyKeysDistinct(t *testing.T) {
	fixedCells, err := Spec{Scenarios: []string{"T4"}, Rounds: 60}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Spec{Scenarios: []string{"T4"}, Rounds: 60, CIHalfWidth: 0.05}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Spec{Scenarios: []string{"T4"}, Rounds: 60, CIHalfWidth: 0.1}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[store.Key]string)
	for _, set := range []struct {
		name  string
		cells []Cell
	}{{"fixed", fixedCells}, {"ci=0.05", a1}, {"ci=0.1", a2}} {
		k, ok := cellKey(set.cells[0])
		if !ok {
			t.Fatalf("%s: no key", set.name)
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("%s aliases %s in the store", set.name, prev)
		}
		keys[k] = set.name
	}
}

// TestNewScenariosDeterministic is the expansion pack's engine-level
// equivalence test: T15-T17 rows are bit-identical across worker counts
// and across cold/warm store runs.
func TestNewScenariosDeterministic(t *testing.T) {
	spec := Spec{Scenarios: []string{"T15", "T16", "T17"}, Rounds: 8, Seeds: []uint64{42}}
	st := openStore(t)
	var cold CacheStats
	serial, err := Run(spec, Options{Parallelism: 1, Store: st, Stats: &cold})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderJSON(t, serial), renderJSON(t, parallel)) {
		t.Fatal("T15-T17 rows differ across worker counts")
	}
	var warm CacheStats
	cached, err := Run(spec, Options{Parallelism: 8, Store: st, Stats: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Executed != 0 || warm.Hits != warm.Total {
		t.Fatalf("warm run not fully cached: %+v", warm)
	}
	if !bytes.Equal(renderJSON(t, serial), renderJSON(t, cached)) {
		t.Fatal("T15-T17 rows differ between cold and warm store runs")
	}
	for _, c := range serial.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.ScenarioID, c.Variant, c.Err)
		}
	}
}
