package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"timeprot/internal/prove/nonintf"
)

// This file renders completed proof matrices: JSON for machines,
// Markdown for the committed PROOFS.md document, and aligned text for
// the tpprove CLI. Like the sweep reporters, every byte is a pure
// function of the matrix (itself a pure function of its spec), which is
// what lets CI regenerate PROOFS.md warm from the committed store and
// fail on any drift.

// WriteProofsJSON serialises the proof matrix as indented JSON.
func WriteProofsJSON(w io.Writer, m *ProofMatrix) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// proofGroup is one contiguous (model, families, seed) run of proof
// cells — one table of PROOFS.md.
type proofGroup struct {
	start, end int // half-open range into the cell slice
}

// sameProofGroup reports whether two cells share a reporting table.
func sameProofGroup(a, b ProofCell) bool {
	return a.Model == b.Model && a.Families == b.Families && a.Seed == b.Seed
}

// proofGroups splits cells into their contiguous reporting groups.
func proofGroups(cells []ProofCellResult) []proofGroup {
	var out []proofGroup
	for start := 0; start < len(cells); {
		end := start + 1
		for end < len(cells) && sameProofGroup(cells[end].ProofCell, cells[start].ProofCell) {
			end++
		}
		out = append(out, proofGroup{start, end})
		start = end
	}
	return out
}

// RegenCommand returns the tpprove invocation that regenerates this
// matrix (and, with -md, the Markdown document rendering it).
func (m *ProofMatrix) RegenCommand() string {
	var b strings.Builder
	b.WriteString("go run ./cmd/tpprove")
	if strings.Join(m.Spec.Ablations, ",") == strings.Join(proofAblationNames(), ",") {
		b.WriteString(" -ablations all")
	} else {
		fmt.Fprintf(&b, " -ablations %q", strings.Join(m.Spec.Ablations, ","))
	}
	if strings.Join(m.Spec.Models, ",") == strings.Join(proofModelNames(), ",") {
		b.WriteString(" -models all")
	} else {
		fmt.Fprintf(&b, " -models %q", strings.Join(m.Spec.Models, ","))
	}
	fams := make([]string, len(m.Spec.Families))
	for i, f := range m.Spec.Families {
		fams[i] = fmt.Sprint(f)
	}
	fmt.Fprintf(&b, " -families %s", strings.Join(fams, ","))
	fmt.Fprintf(&b, " -random %d", m.Spec.Random)
	if len(m.Spec.Seeds) == 1 {
		fmt.Fprintf(&b, " -seed %d", m.Spec.Seeds[0])
	} else {
		seeds := make([]string, len(m.Spec.Seeds))
		for i, s := range m.Spec.Seeds {
			seeds[i] = fmt.Sprint(s)
		}
		fmt.Fprintf(&b, " -seeds %s", strings.Join(seeds, ","))
	}
	b.WriteString(" -md PROOFS.md")
	return b.String()
}

// proofConfigLine renders a model configuration's sizing on one line.
func proofConfigLine(c ProofCellResult) string {
	return fmt.Sprintf("domains=%d, steps/slice=%d, slices=%d, alphabet=%d, digest mod=%d, pad budget=%d",
		c.Cfg.Domains, c.Cfg.StepsPerSlice, c.Cfg.Slices, c.Cfg.Alphabet, c.Cfg.DigestMod, c.Cfg.PadBudget)
}

// writeProofTable emits one group's verdict table (the T1 shape).
func writeProofTable(b *strings.Builder, cells []ProofCellResult) {
	var caseNames []string
	for _, c := range cells {
		if c.Err == "" {
			for _, cs := range c.Cases {
				caseNames = append(caseNames, cs.Name)
			}
			break
		}
	}
	b.WriteString("| configuration |")
	for _, n := range caseNames {
		fmt.Fprintf(b, " %s |", n)
	}
	b.WriteString(" bounded-NI | pad overruns | result |\n|---|")
	for range caseNames {
		b.WriteString("---|")
	}
	b.WriteString("---|---|---|\n")
	for _, c := range cells {
		if c.Err != "" {
			fmt.Fprintf(b, "| %s |", c.Ablation)
			for range caseNames {
				b.WriteString(" |")
			}
			fmt.Fprintf(b, " | | error: %s |\n", c.Err)
			continue
		}
		fmt.Fprintf(b, "| %s |", c.Ablation)
		for _, cs := range c.Cases {
			v := "holds"
			if !cs.Holds {
				v = "**fails**"
			}
			fmt.Fprintf(b, " %s (%d) |", v, cs.Checked)
		}
		bni := "agree"
		if !c.BoundedProved {
			bni = "**diverge**"
		}
		result := "PROVED"
		if !c.Proved {
			result = "refuted"
		}
		fmt.Fprintf(b, " %s (%d runs) | %d | %s |\n", bni, c.BoundedRuns, c.PadOverruns, result)
	}
}

// writeWitness emits one refuted cell's evidence: the minimal Hi pair,
// the diverging Lo traces, and any failed lemma witnesses.
func writeWitness(b *strings.Builder, c ProofCellResult) {
	fmt.Fprintf(b, "#### %s\n\n", c.Ablation)
	if w := c.Witness; w != nil {
		fmt.Fprintf(b, "Minimal divergent Hi program pair (family seed %d, shrunk in %d machine runs):\n\n",
			w.FamilySeed, w.ShrinkRuns)
		fmt.Fprintf(b, "- Hi-A: `%s`\n", nonintf.FormatActions(w.HiA))
		fmt.Fprintf(b, "- Hi-B: `%s`\n\n", nonintf.FormatActions(w.HiB))
		fmt.Fprintf(b, "Lo's observation traces diverge at its step %d:\n\n", w.Index)
		b.WriteString("| Lo step | clock under Hi-A | clock under Hi-B | IRQ under Hi-A | IRQ under Hi-B |\n")
		b.WriteString("|---|---|---|---|---|\n")
		irq := func(v bool) string {
			if v {
				return "yes"
			}
			return ""
		}
		for i := 0; i < len(w.ObsA) && i < len(w.ObsB); i++ {
			a, o := w.ObsA[i], w.ObsB[i]
			if i == w.Index {
				fmt.Fprintf(b, "| **%d** | **%d** | **%d** | %s | %s |\n", i, a.Clock, o.Clock, irq(a.IRQ), irq(o.IRQ))
				continue
			}
			fmt.Fprintf(b, "| %d | %d | %d | %s | %s |\n", i, a.Clock, o.Clock, irq(a.IRQ), irq(o.IRQ))
		}
		b.WriteString("\n")
	}
	var failed []ProofCase
	for _, cs := range c.Cases {
		if !cs.Holds {
			failed = append(failed, cs)
		}
	}
	if len(failed) > 0 {
		b.WriteString("Failed lemmas:\n\n")
		for _, cs := range failed {
			fmt.Fprintf(b, "- `%s`: %s\n", cs.Name, cs.Witness)
		}
		b.WriteString("\n")
	}
}

// WriteProofsMarkdown renders the matrix as the PROOFS.md document:
// regeneration command, prover fingerprint, one verdict table per
// (model, families, seed) group, and the counterexample witnesses
// behind every refuted row.
func WriteProofsMarkdown(w io.Writer, m *ProofMatrix) error {
	var b strings.Builder

	b.WriteString("# PROOFS — machine-checking time protection (§5)\n\n")
	b.WriteString("The proof side of *\"Can We Prove Time Protection?\"* (Heiser, Klein,\n")
	b.WriteString("Murray — HotOS 2019), reproduced as experiment T1 and extended to a\n")
	b.WriteString("proof matrix: every single-mechanism ablation, over every registered\n")
	b.WriteString("abstract-model variant, quantified over sampled time-function\n")
	b.WriteString("families.\n\n")
	b.WriteString("This file is generated by the proof-matrix engine's Markdown\n")
	b.WriteString("reporter — do not edit the tables by hand. Regenerate with:\n\n")
	fmt.Fprintf(&b, "```sh\n%s\n```\n\n", m.RegenCommand())
	fmt.Fprintf(&b, "Prover fingerprint: `%s`.\n", ProverFingerprint())
	b.WriteString("Proof cells are cached in the content-addressed sweep store under\n")
	b.WriteString("this fingerprint: any semantic change to a prover layer bumps its\n")
	b.WriteString("model version, which re-keys — and forces re-proving of — every\n")
	b.WriteString("cell. Unchanged cells are served warm, byte-identically.\n\n")
	b.WriteString("Each cell checks the §5.2 unwinding lemmas by exhaustive enumeration\n")
	b.WriteString("(Case 1 user steps, Case 2a kernel entries, Case 2b the padded\n")
	b.WriteString("switch, interrupt partitioning, SMT live sharing), then bounded\n")
	b.WriteString("noninterference: every enumerable Hi slice program, plus the extra\n")
	b.WriteString("random programs, must yield the identical Lo observation trace for\n")
	b.WriteString("every sampled family. A **refuted** row carries a minimal\n")
	b.WriteString("counterexample witness below its table: a divergent Hi program pair\n")
	b.WriteString("shrunk until every remaining action is load-bearing, with the\n")
	b.WriteString("diverging Lo traces as evidence.\n")

	for _, g := range proofGroups(m.Cells) {
		first := m.Cells[g.start]
		title := first.Model
		if mv, ok := proofModelByName(first.Model); ok {
			title = fmt.Sprintf("`%s` — %s", mv.Name, mv.Title)
		}
		fmt.Fprintf(&b, "\n## Model %s (families=%d, seed=%d)\n\n", title, first.Families, first.Seed)
		fmt.Fprintf(&b, "Configuration: %s. Extra random Hi programs per cell: %d.\n\n",
			proofConfigLine(first), first.Random)
		writeProofTable(&b, m.Cells[g.start:g.end])

		var refuted []ProofCellResult
		for _, c := range m.Cells[g.start:g.end] {
			if c.Err == "" && !c.Proved {
				refuted = append(refuted, c)
			}
		}
		if len(refuted) > 0 {
			fmt.Fprintf(&b, "\n### Witnesses — model `%s`, families=%d, seed=%d\n\n", first.Model, first.Families, first.Seed)
			for _, c := range refuted {
				writeWitness(&b, c)
			}
		}
	}

	b.WriteString("## Reading this document\n\n")
	b.WriteString("Every mechanism of §4.2 is load-bearing: with all of them armed the\n")
	b.WriteString("case analysis holds and bounded noninterference agrees across every\n")
	b.WriteString("family (PROVED); remove any one and exactly the corresponding case\n")
	b.WriteString("fails, with a concrete minimal witness to show for it. The witness\n")
	b.WriteString("traces read as evidence: before the divergence step the two runs are\n")
	b.WriteString("indistinguishable to Lo; at it, the clock (or a stray interrupt)\n")
	b.WriteString("differs — a timing channel. EXPERIMENTS.md holds the measured\n")
	b.WriteString("(empirical) side of the same matrix; DESIGN.md \"Layer 4\" documents\n")
	b.WriteString("the prover architecture and the cell keying discipline.\n")

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteProofsText renders the matrix as the tpprove stdout format: one
// block per group, one verdict per cell with the full prover report.
func WriteProofsText(w io.Writer, m *ProofMatrix) error {
	var b strings.Builder
	for _, g := range proofGroups(m.Cells) {
		first := m.Cells[g.start]
		fmt.Fprintf(&b, "model %s — families=%d, random=%d, seed=%d\n",
			first.Model, first.Families, first.Random, first.Seed)
		for _, c := range m.Cells[g.start:g.end] {
			if c.Err != "" {
				fmt.Fprintf(&b, "  %-20s ERROR: %s\n", c.Ablation, c.Err)
				continue
			}
			verdict := "PROVED"
			if !c.Proved {
				verdict = "refuted"
			}
			fmt.Fprintf(&b, "  %-20s -> %s\n%s", c.Ablation, verdict, indent(c.Report().String(), "  "))
			if c.Witness != nil {
				fmt.Fprintf(&b, "    witness: Hi %s vs %s, Lo diverges at step %d\n",
					nonintf.FormatActions(c.Witness.HiA), nonintf.FormatActions(c.Witness.HiB), c.Witness.Index)
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// indent prefixes every non-empty line.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n")
}
