package experiment

import "timeprot/internal/attacks"

// This file is the adaptive sampling engine: instead of burning a fixed
// round budget on every cell whether its capacity estimate converged
// long ago or is still wide open, a cell climbs a deterministic rounds
// ladder and stops as soon as the 95% bootstrap confidence interval on
// its capacity (internal/channel) is tight enough to trust the
// leak/blocked verdict. Closed channels converge almost immediately —
// their resample capacities are all (near) zero — so an adaptive sweep
// spends its rounds where the estimator is actually uncertain.
//
// Determinism is preserved by construction: the ladder is a pure
// function of the cell's (ReqRounds, CIHalfWidth, MaxRounds, seed) and
// the scenario's rounds policy, every rung re-runs the scenario from
// scratch at the rung's rounds (cells never share state), and the
// adaptive policy is part of the cell's store key — so a warm adaptive
// run reproduces a cold one byte for byte, and adaptive and fixed
// sweeps can never serve each other's cells.

// converged reports whether a rung's estimate is good enough to stop:
// either the capacity is pinned down to the target half-width, or the
// whole confidence interval AND the point estimate sit on the same side
// of the leak threshold (floor + margin) — the estimate may still be
// loose, but no amount of extra sampling can plausibly flip the verdict
// the sweep exists to deliver. The point estimate must agree because
// the bootstrap percentile interval is not guaranteed to contain it
// (resampling can systematically drop a rare symbol); an interval that
// contradicts the row's own Leaks() verdict means the estimate is NOT
// settled, so the ladder keeps climbing.
func converged(row attacks.Row, target float64) bool {
	est := row.Est
	if est.CIHalfWidth() <= target {
		return true
	}
	threshold := est.FloorBits + attacks.LeakMargin
	if est.CapacityBits > threshold {
		return est.CILow > threshold
	}
	return est.CIHigh <= threshold
}

// adaptiveLadder returns the requested-rounds ladder for a cell: half
// the requested rounds, doubling up to the cap, with the cap itself as
// the final rung.
func adaptiveLadder(c Cell) []int {
	var rungs []int
	q := c.ReqRounds / 2
	if q < 1 {
		q = 1
	}
	for q < c.MaxRounds {
		rungs = append(rungs, q)
		q *= 2
	}
	return append(rungs, c.MaxRounds)
}

// runVariant executes one cell's measurement: a single run at the
// cell's effective rounds for a fixed sweep, the adaptive ladder
// otherwise. The returned row carries the effective rounds of the
// converged rung (Rounds), the total rounds simulated across all
// executed rungs (RoundsRun), and the summed simulated ops. cc is the
// worker's reusable cell context (nil = fresh allocations); results are
// bit-identical either way, and each rung releases its pooled machine
// back to the context before the next rung runs.
func runVariant(sc attacks.Scenario, v attacks.Variant, c Cell, cc *attacks.CellContext) attacks.Row {
	if !c.Adaptive() {
		return v.RunIn(cc, c.Rounds, c.Seed)
	}
	var (
		row     attacks.Row
		prevEff = -1 // below any sc.Rounds value, so the first rung always runs
		total   = 0
		ops     = uint64(0)
	)
	for _, q := range adaptiveLadder(c) {
		eff := sc.Rounds(q)
		if eff == prevEff {
			continue // the rounds policy collapsed this rung into the last
		}
		prevEff = eff
		row = v.RunIn(cc, eff, c.Seed)
		total += eff
		ops += row.SimOps
		if converged(row, c.CIHalfWidth) {
			break
		}
	}
	row.RoundsRun = total
	row.SimOps = ops
	return row
}
