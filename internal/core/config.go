// Package core is the time-protection policy layer: the protection
// configuration (which mechanisms of §4 are armed), per-domain policy
// attributes (slice length, padding time, colour allocation, interrupt
// ownership), and the aISA hardware-software contract check of Ge et al.
// [2018a] that the paper names as the precondition for provable time
// protection.
//
// The kernel (internal/kernel) implements the mechanisms; this package
// holds the policy the mechanisms enforce. Keeping them apart mirrors the
// paper's insistence that e.g. the padding time is "not the job of the
// OS, but an attribute of the switched-from security domain, controlled
// by the system designer" (§4.2).
package core

import (
	"fmt"
	"strings"

	"timeprot/internal/hw/mem"
)

// Config selects which time-protection mechanisms are armed. The zero
// value is a completely unprotected system; FullProtection arms
// everything. Each field corresponds to a mechanism in §4 of the paper,
// and each experiment ablation flips exactly one of them.
type Config struct {
	// FlushOnSwitch resets all core-local flushable state (L1 caches,
	// private L2, TLB, branch predictor, prefetcher) on every domain
	// switch — but never on intra-domain context switches (§4.2).
	FlushOnSwitch bool
	// PadSwitch enforces that the next domain is dispatched no earlier
	// than the previous domain's slice start + slice length + the
	// previous domain's PadCycles (§4.2). Without it the switch
	// latency — dependent on dirty lines and entry jitter — is
	// observable, as is early yielding.
	PadSwitch bool
	// ColorUserMemory allocates user frames from per-domain disjoint
	// colour sets, partitioning the physically indexed LLC (§4.1).
	ColorUserMemory bool
	// CloneKernel gives each domain a private kernel image in memory
	// of the domain's own colours, closing the kernel-text channel
	// that exists because even read-only sharing of code is a channel
	// (§4.2).
	CloneKernel bool
	// PartitionIRQs masks all interrupt lines not owned by the
	// currently executing domain; masked interrupts pend until their
	// domain next runs. The preemption timer is exempt (§4.2).
	PartitionIRQs bool
	// DisallowSMTSharing forbids threads of different domains on SMT
	// siblings of one core. The paper concludes hyperthreading is
	// fundamentally insecure across domains (§4.1); this is the
	// corresponding scheduler policy.
	DisallowSMTSharing bool
	// MinDeliveryIPC arms deterministic message delivery on endpoints
	// that declare a MinDelivery threshold (§3.2, Cock et al. model):
	// a cross-domain message is never visible to the receiver before
	// the sender's slice start plus the threshold.
	MinDeliveryIPC bool
}

// FullProtection arms every mechanism.
func FullProtection() Config {
	return Config{
		FlushOnSwitch:      true,
		PadSwitch:          true,
		ColorUserMemory:    true,
		CloneKernel:        true,
		PartitionIRQs:      true,
		DisallowSMTSharing: true,
		MinDeliveryIPC:     true,
	}
}

// NoProtection disables every mechanism (a conventional OS).
func NoProtection() Config { return Config{} }

// String lists the armed mechanisms.
func (c Config) String() string {
	var on []string
	add := func(b bool, n string) {
		if b {
			on = append(on, n)
		}
	}
	add(c.FlushOnSwitch, "flush")
	add(c.PadSwitch, "pad")
	add(c.ColorUserMemory, "colour")
	add(c.CloneKernel, "clone")
	add(c.PartitionIRQs, "irq-partition")
	add(c.DisallowSMTSharing, "no-smt-sharing")
	add(c.MinDeliveryIPC, "min-delivery")
	if len(on) == 0 {
		return "unprotected"
	}
	return strings.Join(on, "+")
}

// DomainSpec is the system designer's policy for one security domain.
type DomainSpec struct {
	// Name identifies the domain in traces and reports.
	Name string
	// SliceCycles is the domain's time-slice length.
	SliceCycles uint64
	// PadCycles is the padding attribute of §4.2: when this domain is
	// switched FROM, the next domain starts no earlier than slice
	// start + SliceCycles + PadCycles. It must cover the worst-case
	// flush latency plus preemption-handling jitter; sufficiency is
	// checked, not assumed (experiment T11).
	PadCycles uint64
	// Colors is the domain's LLC colour allocation, used when
	// ColorUserMemory (and CloneKernel) are armed.
	Colors mem.ColorSet
	// IRQLines lists the interrupt lines this domain owns.
	IRQLines []int
	// CodePages and HeapPages size the domain's address space.
	CodePages, HeapPages int
}

// Validate reports an error if the spec is unusable under cfg.
func (d DomainSpec) Validate(cfg Config, totalColors int) error {
	if d.Name == "" {
		return fmt.Errorf("core: domain with empty name")
	}
	if d.SliceCycles == 0 {
		return fmt.Errorf("core: domain %s: SliceCycles must be positive", d.Name)
	}
	if d.CodePages <= 0 || d.HeapPages <= 0 {
		return fmt.Errorf("core: domain %s: CodePages and HeapPages must be positive", d.Name)
	}
	if cfg.ColorUserMemory {
		if len(d.Colors) == 0 {
			return fmt.Errorf("core: domain %s: colouring armed but no colours allocated", d.Name)
		}
		for c := range d.Colors {
			if c < 0 || c >= totalColors {
				return fmt.Errorf("core: domain %s: colour %d out of range [0,%d)", d.Name, c, totalColors)
			}
			if c == KernelReservedColor {
				return fmt.Errorf("core: domain %s: colour %d is reserved for kernel global data", d.Name, c)
			}
		}
	}
	return nil
}

// KernelReservedColor is the LLC colour reserved for the kernel's global
// data when colouring is armed, so that the small amount of
// deterministically-accessed shared kernel state (§5.2 Case 2a) never
// contends with any user domain's partition.
const KernelReservedColor = 0

// ContractItem is one requirement of the security-oriented
// hardware-software contract (the "aISA" of Ge et al. [2018a]).
type ContractItem struct {
	// Name identifies the requirement.
	Name string
	// Satisfied reports whether the platform + configuration meet it.
	Satisfied bool
	// Detail explains the verdict.
	Detail string
}

// ContractReport is the result of checking the aISA against a platform.
type ContractReport struct {
	Items []ContractItem
}

// Satisfied reports whether every contract item holds.
func (r ContractReport) Satisfied() bool {
	for _, it := range r.Items {
		if !it.Satisfied {
			return false
		}
	}
	return true
}

// String renders the report.
func (r ContractReport) String() string {
	var b strings.Builder
	for _, it := range r.Items {
		mark := "PASS"
		if !it.Satisfied {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-28s %s\n", mark, it.Name, it.Detail)
	}
	return b.String()
}

// CheckContract evaluates the aISA requirements the paper's proof
// strategy rests on: every timing-relevant shared resource must be
// partitionable or flushable by the OS, flush/padding primitives must
// exist, and cross-domain SMT sharing must be excluded. totalColors and
// smtWays describe the platform; cfg is the intended protection policy.
func CheckContract(cfg Config, totalColors, smtWays int) ContractReport {
	var r ContractReport
	add := func(name string, ok bool, detail string) {
		r.Items = append(r.Items, ContractItem{Name: name, Satisfied: ok, Detail: detail})
	}
	add("LLC partitionable",
		!cfg.ColorUserMemory || totalColors > 1,
		fmt.Sprintf("%d page colours available", totalColors))
	add("core-local state flushable",
		true, // the simulated platform always provides flush primitives
		"L1I/L1D/L2/TLB/BP/prefetcher expose reset to defined state")
	add("flush latency hideable",
		!cfg.FlushOnSwitch || cfg.PadSwitch,
		"padding must be armed to hide history-dependent flush latency")
	add("kernel text partitionable",
		!cfg.CloneKernel || totalColors > 1,
		"kernel clone requires coloured memory for per-domain images")
	add("interrupts maskable per domain",
		true,
		"IRQ controller provides per-core per-line masking")
	add("no cross-domain SMT",
		smtWays == 1 || cfg.DisallowSMTSharing,
		fmt.Sprintf("smtWays=%d; hardware threads share unpartitionable state", smtWays))
	add("stateless interconnect excluded",
		true,
		"bus bandwidth channel out of scope (§2); MBA is approximate only")
	return r
}
