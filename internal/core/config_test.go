package core

import (
	"strings"
	"testing"

	"timeprot/internal/hw/mem"
)

func TestConfigString(t *testing.T) {
	if got := NoProtection().String(); got != "unprotected" {
		t.Fatalf("NoProtection.String() = %q", got)
	}
	full := FullProtection().String()
	for _, want := range []string{"flush", "pad", "colour", "clone", "irq-partition", "no-smt-sharing", "min-delivery"} {
		if !strings.Contains(full, want) {
			t.Errorf("FullProtection.String() = %q missing %q", full, want)
		}
	}
	partial := Config{FlushOnSwitch: true}.String()
	if partial != "flush" {
		t.Fatalf("partial = %q", partial)
	}
}

func TestFullProtectionArmsEverything(t *testing.T) {
	c := FullProtection()
	if !c.FlushOnSwitch || !c.PadSwitch || !c.ColorUserMemory || !c.CloneKernel ||
		!c.PartitionIRQs || !c.DisallowSMTSharing || !c.MinDeliveryIPC {
		t.Fatalf("FullProtection missing a mechanism: %+v", c)
	}
}

func TestDomainSpecValidate(t *testing.T) {
	good := DomainSpec{Name: "d", SliceCycles: 100, Colors: mem.ColorRange(1, 3), CodePages: 1, HeapPages: 1}
	if err := good.Validate(FullProtection(), 64); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec DomainSpec
		cfg  Config
	}{
		{"empty name", DomainSpec{SliceCycles: 1, CodePages: 1, HeapPages: 1}, NoProtection()},
		{"zero slice", DomainSpec{Name: "d", CodePages: 1, HeapPages: 1}, NoProtection()},
		{"zero pages", DomainSpec{Name: "d", SliceCycles: 1}, NoProtection()},
		{"no colours under colouring", DomainSpec{Name: "d", SliceCycles: 1, CodePages: 1, HeapPages: 1}, FullProtection()},
		{"reserved colour", DomainSpec{Name: "d", SliceCycles: 1, Colors: mem.NewColorSet(KernelReservedColor), CodePages: 1, HeapPages: 1}, FullProtection()},
		{"out of range colour", DomainSpec{Name: "d", SliceCycles: 1, Colors: mem.NewColorSet(99), CodePages: 1, HeapPages: 1}, FullProtection()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(tc.cfg, 64); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestContractFullProtectionSatisfied(t *testing.T) {
	r := CheckContract(FullProtection(), 64, 1)
	if !r.Satisfied() {
		t.Fatalf("contract not satisfied:\n%s", r)
	}
	if !strings.Contains(r.String(), "PASS") {
		t.Fatal("report should render PASS lines")
	}
}

func TestContractFlushWithoutPadFails(t *testing.T) {
	cfg := FullProtection()
	cfg.PadSwitch = false
	r := CheckContract(cfg, 64, 1)
	if r.Satisfied() {
		t.Fatal("flush-without-pad must violate the contract")
	}
	if !strings.Contains(r.String(), "FAIL") {
		t.Fatal("report should render FAIL lines")
	}
}

func TestContractSMTWithoutPolicyFails(t *testing.T) {
	cfg := FullProtection()
	cfg.DisallowSMTSharing = false
	if CheckContract(cfg, 64, 2).Satisfied() {
		t.Fatal("SMT without the sharing ban must violate the contract")
	}
	// SMT off: fine without the policy.
	if !CheckContract(cfg, 64, 1).Satisfied() {
		t.Fatal("no-SMT platform should satisfy the contract")
	}
}

func TestContractColouringNeedsColors(t *testing.T) {
	if CheckContract(FullProtection(), 1, 1).Satisfied() {
		t.Fatal("colouring on a colourless LLC must fail the contract")
	}
}
