package conform

import (
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/nonintf"
)

// AbstractVerdict is the prover side of one conformance cell: does the
// abstract model distinguish the pair's two Hi programs in any sampled
// time-function family?
type AbstractVerdict struct {
	// Accepts is true when Lo's observation traces agree under both
	// programs for every family and no run overran its pad budget —
	// the abstract model claims the pair is indistinguishable.
	Accepts bool
	// Families is the number of sampled function families checked.
	Families int
	// Runs is the number of complete machine executions.
	Runs int
	// Overruns counts runs whose switch work exceeded the pad budget;
	// any overrun invalidates the padding assumption, so the model
	// refuses to accept the pair.
	Overruns int
	// DivergeFamily and DivergeIndex locate the first divergence when
	// the pair is refuted (zero-valued otherwise).
	DivergeFamily uint64
	DivergeIndex  int
}

// CheckAbstract runs the pair through the abstract machine under every
// sampled time-function family, using the same per-family seed schedule
// as the prover's bounded check, and compares Lo's observation traces.
// The model accepts the pair only if the traces are identical in every
// family and no pad budget overran — the claim the concrete simulator
// then attempts to falsify.
func CheckAbstract(cfg absmodel.Config, p Pair, families int, baseSeed uint64) AbstractVerdict {
	if families < 1 {
		families = 1
	}
	v := AbstractVerdict{Accepts: true, Families: families}
	for fam := 0; fam < families; fam++ {
		seed := baseSeed + uint64(fam)*0x9E37
		m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(seed, cfg.DigestMod))
		oa, ova := nonintf.RunTrace(m, p.HiA)
		ob, ovb := nonintf.RunTrace(m, p.HiB)
		v.Runs += 2
		v.Overruns += ova + ovb
		if idx, diff := firstObsDivergence(oa, ob); diff && v.Accepts {
			v.Accepts = false
			v.DivergeFamily = seed
			v.DivergeIndex = idx
		}
	}
	if v.Overruns > 0 {
		v.Accepts = false
	}
	return v
}

// firstObsDivergence finds the first position where two Lo observation
// traces differ (length divergence counts at the shorter length).
func firstObsDivergence(a, b []nonintf.Observation) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, true
		}
	}
	if len(a) != len(b) {
		return n, true
	}
	return 0, false
}
