package conform

import (
	"reflect"
	"testing"

	"timeprot/internal/hw"
	"timeprot/internal/prove/absmodel"
)

// fuzzConfig derives a model configuration from the fuzzer's choice:
// one of the three prover model variants (base, wide-alphabet,
// deep-schedule — mirroring the experiment engine's registry), with the
// ablation bits of ablSel cleared.
func fuzzConfig(modelSel, ablSel uint64) absmodel.Config {
	cfg := absmodel.DefaultConfig()
	switch modelSel % 3 {
	case 1:
		cfg.Alphabet = 3
	case 2:
		cfg.StepsPerSlice = 4
		cfg.Slices = 8
	}
	cfg.Flush = ablSel&1 == 0
	cfg.Pad = ablSel&2 == 0
	cfg.Color = ablSel&4 == 0
	cfg.Clone = ablSel&8 == 0
	cfg.PartitionIRQ = ablSel&16 == 0
	return cfg
}

// FuzzProgramPair fuzzes the conformance generator across the model
// variant and ablation surface: generation must be deterministic, stay
// inside the Hi action space at the prover's program length, compile to
// in-bounds concrete ops, and never panic the abstract driver.
func FuzzProgramPair(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(42), uint64(1), uint64(3))
	f.Add(uint64(7), uint64(2), uint64(31))
	f.Add(uint64(0xDEADBEEF), uint64(1), uint64(5))
	f.Fuzz(func(t *testing.T, seed, modelSel, ablSel uint64) {
		cfg := fuzzConfig(modelSel, ablSel)
		p := Generate(cfg, seed)
		if !reflect.DeepEqual(p, Generate(cfg, seed)) {
			t.Fatalf("generation is not deterministic for seed %d", seed)
		}
		want := progLen(cfg)
		if len(p.HiA) != want || len(p.HiB) != want {
			t.Fatalf("lengths %d/%d, want %d", len(p.HiA), len(p.HiB), want)
		}
		for _, prog := range [][]absmodel.Action{p.HiA, p.HiB} {
			for _, a := range prog {
				if a != absmodel.ActSyscall && a != absmodel.ActStartIO &&
					(a < 0 || int(a) >= cfg.Alphabet) {
					t.Fatalf("action %d outside the Hi action space", a)
				}
			}
		}

		// The abstract driver accepts any generated pair without
		// panicking, and an identical pair is always accepted.
		v := CheckAbstract(cfg, p, 1, seed)
		if reflect.DeepEqual(p.HiA, p.HiB) && v.Overruns == 0 && !v.Accepts {
			t.Fatalf("identical pair refuted: %+v", v)
		}

		// Compiled ops stay inside the Trojan's heap.
		params := DefaultParams(8)
		setOrder := shuffledSets(params.SetsPerGroup, seed)
		heap := uint64(16) * hw.PageSize
		for _, prog := range [][]absmodel.Action{p.HiA, p.HiB} {
			for _, op := range compile(params, prog, setOrder) {
				if (op.kind == opRead || op.kind == opWrite) && op.addr+hw.LineSize > heap {
					t.Fatalf("compiled op addr %#x outside the %d-page heap", op.addr, 16)
				}
			}
		}
	})
}
