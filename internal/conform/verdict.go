package conform

import (
	"timeprot/internal/core"
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/prove/nonintf"
)

// Verdict classifies one conformance cell.
type Verdict string

const (
	// VerdictSound: the two sides agree — the prover accepts and the
	// simulator measures no leak, or the prover refutes and the
	// simulator demonstrates one.
	VerdictSound Verdict = "sound"
	// VerdictConservative: the prover refutes but the simulator sees no
	// leak. Allowed — the abstract model may over-approximate; a
	// refutation is a refusal to certify, not a claim of exploitability.
	VerdictConservative Verdict = "conservative"
	// VerdictViolation: the prover accepts the pair while the simulator
	// measures capacity above the CI-backed noise floor. Fatal — the
	// abstract model fails to over-approximate a concrete channel.
	VerdictViolation Verdict = "violation"
)

// Classify derives the cell verdict from the two sides' outcomes.
func Classify(absAccepts, concreteLeak bool) Verdict {
	switch {
	case absAccepts && concreteLeak:
		return VerdictViolation
	case !absAccepts && !concreteLeak:
		return VerdictConservative
	default:
		return VerdictSound
	}
}

// ViolationWitness is a minimized soundness violation: the smallest
// program pair (under the prover's shrink steps) that the abstract
// model still accepts while the simulator still measures a leak, with
// the re-measured evidence.
type ViolationWitness struct {
	// HiA and HiB are the minimal violating pair.
	HiA, HiB []absmodel.Action
	// ShrinkEvals counts the dual-driver evaluations minimisation spent.
	ShrinkEvals int
	// Channel names the leaking observation stream of the minimal pair.
	Channel string
	// CapacityBits, FloorBits, CILow and CIHigh are the minimal pair's
	// re-measured leaking estimate.
	CapacityBits, FloorBits, CILow, CIHigh float64
}

// Opts parameterises one conformance cell check.
type Opts struct {
	// Families is the number of sampled time-function families on the
	// abstract side.
	Families int
	// FamilySeed is the abstract side's base family seed.
	FamilySeed uint64
	// MeasureSeed seeds the concrete run (symbol sequence, probe
	// order, estimator bootstrap).
	MeasureSeed uint64
	// Params sizes the concrete run.
	Params Params
}

// Outcome is one fully cross-checked conformance cell.
type Outcome struct {
	// Pair is the program pair checked.
	Pair Pair
	// Abstract and Concrete are the two sides' results.
	Abstract AbstractVerdict
	// Concrete is the simulator measurement.
	Concrete ConcreteResult
	// Verdict is the cross-check classification.
	Verdict Verdict
	// Witness is the minimized evidence when Verdict is violation.
	Witness *ViolationWitness
}

// confirmSeeds derive the independent replication seeds a screening
// leak must survive before it can contradict an accepting prover.
var confirmSeeds = [...]uint64{0xC0417172, 0x1D05E5E1}

// confirmLeak guards the violation verdict against estimator false
// positives. A capacity estimate on a few dozen rounds can clear the
// CI-backed floor by chance (a temporal drift in the observations
// aligning with the fixed symbol sequence), and a soundness violation
// is a fatal claim — so a leak only counts against an accepting prover
// if it replicates under every independent measurement seed. A real
// channel is systematic and survives reseeding; noise does not.
func confirmLeak(prot core.Config, pair Pair, o Opts) bool {
	for _, d := range confirmSeeds {
		if !MeasureConcrete(prot, pair, o.Params, o.MeasureSeed^d).Leak {
			return false
		}
	}
	return true
}

// Check runs one pair through both sides and classifies the cell,
// minimising any soundness violation into a witness. Outcome.Concrete
// always carries the screening measurement verbatim; a screening leak
// that fails replication classifies as sound (Concrete.Leak may then
// read true on a sound cell — the measurement is reported, not
// falsified).
func Check(cfg absmodel.Config, prot core.Config, pair Pair, o Opts) Outcome {
	out := Outcome{Pair: pair}
	out.Abstract = CheckAbstract(cfg, pair, o.Families, o.FamilySeed)
	out.Concrete = MeasureConcrete(prot, pair, o.Params, o.MeasureSeed)
	leak := out.Concrete.Leak
	if out.Abstract.Accepts && leak {
		leak = confirmLeak(prot, pair, o)
	}
	out.Verdict = Classify(out.Abstract.Accepts, leak)
	if out.Verdict == VerdictViolation {
		out.Witness = minimizeViolation(cfg, prot, pair, o)
	}
	return out
}

// minimizeViolation shrinks a violating pair through the prover's
// shrink machinery against the conjunction of both sides: the minimal
// pair is still abstractly accepted AND still concretely leaking, so
// every remaining action is load-bearing for the soundness gap.
func minimizeViolation(cfg absmodel.Config, prot core.Config, pair Pair, o Opts) *ViolationWitness {
	still := func(a, b []absmodel.Action) bool {
		p := Pair{HiA: a, HiB: b}
		if !CheckAbstract(cfg, p, o.Families, o.FamilySeed).Accepts {
			return false
		}
		return MeasureConcrete(prot, p, o.Params, o.MeasureSeed).Leak &&
			confirmLeak(prot, p, o)
	}
	hiA, hiB, evals := nonintf.MinimizeWith(pair.HiA, pair.HiB, still)
	res := MeasureConcrete(prot, Pair{HiA: hiA, HiB: hiB}, o.Params, o.MeasureSeed)
	w := &ViolationWitness{HiA: hiA, HiB: hiB, ShrinkEvals: evals}
	for _, ch := range res.Channels {
		if leakCertain(ch.Est) {
			w.Channel = ch.Name
			w.CapacityBits = ch.Est.CapacityBits
			w.FloorBits = ch.Est.FloorBits
			w.CILow = ch.Est.CILow
			w.CIHigh = ch.Est.CIHigh
			break
		}
	}
	return w
}
