package conform

import (
	"reflect"
	"testing"

	"timeprot/internal/attacks"
	"timeprot/internal/core"
	"timeprot/internal/hw/cover"
	"timeprot/internal/prove/absmodel"
)

// validActions indexes the legal action space of a config.
func validActions(cfg absmodel.Config) map[absmodel.Action]bool {
	ok := map[absmodel.Action]bool{}
	for _, a := range actions(cfg) {
		ok[a] = true
	}
	return ok
}

func TestMutateDeterministicAndWellFormed(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	ok := validActions(cfg)
	maxLen := 2 * cfg.StepsPerSlice * ((cfg.Slices + 1) / 2)
	p := Generate(cfg, 11)
	for seed := uint64(0); seed < 200; seed++ {
		m1 := Mutate(cfg, p, seed)
		m2 := Mutate(cfg, p, seed)
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("seed %d: Mutate is not deterministic", seed)
		}
		for _, prog := range [][]absmodel.Action{m1.HiA, m1.HiB, m1.Noise} {
			for _, a := range prog {
				if !ok[a] {
					t.Fatalf("seed %d: illegal action %d", seed, a)
				}
			}
		}
		if len(m1.HiA) < 1 || len(m1.HiA) > maxLen || len(m1.HiB) < 1 || len(m1.HiB) > maxLen {
			t.Fatalf("seed %d: program lengths out of bounds: %d/%d", seed, len(m1.HiA), len(m1.HiB))
		}
		// Chain a second mutation to make sure mutants stay mutable.
		Mutate(cfg, m1, seed^0xFF)
	}
}

func TestMutateNeverAliasesParent(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	p := Generate(cfg, 23)
	orig := p.Clone()
	for seed := uint64(0); seed < 100; seed++ {
		Mutate(cfg, p, seed)
		if !reflect.DeepEqual(p, orig) {
			t.Fatalf("seed %d: Mutate modified its input pair", seed)
		}
	}
}

func TestMutateReachesEveryOperatorOutcome(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	p := Generate(cfg, 5)
	var sawNoise, sawShorter, sawLonger, sawPoint bool
	for seed := uint64(0); seed < 300; seed++ {
		m := Mutate(cfg, p, seed)
		switch {
		case len(m.Noise) > 0:
			sawNoise = true
		case len(m.HiA)+len(m.HiB) < len(p.HiA)+len(p.HiB):
			sawShorter = true
		case len(m.HiA)+len(m.HiB) > len(p.HiA)+len(p.HiB):
			sawLonger = true
		case !reflect.DeepEqual(m.HiA, p.HiA) || !reflect.DeepEqual(m.HiB, p.HiB):
			sawPoint = true
		}
	}
	if !sawNoise || !sawShorter || !sawLonger || !sawPoint {
		t.Fatalf("operator coverage: noise=%v shorter=%v longer=%v point=%v",
			sawNoise, sawShorter, sawLonger, sawPoint)
	}
}

func TestMeasureConcreteInMatchesFresh(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	pair := Generate(cfg, PairSeed(7, 3))
	p := DefaultParams(10)
	prot := core.FullProtection()

	fresh := MeasureConcrete(prot, pair, p, 99)

	cc := attacks.NewCellContext()
	cov := &cover.Map{}
	pooled := MeasureConcreteIn(cc, prot, pair, p, 99, cov)
	if !reflect.DeepEqual(fresh, pooled) {
		t.Fatalf("pooled+coverage result differs from fresh:\n%+v\nvs\n%+v", fresh, pooled)
	}
	if cov.Count() == 0 {
		t.Fatal("coverage map stayed empty across a concrete run")
	}

	// Re-running on the same warm context must also be bit-identical.
	again := MeasureConcreteIn(cc, prot, pair, p, 99, &cover.Map{})
	if !reflect.DeepEqual(fresh, again) {
		t.Fatal("warm context re-run drifted")
	}
}

func TestNoisePairRunsAndStaysSymbolIndependent(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	pair := Generate(cfg, PairSeed(7, 4))
	pair.Noise = []absmodel.Action{0, 1, absmodel.ActSyscall, 1, absmodel.ActStartIO}
	p := DefaultParams(10)

	// The noise domain must not break the run or the labelling under
	// either extreme of the protection surface.
	full := MeasureConcrete(core.FullProtection(), pair, p, 123)
	if len(full.Channels) != 4 {
		t.Fatalf("got %d streams, want 4", len(full.Channels))
	}
	open := core.FullProtection()
	open.FlushOnSwitch = false
	res := MeasureConcrete(open, pair, p, 123)
	if len(res.Channels) != 4 {
		t.Fatalf("got %d streams, want 4", len(res.Channels))
	}

	// An IDENTICAL pair with noise carries no symbol: no stream may
	// report a CI-certain leak, noise or not.
	ident := Pair{HiA: pair.HiA, HiB: append([]absmodel.Action(nil), pair.HiA...), Noise: pair.Noise}
	for _, prot := range []core.Config{core.FullProtection(), open} {
		r := MeasureConcrete(prot, ident, p, 77)
		if r.Leak {
			t.Fatalf("identical-program pair with noise measured a certain leak under %+v", prot)
		}
	}

	// Determinism with a third domain in the schedule.
	r1 := MeasureConcrete(open, pair, p, 123)
	if !reflect.DeepEqual(res, r1) {
		t.Fatal("noise-pair measurement is not deterministic")
	}
}
