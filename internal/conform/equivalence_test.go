package conform

import (
	"reflect"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/kernel"
	"timeprot/internal/prove/absmodel"
)

// TestGeneratedProgramEquivalence extends the execution-model
// equivalence suite from hand-written scenarios to GENERATED programs:
// each generated pair's concrete run is built twice — spawning the
// Trojan and spy directly, and replaying the identical Programs through
// the legacy goroutine adapter via kernel.ReplayProgram — and the
// complete kernel event logs, run reports, and per-stream capacity
// estimates must be bit-identical. (Worker-count invariance of the
// surrounding matrix is pinned separately by the experiment engine's
// conformance parallelism test; the kernel itself is a deterministic
// lockstep event loop.)
func TestGeneratedProgramEquivalence(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	prot := core.FullProtection()
	prot.FlushOnSwitch = false // ablated: richer cache dynamics to replay
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			pair := Generate(cfg, seed)
			run := func(o BuildOpts) (*kernel.System, kernel.Report, ConcreteResult) {
				sys, finish := BuildConcrete(prot, pair, DefaultParams(8), seed, o)
				rep, err := sys.Run()
				if err != nil {
					t.Fatalf("run (legacy=%v): %v", o.Legacy, err)
				}
				if len(rep.Errors) > 0 {
					t.Fatalf("thread errors (legacy=%v): %v", o.Legacy, rep.Errors)
				}
				return sys, rep, finish(rep)
			}
			dsys, drep, dres := run(BuildOpts{Trace: true})
			lsys, lrep, lres := run(BuildOpts{Trace: true, Legacy: true})

			dev, lev := dsys.Trace().Events(), lsys.Trace().Events()
			if len(dev) != len(lev) {
				t.Fatalf("trace length differs: direct %d vs legacy %d", len(dev), len(lev))
			}
			for i := range dev {
				if dev[i] != lev[i] {
					t.Fatalf("trace diverges at event %d:\n direct: %+v\n legacy: %+v", i, dev[i], lev[i])
				}
			}
			if drep.Ops != lrep.Ops || drep.Switches != lrep.Switches {
				t.Errorf("report differs: ops %d vs %d, switches %d vs %d",
					drep.Ops, lrep.Ops, drep.Switches, lrep.Switches)
			}
			if !reflect.DeepEqual(dres, lres) {
				t.Errorf("results differ:\n direct: %+v\n legacy: %+v", dres, lres)
			}
		})
	}
}
