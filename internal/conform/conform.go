// Package conform is the model-conformance harness: property-based
// cross-checking of the abstract prover model (internal/prove) against
// the concrete simulator (internal/hw + internal/kernel), the
// discipline Buckley et al. 2023 showed the paper's agenda depends on.
// The abstract model is only a sound stand-in for the machine if it
// over-approximates every channel the concrete machine can express —
// whenever the prover finds two Hi programs indistinguishable, the
// simulator must measure no capacity between them.
//
// The harness generates deterministic random Hi program pairs over the
// abstract action alphabet, runs each pair through BOTH sides on the
// same protection configuration:
//
//   - abstract: nonintf.RunTrace over sampled time-function families —
//     does Lo's observation trace distinguish the two programs?
//   - concrete: a two-domain transmission run on the kernel simulator,
//     where a Hi Trojan executes the symbol's program each round and a
//     Lo spy measures its own timing four ways (cache-probe decode,
//     probe latency, slice-start arrival, interrupt gaps); the channel
//     estimator turns the labelled observations into a capacity with a
//     bootstrap confidence interval.
//
// Each cell is then classified: sound (the verdicts agree), conservative
// (the prover refutes but the simulator sees no leak — allowed, the
// abstract model may over-approximate), or a soundness VIOLATION (the
// prover accepts the pair while the simulator measures capacity above
// the CI-backed noise floor). Violations are fatal and are minimised
// into a witness via nonintf.MinimizeWith against the concrete leak
// predicate, so every remaining action of the witness pair is
// load-bearing.
package conform

import (
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/rng"
)

// HarnessVersion is the conformance harness's registered model-version
// string, part of the conformance fingerprint under which the
// experiment engine keys conformance cells. Bump it whenever a verdict
// could change for the same inputs — the pair generator, the concrete
// driver's transmission protocol or observation streams, the leak
// predicate, or the classification. Pure refactors do not bump it.
const HarnessVersion = "conform/1"

// Pair is one generated Hi program pair: the two secret-dependent
// behaviours whose distinguishability both sides judge.
type Pair struct {
	// HiA and HiB are the two Hi programs over the abstract action
	// alphabet (user inputs, syscalls, device-interrupt programming).
	HiA, HiB []absmodel.Action
	// Noise, when non-empty, is a symbol-INDEPENDENT background program
	// run by a third domain scheduled between Hi and Lo — the
	// multi-domain generator surface the discovery fuzzer searches.
	// Because the noise program is the same whichever Hi program the
	// round selects, it can never carry the symbol itself; it exists to
	// perturb shared microarchitectural state (LLC occupancy, bus
	// queueing, flush work) so marginal channels surface or drown.
	// Conformance cells never set it, and it is omitted from their
	// serialised form, so conform/1 cells and goldens are untouched.
	Noise []absmodel.Action `json:",omitempty"`
}

// PairSeed derives the deterministic generation seed of pair `index`
// under a base seed, decorrelating consecutive indices.
func PairSeed(base uint64, index int) uint64 {
	return rng.HashCombine(base, 0x9E3779B9+uint64(index))
}

// actions returns the Hi action space of a model configuration: every
// user input, a syscall, and a device-interrupt programming action —
// the same space the prover's bounded check enumerates.
func actions(cfg absmodel.Config) []absmodel.Action {
	acts := make([]absmodel.Action, 0, cfg.Alphabet+2)
	for a := 0; a < cfg.Alphabet; a++ {
		acts = append(acts, absmodel.Action(a))
	}
	return append(acts, absmodel.ActSyscall, absmodel.ActStartIO)
}

// Generate produces the deterministic random program pair of a seed:
// HiA is uniform over the action space at the prover's random-program
// length (StepsPerSlice actions per Hi slice); HiB is, by turns, an
// identical copy (the pair every sound model must accept), a fully
// independent draw, or HiA with a random subset of positions mutated —
// so the generated surface mixes near-identical and distant pairs. The
// pair depends only on the configuration's sizing fields, not on which
// mechanisms are armed, so the same seed yields the same pair across
// every ablation row.
func Generate(cfg absmodel.Config, seed uint64) Pair {
	r := rng.New(seed)
	acts := actions(cfg)
	hiSlices := (cfg.Slices + 1) / 2
	length := cfg.StepsPerSlice * hiSlices
	a := make([]absmodel.Action, length)
	for i := range a {
		a[i] = acts[r.Intn(len(acts))]
	}
	b := append([]absmodel.Action(nil), a...)
	switch r.Intn(4) {
	case 0:
		// Identical pair: the prover must accept it under every
		// configuration, and the simulator must measure no capacity.
	case 1:
		// Independent pair.
		for i := range b {
			b[i] = acts[r.Intn(len(acts))]
		}
	default:
		// Mutation pair: k random positions redrawn.
		k := 1 + r.Intn(length)
		for _, i := range r.Perm(length)[:k] {
			b[i] = acts[r.Intn(len(acts))]
		}
	}
	return Pair{HiA: a, HiB: b}
}

// Clone returns a deep copy of the pair; mutations of the copy never
// alias the original's action slices.
func (p Pair) Clone() Pair {
	c := Pair{
		HiA: append([]absmodel.Action(nil), p.HiA...),
		HiB: append([]absmodel.Action(nil), p.HiB...),
	}
	if len(p.Noise) > 0 {
		c.Noise = append([]absmodel.Action(nil), p.Noise...)
	}
	return c
}

// Mutate returns the deterministic mutant of a pair under a seed: one
// randomly chosen operator applied to a deep copy, so the parent is
// never aliased. The operators cover the discovery fuzzer's search
// moves — point redraws, cross-program segment copies and swaps (which
// manufacture near-identical pairs, the ones a sound model must prove
// hardest), insertions and deletions (so pair length itself is
// searched), and toggling a symbol-independent Noise program. Program
// lengths stay within [1, 2×the generator's default length].
func Mutate(cfg absmodel.Config, p Pair, seed uint64) Pair {
	r := rng.New(seed)
	acts := actions(cfg)
	hiSlices := (cfg.Slices + 1) / 2
	maxLen := 2 * cfg.StepsPerSlice * hiSlices
	m := p.Clone()

	// prog picks the mutation target: HiA or HiB.
	prog := func() *[]absmodel.Action {
		if r.Bool() {
			return &m.HiA
		}
		return &m.HiB
	}

	switch r.Intn(7) {
	case 0, 1: // redraw k random positions of one program
		t := *prog()
		k := 1 + r.Intn(len(t))
		for _, i := range r.Perm(len(t))[:k] {
			t[i] = acts[r.Intn(len(acts))]
		}
	case 2: // swap an aligned segment between A and B
		n := min(len(m.HiA), len(m.HiB))
		lo := r.Intn(n)
		hi := lo + 1 + r.Intn(n-lo)
		for i := lo; i < hi; i++ {
			m.HiA[i], m.HiB[i] = m.HiB[i], m.HiA[i]
		}
	case 3: // copy an aligned segment one way (toward identical pairs)
		n := min(len(m.HiA), len(m.HiB))
		lo := r.Intn(n)
		hi := lo + 1 + r.Intn(n-lo)
		src, dst := m.HiA, m.HiB
		if r.Bool() {
			src, dst = dst, src
		}
		copy(dst[lo:hi], src[lo:hi])
	case 4: // insert a random action
		t := prog()
		if len(*t) < maxLen {
			i := r.Intn(len(*t) + 1)
			*t = append(*t, 0)
			copy((*t)[i+1:], (*t)[i:])
			(*t)[i] = acts[r.Intn(len(acts))]
		} else {
			(*t)[r.Intn(len(*t))] = acts[r.Intn(len(acts))]
		}
	case 5: // delete a random action
		t := prog()
		if len(*t) > 1 {
			i := r.Intn(len(*t))
			*t = append((*t)[:i], (*t)[i+1:]...)
		} else {
			(*t)[0] = acts[r.Intn(len(acts))]
		}
	default: // toggle or redraw the Noise program
		if len(m.Noise) > 0 && r.Bool() {
			m.Noise = nil
		} else {
			n := 1 + r.Intn(cfg.StepsPerSlice*hiSlices)
			m.Noise = make([]absmodel.Action, n)
			for i := range m.Noise {
				m.Noise[i] = acts[r.Intn(len(acts))]
			}
		}
	}
	return m
}
