package conform

import (
	"reflect"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/prove/absmodel"
)

// repeated builds a constant program.
func repeated(a absmodel.Action, n int) []absmodel.Action {
	out := make([]absmodel.Action, n)
	for i := range out {
		out[i] = a
	}
	return out
}

func progLen(cfg absmodel.Config) int {
	return cfg.StepsPerSlice * ((cfg.Slices + 1) / 2)
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	for seed := uint64(0); seed < 32; seed++ {
		p1 := Generate(cfg, seed)
		p2 := Generate(cfg, seed)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	want := progLen(cfg)
	acts := map[absmodel.Action]bool{absmodel.ActSyscall: true, absmodel.ActStartIO: true}
	for a := 0; a < cfg.Alphabet; a++ {
		acts[absmodel.Action(a)] = true
	}
	identical, distinct := 0, 0
	for seed := uint64(0); seed < 64; seed++ {
		p := Generate(cfg, seed)
		if len(p.HiA) != want || len(p.HiB) != want {
			t.Fatalf("seed %d: lengths %d/%d, want %d", seed, len(p.HiA), len(p.HiB), want)
		}
		for _, prog := range [][]absmodel.Action{p.HiA, p.HiB} {
			for _, a := range prog {
				if !acts[a] {
					t.Fatalf("seed %d: action %d outside the Hi action space", seed, a)
				}
			}
		}
		if reflect.DeepEqual(p.HiA, p.HiB) {
			identical++
		} else {
			distinct++
		}
	}
	if identical == 0 || distinct == 0 {
		t.Fatalf("generator surface is degenerate: %d identical, %d distinct pairs", identical, distinct)
	}
}

func TestGenerateIgnoresMechanismBits(t *testing.T) {
	base := absmodel.DefaultConfig()
	ablated := base
	ablated.Flush, ablated.Pad, ablated.Color = false, false, false
	for seed := uint64(0); seed < 16; seed++ {
		if !reflect.DeepEqual(Generate(base, seed), Generate(ablated, seed)) {
			t.Fatalf("seed %d: pair depends on mechanism bits; ablation rows would check different pairs", seed)
		}
	}
}

func TestCheckAbstractIdenticalAccepts(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.Flush = false // even a broken config cannot distinguish a program from itself
	prog := repeated(0, progLen(cfg))
	v := CheckAbstract(cfg, Pair{HiA: prog, HiB: prog}, 3, 42)
	if !v.Accepts {
		t.Fatalf("identical pair refuted: %+v", v)
	}
	if v.Runs != 6 || v.Families != 3 {
		t.Fatalf("bookkeeping: %+v", v)
	}
}

func TestCheckAbstractRefutesUnflushed(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.Flush = false
	p := Pair{
		HiA: repeated(0, progLen(cfg)),
		HiB: repeated(1%absmodel.Action(cfg.Alphabet), progLen(cfg)),
	}
	v := CheckAbstract(cfg, p, 3, 42)
	if v.Accepts {
		t.Fatalf("distinct pair accepted without flushing: %+v", v)
	}
}

func TestCheckAbstractFullProtectionAccepts(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	for seed := uint64(0); seed < 8; seed++ {
		p := Generate(cfg, seed)
		v := CheckAbstract(cfg, p, 3, 42)
		if !v.Accepts {
			t.Fatalf("seed %d: full protection refuted %v vs %v: %+v", seed, p.HiA, p.HiB, v)
		}
	}
}

// TestConcreteDetectsUnprotectedLeak pins the harness's detection power:
// with no protection, two programs sweeping different L1 set groups must
// produce a CI-certain leak — otherwise violations could never be
// observed and every conformance verdict would be vacuous.
func TestConcreteDetectsUnprotectedLeak(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	p := Pair{HiA: repeated(0, progLen(cfg)), HiB: repeated(1, progLen(cfg))}
	res := MeasureConcrete(core.NoProtection(), p, DefaultParams(24), 42)
	if !res.Leak {
		t.Fatalf("no leak measured on an unprotected distinct pair: %+v", res)
	}
}

// TestConcreteFullProtectionQuiet pins the other direction: under full
// protection the same distinct pair must measure no CI-certain leak on
// any stream.
func TestConcreteFullProtectionQuiet(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	p := Pair{HiA: repeated(0, progLen(cfg)), HiB: repeated(1, progLen(cfg))}
	res := MeasureConcrete(core.FullProtection(), p, DefaultParams(24), 42)
	if res.Leak {
		t.Fatalf("full protection leaked: %+v", res)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		accepts, leak bool
		want          Verdict
	}{
		{true, false, VerdictSound},
		{false, true, VerdictSound},
		{false, false, VerdictConservative},
		{true, true, VerdictViolation},
	}
	for _, c := range cases {
		if got := Classify(c.accepts, c.leak); got != c.want {
			t.Errorf("Classify(%v, %v) = %s, want %s", c.accepts, c.leak, got, c.want)
		}
	}
}

// TestCheckFullProtection cross-checks generated pairs end to end under
// full protection: the prover must accept and the simulator must stay
// quiet — the soundness direction the harness exists to guard.
func TestCheckFullProtection(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	for seed := uint64(1); seed <= 3; seed++ {
		p := Generate(cfg, seed)
		out := Check(cfg, core.FullProtection(), p, Opts{
			Families: 2, FamilySeed: 42, MeasureSeed: seed, Params: DefaultParams(16),
		})
		if out.Verdict == VerdictViolation {
			t.Fatalf("seed %d: soundness violation: %+v", seed, out)
		}
		if !out.Abstract.Accepts {
			t.Fatalf("seed %d: full protection refuted: %+v", seed, out.Abstract)
		}
	}
}

// TestCheckUnflushed cross-checks an ablated row: the prover refutes
// distinct pairs without flushing, so whatever the simulator measures
// the verdict is sound or conservative, never a violation.
func TestCheckUnflushed(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.Flush = false
	prot := core.FullProtection()
	prot.FlushOnSwitch = false
	p := Pair{HiA: repeated(0, progLen(cfg)), HiB: repeated(1, progLen(cfg))}
	out := Check(cfg, prot, p, Opts{
		Families: 2, FamilySeed: 42, MeasureSeed: 9, Params: DefaultParams(16),
	})
	if out.Abstract.Accepts {
		t.Fatalf("unflushed distinct pair accepted: %+v", out.Abstract)
	}
	if out.Verdict == VerdictViolation {
		t.Fatalf("verdict inconsistent with refutation: %+v", out)
	}
}
