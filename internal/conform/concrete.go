package conform

import (
	"fmt"

	"timeprot/internal/attacks"
	"timeprot/internal/channel"
	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/cover"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/prove/absmodel"
	"timeprot/internal/rng"
)

// This file is the concrete side of the conformance cell: a two-domain
// transmission run on the kernel simulator in which a Hi Trojan
// executes, each round, the concrete compilation of whichever of the
// pair's two programs the round's symbol selects, and a Lo spy measures
// its own timing through every channel family the simulator models:
//
//   - probe-dec / probe-lat: an L1 prime-and-probe sweep at the top of
//     each Lo slice (the T2 construction) — the decoded hottest set
//     group and the raw total probe latency;
//   - slice-start: the arrival time of Lo's slice relative to the
//     previous one, the footprint of unpadded symbol-dependent switch
//     work (the T4 flush-latency channel);
//   - irq-gap: the largest mid-slice execution gap in the interrupt
//     footprint range (the T6 channel), fed by the Trojan's ActStartIO
//     actions programming its device's completion interrupt.
//
// Each abstract action compiles to a fixed op sequence: user input a
// sweeps the L1 sets of group a%Groups across enough ways to evict the
// spy's primed lines and dirties a few heap lines (so flush work is
// action-dependent); ActSyscall performs a null syscall; ActStartIO
// programs device line 0 to fire FireIn cycles later, mid Lo's slice
// when interrupts are unpartitioned.
//
// The Hi and Lo slices are sized so a compiled program's ops fit well
// inside Hi's slice and the interrupt lands inside Lo's: with ops
// issued in the first ~60k cycles of Hi's 120k slice, fire time
// x+FireIn spans [155k, 215k], inside Lo's slice [145k, 225k].

// Params sizes the concrete conformance run.
type Params struct {
	// Rounds is the number of labelled transmission rounds.
	Rounds int
	// HiSlice, LoSlice and Pad are the domains' slice and pad budgets.
	HiSlice, LoSlice, Pad uint64
	// Groups and SetsPerGroup partition the L1 sets; user action a
	// signals group a%Groups.
	Groups, SetsPerGroup int
	// PrimeWays and TrojanWays are the spy's primed ways and the
	// Trojan's filled ways per set (TrojanWays+PrimeWays must exceed
	// the L1 associativity for eviction).
	PrimeWays, TrojanWays int
	// ActionSets is the number of sets per group one user action
	// touches; DirtyLines the heap lines it dirties.
	ActionSets, DirtyLines int
	// FireIn is the ActStartIO completion delay.
	FireIn uint64
	// Warmup observations are discarded per stream; Bins is the
	// estimator's discretisation width.
	Warmup, Bins int
}

// DefaultParams returns the standard conformance sizing at the given
// round count (floored at 8 so every stream survives warmup).
func DefaultParams(rounds int) Params {
	if rounds < 8 {
		rounds = 8
	}
	return Params{
		Rounds:       rounds,
		HiSlice:      120_000,
		LoSlice:      80_000,
		Pad:          25_000,
		Groups:       4,
		SetsPerGroup: 16, // 64 L1 sets / 4 groups
		PrimeWays:    2,
		TrojanWays:   8,
		ActionSets:   4,
		DirtyLines:   4,
		FireIn:       155_000,
		Warmup:       4,
		Bins:         6,
	}
}

// Spy gap-sampling thresholds, following the T6 construction: below
// gapLo is ordinary op jitter, above gapHi a domain switch.
const (
	gapLo = 350
	gapHi = 9_000
	// gapBurn is the Compute length between gap polls; it coarsens the
	// baseline gap (~tens of cycles, still far below gapLo) while
	// cutting the op count of the sampling loop.
	gapBurn = 40
	// spinBurn is the Compute length of the inter-round epoch spins.
	spinBurn = 180
)

// opKind discriminates compiled concrete ops.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opSyscall
	opIO
)

// cop is one compiled concrete op.
type cop struct {
	kind opKind
	addr uint64
}

// compile lowers an abstract Hi program to the concrete op sequence the
// Trojan executes each round the program's symbol is selected.
func compile(p Params, prog []absmodel.Action, setOrder []int) []cop {
	var out []cop
	for _, a := range prog {
		switch a {
		case absmodel.ActSyscall:
			out = append(out, cop{kind: opSyscall})
		case absmodel.ActStartIO:
			out = append(out, cop{kind: opIO})
		default:
			g := int(a) % p.Groups
			for pg := 0; pg < p.TrojanWays; pg++ {
				for _, j := range setOrder[:p.ActionSets] {
					set := g*p.SetsPerGroup + j
					out = append(out, cop{
						kind: opRead,
						addr: uint64(pg)*hw.PageSize + uint64(set)*hw.LineSize,
					})
				}
			}
			// Dirty a few lines on a page past the sweep ways, so the
			// flush work on the next switch is action-dependent.
			for j := 0; j < p.DirtyLines; j++ {
				set := g*p.SetsPerGroup + setOrder[j%len(setOrder)]
				out = append(out, cop{
					kind: opWrite,
					addr: uint64(p.TrojanWays)*hw.PageSize + uint64(set)*hw.LineSize,
				})
			}
		}
	}
	return out
}

// spin is the waitEpoch idiom as a step fragment (the attacks package
// keeps its copy unexported): poll Epoch until it leaves the armed
// value, burning Compute cycles between polls.
type spin struct {
	burn uint64
	cur  uint64
	st   int // 0 idle, 1 awaiting Epoch, 2 awaiting Compute
}

func (sp *spin) start(cur uint64, m *kernel.Machine) kernel.Status {
	sp.cur = cur
	sp.st = 1
	return m.Epoch()
}

func (sp *spin) step(m *kernel.Machine) (next uint64, done bool, st kernel.Status) {
	switch sp.st {
	case 1:
		if e := m.Value(); e != sp.cur {
			sp.st = 0
			return e, true, 0
		}
		if sp.burn > 0 {
			sp.st = 2
			return 0, false, m.Compute(sp.burn)
		}
		return 0, false, m.Epoch()
	case 2:
		sp.st = 1
		return 0, false, m.Epoch()
	default:
		panic("conform: spin.step while idle")
	}
}

// trojan executes the round symbol's compiled program, commits the
// symbol, and spins to its next slice.
type trojan struct {
	p     Params
	seq   []int
	progs [2][]cop
	syms  *attacks.SymLog
	// ioLine is the IRQ line ActStartIO programs: the running domain
	// must own it (0 for Hi, 2 for the Noise domain).
	ioLine int

	phase int
	r, i  int
	epoch uint64
	spin  spin
}

func (t *trojan) exec(m *kernel.Machine) kernel.Status {
	op := t.progs[t.seq[t.r]][t.i]
	switch op.kind {
	case opRead:
		return m.ReadHeap(op.addr)
	case opWrite:
		return m.WriteHeap(op.addr)
	case opSyscall:
		return m.NullSyscall()
	default:
		return m.StartIO(t.ioLine, t.p.FireIn)
	}
}

func (t *trojan) begin(m *kernel.Machine) kernel.Status {
	t.i = 0
	if len(t.progs[t.seq[t.r]]) == 0 {
		t.phase = 3
		return m.Now()
	}
	t.phase = 2
	return t.exec(m)
}

func (t *trojan) Step(m *kernel.Machine) kernel.Status {
	switch t.phase {
	case 0: // read the starting epoch
		t.phase = 1
		return m.Epoch()
	case 1:
		t.epoch = m.Value()
		return t.begin(m)
	case 2: // one op returned; advance the program
		t.i++
		if t.i < len(t.progs[t.seq[t.r]]) {
			return t.exec(m)
		}
		t.phase = 3
		return m.Now() // commit timestamp
	case 3:
		t.syms.Commit(m.Time(), t.seq[t.r])
		t.phase = 4
		return t.spin.start(t.epoch, m)
	default: // 4: spinning to the next slice
		e, done, st := t.spin.step(m)
		if !done {
			return st
		}
		t.epoch = e
		t.r++
		if t.r == t.p.Rounds+4 {
			return kernel.Done
		}
		return t.begin(m)
	}
}

// probe is the spy's L1 probe sweep: every prime way of every set group
// in shuffled order, accumulating latency per group and in total; the
// slowest group is the decoded symbol.
type probe struct {
	p        Params
	setOrder []int

	g, pg, si    int
	lat, bestLat uint64
	total        uint64
	best         int
}

func (pr *probe) start(m *kernel.Machine) kernel.Status {
	pr.g, pr.pg, pr.si = 0, 0, 0
	pr.lat, pr.bestLat, pr.total, pr.best = 0, 0, 0, 0
	return pr.read(m)
}

func (pr *probe) read(m *kernel.Machine) kernel.Status {
	set := pr.g*pr.p.SetsPerGroup + pr.setOrder[pr.si]
	return m.ReadHeap(uint64(pr.pg)*hw.PageSize + uint64(set)*hw.LineSize)
}

func (pr *probe) step(m *kernel.Machine) (dec int, total uint64, done bool, st kernel.Status) {
	l := m.Latency()
	pr.lat += l
	pr.total += l
	pr.si++
	if pr.si == len(pr.setOrder) {
		pr.si = 0
		pr.pg++
		if pr.pg == pr.p.PrimeWays {
			pr.pg = 0
			if pr.lat > pr.bestLat {
				pr.bestLat, pr.best = pr.lat, pr.g
			}
			pr.lat = 0
			pr.g++
			if pr.g == pr.p.Groups {
				return pr.best, pr.total, true, 0
			}
		}
	}
	return 0, 0, false, pr.read(m)
}

// spy probes (and re-primes) at the top of each of its slices, then
// gap-samples its own execution until the slice ends, recording all
// four observation streams at the slice-start timestamp — which falls
// strictly between the round's commit and the next, so labelling
// attributes every stream to the right symbol.
type spy struct {
	p                    Params
	dec, lat, start, gap *attacks.ObsLog
	prb                  probe
	spin                 spin

	phase             int
	r                 int
	epoch             uint64
	sliceT, prevSlice uint64
	prev, t           uint64
	maxGap            float64
}

func (s *spy) Step(m *kernel.Machine) kernel.Status {
	switch s.phase {
	case 0: // initial prime, latencies discarded
		s.phase = 1
		return s.prb.start(m)
	case 1:
		if _, _, done, st := s.prb.step(m); !done {
			return st
		}
		s.phase = 2
		return m.Epoch()
	case 2:
		s.epoch = m.Value()
		s.phase = 3
		return s.spin.start(s.epoch, m)
	case 3: // aligning spin to a fresh slice
		e, done, st := s.spin.step(m)
		if !done {
			return st
		}
		s.epoch = e
		s.phase = 4
		return m.Now()
	case 4: // slice start: timestamp, arrival delta, then probe
		s.sliceT = m.Time()
		if s.prevSlice != 0 {
			s.start.Record(s.sliceT, float64(s.sliceT-s.prevSlice))
		}
		s.prevSlice = s.sliceT
		s.phase = 5
		return s.prb.start(m)
	case 5: // per-round probe
		dec, total, done, st := s.prb.step(m)
		if !done {
			return st
		}
		s.dec.Record(s.sliceT, float64(dec))
		s.lat.Record(s.sliceT, float64(total))
		s.maxGap = 0
		s.phase = 6
		return m.Now()
	case 6: // anchor the gap sampler
		s.prev = m.Time()
		s.phase = 7
		return m.Now()
	case 7: // a sample's timestamp arrived; check the slice
		s.t = m.Time()
		s.phase = 8
		return m.Epoch()
	case 8:
		if e := m.Value(); e != s.epoch {
			s.gap.Record(s.sliceT, s.maxGap)
			s.epoch = e
			s.r++
			if s.r == s.p.Rounds+4 {
				return kernel.Done
			}
			s.phase = 4
			return m.Now()
		}
		if g := float64(s.t - s.prev); g > gapLo && g < gapHi && g > s.maxGap {
			s.maxGap = g
		}
		s.prev = s.t
		s.phase = 9
		return m.Compute(gapBurn)
	default: // 9: the burn finished; next sample
		s.phase = 7
		return m.Now()
	}
}

// NamedEstimate is one spy observation stream's capacity estimate.
type NamedEstimate struct {
	// Name identifies the stream: "probe-dec", "probe-lat",
	// "slice-start" or "irq-gap".
	Name string
	// Est is the stream's capacity estimate.
	Est channel.Estimate
}

// leakCertain is the conformance leak predicate: capacity above floor
// by the standard margin AND the entire bootstrap confidence interval
// above the floor — a leak the estimator is confident in, so a
// soundness violation is never declared on sampling noise alone.
func leakCertain(e channel.Estimate) bool {
	return e.Leaks(attacks.LeakMargin) && e.CILow > e.FloorBits
}

// LeakCertain exposes the conformance leak predicate to the discovery
// fuzzer, whose fitness function must be the same CI-backed floor test
// so a "discovery" means exactly what a conformance leak means.
func LeakCertain(e channel.Estimate) bool { return leakCertain(e) }

// ConcreteResult is the simulator side of one conformance cell.
type ConcreteResult struct {
	// Channels are the per-stream capacity estimates, in fixed order.
	Channels []NamedEstimate
	// Best indexes the stream with the highest capacity.
	Best int
	// Leak is true when any stream leaks with CI-backed certainty —
	// the simulator distinguishes the pair's two programs.
	Leak bool
	// SimOps is the number of simulated thread operations executed.
	SimOps uint64
}

// BuildOpts selects the execution path and tracing of a concrete
// conformance run; the zero value is the production setting. The
// equivalence tests flip Legacy to drive the identical programs through
// the goroutine adapter and Trace to compare event logs bit for bit.
// Pool and Cov are the discovery fuzzer's hooks: a machine pool for
// construction reuse and a coverage map attached to the cores for the
// duration of the run — both invisible to every measured cycle.
type BuildOpts struct {
	Legacy bool
	Trace  bool
	Pool   *platform.Pool
	Cov    *cover.Map
}

func (o BuildOpts) spawn(sys *kernel.System, domain int, name string, cpu int, p kernel.Program) {
	var err error
	if o.Legacy {
		_, err = sys.Spawn(domain, name, cpu, kernel.ReplayProgram(p))
	} else {
		_, err = sys.SpawnProgram(domain, name, cpu, p)
	}
	if err != nil {
		panic(err)
	}
}

// BuildConcrete constructs the concrete transmission run of a pair
// under a protection configuration; finish turns the harness logs into
// the measured result once the system has run.
func BuildConcrete(prot core.Config, pair Pair, p Params, seed uint64, o BuildOpts) (*kernel.System, func(kernel.Report) ConcreteResult) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1

	// The two-domain layout is frozen (conform/1 cells key on it). A
	// pair with a Noise program gets a third domain scheduled between
	// Hi and Lo, with the colour space re-split three ways.
	domains := []core.DomainSpec{
		{Name: "Hi", SliceCycles: p.HiSlice, PadCycles: p.Pad, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 16},
		{Name: "Lo", SliceCycles: p.LoSlice, PadCycles: p.Pad, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
	}
	schedule := [][]int{{0, 1}}
	perRound := p.HiSlice + p.LoSlice + 2*p.Pad + 60_000
	if len(pair.Noise) > 0 {
		domains[0].Colors = mem.ColorRange(1, 22)
		domains[1].Colors = mem.ColorRange(22, 43)
		domains = append(domains, core.DomainSpec{
			Name: "Noise", SliceCycles: p.LoSlice, PadCycles: p.Pad,
			Colors: mem.ColorRange(43, 64), IRQLines: []int{2}, CodePages: 4, HeapPages: 16,
		})
		schedule = [][]int{{0, 2, 1}}
		perRound += p.LoSlice + p.Pad
	}

	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:    pcfg,
		Protection:  prot,
		Domains:     domains,
		Schedule:    schedule,
		EnableTrace: o.Trace,
		MaxCycles:   uint64(p.Rounds+16) * perRound * 2,
		Pool:        o.Pool,
	})
	if err != nil {
		panic(fmt.Sprintf("conform: %v", err))
	}
	if o.Cov != nil {
		sys.Machine().SetCoverage(o.Cov)
	}

	seq := attacks.SymbolSeq(p.Rounds+8, 2, seed)
	syms := &attacks.SymLog{}
	decL, latL, startL, gapL := &attacks.ObsLog{}, &attacks.ObsLog{}, &attacks.ObsLog{}, &attacks.ObsLog{}
	setOrder := shuffledSets(p.SetsPerGroup, seed^0xA0)

	o.spawn(sys, 0, "trojan", 0, &trojan{
		p: p, seq: seq,
		progs: [2][]cop{compile(p, pair.HiA, setOrder), compile(p, pair.HiB, setOrder)},
		syms:  syms,
		spin:  spin{burn: spinBurn},
	})
	o.spawn(sys, 1, "spy", 0, &spy{
		p: p, dec: decL, lat: latL, start: startL, gap: gapL,
		prb:  probe{p: p, setOrder: setOrder},
		spin: spin{burn: spinBurn},
	})
	if len(pair.Noise) > 0 {
		// The noise domain is a trojan with the SAME compiled program
		// for both symbols (so it cannot carry the secret) and a
		// throwaway symbol log the estimators never see.
		nprog := compile(p, pair.Noise, setOrder)
		o.spawn(sys, 2, "noise", 0, &trojan{
			p: p, seq: make([]int, p.Rounds+8),
			progs:  [2][]cop{nprog, nprog},
			syms:   &attacks.SymLog{},
			ioLine: 2,
			spin:   spin{burn: spinBurn},
		})
	}

	return sys, func(rep kernel.Report) ConcreteResult {
		res := ConcreteResult{SimOps: rep.Ops}
		streams := []struct {
			name string
			log  *attacks.ObsLog
		}{
			{"probe-dec", decL},
			{"probe-lat", latL},
			{"slice-start", startL},
			{"irq-gap", gapL},
		}
		for i, st := range streams {
			labels, vals := attacks.Label(syms, st.log, p.Warmup)
			est, err := attacks.EstimateLabelled(labels, vals, p.Bins, seed^0x51^uint64(i)<<8)
			if err != nil {
				panic(fmt.Sprintf("conform: stream %s: %v", st.name, err))
			}
			res.Channels = append(res.Channels, NamedEstimate{Name: st.name, Est: est})
			if est.CapacityBits > res.Channels[res.Best].Est.CapacityBits {
				res.Best = i
			}
			if leakCertain(est) {
				res.Leak = true
			}
		}
		return res
	}
}

// shuffledSets returns a deterministic shuffled order of the per-group
// set indices, defeating the stride prefetcher like the attack probes.
func shuffledSets(n int, seed uint64) []int {
	return rng.New(seed).Perm(n)
}

// MeasureConcrete runs the concrete side of one conformance cell.
func MeasureConcrete(prot core.Config, pair Pair, p Params, seed uint64) ConcreteResult {
	return MeasureConcreteIn(nil, prot, pair, p, seed, nil)
}

// MeasureConcreteIn is MeasureConcrete on a per-worker arena: machine
// construction comes from the context's pool and, when cov is non-nil,
// the run's microarchitectural transitions are recorded into it. Both
// are invisible to the measurement — the result is bit-identical to
// MeasureConcrete for the same inputs (nil context and nil cov degrade
// to exactly that path).
func MeasureConcreteIn(cc *attacks.CellContext, prot core.Config, pair Pair, p Params, seed uint64, cov *cover.Map) ConcreteResult {
	cc.BeginRun()
	defer cc.EndRun()
	sys, finish := BuildConcrete(prot, pair, p, seed, BuildOpts{Pool: cc.Pool(), Cov: cov})
	rep, err := sys.Run()
	if err != nil {
		panic(fmt.Sprintf("conform: %v", err))
	}
	if len(rep.Errors) > 0 {
		panic(fmt.Sprintf("conform: thread errors: %v", rep.Errors))
	}
	return finish(rep)
}
