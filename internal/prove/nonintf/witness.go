package nonintf

import (
	"fmt"
	"strings"

	"timeprot/internal/prove/absmodel"
)

// Witness is a MINIMAL counterexample to bounded noninterference: a
// locally minimal pair of Hi programs whose Lo observation traces
// diverge, together with the traces themselves — the evidence a refuted
// proof row carries. Minimality is the shrink fixpoint of Minimize: the
// pair still diverges, and applying any single further shrink step
// (dropping a trailing action, or making one more position agree) yields
// identical Lo traces. Every action kept is therefore load-bearing.
type Witness struct {
	// FamilySeed identifies the sampled time-function family the
	// divergence occurs under.
	FamilySeed uint64
	// HiA and HiB are the minimal divergent Hi program pair.
	HiA, HiB []absmodel.Action
	// Index is the first diverging position of the Lo traces.
	Index int
	// ObsA and ObsB are Lo's observation traces under HiA and HiB,
	// truncated just past the divergence (Index+1 entries): the
	// serialised evidence of interference.
	ObsA, ObsB []Observation
	// ShrinkRuns counts the machine executions the minimisation spent;
	// it is diagnostic only and never part of a verdict.
	ShrinkRuns int
}

// String renders the witness on one line.
func (w *Witness) String() string {
	return fmt.Sprintf("family %d: minimal Hi %v vs %v -> Lo obs[%d] %+v vs %+v",
		w.FamilySeed, w.HiA, w.HiB, w.Index, w.ObsA[w.Index], w.ObsB[w.Index])
}

// Counterexample converts the witness back into the Counterexample
// shape, so one evidence value serves both reporting paths.
func (w *Witness) Counterexample() *Counterexample {
	return &Counterexample{
		FamilySeed: w.FamilySeed,
		HiA:        w.HiA,
		HiB:        w.HiB,
		Index:      w.Index,
		A:          w.ObsA[w.Index],
		B:          w.ObsB[w.Index],
	}
}

// FormatActions renders an action list compactly: user inputs as their
// alphabet value, syscalls as "sys", device programming as "io".
func FormatActions(prog []absmodel.Action) string {
	parts := make([]string, len(prog))
	for i, a := range prog {
		switch a {
		case absmodel.ActSyscall:
			parts[i] = "sys"
		case absmodel.ActStartIO:
			parts[i] = "io"
		default:
			parts[i] = fmt.Sprint(int(a))
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// shrinkPair is one candidate shrink of a program pair.
type shrinkPair struct {
	a, b []absmodel.Action
}

// shrinkCandidates enumerates every single shrink step of the pair, in
// fixed order: drop the trailing action of both programs, of one
// program, then unify each differing position (either direction). Each
// candidate is strictly smaller under the lexicographic measure
// (total length, differing positions), so greedy shrinking terminates.
func shrinkCandidates(a, b []absmodel.Action) []shrinkPair {
	clone := func(p []absmodel.Action) []absmodel.Action {
		return append([]absmodel.Action(nil), p...)
	}
	var out []shrinkPair
	if len(a) > 1 && len(b) > 1 {
		out = append(out, shrinkPair{a: clone(a[:len(a)-1]), b: clone(b[:len(b)-1])})
	}
	if len(a) > 1 {
		out = append(out, shrinkPair{a: clone(a[:len(a)-1]), b: clone(b)})
	}
	if len(b) > 1 {
		out = append(out, shrinkPair{a: clone(a), b: clone(b[:len(b)-1])})
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		ca := clone(a)
		ca[i] = b[i]
		out = append(out, shrinkPair{a: ca, b: clone(b)})
		cb := clone(b)
		cb[i] = a[i]
		out = append(out, shrinkPair{a: clone(a), b: cb})
	}
	return out
}

// MinimizeWith greedily shrinks a program pair to a local minimum of an
// arbitrary divergence predicate: apply the first shrink step that
// preserves the predicate until none does. The result pair still
// satisfies the predicate (assuming the input did), and no single
// further shrink step does — every remaining action is load-bearing.
// The fixed candidate order makes minimisation deterministic whenever
// the predicate is. It returns the minimal pair and the number of
// predicate evaluations spent. The conformance harness minimises
// against a concrete-simulator leak predicate through this entry point;
// Minimize is the abstract-trace instantiation.
func MinimizeWith(hiA, hiB []absmodel.Action, diverges func(a, b []absmodel.Action) bool) ([]absmodel.Action, []absmodel.Action, int) {
	a := append([]absmodel.Action(nil), hiA...)
	b := append([]absmodel.Action(nil), hiB...)
	evals := 0
	for changed := true; changed; {
		changed = false
		for _, cand := range shrinkCandidates(a, b) {
			evals++
			if diverges(cand.a, cand.b) {
				a, b = cand.a, cand.b
				changed = true
				break
			}
		}
	}
	return a, b, evals
}

// Minimize shrinks a bounded-NI counterexample to a locally minimal
// witness: greedily apply the first shrink step that preserves
// divergence until none does, then record the divergent Lo traces. The
// result is deterministic — candidate order is fixed and the machine is
// deterministic — so minimisation is safe inside store-cached proof
// cells. Minimisation re-executes the machine but never touches the
// originating Verdict's counts.
func Minimize(cfg absmodel.Config, c *Counterexample) *Witness {
	m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(c.FamilySeed, cfg.DigestMod))
	runs := 0
	diverges := func(a, b []absmodel.Action) bool {
		runs += 2
		oa, _ := RunTrace(m, a)
		ob, _ := RunTrace(m, b)
		_, _, _, d := firstDivergence(oa, ob)
		return d
	}
	a, b, _ := MinimizeWith(c.HiA, c.HiB, diverges)
	oa, _ := RunTrace(m, a)
	ob, _ := RunTrace(m, b)
	idx, _, _, _ := firstDivergence(oa, ob)
	cut := func(obs []Observation) []Observation {
		if idx+1 < len(obs) {
			return obs[:idx+1]
		}
		return obs
	}
	return &Witness{
		FamilySeed: c.FamilySeed,
		HiA:        a,
		HiB:        b,
		Index:      idx,
		ObsA:       cut(oa),
		ObsB:       cut(ob),
		ShrinkRuns: runs,
	}
}
