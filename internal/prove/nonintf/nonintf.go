// Package nonintf machine-checks time protection over the abstract model
// of internal/prove/absmodel, in two complementary ways that mirror §5.2
// of the paper:
//
//  1. BOUNDED NONINTERFERENCE (CheckBounded): exhaustively enumerate the
//     Hi domain's programs over a finite action alphabet and bounded
//     length, run the machine, and compare everything Lo observes — its
//     per-step clock readings and interrupt events. For the instantiated
//     bound this is a complete check: either every Hi program yields the
//     identical Lo observation trace (a proof for the bound), or a
//     concrete counterexample pair is returned.
//
//  2. UNWINDING LEMMAS (CheckLemmas): the step-local conditions whose
//     induction gives noninterference, following the paper's case
//     analysis: Hi's actions never disturb the persistent Lo-visible
//     state (Cases 1 and 2a — user steps and syscalls read only
//     partitioned or freshly-flushed state); and the domain switch erases
//     all transient divergence — flushables reset, dispatch time padded
//     to a constant (Case 2b). Each lemma is checked by exhaustive
//     enumeration of digest assignments over the model's small domain.
//
// Both checks quantify over SAMPLED FAMILIES of the unspecified
// deterministic time/update functions (§5.1): a verdict holds only if it
// holds for every sampled family, so no conclusion depends on what the
// concrete functions compute.
package nonintf

import (
	"fmt"

	"timeprot/internal/prove/absmodel"
)

// ModelVersion is the noninterference checker's registered model-version
// string, part of the prover fingerprint under which the experiment
// engine keys proof cells. Bump it whenever a verdict could change for
// the same absmodel instance — the Lo/bystander reference programs, the
// program enumeration, the lemma case analysis, or the witness
// extraction; cached proof cells then become structural misses. Pure
// refactors do not bump it.
const ModelVersion = "prove/nonintf/1"

// Observation is Lo's complete view of one of its steps.
type Observation struct {
	// Clock is the hardware clock after the step.
	Clock uint64
	// IRQ marks an interrupt delivery during the step.
	IRQ bool
}

// Counterexample is a concrete witness of interference.
type Counterexample struct {
	// FamilySeed identifies the sampled function family.
	FamilySeed uint64
	// HiA and HiB are the two Hi programs.
	HiA, HiB []absmodel.Action
	// Index is the first diverging Lo observation.
	Index int
	// A and B are the diverging observations.
	A, B Observation
}

// String renders the counterexample.
func (c *Counterexample) String() string {
	return fmt.Sprintf("family %d: Hi %v vs %v -> Lo obs[%d] %+v vs %+v",
		c.FamilySeed, c.HiA, c.HiB, c.Index, c.A, c.B)
}

// Verdict is the outcome of the bounded noninterference check.
type Verdict struct {
	// Proved is true when all runs agreed for all families.
	Proved bool
	// Runs is the number of complete machine executions compared.
	Runs int
	// Families is the number of sampled function families.
	Families int
	// PadOverruns counts runs in which the switch work exceeded the
	// pad budget; a nonzero count invalidates the padding assumption
	// and is reported even when observations agree.
	PadOverruns int
	// Counterexample is non-nil when Proved is false.
	Counterexample *Counterexample
}

// String renders the verdict.
func (v Verdict) String() string {
	if v.Proved {
		return fmt.Sprintf("PROVED (%d runs, %d families, %d overruns)", v.Runs, v.Families, v.PadOverruns)
	}
	return fmt.Sprintf("REFUTED after %d runs: %s", v.Runs, v.Counterexample)
}

// hiActions returns the Hi action space: every user input, a syscall,
// and a device-interrupt programming action.
func hiActions(cfg absmodel.Config) []absmodel.Action {
	var acts []absmodel.Action
	for a := 0; a < cfg.Alphabet; a++ {
		acts = append(acts, absmodel.Action(a))
	}
	acts = append(acts, absmodel.ActSyscall, absmodel.ActStartIO)
	return acts
}

// loProgram is Lo's fixed behaviour: a deterministic cycle of user
// accesses and a syscall, exercising both Case 1 and Case 2a every slice.
func loProgram(cfg absmodel.Config, step int) absmodel.Action {
	switch step % 3 {
	case 0:
		return absmodel.Action(0)
	case 1:
		return absmodel.ActSyscall
	default:
		return absmodel.Action(1 % cfg.Alphabet)
	}
}

// RunTrace executes the bounded schedule with the given Hi program
// (indexed per Hi step, wrapping) and returns Lo's observation trace.
func RunTrace(m *absmodel.Machine, hi []absmodel.Action) (obs []Observation, overruns int) {
	cfg := m.Cfg
	s := m.Reset()
	hiIdx, loIdx := 0, 0
	if cfg.SMT {
		// Concurrent hardware threads: interleave one Hi and one Lo
		// step per round over the same live state; no switches, no
		// flushes — structurally, there is nothing the OS can do.
		rounds := cfg.StepsPerSlice * cfg.Slices
		for i := 0; i < rounds; i++ {
			s.Cur = 0
			m.Step(s, hi[hiIdx%len(hi)])
			hiIdx++
			s.Cur = 1
			ev := m.Step(s, loProgram(cfg, loIdx))
			loIdx++
			obs = append(obs, Observation{Clock: ev.Clock, IRQ: ev.IRQDelivered})
		}
		return obs, 0
	}
	byIdx := 0
	for slice := 0; slice < cfg.Slices; slice++ {
		for step := 0; step < cfg.StepsPerSlice; step++ {
			switch s.Cur {
			case 0:
				m.Step(s, hi[hiIdx%len(hi)])
				hiIdx++
			case 1:
				ev := m.Step(s, loProgram(cfg, loIdx))
				loIdx++
				obs = append(obs, Observation{Clock: ev.Clock, IRQ: ev.IRQDelivered})
			default:
				// Bystander domains (non-hierarchical policies, §2:
				// "there may be other secrets for which the roles of
				// the domains are reversed"): fixed, non-observed
				// behaviour mixing user steps and syscalls.
				m.Step(s, bystanderProgram(cfg, byIdx))
				byIdx++
			}
		}
		rep := m.EndSlice(s)
		if rep.Overran {
			overruns++
		}
	}
	return obs, overruns
}

// bystanderProgram is the fixed behaviour of domains other than Hi and
// Lo in multi-domain schedules.
func bystanderProgram(cfg absmodel.Config, step int) absmodel.Action {
	if step%2 == 0 {
		return absmodel.Action(step % cfg.Alphabet)
	}
	return absmodel.ActSyscall
}

// slicePrograms enumerates every Hi program of one slice (StepsPerSlice
// actions over the full action space); a full-run Hi program repeats its
// slice program.
func slicePrograms(cfg absmodel.Config) [][]absmodel.Action {
	acts := hiActions(cfg)
	var out [][]absmodel.Action
	n := cfg.StepsPerSlice
	idx := make([]int, n)
	for {
		prog := make([]absmodel.Action, n)
		for i, j := range idx {
			prog[i] = acts[j]
		}
		out = append(out, prog)
		// Odometer increment.
		i := 0
		for ; i < n; i++ {
			idx[i]++
			if idx[i] < len(acts) {
				break
			}
			idx[i] = 0
		}
		if i == n {
			return out
		}
	}
}

// CheckBounded performs the exhaustive bounded noninterference check:
// for `families` sampled function families, every enumerable Hi slice
// program (plus `extraRandom` full-length random programs) must yield the
// identical Lo observation trace.
func CheckBounded(cfg absmodel.Config, families int, extraRandom int, baseSeed uint64) Verdict {
	v := Verdict{Proved: true, Families: families}
	for fam := 0; fam < families; fam++ {
		seed := baseSeed + uint64(fam)*0x9E37
		m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(seed, cfg.DigestMod))

		progs := slicePrograms(cfg)
		progs = append(progs, randomPrograms(cfg, extraRandom, seed^0xBEEF)...)

		var ref []Observation
		var refProg []absmodel.Action
		for i, hi := range progs {
			obs, ov := RunTrace(m, hi)
			v.Runs++
			v.PadOverruns += ov
			if i == 0 {
				ref, refProg = obs, hi
				continue
			}
			if idx, a, b, diff := firstDivergence(ref, obs); diff {
				v.Proved = false
				v.Counterexample = &Counterexample{
					FamilySeed: seed,
					HiA:        refProg,
					HiB:        hi,
					Index:      idx,
					A:          a,
					B:          b,
				}
				return v
			}
		}
	}
	return v
}

// randomPrograms samples full-length non-repeating Hi programs for extra
// coverage beyond the per-slice exhaustive set.
func randomPrograms(cfg absmodel.Config, n int, seed uint64) [][]absmodel.Action {
	if n <= 0 {
		return nil
	}
	acts := hiActions(cfg)
	hiSlices := (cfg.Slices + 1) / 2
	length := cfg.StepsPerSlice * hiSlices
	r := newSplit(seed)
	out := make([][]absmodel.Action, 0, n)
	for i := 0; i < n; i++ {
		prog := make([]absmodel.Action, length)
		for j := range prog {
			prog[j] = acts[int(r.next()%uint64(len(acts)))]
		}
		out = append(out, prog)
	}
	return out
}

// splitmix for local sampling without importing math/rand.
type split struct{ s uint64 }

func newSplit(seed uint64) *split { return &split{s: seed} }
func (r *split) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func firstDivergence(a, b []Observation) (int, Observation, Observation, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, a[i], b[i], true
		}
	}
	if len(a) != len(b) {
		var oa, ob Observation
		if len(a) > n {
			oa = a[n]
		}
		if len(b) > n {
			ob = b[n]
		}
		return n, oa, ob, true
	}
	return 0, Observation{}, Observation{}, false
}
