package nonintf

import (
	"strings"
	"testing"

	"timeprot/internal/prove/absmodel"
)

const (
	testFamilies = 4
	testRandom   = 80
	testSeed     = 20_26
)

// findCase extracts a named lemma report.
func findCase(t *testing.T, rep ProofReport, name string) CaseReport {
	t.Helper()
	for _, c := range rep.Cases {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no case %q in %v", name, rep.Cases)
	return CaseReport{}
}

// TestFullProtectionProves is the paper's thesis, machine-checked: with
// every mechanism armed, all unwinding lemmas hold and the exhaustive
// bounded noninterference check passes for every sampled time-function
// family.
func TestFullProtectionProves(t *testing.T) {
	rep := Prove(absmodel.DefaultConfig(), testFamilies, testRandom, testSeed)
	if !rep.Proved() {
		t.Fatalf("full protection must prove:\n%s", rep)
	}
	if rep.Bounded.PadOverruns != 0 {
		t.Fatalf("padding assumption violated: %+v", rep.Bounded)
	}
	if rep.Bounded.Runs < 100 {
		t.Fatalf("bounded check ran too few programs: %d", rep.Bounded.Runs)
	}
}

// TestAblationMatrix is experiment T1's core: removing any single
// mechanism must break exactly the corresponding proof case AND yield a
// concrete bounded counterexample.
func TestAblationMatrix(t *testing.T) {
	cases := []struct {
		name       string
		mutate     func(*absmodel.Config)
		breaksCase string
	}{
		{"no-flush", func(c *absmodel.Config) { c.Flush = false }, "Case2b-switch"},
		{"no-pad", func(c *absmodel.Config) { c.Pad = false }, "Case2b-switch"},
		{"no-color", func(c *absmodel.Config) { c.Color = false }, "Case1-user"},
		{"no-clone", func(c *absmodel.Config) { c.Clone = false }, "Case2a-kernel"},
		{"no-irq-partition", func(c *absmodel.Config) { c.PartitionIRQ = false }, "irq-partition"},
		{"smt", func(c *absmodel.Config) { c.SMT = true }, "smt-live-sharing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := absmodel.DefaultConfig()
			tc.mutate(&cfg)
			rep := Prove(cfg, testFamilies, testRandom, testSeed)
			if rep.Proved() {
				t.Fatalf("ablation %s must not prove:\n%s", tc.name, rep)
			}
			c := findCase(t, rep, tc.breaksCase)
			if c.Holds {
				t.Errorf("expected %s to fail:\n%s", tc.breaksCase, rep)
			}
			if c.Witness == "" {
				t.Errorf("failed case must carry a witness")
			}
			if rep.Bounded.Proved {
				t.Errorf("bounded check must find a counterexample:\n%s", rep)
			}
			if rep.Bounded.Counterexample == nil {
				t.Errorf("missing counterexample")
			}
		})
	}
}

// TestOnlyTheNamedCaseBreaks pins the precision of the case analysis:
// each single ablation leaves the OTHER cases intact.
func TestOnlyTheNamedCaseBreaks(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*absmodel.Config)
		broken map[string]bool
	}{
		{"no-color", func(c *absmodel.Config) { c.Color = false }, map[string]bool{"Case1-user": true}},
		{"no-clone", func(c *absmodel.Config) { c.Clone = false }, map[string]bool{"Case2a-kernel": true}},
		{"no-flush", func(c *absmodel.Config) { c.Flush = false }, map[string]bool{"Case2b-switch": true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := absmodel.DefaultConfig()
			tc.mutate(&cfg)
			rep := Prove(cfg, 2, 20, testSeed)
			for _, c := range rep.Cases {
				if want := tc.broken[c.Name]; want == c.Holds {
					t.Errorf("case %s: holds=%v, want broken=%v", c.Name, c.Holds, want)
				}
			}
		})
	}
}

// TestProofIndependentOfFunctionFamily verifies the §5.1 claim that the
// proof needs no knowledge of the concrete time function: the verdict is
// the same across many independently sampled families.
func TestProofIndependentOfFunctionFamily(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		cfg := absmodel.DefaultConfig()
		m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(seed*77+1, cfg.DigestMod))
		for _, c := range CheckHiStepLemma(m) {
			if !c.Holds {
				t.Fatalf("seed %d: %s failed under full protection: %s", seed, c.Name, c.Witness)
			}
		}
		if c := CheckSwitchLemma(m); !c.Holds {
			t.Fatalf("seed %d: switch lemma failed: %s", seed, c.Witness)
		}
	}
}

// TestInsufficientPadBudgetDetected: the padding value is an assumption,
// not a theorem (§5.2); the checker must flag a budget below the
// worst-case switch work rather than prove over it.
func TestInsufficientPadBudgetDetected(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.PadBudget = 4 // far below worst-case entry+flush+exit
	rep := Prove(cfg, 2, 20, testSeed)
	if rep.Proved() {
		t.Fatalf("insufficient pad budget must not prove:\n%s", rep)
	}
	sw := findCase(t, rep, "Case2b-switch")
	if sw.Holds && rep.Bounded.PadOverruns == 0 {
		t.Fatalf("overrun not detected anywhere:\n%s", rep)
	}
}

func TestRunTraceDeterminism(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(5, cfg.DigestMod))
	hi := []absmodel.Action{1, absmodel.ActSyscall, 0}
	a, _ := RunTrace(m, hi)
	b, _ := RunTrace(m, hi)
	if len(a) == 0 {
		t.Fatal("no observations")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic trace at %d", i)
		}
	}
}

func TestSliceProgramEnumerationComplete(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	progs := slicePrograms(cfg)
	// (alphabet + syscall + startIO)^stepsPerSlice
	want := 1
	for i := 0; i < cfg.StepsPerSlice; i++ {
		want *= cfg.Alphabet + 2
	}
	if len(progs) != want {
		t.Fatalf("enumerated %d programs, want %d", len(progs), want)
	}
	seen := make(map[string]bool)
	for _, p := range progs {
		key := ""
		for _, a := range p {
			key += string(rune(int(a) + 10))
		}
		if seen[key] {
			t.Fatal("duplicate program enumerated")
		}
		seen[key] = true
	}
}

func TestVerdictAndCounterexampleStrings(t *testing.T) {
	v := Verdict{Proved: true, Runs: 10, Families: 2}
	if !strings.Contains(v.String(), "PROVED") {
		t.Errorf("verdict string: %s", v)
	}
	v = Verdict{Counterexample: &Counterexample{HiA: []absmodel.Action{1}, HiB: []absmodel.Action{2}}}
	if !strings.Contains(v.String(), "REFUTED") {
		t.Errorf("verdict string: %s", v)
	}
	rep := Prove(absmodel.DefaultConfig(), 1, 5, testSeed)
	if !strings.Contains(rep.String(), "Case2b-switch") {
		t.Errorf("report string missing cases:\n%s", rep)
	}
}

func TestFirstDivergence(t *testing.T) {
	a := []Observation{{Clock: 1}, {Clock: 2}}
	b := []Observation{{Clock: 1}, {Clock: 3}}
	idx, oa, ob, diff := firstDivergence(a, b)
	if !diff || idx != 1 || oa.Clock != 2 || ob.Clock != 3 {
		t.Fatalf("divergence = %d %v %v %v", idx, oa, ob, diff)
	}
	if _, _, _, diff := firstDivergence(a, a); diff {
		t.Fatal("identical traces must not diverge")
	}
	if idx, _, _, diff := firstDivergence(a, a[:1]); !diff || idx != 1 {
		t.Fatal("length mismatch must diverge at the shorter length")
	}
}

// TestThreeDomainNI: noninterference also holds (and ablations also
// fail) with a third, bystander domain in the rotation — the paper's
// policies are not hierarchical, and protection is pairwise.
func TestThreeDomainNI(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.Domains = 3
	cfg.Slices = 9 // three full rotations
	v := CheckBounded(cfg, 2, 40, testSeed)
	if !v.Proved {
		t.Fatalf("3-domain full protection must prove: %s", v)
	}
	broken := cfg
	broken.Color = false
	v = CheckBounded(broken, 2, 40, testSeed)
	if v.Proved {
		t.Fatal("3-domain no-colour must refute")
	}
	brokenF := cfg
	brokenF.Flush = false
	v = CheckBounded(brokenF, 2, 40, testSeed)
	if v.Proved {
		t.Fatal("3-domain no-flush must refute")
	}
}
