package nonintf

import (
	"strings"
	"testing"

	"timeprot/internal/prove/absmodel"
)

// refutedConfigs returns ablated configurations whose bounded check is
// expected to find a counterexample.
func refutedConfigs() map[string]absmodel.Config {
	out := make(map[string]absmodel.Config)
	for name, mut := range map[string]func(*absmodel.Config){
		"no-flush": func(c *absmodel.Config) { c.Flush = false },
		"no-color": func(c *absmodel.Config) { c.Color = false },
		"no-irq":   func(c *absmodel.Config) { c.PartitionIRQ = false },
		"smt":      func(c *absmodel.Config) { c.SMT = true },
	} {
		cfg := absmodel.DefaultConfig()
		mut(&cfg)
		out[name] = cfg
	}
	return out
}

// TestWitnessMinimality is the shrink contract: the minimised pair still
// diverges, and applying ANY single further shrink step yields agreeing
// Lo traces — every action kept in the witness is load-bearing.
func TestWitnessMinimality(t *testing.T) {
	for name, cfg := range refutedConfigs() {
		t.Run(name, func(t *testing.T) {
			v := CheckBounded(cfg, 2, 40, testSeed)
			if v.Proved || v.Counterexample == nil {
				t.Fatalf("expected a counterexample: %s", v)
			}
			w := Minimize(cfg, v.Counterexample)
			m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(w.FamilySeed, cfg.DigestMod))
			diverges := func(a, b []absmodel.Action) (int, bool) {
				oa, _ := RunTrace(m, a)
				ob, _ := RunTrace(m, b)
				idx, _, _, d := firstDivergence(oa, ob)
				return idx, d
			}
			idx, d := diverges(w.HiA, w.HiB)
			if !d {
				t.Fatalf("minimised pair does not diverge: %s", w)
			}
			if idx != w.Index {
				t.Fatalf("witness index %d, recomputed %d", w.Index, idx)
			}
			for i, cand := range shrinkCandidates(w.HiA, w.HiB) {
				if _, d := diverges(cand.a, cand.b); d {
					t.Errorf("shrink candidate %d (%s vs %s) still diverges — witness not minimal",
						i, FormatActions(cand.a), FormatActions(cand.b))
				}
			}
		})
	}
}

// TestWitnessEvidenceTraces: the serialised Lo traces agree before the
// divergence index and differ exactly at it.
func TestWitnessEvidenceTraces(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.Flush = false
	v := CheckBounded(cfg, 2, 40, testSeed)
	if v.Counterexample == nil {
		t.Fatal("expected a counterexample")
	}
	w := Minimize(cfg, v.Counterexample)
	if len(w.ObsA) != w.Index+1 || len(w.ObsB) != w.Index+1 {
		t.Fatalf("traces not truncated past the divergence: lenA=%d lenB=%d index=%d",
			len(w.ObsA), len(w.ObsB), w.Index)
	}
	for i := 0; i < w.Index; i++ {
		if w.ObsA[i] != w.ObsB[i] {
			t.Fatalf("traces diverge at %d before the witness index %d", i, w.Index)
		}
	}
	if w.ObsA[w.Index] == w.ObsB[w.Index] {
		t.Fatal("traces agree at the witness index")
	}
}

// TestProveAttachesMinimalWitness: a refuted Prove carries a witness
// whose pair also replaces the verdict's counterexample, so every
// rendering shows the minimal evidence.
func TestProveAttachesMinimalWitness(t *testing.T) {
	cfg := absmodel.DefaultConfig()
	cfg.Clone = false
	rep := Prove(cfg, 2, 40, testSeed)
	if rep.Proved() {
		t.Fatal("shared kernel must refute")
	}
	if rep.Witness == nil {
		t.Fatal("refuted report carries no witness")
	}
	ce := rep.Bounded.Counterexample
	if ce == nil || ce.Index != rep.Witness.Index ||
		len(ce.HiA) != len(rep.Witness.HiA) || len(ce.HiB) != len(rep.Witness.HiB) {
		t.Fatalf("verdict counterexample not the minimal pair: %+v vs %+v", ce, rep.Witness)
	}

	full := Prove(absmodel.DefaultConfig(), 1, 10, testSeed)
	if !full.Proved() || full.Witness != nil {
		t.Fatalf("proved report must carry no witness: %+v", full.Witness)
	}
}

func TestFormatActions(t *testing.T) {
	got := FormatActions([]absmodel.Action{1, absmodel.ActSyscall, 0, absmodel.ActStartIO})
	if got != "[1 sys 0 io]" {
		t.Fatalf("FormatActions = %q", got)
	}
	w := &Witness{
		HiA:  []absmodel.Action{1},
		HiB:  []absmodel.Action{0},
		ObsA: []Observation{{Clock: 3}},
		ObsB: []Observation{{Clock: 5}},
	}
	if !strings.Contains(w.String(), "minimal") {
		t.Fatalf("witness string: %s", w)
	}
}
