package nonintf

import (
	"fmt"

	"timeprot/internal/prove/absmodel"
)

// This file checks the unwinding lemmas behind the paper's §5.2 case
// analysis by exhaustive enumeration over the abstract model's digest
// domain. The induction they support is:
//
//   - While Hi executes, none of its actions may change state that Lo
//     can later observe THROUGH ITS OWN TIMING without an intervening
//     reset: the persistent Lo-visible state (Lo's LLC partition or the
//     shared LLC, Lo's kernel image or the shared image, kernel global
//     data, and any interrupts that can fire during Lo). Violations are
//     attributed to the paper's cases: a polluted user-visible cache is
//     Case 1, polluted kernel text is Case 2a, a Hi-programmed interrupt
//     visible to Lo is the §4.2 interrupt channel, and live-shared SMT
//     state is the §4.1 hyperthreading verdict.
//   - The domain switch must erase every transient divergence Hi is
//     permitted to cause: flushables reset to the defined state and the
//     dispatch clock padded to a constant (Case 2b).
//
// Together with determinism of the machine, these step-local lemmas give
// bounded noninterference; CheckBounded validates that end-to-end.

// CaseReport is one lemma's verdict.
type CaseReport struct {
	// Name identifies the lemma ("Case1-user", "Case2a-kernel",
	// "Case2b-switch", "irq-partition", "smt").
	Name string
	// Holds is the verdict.
	Holds bool
	// Checked counts the assignments examined.
	Checked int
	// Witness describes the first violating assignment.
	Witness string
}

// enumDomain is the digest range exhaustively enumerated in lemma checks;
// it is deliberately smaller than the model's full domain to keep the
// product space tractable while remaining exhaustive over its own range.
const enumDomain = 3

// digestAssignments enumerates [0,enumDomain)^n.
func digestAssignments(n int) [][]uint64 {
	var out [][]uint64
	cur := make([]uint64, n)
	for {
		out = append(out, append([]uint64(nil), cur...))
		i := 0
		for ; i < n; i++ {
			cur[i]++
			if cur[i] < enumDomain {
				break
			}
			cur[i] = 0
		}
		if i == n {
			return out
		}
	}
}

// buildState constructs a model state from a digest assignment vector:
// [flushables(3), llcHi, llcLo, llcShared, ktHi, ktLo, ktShared, kglobal].
func buildState(m *absmodel.Machine, v []uint64) *absmodel.State {
	s := m.Reset()
	s.Flushables[absmodel.ResL1] = v[0]
	s.Flushables[absmodel.ResTLB] = v[1]
	s.Flushables[absmodel.ResBP] = v[2]
	s.LLCBanks[0], s.LLCBanks[1] = v[3], v[4]
	s.LLCShared = v[5]
	s.KTextBanks[0], s.KTextBanks[1] = v[6], v[7]
	s.KTextShared = v[8]
	s.KGlobal = v[9]
	return s
}

const stateDims = 10

// persistent extracts the Lo-visible state that SURVIVES a domain switch:
// everything except the flushables and the clock phase — unless the
// configuration is SMT, where nothing is ever flushed between Lo's steps
// and the "transient" state is persistent too.
func persistent(m *absmodel.Machine, s *absmodel.State) []uint64 {
	const lo = 1
	var vis []uint64
	if m.Cfg.Color {
		vis = append(vis, s.LLCBanks[lo])
	} else {
		vis = append(vis, s.LLCShared)
	}
	if m.Cfg.Clone {
		vis = append(vis, s.KTextBanks[lo])
	} else {
		vis = append(vis, s.KTextShared)
	}
	// Kernel global data is NOT persistent Hi-influenceable state: its
	// access pattern is fixed, so every kernel entry — including the
	// switch's own — deterministically resets its cache state (§5.2
	// Case 2a). It is therefore excluded here, like the flushables.
	if m.Cfg.SMT {
		vis = append(vis, s.Flushables[:]...)
	}
	return vis
}

// loIRQView lists the pending interrupts that can fire while Lo runs.
func loIRQView(m *absmodel.Machine, s *absmodel.State) []uint64 {
	var vis []uint64
	for _, q := range s.PendingIRQs() {
		if !m.Cfg.PartitionIRQ || q.Owner == 1 {
			vis = append(vis, q.FireAt, uint64(q.Owner))
		}
	}
	return vis
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckHiStepLemma verifies that no pair of Hi actions, from any state,
// diverges the persistent Lo-visible state or Lo's interrupt view. The
// returned reports split the verdict by the §5.2 case the violated
// component belongs to.
func CheckHiStepLemma(m *absmodel.Machine) []CaseReport {
	acts := hiActions(m.Cfg)
	user := CaseReport{Name: "Case1-user", Holds: true}
	kern := CaseReport{Name: "Case2a-kernel", Holds: true}
	irqs := CaseReport{Name: "irq-partition", Holds: true}
	smt := CaseReport{Name: "smt-live-sharing", Holds: true}

	for _, v := range digestAssignments(stateDims) {
		for i := 0; i < len(acts); i++ {
			for j := i + 1; j < len(acts); j++ {
				s1 := buildState(m, v)
				s2 := buildState(m, v)
				s1.Cur, s2.Cur = 0, 0
				m.Step(s1, acts[i])
				m.Step(s2, acts[j])
				user.Checked++
				kern.Checked++
				irqs.Checked++
				smt.Checked++

				witness := func() string {
					return fmt.Sprintf("state %v, Hi actions %v vs %v", v, acts[i], acts[j])
				}
				// Attribute divergences per component.
				if user.Holds {
					a, b := cacheView(m, s1), cacheView(m, s2)
					if !equalU64(a, b) {
						user.Holds = false
						user.Witness = witness()
					}
				}
				if kern.Holds {
					a, b := kernelView(m, s1), kernelView(m, s2)
					if !equalU64(a, b) {
						kern.Holds = false
						kern.Witness = witness()
					}
				}
				if irqs.Holds && !equalU64(loIRQView(m, s1), loIRQView(m, s2)) {
					irqs.Holds = false
					irqs.Witness = witness()
				}
				if m.Cfg.SMT && smt.Holds {
					if s1.Flushables != s2.Flushables {
						smt.Holds = false
						smt.Witness = witness()
					}
				}
			}
		}
	}
	return []CaseReport{user, kern, irqs, smt}
}

// cacheView is the user-reachable cache state Lo's Case-1 steps time
// against.
func cacheView(m *absmodel.Machine, s *absmodel.State) []uint64 {
	if m.Cfg.Color {
		return []uint64{s.LLCBanks[1]}
	}
	return []uint64{s.LLCShared}
}

// kernelView is the kernel state Lo's Case-2a syscalls time against:
// the kernel text Lo traps into. Kernel global data is excluded — its
// fixed access pattern is deterministically re-established by the switch
// path itself (see persistent).
func kernelView(m *absmodel.Machine, s *absmodel.State) []uint64 {
	if m.Cfg.Clone {
		return []uint64{s.KTextBanks[1]}
	}
	return []uint64{s.KTextShared}
}

// CheckSwitchLemma verifies Case 2b: from any two states that agree on
// the persistent Lo-visible parts but differ arbitrarily in transients
// (flushable digests and accumulated clock), the switch into Lo erases
// the difference — flushables reset and dispatch time constant.
func CheckSwitchLemma(m *absmodel.Machine) CaseReport {
	rep := CaseReport{Name: "Case2b-switch", Holds: true}
	if m.Cfg.SMT {
		// No switches exist between SMT siblings; the lemma is
		// vacuous and protection must fail in the Hi-step lemma.
		rep.Witness = "vacuous: no domain switch separates SMT siblings"
		return rep
	}
	// Transients the switch must erase: the flushable triple, the
	// kernel-global-data state (reset by the switch's own
	// deterministic kernel entry), and accumulated clock jitter.
	trans := digestAssignments(4)
	jitters := []uint64{0, 3, 9, 17}
	// A few persistent bases suffice: the lemma's quantification is
	// over transients; persistent parts ride along unchanged.
	bases := [][]uint64{
		make([]uint64, stateDims),
		{1, 2, 0, 1, 2, 1, 0, 2, 1, 2},
		{2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
	}
	for _, base := range bases {
		for ti := 0; ti < len(trans); ti++ {
			for tj := ti; tj < len(trans); tj++ {
				for _, w1 := range jitters {
					for _, w2 := range jitters {
						s1, s2 := buildState(m, base), buildState(m, base)
						copy(s1.Flushables[:], trans[ti][:3])
						copy(s2.Flushables[:], trans[tj][:3])
						s1.KGlobal, s2.KGlobal = trans[ti][3], trans[tj][3]
						s1.Cur, s2.Cur = 0, 0
						s1.Clock, s2.Clock = w1, w2
						// SliceStart stays 0: clocks model accumulated
						// slice time plus jitter.
						r1 := m.EndSlice(s1)
						r2 := m.EndSlice(s2)
						rep.Checked++
						if r1.Overran || r2.Overran {
							rep.Holds = false
							rep.Witness = fmt.Sprintf("pad overrun: transients %v/%v jitter %d/%d", trans[ti], trans[tj], w1, w2)
							return rep
						}
						if r1.Dispatch != r2.Dispatch || s1.Flushables != s2.Flushables || s1.KGlobal != s2.KGlobal {
							rep.Holds = false
							rep.Witness = fmt.Sprintf("dispatch %d vs %d, flushables %v vs %v, kglobal %d vs %d (transients %v/%v, jitter %d/%d)",
								r1.Dispatch, r2.Dispatch, s1.Flushables, s2.Flushables, s1.KGlobal, s2.KGlobal, trans[ti], trans[tj], w1, w2)
							return rep
						}
					}
				}
			}
		}
	}
	return rep
}

// ProofReport aggregates the lemma verdicts and the bounded check for
// one configuration — one row of the paper's would-be proof obligations.
type ProofReport struct {
	// Cfg is the checked configuration.
	Cfg absmodel.Config
	// Cases are the unwinding-lemma verdicts.
	Cases []CaseReport
	// Bounded is the end-to-end enumeration verdict. When it refutes,
	// its Counterexample is the MINIMAL pair (see Witness).
	Bounded Verdict
	// Witness is the minimal counterexample with its Lo observation
	// traces; nil when the bounded check proved.
	Witness *Witness
}

// Proved reports whether every lemma holds and the bounded check passed
// without padding overruns.
func (r ProofReport) Proved() bool {
	for _, c := range r.Cases {
		if !c.Holds {
			return false
		}
	}
	return r.Bounded.Proved && r.Bounded.PadOverruns == 0
}

// String renders the report.
func (r ProofReport) String() string {
	out := ""
	for _, c := range r.Cases {
		mark := "HOLDS"
		if !c.Holds {
			mark = "FAILS"
		}
		out += fmt.Sprintf("  %-18s %-6s (%d checked) %s\n", c.Name, mark, c.Checked, c.Witness)
	}
	out += fmt.Sprintf("  %-18s %s\n", "bounded-NI", r.Bounded)
	return out
}

// Prove runs the full §5.2 proof obligations for a configuration over
// `families` sampled function families (the lemmas use the first family;
// their verdicts are structural and family-independent, which the tests
// verify separately). When the bounded check refutes, the raw
// counterexample is shrunk to a minimal Witness, which also replaces
// Bounded.Counterexample — every refutation carries minimal evidence.
func Prove(cfg absmodel.Config, families, extraRandom int, seed uint64) ProofReport {
	m := absmodel.NewMachine(cfg, absmodel.SampleFuncs(seed, cfg.DigestMod))
	rep := ProofReport{Cfg: cfg}
	rep.Cases = CheckHiStepLemma(m)
	rep.Cases = append(rep.Cases, CheckSwitchLemma(m))
	rep.Bounded = CheckBounded(cfg, families, extraRandom, seed)
	if rep.Bounded.Counterexample != nil {
		rep.Witness = Minimize(cfg, rep.Bounded.Counterexample)
		rep.Bounded.Counterexample = rep.Witness.Counterexample()
	}
	return rep
}
