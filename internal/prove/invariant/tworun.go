package invariant

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// This file lifts the noninterference statement from the abstract model
// to the CONCRETE simulator: run the same Lo program twice against two
// different Hi programs on two identically-built systems, and compare
// every timing observation Lo makes — each operation's completion-time
// reading. The simulator is deterministic, so under full protection the
// two observation sequences must be bit-identical; any divergence is a
// concrete timing channel, found without statistics.

// NIResult is the outcome of a two-run comparison.
type NIResult struct {
	// Equal is true when Lo's observation sequences are identical.
	Equal bool
	// DivergeIndex is the first differing observation when !Equal.
	DivergeIndex int
	// A and B are the diverging observations.
	A, B uint64
	// Observations is the sequence length compared.
	Observations int
}

// String renders the result.
func (r NIResult) String() string {
	if r.Equal {
		return fmt.Sprintf("NONINTERFERENT (%d observations identical)", r.Observations)
	}
	return fmt.Sprintf("INTERFERENCE at observation %d: %d vs %d", r.DivergeIndex, r.A, r.B)
}

// TwoRunNI builds two identical uniprocessor systems under prot, runs
// hiA in one and hiB in the other alongside the same Lo observer
// program, and compares Lo's complete timing view. The Lo observer mixes
// user reads, branches, syscalls and clock reads, so every §5.2 case is
// exercised.
func TwoRunNI(prot core.Config, hiA, hiB func(*kernel.UserCtx), loOps int) (NIResult, error) {
	run := func(hi func(*kernel.UserCtx)) ([]uint64, error) {
		pcfg := platform.DefaultConfig()
		pcfg.Cores = 1
		// A tiny LLC (64 KiB, 4 colours, 4 ways) so that a domain's
		// working set genuinely thrashes it within a few slices:
		// without colouring, Hi's sweeps then evict Lo's lines and
		// the shared kernel image — the channels the ablation tests
		// must be able to exhibit.
		pcfg.LLCSets = 256
		pcfg.LLCWays = 4
		pcfg.Frames = 8192
		sys, err := kernel.NewSystem(kernel.SystemConfig{
			Platform:   pcfg,
			Protection: prot,
			Domains: []core.DomainSpec{
				{Name: "Hi", SliceCycles: 50_000, PadCycles: 20_000, Colors: mem.NewColorSet(1, 2), IRQLines: []int{0}, CodePages: 4, HeapPages: 80},
				{Name: "Lo", SliceCycles: 50_000, PadCycles: 20_000, Colors: mem.NewColorSet(3), IRQLines: []int{1}, CodePages: 4, HeapPages: 80},
			},
			Schedule:  [][]int{{0, 1}},
			MaxCycles: uint64(loOps)*800_000 + 80_000_000,
		})
		if err != nil {
			return nil, err
		}
		var obs []uint64
		if _, err := sys.Spawn(0, "hi", 0, hi); err != nil {
			return nil, err
		}
		if _, err := sys.Spawn(1, "lo", 0, func(c *kernel.UserCtx) {
			for i := 0; i < loOps; i++ {
				// Case 1: user memory access, timed.
				lat := c.ReadHeap(uint64(i*192) % (16 * 4096))
				obs = append(obs, lat, c.Now())
				// Branch predictor path.
				obs = append(obs, c.Branch(uint64(i%64), i%3 == 0))
				// Case 2a: kernel entry, timed.
				obs = append(obs, c.NullSyscall(), c.Now())
				// Spread the observations over many slices so that
				// Hi's pressure has time to build between them.
				for k := 0; k < 8; k++ {
					c.Compute(2_000)
				}
			}
		}); err != nil {
			return nil, err
		}
		rep, err := sys.Run()
		if err != nil {
			return nil, err
		}
		if len(rep.Errors) > 0 {
			return nil, fmt.Errorf("invariant: thread errors: %v", rep.Errors)
		}
		return obs, nil
	}

	a, err := run(hiA)
	if err != nil {
		return NIResult{}, err
	}
	b, err := run(hiB)
	if err != nil {
		return NIResult{}, err
	}
	res := NIResult{Equal: true, Observations: len(a)}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return NIResult{DivergeIndex: i, A: a[i], B: b[i], Observations: len(a)}, nil
		}
	}
	if len(a) != len(b) {
		return NIResult{DivergeIndex: n, Observations: len(a)}, nil
	}
	return res, nil
}

// HiVariantPair returns two Hi programs whose hardware footprints differ
// in every §4 dimension: cache-set usage, dirty-line counts, syscall
// pattern, early-versus-late slice completion, and interrupt
// programming. Under full protection TwoRunNI must not tell them apart.
func HiVariantPair() (hiA, hiB func(*kernel.UserCtx)) {
	hiA = func(c *kernel.UserCtx) {
		for r := 0; r < 8; r++ {
			// Staggered completion interrupts, programmed FIRST so
			// they fire while the observer still runs: whatever the
			// slice phase, several land inside Lo slices when
			// partitioning is off.
			for d := uint64(40_000); d <= 400_000; d += 40_000 {
				c.StartIO(0, d)
			}
			// Full-heap write sweep: dirties thousands of lines and,
			// absent colouring, overfills every LLC set its pages
			// reach (20 same-colour pages vs 4 ways).
			lines := c.HeapBytes() / 64
			for i := uint64(0); i < lines; i++ {
				c.WriteHeap(i * 64)
			}
			c.NullSyscall()
			for i := 0; i < 60; i++ {
				c.Compute(300)
			}
		}
	}
	hiB = func(c *kernel.UserCtx) {
		for r := 0; r < 5; r++ {
			for i := uint64(0); i < 7; i++ {
				c.ReadHeap((i * 8192) % c.HeapBytes())
			}
			for i := 0; i < 900; i++ {
				c.Branch(uint64(i%32), i%2 == 0)
			}
		}
		// Exits early: the rest of Hi's slices are empty.
	}
	return hiA, hiB
}
