package invariant

import (
	"strings"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
)

// protectedSystem builds a fully protected two-domain system with a
// write-heavy Hi workload and a mixed Lo workload.
func protectedSystem(t *testing.T, prot core.Config) (*kernel.System, *FlushMonitor) {
	t.Helper()
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 40_000, PadCycles: 15_000, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: 40_000, PadCycles: 15_000, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: true,
		MaxCycles:   80_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	fm := NewFlushMonitor(sys)
	// The Hi workload varies its per-slice dirty-line count so that an
	// unpadded switch would expose variable flush latency.
	if _, err := sys.Spawn(0, "hi", 0, func(c *kernel.UserCtx) {
		for round := uint64(0); round < 16; round++ {
			n := 20 + (round%4)*220
			for i := uint64(0); i < n; i++ {
				c.WriteHeap((i * 64) % c.HeapBytes())
			}
			if round%2 == 0 {
				c.NullSyscall()
			}
			if round%3 == 0 {
				c.StartIO(0, 10_000)
			}
			for i := 0; i < 150; i++ {
				c.Compute(150)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn(1, "lo", 0, func(c *kernel.UserCtx) {
		for i := uint64(0); i < 1200; i++ {
			c.ReadHeap((i * 128) % c.HeapBytes())
			c.Branch(i%256, i%3 == 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return sys, fm
}

func runAndCheck(t *testing.T, prot core.Config) Report {
	t.Helper()
	sys, fm := protectedSystem(t, prot)
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Errors {
		t.Fatal(e)
	}
	return CheckSystem(sys, fm)
}

// TestFullProtectionInvariantsHold is the refinement side of the proof:
// the concrete kernel actually establishes every functional property the
// abstract model assumes.
func TestFullProtectionInvariantsHold(t *testing.T) {
	r := runAndCheck(t, core.FullProtection())
	if !r.Pass() {
		t.Fatalf("invariants violated under full protection:\n%s", r)
	}
	if len(r.Findings) < 5 {
		t.Fatalf("expected all checkers to run, got %d findings:\n%s", len(r.Findings), r)
	}
}

func TestFlushMonitorDetectsMissingFlush(t *testing.T) {
	prot := core.FullProtection()
	prot.FlushOnSwitch = false
	sys, fm := protectedSystem(t, prot)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// With flushing disabled the inspector still runs at switches and
	// must see non-reset state.
	f := fm.Finding()
	if f.Pass {
		t.Fatal("flush monitor passed with flushing disabled")
	}
}

func TestPaddingCheckerDetectsUnpadded(t *testing.T) {
	prot := core.FullProtection()
	prot.PadSwitch = false
	sys, _ := protectedSystem(t, prot)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	f := CheckPadding(sys)
	if f.Pass {
		t.Fatalf("padding checker passed without padding:\n%+v", f)
	}
}

func TestPartitionCheckerDetectsSharedKernel(t *testing.T) {
	prot := core.FullProtection()
	prot.CloneKernel = false
	sys, _ := protectedSystem(t, prot)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// The shared kernel image occupies user colours: both the
	// partitioning invariant and clone disjointness must fail.
	if f := CheckPartitioning(sys); f.Pass {
		t.Fatalf("partition checker missed shared kernel text:\n%+v", f)
	}
	if f := CheckCloneDisjoint(sys); f.Pass {
		t.Fatalf("clone checker missed shared image:\n%+v", f)
	}
}

func TestIRQCheckerDetectsUnpartitioned(t *testing.T) {
	prot := core.FullProtection()
	prot.PartitionIRQs = false
	sys, _ := protectedSystem(t, prot)
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	f := CheckIRQPartition(sys)
	if f.Pass {
		t.Fatalf("IRQ checker passed without partitioning:\n%+v", f)
	}
}

func TestTLBTheoremFinding(t *testing.T) {
	f := CheckTLBTheorem(30, 7)
	if !f.Pass {
		t.Fatalf("TLB theorem violated: %+v", f)
	}
	if f.Detail == "" {
		t.Fatal("empty detail")
	}
}

func TestPaddingCheckerRequiresTrace(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := kernel.NewSystem(kernel.SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: 1000, Colors: mem.ColorRange(1, 2), CodePages: 1, HeapPages: 1},
			{Name: "B", SliceCycles: 1000, Colors: mem.ColorRange(2, 3), CodePages: 1, HeapPages: 1},
		},
		Schedule: [][]int{{0, 1}},
		// EnableTrace deliberately false.
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := CheckPadding(sys); f.Pass {
		t.Fatal("padding check must fail without tracing")
	}
}

func TestReportRendering(t *testing.T) {
	r := Report{Findings: []Finding{
		{Name: "good", Pass: true, Detail: "ok"},
		{Name: "bad", Pass: false, Detail: "broken", Violations: []string{"v1"}},
	}}
	s := r.String()
	for _, want := range []string{"PASS", "FAIL", "good", "bad", "v1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if r.Pass() {
		t.Fatal("report with failure must not pass")
	}
}
