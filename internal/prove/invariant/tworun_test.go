package invariant

import (
	"strings"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/kernel"
)

// TestConcreteNIFullProtection is the end-to-end theorem on the real
// simulator: two wildly different Hi programs produce bit-identical Lo
// observation sequences under full protection. No statistics, no noise
// floor — exact equality of every timing reading.
func TestConcreteNIFullProtection(t *testing.T) {
	hiA, hiB := HiVariantPair()
	res, err := TwoRunNI(core.FullProtection(), hiA, hiB, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal {
		t.Fatalf("concrete interference under full protection: %s", res)
	}
	if res.Observations < 60*5 {
		t.Fatalf("too few observations: %d", res.Observations)
	}
}

// TestConcreteNIAblations: removing any single mechanism lets the
// two-run comparison tell the Hi programs apart on the concrete
// simulator — the same matrix as the abstract prover, at full fidelity.
func TestConcreteNIAblations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"no-flush", func(c *core.Config) { c.FlushOnSwitch = false }},
		{"no-pad", func(c *core.Config) { c.PadSwitch = false }},
		{"no-colour", func(c *core.Config) { c.ColorUserMemory = false }},
		{"no-clone", func(c *core.Config) { c.CloneKernel = false }},
		{"no-irq-partition", func(c *core.Config) { c.PartitionIRQs = false }},
	}
	hiA, hiB := HiVariantPair()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prot := core.FullProtection()
			tc.mut(&prot)
			res, err := TwoRunNI(prot, hiA, hiB, 60)
			if err != nil {
				t.Fatal(err)
			}
			if res.Equal {
				t.Fatalf("%s: expected concrete interference, got %s", tc.name, res)
			}
		})
	}
}

// TestConcreteNISameHiProgramsTrivially: determinism sanity — identical
// Hi programs are indistinguishable under ANY configuration.
func TestConcreteNISameHiProgramsTrivially(t *testing.T) {
	hiA, _ := HiVariantPair()
	for _, prot := range []core.Config{core.NoProtection(), core.FullProtection()} {
		res, err := TwoRunNI(prot, hiA, hiA, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal {
			t.Fatalf("identical programs diverged (%s): determinism broken: %s", prot, res)
		}
	}
}

// TestConcreteNISubtleVariants: full protection must also withstand Hi
// programs that differ only minimally (one extra dirtied line; one extra
// syscall) — the hardest inputs for padding and flushing.
func TestConcreteNISubtleVariants(t *testing.T) {
	mk := func(extraWrites int, extraSyscall bool) func(*kernel.UserCtx) {
		return func(c *kernel.UserCtx) {
			for r := 0; r < 10; r++ {
				for i := 0; i < 100+extraWrites; i++ {
					c.WriteHeap(uint64(i*64) % c.HeapBytes())
				}
				if extraSyscall {
					c.NullSyscall()
				}
				for i := 0; i < 40; i++ {
					c.Compute(250)
				}
			}
		}
	}
	res, err := TwoRunNI(core.FullProtection(), mk(0, false), mk(1, true), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal {
		t.Fatalf("subtle Hi variation leaked: %s", res)
	}
}

func TestNIResultString(t *testing.T) {
	if s := (NIResult{Equal: true, Observations: 5}).String(); !strings.Contains(s, "NONINTERFERENT") {
		t.Fatal(s)
	}
	if s := (NIResult{DivergeIndex: 2, A: 1, B: 3}).String(); !strings.Contains(s, "INTERFERENCE") {
		t.Fatal(s)
	}
}
