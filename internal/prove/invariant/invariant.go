// Package invariant checks, on the CONCRETE simulator, the functional
// properties that the paper reduces time protection to (§5): correct
// partitioning (an invariant about cache-set ownership), correct flushing
// (the defined reset state actually reached on every switch), correct
// padding (verified "by simply comparing time stamps"), interrupt
// partitioning, kernel-clone colour disjointness, and the §5.3 TLB
// theorem. These are the refinement obligations that justify the
// abstract model internal/prove/absmodel: each abstract resource's
// claimed behaviour is validated against the real (simulated) hardware.
package invariant

import (
	"fmt"
	"reflect"
	"strings"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/cpu"
	"timeprot/internal/hw/tlb"
	"timeprot/internal/kernel"
	"timeprot/internal/rng"
	"timeprot/internal/trace"
)

// ModelVersion is the invariant checker's registered model-version
// string. It completes the prover fingerprint (absmodel, nonintf,
// invariant) the experiment engine keys proof cells under: the concrete
// functional-property checkers are the refinement side of the same
// proof, so a semantic change here — what a finding checks, which events
// it consumes — invalidates cached proof cells exactly like a change to
// the abstract checkers. Pure refactors do not bump it.
const ModelVersion = "prove/invariant/1"

// maxViolations caps recorded violation details per finding.
const maxViolations = 8

// Finding is one checked property.
type Finding struct {
	// Name identifies the property.
	Name string
	// Pass is the verdict.
	Pass bool
	// Detail summarises what was checked.
	Detail string
	// Violations lists up to maxViolations concrete violations.
	Violations []string
}

func (f *Finding) violate(format string, args ...interface{}) {
	f.Pass = false
	if len(f.Violations) < maxViolations {
		f.Violations = append(f.Violations, fmt.Sprintf(format, args...))
	}
}

// Report aggregates findings.
type Report struct {
	Findings []Finding
}

// Pass reports whether every finding passed.
func (r Report) Pass() bool {
	for _, f := range r.Findings {
		if !f.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		mark := "PASS"
		if !f.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-24s %s\n", mark, f.Name, f.Detail)
		for _, v := range f.Violations {
			fmt.Fprintf(&b, "       - %s\n", v)
		}
	}
	return b.String()
}

// FlushMonitor verifies, at every domain switch, that all core-local
// flushable state is in its defined, history-independent reset state —
// the §4.1 requirement made checkable. Install before Run.
type FlushMonitor struct {
	fresh   map[int]uint64 // core ID -> reset fingerprint
	checks  int
	finding Finding
}

// NewFlushMonitor installs a flush monitor on sys. It must be called
// before Run, while the cores are still in their reset state.
func NewFlushMonitor(sys *kernel.System) *FlushMonitor {
	m := &FlushMonitor{
		fresh:   make(map[int]uint64),
		finding: Finding{Name: "flush-on-switch", Pass: true},
	}
	for _, c := range sys.Machine().Cores {
		m.fresh[c.ID()] = c.FlushableFingerprint()
	}
	sys.SetSwitchInspector(func(cpuIndex int, c *cpu.Core) {
		m.checks++
		if got := c.FlushableFingerprint(); got != m.fresh[c.ID()] {
			m.finding.violate("cpu %d switch %d: flushable fingerprint %#x != reset %#x",
				cpuIndex, m.checks, got, m.fresh[c.ID()])
		}
	})
	return m
}

// Finding returns the verdict after the run.
func (m *FlushMonitor) Finding() Finding {
	f := m.finding
	f.Detail = fmt.Sprintf("%d switches inspected", m.checks)
	if m.checks == 0 {
		f.Pass = false
		f.Violations = append(f.Violations, "no switches observed")
	}
	return f
}

// CheckPartitioning verifies the colouring invariant on the LLC: every
// valid line in a set of colour c is owned by the unique domain holding
// colour c (or by the kernel, in its reserved colour). This is the
// "functional property (namely an invariant about correct partitioning)"
// of §5 — checkable with no reference to time.
func CheckPartitioning(sys *kernel.System) Finding {
	f := Finding{Name: "llc-partitioning", Pass: true}
	llc := sys.Machine().LLC
	colors := llc.Config().Colors()

	owner := make(map[int]hw.DomainID, colors) // colour -> allowed domain
	for c := 0; c < colors; c++ {
		owner[c] = hw.NoOwner
	}
	for _, d := range sys.Domains() {
		for c := range d.Spec.Colors {
			owner[c] = d.ID
		}
	}
	owner[core.KernelReservedColor] = hw.KernelOwner

	sets := llc.Config().Sets
	occupied := 0
	for set := 0; set < sets; set++ {
		owners := llc.OwnersInSet(set)
		if len(owners) > 0 {
			occupied++
		}
		allowed := owner[llc.SetColor(set)]
		for _, o := range owners {
			if o != allowed {
				f.violate("set %d (colour %d): line owned by %d, colour belongs to %d",
					set, llc.SetColor(set), o, allowed)
			}
		}
	}
	f.Detail = fmt.Sprintf("%d/%d sets occupied, %d colours", occupied, sets, colors)
	return f
}

// CheckPadding verifies padding correctness by timestamp comparison (§5):
// for every switched-from domain, the steady-state interval from slice
// start to next-domain dispatch is a single constant, and no overrun was
// recorded.
func CheckPadding(sys *kernel.System) Finding {
	f := Finding{Name: "padding-constant", Pass: true}
	tr := sys.Trace()
	if tr == nil {
		f.Pass = false
		f.Detail = "tracing disabled"
		return f
	}
	type key struct {
		cpu  int
		from hw.DomainID
	}
	deltas := make(map[key]map[uint64]int)
	seen := make(map[key]int)
	for _, e := range tr.Filter(trace.SwitchEnd) {
		k := key{cpu: e.CPU, from: e.From}
		seen[k]++
		if seen[k] <= 2 {
			continue // cold-start dispatches may differ (incoming image cold)
		}
		if deltas[k] == nil {
			deltas[k] = make(map[uint64]int)
		}
		deltas[k][e.Cycle-e.AuxCycle]++
	}
	n := 0
	for k, ds := range deltas {
		n += len(ds)
		if len(ds) > 1 {
			f.violate("cpu %d from domain %d: %d distinct dispatch deltas %v", k.cpu, k.from, len(ds), keysOf(ds))
		}
	}
	if over := len(tr.Filter(trace.PadOverrun)); over > 0 {
		f.violate("%d padding/delivery overruns recorded", over)
	}
	f.Detail = fmt.Sprintf("%d steady-state delta classes", n)
	return f
}

func keysOf(m map[uint64]int) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// CheckIRQPartition verifies that every delivered interrupt was delivered
// while its owning domain was current (§4.2).
func CheckIRQPartition(sys *kernel.System) Finding {
	f := Finding{Name: "irq-partitioning", Pass: true}
	tr := sys.Trace()
	if tr == nil {
		f.Pass = false
		f.Detail = "tracing disabled"
		return f
	}
	owners := make(map[int]hw.DomainID)
	for _, d := range sys.Domains() {
		for _, line := range d.Spec.IRQLines {
			owners[line] = d.ID
		}
	}
	n := 0
	for _, e := range tr.Filter(trace.IRQDeliver) {
		n++
		if own, ok := owners[e.Aux]; ok && own != e.To {
			f.violate("line %d (owner %d) delivered during domain %d at cycle %d", e.Aux, own, e.To, e.Cycle)
		}
	}
	f.Detail = fmt.Sprintf("%d deliveries checked", n)
	return f
}

// CheckCloneDisjoint verifies the kernel-clone colour property: each
// domain's kernel image lives entirely within that domain's colours, so
// no two domains' kernel text can ever share an LLC set (§4.2).
func CheckCloneDisjoint(sys *kernel.System) Finding {
	f := Finding{Name: "clone-colour-disjoint", Pass: true}
	m := sys.Machine()
	images := 0
	for _, d := range sys.Domains() {
		if d.Image.Owner == hw.KernelOwner {
			f.violate("domain %s uses the shared kernel image", d.Spec.Name)
			continue
		}
		images++
		for _, pfn := range d.Image.TextPFNs {
			if c := m.Mem.Color(pfn); !d.Spec.Colors.Contains(c) {
				f.violate("domain %s image frame %d has colour %d outside its allocation", d.Spec.Name, pfn, c)
			}
		}
	}
	f.Detail = fmt.Sprintf("%d cloned images checked", images)
	return f
}

// CheckTLBTheorem is the §5.3 Syeda-Klein partitioning theorem as an
// executable check: arbitrary page-table operations (refills,
// invalidations, per-ASID flushes) under one ASID never change another
// ASID's translations or TLB view, provided capacity does not force
// evictions (the capacity effect is exactly why the TLB is flushable
// state for timing purposes).
func CheckTLBTheorem(trials int, seed uint64) Finding {
	f := Finding{Name: "tlb-asid-theorem", Pass: true}
	r := rng.New(seed)
	const a, b = tlb.ASID(1), tlb.ASID(2)
	for trial := 0; trial < trials; trial++ {
		tl := tlb.New(64)
		for i := 0; i < 8; i++ {
			tl.Refill(b, uint64(0x100+i), uint64(0x900+i), false)
		}
		before := tl.Snapshot(b)
		for i := 0; i < 200; i++ {
			switch r.Intn(4) {
			case 0:
				tl.Refill(a, r.Uint64n(32), r.Uint64n(1024), false)
			case 1:
				tl.InvalidateVPN(a, r.Uint64n(32))
			case 2:
				tl.FlushASID(a)
			case 3:
				tl.Lookup(a, r.Uint64n(32))
			}
		}
		if !reflect.DeepEqual(before, tl.Snapshot(b)) {
			f.violate("trial %d: ASID %d activity changed ASID %d's view", trial, a, b)
		}
		for i := 0; i < 8; i++ {
			pfn, hit := tl.Lookup(b, uint64(0x100+i))
			if !hit || pfn != uint64(0x900+i) {
				f.violate("trial %d: translation %d corrupted", trial, i)
			}
		}
	}
	f.Detail = fmt.Sprintf("%d trials, 200 ops each", trials)
	return f
}

// CheckSystem runs all post-run checks appropriate to the system's
// protection configuration, plus the flush monitor's verdict if one was
// installed.
func CheckSystem(sys *kernel.System, fm *FlushMonitor) Report {
	var r Report
	prot := sys.Protection()
	if fm != nil && prot.FlushOnSwitch {
		r.Findings = append(r.Findings, fm.Finding())
	}
	if prot.ColorUserMemory && prot.CloneKernel {
		r.Findings = append(r.Findings, CheckPartitioning(sys))
	}
	if prot.PadSwitch {
		r.Findings = append(r.Findings, CheckPadding(sys))
	}
	if prot.PartitionIRQs {
		r.Findings = append(r.Findings, CheckIRQPartition(sys))
	}
	if prot.CloneKernel && prot.ColorUserMemory {
		r.Findings = append(r.Findings, CheckCloneDisjoint(sys))
	}
	r.Findings = append(r.Findings, CheckTLBTheorem(50, 97))
	return r
}
