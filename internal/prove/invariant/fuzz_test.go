package invariant

import (
	"testing"
	"testing/quick"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/kernel"
	"timeprot/internal/rng"
)

// randomProgram builds a deterministic pseudo-random thread program from
// a seed: an arbitrary interleaving of reads, writes, computes, branches,
// syscalls and interrupt programming.
func randomProgram(seed uint64, steps int, irqLine int) func(*kernel.UserCtx) {
	return func(c *kernel.UserCtx) {
		r := rng.New(seed)
		heap := c.HeapBytes()
		for i := 0; i < steps; i++ {
			switch r.Intn(8) {
			case 0, 1:
				c.ReadHeap(r.Uint64n(heap/64) * 64)
			case 2, 3:
				c.WriteHeap(r.Uint64n(heap/64) * 64)
			case 4:
				c.Compute(r.Uint64n(400) + 1)
			case 5:
				c.Branch(r.Uint64n(512), r.Bool())
			case 6:
				c.NullSyscall()
			default:
				if irqLine >= 0 {
					c.StartIO(irqLine, r.Uint64n(100_000)+1_000)
				} else {
					c.Compute(50)
				}
			}
		}
	}
}

// TestInvariantsHoldUnderRandomWorkloads is the property-based version of
// the refinement claim: for ARBITRARY program behaviour in both domains,
// a fully protected kernel maintains every functional property of §5 —
// partitioning, flushing, padding constancy, interrupt ownership, clone
// disjointness.
func TestInvariantsHoldUnderRandomWorkloads(t *testing.T) {
	f := func(seed uint64) bool {
		pcfg := platform.DefaultConfig()
		pcfg.Cores = 1
		sys, err := kernel.NewSystem(kernel.SystemConfig{
			Platform:   pcfg,
			Protection: core.FullProtection(),
			Domains: []core.DomainSpec{
				{Name: "Hi", SliceCycles: 40_000, PadCycles: 15_000, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 16},
				{Name: "Lo", SliceCycles: 40_000, PadCycles: 15_000, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
			},
			Schedule:    [][]int{{0, 1}},
			EnableTrace: true,
			MaxCycles:   120_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		fm := NewFlushMonitor(sys)
		if _, err := sys.Spawn(0, "hi", 0, randomProgram(seed, 900, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Spawn(1, "lo", 0, randomProgram(seed^0xDEAD, 900, 1)); err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil || len(rep.Errors) > 0 {
			t.Fatalf("run failed: %v %v", err, rep.Errors)
		}
		r := CheckSystem(sys, fm)
		if !r.Pass() {
			t.Logf("seed %d violations:\n%s", seed, r)
		}
		return r.Pass()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestDeterminismUnderRandomWorkloads: any random workload, run twice,
// gives identical cycle counts and switch counts — the property all
// two-run comparisons rest on.
func TestDeterminismUnderRandomWorkloads(t *testing.T) {
	f := func(seed uint64) bool {
		run := func() (uint64, int) {
			pcfg := platform.DefaultConfig()
			pcfg.Cores = 1
			sys, err := kernel.NewSystem(kernel.SystemConfig{
				Platform:   pcfg,
				Protection: core.FullProtection(),
				Domains: []core.DomainSpec{
					{Name: "Hi", SliceCycles: 30_000, PadCycles: 12_000, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 8},
					{Name: "Lo", SliceCycles: 30_000, PadCycles: 12_000, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 8},
				},
				Schedule:  [][]int{{0, 1}},
				MaxCycles: 120_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Spawn(0, "hi", 0, randomProgram(seed, 500, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Spawn(1, "lo", 0, randomProgram(seed+1, 500, 1)); err != nil {
				t.Fatal(err)
			}
			rep, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			return rep.CPUCycles[0], rep.Switches
		}
		c1, s1 := run()
		c2, s2 := run()
		return c1 == c2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
