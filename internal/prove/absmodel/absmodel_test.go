package absmodel

import (
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Domains = 1 },
		func(c *Config) { c.StepsPerSlice = 0 },
		func(c *Config) { c.Slices = 1 },
		func(c *Config) { c.Alphabet = 1 },
		func(c *Config) { c.DigestMod = 1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFuncsDeterministicAndBounded(t *testing.T) {
	f := SampleFuncs(7, 8)
	g := SampleFuncs(7, 8)
	h := SampleFuncs(8, 8)
	sawDiff := false
	for d := uint64(0); d < 8; d++ {
		for in := uint64(0); in < 8; in++ {
			if f.Update(d, in) != g.Update(d, in) {
				t.Fatal("same seed must give same function")
			}
			if f.Update(d, in) >= 8 {
				t.Fatal("update must stay in the digest domain")
			}
			if f.Update(d, in) != h.Update(d, in) {
				sawDiff = true
			}
		}
	}
	if !sawDiff {
		t.Fatal("different seeds should give different functions")
	}
	if dt := f.Time(1, 2, 3); dt < 1 || dt > 16 {
		t.Fatalf("time out of range: %d", dt)
	}
	if l := f.FlushLat(3); l < 1 || l > 32 {
		t.Fatalf("flush latency out of range: %d", l)
	}
}

func TestStepDeterminism(t *testing.T) {
	f := func(seed uint64, acts []uint8) bool {
		cfg := DefaultConfig()
		m := NewMachine(cfg, SampleFuncs(seed, cfg.DigestMod))
		run := func() uint64 {
			s := m.Reset()
			for _, a := range acts {
				act := Action(int(a) % cfg.Alphabet)
				switch a % 5 {
				case 3:
					act = ActSyscall
				case 4:
					act = ActStartIO
				}
				m.Step(s, act)
			}
			m.EndSlice(s)
			return s.Clock ^ s.Flushables[ResL1] ^ s.LLCBanks[0]
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFlushResetsFlushables(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SampleFuncs(3, cfg.DigestMod))
	s := m.Reset()
	for i := 0; i < 5; i++ {
		m.Step(s, Action(1))
	}
	if s.Flushables[ResL1] == 0 && s.Flushables[ResBP] == 0 {
		t.Skip("degenerate family: digests stayed zero")
	}
	m.EndSlice(s)
	if s.Flushables != [numFlushables]uint64{} {
		t.Fatalf("flushables not reset: %v", s.Flushables)
	}
}

func TestNoFlushKeepsState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flush = false
	m := NewMachine(cfg, SampleFuncs(3, cfg.DigestMod))
	s := m.Reset()
	for i := 0; i < 5; i++ {
		m.Step(s, Action(1))
	}
	before := s.Flushables
	m.EndSlice(s)
	if s.Flushables != before {
		t.Fatalf("unflushed state changed across switch: %v -> %v", before, s.Flushables)
	}
}

func TestPaddedDispatchConstant(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SampleFuncs(5, cfg.DigestMod))
	// Two different Hi behaviours; dispatch time must be identical.
	dispatch := func(act Action) uint64 {
		s := m.Reset()
		for i := 0; i < cfg.StepsPerSlice; i++ {
			m.Step(s, act)
		}
		return m.EndSlice(s).Dispatch
	}
	if d0, d1 := dispatch(Action(0)), dispatch(Action(1)); d0 != d1 {
		t.Fatalf("padded dispatch differs: %d vs %d", d0, d1)
	}
	if d0, dS := dispatch(Action(0)), dispatch(ActSyscall); d0 != dS {
		t.Fatalf("padded dispatch differs vs syscall: %d vs %d", d0, dS)
	}
}

func TestUnpaddedDispatchVaries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pad = false
	m := NewMachine(cfg, SampleFuncs(5, cfg.DigestMod))
	seen := make(map[uint64]bool)
	for _, act := range []Action{0, 1, ActSyscall} {
		s := m.Reset()
		for i := 0; i < cfg.StepsPerSlice; i++ {
			m.Step(s, act)
		}
		seen[m.EndSlice(s).Dispatch] = true
	}
	if len(seen) < 2 {
		t.Fatalf("unpadded dispatch should vary, got %v", seen)
	}
}

func TestColorPartitionsLLC(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SampleFuncs(9, cfg.DigestMod))
	s := m.Reset()
	m.Step(s, Action(1)) // Hi access
	if s.LLCBanks[1] != 0 {
		t.Fatal("Hi access polluted Lo's colour bank")
	}
	if s.LLCShared != 0 {
		t.Fatal("coloured config must not touch the shared digest")
	}
	cfg.Color = false
	m2 := NewMachine(cfg, SampleFuncs(9, cfg.DigestMod))
	s2 := m2.Reset()
	m2.Step(s2, Action(1))
	if s2.LLCShared == 0 {
		t.Skip("degenerate family: update fixed zero")
	}
}

func TestIRQPartitioningDefersDelivery(t *testing.T) {
	run := func(partition bool) (irqDuringLo bool) {
		cfg := DefaultConfig()
		cfg.PartitionIRQ = partition
		m := NewMachine(cfg, SampleFuncs(11, cfg.DigestMod))
		s := m.Reset()
		m.Step(s, ActStartIO) // Hi programs its device
		for i := 1; i < cfg.StepsPerSlice; i++ {
			m.Step(s, Action(0))
		}
		m.EndSlice(s) // -> Lo
		for i := 0; i < cfg.StepsPerSlice; i++ {
			if m.Step(s, Action(0)).IRQDelivered {
				irqDuringLo = true
			}
		}
		return irqDuringLo
	}
	if !run(false) {
		t.Fatal("unpartitioned IRQ must interrupt Lo")
	}
	if run(true) {
		t.Fatal("partitioned IRQ must stay masked during Lo")
	}
}

func TestPendingIRQsAccessor(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SampleFuncs(13, cfg.DigestMod))
	s := m.Reset()
	m.Step(s, ActStartIO)
	irqs := s.PendingIRQs()
	if len(irqs) != 1 || irqs[0].Owner != 0 || irqs[0].FireAt == 0 {
		t.Fatalf("pending irqs = %+v", irqs)
	}
}

func TestCloneDeepCopies(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SampleFuncs(17, cfg.DigestMod))
	s := m.Reset()
	m.Step(s, ActStartIO)
	c := s.Clone()
	m.Step(s, Action(1))
	m.EndSlice(s)
	if c.Clock == s.Clock {
		t.Fatal("clone should not track the original")
	}
	if len(c.PendingIRQs()) != 1 {
		t.Fatal("clone lost pending IRQs")
	}
}

func TestSwitchWorkWithinPadBudget(t *testing.T) {
	// The default budget must cover the worst-case switch work for
	// every family and any flushable content — the assumption §5.2
	// makes explicit.
	cfg := DefaultConfig()
	for seed := uint64(0); seed < 50; seed++ {
		m := NewMachine(cfg, SampleFuncs(seed, cfg.DigestMod))
		for d := uint64(0); d < cfg.DigestMod; d++ {
			s := m.Reset()
			for i := range s.Flushables {
				s.Flushables[i] = d
			}
			rep := m.EndSlice(s)
			if rep.Overran {
				t.Fatalf("seed %d digest %d: pad budget overrun (work %d)", seed, d, rep.Work)
			}
		}
	}
}
