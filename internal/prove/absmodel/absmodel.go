// Package absmodel implements the abstract hardware model of §5.1 of the
// paper: the microarchitectural state is a finite set of resources, each
// either PARTITIONABLE (per-domain banks: the physically indexed LLC
// under colouring, the kernel text under cloning) or FLUSHABLE
// (core-local time-shared state: L1, TLB, branch predictor, prefetcher),
// plus the always-shared-but-deterministically-accessed kernel global
// data of §5.2 Case 2a.
//
// Time advances by a DETERMINISTIC YET UNSPECIFIED function of the
// visible microarchitectural state: the model is parameterised by a
// function family sampled from a seed, and the provers in
// internal/prove/nonintf quantify over many sampled families. No claim
// ever depends on what the functions compute — only on WHICH state they
// are allowed to read, exactly the paper's argument that "we do not need
// to know how long an instruction will take to execute, only which
// micro-architectural state its execution time depends on".
//
// State digests live in a small modular domain so that bounded checks
// can enumerate exhaustively.
package absmodel

import (
	"fmt"

	"timeprot/internal/rng"
)

// ModelVersion is the abstract model's registered model-version string.
// It feeds the proof engine's prover fingerprint (every proof cell's
// store key embeds it): bump it on any change to the model's semantics —
// the resource taxonomy, the action set, what state each action may
// read or write, the switch protocol, or the sampled function families —
// and every cached proof cell automatically becomes stale. Pure
// refactors that provably preserve machine behaviour do not bump it.
//
// v2: device-completion interrupts fire a fixed delay after StartIO
// (inheriting the possibly secret-dependent programming time) and
// delivery latency is a function of the fire time, so a victim's
// observed gap reflects when the completion landed in its window. The
// v1 model pinned the fire time to slice geometry alone, which the
// conformance harness refuted: the concrete device fires at
// issue-time + delay, so a trojan can encode a secret in WHERE within
// its slice it programs the device — a channel v1 certified away.
const ModelVersion = "prove/absmodel/2"

// Action is one abstract step of a domain's program.
type Action int

// Action encoding: values in [0, Alphabet) are user-mode memory accesses
// with that input (the secret-dependent address pattern); the values
// below follow the alphabet.
const (
	// ActSyscall traps into the kernel (§5.2 Case 2a).
	ActSyscall = -1
	// ActStartIO programs the domain's device to raise its completion
	// interrupt a fixed delay later — during the NEXT slice, at an
	// offset inherited from the programming time (the §4.2 interrupt
	// channel).
	ActStartIO = -2
)

// Config instantiates the model.
type Config struct {
	// Domains is the number of security domains; domain 0 is Hi,
	// domain 1 is Lo throughout.
	Domains int
	// StepsPerSlice is the number of actions a domain executes per
	// time slice.
	StepsPerSlice int
	// Slices is the bounded execution length in slices.
	Slices int
	// Alphabet is the user-access input alphabet size.
	Alphabet int
	// DigestMod is the digest domain size (small for enumeration).
	DigestMod uint64
	// PadBudget is the abstract padding amount; it must cover the
	// worst-case switch work, which the model checks and reports.
	PadBudget uint64

	// Mechanism arming, mirroring core.Config.
	Flush        bool // reset flushables on domain switch
	Pad          bool // pad switch to sliceStart + slice + PadBudget
	Color        bool // LLC partitioned per domain (else shared)
	Clone        bool // kernel text partitioned per domain (else shared)
	PartitionIRQ bool // IRQs masked outside their owner domain
	SMT          bool // Hi and Lo live-share core-local state (never closable)
}

// DefaultConfig returns a small, fully protected instance.
func DefaultConfig() Config {
	return Config{
		Domains:       2,
		StepsPerSlice: 3,
		Slices:        6,
		Alphabet:      2,
		DigestMod:     8,
		// Worst-case switch work: kernel entry (<=16) plus three
		// flushes (<=32 each) = 112; the budget must cover it or the
		// padding assumption fails (checked, not assumed).
		PadBudget:    128,
		Flush:        true,
		Pad:          true,
		Color:        true,
		Clone:        true,
		PartitionIRQ: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Domains < 2 {
		return fmt.Errorf("absmodel: need at least 2 domains, got %d", c.Domains)
	}
	if c.StepsPerSlice < 1 || c.Slices < 2 {
		return fmt.Errorf("absmodel: degenerate schedule %dx%d", c.StepsPerSlice, c.Slices)
	}
	if c.Alphabet < 2 {
		return fmt.Errorf("absmodel: alphabet must be >= 2")
	}
	if c.DigestMod < 2 {
		return fmt.Errorf("absmodel: digest domain must be >= 2")
	}
	return nil
}

// Funcs is one sampled family of the unspecified deterministic functions.
type Funcs struct {
	seed uint64
	mod  uint64
}

// SampleFuncs derives a function family from a seed.
func SampleFuncs(seed uint64, mod uint64) Funcs {
	return Funcs{seed: seed, mod: mod}
}

// Update is the state-update function: new digest from old digest and
// input.
func (f Funcs) Update(digest, input uint64) uint64 {
	return rng.HashCombine(f.seed^0xA11CE, rng.HashCombine(digest+1, input+3)) % f.mod
}

// Time maps a set of visible digests to an elapsed-cycle count in
// [1, 16]. Determinism is all that matters; the range just keeps clocks
// readable.
func (f Funcs) Time(obs ...uint64) uint64 {
	h := f.seed ^ 0x7E4E
	for _, o := range obs {
		h = rng.HashCombine(h, o+5)
	}
	return 1 + h%16
}

// FlushLat is the history-dependent flush latency of a flushable digest
// (§4.2): more "dirtiness", different latency.
func (f Funcs) FlushLat(digest uint64) uint64 {
	return 1 + rng.HashCombine(f.seed^0xF1A5, digest)%32
}

// Flushable resource indices.
const (
	ResL1 = iota
	ResTLB
	ResBP
	numFlushables
)

// irq is a pending device interrupt.
type irq struct {
	fireAt uint64
	owner  int
}

// State is the abstract machine state.
type State struct {
	// Flushables are the core-local time-shared digests.
	Flushables [numFlushables]uint64
	// LLCBanks are the per-domain LLC partitions (used when Color).
	LLCBanks []uint64
	// LLCShared is the unpartitioned LLC digest (used when !Color).
	LLCShared uint64
	// KTextBanks are the per-domain kernel-text digests (when Clone).
	KTextBanks []uint64
	// KTextShared is the shared kernel image digest (when !Clone).
	KTextShared uint64
	// KGlobal is the kernel global data digest, accessed with a FIXED
	// input on every kernel entry (§5.2 Case 2a).
	KGlobal uint64

	// Clock is the hardware clock of §5.1's time model.
	Clock uint64
	// Cur is the executing domain.
	Cur int
	// SliceStart is when the current slice began.
	SliceStart uint64

	irqs []irq
}

// Machine binds a Config and a sampled function family.
type Machine struct {
	Cfg Config
	F   Funcs
}

// NewMachine validates and builds a machine. It panics on invalid
// configs: model instantiation is a prover-construction decision.
func NewMachine(cfg Config, f Funcs) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Machine{Cfg: cfg, F: f}
}

// Reset returns the initial state: all digests in the defined reset
// state (zero), clock zero, domain 0 (Hi) running.
func (m *Machine) Reset() *State {
	return &State{
		LLCBanks:   make([]uint64, m.Cfg.Domains),
		KTextBanks: make([]uint64, m.Cfg.Domains),
	}
}

// PendingIRQ is an externally visible pending interrupt.
type PendingIRQ struct {
	// FireAt is the programmed completion time.
	FireAt uint64
	// Owner is the programming domain.
	Owner int
}

// PendingIRQs returns the pending device interrupts, for the checkers'
// interrupt-view comparisons.
func (s *State) PendingIRQs() []PendingIRQ {
	out := make([]PendingIRQ, 0, len(s.irqs))
	for _, q := range s.irqs {
		out = append(out, PendingIRQ{FireAt: q.fireAt, Owner: q.owner})
	}
	return out
}

// Clone deep-copies a state.
func (s *State) Clone() *State {
	c := *s
	c.LLCBanks = append([]uint64(nil), s.LLCBanks...)
	c.KTextBanks = append([]uint64(nil), s.KTextBanks...)
	c.irqs = append([]irq(nil), s.irqs...)
	return &c
}

// SliceLen is the abstract slice length in clock units. Each step costs
// at most 16+handler; the slice must fit StepsPerSlice steps.
func (m *Machine) SliceLen() uint64 {
	return uint64(m.Cfg.StepsPerSlice) * 48
}

// llcDigest returns a pointer to the LLC digest the domain's accesses
// touch (its bank under colouring, the shared digest otherwise).
func (m *Machine) llcDigest(s *State, domain int) *uint64 {
	if m.Cfg.Color {
		return &s.LLCBanks[domain]
	}
	return &s.LLCShared
}

// ktextDigest returns a pointer to the kernel-text digest the domain's
// kernel entries touch.
func (m *Machine) ktextDigest(s *State, domain int) *uint64 {
	if m.Cfg.Clone {
		return &s.KTextBanks[domain]
	}
	return &s.KTextShared
}

// StepEvent describes what Lo can observe about one of its own steps.
type StepEvent struct {
	// Clock is the hardware clock after the step — the timing
	// observation.
	Clock uint64
	// IRQDelivered marks that a device interrupt was handled during
	// the step (observable as a gap).
	IRQDelivered bool
}

// Step executes one action of the current domain and returns the
// observable event. The caller schedules slices via EndSlice.
func (m *Machine) Step(s *State, act Action) StepEvent {
	var ev StepEvent
	f := m.F
	cur := s.Cur

	// Pending-interrupt delivery precedes the step (§4.2): unmasked =
	// owned by the current domain under partitioning, any pending IRQ
	// otherwise. Handling enters the kernel, so its latency is a
	// function of kernel text and global data state.
	for i := 0; i < len(s.irqs); i++ {
		q := s.irqs[i]
		if q.fireAt > s.Clock {
			continue
		}
		if m.Cfg.PartitionIRQ && q.owner != cur {
			continue // stays masked and pending
		}
		kt := m.ktextDigest(s, cur)
		// The fire time participates in the visible latency: concretely,
		// WHEN the completion preempts the victim's window shifts every
		// subsequent observation, and the step-granular model folds that
		// skid into the handler's clock contribution.
		s.Clock += f.Time(*kt, s.KGlobal, q.fireAt)
		*kt = f.Update(*kt, 11)
		s.KGlobal = f.Update(0, 0) // fixed pattern -> history-independent warm state
		ev.IRQDelivered = true
		s.irqs = append(s.irqs[:i], s.irqs[i+1:]...)
		i--
	}

	switch {
	case act == ActSyscall:
		// §5.2 Case 2a: kernel text (clone or shared) plus global
		// kernel data accessed with a FIXED input — the kernel never
		// lets a secret choose its global access pattern.
		kt := m.ktextDigest(s, cur)
		llc := m.llcDigest(s, cur)
		dt := f.Time(s.Flushables[ResL1], *kt, s.KGlobal, *llc)
		s.Clock += dt
		*kt = f.Update(*kt, 7)
		// The global-data access pattern is FIXED, so the cache state
		// it leaves is history-independent (it saturates rather than
		// accumulating) — the §5.2 Case 2a determinism argument.
		s.KGlobal = f.Update(0, 0)
		s.Flushables[ResTLB] = f.Update(s.Flushables[ResTLB], 7)

	case act == ActStartIO:
		// Program the domain's device: completion fires mid-way
		// through the next slice. A syscall-class action.
		kt := m.ktextDigest(s, cur)
		dt := f.Time(*kt, s.KGlobal)
		s.Clock += dt
		s.KGlobal = f.Update(0, 0)
		// Completion fires a fixed device delay after programming — one
		// slice plus pad, landing in the next domain's window at the
		// same offset the StartIO had in this one. The fire time
		// inherits the issue clock: the concrete device fires at
		// issue-time + delay, so a secret-dependent programming time
		// yields a secret-dependent fire time, and pinning it to slice
		// geometry instead (as this model once did) certifies away a
		// real channel.
		fire := s.Clock + m.SliceLen() + m.padAmount()
		s.irqs = append(s.irqs, irq{fireAt: fire, owner: cur})

	default:
		// §5.2 Case 1: an ordinary user instruction. Its latency is
		// a function of the state the access touches: core-local
		// flushable state and the domain's reachable LLC state. With
		// SMT, the sibling's live updates share these digests — which
		// is precisely why the configuration is unfixable.
		in := uint64(act)
		llc := m.llcDigest(s, cur)
		dt := f.Time(s.Flushables[ResL1], s.Flushables[ResTLB], s.Flushables[ResBP], *llc)
		s.Clock += dt
		s.Flushables[ResL1] = f.Update(s.Flushables[ResL1], in)
		s.Flushables[ResBP] = f.Update(s.Flushables[ResBP], in)
		*llc = f.Update(*llc, in)
	}
	ev.Clock = s.Clock
	return ev
}

func (m *Machine) padAmount() uint64 {
	if m.Cfg.Pad {
		return m.Cfg.PadBudget
	}
	return 0
}

// SwitchReport describes one domain switch for the padding checker.
type SwitchReport struct {
	// From and To are the domains.
	From, To int
	// Work is the pre-pad switch work (entry + flush latency).
	Work uint64
	// Dispatch is the clock at which To starts executing.
	Dispatch uint64
	// Overran is true if the work exceeded the pad target — the
	// assumption violation of §5.2 ("under the assumption that the
	// padding value ... is sufficient").
	Overran bool
}

// EndSlice performs the §4.2 domain-switch protocol: kernel entry via the
// outgoing image, flush of flushable state (history-dependent latency),
// padding to sliceStart + slice + pad, kernel exit via the incoming
// image, and dispatch.
func (m *Machine) EndSlice(s *State) SwitchReport {
	f := m.F
	from := s.Cur
	to := (s.Cur + 1) % m.Cfg.Domains
	rep := SwitchReport{From: from, To: to}
	t0 := s.Clock

	// Kernel entry through the outgoing domain's image.
	kt := m.ktextDigest(s, from)
	s.Clock += f.Time(*kt, s.KGlobal)
	s.KGlobal = f.Update(0, 0)

	// Flush: reset every flushable to the defined state, paying a
	// latency that depends on the flushed content.
	if m.Cfg.Flush {
		for i := range s.Flushables {
			s.Clock += f.FlushLat(s.Flushables[i])
			s.Flushables[i] = 0
		}
	}

	// Pre-warm the kernel exit path through the incoming domain's
	// image BEFORE the pad point: its cost depends on the incoming
	// domain's own state and must be hidden beneath the pad, so that
	// nothing state-dependent executes after the pad.
	kt = m.ktextDigest(s, to)
	s.Clock += f.Time(*kt, s.KGlobal)
	*kt = f.Update(*kt, 9)
	rep.Work = s.Clock - t0

	// Pad to the switched-from domain's deadline; the post-pad return
	// is constant-time by construction.
	if m.Cfg.Pad {
		target := s.SliceStart + m.SliceLen() + m.Cfg.PadBudget
		if s.Clock > target {
			rep.Overran = true
		} else {
			s.Clock = target
		}
	}

	s.Cur = to
	s.SliceStart = s.Clock
	rep.Dispatch = s.Clock
	return rep
}

// LoVisible extracts the parts of the state domain `lo` can observe
// directly or through its own timing: its own banks, the flushable state
// it executes over, any shared digests its accesses read, and the clock
// phase. Two states related on these parts are ~Lo-equivalent; the
// unwinding checker verifies every transition preserves the relation.
func (m *Machine) LoVisible(s *State, lo int) []uint64 {
	vis := []uint64{
		s.Flushables[ResL1], s.Flushables[ResTLB], s.Flushables[ResBP],
		s.KGlobal,
		uint64(s.Cur),
		s.Clock - s.SliceStart,
	}
	if m.Cfg.Color {
		vis = append(vis, s.LLCBanks[lo])
	} else {
		vis = append(vis, s.LLCShared)
	}
	if m.Cfg.Clone {
		vis = append(vis, s.KTextBanks[lo])
	} else {
		vis = append(vis, s.KTextShared)
	}
	// Pending IRQs visible to Lo: those that can fire during its
	// execution.
	for _, q := range s.irqs {
		if !m.Cfg.PartitionIRQ || q.owner == lo {
			vis = append(vis, q.fireAt, uint64(q.owner))
		}
	}
	return vis
}
