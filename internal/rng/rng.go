// Package rng provides a small deterministic pseudo-random number
// generator (splitmix64) used throughout the simulator and the prover.
//
// Determinism is load-bearing: two-run noninterference checking compares
// executions that must differ only in the secret inputs, so every other
// source of variation — including randomised workloads and sampled time
// functions — must be reproducible from an explicit seed.
package rng

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New to make seeding explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(make([]int, n))
}

// PermInto fills p with a pseudo-random permutation of [0, len(p)) and
// returns it. It consumes exactly the random stream Perm consumes for the
// same length, so callers can swap between the two without perturbing any
// downstream draw — the allocation-free variant for hot paths that reuse
// a scratch buffer.
func (r *RNG) PermInto(p []int) []int {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new generator whose seed is derived from r's stream,
// for decorrelated sub-streams.
func (r *RNG) Split() *RNG { return New(r.Uint64() ^ 0xd1b54a32d192ed03) }

// Hash64 mixes x through the splitmix64 finaliser; it is a convenient
// deterministic 64-bit hash for building "unspecified deterministic
// functions" in the abstract model.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashCombine folds y into x deterministically.
func HashCombine(x, y uint64) uint64 {
	return Hash64(x ^ (y + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)))
}
