package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPermShuffles(t *testing.T) {
	p := New(5).Perm(64)
	inPlace := 0
	for i, v := range p {
		if i == v {
			inPlace++
		}
	}
	if inPlace > 16 {
		t.Fatalf("%d/64 fixed points: barely shuffled", inPlace)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := New(9)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream correlates with parent")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(0x1234)
	flipped := Hash64(0x1235)
	diff := base ^ flipped
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 || bits > 48 {
		t.Fatalf("avalanche too weak: %d differing bits", bits)
	}
}

func TestHashCombineOrderSensitive(t *testing.T) {
	if HashCombine(1, 2) == HashCombine(2, 1) {
		t.Fatal("combine must be order-sensitive")
	}
}

func TestBoolRoughlyBalanced(t *testing.T) {
	r := New(11)
	trues := 0
	for i := 0; i < 10_000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Fatalf("Bool imbalanced: %d/10000", trues)
	}
}
