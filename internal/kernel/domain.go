package kernel

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/tlb"
)

// Domain is a security domain at run time: an address space, a kernel
// image (shared or clone), an IRQ allocation, and threads.
type Domain struct {
	// ID is the domain's identifier (index into System.domains).
	ID hw.DomainID
	// Spec is the designer-provided policy.
	Spec core.DomainSpec
	// ASID tags this domain's TLB entries.
	ASID tlb.ASID
	// PT is the domain's page table.
	PT *mem.PageTable
	// Image is the kernel image this domain traps into.
	Image *KernelImage
	// Threads are the domain's threads, in spawn order.
	Threads []*Thread

	codePages, heapPages int
}

// CodeBase returns the first virtual address of the domain's code.
func (d *Domain) CodeBase() hw.Addr { return hw.Addr(UserCodeVPN << hw.PageBits) }

// HeapBase returns the first virtual address of the domain's heap.
func (d *Domain) HeapBase() hw.Addr { return hw.Addr(UserHeapVPN << hw.PageBits) }

// HeapBytes returns the size of the heap in bytes.
func (d *Domain) HeapBytes() uint64 { return uint64(d.heapPages) * hw.PageSize }

// HeapAddr returns the virtual address of byte offset off within the
// heap. It panics if off is out of range — attack programs index their
// probe buffers with it and an out-of-range index is a harness bug, not
// a runtime condition.
func (d *Domain) HeapAddr(off uint64) hw.Addr {
	if off >= d.HeapBytes() {
		panic(fmt.Sprintf("kernel: heap offset %#x out of range (%d pages)", off, d.heapPages))
	}
	return d.HeapBase() + hw.Addr(off)
}

// CodeAddr returns the virtual address of byte offset off within the
// domain's code region, wrapped to its size.
func (d *Domain) CodeAddr(off uint64) hw.Addr {
	return d.CodeBase() + hw.Addr(off%uint64(d.codePages*hw.PageSize))
}

// buildDomain allocates a domain's memory and page table under the
// protection configuration: coloured frames when colouring is armed, a
// kernel clone when cloning is armed, the shared image otherwise.
func buildDomain(
	id hw.DomainID,
	spec core.DomainSpec,
	cfg core.Config,
	alloc *mem.Allocator,
	shared *KernelImage,
	globalPFN uint64,
) (*Domain, error) {
	var colors mem.ColorSet
	if cfg.ColorUserMemory {
		colors = spec.Colors
	}
	d := &Domain{
		ID:        id,
		Spec:      spec,
		ASID:      tlb.ASIDForDomain(id),
		PT:        mem.NewPageTable(id),
		codePages: spec.CodePages,
		heapPages: spec.HeapPages,
	}

	// User code and heap.
	codePFNs, err := alloc.AllocN(id, colors, spec.CodePages)
	if err != nil {
		return nil, fmt.Errorf("kernel: domain %s code: %w", spec.Name, err)
	}
	for i, pfn := range codePFNs {
		d.PT.Map(UserCodeVPN+uint64(i), mem.PTE{PFN: pfn})
	}
	heapPFNs, err := alloc.AllocN(id, colors, spec.HeapPages)
	if err != nil {
		return nil, fmt.Errorf("kernel: domain %s heap: %w", spec.Name, err)
	}
	for i, pfn := range heapPFNs {
		d.PT.Map(UserHeapVPN+uint64(i), mem.PTE{PFN: pfn, Writable: true})
	}

	// Kernel image: clone into the domain's colours, or map the shared
	// image. Clone mappings are per-ASID; shared-image mappings are
	// global TLB entries, exactly the read-only sharing that creates
	// the kernel-text channel (§4.2).
	if cfg.CloneKernel {
		img, err := buildKernelImage(alloc, id, colors)
		if err != nil {
			return nil, err
		}
		d.Image = img
		for i, pfn := range img.TextPFNs {
			d.PT.Map(KernelTextVPN+uint64(i), mem.PTE{PFN: pfn})
		}
	} else {
		d.Image = shared
		for i, pfn := range shared.TextPFNs {
			d.PT.Map(KernelTextVPN+uint64(i), mem.PTE{PFN: pfn, Global: true})
		}
	}

	// Kernel global data: one shared page, mapped global, accessed
	// deterministically on every entry (§5.2 Case 2a).
	d.PT.Map(KernelGlobalVPN, mem.PTE{PFN: globalPFN, Writable: true, Global: true})

	// Per-domain kernel data.
	kdPFN, err := alloc.Alloc(id, colors)
	if err != nil {
		return nil, fmt.Errorf("kernel: domain %s kernel data: %w", spec.Name, err)
	}
	d.PT.Map(KernelDomainDataVPN, mem.PTE{PFN: kdPFN, Writable: true})

	return d, nil
}

// ownsIRQ reports whether the domain owns interrupt line.
func (d *Domain) ownsIRQ(line int) bool {
	for _, l := range d.Spec.IRQLines {
		if l == line {
			return true
		}
	}
	return false
}
