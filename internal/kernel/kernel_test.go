package kernel

import (
	"strings"
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/trace"
)

// uniSys builds a uniprocessor system with two domains, Hi (0) and Lo
// (1), round-robin on CPU 0.
func uniSys(t *testing.T, prot core.Config, eps []EndpointSpec) *System {
	t.Helper()
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	scfg := SystemConfig{
		Platform:   pcfg,
		Protection: prot,
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 20000, PadCycles: 8000, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 16},
			{Name: "Lo", SliceCycles: 20000, PadCycles: 8000, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		Endpoints:   eps,
		EnableTrace: true,
		MaxCycles:   20_000_000,
	}
	sys, err := NewSystem(scfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mustSpawn(t *testing.T, s *System, dom int, name string, cpu int, fn func(*UserCtx)) *Thread {
	t.Helper()
	th, err := s.Spawn(dom, name, cpu, fn)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func mustRun(t *testing.T, s *System) Report {
	t.Helper()
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Errors {
		t.Errorf("thread error: %v", e)
	}
	return rep
}

func TestSingleThreadComputeRuns(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "worker", 0, func(c *UserCtx) {
		for i := 0; i < 10; i++ {
			c.Compute(100)
		}
	})
	rep := mustRun(t, s)
	if rep.ThreadCycles["worker"] == 0 {
		t.Fatal("worker consumed no cycles")
	}
	if rep.Deadlocked || rep.HitMaxCycles {
		t.Fatalf("bad termination: %+v", rep)
	}
}

func TestReadWriteLatenciesReflectCacheState(t *testing.T) {
	s := uniSys(t, core.NoProtection(), nil)
	var cold, hot uint64
	mustSpawn(t, s, 0, "w", 0, func(c *UserCtx) {
		cold = c.ReadHeap(0)
		hot = c.ReadHeap(0)
	})
	mustRun(t, s)
	if hot >= cold {
		t.Fatalf("hot=%d cold=%d: cache has no effect", hot, cold)
	}
}

func TestDomainSwitchesHappen(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "hi", 0, func(c *UserCtx) {
		for i := 0; i < 2000; i++ {
			c.Compute(50)
		}
	})
	mustSpawn(t, s, 1, "lo", 0, func(c *UserCtx) {
		for i := 0; i < 2000; i++ {
			c.Compute(50)
		}
	})
	rep := mustRun(t, s)
	if rep.Switches < 4 {
		t.Fatalf("only %d switches", rep.Switches)
	}
	if len(s.Trace().Filter(trace.SwitchEnd)) != rep.Switches {
		t.Fatal("trace switch count mismatch")
	}
}

// TestPaddedSwitchConstantDispatch is the heart of §4.2: with flush+pad,
// the time from a domain's slice start to the next domain's dispatch is a
// constant, independent of how many lines the first domain dirtied.
func TestPaddedSwitchConstantDispatch(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "trojan", 0, func(c *UserCtx) {
		// Vary dirty-line count wildly across slices.
		for round := 0; round < 12; round++ {
			n := uint64(1 + (round%4)*120)
			for i := uint64(0); i < n; i++ {
				c.WriteHeap((i * 64) % c.HeapBytes())
			}
			c.Compute(3000)
		}
	})
	mustSpawn(t, s, 1, "spy", 0, func(c *UserCtx) {
		for i := 0; i < 600; i++ {
			c.Compute(100)
		}
	})
	mustRun(t, s)
	var deltas []uint64
	for _, e := range s.Trace().Filter(trace.SwitchEnd) {
		if e.From == 0 { // switches away from the trojan
			deltas = append(deltas, e.Cycle-e.AuxCycle)
		}
	}
	if len(deltas) < 3 {
		t.Fatalf("too few switches: %d", len(deltas))
	}
	// The first switch is allowed to differ: the incoming domain's own
	// kernel-exit path is LLC-cold on its very first dispatch, which
	// depends only on the incoming domain's own history (never on the
	// trojan's). All steady-state deltas must be identical.
	steady := deltas[1:]
	for _, d := range steady[1:] {
		if d != steady[0] {
			t.Fatalf("dispatch deltas vary under full protection: %v", deltas)
		}
	}
	if len(s.Trace().Filter(trace.PadOverrun)) != 0 {
		t.Fatal("pad overran; PadCycles too small for workload")
	}
}

// TestUnpaddedSwitchLeaksDirtyCount is the ablation: flush without pad
// makes the dispatch delta depend on the trojan's dirty lines.
func TestUnpaddedSwitchLeaksDirtyCount(t *testing.T) {
	cfg := core.FullProtection()
	cfg.PadSwitch = false
	s := uniSys(t, cfg, nil)
	mustSpawn(t, s, 0, "trojan", 0, func(c *UserCtx) {
		for round := 0; round < 12; round++ {
			n := uint64(1 + (round%2)*400)
			for i := uint64(0); i < n; i++ {
				c.WriteHeap((i * 64) % c.HeapBytes())
			}
			c.Compute(2000)
		}
	})
	mustSpawn(t, s, 1, "spy", 0, func(c *UserCtx) {
		for i := 0; i < 600; i++ {
			c.Compute(100)
		}
	})
	mustRun(t, s)
	seen := make(map[uint64]bool)
	for _, e := range s.Trace().Filter(trace.SwitchEnd) {
		if e.From == 0 {
			seen[e.Cycle-e.AuxCycle] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("unpadded dispatch deltas do not vary: %v", seen)
	}
}

// TestEarlyYieldHiddenByPadding: a domain that gives up its slice early
// must not move the next domain's start time when padding is armed.
func TestEarlyYieldHiddenByPadding(t *testing.T) {
	// ops is how many small compute operations the worker performs
	// before exiting — i.e. how early it gives up its first slice.
	dispatchDeltas := func(prot core.Config, ops int) []uint64 {
		s := uniSys(t, prot, nil)
		mustSpawn(t, s, 0, "worker", 0, func(c *UserCtx) {
			for i := 0; i < ops; i++ {
				c.Compute(150)
			}
		})
		mustSpawn(t, s, 1, "other", 0, func(c *UserCtx) {
			for i := 0; i < 200; i++ {
				c.Compute(100)
			}
		})
		mustRun(t, s)
		var out []uint64
		for _, e := range s.Trace().Filter(trace.SwitchEnd) {
			if e.From == 0 {
				out = append(out, e.Cycle-e.AuxCycle)
			}
		}
		return out
	}
	// Under protection, a worker that exits almost immediately and one
	// that computes most of its slice yield identical switch timing
	// (comparing the first switch of each run: identical cold state).
	short := dispatchDeltas(core.FullProtection(), 2)
	long := dispatchDeltas(core.FullProtection(), 90)
	if len(short) == 0 || len(long) == 0 {
		t.Fatal("no switches observed")
	}
	if short[0] != long[0] {
		t.Fatalf("padded dispatch delta depends on work: %d vs %d", short[0], long[0])
	}
	// Without protection the early exit is visible.
	shortU := dispatchDeltas(core.NoProtection(), 2)
	longU := dispatchDeltas(core.NoProtection(), 90)
	if shortU[0] == longU[0] {
		t.Fatalf("unprotected dispatch delta should depend on work: %d vs %d", shortU[0], longU[0])
	}
}

func TestFlushOnSwitchColdMissAfterSwitch(t *testing.T) {
	readAfterSwitch := func(prot core.Config) uint64 {
		s := uniSys(t, prot, nil)
		var second uint64
		mustSpawn(t, s, 1, "spy", 0, func(c *UserCtx) {
			c.ReadHeap(0) // warm
			// Burn the rest of the slice so the next read happens
			// after Hi's slice (and a domain switch).
			for i := 0; i < 40; i++ {
				c.Compute(1000)
			}
			second = c.ReadHeap(0)
		})
		mustSpawn(t, s, 0, "hi", 0, func(c *UserCtx) {
			for i := 0; i < 40; i++ {
				c.Compute(1000)
			}
		})
		mustRun(t, s)
		return second
	}
	flushed := readAfterSwitch(core.FullProtection())
	unflushed := readAfterSwitch(core.NoProtection())
	if flushed <= unflushed {
		t.Fatalf("flush must cold-miss the spy's own line: flushed=%d unflushed=%d", flushed, unflushed)
	}
}

func TestCrossDomainIPCMinDelivery(t *testing.T) {
	eps := []EndpointSpec{{ID: 0, MinDelivery: 15000}}
	s := uniSys(t, core.FullProtection(), eps)
	mustSpawn(t, s, 0, "crypto", 0, func(c *UserCtx) {
		c.Compute(2500) // fast, secret-dependent work finishes early
		c.Send(0, 42)
	})
	var got uint64
	mustSpawn(t, s, 1, "net", 0, func(c *UserCtx) {
		v, _ := c.Recv(0)
		got = v
	})
	mustRun(t, s)
	if got != 42 {
		t.Fatalf("payload = %d", got)
	}
	deliveries := s.Trace().Filter(trace.IPCDeliver)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	d := deliveries[0]
	// Delivery must be gated to sender slice start + MinDelivery, not
	// the (early) send time.
	if d.Cycle-d.AuxCycle == 0 {
		t.Fatal("delivery not delayed despite MinDelivery")
	}
	if len(s.Trace().Filter(trace.PadOverrun)) != 0 {
		t.Fatal("unexpected overrun")
	}
}

func TestIPCMinDeliveryOverrunDetected(t *testing.T) {
	eps := []EndpointSpec{{ID: 0, MinDelivery: 100}} // absurdly tight
	s := uniSys(t, core.FullProtection(), eps)
	mustSpawn(t, s, 0, "crypto", 0, func(c *UserCtx) {
		c.Compute(5000)
		c.Send(0, 1)
	})
	mustSpawn(t, s, 1, "net", 0, func(c *UserCtx) {
		c.Recv(0)
	})
	mustRun(t, s)
	if len(s.Trace().Filter(trace.PadOverrun)) == 0 {
		t.Fatal("overrun of MinDelivery must be recorded")
	}
}

func TestIntraDomainIPCNotGated(t *testing.T) {
	eps := []EndpointSpec{{ID: 0, MinDelivery: 15000}}
	s := uniSys(t, core.FullProtection(), eps)
	mustSpawn(t, s, 0, "a", 0, func(c *UserCtx) {
		c.Send(0, 7)
	})
	mustSpawn(t, s, 0, "b", 0, func(c *UserCtx) {
		c.Recv(0)
	})
	mustRun(t, s)
	d := s.Trace().Filter(trace.IPCDeliver)
	if len(d) != 1 {
		t.Fatalf("deliveries = %d", len(d))
	}
	if d[0].Latency != 0 {
		t.Fatalf("intra-domain delivery delayed by %d", d[0].Latency)
	}
}

func TestIRQPartitioningDefersDelivery(t *testing.T) {
	deliveredDuring := func(prot core.Config) hw.DomainID {
		s := uniSys(t, prot, nil)
		mustSpawn(t, s, 0, "trojan", 0, func(c *UserCtx) {
			// Fire the completion IRQ in the middle of Lo's next
			// slice.
			c.StartIO(0, 30000)
			for i := 0; i < 100; i++ {
				c.Compute(500)
			}
		})
		mustSpawn(t, s, 1, "lo", 0, func(c *UserCtx) {
			for i := 0; i < 100; i++ {
				c.Compute(500)
			}
		})
		mustRun(t, s)
		irqs := s.Trace().Filter(trace.IRQDeliver)
		if len(irqs) == 0 {
			t.Fatal("IRQ never delivered")
		}
		return irqs[0].To
	}
	if got := deliveredDuring(core.NoProtection()); got != 1 {
		t.Fatalf("unpartitioned IRQ delivered to domain %d, want 1 (Lo interrupted)", got)
	}
	if got := deliveredDuring(core.FullProtection()); got != 0 {
		t.Fatalf("partitioned IRQ delivered to domain %d, want 0 (deferred to owner)", got)
	}
}

func TestStartIOOnForeignLineRejected(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "bad", 0, func(c *UserCtx) {
		c.StartIO(1, 100) // line 1 belongs to Lo
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 || !strings.Contains(rep.Errors[0].Error(), "does not own IRQ") {
		t.Fatalf("errors = %v", rep.Errors)
	}
}

func TestPageFaultReportedAsThreadError(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "fault", 0, func(c *UserCtx) {
		c.Read(hw.Addr(0xdead << hw.PageBits))
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 || !strings.Contains(rep.Errors[0].Error(), "page fault") {
		t.Fatalf("errors = %v", rep.Errors)
	}
}

func TestLegacyFaultDeliveredInBand(t *testing.T) {
	// A fault reaches a legacy thread as a panic out of the faulting
	// call, at fault time — so the function's own recovery can catch
	// it and keep executing, exactly as before the Program refactor.
	s := uniSys(t, core.FullProtection(), nil)
	recovered := false
	continued := false
	mustSpawn(t, s, 0, "recoverer", 0, func(c *UserCtx) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					recovered = true
				}
			}()
			c.Read(hw.Addr(0xdead << hw.PageBits))
		}()
		c.Compute(10)
		continued = true
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !recovered || !continued {
		t.Fatalf("recovered=%v continued=%v, want both", recovered, continued)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("a recovered fault must not be reported: %v", rep.Errors)
	}
}

// faultProgram reads an unmapped page; a direct program cannot recover
// a fault, so the engine must kill the thread and report it.
type faultProgram struct{ stepped bool }

func (p *faultProgram) Step(m *Machine) Status {
	if p.stepped {
		return Done
	}
	p.stepped = true
	return m.Read(hw.Addr(0xdead << hw.PageBits))
}

func TestDirectFaultReportedAsThreadError(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	if _, err := s.SpawnProgram(0, "fault", 0, &faultProgram{}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 || !strings.Contains(rep.Errors[0].Error(), "page fault") {
		t.Fatalf("errors = %v", rep.Errors)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := uniSys(t, core.FullProtection(), []EndpointSpec{{ID: 0}})
	mustSpawn(t, s, 0, "waiter", 0, func(c *UserCtx) {
		c.Recv(0) // nobody will ever send
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deadlocked {
		t.Fatalf("deadlock not detected: %+v", rep)
	}
}

func TestYieldRoundRobinsWithinDomain(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	var order []string
	mustSpawn(t, s, 0, "a", 0, func(c *UserCtx) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			c.Yield()
		}
	})
	mustSpawn(t, s, 0, "b", 0, func(c *UserCtx) {
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			c.Yield()
		}
	})
	mustRun(t, s)
	want := "ababab"
	var got strings.Builder
	for _, o := range order {
		got.WriteString(o)
	}
	if got.String() != want {
		t.Fatalf("yield order %q, want %q", got.String(), want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Report, int, uint64) {
		s := uniSys(t, core.FullProtection(), []EndpointSpec{{ID: 0, MinDelivery: 15000}})
		mustSpawn(t, s, 0, "hi", 0, func(c *UserCtx) {
			for i := uint64(0); i < 300; i++ {
				c.WriteHeap((i * 128) % c.HeapBytes())
				c.Branch(i%512, i%3 == 0)
			}
			c.Send(0, 99)
		})
		mustSpawn(t, s, 1, "lo", 0, func(c *UserCtx) {
			for i := uint64(0); i < 300; i++ {
				c.ReadHeap((i * 64) % c.HeapBytes())
			}
			c.Recv(0)
		})
		rep := mustRun(t, s)
		last := uint64(0)
		if n := s.Trace().Len(); n > 0 {
			last = s.Trace().Events()[n-1].Cycle
		}
		return rep, s.Trace().Len(), last
	}
	r1, n1, l1 := run()
	r2, n2, l2 := run()
	if r1.CPUCycles[0] != r2.CPUCycles[0] || n1 != n2 || l1 != l2 {
		t.Fatalf("nondeterministic: cycles %d vs %d, events %d vs %d, last %d vs %d",
			r1.CPUCycles[0], r2.CPUCycles[0], n1, n2, l1, l2)
	}
}

func TestSpawnValidation(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	if _, err := s.Spawn(9, "x", 0, func(*UserCtx) {}); err == nil {
		t.Error("unknown domain accepted")
	}
	if _, err := s.Spawn(0, "x", 5, func(*UserCtx) {}); err == nil {
		t.Error("unknown CPU accepted")
	}
	mustSpawn(t, s, 0, "ok", 0, func(*UserCtx) {})
	mustRun(t, s)
	if _, err := s.Spawn(0, "late", 0, func(*UserCtx) {}); err == nil {
		t.Error("Spawn after Run accepted")
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	base := SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: 1000, Colors: mem.ColorRange(1, 2), CodePages: 1, HeapPages: 1},
			{Name: "B", SliceCycles: 1000, Colors: mem.ColorRange(2, 3), CodePages: 1, HeapPages: 1},
		},
		Schedule: [][]int{{0, 1}},
	}
	if _, err := NewSystem(base); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}

	overlap := base
	overlap.Domains = []core.DomainSpec{
		{Name: "A", SliceCycles: 1000, Colors: mem.ColorRange(1, 3), CodePages: 1, HeapPages: 1},
		{Name: "B", SliceCycles: 1000, Colors: mem.ColorRange(2, 4), CodePages: 1, HeapPages: 1},
	}
	if _, err := NewSystem(overlap); err == nil {
		t.Error("overlapping colours accepted under colouring")
	}

	reserved := base
	reserved.Domains = []core.DomainSpec{
		{Name: "A", SliceCycles: 1000, Colors: mem.ColorRange(0, 2), CodePages: 1, HeapPages: 1},
		{Name: "B", SliceCycles: 1000, Colors: mem.ColorRange(2, 3), CodePages: 1, HeapPages: 1},
	}
	if _, err := NewSystem(reserved); err == nil {
		t.Error("kernel-reserved colour accepted for a user domain")
	}

	dupIRQ := base
	dupIRQ.Domains = []core.DomainSpec{
		{Name: "A", SliceCycles: 1000, Colors: mem.ColorRange(1, 2), IRQLines: []int{0}, CodePages: 1, HeapPages: 1},
		{Name: "B", SliceCycles: 1000, Colors: mem.ColorRange(2, 3), IRQLines: []int{0}, CodePages: 1, HeapPages: 1},
	}
	if _, err := NewSystem(dupIRQ); err == nil {
		t.Error("duplicate IRQ ownership accepted")
	}

	badSched := base
	badSched.Schedule = [][]int{{0, 7}}
	if _, err := NewSystem(badSched); err == nil {
		t.Error("schedule with unknown domain accepted")
	}

	badEP := base
	badEP.Endpoints = []EndpointSpec{{ID: 1}, {ID: 1}}
	if _, err := NewSystem(badEP); err == nil {
		t.Error("duplicate endpoint accepted")
	}
}

func TestSMTSharingPolicyValidation(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pcfg.SMTWays = 2
	mk := func(prot core.Config, sched [][]int) error {
		_, err := NewSystem(SystemConfig{
			Platform:   pcfg,
			Protection: prot,
			Domains: []core.DomainSpec{
				{Name: "A", SliceCycles: 1000, Colors: mem.ColorRange(1, 2), CodePages: 1, HeapPages: 1},
				{Name: "B", SliceCycles: 1000, Colors: mem.ColorRange(2, 3), CodePages: 1, HeapPages: 1},
			},
			Schedule: sched,
		})
		return err
	}
	// Policy armed: different sibling schedules rejected.
	if err := mk(core.FullProtection(), [][]int{{0}, {1}}); err == nil {
		t.Error("cross-domain SMT schedule accepted under DisallowSMTSharing")
	}
	// Identical schedules fine.
	if err := mk(core.FullProtection(), [][]int{{0, 1}, {0, 1}}); err != nil {
		t.Errorf("co-scheduled siblings rejected: %v", err)
	}
	// Policy disarmed: insecure placement allowed (the T7 attack).
	insecure := core.NoProtection()
	if err := mk(insecure, [][]int{{0}, {1}}); err != nil {
		t.Errorf("insecure SMT placement rejected without policy: %v", err)
	}
}

func TestKernelEntryTouchesKernelText(t *testing.T) {
	// Syscall latency must depend on kernel-text cache state: a first
	// syscall (cold kernel text) is slower than an immediately
	// repeated one (warm).
	s := uniSys(t, core.NoProtection(), []EndpointSpec{{ID: 0}})
	var first, second uint64
	mustSpawn(t, s, 0, "a", 0, func(c *UserCtx) {
		t0 := c.Now()
		c.StartIO(0, 1_000_000_000) // harmless far-future IO as a syscall probe
		t1 := c.Now()
		c.StartIO(0, 1_000_000_000)
		t2 := c.Now()
		first, second = t1-t0, t2-t1
	})
	mustRun(t, s)
	if second >= first {
		t.Fatalf("kernel text caching invisible: first=%d second=%d", first, second)
	}
}

func TestThreadCyclesAccounted(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "big", 0, func(c *UserCtx) {
		for i := 0; i < 100; i++ {
			c.Compute(1000)
		}
	})
	mustSpawn(t, s, 0, "small", 0, func(c *UserCtx) {
		c.Compute(10)
	})
	rep := mustRun(t, s)
	if rep.ThreadCycles["big"] <= rep.ThreadCycles["small"] {
		t.Fatalf("cycle accounting wrong: %v", rep.ThreadCycles)
	}
}
