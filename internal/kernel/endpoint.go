package kernel

import (
	"fmt"

	"timeprot/internal/trace"
)

// endpoint is a synchronous IPC rendezvous point with an optional
// minimum-delivery-time attribute (§3.2; Cock et al. [2014]).
type endpoint struct {
	spec EndpointSpec
	// sendQ holds senders blocked waiting for a receiver; their
	// payload and timing context are recorded on the Thread.
	sendQ []*Thread
	// recvQ holds receivers blocked waiting for a message.
	recvQ []*Thread
	// lastDeliver is the previous cross-domain delivery time; with
	// MinDelivery armed, deliveries form a fixed cadence:
	// each at least MinDelivery after the previous one.
	lastDeliver uint64
	// delivered counts cross-domain deliveries.
	delivered uint64
}

// deliverAt computes when a message sent at sendTime (from a slice that
// started at sliceStart) becomes visible to a cross-domain receiver.
//
// With minimum-delivery armed, deliveries on the endpoint form a fixed
// cadence: the first is gated to the sender's slice start plus
// MinDelivery, and each subsequent one to the previous delivery plus
// MinDelivery. As long as the designer chose MinDelivery at or above the
// sender's worst-case inter-message computation time, delivery times are
// a deterministic schedule carrying no information about the sender's
// secret-dependent execution (§3.2; the Cock et al. [2014] model of a
// synchronous channel that "switches to the receiver only once the
// sender domain has executed for a pre-determined minimum amount of
// time"). A send arriving after its deadline is an overrun: the kernel
// cannot rewind time, so it delivers immediately, resynchronises the
// cadence, and reports the policy violation for the checker to flag.
func (e *endpoint) deliverAt(sys *System, sendTime, sliceStart uint64) (at uint64, overrun bool) {
	if !sys.cfg.MinDeliveryIPC || e.spec.MinDelivery == 0 {
		return sendTime, false
	}
	target := sliceStart + e.spec.MinDelivery
	if e.delivered > 0 {
		target = e.lastDeliver + e.spec.MinDelivery
	}
	if sendTime <= target {
		return target, false
	}
	return sendTime, true
}

// ipcSend processes a send of val on endpoint ep by thread t at time now.
// It returns done=true with the sender's completion handled if the
// rendezvous completed, or done=false if the sender blocked.
func (s *System) ipcSend(st *cpuState, t *Thread, ep int, val uint64, now uint64) (done bool) {
	e, err := s.endpointByID(ep)
	if err != nil {
		panic(err) // validated by execOp before kernel entry
	}
	if len(e.recvQ) > 0 {
		r := e.recvQ[0]
		e.recvQ = e.recvQ[1:]
		// The sender is the currently executing thread and completes
		// synchronously; only the receiver's wake-up is scheduled.
		s.completeDelivery(e, t, r, val, now, st.sliceStart)
		return true
	}
	// No receiver: block the sender, remembering the timing context
	// needed for the delivery rule when the receiver arrives.
	t.state = threadBlocked
	t.sendPayload = val
	t.sendTime = now
	t.sendSliceStart = st.sliceStart
	e.sendQ = append(e.sendQ, t)
	return false
}

// ipcRecv processes a receive on endpoint ep by thread t at time now.
func (s *System) ipcRecv(st *cpuState, t *Thread, ep int, now uint64) (done bool) {
	e, err := s.endpointByID(ep)
	if err != nil {
		panic(err) // validated by execOp before kernel entry
	}
	t.state = threadBlocked
	if len(e.sendQ) > 0 {
		snd := e.sendQ[0]
		e.sendQ = e.sendQ[1:]
		s.completeDelivery(e, snd, t, snd.sendPayload, snd.sendTime, snd.sendSliceStart)
		// The queued sender unblocks: its send completed back when it
		// was queued; it resumes when its own domain next runs.
		snd.state = threadReady
		snd.wakeAt = snd.sendTime
		snd.pendingResp = &response{}
		return false // receiver still waits until its wakeAt
	}
	e.recvQ = append(e.recvQ, t)
	return false
}

// completeDelivery finishes a rendezvous: sender snd's message (sent at
// sendTime within a slice starting at sendSliceStart) is delivered to
// receiver rcv, who becomes Ready gated by the delivery time. The
// SENDER's scheduling state is the caller's responsibility: a sender
// completing its own Send synchronously must not be touched, while a
// queued sender must be woken by the caller.
func (s *System) completeDelivery(e *endpoint, snd, rcv *Thread, val uint64, sendTime, sendSliceStart uint64) {
	at, overrun := sendTime, false
	if snd.Domain.ID != rcv.Domain.ID {
		// The delivery rule protects cross-domain flows only;
		// intra-domain information flow is unrestricted (§2).
		at, overrun = e.deliverAt(s, sendTime, sendSliceStart)
		e.lastDeliver = at
		e.delivered++
	}
	if overrun {
		s.log.Append(trace.Event{
			Kind: trace.PadOverrun, CPU: rcv.CPU, Cycle: sendTime,
			From: snd.Domain.ID, To: rcv.Domain.ID, Aux: e.spec.ID,
			AuxCycle: sendSliceStart + e.spec.MinDelivery,
		})
	}
	s.log.Append(trace.Event{
		Kind: trace.IPCDeliver, CPU: rcv.CPU, Cycle: at,
		From: snd.Domain.ID, To: rcv.Domain.ID, Aux: e.spec.ID,
		AuxCycle: sendTime, Latency: at - sendTime,
	})

	// Receiver: sees the payload, but not before the delivery time.
	rcv.state = threadReady
	rcv.wakeAt = at
	rcv.pendingResp = &response{val: val}
}

func (s *System) endpointByID(id int) (*endpoint, error) {
	e, ok := s.endpoints[id]
	if !ok {
		return nil, fmt.Errorf("kernel: no such endpoint %d", id)
	}
	return e, nil
}
