//go:build race

package kernel

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation distorts host-timing comparisons.
const raceEnabled = true
