package kernel

import (
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/trace"
)

// TestThreeDomainRoundRobin: the Fig.-1 pipeline shape — three domains
// sharing one CPU in fixed rotation, messages flowing across two
// endpoints, everything protected.
func TestThreeDomainRoundRobin(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "Web", SliceCycles: 20_000, PadCycles: 8_000, Colors: mem.ColorRange(1, 20), CodePages: 2, HeapPages: 4},
			{Name: "Crypto", SliceCycles: 20_000, PadCycles: 8_000, Colors: mem.ColorRange(20, 40), CodePages: 2, HeapPages: 4},
			{Name: "Net", SliceCycles: 20_000, PadCycles: 8_000, Colors: mem.ColorRange(40, 64), CodePages: 2, HeapPages: 4},
		},
		Schedule:    [][]int{{0, 1, 2}},
		Endpoints:   []EndpointSpec{{ID: 0, MinDelivery: 100_000}, {ID: 1, MinDelivery: 100_000}},
		EnableTrace: true,
		MaxCycles:   80_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 5
	mustSpawn(t, sys, 0, "web", 0, func(c *UserCtx) {
		for i := uint64(0); i < msgs; i++ {
			c.Compute(2_000)
			c.Send(0, 100+i)
		}
	})
	mustSpawn(t, sys, 1, "crypto", 0, func(c *UserCtx) {
		for i := 0; i < msgs; i++ {
			v, _ := c.Recv(0)
			c.Compute(4_000) // "encrypt"
			c.Send(1, v+1000)
		}
	})
	var got []uint64
	mustSpawn(t, sys, 2, "net", 0, func(c *UserCtx) {
		for i := 0; i < msgs; i++ {
			v, _ := c.Recv(1)
			got = append(got, v)
		}
	})
	rep := mustRun(t, sys)
	if rep.Deadlocked || rep.HitMaxCycles {
		t.Fatalf("bad termination: %+v", rep)
	}
	for i, v := range got {
		if v != uint64(1100+i) {
			t.Fatalf("pipeline corrupted: got %v", got)
		}
	}
	// All three domains must appear as slice starts.
	seen := map[int]bool{}
	for _, e := range sys.Trace().Filter(trace.SliceStart) {
		seen[int(e.To)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("domains scheduled: %v", seen)
	}
}

// TestCrossCPUIPC: sender and receiver on different cores rendezvous
// correctly with deterministic delivery.
func TestCrossCPUIPC(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 2
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 30_000, PadCycles: 10_000, Colors: mem.ColorRange(1, 32), CodePages: 2, HeapPages: 4},
			{Name: "Lo", SliceCycles: 30_000, PadCycles: 10_000, Colors: mem.ColorRange(32, 64), CodePages: 2, HeapPages: 4},
		},
		Schedule:  [][]int{{0}, {1}}, // Hi on CPU 0, Lo on CPU 1
		Endpoints: []EndpointSpec{{ID: 0, MinDelivery: 50_000}},
		MaxCycles: 60_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSpawn(t, sys, 0, "sender", 0, func(c *UserCtx) {
		for i := uint64(0); i < 5; i++ {
			c.Compute(1_000)
			c.Send(0, i)
		}
	})
	var got []uint64
	var times []uint64
	mustSpawn(t, sys, 1, "receiver", 1, func(c *UserCtx) {
		for i := 0; i < 5; i++ {
			v, at := c.Recv(0)
			got = append(got, v)
			times = append(times, at)
		}
	})
	rep := mustRun(t, sys)
	if rep.Deadlocked {
		t.Fatal("cross-CPU IPC deadlocked")
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("payloads out of order: %v", got)
		}
	}
	// Deliveries obey the cadence: at least MinDelivery apart.
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < 50_000 {
			t.Fatalf("cadence violated: %v", times)
		}
	}
}

// TestSMTCoscheduledRuntime: with the SMT-sharing ban and identical
// sibling schedules, two threads of the SAME domain run concurrently on
// the siblings and the system completes cleanly.
func TestSMTCoscheduledRuntime(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pcfg.SMTWays = 2
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 30_000, PadCycles: 12_000, Colors: mem.ColorRange(1, 32), CodePages: 2, HeapPages: 8},
			{Name: "Lo", SliceCycles: 30_000, PadCycles: 12_000, Colors: mem.ColorRange(32, 64), CodePages: 2, HeapPages: 8},
		},
		Schedule:  [][]int{{0, 1}, {0, 1}},
		MaxCycles: 120_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 2; cpu++ {
		for d := 0; d < 2; d++ {
			name := string(rune('a'+d)) + string(rune('0'+cpu))
			mustSpawn(t, sys, d, name, cpu, func(c *UserCtx) {
				for i := uint64(0); i < 300; i++ {
					c.ReadHeap((i * 128) % c.HeapBytes())
				}
			})
		}
	}
	rep := mustRun(t, sys)
	if rep.Deadlocked || rep.HitMaxCycles {
		t.Fatalf("bad termination: %+v", rep)
	}
	// SMT siblings share a clock: both logical CPUs report it.
	if rep.CPUCycles[0] != rep.CPUCycles[1] {
		t.Fatalf("sibling clocks differ: %v", rep.CPUCycles)
	}
}

// TestEpochAdvancesPerSlice: Epoch counts the thread's domain's slices.
func TestEpochAdvancesPerSlice(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	var epochs []uint64
	mustSpawn(t, s, 0, "watcher", 0, func(c *UserCtx) {
		last := c.Epoch()
		epochs = append(epochs, last)
		for len(epochs) < 4 {
			if e := c.Epoch(); e != last {
				epochs = append(epochs, e)
				last = e
			}
			c.Compute(500)
		}
	})
	mustSpawn(t, s, 1, "other", 0, func(c *UserCtx) {
		for i := 0; i < 400; i++ {
			c.Compute(500)
		}
	})
	mustRun(t, s)
	for i := 1; i < len(epochs); i++ {
		if epochs[i] != epochs[i-1]+1 {
			t.Fatalf("epochs not consecutive: %v", epochs)
		}
	}
}

// TestMaxCyclesStopsRunaway: a spinning workload is stopped at the cap
// and reported as such.
func TestMaxCyclesStopsRunaway(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.NoProtection(),
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: 10_000, CodePages: 1, HeapPages: 1},
		},
		Schedule:  [][]int{{0}},
		MaxCycles: 400_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSpawn(t, sys, 0, "spinner", 0, func(c *UserCtx) {
		for {
			c.Compute(100)
		}
	})
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HitMaxCycles {
		t.Fatalf("cap not reported: %+v", rep)
	}
}

// TestUserFetchWrapsCodeRegion: long-running threads wrap their
// synthetic PC over the code pages without faulting.
func TestUserFetchWrapsCodeRegion(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	mustSpawn(t, s, 0, "wrapper", 0, func(c *UserCtx) {
		// 4 code pages = 256 lines; run well past several wraps.
		for i := 0; i < 1500; i++ {
			c.Compute(10)
		}
	})
	rep := mustRun(t, s)
	if rep.ThreadCycles["wrapper"] == 0 {
		t.Fatal("no progress")
	}
}

// TestSharedHeapVAsAreDistinctPhysically: both domains use the same
// virtual heap addresses; their frames must differ (separate address
// spaces).
func TestSharedHeapVAsAreDistinctPhysically(t *testing.T) {
	s := uniSys(t, core.FullProtection(), nil)
	d0, d1 := s.Domains()[0], s.Domains()[1]
	pte0, ok0 := d0.PT.Lookup(UserHeapVPN)
	pte1, ok1 := d1.PT.Lookup(UserHeapVPN)
	if !ok0 || !ok1 {
		t.Fatal("heap unmapped")
	}
	if pte0.PFN == pte1.PFN {
		t.Fatal("domains share a physical frame")
	}
	m := s.Machine()
	if m.Mem.Color(pte0.PFN) == m.Mem.Color(pte1.PFN) {
		t.Fatal("coloured domains share a colour")
	}
}

// TestSingleDomainScheduleRenewsWithoutSwitch: a lone domain's slice
// renews without the switch protocol (no flush events).
func TestSingleDomainScheduleRenewsWithoutSwitch(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "Only", SliceCycles: 10_000, PadCycles: 5_000, Colors: mem.ColorRange(1, 64), CodePages: 2, HeapPages: 4},
		},
		Schedule:    [][]int{{0}},
		EnableTrace: true,
		MaxCycles:   40_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSpawn(t, sys, 0, "solo", 0, func(c *UserCtx) {
		for i := 0; i < 500; i++ {
			c.Compute(200)
		}
	})
	rep := mustRun(t, sys)
	if rep.Switches != 0 {
		t.Fatalf("switches = %d, want 0", rep.Switches)
	}
	if n := len(sys.Trace().Filter(trace.Flush)); n != 0 {
		t.Fatalf("flushes on slice renewal: %d", n)
	}
	if n := len(sys.Trace().Filter(trace.SliceStart)); n < 3 {
		t.Fatalf("slice renewals missing: %d", n)
	}
}
