package kernel

import (
	"fmt"
	"sync"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/cpu"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/trace"
)

// SystemConfig assembles a complete simulated system.
type SystemConfig struct {
	// Platform sizes the hardware.
	Platform platform.Config
	// Protection selects the armed time-protection mechanisms.
	Protection core.Config
	// Domains are the security domains, identified by index.
	Domains []core.DomainSpec
	// Schedule is the per-logical-CPU round-robin domain sequence,
	// given as indices into Domains. CPUs without an entry (or with an
	// empty one) never run threads.
	Schedule [][]int
	// Endpoints declares the IPC endpoints.
	Endpoints []EndpointSpec
	// EnableTrace turns on event recording (required by the invariant
	// checkers).
	EnableTrace bool
	// MaxCycles aborts the run when any CPU clock passes it;
	// 0 means DefaultMaxCycles.
	MaxCycles uint64
	// Pool, when non-nil, supplies the hardware machine: construction
	// is served from the pool (reusing a Reset machine of the same
	// platform configuration when one is available) instead of building
	// from scratch. Pooling is invisible to the simulation — a pooled
	// machine starts in exactly the freshly constructed state — so it
	// never appears in any fingerprint. The pool is not synchronised;
	// use one per worker.
	Pool *platform.Pool
	// TraceLog, when non-nil and EnableTrace is set, is the event log
	// to record into (Reset first) instead of allocating a fresh one —
	// the reuse hook for trace-enabled scenarios on the sweep's hot
	// path. The caller must not run two live systems against the same
	// log.
	TraceLog *trace.Log
}

// DefaultMaxCycles caps runaway simulations.
const DefaultMaxCycles = 500_000_000

// Report summarises a completed run.
type Report struct {
	// CPUCycles is each logical CPU's final clock. SMT siblings share
	// a core clock and thus report the same value.
	CPUCycles []uint64
	// ThreadCycles maps thread name to cycles consumed, for the
	// utilisation accounting of §4.3.
	ThreadCycles map[string]uint64
	// Switches counts domain-switch protocol executions.
	Switches int
	// Ops counts thread operations executed (instructions of the
	// synthetic programs, exits excluded) — the sweep engine's per-cell
	// throughput denominator.
	Ops uint64
	// Deadlocked is set when every thread was blocked with no pending
	// device activity.
	Deadlocked bool
	// HitMaxCycles is set when the MaxCycles cap stopped the run.
	HitMaxCycles bool
	// Errors collects thread faults/panics.
	Errors []error
}

// System is an assembled machine + kernel + workload, ready to Run once.
type System struct {
	scfg    SystemConfig
	cfg     core.Config
	lat     hw.Latency
	machine *platform.Machine

	domains    map[hw.DomainID]*Domain
	domainList []*Domain
	cpus       []*cpuState
	threads    []*Thread
	endpoints  map[int]*endpoint

	log     *trace.Log
	killAll chan struct{}
	wg      sync.WaitGroup

	// switchInspector, when set, is invoked during every domain switch
	// right after the flush with the switching logical CPU's core; the
	// invariant checkers use it to verify the flushable state reached
	// its defined reset state.
	switchInspector func(cpuIndex int, core *cpu.Core)

	seq      uint64
	live     int
	switches int
	ops      uint64
	ran      bool
}

// NewSystem validates the configuration and builds the system: machine,
// kernel images (shared or per-domain clones), domain address spaces with
// (optionally) coloured frames, endpoints and schedules.
func NewSystem(scfg SystemConfig) (*System, error) {
	if err := scfg.Platform.Validate(); err != nil {
		return nil, err
	}
	m := scfg.Pool.Get(scfg.Platform)
	if err := validateSpecs(scfg.Protection, scfg.Domains, m.Colors(), scfg.Platform.IRQLines); err != nil {
		return nil, err
	}
	if len(scfg.Schedule) > len(m.CPUs) {
		return nil, fmt.Errorf("kernel: schedule for %d CPUs but machine has %d", len(scfg.Schedule), len(m.CPUs))
	}
	s := &System{
		scfg:      scfg,
		cfg:       scfg.Protection,
		lat:       scfg.Platform.Lat,
		machine:   m,
		domains:   make(map[hw.DomainID]*Domain),
		endpoints: make(map[int]*endpoint),
		killAll:   make(chan struct{}),
	}
	if scfg.EnableTrace {
		if scfg.TraceLog != nil {
			scfg.TraceLog.Reset()
			s.log = scfg.TraceLog
		} else {
			s.log = trace.NewLog()
		}
	}
	if s.scfg.MaxCycles == 0 {
		s.scfg.MaxCycles = DefaultMaxCycles
	}

	// Kernel global data page: from the reserved colour when colouring
	// is armed so it never contends with user partitions.
	var globalColors mem.ColorSet
	if scfg.Protection.ColorUserMemory {
		globalColors = mem.NewColorSet(core.KernelReservedColor)
	}
	globalPFN, err := m.Alloc.Alloc(hw.KernelOwner, globalColors)
	if err != nil {
		return nil, fmt.Errorf("kernel: global data: %w", err)
	}

	// Shared kernel image, used by all domains unless cloning is
	// armed. Its frames come from anywhere — with colouring on but
	// cloning off, kernel text still collides with user partitions,
	// which is the T5 ablation.
	var shared *KernelImage
	if !scfg.Protection.CloneKernel {
		shared, err = buildKernelImage(m.Alloc, hw.KernelOwner, nil)
		if err != nil {
			return nil, err
		}
	}

	for i, spec := range scfg.Domains {
		d, err := buildDomain(hw.DomainID(i), spec, scfg.Protection, m.Alloc, shared, globalPFN)
		if err != nil {
			return nil, err
		}
		s.domains[d.ID] = d
		s.domainList = append(s.domainList, d)
	}

	for _, es := range scfg.Endpoints {
		if _, dup := s.endpoints[es.ID]; dup {
			return nil, fmt.Errorf("kernel: duplicate endpoint %d", es.ID)
		}
		s.endpoints[es.ID] = &endpoint{spec: es}
	}

	// CPU scheduling state.
	for i, lcpu := range m.CPUs {
		st := &cpuState{
			lcpu:   lcpu,
			runQ:   make(map[hw.DomainID][]*Thread),
			epochs: make(map[hw.DomainID]uint64),
		}
		if i < len(scfg.Schedule) {
			for _, di := range scfg.Schedule[i] {
				if di < 0 || di >= len(s.domainList) {
					return nil, fmt.Errorf("kernel: schedule for CPU %d references unknown domain %d", i, di)
				}
				st.schedule = append(st.schedule, hw.DomainID(di))
			}
		}
		if len(st.schedule) == 0 {
			st.done = true
		}
		s.cpus = append(s.cpus, st)
	}

	// The no-cross-domain-SMT policy (§4.1): with SMT enabled and the
	// policy armed, sibling hardware threads must follow identical
	// domain schedules so that no two domains are ever co-resident.
	if scfg.Platform.SMTWays > 1 && scfg.Protection.DisallowSMTSharing {
		for _, st := range s.cpus {
			for _, other := range s.cpus {
				if st.lcpu.Sibling(other.lcpu) && !sameSchedule(st.schedule, other.schedule) {
					return nil, fmt.Errorf("kernel: DisallowSMTSharing: CPUs %d and %d are SMT siblings with different schedules",
						st.lcpu.Index, other.lcpu.Index)
				}
			}
		}
	}
	return s, nil
}

func sameSchedule(a, b []hw.DomainID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Spawn adds a thread running the legacy thread function fn in domain
// domainIdx, pinned to logical CPU cpuIdx. It must be called before
// Run. Spawn is the compatibility adapter over the Program model: fn
// runs on its own goroutine behind a channel bridge, which costs two
// channel handoffs per instruction. New code — and anything
// throughput-sensitive — should implement Program and use SpawnProgram.
func (s *System) Spawn(domainIdx int, name string, cpuIdx int, fn func(*UserCtx)) (*Thread, error) {
	return s.SpawnProgram(domainIdx, name, cpuIdx, newGoBridge(s, fn))
}

// SpawnProgram adds a thread running the direct-execution program p in
// domain domainIdx, pinned to logical CPU cpuIdx. It must be called
// before Run. The event loop steps p inline — no goroutine is created.
func (s *System) SpawnProgram(domainIdx int, name string, cpuIdx int, p Program) (*Thread, error) {
	if s.ran {
		return nil, fmt.Errorf("kernel: Spawn after Run")
	}
	if domainIdx < 0 || domainIdx >= len(s.domainList) {
		return nil, fmt.Errorf("kernel: Spawn %s: unknown domain %d", name, domainIdx)
	}
	if cpuIdx < 0 || cpuIdx >= len(s.cpus) {
		return nil, fmt.Errorf("kernel: Spawn %s: unknown CPU %d", name, cpuIdx)
	}
	st := s.cpus[cpuIdx]
	d := s.domainList[domainIdx]
	inSched := false
	for _, sd := range st.schedule {
		if sd == d.ID {
			inSched = true
			break
		}
	}
	if !inSched {
		return nil, fmt.Errorf("kernel: Spawn %s: domain %s not in CPU %d schedule", name, d.Spec.Name, cpuIdx)
	}
	t := &Thread{
		ID:     ThreadID(len(s.threads)),
		Name:   name,
		Domain: d,
		CPU:    cpuIdx,
		prog:   p,
		state:  threadReady,
		pc:     d.CodeBase(),
	}
	t.m.t = t
	s.threads = append(s.threads, t)
	d.Threads = append(d.Threads, t)
	st.enqueue(t)
	return t, nil
}

// SetSwitchInspector installs a hook called during every domain switch
// immediately after the flush step, with the switching logical CPU's
// index and core. It must be installed before Run. The hook must not
// mutate hardware state; it exists for the flush-invariant checker.
func (s *System) SetSwitchInspector(fn func(cpuIndex int, core *cpu.Core)) {
	s.switchInspector = fn
}

// Machine exposes the hardware platform for introspection by the
// invariant checkers and tests.
func (s *System) Machine() *platform.Machine { return s.machine }

// Trace returns the event log (nil when tracing is disabled).
func (s *System) Trace() *trace.Log { return s.log }

// Domains returns the domains in ID order.
func (s *System) Domains() []*Domain { return s.domainList }

// Protection returns the armed protection configuration.
func (s *System) Protection() core.Config { return s.cfg }

// Run executes the workload to completion (all threads exited), global
// block, or the cycle cap, and returns the report. A System can run only
// once.
func (s *System) Run() (Report, error) {
	if s.ran {
		return Report{}, fmt.Errorf("kernel: system already ran")
	}
	s.ran = true
	s.live = len(s.threads)

	var rep Report
	for s.live > 0 {
		st := s.pickCPU()
		if st == nil {
			break
		}
		if st.clk().Now() >= s.scfg.MaxCycles {
			rep.HitMaxCycles = true
			break
		}
		s.step(st)
	}
	rep.Deadlocked = s.live > 0 && !rep.HitMaxCycles && s.noRunnableAnywhere()

	close(s.killAll)
	s.wg.Wait()

	rep.CPUCycles = make([]uint64, len(s.cpus))
	rep.ThreadCycles = make(map[string]uint64, len(s.threads))
	for i, st := range s.cpus {
		rep.CPUCycles[i] = st.clk().Now()
	}
	for _, t := range s.threads {
		rep.ThreadCycles[t.Name] = t.Cycles
		if t.Err != nil {
			rep.Errors = append(rep.Errors, t.Err)
		}
	}
	rep.Switches = s.switches
	rep.Ops = s.ops
	return rep, nil
}

// pickCPU selects the logical CPU to step: the lowest clock among live
// CPUs, ties broken by least-recently-stepped then index — deterministic,
// and fair between SMT siblings sharing one clock.
func (s *System) pickCPU() *cpuState {
	var best *cpuState
	for _, st := range s.cpus {
		if st.done {
			continue
		}
		if !st.anyLive() {
			st.done = true
			continue
		}
		if best == nil {
			best = st
			continue
		}
		bc, sc := best.clk().Now(), st.clk().Now()
		if sc < bc || (sc == bc && st.lastSeq < best.lastSeq) {
			best = st
		}
	}
	return best
}

// noRunnableAnywhere reports whether no thread is Ready or Running and no
// device timer is pending — a global block.
func (s *System) noRunnableAnywhere() bool {
	for _, t := range s.threads {
		if t.state == threadReady || t.state == threadRunning {
			return false
		}
	}
	if _, ok := s.machine.IRQ.NextTimerAt(0); ok {
		return false
	}
	return true
}

// step advances one logical CPU by one scheduling decision or one thread
// operation.
func (s *System) step(st *cpuState) {
	s.seq++
	st.lastSeq = s.seq
	clk := st.clk()

	if !st.started {
		st.started = true
		d := s.domains[st.schedule[st.schedIdx]]
		st.curDomain = d.ID
		s.applyIRQMasks(st, d)
		st.sliceStart = clk.Now()
		st.sliceEnd = st.sliceStart + d.Spec.SliceCycles
		st.bumpEpoch(d.ID)
		s.log.Append(trace.Event{Kind: trace.SliceStart, CPU: st.lcpu.Index, Cycle: st.sliceStart, To: d.ID})
	}

	now := clk.Now()

	// Device interrupts: deliver the lowest pending unmasked line.
	s.machine.IRQ.Tick(now)
	if line := s.machine.IRQ.PendingUnmasked(st.lcpu.Core.ID()); line >= 0 {
		raised := s.machine.IRQ.RaisedAt(line)
		s.machine.IRQ.Ack(line)
		d := s.domains[st.curDomain]
		cycles := s.kernelEnter(st, d, TrapIRQ) + s.lat.IRQAck
		cycles += s.kernelExit(st, d)
		clk.Advance(cycles)
		s.log.Append(trace.Event{
			Kind: trace.IRQDeliver, CPU: st.lcpu.Index, Cycle: clk.Now(),
			To: st.curDomain, Aux: line, AuxCycle: raised, Latency: cycles,
		})
		return
	}

	// Preemption timer: end of slice.
	if now >= st.sliceEnd {
		s.switchOrRenew(st)
		return
	}

	// Need a running thread.
	if st.cur == nil {
		if t := st.nextReady(st.curDomain, now); t != nil {
			t.state = threadRunning
			st.cur = t
			clk.Advance(s.lat.ContextSwitch)
			if !t.begun {
				t.begun = true
				s.respondAndFetch(t, response{now: clk.Now()})
			} else if t.pendingResp != nil {
				r := *t.pendingResp
				t.pendingResp = nil
				r.now = clk.Now()
				s.respondAndFetch(t, r)
			}
			return
		}
		// No eligible thread in the current domain. If one is merely
		// gated (IPC delivery time), idle up to the gate; otherwise
		// give up the rest of the slice.
		if wake, ok := st.earliestWake(st.curDomain); ok && wake < st.sliceEnd {
			target := wake
			if tmr, okT := s.machine.IRQ.NextTimerAt(now); okT && tmr < target {
				target = tmr
			}
			if target <= now {
				target = now + 1
			}
			clk.Advance(target - now)
			return
		}
		if s.noRunnableAnywhere() {
			st.done = true
			return
		}
		// Early yield of the remaining slice. The switch protocol's
		// padding rule makes this invisible under protection; without
		// padding the next domain starts early — a channel.
		s.switchOrRenew(st)
		return
	}

	// Execute one operation of the current thread. The operation was
	// fetched (by stepping the program) when the previous response was
	// delivered.
	req := st.cur.m.op
	st.cur.m.issued = false
	s.execOp(st, st.cur, req)
}

// respondAndFetch delivers a response to t's program and immediately
// fetches t's next operation by stepping the program inline. A faulted
// response, a Done status, or a panic in the program all become a
// synthetic exit operation, so the thread always makes progress towards
// opExit; only t's program runs in between — the lockstep that makes
// user code deterministic.
func (s *System) respondAndFetch(t *Thread, resp response) {
	if resp.err != nil {
		if _, bridged := t.prog.(*goBridge); !bridged {
			// A fault kills a direct program immediately; the engine
			// records it exactly as the legacy unwinding would.
			t.Err = fmt.Errorf("kernel: thread %s panicked: %v", t.Name, resp.err)
			t.m.op = request{kind: opExit}
			t.m.issued = true
			return
		}
		// Legacy threads receive the fault in-band: UserCtx.call
		// panics inside the user goroutine, so the function's defers
		// (and any recovery) run at fault time, exactly as before the
		// Program refactor.
	}
	t.m.res = resp
	t.m.issued = false
	if st := s.stepProgram(t); st == Done || !t.m.issued {
		if st == Done && t.m.issued {
			t.Err = fmt.Errorf("kernel: thread %s panicked: %v", t.Name,
				"program issued an operation and returned Done")
		}
		if st == Running && !t.m.issued && t.Err == nil {
			t.Err = fmt.Errorf("kernel: thread %s panicked: %v", t.Name,
				"program returned Running without issuing an operation")
		}
		t.m.op = request{kind: opExit}
		t.m.issued = true
	}
}

// stepProgram invokes the program's step function, converting a panic
// into a thread fault (parity with a panicking legacy thread function).
func (s *System) stepProgram(t *Thread) (st Status) {
	defer func() {
		if r := recover(); r != nil {
			t.Err = fmt.Errorf("kernel: thread %s panicked: %v", t.Name, r)
			t.m.issued = false
			st = Done
		}
	}()
	return t.prog.Step(&t.m)
}

// switchOrRenew runs the domain-switch protocol, or just renews the slice
// when the schedule has a single domain (no domain switch, hence no flush
// and no padding — intra-domain scheduling is unrestricted).
func (s *System) switchOrRenew(st *cpuState) {
	next := s.domains[st.schedule[st.nextDomainIdx()]]
	if next.ID == st.curDomain {
		clk := st.clk()
		d := s.domains[st.curDomain]
		clk.Advance(s.kernelEnter(st, d, TrapTimer))
		clk.Advance(s.kernelExit(st, d))
		st.sliceStart = clk.Now()
		st.sliceEnd = st.sliceStart + d.Spec.SliceCycles
		st.bumpEpoch(d.ID)
		s.log.Append(trace.Event{Kind: trace.SliceStart, CPU: st.lcpu.Index, Cycle: st.sliceStart, To: d.ID})
		return
	}
	s.switches++
	s.domainSwitch(st)
}

// execOp performs one thread operation.
func (s *System) execOp(st *cpuState, t *Thread, r request) {
	if r.kind != opExit {
		s.ops++
	}
	clk := st.clk()
	d := t.Domain
	coreHW := st.lcpu.Core
	start := clk.Now()
	respond := func(resp response) {
		t.Cycles += clk.Now() - start
		resp.now = clk.Now()
		s.respondAndFetch(t, resp)
	}

	switch r.kind {
	case opExit:
		t.state = threadExited
		st.cur = nil
		s.live--
		s.log.Append(trace.Event{Kind: trace.ThreadExit, CPU: st.lcpu.Index, Cycle: clk.Now(), From: d.ID})
		return

	case opRead, opWrite:
		kind := cpu.DataRead
		if r.kind == opWrite {
			kind = cpu.DataWrite
		}
		ifetch := s.userFetch(st, t)
		info, err := coreHW.Access(d.ASID, d.PT, r.addr, kind, d.ID)
		clk.Advance(ifetch + info.Cycles)
		if err != nil {
			respond(response{err: err})
			return
		}
		respond(response{latency: info.Cycles})
		return

	case opCompute:
		lat := s.userFetch(st, t) + r.n
		clk.Advance(lat)
		respond(response{latency: lat})
		return

	case opNow:
		lat := s.userFetch(st, t) + 1
		clk.Advance(lat)
		respond(response{latency: lat})
		return

	case opBranch:
		ifetch := s.userFetch(st, t)
		bc, _ := coreHW.Branch(r.addr, r.taken)
		clk.Advance(ifetch + bc)
		respond(response{latency: bc})
		return

	case opSend:
		if _, err := s.endpointByID(r.arg); err != nil {
			respond(response{err: err})
			return
		}
		clk.Advance(s.kernelEnter(st, d, TrapSend))
		if s.ipcSend(st, t, r.arg, r.n, clk.Now()) {
			clk.Advance(s.kernelExit(st, d))
			respond(response{})
			return
		}
		// Sender blocked in the endpoint queue.
		t.Cycles += clk.Now() - start
		st.cur = nil
		st.enqueue(t)
		return

	case opRecv:
		if _, err := s.endpointByID(r.arg); err != nil {
			respond(response{err: err})
			return
		}
		clk.Advance(s.kernelEnter(st, d, TrapRecv))
		s.ipcRecv(st, t, r.arg, clk.Now())
		t.Cycles += clk.Now() - start
		st.cur = nil
		st.enqueue(t)
		return

	case opStartIO:
		if !d.ownsIRQ(r.arg) {
			respond(response{err: fmt.Errorf("kernel: domain %s does not own IRQ line %d", d.Spec.Name, r.arg)})
			return
		}
		clk.Advance(s.kernelEnter(st, d, TrapStartIO))
		if err := s.machine.IRQ.Program(r.arg, clk.Now()+r.n); err != nil {
			respond(response{err: err})
			return
		}
		clk.Advance(s.kernelExit(st, d))
		respond(response{})
		return

	case opEpoch:
		lat := s.userFetch(st, t) + 1
		clk.Advance(lat)
		respond(response{latency: lat, val: st.epochs[d.ID]})
		return

	case opNull:
		cost := s.kernelEnter(st, d, TrapNull) + s.kernelExit(st, d)
		clk.Advance(cost)
		respond(response{latency: cost})
		return

	case opYield:
		clk.Advance(s.kernelEnter(st, d, TrapYield))
		clk.Advance(s.kernelExit(st, d))
		t.Cycles += clk.Now() - start
		t.state = threadReady
		t.wakeAt = 0
		t.pendingResp = &response{}
		st.cur = nil
		st.enqueue(t)
		return

	default:
		respond(response{err: fmt.Errorf("kernel: unknown op %d", r.kind)})
	}
}

// userFetch charges the instruction fetch for one user operation and
// advances the synthetic program counter by one line, wrapping over the
// domain's code region.
func (s *System) userFetch(st *cpuState, t *Thread) uint64 {
	d := t.Domain
	info, err := st.lcpu.Core.Access(d.ASID, d.PT, t.pc, cpu.InstrFetch, d.ID)
	if err != nil {
		panic(err) // code is always mapped at construction
	}
	off := uint64(t.pc-d.CodeBase()) + hw.LineSize
	t.pc = d.CodeAddr(off)
	return info.Cycles
}
