package kernel

import (
	"timeprot/internal/hw"
	"timeprot/internal/hw/cpu"
	"timeprot/internal/hw/platform"
)

// This file is the "separate analysis" the paper's proof assumes for the
// padding value (§5.2: "under the assumption that the padding value,
// obtained by a separate analysis, is sufficient"): a static worst-case
// bound on everything that can delay the next domain's dispatch past the
// slice end.
//
// The bound covers, in protocol order:
//
//   - preemption-handling jitter: the timer is recognised only at an
//     operation boundary, so the longest single user operation (a
//     TLB-missing, memory-missing instruction fetch plus an equally cold
//     data access) can push the switch entry past the slice end (§4.2:
//     padding "needs to account for any delay of the handling of the
//     preemption-timer interrupt");
//   - a device interrupt delivered at the boundary (entry + ack + exit);
//   - the switch's own kernel entry through the outgoing image;
//   - the full flush: every L1-D and L2 line dirty;
//   - the pre-warming of the incoming image's exit path.
//
// Every memory access is costed at its worst: TLB walk plus misses at
// every level plus worst-case bus queueing behind every other core.

// wcetAccess is the worst cost of a single memory access.
func wcetAccess(lat hw.Latency, cores int) uint64 {
	// A cold access misses L1, L2 and LLC, walks the page table, and
	// queues behind one in-flight transfer per other core.
	return lat.PageWalk + lat.L1Hit + lat.L2Hit + lat.LLCHit +
		lat.Mem + lat.BusBeat*uint64(cores)
}

// wcetKernelEntry bounds a kernel entry (any trap).
func wcetKernelEntry(lat hw.Latency, cores int) uint64 {
	accesses := uint64(kernelEntryLines + kernelTrapLines + kernelGlobalDataLines + kernelDomainDataLines)
	return lat.KernelEntry + accesses*wcetAccess(lat, cores)
}

// wcetKernelExit bounds the return-to-user path.
func wcetKernelExit(lat hw.Latency, cores int) uint64 {
	return lat.KernelExit + uint64(kernelExitLines)*wcetAccess(lat, cores)
}

// RecommendPad returns a static upper bound on the domain-switch work
// for the given platform, suitable as DomainSpec.PadCycles. It is
// deliberately conservative: every access cold, every cache line dirty,
// an interrupt arriving at the worst moment. T11 compares it against
// measured worst cases; the padding checker verifies no overrun ever
// occurs under it.
func RecommendPad(pcfg platform.Config) uint64 {
	lat := pcfg.Lat
	cores := pcfg.Cores

	// Longest single user operation: instruction fetch plus data
	// access, both fully cold, plus a mispredicted branch.
	opJitter := 2*wcetAccess(lat, cores) + lat.Mispredict

	// A device interrupt recognised just before the switch.
	irq := wcetKernelEntry(lat, cores) + lat.IRQAck + wcetKernelExit(lat, cores)

	// The switch protocol itself.
	entry := wcetKernelEntry(lat, cores)
	maxDirty := uint64(coreLines(pcfg.Core))
	flush := lat.FlushBase + maxDirty*lat.FlushPerDirtyLine
	exit := wcetKernelExit(lat, cores)

	return opJitter + irq + entry + flush + exit
}

// coreLines counts the lines of the flushable write-back caches — the
// maximum possible dirty count.
func coreLines(c cpu.Config) int {
	return c.L1DSets*c.L1DWays + c.L2Sets*c.L2Ways
}
