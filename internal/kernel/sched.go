package kernel

import (
	"timeprot/internal/hw"
	"timeprot/internal/hw/clock"
	"timeprot/internal/hw/platform"
)

// cpuState is the kernel's per-logical-CPU scheduling state. It
// implements an seL4-style domain scheduler: a fixed round-robin sequence
// of domain slices; threads within the current domain run round-robin
// and switching between them is an ordinary (unflushed, unpadded)
// context switch (§4.2).
type cpuState struct {
	lcpu *platform.LogicalCPU

	// schedule is the repeating domain sequence for this CPU.
	schedule []hw.DomainID
	schedIdx int

	// curDomain is the domain whose slice is active.
	curDomain hw.DomainID
	// cur is the running thread, nil when the domain idles.
	cur *Thread
	// sliceStart/sliceEnd delimit the current slice.
	sliceStart, sliceEnd uint64

	// runQ holds Ready threads per domain, in round-robin order.
	runQ map[hw.DomainID][]*Thread

	// epochs counts begun slices per domain on this CPU, read by the
	// Epoch user operation. Initialised alongside runQ at construction.
	epochs map[hw.DomainID]uint64

	// started is set once the first slice has begun.
	started bool
	// lastSeq orders CPUs with equal clocks (SMT siblings share a
	// clock) for deterministic round-robin interleaving.
	lastSeq uint64
	// done is set when this CPU will never run anything again.
	done bool
}

// clk returns the CPU's cycle clock. SMT siblings share it.
func (st *cpuState) clk() *clock.Clock { return &st.lcpu.Core.Clock }

// bumpEpoch records the start of a new slice for domain d.
func (st *cpuState) bumpEpoch(d hw.DomainID) {
	st.epochs[d]++
}

// enqueue appends a thread to its domain's ready queue on this CPU.
func (st *cpuState) enqueue(t *Thread) {
	st.runQ[t.Domain.ID] = append(st.runQ[t.Domain.ID], t)
}

// nextReady removes and returns the first thread of domain d that is
// Ready and whose wakeAt gate has passed, rotating over the queue. It
// returns nil if none is eligible at now. The pop shifts the queue in
// place rather than building a fresh slice, so a dispatch allocates
// nothing — this runs once per dispatched operation on the hot path.
func (st *cpuState) nextReady(d hw.DomainID, now uint64) *Thread {
	q := st.runQ[d]
	for i := 0; i < len(q); i++ {
		t := q[i]
		if t.state == threadReady && t.wakeAt <= now {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			st.runQ[d] = q[:len(q)-1]
			return t
		}
	}
	return nil
}

// earliestWake returns the soonest wakeAt among Ready-but-gated threads
// of domain d, and whether one exists.
func (st *cpuState) earliestWake(d hw.DomainID) (uint64, bool) {
	var best uint64
	found := false
	for _, t := range st.runQ[d] {
		if t.state == threadReady {
			if !found || t.wakeAt < best {
				best = t.wakeAt
				found = true
			}
		}
	}
	return best, found
}

// hasLiveThreads reports whether any thread of domain d on this CPU can
// ever run again (Ready, Running, or Blocked-awaiting-rendezvous).
func (st *cpuState) hasLiveThreads(d hw.DomainID) bool {
	if st.cur != nil && st.cur.Domain.ID == d && st.cur.state == threadRunning {
		return true
	}
	for _, t := range st.runQ[d] {
		if t.state != threadExited {
			return true
		}
	}
	return false
}

// anyLive reports whether any thread on this CPU can ever run again.
func (st *cpuState) anyLive() bool {
	if st.cur != nil && st.cur.state == threadRunning {
		return true
	}
	for _, q := range st.runQ {
		for _, t := range q {
			if t.state != threadExited {
				return true
			}
		}
	}
	return false
}

// nextDomainIdx returns the schedule index of the next domain after the
// current one.
func (st *cpuState) nextDomainIdx() int {
	return (st.schedIdx + 1) % len(st.schedule)
}
