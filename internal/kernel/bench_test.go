package kernel

import (
	"testing"
	"time"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
)

// Engine microbenchmarks: the simulation cost (host ns per simulated
// operation) of instruction streams and the domain-switch protocol,
// under the direct Program path and the legacy goroutine+UserCtx
// adapter. The direct/legacy ratio is the payoff of the
// direct-execution model — the refactor's acceptance bar is >= 3x on
// instruction streams. The "simops/s" metric is simulated operations
// per wall-clock second.

// streamKind selects the benchmarked instruction stream.
type streamKind int

const (
	streamRead streamKind = iota
	streamCompute
	streamNow
)

// streamProgram issues n operations of one kind — the direct-execution
// benchmark workload.
type streamProgram struct {
	kind streamKind
	n    int
	i    int
}

func (p *streamProgram) Step(m *Machine) Status {
	if p.i == p.n {
		return Done
	}
	p.i++
	switch p.kind {
	case streamRead:
		return m.ReadHeap(uint64(p.i%256) * hw.LineSize)
	case streamCompute:
		return m.Compute(50)
	default:
		return m.Now()
	}
}

// streamFn is the identical workload as a legacy thread function.
func streamFn(kind streamKind, n int) func(*UserCtx) {
	return func(c *UserCtx) {
		for i := 1; i <= n; i++ {
			switch kind {
			case streamRead:
				c.ReadHeap(uint64(i%256) * hw.LineSize)
			case streamCompute:
				c.Compute(50)
			default:
				c.Now()
			}
		}
	}
}

// streamSystem builds a single-domain uniprocessor that never
// domain-switches, so the measurement isolates per-operation engine
// cost.
func streamSystem(b testing.TB, maxOps int) *System {
	b.Helper()
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.NoProtection(),
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: 1_000_000, PadCycles: 0, Colors: mem.ColorRange(1, 32), CodePages: 2, HeapPages: 16},
		},
		Schedule:  [][]int{{0}},
		MaxCycles: uint64(maxOps)*3_000 + 50_000_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchStream(b *testing.B, kind streamKind, direct bool) {
	sys := streamSystem(b, b.N)
	var err error
	if direct {
		_, err = sys.SpawnProgram(0, "stream", 0, &streamProgram{kind: kind, n: b.N})
	} else {
		_, err = sys.Spawn(0, "stream", 0, streamFn(kind, b.N))
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	rep, err := sys.Run()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		b.Fatal(rep.Errors)
	}
	if rep.HitMaxCycles {
		b.Fatal("benchmark hit the cycle cap")
	}
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(rep.Ops)/el, "simops/s")
	}
}

func BenchmarkDirectRead(b *testing.B)    { benchStream(b, streamRead, true) }
func BenchmarkLegacyRead(b *testing.B)    { benchStream(b, streamRead, false) }
func BenchmarkDirectCompute(b *testing.B) { benchStream(b, streamCompute, true) }
func BenchmarkLegacyCompute(b *testing.B) { benchStream(b, streamCompute, false) }
func BenchmarkDirectNow(b *testing.B)     { benchStream(b, streamNow, true) }
func BenchmarkLegacyNow(b *testing.B)     { benchStream(b, streamNow, false) }

// computeProgram burns fixed-size compute chunks forever; the slice
// preemptions between two such programs drive the full padded
// domain-switch protocol.
type computeProgram struct{ n, i int }

func (p *computeProgram) Step(m *Machine) Status {
	if p.i == p.n {
		return Done
	}
	p.i++
	return m.Compute(400)
}

// benchSwitch measures one full domain-switch cycle (two switches: A->B
// and B->A, including flush and padding) per iteration pair.
func benchSwitch(b *testing.B, direct bool) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "A", SliceCycles: 2_000, PadCycles: 3_000, Colors: mem.ColorRange(1, 32), CodePages: 2, HeapPages: 4},
			{Name: "B", SliceCycles: 2_000, PadCycles: 3_000, Colors: mem.ColorRange(32, 64), CodePages: 2, HeapPages: 4},
		},
		Schedule:  [][]int{{0, 1}},
		MaxCycles: uint64(b.N)*20_000 + 10_000_000,
	})
	if err != nil {
		b.Fatal(err)
	}
	for d, name := range []string{"a", "b"} {
		if direct {
			_, err = sys.SpawnProgram(d, name, 0, &computeProgram{n: b.N})
		} else {
			n := b.N
			_, err = sys.Spawn(d, name, 0, func(c *UserCtx) {
				for i := 0; i < n; i++ {
					c.Compute(400)
				}
			})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	rep, err := sys.Run()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if len(rep.Errors) > 0 {
		b.Fatal(rep.Errors)
	}
	b.ReportMetric(float64(rep.Switches)/float64(b.N), "switches/op")
}

func BenchmarkDirectDomainSwitch(b *testing.B) { benchSwitch(b, true) }
func BenchmarkLegacyDomainSwitch(b *testing.B) { benchSwitch(b, false) }

// TestDirectSpeedup is the acceptance gate for the direct-execution
// refactor in test form: the direct path must sustain at least 3x the
// legacy adapter's operation rate on an instruction stream. Benchmarks
// give the precise number; this test fails loudly if the win regresses.
func TestDirectSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the direct/legacy timing ratio")
	}
	const ops = 300_000
	rate := func(direct bool) float64 {
		sys := streamSystem(t, ops)
		var err error
		if direct {
			_, err = sys.SpawnProgram(0, "stream", 0, &streamProgram{kind: streamCompute, n: ops})
		} else {
			_, err = sys.Spawn(0, "stream", 0, streamFn(streamCompute, ops))
		}
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		rep, err := sys.Run()
		elapsed := time.Since(start).Seconds()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Errors) > 0 {
			t.Fatal(rep.Errors)
		}
		return float64(rep.Ops) / elapsed
	}
	// Warm both paths once, then measure.
	rate(true)
	rate(false)
	d, l := rate(true), rate(false)
	t.Logf("direct %.0f ops/s, legacy %.0f ops/s, speedup %.1fx", d, l, d/l)
	if d < 3*l {
		t.Errorf("direct path %.0f ops/s is less than 3x legacy %.0f ops/s", d, l)
	}
}
