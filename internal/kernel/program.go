package kernel

import (
	"fmt"

	"timeprot/internal/hw"
)

// This file is the direct-execution program model: the event loop runs
// user programs by calling a step function inline — no goroutines, no
// channel handoffs, no parking — which removes two scheduler crossings
// per simulated instruction from the simulator's hot path. The legacy
// goroutine+UserCtx API survives as a compatibility adapter (goBridge)
// implemented on top of Program, so both execution paths share one
// event loop and produce bit-identical traces.

// Status is a program's answer to the scheduler after one step.
type Status int

const (
	// Running means the program issued its next operation through the
	// Machine and wants to be resumed with its result. Blocking
	// operations (Send, Recv, Yield) are issued the same way: the
	// scheduler parks the thread's state — not a goroutine — and calls
	// Step again when the operation completes.
	Running Status = iota
	// Done means the program finished; the thread exits.
	Done
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Program is a direct-execution user program: a resumable step function
// over an explicit state struct of the implementer's choosing. The
// event loop calls Step inline each time the thread may execute one
// operation; Step must either issue exactly one operation through the
// Machine and return Running, or issue none and return Done.
//
// The result of the issued operation is available from the Machine's
// accessors (Latency, Time, Value) at the NEXT Step call — programs are
// written as small state machines that consume the previous result and
// issue the next operation. Step is invoked at exactly the moments the
// legacy goroutine path ran user code, so programs may share plain Go
// state with the harness under the same lockstep guarantee UserCtx
// programs enjoy.
//
// A panic in Step faults the thread (recorded in the run report's
// Errors), matching a panicking legacy thread function.
type Program interface {
	Step(m *Machine) Status
}

// Machine is the per-thread execution context handed to Program.Step:
// the previous operation's result, the issue methods for the next
// operation, and the domain helpers programs need to form addresses.
// Every issue method records exactly one operation and returns Running,
// so the idiom is
//
//	return m.ReadHeap(off)
//
// Machine values are owned by the engine; programs must not retain them
// across Step calls.
type Machine struct {
	t   *Thread
	res response
	// op is the operation issued by the current step; issued doubles as
	// the thread's has-pending-operation flag between Step and the
	// event-loop iteration that executes the operation.
	op     request
	issued bool
}

// Latency returns the previous operation's cost in cycles as the thread
// observed it (the value UserCtx.Read and friends returned).
func (m *Machine) Latency() uint64 { return m.res.latency }

// Time returns the core clock at completion of the previous operation —
// what UserCtx.Now returned, and the timestamp Recv deliveries carry.
func (m *Machine) Time() uint64 { return m.res.now }

// Value returns the previous operation's result value: the payload for
// Recv, the slice count for Epoch.
func (m *Machine) Value() uint64 { return m.res.val }

// issue records the step's single operation.
func (m *Machine) issue(r request) Status {
	if m.issued {
		panic("kernel: program issued two operations in one step")
	}
	m.op = r
	m.issued = true
	return Running
}

// Read issues a load of the byte at virtual address va; the next step's
// Latency is the access cost — the prime-and-probe primitive.
func (m *Machine) Read(va hw.Addr) Status { return m.issue(request{kind: opRead, addr: va}) }

// Write issues a store to virtual address va. Writes dirty cache lines,
// lengthening a later flush (§4.2).
func (m *Machine) Write(va hw.Addr) Status { return m.issue(request{kind: opWrite, addr: va}) }

// ReadHeap is Read at byte offset off within the domain's heap.
func (m *Machine) ReadHeap(off uint64) Status { return m.Read(m.t.Domain.HeapAddr(off)) }

// WriteHeap is Write at byte offset off within the domain's heap.
func (m *Machine) WriteHeap(off uint64) Status { return m.Write(m.t.Domain.HeapAddr(off)) }

// Compute issues n cycles of pure computation.
func (m *Machine) Compute(n uint64) Status { return m.issue(request{kind: opCompute, n: n}) }

// Now issues a read of the core's cycle counter — the rdtsc analogue;
// the next step's Time is the sample.
func (m *Machine) Now() Status { return m.issue(request{kind: opNow}) }

// Branch issues a conditional branch at code offset pcOff with the
// given outcome; the next step's Latency reveals the prediction.
func (m *Machine) Branch(pcOff uint64, taken bool) Status {
	return m.issue(request{kind: opBranch, addr: m.t.Domain.CodeAddr(pcOff), taken: taken})
}

// Send issues a synchronous IPC send of val on endpoint ep. The thread
// blocks until a receiver rendezvouses; the scheduler resumes the
// program when the send completes.
func (m *Machine) Send(ep int, val uint64) Status {
	return m.issue(request{kind: opSend, arg: ep, n: val})
}

// Recv issues a synchronous IPC receive on endpoint ep. When the
// program resumes, Value is the payload and Time the delivery cycle —
// the receiver's timing observation of the sender.
func (m *Machine) Recv(ep int) Status { return m.issue(request{kind: opRecv, arg: ep}) }

// StartIO issues programming of the device on IRQ line to raise its
// completion interrupt delay cycles from now (§4.2).
func (m *Machine) StartIO(line int, delay uint64) Status {
	return m.issue(request{kind: opStartIO, arg: line, n: delay})
}

// Yield gives up the CPU to the next ready thread of the same domain.
func (m *Machine) Yield() Status { return m.issue(request{kind: opYield}) }

// Epoch issues a read of the number of time slices the thread's domain
// has begun on its CPU; the next step's Value is the count.
func (m *Machine) Epoch() Status { return m.issue(request{kind: opEpoch}) }

// NullSyscall issues a syscall that only enters and exits the kernel —
// the probe for the kernel-image channel (§4.2).
func (m *Machine) NullSyscall() Status { return m.issue(request{kind: opNull}) }

// HeapBytes returns the size of the domain's heap.
func (m *Machine) HeapBytes() uint64 { return m.t.Domain.HeapBytes() }

// HeapAddr resolves a heap offset to a virtual address.
func (m *Machine) HeapAddr(off uint64) hw.Addr { return m.t.Domain.HeapAddr(off) }

// DomainName returns the owning domain's name.
func (m *Machine) DomainName() string { return m.t.Domain.Spec.Name }

// goBridge adapts a legacy thread function to the Program model: one
// goroutine per legacy thread, parked on a channel pair. Step delivers
// the previous result to the goroutine, lets the user code run to its
// next UserCtx call, and issues the request it posted — so legacy
// threads pay the two channel handoffs per instruction the direct path
// eliminates, but behave identically otherwise.
type goBridge struct {
	sys *System
	fn  func(*UserCtx)

	req     chan request
	resp    chan response
	started bool
}

func newGoBridge(sys *System, fn func(*UserCtx)) *goBridge {
	return &goBridge{
		sys:  sys,
		fn:   fn,
		req:  make(chan request, 1),
		resp: make(chan response, 1),
	}
}

// Step implements Program by driving the bridged goroutine one
// operation forward.
func (b *goBridge) Step(m *Machine) Status {
	if !b.started {
		b.started = true
		t := m.t
		b.sys.wg.Add(1)
		go func() {
			defer b.sys.wg.Done()
			b.run(t)
		}()
	}
	b.resp <- m.res
	// The user goroutine runs here, until it posts its next operation
	// (a returning thread function posts opExit) — the same lockstep
	// the old event loop enforced.
	return m.issue(<-b.req)
}

// run is the bridged goroutine body: it executes the user function and
// converts its termination (return or panic) into an exit request.
func (b *goBridge) run(t *Thread) {
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killSentinel); isKill {
				return // system shut down; do not touch channels
			}
			t.Err = fmt.Errorf("kernel: thread %s panicked: %v", t.Name, r)
		}
		b.req <- request{kind: opExit}
	}()
	// Run no user code until first dispatched: this keeps all user
	// code serialised by the event loop, so programs (and tests) may
	// safely share state across threads — ordering is deterministic.
	var first response
	select {
	case first = <-b.resp:
	case <-b.sys.killAll:
		panic(killSentinel{})
	}
	ctx := &UserCtx{t: t, b: b, kill: b.sys.killAll, first: first}
	b.fn(ctx)
}

// ReplayProgram adapts a Program to the legacy goroutine+UserCtx API by
// interpreting its operation stream over a UserCtx — the inverse of the
// goBridge. Both paths then execute the identical operation sequence,
// which is what the execution-model equivalence tests exercise: spawn
// the program directly on one system and replayed on another, and the
// traces must match bit for bit.
func ReplayProgram(p Program) func(*UserCtx) {
	return func(c *UserCtx) {
		m := &Machine{t: c.t, res: c.first}
		for {
			m.issued = false
			st := p.Step(m)
			if st == Done {
				if m.issued {
					panic("kernel: program issued an operation and returned Done")
				}
				return
			}
			if !m.issued {
				panic("kernel: program returned Running without issuing an operation")
			}
			m.res = c.call(m.op)
		}
	}
}
