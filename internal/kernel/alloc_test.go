package kernel

import "testing"

// Allocation gates on the simulator's hot path: the kernel step loop
// must not allocate per simulated operation. Fixed setup cost (system
// construction, page tables, thread state) is allowed; anything that
// scales with the operation count turns long sweeps into GC churn, so
// the gate compares two run lengths and bounds the MARGINAL
// allocations per op.

// stepLoopAllocs measures the allocations of building and running one
// single-domain system that executes n operations of the given stream
// kind through the direct Program path.
func stepLoopAllocs(t *testing.T, kind streamKind, n int) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		sys := streamSystem(t, n)
		if _, err := sys.SpawnProgram(0, "stream", 0, &streamProgram{kind: kind, n: n}); err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Errors) > 0 {
			t.Fatal(rep.Errors)
		}
		if rep.HitMaxCycles {
			t.Fatal("alloc gate hit the cycle cap")
		}
	})
}

func TestStepLoopAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const small, big = 2_000, 20_000
	for _, tc := range []struct {
		name string
		kind streamKind
	}{
		{"read", streamRead},
		{"compute", streamCompute},
		{"now", streamNow},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := stepLoopAllocs(t, tc.kind, small)
			b := stepLoopAllocs(t, tc.kind, big)
			perOp := (b - a) / float64(big-small)
			t.Logf("setup %.0f allocs, marginal %.4f allocs/op", a, perOp)
			if perOp > 0.01 {
				t.Errorf("kernel step loop allocates %.4f times per op (want < 0.01): the hot path regressed", perOp)
			}
		})
	}
}
