package kernel

import (
	"testing"

	"timeprot/internal/core"
	"timeprot/internal/hw/mem"
	"timeprot/internal/hw/platform"
	"timeprot/internal/trace"
)

func TestRecommendPadPositiveAndMonotone(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pad := RecommendPad(pcfg)
	if pad == 0 {
		t.Fatal("zero pad recommendation")
	}
	// More cores -> worse bus queueing -> larger bound.
	bigger := pcfg
	bigger.Cores = 8
	if RecommendPad(bigger) <= pad {
		t.Fatal("bound must grow with core count")
	}
	// Bigger caches -> more potential dirty lines -> larger bound.
	fat := pcfg
	fat.Core.L2Sets *= 2
	if RecommendPad(fat) <= pad {
		t.Fatal("bound must grow with flushable capacity")
	}
}

// TestRecommendPadIsSufficient runs an adversarial workload (maximum
// dirtying, syscalls, interrupts, long cold operations) under the
// recommended pad and verifies the invariant the bound promises: zero
// overruns and a single steady-state dispatch interval.
func TestRecommendPadIsSufficient(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pad := RecommendPad(pcfg)

	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(1, 32), IRQLines: []int{0}, CodePages: 4, HeapPages: 80},
			{Name: "Lo", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(32, 64), IRQLines: []int{1}, CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: true,
		MaxCycles:   400_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSpawn(t, sys, 0, "adversary", 0, func(c *UserCtx) {
		for r := 0; r < 10; r++ {
			c.StartIO(0, 30_000)
			// Dirty as much as possible with page-crossing strides.
			lines := c.HeapBytes() / 64
			for i := uint64(0); i < lines; i++ {
				c.WriteHeap(i * 64)
			}
			c.NullSyscall()
		}
	})
	mustSpawn(t, sys, 1, "victim", 0, func(c *UserCtx) {
		for i := 0; i < 3000; i++ {
			c.Compute(150)
		}
	})
	mustRun(t, sys)

	if n := len(sys.Trace().Filter(trace.PadOverrun)); n != 0 {
		t.Fatalf("%d overruns under the recommended pad %d", n, pad)
	}
	// Steady-state dispatch deltas must collapse to one value per
	// switched-from domain.
	deltas := make(map[struct {
		from int
		d    uint64
	}]int)
	count := make(map[int]int)
	for _, e := range sys.Trace().Filter(trace.SwitchEnd) {
		from := int(e.From)
		count[from]++
		if count[from] <= 2 {
			continue
		}
		deltas[struct {
			from int
			d    uint64
		}{from, e.Cycle - e.AuxCycle}]++
	}
	perFrom := map[int]int{}
	for k := range deltas {
		perFrom[k.from]++
	}
	for from, n := range perFrom {
		if n != 1 {
			t.Fatalf("domain %d: %d distinct steady dispatch deltas under recommended pad", from, n)
		}
	}
}

// TestRecommendPadDominatesMeasuredWork compares the static bound with
// the dynamically measured worst-case switch work.
func TestRecommendPadDominatesMeasuredWork(t *testing.T) {
	pcfg := platform.DefaultConfig()
	pcfg.Cores = 1
	pad := RecommendPad(pcfg)

	sys, err := NewSystem(SystemConfig{
		Platform:   pcfg,
		Protection: core.FullProtection(),
		Domains: []core.DomainSpec{
			{Name: "Hi", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(1, 32), CodePages: 4, HeapPages: 80},
			{Name: "Lo", SliceCycles: 60_000, PadCycles: pad, Colors: mem.ColorRange(32, 64), CodePages: 4, HeapPages: 16},
		},
		Schedule:    [][]int{{0, 1}},
		EnableTrace: true,
		MaxCycles:   400_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustSpawn(t, sys, 0, "dirtier", 0, func(c *UserCtx) {
		lines := c.HeapBytes() / 64
		for r := 0; r < 6; r++ {
			for i := uint64(0); i < lines; i++ {
				c.WriteHeap(i * 64)
			}
		}
	})
	mustSpawn(t, sys, 1, "other", 0, func(c *UserCtx) {
		for i := 0; i < 2000; i++ {
			c.Compute(150)
		}
	})
	mustRun(t, sys)

	starts := sys.Trace().Filter(trace.SwitchStart)
	ends := sys.Trace().Filter(trace.SwitchEnd)
	var maxWork uint64
	for i := 0; i < len(starts) && i < len(ends); i++ {
		// Work is entry..dispatch minus the pad slack; bound it by
		// entry-to-end which includes the pad, so instead measure via
		// flush events when present.
		_ = i
	}
	for i, e := range sys.Trace().Filter(trace.Flush) {
		if i < len(starts) {
			if w := e.Cycle - starts[i].Cycle; w > maxWork {
				maxWork = w
			}
		}
	}
	if maxWork == 0 {
		t.Fatal("no switch work measured")
	}
	if maxWork > pad {
		t.Fatalf("measured work %d exceeds static bound %d", maxWork, pad)
	}
	t.Logf("static bound %d vs measured worst entry+flush %d (%.1fx headroom)",
		pad, maxWork, float64(pad)/float64(maxWork))
}
