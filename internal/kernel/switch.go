package kernel

import (
	"timeprot/internal/hw"
	"timeprot/internal/hw/cpu"
	"timeprot/internal/trace"
)

// kernelEnter charges the cost of a trap into the kernel on behalf of
// domain d: the fixed entry cost plus the cache-mediated cost of fetching
// the entry stub and the trap vector's text, and the deterministic access
// to kernel global data and the domain's kernel data.
//
// The text is fetched from d's kernel image — the shared image or the
// domain's clone — through the ordinary cache hierarchy, so kernel-text
// cache state is honestly modelled: with a shared image, one domain's
// syscall pattern warms (or evicts) the lines another domain's syscalls
// will fetch, which is the kernel-image channel of §4.2; with clones in
// disjoint colours it cannot.
//
// The global-data access pattern is fixed (same lines, same order, every
// entry): the §5.2 Case 2a requirement that global kernel data "is
// accessed deterministically".
func (s *System) kernelEnter(st *cpuState, d *Domain, trap int) uint64 {
	core := st.lcpu.Core
	cycles := s.lat.KernelEntry
	for i := 0; i < kernelEntryLines; i++ {
		cycles += s.kaccess(core, d, kernelTextVA(i), cpu.InstrFetch)
	}
	base := trapTextLine(trap)
	for i := 0; i < kernelTrapLines; i++ {
		cycles += s.kaccess(core, d, kernelTextVA(base+i), cpu.InstrFetch)
	}
	for i := 0; i < kernelGlobalDataLines; i++ {
		kind := cpu.DataRead
		if i == 0 {
			kind = cpu.DataWrite // e.g. a global entry counter
		}
		cycles += s.kaccessOwner(core, d, kernelGlobalVA(i), kind, hw.KernelOwner)
	}
	for i := 0; i < kernelDomainDataLines; i++ {
		kind := cpu.DataRead
		if i == 0 {
			kind = cpu.DataWrite // per-domain scheduling state
		}
		cycles += s.kaccess(core, d, kernelDomainDataVA(i), kind)
	}
	s.log.Append(trace.Event{Kind: trace.KernelEntry, CPU: st.lcpu.Index, Cycle: st.clk().Now(), From: d.ID, Aux: trap})
	return cycles
}

// kernelExit charges the return-to-user path through d's kernel image.
func (s *System) kernelExit(st *cpuState, d *Domain) uint64 {
	core := st.lcpu.Core
	cycles := s.lat.KernelExit
	for i := 0; i < kernelExitLines; i++ {
		cycles += s.kaccess(core, d, kernelTextVA(kernelEntryLines+i), cpu.InstrFetch)
	}
	return cycles
}

// kaccess performs a kernel access within domain d's address space,
// attributing cache fills to the image/domain owner.
func (s *System) kaccess(core *cpu.Core, d *Domain, va hw.Addr, kind cpu.AccessKind) uint64 {
	owner := d.ID
	if hw.VPN(va) >= KernelTextVPN && hw.VPN(va) < KernelTextVPN+KernelTextPages {
		owner = d.Image.Owner
	}
	return s.kaccessOwner(core, d, va, kind, owner)
}

func (s *System) kaccessOwner(core *cpu.Core, d *Domain, va hw.Addr, kind cpu.AccessKind, owner hw.DomainID) uint64 {
	info, err := core.Access(d.ASID, d.PT, va, kind, owner)
	if err != nil {
		// Kernel mappings are installed at construction; a fault here
		// is a simulator bug, not a modelled condition.
		panic(err)
	}
	return info.Cycles
}

// applyIRQMasks programs the interrupt controller for domain d running on
// st: with partitioning armed, only d's own lines are unmasked (§4.2);
// otherwise every line is unmasked, as on a conventional OS.
func (s *System) applyIRQMasks(st *cpuState, d *Domain) {
	coreID := st.lcpu.Core.ID()
	for line := 0; line < s.machine.IRQ.Lines(); line++ {
		if s.cfg.PartitionIRQs {
			s.machine.IRQ.SetMask(coreID, line, !d.ownsIRQ(line))
		} else {
			s.machine.IRQ.SetMask(coreID, line, false)
		}
	}
}

// domainSwitch performs the §4.2 switch protocol on st: kernel entry,
// flush of all core-local flushable state, interrupt re-masking, padding
// to the previous domain's deadline, kernel exit, and dispatch of the
// next domain. The padding rule is the paper's, verbatim: "the next
// domain will not start executing earlier than the previous domain's
// time slice plus the padding time" — measured from the previous slice's
// start, so entry jitter and flush latency are hidden beneath the pad.
func (s *System) domainSwitch(st *cpuState) {
	clk := st.clk()
	from := s.domains[st.curDomain]
	oldSliceStart := st.sliceStart
	tEntry := clk.Now()
	s.log.Append(trace.Event{
		Kind: trace.SwitchStart, CPU: st.lcpu.Index, Cycle: tEntry,
		From: from.ID, AuxCycle: oldSliceStart,
	})

	// Preempt the running thread, if any.
	if st.cur != nil {
		if st.cur.state == threadRunning {
			st.cur.state = threadReady
			st.cur.wakeAt = 0
			st.enqueue(st.cur)
		}
		st.cur = nil
	}

	// Trap into the kernel via the old domain's image.
	clk.Advance(s.kernelEnter(st, from, TrapTimer))

	// Flush all time-shared microarchitectural state. The latency
	// depends on the number of dirty lines — execution history — and
	// is charged to the clock; only padding hides it.
	if s.cfg.FlushOnSwitch {
		rep := st.lcpu.Core.FlushCoreState()
		clk.Advance(rep.Cycles)
		s.log.Append(trace.Event{
			Kind: trace.Flush, CPU: st.lcpu.Index, Cycle: clk.Now(),
			From: from.ID, Dirty: rep.DirtyL1D + rep.DirtyL2, Latency: rep.Cycles,
		})
	}
	if s.switchInspector != nil {
		s.switchInspector(st.lcpu.Index, st.lcpu.Core)
	}

	// Select the next domain and re-program the interrupt masks.
	st.schedIdx = st.nextDomainIdx()
	to := s.domains[st.schedule[st.schedIdx]]
	s.applyIRQMasks(st, to)

	// Pre-warm the return-to-user path through the incoming domain's
	// image BEFORE the pad point: its cost depends on the incoming
	// domain's cache state, so it must fall under the pad. After the
	// pad only the fixed dispatch sequence runs — nothing
	// state-dependent may execute past the pad, or its latency would
	// shift the next domain's start time (found by the prover's
	// Case-2b check).
	clk.Advance(s.kernelExit(st, to))

	// Pad: the switched-from domain's deadline is its slice start plus
	// its slice length plus its pad attribute.
	var padded uint64
	if s.cfg.PadSwitch {
		target := oldSliceStart + from.Spec.SliceCycles + from.Spec.PadCycles
		var overrun bool
		padded, overrun = clk.PadUntil(target)
		if overrun {
			s.log.Append(trace.Event{
				Kind: trace.PadOverrun, CPU: st.lcpu.Index, Cycle: clk.Now(),
				From: from.ID, To: to.ID, AuxCycle: target,
			})
		}
	}

	clk.Advance(s.lat.DispatchCost)

	st.curDomain = to.ID
	st.sliceStart = clk.Now()
	st.sliceEnd = st.sliceStart + to.Spec.SliceCycles
	st.bumpEpoch(to.ID)
	st.cur = nil // dispatched lazily by the run loop

	s.log.Append2(trace.Event{
		Kind: trace.SwitchEnd, CPU: st.lcpu.Index, Cycle: clk.Now(),
		From: from.ID, To: to.ID, AuxCycle: oldSliceStart, Latency: padded,
	}, trace.Event{
		Kind: trace.SliceStart, CPU: st.lcpu.Index, Cycle: st.sliceStart, To: to.ID,
	})
}
