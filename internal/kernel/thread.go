package kernel

import (
	"fmt"

	"timeprot/internal/hw"
)

// ThreadID identifies a thread within a System.
type ThreadID int

// threadState is a thread's scheduling state.
type threadState int

const (
	threadReady threadState = iota
	threadRunning
	threadBlocked // waiting in an endpoint queue or gated by wakeAt
	threadExited
)

func (s threadState) String() string {
	switch s {
	case threadReady:
		return "ready"
	case threadRunning:
		return "running"
	case threadBlocked:
		return "blocked"
	case threadExited:
		return "exited"
	default:
		return fmt.Sprintf("threadState(%d)", int(s))
	}
}

// opKind enumerates the operations a thread can request of the machine.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opCompute
	opNow
	opBranch
	opSend
	opRecv
	opStartIO
	opYield
	opEpoch
	opNull
	opExit
)

// request is one operation a program asks the machine to perform.
type request struct {
	kind  opKind
	addr  hw.Addr // read/write target, branch pc
	n     uint64  // compute cycles / send payload / IO delay
	arg   int     // endpoint ID, IRQ line
	taken bool    // branch outcome
}

// response is the machine's reply: what the thread observes.
type response struct {
	// latency is the operation's cost in cycles as seen by the thread
	// (for blocking operations: from request to resumption).
	latency uint64
	// now is the core clock when the operation completed. This is the
	// thread's only view of time — the simulated cycle counter.
	now uint64
	// val is the received payload (Recv) or other result value.
	val uint64
	// err is a fault (e.g. unmapped address).
	err error
}

// Thread is a schedulable execution context bound to a domain and a
// logical CPU. Its program is a Program stepped inline by the event
// loop; legacy thread functions run behind a goBridge Program.
type Thread struct {
	ID     ThreadID
	Name   string
	Domain *Domain
	// CPU is the logical CPU index the thread is pinned to.
	CPU int

	// prog is the thread's program; m is the execution context the
	// event loop passes to its Step calls. m.issued marks a fetched
	// operation awaiting execution.
	prog Program
	m    Machine

	state threadState
	// wakeAt gates a Ready thread: it may not be dispatched before the
	// core clock reaches wakeAt (deterministic IPC delivery, §3.2).
	wakeAt uint64
	// pendingResp, if non-nil, is delivered when the thread is next
	// dispatched (completion of a blocking operation).
	pendingResp *response
	// begun is set when the thread has been dispatched for the first
	// time; before that its program runs no user code.
	begun bool
	// sendTime and sendSliceStart record a blocked sender's context
	// for the delivery-time rule.
	sendTime       uint64
	sendSliceStart uint64
	sendPayload    uint64

	// pc is the synthetic program counter: each operation fetches one
	// code line and advances it (wrapping over the code region).
	pc hw.Addr

	// Cycles accumulates the cycles this thread consumed, for the
	// utilisation accounting of §4.3 (busy-loop versus interim-process
	// padding).
	Cycles uint64

	// Err records a panic raised by the thread's program.
	Err error
}

// State returns the thread's scheduling state (for tests and reports).
func (t *Thread) State() string { return t.state.String() }

// killSentinel unwinds a bridged goroutine when the system shuts down.
type killSentinel struct{}

// UserCtx is the legacy interface thread functions use to interact with
// the simulated machine, kept as a compatibility adapter over the
// Program model: each method posts one operation through the thread's
// goroutine bridge and parks until the event loop delivers the result.
// Every method is an "instruction" whose latency is determined by the
// microarchitectural state; the returned latencies and Now() values are
// the only clocks available to the program — precisely the attacker's
// observational power in the paper's threat model (§3).
//
// UserCtx methods must only be called from the thread's own goroutine.
// Performance-sensitive programs should implement Program directly and
// skip the two channel handoffs per instruction this adapter costs.
type UserCtx struct {
	t    *Thread
	b    *goBridge
	kill <-chan struct{}
	// first is the dispatch response that started the thread, kept so
	// ReplayProgram can seed its Machine exactly as the direct path
	// does.
	first response
}

// call posts a request and waits for the event loop's response.
func (c *UserCtx) call(r request) response {
	c.b.req <- r
	select {
	case resp := <-c.b.resp:
		if resp.err != nil {
			panic(resp.err)
		}
		return resp
	case <-c.kill:
		panic(killSentinel{})
	}
}

// Read loads the byte at virtual address va and returns the access
// latency in cycles — the prime-and-probe measurement primitive.
func (c *UserCtx) Read(va hw.Addr) uint64 {
	return c.call(request{kind: opRead, addr: va}).latency
}

// Write stores to virtual address va and returns the access latency.
// Writes dirty cache lines, lengthening a later flush (§4.2).
func (c *UserCtx) Write(va hw.Addr) uint64 {
	return c.call(request{kind: opWrite, addr: va}).latency
}

// ReadHeap is Read at byte offset off within the domain's heap.
func (c *UserCtx) ReadHeap(off uint64) uint64 {
	return c.Read(c.t.Domain.HeapAddr(off))
}

// WriteHeap is Write at byte offset off within the domain's heap.
func (c *UserCtx) WriteHeap(off uint64) uint64 {
	return c.Write(c.t.Domain.HeapAddr(off))
}

// Compute spends n cycles of pure computation (no memory access beyond
// the instruction fetch).
func (c *UserCtx) Compute(n uint64) {
	c.call(request{kind: opCompute, n: n})
}

// Now returns the core's cycle counter — the rdtsc analogue.
func (c *UserCtx) Now() uint64 {
	return c.call(request{kind: opNow}).now
}

// Branch executes a conditional branch at code offset pcOff with the
// given outcome and returns its latency (1 cycle predicted, the
// misprediction penalty otherwise).
func (c *UserCtx) Branch(pcOff uint64, taken bool) uint64 {
	return c.call(request{kind: opBranch, addr: c.t.Domain.CodeAddr(pcOff), taken: taken}).latency
}

// Send performs a synchronous IPC send of payload val on endpoint ep,
// blocking until a receiver rendezvouses.
func (c *UserCtx) Send(ep int, val uint64) {
	c.call(request{kind: opSend, arg: ep, n: val})
}

// Recv performs a synchronous IPC receive on endpoint ep, blocking until
// a message is delivered. It returns the payload and the cycle count at
// delivery — the receiver's timing observation of the sender.
func (c *UserCtx) Recv(ep int) (val uint64, at uint64) {
	r := c.call(request{kind: opRecv, arg: ep})
	return r.val, r.now
}

// StartIO programs the device on IRQ line to raise its completion
// interrupt delay cycles from now — the Trojan's tool for the interrupt
// channel (§4.2).
func (c *UserCtx) StartIO(line int, delay uint64) {
	c.call(request{kind: opStartIO, arg: line, n: delay})
}

// Yield gives up the CPU to the next ready thread of the same domain (an
// intra-domain context switch: no flush, no padding — §4.2), or lets the
// domain idle if none is ready.
func (c *UserCtx) Yield() {
	c.call(request{kind: opYield})
}

// Epoch returns the number of time slices this thread's domain has begun
// on its CPU — the analogue of a cheap virtual counter an attacker would
// calibrate from observed scheduling patterns. Attack harnesses use it to
// align transmission rounds with slices; it carries no information beyond
// what Now() already reveals.
func (c *UserCtx) Epoch() uint64 {
	return c.call(request{kind: opEpoch}).val
}

// NullSyscall performs a syscall that does nothing but enter and exit the
// kernel — the probe for timing the kernel's own text (the kernel-image
// channel, §4.2).
func (c *UserCtx) NullSyscall() uint64 {
	return c.call(request{kind: opNull}).latency
}

// HeapBytes returns the size of the domain's heap.
func (c *UserCtx) HeapBytes() uint64 { return c.t.Domain.HeapBytes() }

// HeapAddr resolves a heap offset to a virtual address.
func (c *UserCtx) HeapAddr(off uint64) hw.Addr { return c.t.Domain.HeapAddr(off) }

// DomainName returns the owning domain's name.
func (c *UserCtx) DomainName() string { return c.t.Domain.Spec.Name }
