// Package kernel is the seL4-like kernel model of the reproduction: it
// implements the time-protection mechanisms of §4.2 of the paper —
// flushing of core-local state on domain switches, padded constant-time
// switches, cache colouring of user memory, per-domain kernel clones,
// interrupt partitioning, and deterministic minimum-time IPC delivery —
// over the hardware platform of internal/hw.
//
// Threads execute synthetic programs under the direct-execution model:
// a Program is a resumable step function the event loop (System.Run)
// invokes inline, one operation per step, always advancing the logical
// CPU with the lowest cycle clock. Blocking operations park the
// thread's state struct, not a goroutine. The legacy goroutine+UserCtx
// API survives as a compatibility adapter (one channel bridge per
// legacy thread) implemented on top of Program; both paths execute the
// same operation streams, and two runs of the same system with the
// same seeds are cycle-identical — which is what makes two-run
// comparisons meaningful on the concrete simulator.
package kernel

import (
	"fmt"

	"timeprot/internal/core"
	"timeprot/internal/hw"
	"timeprot/internal/hw/mem"
)

// ModelVersion is the kernel layer's registered model-version string,
// part of the experiment engine's fingerprint. Bump it whenever the
// kernel model's observable behaviour changes (scheduling, switch
// sequence, mechanism semantics, WCET bounds); cached sweep cells keyed
// under the old version then read as misses. Version 2 is the
// direct-execution program model, proven trace-identical to version 1's
// goroutine path by the execution-model equivalence tests.
const ModelVersion = "kernel/2"

// Virtual address space layout (page numbers). Each domain has its own
// address space; kernel mappings live in the high region of every space,
// like a conventional kernel window.
const (
	// UserCodeVPN is the first virtual page of a domain's code.
	UserCodeVPN = 0x400
	// UserHeapVPN is the first virtual page of a domain's heap.
	UserHeapVPN = 0x10000
	// KernelTextVPN is the first virtual page of the kernel image
	// (shared image or per-domain clone, §4.2).
	KernelTextVPN = 0xFFF00
	// KernelGlobalVPN is the virtual page of the kernel's global data,
	// which is accessed deterministically on every kernel entry
	// (§5.2 Case 2a).
	KernelGlobalVPN = 0xFFFF0
	// KernelDomainDataVPN is the virtual page of the per-domain kernel
	// data (thread state, scheduling bookkeeping for that domain).
	KernelDomainDataVPN = 0xFFFF8
)

// Kernel image geometry.
const (
	// KernelTextPages is the size of the kernel image in pages.
	KernelTextPages = 8
	// kernelEntryLines is the number of I-lines fetched by the common
	// entry stub.
	kernelEntryLines = 4
	// kernelExitLines is the number of I-lines fetched by the common
	// exit stub.
	kernelExitLines = 4
	// kernelTrapLines is the number of I-lines specific to each trap
	// vector.
	kernelTrapLines = 4
	// kernelGlobalDataLines is the number of global-data lines touched
	// per entry (deterministic, input-independent).
	kernelGlobalDataLines = 2
	// kernelDomainDataLines is the number of per-domain kernel data
	// lines touched per entry.
	kernelDomainDataLines = 2
)

// Trap numbers; each selects a distinct region of kernel text, so the
// kernel-text cache footprint depends on which traps a domain exercises —
// the kernel-image channel of experiment T5.
const (
	TrapTimer = iota
	TrapSend
	TrapRecv
	TrapStartIO
	TrapYield
	TrapIRQ
	TrapNull
	numTraps
)

// KernelImage is one kernel text mapping: the shared image, or a
// per-domain clone in domain-coloured memory (§4.2). The clone mechanism
// is policy-free: the clone is just another image whose frames were
// allocated under the domain's colour budget.
type KernelImage struct {
	// TextPFNs are the physical frames of the image's text.
	TextPFNs []uint64
	// Owner attributes the image's cache footprint: hw.KernelOwner for
	// the shared image, the domain ID for a clone.
	Owner hw.DomainID
}

// buildKernelImage allocates frames for a kernel image. For the shared
// image colors is nil (frames from anywhere — which is exactly why shared
// kernel text collides with user partitions in the LLC); for a clone the
// domain's colour set is used.
func buildKernelImage(alloc *mem.Allocator, owner hw.DomainID, colors mem.ColorSet) (*KernelImage, error) {
	pfns, err := alloc.AllocN(owner, colors, KernelTextPages)
	if err != nil {
		return nil, fmt.Errorf("kernel: allocating image for %d: %w", owner, err)
	}
	return &KernelImage{TextPFNs: pfns, Owner: owner}, nil
}

// kernelTextVA returns the virtual address of line number line within the
// kernel image.
func kernelTextVA(line int) hw.Addr {
	return hw.Addr(KernelTextVPN<<hw.PageBits) + hw.Addr(line*hw.LineSize)
}

// kernelGlobalVA returns the virtual address of line number line within
// the kernel global-data page.
func kernelGlobalVA(line int) hw.Addr {
	return hw.Addr(KernelGlobalVPN<<hw.PageBits) + hw.Addr(line*hw.LineSize)
}

// kernelDomainDataVA returns the virtual address of line number line
// within the per-domain kernel data page.
func kernelDomainDataVA(line int) hw.Addr {
	return hw.Addr(KernelDomainDataVPN<<hw.PageBits) + hw.Addr(line*hw.LineSize)
}

// trapTextLine returns the first text line of a trap vector's code.
func trapTextLine(trap int) int {
	return kernelEntryLines + kernelExitLines + trap*kernelTrapLines
}

// maxKernelTextLine is used to validate that the image is large enough.
func maxKernelTextLine() int { return trapTextLine(numTraps) }

// SyscallPathLines returns the kernel-image line numbers fetched by a
// null syscall: the entry stub, the exit stub, and the TrapNull vector.
// The kernel's text layout is public knowledge (Kerckhoffs), so attack
// code may target exactly these lines — the kernel-image channel of
// §4.2 needs nothing more.
func SyscallPathLines() []int {
	var lines []int
	for i := 0; i < kernelEntryLines+kernelExitLines; i++ {
		lines = append(lines, i)
	}
	base := trapTextLine(TrapNull)
	for i := 0; i < kernelTrapLines; i++ {
		lines = append(lines, base+i)
	}
	return lines
}

func init() {
	if maxKernelTextLine() > KernelTextPages*hw.LinesPerPage {
		panic("kernel: trap vectors exceed kernel image size")
	}
}

// EndpointSpec declares a synchronous IPC endpoint.
type EndpointSpec struct {
	// ID is the endpoint's number, referenced by UserCtx.Send/Recv.
	ID int
	// MinDelivery, when nonzero and core.Config.MinDeliveryIPC is
	// armed, makes a cross-domain message visible to the receiver no
	// earlier than the sender's slice start plus MinDelivery cycles
	// (§3.2, the Cock et al. model). The system designer must choose
	// MinDelivery at or above the sender's worst-case execution time;
	// the kernel records an overrun event if the threshold is missed.
	MinDelivery uint64
}

// validateSpecs checks domain specs against the platform and protection
// configuration, including pairwise colour disjointness when colouring is
// armed (the partitioning policy).
func validateSpecs(cfg core.Config, specs []core.DomainSpec, totalColors, irqLines int) error {
	if len(specs) == 0 {
		return fmt.Errorf("kernel: no domains configured")
	}
	seenIRQ := make(map[int]string)
	for i, d := range specs {
		if err := d.Validate(cfg, totalColors); err != nil {
			return err
		}
		for _, l := range d.IRQLines {
			if l < 0 || l >= irqLines {
				return fmt.Errorf("kernel: domain %s: IRQ line %d out of range [0,%d)", d.Name, l, irqLines)
			}
			if prev, dup := seenIRQ[l]; dup {
				return fmt.Errorf("kernel: IRQ line %d claimed by both %s and %s", l, prev, d.Name)
			}
			seenIRQ[l] = d.Name
		}
		if cfg.ColorUserMemory {
			for j := 0; j < i; j++ {
				if specs[j].Colors.Intersects(d.Colors) {
					return fmt.Errorf("kernel: domains %s and %s have overlapping colours", specs[j].Name, d.Name)
				}
			}
		}
	}
	return nil
}
