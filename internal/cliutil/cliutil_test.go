package cliutil

import (
	"flag"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// parse registers the quartet on a fresh FlagSet and parses args, the
// way each CLI does.
func parse(t *testing.T, args ...string) *StoreFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := RegisterStore(fs, "cell")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parsing %v: %v", args, err)
	}
	return f
}

func TestSplitList(t *testing.T) {
	if got := SplitList(" a, ,b ,,c"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SplitList = %v", got)
	}
	if got := SplitList(""); got != nil {
		t.Fatalf("SplitList(\"\") = %v, want nil", got)
	}
}

func TestResolveNoStore(t *testing.T) {
	st, sel, err := parse(t).Resolve(nil)
	if st != nil || sel != (experiment.ShardSel{}) || err != nil {
		t.Fatalf("bare resolve = %v, %v, %v", st, sel, err)
	}
}

func TestResolveOpensStore(t *testing.T) {
	dir := t.TempDir()
	st, sel, err := parse(t, "-store", dir).Resolve(nil)
	if err != nil || st == nil {
		t.Fatalf("resolve with -store: %v, %v", st, err)
	}
	if sel != (experiment.ShardSel{}) {
		t.Fatalf("unexpected shard %v", sel)
	}
}

func TestResolveShard(t *testing.T) {
	st, sel, err := parse(t, "-shard", "2/4").Resolve(nil)
	if err != nil || st != nil {
		t.Fatalf("resolve with -shard: %v, %v", st, err)
	}
	if sel != (experiment.ShardSel{Index: 2, Count: 4}) {
		t.Fatalf("shard = %v", sel)
	}
	for _, bad := range []string{"4/4", "-1/4", "0/0", "1", "a/b", "1/2/3"} {
		if _, _, err := parse(t, "-shard", bad).Resolve(nil); err == nil ||
			!strings.Contains(err.Error(), "-shard") {
			t.Errorf("-shard %q not rejected usefully: %v", bad, err)
		}
	}
}

func TestResolveRequiresStore(t *testing.T) {
	if _, _, err := parse(t, "-merge-from", t.TempDir()).Resolve(nil); err == nil ||
		!strings.Contains(err.Error(), "-merge-from requires -store") {
		t.Errorf("-merge-from without -store: %v", err)
	}
	if _, _, err := parse(t, "-warm-only").Resolve(nil); err == nil ||
		!strings.Contains(err.Error(), "-warm-only requires -store") {
		t.Errorf("-warm-only without -store: %v", err)
	}
}

func TestResolveMerges(t *testing.T) {
	src := t.TempDir()
	ss, err := store.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	k := store.ProofSpec{Fingerprint: "f", Ablation: "a"}.Key()
	if err := ss.PutProof(k, store.ProofV1{BoundedProved: true}); err != nil {
		t.Fatal(err)
	}

	var logged []string
	logf := func(format string, args ...any) {
		logged = append(logged, format)
	}
	dst := t.TempDir()
	st, _, err := parse(t, "-store", dst, "-merge-from", src).Resolve(logf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.GetProof(k); !ok {
		t.Fatal("merged entry not served from the destination store")
	}
	if len(logged) != 1 {
		t.Fatalf("merge logged %d times, want 1", len(logged))
	}

	if _, _, err := parse(t, "-store", t.TempDir(), "-merge-from", filepath.Join(src, "missing")).Resolve(nil); err == nil {
		t.Fatal("missing merge source accepted")
	}
}
