// Package cliutil holds the flag wiring shared by the matrix CLIs
// (tpbench, tpprove, tpconform). All three drive an incremental matrix
// through the same content-addressed store, so they must expose the
// same option shape — one -store/-shard/-merge-from/-warm-only quartet
// with identical semantics and validation — and the only way to keep
// three copies identical is to have one.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"timeprot/internal/discover"
	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// StoreFlags is the store/shard/merge-from/warm-only flag quartet,
// plus the backend selector.
type StoreFlags struct {
	// Dir is -store: the content-addressed result store directory.
	Dir string
	// Backend is -store-backend: "file", "packed", or "auto" (detect
	// from the on-disk layout, defaulting new stores to "file").
	Backend string
	// Shard is -shard: an "i/n" deterministic matrix partition.
	Shard string
	// MergeFrom is -merge-from: source stores folded into -store.
	MergeFrom string
	// WarmOnly is -warm-only: fail unless every cell was cached.
	WarmOnly bool
}

// RegisterStore registers the quartet on fs. The noun names what the
// store caches in this CLI's help text ("cell", "proof cell",
// "conformance cell").
func RegisterStore(fs *flag.FlagSet, noun string) *StoreFlags {
	f := &StoreFlags{}
	fs.StringVar(&f.Dir, "store", "", "content-addressed result store directory; cached "+noun+"s are served without re-execution")
	fs.StringVar(&f.Backend, "store-backend", store.BackendAuto, "store layout: file (one entry per file), packed (segment log), or auto (detect)")
	fs.StringVar(&f.Shard, "shard", "", "run only shard i/n of the matrix (e.g. 0/4); the report is then partial")
	fs.StringVar(&f.MergeFrom, "merge-from", "", "comma-separated store directories to merge into -store before the run")
	fs.BoolVar(&f.WarmOnly, "warm-only", false, "fail unless every "+noun+" is served from -store (zero executions)")
	return f
}

// PackedOptions is the packed-backend configuration every CLI shares:
// the four current engine fingerprints, so packed records are tagged
// with the fingerprint they were computed under and compaction can
// garbage-collect cells no lookup can ever hit again.
func PackedOptions() store.PackedOptions {
	return store.PackedOptions{
		CellTag:     experiment.Fingerprint(),
		ProofTag:    experiment.ProverFingerprint(),
		ConformTag:  experiment.ConformFingerprint(),
		DiscoverTag: discover.Fingerprint(),
	}
}

// Resolve validates the parsed quartet, opens the store (when -store
// was given), folds in every -merge-from source, and parses -shard.
// Each merge is reported through logf when it is non-nil (the CLIs
// disagree on where merge chatter belongs — tpbench's stdout, the
// others' stderr — so the destination stays theirs). A zero ShardSel
// means the full matrix. The returned store is nil (the untyped kind —
// safe for != nil checks) when no -store was given; callers own
// closing it.
func (f *StoreFlags) Resolve(logf func(format string, args ...any)) (store.CellStore, experiment.ShardSel, error) {
	var st store.CellStore
	if f.Dir != "" {
		opened, err := store.OpenBackend(f.Backend, f.Dir, PackedOptions())
		if err != nil {
			return nil, experiment.ShardSel{}, err
		}
		st = opened
		for _, src := range SplitList(f.MergeFrom) {
			added, err := st.MergeFrom(src)
			if err != nil {
				st.Close()
				return nil, experiment.ShardSel{}, fmt.Errorf("merging %s: %v", src, err)
			}
			if logf != nil {
				logf("merged %d entries from %s", added, src)
			}
		}
	} else if f.MergeFrom != "" {
		return nil, experiment.ShardSel{}, fmt.Errorf("-merge-from requires -store")
	} else if f.WarmOnly {
		return nil, experiment.ShardSel{}, fmt.Errorf("-warm-only requires -store")
	}

	sel, err := ParseShard(f.Shard)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, experiment.ShardSel{}, err
	}
	return st, sel, nil
}

// ParseShard parses an "i/n" shard selector into a ShardSel; the empty
// string selects the full matrix. It is the single definition of the
// selector syntax, shared by the CLIs' -shard flag and the sweep
// service's submit API.
func ParseShard(s string) (experiment.ShardSel, error) {
	if s == "" {
		return experiment.ShardSel{}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	i, erri := strconv.Atoi(is)
	n, errn := strconv.Atoi(ns)
	if !ok || erri != nil || errn != nil || n < 1 || i < 0 || i >= n {
		return experiment.ShardSel{}, fmt.Errorf("bad -shard %q: want i/n with 0 <= i < n", s)
	}
	return experiment.ShardSel{Index: i, Count: n}, nil
}

// ServeFlags is the flag pair shared by the service binaries: where to
// listen and how many cell workers to run.
type ServeFlags struct {
	// Addr is -addr: the host:port the HTTP service listens on.
	Addr string
	// Workers is -workers: the bounded cell worker pool size
	// (<=0 = GOMAXPROCS).
	Workers int
}

// RegisterServe registers the serve flag pair on fs.
func RegisterServe(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{}
	fs.StringVar(&f.Addr, "addr", "127.0.0.1:7411", "host:port the HTTP service listens on")
	fs.IntVar(&f.Workers, "workers", 0, "bounded cell worker pool size (0 = GOMAXPROCS); never affects served bytes")
	return f
}
