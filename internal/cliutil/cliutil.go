// Package cliutil holds the flag wiring shared by the matrix CLIs
// (tpbench, tpprove, tpconform). All three drive an incremental matrix
// through the same content-addressed store, so they must expose the
// same option shape — one -store/-shard/-merge-from/-warm-only quartet
// with identical semantics and validation — and the only way to keep
// three copies identical is to have one.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"timeprot/internal/experiment"
	"timeprot/internal/experiment/store"
)

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// StoreFlags is the store/shard/merge-from/warm-only flag quartet.
type StoreFlags struct {
	// Dir is -store: the content-addressed result store directory.
	Dir string
	// Shard is -shard: an "i/n" deterministic matrix partition.
	Shard string
	// MergeFrom is -merge-from: source stores folded into -store.
	MergeFrom string
	// WarmOnly is -warm-only: fail unless every cell was cached.
	WarmOnly bool
}

// RegisterStore registers the quartet on fs. The noun names what the
// store caches in this CLI's help text ("cell", "proof cell",
// "conformance cell").
func RegisterStore(fs *flag.FlagSet, noun string) *StoreFlags {
	f := &StoreFlags{}
	fs.StringVar(&f.Dir, "store", "", "content-addressed result store directory; cached "+noun+"s are served without re-execution")
	fs.StringVar(&f.Shard, "shard", "", "run only shard i/n of the matrix (e.g. 0/4); the report is then partial")
	fs.StringVar(&f.MergeFrom, "merge-from", "", "comma-separated store directories to merge into -store before the run")
	fs.BoolVar(&f.WarmOnly, "warm-only", false, "fail unless every "+noun+" is served from -store (zero executions)")
	return f
}

// Resolve validates the parsed quartet, opens the store (when -store
// was given), folds in every -merge-from source, and parses -shard.
// Each merge is reported through logf when it is non-nil (the CLIs
// disagree on where merge chatter belongs — tpbench's stdout, the
// others' stderr — so the destination stays theirs). A zero ShardSel
// means the full matrix.
func (f *StoreFlags) Resolve(logf func(format string, args ...any)) (*store.Store, experiment.ShardSel, error) {
	var st *store.Store
	if f.Dir != "" {
		var err error
		if st, err = store.Open(f.Dir); err != nil {
			return nil, experiment.ShardSel{}, err
		}
		for _, src := range SplitList(f.MergeFrom) {
			added, err := st.MergeFrom(src)
			if err != nil {
				return nil, experiment.ShardSel{}, fmt.Errorf("merging %s: %v", src, err)
			}
			if logf != nil {
				logf("merged %d entries from %s", added, src)
			}
		}
	} else if f.MergeFrom != "" {
		return nil, experiment.ShardSel{}, fmt.Errorf("-merge-from requires -store")
	} else if f.WarmOnly {
		return nil, experiment.ShardSel{}, fmt.Errorf("-warm-only requires -store")
	}

	var sel experiment.ShardSel
	if f.Shard != "" {
		is, ns, ok := strings.Cut(f.Shard, "/")
		i, erri := strconv.Atoi(is)
		n, errn := strconv.Atoi(ns)
		if !ok || erri != nil || errn != nil || n < 1 || i < 0 || i >= n {
			return nil, experiment.ShardSel{}, fmt.Errorf("bad -shard %q: want i/n with 0 <= i < n", f.Shard)
		}
		sel = experiment.ShardSel{Index: i, Count: n}
	}
	return st, sel, nil
}
