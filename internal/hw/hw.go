// Package hw defines the shared vocabulary of the simulated hardware
// platform: address types, page and cache-line geometry, and the latency
// parameters that constitute the concrete "time model" of the machine.
//
// The paper (§5.1) models time as a deterministic yet unspecified function
// of the microarchitectural state. The simulator instantiates one concrete
// such function — the parameters in Latency — while the prover
// (internal/prove) quantifies over families of such functions. Nothing in
// the defence mechanisms depends on the concrete values chosen here; they
// only shape the measured magnitudes.
package hw

import "fmt"

// ModelVersion is the hardware layer's registered model-version string.
// It feeds the experiment engine's fingerprint: bump it on any change to
// the simulated hardware's semantics or latency parameters (anything
// that could alter a measured cycle count), and every cached sweep cell
// automatically becomes stale. Pure refactors that provably preserve
// cycle-level behaviour do not bump it.
const ModelVersion = "hw/1"

// Addr is a virtual address within a security domain's address space.
type Addr uint64

// PAddr is a physical address.
type PAddr uint64

// Architectural geometry. These are compile-time constants: the page and
// line sizes determine how many LLC page colours exist and are baked into
// the colouring arithmetic throughout.
const (
	// PageBits is log2 of the page size.
	PageBits = 12
	// PageSize is the size of a physical frame and of a virtual page.
	PageSize = 1 << PageBits
	// LineBits is log2 of the cache-line size.
	LineBits = 6
	// LineSize is the cache-line size in bytes.
	LineSize = 1 << LineBits
	// LinesPerPage is the number of cache lines covering one page.
	LinesPerPage = PageSize / LineSize
)

// VPN returns the virtual page number of a.
func VPN(a Addr) uint64 { return uint64(a) >> PageBits }

// PageOffset returns the offset of a within its page.
func PageOffset(a Addr) uint64 { return uint64(a) & (PageSize - 1) }

// PFN returns the physical frame number of p.
func PFN(p PAddr) uint64 { return uint64(p) >> PageBits }

// FrameBase returns the physical address of the first byte of frame pfn.
func FrameBase(pfn uint64) PAddr { return PAddr(pfn << PageBits) }

// LineIndex returns the global line number of a physical address.
func LineIndex(p PAddr) uint64 { return uint64(p) >> LineBits }

// VLineIndex returns the global line number of a virtual address.
func VLineIndex(a Addr) uint64 { return uint64(a) >> LineBits }

// Latency holds the cycle costs that make up the machine's concrete time
// model. All values are in cycles.
type Latency struct {
	// L1Hit is the load-to-use latency of a first-level cache hit.
	L1Hit uint64
	// L2Hit is the latency of an L2 hit (after an L1 miss).
	L2Hit uint64
	// LLCHit is the latency of a last-level cache hit.
	LLCHit uint64
	// Mem is the DRAM access latency (excluding bus queueing).
	Mem uint64
	// BusBeat is the bus occupancy per LLC-miss transfer; queueing on
	// top of this is computed by the interconnect model.
	BusBeat uint64
	// PageWalk is the fixed cost of a hardware page-table walk on a
	// TLB miss (on top of the memory accesses the walk performs).
	PageWalk uint64
	// Mispredict is the branch misprediction penalty.
	Mispredict uint64
	// KernelEntry is the base trap cost (mode switch, register save)
	// excluding the cache effects of the kernel's own memory accesses.
	KernelEntry uint64
	// KernelExit is the base return-from-kernel cost.
	KernelExit uint64
	// IRQAck is the fixed interrupt-controller acknowledge cost.
	IRQAck uint64
	// FlushBase is the fixed cost of initiating a full flush of the
	// core-local microarchitectural state.
	FlushBase uint64
	// FlushPerDirtyLine is the additional write-back cost per dirty
	// line flushed. This history dependence is the secondary channel
	// that padding must close (§4.2).
	FlushPerDirtyLine uint64
	// ContextSwitch is the base cost of an intra-domain thread switch
	// (no flushing, no padding).
	ContextSwitch uint64
	// DispatchCost is the fixed cost of dispatching a thread after a
	// domain switch, incurred after any padding.
	DispatchCost uint64
}

// DefaultLatency returns latency parameters loosely modelled on a
// contemporary out-of-order core (in cycles). The defence mechanisms are
// insensitive to the concrete values.
func DefaultLatency() Latency {
	return Latency{
		L1Hit:             4,
		L2Hit:             12,
		LLCHit:            40,
		Mem:               200,
		BusBeat:           8,
		PageWalk:          30,
		Mispredict:        15,
		KernelEntry:       60,
		KernelExit:        40,
		IRQAck:            25,
		FlushBase:         100,
		FlushPerDirtyLine: 6,
		ContextSwitch:     80,
		DispatchCost:      50,
	}
}

// Validate reports an error if any latency parameter is zero in a way that
// would make the time model degenerate.
func (l Latency) Validate() error {
	if l.L1Hit == 0 || l.L2Hit == 0 || l.LLCHit == 0 || l.Mem == 0 {
		return fmt.Errorf("hw: cache latencies must be nonzero: %+v", l)
	}
	if l.L1Hit >= l.L2Hit || l.L2Hit >= l.LLCHit || l.LLCHit >= l.Mem {
		return fmt.Errorf("hw: cache latencies must be strictly increasing by level")
	}
	return nil
}

// DomainID identifies a security domain (§2: a subset of the system
// treated as an opaque unit by the security policy). The kernel's own
// shared state is attributed to KernelOwner, and lines whose owner is
// unknown or architectural background state use NoOwner.
type DomainID int

const (
	// NoOwner marks microarchitectural state not attributed to any
	// security domain (e.g. after reset).
	NoOwner DomainID = -1
	// KernelOwner marks state belonging to the shared (non-cloned)
	// kernel image and global kernel data.
	KernelOwner DomainID = -2
)
