package platform

import (
	"testing"

	"timeprot/internal/hw/cpu"
)

func TestDefaultMachineShape(t *testing.T) {
	m := New(DefaultConfig())
	if len(m.Cores) != 2 || len(m.CPUs) != 2 {
		t.Fatalf("cores=%d cpus=%d", len(m.Cores), len(m.CPUs))
	}
	if m.Colors() != 64 {
		t.Fatalf("colors = %d, want 64", m.Colors())
	}
	if m.Cores[0].Uncore() != m.Cores[1].Uncore() {
		t.Fatal("cores must share the uncore")
	}
	if m.Cores[0].ID() == m.Cores[1].ID() {
		t.Fatal("core IDs must differ")
	}
}

func TestSMTTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMTWays = 2
	m := New(cfg)
	if len(m.CPUs) != 4 {
		t.Fatalf("logical cpus = %d, want 4", len(m.CPUs))
	}
	if !m.CPUs[0].Sibling(m.CPUs[1]) {
		t.Fatal("cpu0 and cpu1 must be SMT siblings")
	}
	if m.CPUs[0].Sibling(m.CPUs[2]) {
		t.Fatal("cpu0 and cpu2 are on different cores")
	}
	if m.CPUs[0].Sibling(m.CPUs[0]) {
		t.Fatal("a cpu is not its own sibling")
	}
	// SMT siblings share the physical core (and thus all flushable
	// state and the clock).
	if m.CPUs[0].Core != m.CPUs[1].Core {
		t.Fatal("siblings must share the core")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.SMTWays = 3 },
		func(c *Config) { c.IRQLines = 0 },
		func(c *Config) { c.LLCSets = 100 },
		func(c *Config) { c.Lat.L1Hit = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New with invalid config must panic")
			}
		}()
		cfg := DefaultConfig()
		cfg.Cores = -1
		New(cfg)
	}()
}

func TestIRQProgramAndDelivery(t *testing.T) {
	c := NewIRQController(4, 1)
	if err := c.Program(2, 1000); err != nil {
		t.Fatal(err)
	}
	c.Tick(999)
	if c.Pending(2) {
		t.Fatal("timer must not fire early")
	}
	c.Tick(1000)
	if !c.Pending(2) {
		t.Fatal("timer must fire at its programmed time")
	}
	// Masked: invisible to the core, still pending.
	if got := c.PendingUnmasked(0); got != -1 {
		t.Fatalf("masked line visible: %d", got)
	}
	c.SetMask(0, 2, false)
	if got := c.PendingUnmasked(0); got != 2 {
		t.Fatalf("unmasked pending = %d, want 2", got)
	}
	if c.RaisedAt(2) != 1000 {
		t.Fatalf("raisedAt = %d", c.RaisedAt(2))
	}
	c.Ack(2)
	if c.Pending(2) {
		t.Fatal("ack must clear pending")
	}
}

func TestIRQMaskedStaysPendingAcrossMaskToggle(t *testing.T) {
	// The §4.2 partitioning behaviour: an IRQ firing while its domain
	// is inactive (masked) is delivered only when unmasked later.
	c := NewIRQController(2, 1)
	if err := c.Program(0, 50); err != nil {
		t.Fatal(err)
	}
	c.Tick(100)
	if got := c.PendingUnmasked(0); got != -1 {
		t.Fatal("masked IRQ delivered")
	}
	c.SetMask(0, 0, false) // domain switch: unmask
	if got := c.PendingUnmasked(0); got != 0 {
		t.Fatal("pended IRQ lost across mask toggle")
	}
}

func TestIRQProgramOutOfRange(t *testing.T) {
	c := NewIRQController(2, 1)
	if err := c.Program(5, 10); err == nil {
		t.Fatal("out-of-range line must error")
	}
}

func TestNextTimerAt(t *testing.T) {
	c := NewIRQController(4, 1)
	_ = c.Program(0, 500)
	_ = c.Program(1, 300)
	at, ok := c.NextTimerAt(100)
	if !ok || at != 300 {
		t.Fatalf("NextTimerAt = (%d,%v), want (300,true)", at, ok)
	}
	at, ok = c.NextTimerAt(300)
	if !ok || at != 500 {
		t.Fatalf("NextTimerAt = (%d,%v), want (500,true)", at, ok)
	}
	if _, ok := c.NextTimerAt(500); ok {
		t.Fatal("no timers after 500")
	}
}

func TestPerCoreMasksAreIndependent(t *testing.T) {
	c := NewIRQController(2, 2)
	_ = c.Program(1, 10)
	c.Tick(10)
	c.SetMask(0, 1, false)
	if c.PendingUnmasked(0) != 1 {
		t.Fatal("core 0 should see line 1")
	}
	if c.PendingUnmasked(1) != -1 {
		t.Fatal("core 1 must not see line 1 (still masked)")
	}
}

func TestMachineUsesConfiguredCoreGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core = cpu.Config{
		L1ISets: 32, L1IWays: 4, L1DSets: 32, L1DWays: 4,
		L2Sets: 128, L2Ways: 4, TLBEntries: 16, BPEntries: 64,
		PrefetchThreshold: 0,
	}
	m := New(cfg)
	if m.Cores[0].L1D.Config().Sets != 32 {
		t.Fatal("core geometry not applied")
	}
	if m.Cores[0].PF != nil {
		t.Fatal("prefetcher should be disabled at threshold 0")
	}
	if m.Cores[1].ID() != 1 {
		t.Fatal("core ID must be overwritten per core")
	}
}
