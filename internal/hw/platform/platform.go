// Package platform assembles the full machine: cores (optionally with
// SMT hardware threads), the shared LLC, the memory bus, physical memory,
// and the interrupt controller.
package platform

import (
	"fmt"

	"timeprot/internal/hw"
	"timeprot/internal/hw/cache"
	"timeprot/internal/hw/cover"
	"timeprot/internal/hw/cpu"
	"timeprot/internal/hw/interconn"
	"timeprot/internal/hw/mem"
)

// Config sizes the machine.
type Config struct {
	// Cores is the number of physical cores.
	Cores int
	// SMTWays is the number of hardware threads per core (1 = SMT
	// off). SMT siblings share all core-local state including the
	// cycle clock — the structural reason SMT co-residency of distinct
	// domains cannot be secured (§4.1).
	SMTWays int
	// LLCSets/LLCWays size the shared last-level cache.
	LLCSets, LLCWays int
	// Frames is the number of physical memory frames.
	Frames int
	// IRQLines is the number of interrupt lines.
	IRQLines int
	// Core configures the per-core private microarchitecture; its ID
	// field is overwritten per core.
	Core cpu.Config
	// Lat is the latency parameter set.
	Lat hw.Latency
}

// DefaultConfig returns a 2-core machine with a 4 MiB 16-way LLC (64 page
// colours), 16k frames (64 MiB), and 8 IRQ lines.
func DefaultConfig() Config {
	return Config{
		Cores:    2,
		SMTWays:  1,
		LLCSets:  4096,
		LLCWays:  16,
		Frames:   16384,
		IRQLines: 8,
		Core:     cpu.DefaultConfig(0),
		Lat:      hw.DefaultLatency(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("platform: Cores must be positive, got %d", c.Cores)
	}
	if c.SMTWays < 1 || c.SMTWays > 2 {
		return fmt.Errorf("platform: SMTWays must be 1 or 2, got %d", c.SMTWays)
	}
	if c.IRQLines <= 0 {
		return fmt.Errorf("platform: IRQLines must be positive, got %d", c.IRQLines)
	}
	if err := c.Lat.Validate(); err != nil {
		return err
	}
	return (cache.Config{Name: "LLC", Sets: c.LLCSets, Ways: c.LLCWays}).Validate()
}

// Machine is the assembled hardware platform.
type Machine struct {
	cfg Config

	Cores []*cpu.Core
	LLC   *cache.Cache
	Bus   *interconn.Bus
	Mem   *mem.PhysMem
	Alloc *mem.Allocator
	IRQ   *IRQController

	// CPUs are the logical processors the kernel schedules on; with
	// SMT there are Cores*SMTWays of them.
	CPUs []*LogicalCPU
}

// LogicalCPU is a hardware thread: the kernel's schedulable processor.
// SMT siblings share the same *cpu.Core.
type LogicalCPU struct {
	// Index is the logical CPU number.
	Index int
	// Core is the physical core backing this hardware thread.
	Core *cpu.Core
	// Slot is the hardware-thread slot within the core.
	Slot int
}

// Sibling reports whether two logical CPUs share a physical core.
func (l *LogicalCPU) Sibling(o *LogicalCPU) bool {
	return l != o && l.Core == o.Core
}

// New assembles a machine. It panics on invalid configuration (machine
// geometry is an experiment-construction decision, not runtime input).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	llc := cache.New(cache.Config{Name: "LLC", Sets: cfg.LLCSets, Ways: cfg.LLCWays, Indexing: cache.PhysIndexed})
	physMem := mem.NewPhysMem(cfg.Frames, llc.Config().Colors())
	un := &cpu.Uncore{
		LLC: llc,
		Bus: interconn.NewBus(cfg.Lat.BusBeat),
		Mem: physMem,
		Lat: cfg.Lat,
	}
	m := &Machine{
		cfg:   cfg,
		LLC:   llc,
		Bus:   un.Bus,
		Mem:   physMem,
		Alloc: mem.NewAllocator(physMem),
		IRQ:   NewIRQController(cfg.IRQLines, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		coreCfg := cfg.Core
		coreCfg.ID = i
		core := cpu.New(coreCfg, un)
		m.Cores = append(m.Cores, core)
		for s := 0; s < cfg.SMTWays; s++ {
			m.CPUs = append(m.CPUs, &LogicalCPU{Index: len(m.CPUs), Core: core, Slot: s})
		}
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Reset restores the machine to its freshly constructed state so it can
// be reused for another experiment cell without rebuilding: all caches
// and core-local state, the bus (including removal of any installed
// limiter or TDM schedule — a fresh bus has neither), memory ownership,
// the frame allocator, and the interrupt controller. The structural
// objects (cores, logical CPUs, uncore wiring) are retained; only their
// state is rewound. A Reset machine must be indistinguishable from
// New(cfg) to every measurement — that equivalence is what makes machine
// pooling invisible to the sweep store's byte-identical outputs.
func (m *Machine) Reset() {
	m.LLC.Reset()
	m.Bus.SetLimiter(nil)
	m.Bus.SetTDM(nil)
	m.Bus.Reset()
	m.Alloc.Reset() // also resets Mem's frame ownership
	m.IRQ.Reset()
	for _, c := range m.Cores {
		c.Reset()
	}
}

// SetCoverage attaches cov to every core's transition recorder (nil
// detaches). Coverage is observation only — it never changes a measured
// cycle — and Reset detaches any attached map, so pooled machines cannot
// leak one run's observer into the next.
func (m *Machine) SetCoverage(cov *cover.Map) {
	for _, c := range m.Cores {
		c.Cov = cov
	}
}

// Colors returns the number of LLC page colours.
func (m *Machine) Colors() int { return m.Mem.NumColors() }

// IRQController models a simple interrupt controller: one-shot device
// timers raise lines at programmed cycle counts; per-core mask bits
// decide whether a pending line is visible to a core. Masked pending
// interrupts stay pending — the partitioning mechanism of §4.2 relies on
// this: IRQs of inactive domains are masked and delivered only once
// their domain runs again.
type IRQController struct {
	lines   int
	pending []bool
	// raisedAt records when a pending line fired, for latency traces.
	raisedAt []uint64
	// masked[core][line]
	masked [][]bool
	// timers are programmed one-shot device events.
	timers []deviceTimer
}

type deviceTimer struct {
	line   int
	fireAt uint64
}

// NewIRQController builds a controller with lines interrupt lines and
// per-core masks for cores cores. All lines start masked on all cores.
func NewIRQController(lines, cores int) *IRQController {
	c := &IRQController{
		lines:    lines,
		pending:  make([]bool, lines),
		raisedAt: make([]uint64, lines),
		masked:   make([][]bool, cores),
	}
	for i := range c.masked {
		c.masked[i] = make([]bool, lines)
		for l := range c.masked[i] {
			c.masked[i][l] = true
		}
	}
	return c
}

// Lines returns the number of interrupt lines.
func (c *IRQController) Lines() int { return c.lines }

// Reset restores the controller to its freshly constructed state: no
// pending lines, all lines masked on every core, no programmed timers.
func (c *IRQController) Reset() {
	for l := 0; l < c.lines; l++ {
		c.pending[l] = false
		c.raisedAt[l] = 0
	}
	for i := range c.masked {
		for l := range c.masked[i] {
			c.masked[i][l] = true
		}
	}
	c.timers = c.timers[:0]
}

// Program arms a one-shot device timer raising line at cycle fireAt.
// This is how a Trojan schedules an I/O completion interrupt (§4.2).
func (c *IRQController) Program(line int, fireAt uint64) error {
	if line < 0 || line >= c.lines {
		return fmt.Errorf("platform: IRQ line %d out of range [0,%d)", line, c.lines)
	}
	c.timers = append(c.timers, deviceTimer{line: line, fireAt: fireAt})
	return nil
}

// Tick raises all device timers that have fired by now.
func (c *IRQController) Tick(now uint64) {
	kept := c.timers[:0]
	for _, t := range c.timers {
		if t.fireAt <= now {
			if !c.pending[t.line] {
				c.pending[t.line] = true
				c.raisedAt[t.line] = t.fireAt
			}
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// SetMask sets whether line is masked on core.
func (c *IRQController) SetMask(core, line int, masked bool) {
	c.masked[core][line] = masked
}

// Masked reports whether line is masked on core.
func (c *IRQController) Masked(core, line int) bool { return c.masked[core][line] }

// PendingUnmasked returns the lowest pending line unmasked on core, or
// -1. The caller should Tick first.
func (c *IRQController) PendingUnmasked(core int) int {
	for l := 0; l < c.lines; l++ {
		if c.pending[l] && !c.masked[core][l] {
			return l
		}
	}
	return -1
}

// Pending reports whether line is pending (masked or not).
func (c *IRQController) Pending(line int) bool { return c.pending[line] }

// RaisedAt returns when a pending line fired.
func (c *IRQController) RaisedAt(line int) uint64 { return c.raisedAt[line] }

// Ack clears a pending line (end-of-interrupt).
func (c *IRQController) Ack(line int) { c.pending[line] = false }

// NextTimerAt returns the earliest programmed timer expiry strictly after
// now, or 0,false if none. The idle loop uses it to skip quiet time.
func (c *IRQController) NextTimerAt(now uint64) (uint64, bool) {
	var best uint64
	found := false
	for _, t := range c.timers {
		if t.fireAt > now && (!found || t.fireAt < best) {
			best = t.fireAt
			found = true
		}
	}
	return best, found
}
