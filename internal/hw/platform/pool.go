package platform

// Pool reuses assembled machines across experiment cells. Building a
// Machine is the dominant per-cell allocation of the attack path (a
// default platform carries a 64k-line LLC, a 16k-frame memory map, and
// per-core cache hierarchies); an experiment worker that runs thousands
// of cells against a handful of distinct platform configurations can
// amortise that construction by acquiring machines here instead.
//
// A Pool is intentionally NOT safe for concurrent use: the experiment
// engine gives each worker goroutine its own pool (inside its cell
// context), so no synchronisation is paid on the hot path.
//
// Get hands out a machine in the freshly constructed state — either
// genuinely new, or a previously released machine healed by
// Machine.Reset. Reset-on-acquire (rather than on release) means a
// machine abandoned mid-cell by a panicking scenario is still safe to
// reuse. ReleaseAll returns every outstanding machine at once; the
// engine calls it after each cell, when no reference into the machine
// can outlive the cell's Row.
type Pool struct {
	free  map[Config][]*Machine
	inUse []*Machine
}

// NewPool returns an empty machine pool.
func NewPool() *Pool {
	return &Pool{free: make(map[Config][]*Machine)}
}

// Get returns a machine of the given configuration in its freshly
// constructed state, reusing a released machine when one is available.
// A nil pool degrades to plain construction, so call sites need no
// conditionals. Like New, it panics on an invalid configuration.
func (p *Pool) Get(cfg Config) *Machine {
	if p == nil {
		return New(cfg)
	}
	var m *Machine
	if list := p.free[cfg]; len(list) > 0 {
		m = list[len(list)-1]
		p.free[cfg] = list[:len(list)-1]
		m.Reset()
	} else {
		m = New(cfg)
	}
	p.inUse = append(p.inUse, m)
	return m
}

// ReleaseAll returns every machine handed out since the last ReleaseAll
// to the pool. The caller must not touch previously acquired machines
// afterwards. Calling ReleaseAll on a nil pool is a no-op.
func (p *Pool) ReleaseAll() {
	if p == nil {
		return
	}
	for _, m := range p.inUse {
		p.free[m.cfg] = append(p.free[m.cfg], m)
	}
	p.inUse = p.inUse[:0]
}

// Size returns the number of idle machines held, for tests and
// introspection.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, list := range p.free {
		n += len(list)
	}
	return n
}
