package branch

import (
	"testing"
	"testing/quick"

	"timeprot/internal/hw"
	"timeprot/internal/rng"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -4, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestInitialPredictionIsNotTaken(t *testing.T) {
	p := New(64)
	if p.Predict(0x1000) {
		t.Fatal("reset state must predict not-taken")
	}
}

func TestTrainingToTaken(t *testing.T) {
	p := New(64)
	pc := hw.Addr(0x400)
	// First taken branch mispredicts (weakly not-taken).
	if !p.Resolve(pc, true) {
		t.Fatal("first taken branch should mispredict")
	}
	// Second taken branch: counter moved to weakly-taken, predicts taken.
	if p.Resolve(pc, true) {
		t.Fatal("second taken branch should predict correctly")
	}
	if !p.Predict(pc) {
		t.Fatal("trained branch should predict taken")
	}
}

func TestSaturation(t *testing.T) {
	p := New(64)
	pc := hw.Addr(0x8)
	for i := 0; i < 10; i++ {
		p.Resolve(pc, true)
	}
	// One not-taken outcome must not flip a saturated counter's
	// prediction (strongly-taken -> weakly-taken still predicts taken).
	p.Resolve(pc, false)
	if !p.Predict(pc) {
		t.Fatal("one contrary outcome flipped a saturated counter")
	}
	p.Resolve(pc, false)
	if p.Predict(pc) {
		t.Fatal("two contrary outcomes should flip prediction")
	}
}

func TestAliasingIsThePrimeProbeVector(t *testing.T) {
	// Two PCs that collide in the table share a counter: training one
	// changes the other's prediction — the BP timing channel.
	p := New(16)
	pcA := hw.Addr(0x0)
	pcB := hw.Addr(0x0 + 16*4) // same index after >>2 and mask
	for i := 0; i < 4; i++ {
		p.Resolve(pcA, true)
	}
	if !p.Predict(pcB) {
		t.Fatal("aliased PC should inherit trained prediction")
	}
}

func TestFlushRestoresDefinedState(t *testing.T) {
	p := New(64)
	fresh := New(64)
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		p.Resolve(hw.Addr(r.Uint64n(1<<16)), r.Bool())
	}
	p.Flush()
	if p.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("flush must restore the history-independent reset state")
	}
}

// Property: after Flush, the fingerprint is a single constant regardless
// of prior history (the "defined, history-independent state" of §4.1).
func TestFlushPropertyHistoryIndependent(t *testing.T) {
	want := New(8).Fingerprint()
	f := func(seed uint64, n uint16) bool {
		p := New(8)
		r := rng.New(seed)
		for i := 0; i < int(n%1024); i++ {
			p.Resolve(hw.Addr(r.Uint64n(1<<20)), r.Bool())
		}
		p.Flush()
		return p.Fingerprint() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsCount(t *testing.T) {
	p := New(64)
	p.Resolve(4, true)  // mispredict
	p.Resolve(4, true)  // correct
	p.Resolve(4, false) // mispredict (now weakly taken->correcting)
	st := p.Stats()
	if st.Predictions != 3 {
		t.Fatalf("predictions = %d, want 3", st.Predictions)
	}
	if st.Mispredicts != 2 {
		t.Fatalf("mispredicts = %d, want 2", st.Mispredicts)
	}
}
