// Package branch implements a bimodal (2-bit saturating counter) branch
// predictor with a direct-mapped pattern history table.
//
// Branch predictor state is core-local, time-shared, flushable state in
// the paper's taxonomy (§4.1): it cannot be partitioned by the OS (its
// index is derived from virtual program-counter bits), so it must be
// reset to a defined, history-independent state on domain switches.
package branch

import (
	"fmt"

	"timeprot/internal/hw"
)

// counter states of the 2-bit saturating counter.
const (
	stronglyNotTaken = 0
	weaklyNotTaken   = 1
	weaklyTaken      = 2
	stronglyTaken    = 3
)

// resetState is the defined state after a flush: weakly not-taken, the
// same for every entry, independent of history.
const resetState = weaklyNotTaken

// Predictor is a bimodal branch predictor. Not safe for concurrent use.
type Predictor struct {
	table []uint8
	mask  uint64
	stats Stats
}

// Stats accumulates prediction statistics.
type Stats struct {
	Predictions uint64
	Mispredicts uint64
	Flushes     uint64
}

// New constructs a predictor with a table of size entries (power of two).
func New(size int) *Predictor {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("branch: table size must be a positive power of two, got %d", size))
	}
	p := &Predictor{table: make([]uint8, size), mask: uint64(size - 1)}
	p.reset()
	return p
}

func (p *Predictor) reset() {
	for i := range p.table {
		p.table[i] = resetState
	}
}

// Size returns the table size.
func (p *Predictor) Size() int { return len(p.table) }

// Stats returns a copy of the statistics.
func (p *Predictor) Stats() Stats { return p.stats }

func (p *Predictor) index(pc hw.Addr) uint64 {
	// Drop the low 2 bits (instruction alignment) before indexing.
	return (uint64(pc) >> 2) & p.mask
}

// Predict returns the current prediction for the branch at pc.
func (p *Predictor) Predict(pc hw.Addr) bool {
	return p.table[p.index(pc)] >= weaklyTaken
}

// Resolve predicts the branch at pc, updates the counter with the actual
// outcome, and reports whether the prediction was wrong (mispredict).
func (p *Predictor) Resolve(pc hw.Addr, taken bool) (mispredict bool) {
	i := p.index(pc)
	pred := p.table[i] >= weaklyTaken
	mispredict = pred != taken
	p.stats.Predictions++
	if mispredict {
		p.stats.Mispredicts++
	}
	if taken {
		if p.table[i] < stronglyTaken {
			p.table[i]++
		}
	} else {
		if p.table[i] > stronglyNotTaken {
			p.table[i]--
		}
	}
	return mispredict
}

// Flush resets every counter to the defined reset state. The latency is
// constant (no write-backs), so the kernel charges only a fixed cost.
func (p *Predictor) Flush() {
	p.reset()
	p.stats.Flushes++
}

// Reset restores the predictor to its freshly constructed state: the
// flush reset state AND zero statistics (Flush counts itself; Reset does
// not). Machine pooling uses it so a reused predictor is
// indistinguishable from New(size).
func (p *Predictor) Reset() {
	p.reset()
	p.stats = Stats{}
}

// Fingerprint returns a deterministic digest of the predictor state; the
// invariant checkers use it to verify the state is history-independent
// after a flush.
func (p *Predictor) Fingerprint() uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range p.table {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}
