// Package interconn models the shared, stateless memory interconnect:
// a single bus serialising LLC-miss traffic from all cores.
//
// The paper deliberately EXCLUDES covert channels through stateless
// interconnects from time protection's scope (§2): they exploit finite
// *bandwidth* through concurrent competition, carry no address
// information, and can only be prevented with hardware support absent
// from mainstream processors. The model exists to demonstrate that
// exclusion empirically (experiment T8): partitioning and flushing do
// nothing against it, and an Intel-MBA-style *approximate* bandwidth
// limiter reduces but does not eliminate the channel (footnote 1).
package interconn

import "fmt"

// Bus is a single split-transaction bus with fixed beat occupancy. Cores
// contend for beats; a request issued while the bus is busy queues. Not
// safe for concurrent use; the simulator serialises access.
type Bus struct {
	// BeatCycles is the bus occupancy per transfer.
	BeatCycles uint64

	nextFree uint64
	limiter  *MBALimiter
	tdm      *TDMSchedule
	stats    map[int]*CoreStats
}

// CoreStats accumulates per-core bus statistics.
type CoreStats struct {
	Transfers      uint64
	QueueCycles    uint64
	ThrottleCycles uint64
}

// NewBus constructs a bus with the given beat occupancy.
func NewBus(beatCycles uint64) *Bus {
	if beatCycles == 0 {
		panic("interconn: BeatCycles must be nonzero")
	}
	return &Bus{BeatCycles: beatCycles, stats: make(map[int]*CoreStats)}
}

// SetLimiter installs (or removes, if nil) an MBA-style per-core
// bandwidth limiter.
func (b *Bus) SetLimiter(l *MBALimiter) { b.limiter = l }

// SetTDM installs (or removes, if nil) a time-division-multiplexed
// arbitration schedule. TDM is the hardware support the paper names as
// missing from mainstream processors (§2): each core owns fixed bus
// slots, so one core's traffic can never delay another's — the bandwidth
// covert channel is closed BY CONSTRUCTION, at the price of wasting
// unused slots. Time protection "extends in a fairly straightforward
// way" once such hardware exists; experiment T8's TDM row demonstrates
// it.
func (b *Bus) SetTDM(t *TDMSchedule) { b.tdm = t }

// Stats returns the statistics for a core (allocating them if needed).
func (b *Bus) Stats(core int) *CoreStats {
	s, ok := b.stats[core]
	if !ok {
		s = &CoreStats{}
		b.stats[core] = s
	}
	return s
}

// Access performs one transfer for core at local time now and returns the
// total added latency (throttling + queueing + the beat itself). The
// throttle delay is charged to the issuing core only: it slows that
// core's issue rate without reserving the bus in the future, so other
// cores' transfers slot in freely during the throttled interval.
func (b *Bus) Access(core int, now uint64) (latency uint64) {
	if b.tdm != nil {
		// TDM arbitration: wait for the core's own next slot. The
		// wait depends only on the requester's clock phase, never on
		// other cores' traffic.
		start := b.tdm.NextSlot(core, now)
		st := b.Stats(core)
		st.Transfers++
		st.QueueCycles += start - now
		return (start - now) + b.BeatCycles
	}
	var throttle uint64
	if b.limiter != nil {
		if release := b.limiter.Admit(core, now); release > now {
			throttle = release - now
			b.Stats(core).ThrottleCycles += throttle
		}
	}
	start := now
	if b.nextFree > start {
		b.Stats(core).QueueCycles += b.nextFree - start
		start = b.nextFree
	}
	b.nextFree = start + b.BeatCycles
	st := b.Stats(core)
	st.Transfers++
	return throttle + (start - now) + b.BeatCycles
}

// Reset clears queueing state and statistics (used between experiment
// trials; a real bus has no history worth modelling beyond the in-flight
// transfer). Statistics entries are zeroed in place rather than
// reallocated, so pointers handed out by Stats stay valid and a pooled
// bus resets without allocating.
func (b *Bus) Reset() {
	b.nextFree = 0
	for _, s := range b.stats {
		*s = CoreStats{}
	}
	if b.limiter != nil {
		b.limiter.Reset()
	}
}

// MBALimiter approximates Intel's Memory Bandwidth Allocation: per-core
// transfer quotas enforced over coarse windows. Enforcement is
// deliberately approximate — a core may burst up to its full window quota
// instantly and is only delayed once the quota is exhausted, so
// modulation within a window remains observable. This reproduces the
// paper's footnote: "the approximate enforcement is not sufficient for
// preventing covert channels".
type MBALimiter struct {
	// WindowCycles is the enforcement window length.
	WindowCycles uint64
	// QuotaPerWindow maps core ID to the number of transfers allowed
	// per window. Cores without an entry are unthrottled.
	QuotaPerWindow map[int]uint64

	used        map[int]uint64
	windowStart map[int]uint64
}

// NewMBALimiter constructs a limiter with the given window.
func NewMBALimiter(windowCycles uint64) *MBALimiter {
	if windowCycles == 0 {
		panic("interconn: WindowCycles must be nonzero")
	}
	return &MBALimiter{
		WindowCycles:   windowCycles,
		QuotaPerWindow: make(map[int]uint64),
		used:           make(map[int]uint64),
		windowStart:    make(map[int]uint64),
	}
}

// SetQuota limits core to quota transfers per window.
func (m *MBALimiter) SetQuota(core int, quota uint64) {
	m.QuotaPerWindow[core] = quota
}

// Admit returns the earliest time at or after now when core may issue a
// transfer, updating the window accounting as if it did.
func (m *MBALimiter) Admit(core int, now uint64) uint64 {
	quota, limited := m.QuotaPerWindow[core]
	if !limited {
		return now
	}
	ws := m.windowStart[core]
	// Advance to the window containing now.
	if now >= ws+m.WindowCycles {
		ws += ((now - ws) / m.WindowCycles) * m.WindowCycles
		m.windowStart[core] = ws
		m.used[core] = 0
	}
	if m.used[core] < quota {
		m.used[core]++
		return now
	}
	// Quota exhausted: delay to the next window and consume from it.
	ws += m.WindowCycles
	m.windowStart[core] = ws
	m.used[core] = 1
	return ws
}

// Reset clears the accounting.
func (m *MBALimiter) Reset() {
	m.used = make(map[int]uint64)
	m.windowStart = make(map[int]uint64)
}

// String implements fmt.Stringer.
func (m *MBALimiter) String() string {
	return fmt.Sprintf("MBA(window=%d, quotas=%v)", m.WindowCycles, m.QuotaPerWindow)
}

// TDMSchedule is a strict time-division bus arbitration: the bus
// timeline is divided into frames of Cores slots of SlotCycles each;
// core i may begin a transfer only at the start of slot i of a frame.
// Unused slots are wasted, never reassigned — exactness is the point.
type TDMSchedule struct {
	// Cores is the number of slots per frame.
	Cores int
	// SlotCycles is the length of one slot; it must be at least the
	// bus beat, or transfers would overhang into foreign slots.
	SlotCycles uint64
}

// NewTDMSchedule builds a schedule. It panics if the slot could not
// contain a transfer of beatCycles.
func NewTDMSchedule(cores int, slotCycles, beatCycles uint64) *TDMSchedule {
	if cores <= 0 {
		panic("interconn: TDM needs at least one core")
	}
	if slotCycles < beatCycles {
		panic("interconn: TDM slot shorter than the bus beat")
	}
	return &TDMSchedule{Cores: cores, SlotCycles: slotCycles}
}

// NextSlot returns the earliest time at or after now at which core may
// begin a transfer: the start of its next owned slot. The result is a
// pure function of (core, now) — no shared state, hence no channel.
func (t *TDMSchedule) NextSlot(core int, now uint64) uint64 {
	frame := uint64(t.Cores) * t.SlotCycles
	slotStart := uint64(core) * t.SlotCycles
	base := now - now%frame + slotStart
	if base >= now {
		return base
	}
	return base + frame
}
