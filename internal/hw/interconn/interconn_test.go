package interconn

import "testing"

func TestUncontendedAccessCostsOneBeat(t *testing.T) {
	b := NewBus(8)
	if lat := b.Access(0, 100); lat != 8 {
		t.Fatalf("latency = %d, want 8", lat)
	}
}

func TestQueueingUnderContention(t *testing.T) {
	b := NewBus(8)
	// Core 0 occupies [100,108); core 1 arrives at 102 and must wait.
	b.Access(0, 100)
	lat := b.Access(1, 102)
	if lat != 6+8 {
		t.Fatalf("queued latency = %d, want 14 (6 wait + 8 beat)", lat)
	}
	if q := b.Stats(1).QueueCycles; q != 6 {
		t.Fatalf("queue cycles = %d, want 6", q)
	}
}

func TestNoQueueingWhenBusIdle(t *testing.T) {
	b := NewBus(8)
	b.Access(0, 100)
	if lat := b.Access(1, 1000); lat != 8 {
		t.Fatalf("latency = %d, want 8 (bus long idle)", lat)
	}
}

func TestContentionIsTheCovertChannel(t *testing.T) {
	// The spy's total latency for a burst of transfers depends on
	// whether the trojan is also transferring — the §2 bandwidth
	// channel in miniature.
	measure := func(trojanActive bool) uint64 {
		b := NewBus(8)
		var now, total uint64
		for i := 0; i < 10; i++ {
			if trojanActive {
				b.Access(1, now) // trojan slips in first
			}
			lat := b.Access(0, now)
			total += lat
			now += lat
		}
		return total
	}
	quiet, noisy := measure(false), measure(true)
	if noisy <= quiet {
		t.Fatalf("contention must slow the spy: quiet=%d noisy=%d", quiet, noisy)
	}
}

func TestMBAThrottlesSustainedRate(t *testing.T) {
	b := NewBus(8)
	l := NewMBALimiter(1000)
	l.SetQuota(1, 4)
	b.SetLimiter(l)
	var now uint64
	var throttled bool
	for i := 0; i < 12; i++ {
		lat := b.Access(1, now)
		now += lat
		if b.Stats(1).ThrottleCycles > 0 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatal("limiter never throttled a core exceeding its quota")
	}
	// 12 transfers at 4/window: must have spilled into at least the
	// third window.
	if now < 2000 {
		t.Fatalf("sustained rate not limited: finished at %d", now)
	}
}

func TestMBABurstsPassUnthrottled(t *testing.T) {
	// The "approximate enforcement" loophole: a burst within quota at
	// the start of each window passes at full speed, so window-grain
	// modulation survives — capacity reduced, not eliminated.
	b := NewBus(8)
	l := NewMBALimiter(1000)
	l.SetQuota(1, 4)
	b.SetLimiter(l)
	var now uint64 = 0
	for i := 0; i < 4; i++ {
		lat := b.Access(1, now)
		if lat != 8 {
			t.Fatalf("in-quota burst transfer %d delayed: lat=%d", i, lat)
		}
		now += lat
	}
}

func TestUnlimitedCoreUnaffectedByLimiter(t *testing.T) {
	b := NewBus(8)
	l := NewMBALimiter(100)
	l.SetQuota(1, 1)
	b.SetLimiter(l)
	for i := 0; i < 10; i++ {
		if lat := b.Access(0, uint64(i*50)); lat != 8 {
			t.Fatalf("unlimited core throttled: lat=%d", lat)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	b := NewBus(8)
	b.Access(0, 0)
	b.Reset()
	if lat := b.Access(1, 0); lat != 8 {
		t.Fatalf("post-reset latency = %d, want 8", lat)
	}
	if b.Stats(0).Transfers != 0 {
		t.Fatal("reset must clear stats")
	}
}

func TestPanicsOnZeroParams(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBus(0) did not panic")
			}
		}()
		NewBus(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewMBALimiter(0) did not panic")
			}
		}()
		NewMBALimiter(0)
	}()
}

func TestTDMNextSlotIsPhasePure(t *testing.T) {
	s := NewTDMSchedule(2, 100, 8)
	// Core 0 owns [0,100) of each 200-cycle frame, core 1 owns [100,200).
	cases := []struct {
		core int
		now  uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 200},
		{0, 199, 200},
		{1, 0, 100},
		{1, 100, 100},
		{1, 101, 300},
		{0, 400, 400},
	}
	for _, tc := range cases {
		if got := s.NextSlot(tc.core, tc.now); got != tc.want {
			t.Errorf("NextSlot(%d, %d) = %d, want %d", tc.core, tc.now, got, tc.want)
		}
	}
}

func TestTDMBusImmuneToContention(t *testing.T) {
	// The spy's latency must be identical whether or not the trojan
	// streams — the §2 channel closed by construction.
	measure := func(trojanActive bool) uint64 {
		b := NewBus(8)
		b.SetTDM(NewTDMSchedule(2, 16, 8))
		var now, total uint64 = 5, 0
		for i := 0; i < 20; i++ {
			if trojanActive {
				b.Access(1, now)
				b.Access(1, now+1)
			}
			lat := b.Access(0, now)
			total += lat
			now += lat + 3
		}
		return total
	}
	quiet, noisy := measure(false), measure(true)
	if quiet != noisy {
		t.Fatalf("TDM leaked contention: quiet=%d noisy=%d", quiet, noisy)
	}
}

func TestTDMPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTDMSchedule(0, 100, 8) },
		func() { NewTDMSchedule(2, 4, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
