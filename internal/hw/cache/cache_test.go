package cache

import (
	"testing"
	"testing/quick"

	"timeprot/internal/hw"
	"timeprot/internal/rng"
)

func testCfg() Config {
	return Config{Name: "L1D", Sets: 64, Ways: 8, Indexing: VirtIndexed}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", Config{Name: "c", Sets: 64, Ways: 8}, false},
		{"zero sets", Config{Name: "c", Sets: 0, Ways: 8}, true},
		{"non power of two", Config{Name: "c", Sets: 48, Ways: 8}, true},
		{"zero ways", Config{Name: "c", Sets: 64, Ways: 0}, true},
		{"negative sets", Config{Name: "c", Sets: -64, Ways: 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{Name: "bad", Sets: 3, Ways: 1})
}

func TestSizeAndColors(t *testing.T) {
	llc := Config{Name: "LLC", Sets: 4096, Ways: 16, Indexing: PhysIndexed}
	if got, want := llc.SizeBytes(), 4096*16*hw.LineSize; got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	// 4096 sets * 64B lines / 4KiB pages = 64 colours, the paper's
	// "modern last-level caches have at least 64 different colors".
	if got := llc.Colors(); got != 64 {
		t.Errorf("Colors = %d, want 64", got)
	}
	l1 := testCfg()
	if got := l1.Colors(); got != 1 {
		t.Errorf("L1 Colors = %d, want 1 (fits within a page, uncolourable)", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(testCfg())
	res := c.Access(3, 0x42, false, 1)
	if res.Hit {
		t.Fatal("first access should miss")
	}
	res = c.Access(3, 0x42, false, 1)
	if !res.Hit {
		t.Fatal("second access should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := Config{Name: "tiny", Sets: 2, Ways: 2, Indexing: PhysIndexed}
	c := New(cfg)
	c.Access(0, 1, false, 1) // fills way 0
	c.Access(0, 2, false, 1) // fills way 1
	c.Access(0, 1, false, 1) // touch tag 1; tag 2 is now LRU
	res := c.Access(0, 3, false, 1)
	if res.Hit {
		t.Fatal("expected miss")
	}
	if res.VictimTag != 2 {
		t.Fatalf("evicted tag %d, want 2 (LRU)", res.VictimTag)
	}
	if !c.Probe(0, 1) || !c.Probe(0, 3) || c.Probe(0, 2) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := Config{Name: "tiny", Sets: 1, Ways: 1, Indexing: PhysIndexed}
	c := New(cfg)
	c.Access(0, 1, true, 1) // dirty fill
	res := c.Access(0, 2, false, 1)
	if !res.WritebackVictim {
		t.Fatal("evicting a dirty line must report a writeback")
	}
	if res.VictimOwner != 1 {
		t.Fatalf("victim owner = %d, want 1", res.VictimOwner)
	}
	res = c.Access(0, 3, false, 2)
	if res.WritebackVictim {
		t.Fatal("evicting a clean line must not report a writeback")
	}
}

func TestFlushAllCountsDirtyAndResets(t *testing.T) {
	c := New(testCfg())
	for i := 0; i < 10; i++ {
		c.Access(i, uint64(i), i%2 == 0, 1) // 5 dirty, 5 clean
	}
	if got := c.DirtyCount(); got != 5 {
		t.Fatalf("DirtyCount = %d, want 5", got)
	}
	dirty := c.FlushAll()
	if dirty != 5 {
		t.Fatalf("FlushAll returned %d dirty, want 5", dirty)
	}
	if c.ValidCount() != 0 {
		t.Fatal("flush must invalidate everything")
	}
	// After a flush the state must be history-independent: a second
	// flush reports zero dirty lines.
	if d := c.FlushAll(); d != 0 {
		t.Fatalf("second flush reported %d dirty lines, want 0", d)
	}
}

func TestOwnersInSetTracksDistinctOwners(t *testing.T) {
	c := New(testCfg())
	c.Access(7, 1, false, 1)
	c.Access(7, 2, false, 2)
	c.Access(7, 3, false, 2)
	owners := c.OwnersInSet(7)
	if len(owners) != 2 {
		t.Fatalf("owners = %v, want two distinct owners", owners)
	}
	occ := c.OccupancyByOwner()
	if occ[1] != 1 || occ[2] != 2 {
		t.Fatalf("occupancy = %v", occ)
	}
}

func TestSetIndexTagRoundTrip(t *testing.T) {
	c := New(testCfg())
	f := func(lineNum uint64) bool {
		set := c.SetIndex(lineNum)
		tag := c.Tag(lineNum)
		if set < 0 || set >= c.Config().Sets {
			return false
		}
		// (set, tag) must uniquely determine lineNum.
		return uint64(set)|tag<<6 == lineNum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetColorPartition(t *testing.T) {
	llc := New(Config{Name: "LLC", Sets: 4096, Ways: 16, Indexing: PhysIndexed})
	colors := llc.Config().Colors()
	// All lines of one page land in sets of a single colour, and that
	// colour is PFN mod colors.
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		pfn := r.Uint64n(1 << 20)
		want := int(pfn % uint64(colors))
		for l := uint64(0); l < hw.LinesPerPage; l++ {
			lineNum := pfn*hw.LinesPerPage + l
			set := llc.SetIndex(lineNum)
			if got := llc.SetColor(set); got != want {
				t.Fatalf("pfn %d line %d: colour %d, want %d", pfn, l, got, want)
			}
		}
	}
}

// TestConflictVisibility is the microarchitectural premise of
// prime-and-probe: after a victim touches a set, a prior occupant of that
// set observes a miss, and only in that set.
func TestConflictVisibility(t *testing.T) {
	cfg := Config{Name: "pp", Sets: 8, Ways: 2, Indexing: PhysIndexed}
	c := New(cfg)
	// Prime: attacker (domain 1) fills every way of every set.
	for set := 0; set < cfg.Sets; set++ {
		for w := 0; w < cfg.Ways; w++ {
			c.Access(set, uint64(100+w), false, 1)
		}
	}
	// Victim (domain 2) touches both ways of set 5 only.
	c.Access(5, 900, false, 2)
	c.Access(5, 901, false, 2)
	// Probe: attacker re-touches its lines; misses only in set 5.
	for set := 0; set < cfg.Sets; set++ {
		for w := 0; w < cfg.Ways; w++ {
			res := c.Access(set, uint64(100+w), false, 1)
			wantHit := set != 5
			if res.Hit != wantHit {
				t.Fatalf("set %d way %d: hit=%v, want %v", set, w, res.Hit, wantHit)
			}
		}
	}
}

// Property: flushing always leaves zero valid and zero dirty lines no
// matter the access history.
func TestFlushPropertyRandomHistory(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		c := New(testCfg())
		r := rng.New(seed)
		for i := 0; i < int(n%512); i++ {
			c.Access(r.Intn(c.Config().Sets), r.Uint64n(1<<20), r.Bool(), hw.DomainID(r.Intn(3)))
		}
		c.FlushAll()
		return c.ValidCount() == 0 && c.DirtyCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the number of writebacks reported by FlushAll equals the
// number of distinct dirty lines written.
func TestFlushDirtyCountMatchesWrites(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(testCfg())
		r := rng.New(seed)
		written := make(map[[2]uint64]bool)
		for i := 0; i < 200; i++ {
			set := r.Intn(c.Config().Sets)
			tag := r.Uint64n(4) // small tag space to force evictions
			write := r.Bool()
			res := c.Access(set, tag, write, 1)
			key := [2]uint64{uint64(set), tag}
			if write {
				written[key] = true
			}
			if res.WritebackVictim {
				delete(written, [2]uint64{uint64(res.Set), res.VictimTag})
			} else if !res.Hit && res.VictimOwner != hw.NoOwner {
				// clean eviction
				delete(written, [2]uint64{uint64(res.Set), res.VictimTag})
			}
		}
		return c.FlushAll() == len(written)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "LLC", Sets: 4096, Ways: 16, Indexing: PhysIndexed})
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 22)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ln := addrs[i%len(addrs)]
		c.Access(c.SetIndex(ln), c.Tag(ln), i%7 == 0, 1)
	}
}
