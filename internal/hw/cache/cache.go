// Package cache implements a set-associative, write-back, write-allocate
// cache with true-LRU replacement, per-line dirty bits, and per-line owner
// attribution.
//
// Owner attribution is not part of the architectural state of any real
// cache — it exists so that (a) attack harnesses can introspect conflict
// patterns and (b) the partitioning invariant checkers of internal/prove
// can verify that no cache set colour ever holds lines of two different
// security domains when cache colouring is enabled (§4.1 of the paper).
//
// The flush operation reports the number of dirty lines written back; the
// flush *latency* is computed by the caller from that count, which is the
// history-dependent component that makes the flush itself a timing channel
// unless padded (§4.2).
package cache

import (
	"fmt"

	"timeprot/internal/hw"
)

// Indexing says which address the set index is computed from. A virtually
// indexed cache (typical L1) cannot be partitioned by page colouring,
// because the index bits come from the virtual address under the
// attacker's control; it must be flushed instead. A physically indexed
// cache (typical LLC) can be coloured (§4.1).
type Indexing int

const (
	// PhysIndexed caches compute the set from the physical address.
	PhysIndexed Indexing = iota
	// VirtIndexed caches compute the set from the virtual address
	// (tags remain physical).
	VirtIndexed
)

// String implements fmt.Stringer.
func (i Indexing) String() string {
	switch i {
	case PhysIndexed:
		return "phys-indexed"
	case VirtIndexed:
		return "virt-indexed"
	default:
		return fmt.Sprintf("Indexing(%d)", int(i))
	}
}

// Config describes a cache's geometry.
type Config struct {
	// Name identifies the cache in traces and error messages.
	Name string
	// Sets is the number of cache sets; must be a power of two.
	Sets int
	// Ways is the associativity.
	Ways int
	// Indexing selects virtual or physical set indexing.
	Indexing Indexing
}

// Validate reports an error if the geometry is unusable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: Sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: Ways must be positive, got %d", c.Name, c.Ways)
	}
	return nil
}

// SizeBytes returns the capacity of the cache in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * hw.LineSize }

// Colors returns the number of page colours this cache induces: the number
// of distinct values the set-index bits above the page offset can take.
// For caches whose sets fit within a page (Sets*LineSize <= PageSize) this
// is 1: every page maps to all sets and colouring cannot partition it.
func (c Config) Colors() int {
	colors := c.Sets * hw.LineSize / hw.PageSize
	if colors < 1 {
		return 1
	}
	return colors
}

// line is one cache line's bookkeeping.
type line struct {
	valid bool
	tag   uint64
	dirty bool
	owner hw.DomainID
	// lru is a monotonically increasing use stamp; the smallest stamp
	// in a set is the LRU victim.
	lru uint64
}

// Stats accumulates access statistics.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	Writebacks   uint64
	Flushes      uint64
	FlushedDirty uint64
}

// Cache is a set-associative cache. It is not safe for concurrent use;
// the simulator serialises all hardware access through its event loop.
type Cache struct {
	cfg   Config
	sets  []line // flattened [set*ways + way]
	clock uint64 // LRU stamp source
	stats Stats
}

// New constructs a cache with the given geometry. It panics if the
// geometry is invalid, since geometry is always a compile-time decision
// of the experiment configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:  cfg,
		sets: make([]line, cfg.Sets*cfg.Ways),
	}
	for i := range c.sets {
		c.sets[i].owner = hw.NoOwner
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset restores the cache to its freshly constructed state: every line
// invalid and unowned, the LRU clock and all statistics zero. It exists
// for machine pooling — a Reset cache is indistinguishable from New(cfg),
// so reusing one across experiment cells cannot change a measurement.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = line{owner: hw.NoOwner}
	}
	c.clock = 0
	c.stats = Stats{}
}

// SetIndex computes the set index for a global line number (an address
// right-shifted by LineBits). The caller chooses whether the line number
// came from a virtual or physical address according to cfg.Indexing.
func (c *Cache) SetIndex(lineNum uint64) int {
	return int(lineNum & uint64(c.cfg.Sets-1))
}

// Tag computes the tag for a global line number.
func (c *Cache) Tag(lineNum uint64) uint64 {
	return lineNum >> uint(log2(c.cfg.Sets))
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	// Hit is true if the line was present.
	Hit bool
	// Evicted is true if a valid line was displaced by the fill.
	Evicted bool
	// WritebackVictim is true if a dirty line was evicted to make room.
	WritebackVictim bool
	// VictimOwner is the owner of the evicted line, if any.
	VictimOwner hw.DomainID
	// VictimTag is the tag of the evicted line, if any.
	VictimTag uint64
	// Set is the set index that was accessed.
	Set int
}

// Access looks up the line identified by (set, tag); on a miss it fills
// the line, evicting the LRU victim. write marks the line dirty; owner
// attributes the fill. The returned result says whether it hit and whether
// a dirty victim needs writing back.
func (c *Cache) Access(set int, tag uint64, write bool, owner hw.DomainID) AccessResult {
	res := AccessResult{Set: set}
	base := set * c.cfg.Ways
	c.clock++
	// Hit path.
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.sets[base+w]
		if ln.valid && ln.tag == tag {
			ln.lru = c.clock
			if write {
				ln.dirty = true
			}
			// Ownership follows the most recent accessor: a hit
			// by another domain on a shared line (e.g. shared
			// kernel text) is precisely the sharing the paper
			// warns about; keep the original owner so the
			// partition checker can see the cross-domain hit.
			res.Hit = true
			c.stats.Hits++
			return res
		}
	}
	// Miss: fill, choosing an invalid way or the LRU victim.
	c.stats.Misses++
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.sets[base+w]
		if !ln.valid {
			victim = w
			break
		}
		if ln.lru < oldest {
			oldest = ln.lru
			victim = w
		}
	}
	ln := &c.sets[base+victim]
	if ln.valid {
		c.stats.Evictions++
		res.Evicted = true
		if ln.dirty {
			c.stats.Writebacks++
			res.WritebackVictim = true
		}
		res.VictimOwner = ln.owner
		res.VictimTag = ln.tag
	} else {
		res.VictimOwner = hw.NoOwner
	}
	*ln = line{valid: true, tag: tag, dirty: write, owner: owner, lru: c.clock}
	return res
}

// Invalidate drops the line (set, tag) if present, reporting whether it
// was found and whether it was dirty. Used for the back-invalidation an
// inclusive LLC performs on its private caches when it evicts a line —
// the mechanism that makes cross-core LLC prime-and-probe observable.
func (c *Cache) Invalidate(set int, tag uint64) (found, dirty bool) {
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.sets[base+w]
		if ln.valid && ln.tag == tag {
			found, dirty = true, ln.dirty
			*ln = line{owner: hw.NoOwner}
			return found, dirty
		}
	}
	return false, false
}

// Probe reports whether (set, tag) is present without disturbing any
// state. Attack harnesses must NOT use this — it exists for tests and for
// the invariant checkers.
func (c *Cache) Probe(set int, tag uint64) bool {
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.sets[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// FlushAll invalidates every line and returns the number of dirty lines
// that had to be written back. The caller converts that count into flush
// latency; the count's dependence on execution history is the secondary
// timing channel that padding closes (§4.2).
func (c *Cache) FlushAll() (dirty int) {
	for i := range c.sets {
		if c.sets[i].valid && c.sets[i].dirty {
			dirty++
		}
		c.sets[i] = line{owner: hw.NoOwner}
	}
	c.stats.Flushes++
	c.stats.FlushedDirty += uint64(dirty)
	return dirty
}

// DirtyLines returns the tags of all dirty lines in a deterministic
// (set-major, way-minor) order. The CPU model stores full line numbers as
// tags, so the result identifies the lines to write back on a flush.
func (c *Cache) DirtyLines() []uint64 {
	var out []uint64
	for set := 0; set < c.cfg.Sets; set++ {
		base := set * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			ln := &c.sets[base+w]
			if ln.valid && ln.dirty {
				out = append(out, ln.tag)
			}
		}
	}
	return out
}

// DirtyCount returns the number of dirty lines currently held.
func (c *Cache) DirtyCount() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid && c.sets[i].dirty {
			n++
		}
	}
	return n
}

// ValidCount returns the number of valid lines currently held.
func (c *Cache) ValidCount() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}

// OwnersInSet returns the distinct owners of valid lines in a set, in way
// order. Used by the partitioning invariant checker.
func (c *Cache) OwnersInSet(set int) []hw.DomainID {
	base := set * c.cfg.Ways
	var owners []hw.DomainID
	seen := make(map[hw.DomainID]bool, 4)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.sets[base+w]
		if ln.valid && !seen[ln.owner] {
			seen[ln.owner] = true
			owners = append(owners, ln.owner)
		}
	}
	return owners
}

// OccupancyByOwner returns, for each owner, the number of valid lines it
// holds across the whole cache.
func (c *Cache) OccupancyByOwner() map[hw.DomainID]int {
	occ := make(map[hw.DomainID]int)
	for i := range c.sets {
		if c.sets[i].valid {
			occ[c.sets[i].owner]++
		}
	}
	return occ
}

// SetColor returns the page colour a set belongs to: sets within the same
// page-offset window share a colour.
func (c *Cache) SetColor(set int) int {
	return set / (hw.PageSize / hw.LineSize) % c.Config().Colors()
}

func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}
