// Package tlb implements an ASID-tagged, fully associative translation
// lookaside buffer with LRU replacement, modelled on the abstraction used
// by Syeda & Klein's ARM-style TLB logic (paper §5.3).
//
// The package exposes exactly the operations the kernel model needs —
// lookup, refill, per-ASID invalidation and full flush — and the
// introspection the prover needs to state the §5.3 partitioning theorem:
// page-table modifications (and the invalidations they require) under one
// ASID do not affect TLB consistency, contents, or hit/miss timing for
// any other ASID.
package tlb

import (
	"fmt"

	"timeprot/internal/hw"
)

// ASID identifies an address space. The kernel assigns one per domain
// (per-domain address spaces are what makes the §5.3 theorem stateable).
type ASID uint16

// Entry is one TLB entry.
type Entry struct {
	ASID   ASID
	VPN    uint64
	PFN    uint64
	Global bool // global entries match under any ASID (kernel mappings)
	valid  bool
	lru    uint64
}

// Valid reports whether the entry holds a live translation.
func (e Entry) Valid() bool { return e.valid }

// TLB is a fully associative, LRU-replaced translation cache. Not safe
// for concurrent use; the simulator serialises hardware access.
type TLB struct {
	entries []Entry
	clock   uint64
	stats   Stats
}

// Stats accumulates TLB statistics.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Refills     uint64
	FlushAlls   uint64
	FlushASIDs  uint64
	Invalidates uint64
}

// New constructs a TLB with size entries. It panics if size is not
// positive.
func New(size int) *TLB {
	if size <= 0 {
		panic(fmt.Sprintf("tlb: size must be positive, got %d", size))
	}
	return &TLB{entries: make([]Entry, size)}
}

// Size returns the TLB capacity in entries.
func (t *TLB) Size() int { return len(t.entries) }

// Stats returns a copy of the statistics.
func (t *TLB) Stats() Stats { return t.stats }

// Reset restores the TLB to its freshly constructed state: every entry
// invalid, the LRU clock and all statistics zero. Unlike FlushAll it
// also clears the clock and counters, so a pooled machine's TLB is
// indistinguishable from a new one.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = Entry{}
	}
	t.clock = 0
	t.stats = Stats{}
}

// Lookup searches for a translation of vpn under asid. Global entries
// match regardless of ASID.
func (t *TLB) Lookup(asid ASID, vpn uint64) (pfn uint64, hit bool) {
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn && (e.Global || e.ASID == asid) {
			e.lru = t.clock
			t.stats.Hits++
			return e.PFN, true
		}
	}
	t.stats.Misses++
	return 0, false
}

// Refill inserts a translation after a page walk, evicting the LRU entry
// if the TLB is full.
func (t *TLB) Refill(asid ASID, vpn, pfn uint64, global bool) {
	t.clock++
	t.stats.Refills++
	victim := -1
	var oldest = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < oldest {
			oldest = e.lru
			victim = i
		}
	}
	t.entries[victim] = Entry{ASID: asid, VPN: vpn, PFN: pfn, Global: global, valid: true, lru: t.clock}
}

// FlushAll invalidates every entry (including globals) and returns the
// number of entries dropped. TLB flushes write back nothing, so the
// latency is history-independent, but the *refill* cost afterwards is not
// — which is why the TLB is flushable state in the paper's taxonomy.
func (t *TLB) FlushAll() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
		t.entries[i] = Entry{}
	}
	t.stats.FlushAlls++
	return n
}

// FlushASID invalidates all non-global entries of one address space,
// returning the count dropped. This is the operation a kernel issues
// after modifying that address space's page table.
func (t *TLB) FlushASID(asid ASID) int {
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.Global && e.ASID == asid {
			*e = Entry{}
			n++
		}
	}
	t.stats.FlushASIDs++
	return n
}

// InvalidateVPN drops a single (asid, vpn) translation if present.
func (t *TLB) InvalidateVPN(asid ASID, vpn uint64) bool {
	t.stats.Invalidates++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && !e.Global && e.ASID == asid && e.VPN == vpn {
			*e = Entry{}
			return true
		}
	}
	return false
}

// Snapshot returns the valid entries belonging to asid (non-global),
// in a deterministic order. The prover uses snapshots to state that
// operations under other ASIDs leave an ASID's view unchanged.
func (t *TLB) Snapshot(asid ASID) []Entry {
	var out []Entry
	for i := range t.entries {
		e := t.entries[i]
		if e.valid && !e.Global && e.ASID == asid {
			e.lru = 0 // normalise: recency is not part of the view
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// GlobalSnapshot returns the valid global entries in deterministic order.
func (t *TLB) GlobalSnapshot() []Entry {
	var out []Entry
	for i := range t.entries {
		e := t.entries[i]
		if e.valid && e.Global {
			e.lru = 0
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// OccupancyByASID counts valid non-global entries per ASID.
func (t *TLB) OccupancyByASID() map[ASID]int {
	occ := make(map[ASID]int)
	for i := range t.entries {
		if t.entries[i].valid && !t.entries[i].Global {
			occ[t.entries[i].ASID]++
		}
	}
	return occ
}

func sortEntries(es []Entry) {
	// insertion sort by (ASID, VPN); entry counts are tiny.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j-1], es[j]
			if a.ASID < b.ASID || (a.ASID == b.ASID && a.VPN <= b.VPN) {
				break
			}
			es[j-1], es[j] = b, a
		}
	}
}

// ASIDForDomain derives the ASID the kernel assigns to a domain. Domain
// IDs are small non-negative integers; the kernel pseudo-owner maps to the
// reserved kernel ASID 0.
func ASIDForDomain(d hw.DomainID) ASID {
	if d < 0 {
		return 0
	}
	return ASID(d + 1)
}
