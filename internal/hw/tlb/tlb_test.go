package tlb

import (
	"reflect"
	"testing"
	"testing/quick"

	"timeprot/internal/hw"
	"timeprot/internal/rng"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestLookupMissThenRefillHit(t *testing.T) {
	tl := New(8)
	if _, hit := tl.Lookup(1, 0x10); hit {
		t.Fatal("empty TLB must miss")
	}
	tl.Refill(1, 0x10, 0x99, false)
	pfn, hit := tl.Lookup(1, 0x10)
	if !hit || pfn != 0x99 {
		t.Fatalf("got (%#x,%v), want (0x99,true)", pfn, hit)
	}
	st := tl.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Refills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestASIDIsolationOfLookups(t *testing.T) {
	tl := New(8)
	tl.Refill(1, 0x10, 0x99, false)
	if _, hit := tl.Lookup(2, 0x10); hit {
		t.Fatal("ASID 2 must not hit ASID 1's entry")
	}
}

func TestGlobalEntriesMatchAnyASID(t *testing.T) {
	tl := New(8)
	tl.Refill(0, 0x800, 0x1234, true)
	for _, asid := range []ASID{0, 1, 7} {
		pfn, hit := tl.Lookup(asid, 0x800)
		if !hit || pfn != 0x1234 {
			t.Fatalf("asid %d: got (%#x,%v)", asid, pfn, hit)
		}
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := New(2)
	tl.Refill(1, 0xA, 1, false)
	tl.Refill(1, 0xB, 2, false)
	tl.Lookup(1, 0xA) // touch A; B becomes LRU
	tl.Refill(1, 0xC, 3, false)
	if _, hit := tl.Lookup(1, 0xB); hit {
		t.Fatal("B should have been evicted as LRU")
	}
	if _, hit := tl.Lookup(1, 0xA); !hit {
		t.Fatal("A should survive")
	}
}

func TestFlushASIDOnlyDropsThatASID(t *testing.T) {
	tl := New(8)
	tl.Refill(1, 0x1, 10, false)
	tl.Refill(1, 0x2, 11, false)
	tl.Refill(2, 0x1, 20, false)
	tl.Refill(0, 0x800, 30, true) // global
	if n := tl.FlushASID(1); n != 2 {
		t.Fatalf("FlushASID dropped %d, want 2", n)
	}
	if _, hit := tl.Lookup(1, 0x1); hit {
		t.Fatal("ASID 1 entries must be gone")
	}
	if _, hit := tl.Lookup(2, 0x1); !hit {
		t.Fatal("ASID 2 entry must survive")
	}
	if _, hit := tl.Lookup(2, 0x800); !hit {
		t.Fatal("global entry must survive FlushASID")
	}
}

func TestFlushAllDropsEverything(t *testing.T) {
	tl := New(8)
	tl.Refill(1, 0x1, 10, false)
	tl.Refill(0, 0x800, 30, true)
	if n := tl.FlushAll(); n != 2 {
		t.Fatalf("FlushAll dropped %d, want 2", n)
	}
	if _, hit := tl.Lookup(1, 0x1); hit {
		t.Fatal("entry survived FlushAll")
	}
	if _, hit := tl.Lookup(3, 0x800); hit {
		t.Fatal("global entry survived FlushAll")
	}
}

func TestInvalidateVPN(t *testing.T) {
	tl := New(8)
	tl.Refill(1, 0x1, 10, false)
	tl.Refill(1, 0x2, 11, false)
	if !tl.InvalidateVPN(1, 0x1) {
		t.Fatal("InvalidateVPN should report success")
	}
	if tl.InvalidateVPN(1, 0x1) {
		t.Fatal("second invalidate should find nothing")
	}
	if _, hit := tl.Lookup(1, 0x2); !hit {
		t.Fatal("unrelated VPN must survive")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	tl := New(8)
	tl.Refill(1, 0x5, 50, false)
	tl.Refill(1, 0x1, 10, false)
	tl.Refill(1, 0x3, 30, false)
	snap := tl.Snapshot(1)
	var vpns []uint64
	for _, e := range snap {
		vpns = append(vpns, e.VPN)
	}
	if !reflect.DeepEqual(vpns, []uint64{0x1, 0x3, 0x5}) {
		t.Fatalf("snapshot order %v", vpns)
	}
}

// TestSyedaKleinTheorem is the §5.3 partitioning theorem as a property
// test: an arbitrary interleaving of refills, invalidations and per-ASID
// flushes under ASID a never changes ASID b's snapshot or its hit/miss
// behaviour — PROVIDED the interference does not evict b's entries, i.e.
// with a TLB large enough to hold both working sets. (Capacity contention
// is exactly why the TLB is flushable state for *timing*; the functional
// theorem holds at the consistency level regardless, which we test by
// comparing translation results, not hit bits, in the small-TLB case.)
func TestSyedaKleinTheorem(t *testing.T) {
	f := func(seed uint64) bool {
		const a, b = ASID(1), ASID(2)
		tl := New(64)
		r := rng.New(seed)
		// Establish b's working set: 8 translations.
		type tr struct{ vpn, pfn uint64 }
		var bset []tr
		for i := 0; i < 8; i++ {
			v, p := uint64(0x100+i), uint64(0x900+i)
			tl.Refill(b, v, p, false)
			bset = append(bset, tr{v, p})
		}
		before := tl.Snapshot(b)
		// Arbitrary activity under ASID a.
		for i := 0; i < 100; i++ {
			switch r.Intn(4) {
			case 0:
				tl.Refill(a, r.Uint64n(32), r.Uint64n(1024), false)
			case 1:
				tl.InvalidateVPN(a, r.Uint64n(32))
			case 2:
				tl.FlushASID(a)
			case 3:
				tl.Lookup(a, r.Uint64n(32))
			}
		}
		if !reflect.DeepEqual(before, tl.Snapshot(b)) {
			return false
		}
		// And b's translations still resolve identically.
		for _, e := range bset {
			pfn, hit := tl.Lookup(b, e.vpn)
			if !hit || pfn != e.pfn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCapacityContentionIsTheTimingChannel documents the flip side of the
// theorem: with a small TLB, ASID a's activity CAN evict b's entries —
// the very channel that flushing-on-switch (plus padding) must close.
func TestCapacityContentionIsTheTimingChannel(t *testing.T) {
	tl := New(4)
	tl.Refill(2, 0x1, 10, false)
	for i := 0; i < 4; i++ {
		tl.Refill(1, uint64(0x100+i), uint64(i), false)
	}
	if _, hit := tl.Lookup(2, 0x1); hit {
		t.Fatal("capacity eviction expected: ASID 2's entry should be gone")
	}
}

func TestASIDForDomain(t *testing.T) {
	if ASIDForDomain(hw.KernelOwner) != 0 || ASIDForDomain(hw.NoOwner) != 0 {
		t.Fatal("kernel/no-owner must map to reserved ASID 0")
	}
	if ASIDForDomain(0) != 1 || ASIDForDomain(5) != 6 {
		t.Fatal("domain ASIDs must be offset by one from reserved 0")
	}
}

func TestOccupancyByASID(t *testing.T) {
	tl := New(8)
	tl.Refill(1, 1, 1, false)
	tl.Refill(1, 2, 2, false)
	tl.Refill(2, 3, 3, false)
	tl.Refill(0, 4, 4, true)
	occ := tl.OccupancyByASID()
	if occ[1] != 2 || occ[2] != 1 || occ[0] != 0 {
		t.Fatalf("occupancy %v", occ)
	}
}
